GO ?= go

.PHONY: build test check bench benchdiff kernel

build:
	$(GO) build ./...

# Tier-1: the full test suite.
test:
	$(GO) test ./...

# Tier-2: vet + gofmt + race-detector runs over the concurrent packages,
# plus a quick parse-through of the benchdiff harness.
check:
	./scripts/check.sh

# Regenerate the experiment tables and BENCH_results.json into results/.
bench:
	$(GO) run ./cmd/popbench -out results

# Compare kernel benchmarks of the working tree against a baseline ref
# (default HEAD~1): make benchdiff [REF=main].
benchdiff:
	./scripts/benchdiff.sh $(REF)

# Re-measure the raw simulation kernels into results/BENCH_kernel.json.
kernel:
	$(GO) run ./cmd/popbench -kernel -out results
