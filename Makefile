GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

# Tier-1: the full test suite.
test:
	$(GO) test ./...

# Tier-2: vet + gofmt + race-detector runs over the concurrent packages.
check:
	./scripts/check.sh

# Regenerate the experiment tables and BENCH_results.json into results/.
bench:
	$(GO) run ./cmd/popbench -out results
