GO ?= go

.PHONY: build test check bench benchdiff kernel compare serve-smoke cluster-smoke obs-smoke cache-smoke qos-smoke loadtest chaos

build:
	$(GO) build ./...

# Tier-1: the full test suite.
test:
	$(GO) test ./...

# Tier-2: vet + gofmt + race-detector runs over the concurrent packages,
# plus a quick parse-through of the benchdiff harness.
check:
	./scripts/check.sh

# Regenerate the experiment tables and BENCH_results.json into results/.
bench:
	$(GO) run ./cmd/popbench -out results

# Compare kernel benchmarks of the working tree against a baseline ref
# (default HEAD~1): make benchdiff [REF=main]. Set FAIL_OVER=10 to exit 1
# when any ns/op or ns/interaction metric regresses by more than 10%.
benchdiff:
	./scripts/benchdiff.sh $(REF)

# Boot popserved, run one job through POST /v1/simulate, check the NDJSON
# stream and a clean SIGTERM drain.
serve-smoke:
	./scripts/serve-smoke.sh

# Boot popcoord over two popserved workers, kill -9 one mid-job, and diff
# the merged cluster stream against single-node bytes.
cluster-smoke:
	./scripts/cluster-smoke.sh

# Trace contract: popsim -trace output is byte-identical to an untraced run
# and the timeline carries the expected event kinds per execution mode.
obs-smoke:
	./scripts/obs-smoke.sh

# Result-store contract: repeat POSTs are byte-identical store hits with
# zero fleet work, overlapping sweeps re-run only their miss set, and the
# cache survives a restart.
cache-smoke:
	./scripts/cache-smoke.sh

# QoS contract: one tenant's whale flood cannot starve another tenant's
# interactive jobs (zero 429s, bounded latency, byte-identical streams),
# the whale concurrency cap holds, and -cost-budget rejects with a
# structured 413 — all visible in per-tenant /metrics.
qos-smoke:
	./scripts/qos-smoke.sh

# Full popserved load test: concurrent streams, 429 backpressure,
# CLI-vs-HTTP byte-identical determinism, graceful drain.
loadtest:
	./scripts/loadtest.sh

# Chaos gate (race-built): injected replica panics recovered by retry,
# kill -9 + journal resume, severed streams resumed by the retrying client —
# each diffed byte-for-byte against a fault-free run.
chaos:
	./scripts/chaos.sh

# Re-measure the raw simulation kernels into results/BENCH_kernel.json.
kernel:
	$(GO) run ./cmd/popbench -kernel -out results

# Run the related-work head-to-head grid (gs18leader, gsexactmajority,
# aagmajority vs the incumbent entries) into results/BENCH_results.json.
compare:
	$(GO) run ./cmd/popbench -compare -out results
