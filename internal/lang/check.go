package lang

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// BuildSpace allocates one boolean state variable per declared program and
// thread variable in a fresh space (prefixless, in declaration order), as
// the compilation targets expect. Auxiliary compilation variables (the
// K(#) triggers, Z(#) flags, clock fields) are allocated later by their
// respective passes.
func (p *Program) BuildSpace() (*bitmask.Space, error) {
	sp := bitmask.NewSpace()
	seen := map[string]bool{}
	declare := func(d VarDecl, where string) error {
		if seen[d.Name] {
			return fmt.Errorf("variable %s declared twice (%s)", d.Name, where)
		}
		seen[d.Name] = true
		sp.Bool(d.Name)
		return nil
	}
	for _, d := range p.Vars {
		if err := declare(d, "protocol"); err != nil {
			return nil, err
		}
	}
	for _, th := range p.Threads {
		for _, d := range th.Vars {
			if err := declare(d, "thread "+th.Name); err != nil {
				return nil, err
			}
		}
	}
	return sp, nil
}

// InitialState returns the agent state encoding all declared initial
// values. Input variables are initialized by the caller per agent.
func (p *Program) InitialState(sp *bitmask.Space) bitmask.State {
	var s bitmask.State
	set := func(d VarDecl) {
		if v, ok := sp.LookupVar(d.Name); ok && d.Init {
			s = v.Set(s, true)
		}
	}
	for _, d := range p.Vars {
		set(d)
	}
	for _, th := range p.Threads {
		for _, d := range th.Vars {
			set(d)
		}
	}
	return s
}

// Check statically validates the program:
//   - all variables are declared exactly once; formulas and rulesets parse
//     and reference declared variables only;
//   - assignments and rules never write input variables;
//   - each thread body is either a single unbounded "repeat:" (possibly
//     after none) of structured statements, or consists of Forever
//     executes; unbounded repeats never nest;
//   - loop and round constants are ≥ 1 (guaranteed by the parser, checked
//     again for programmatically-built ASTs).
func (p *Program) Check() error {
	sp, err := p.BuildSpace()
	if err != nil {
		return err
	}
	inputs := map[string]bool{}
	for _, d := range p.Vars {
		if d.Role == Input {
			inputs[d.Name] = true
		}
	}
	for _, th := range p.Threads {
		if len(th.Body) == 0 {
			return fmt.Errorf("thread %s: empty body", th.Name)
		}
		for _, st := range th.Body {
			if err := p.checkStmt(sp, inputs, th.Name, st, true); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) checkStmt(sp *bitmask.Space, inputs map[string]bool, thread string, s Stmt, top bool) error {
	ctx := func(err error) error {
		return fmt.Errorf("thread %s: %s: %w", thread, s.String(), err)
	}
	switch st := s.(type) {
	case Repeat:
		if !top {
			return ctx(fmt.Errorf("unbounded repeat may only appear at thread top level"))
		}
		for _, inner := range st.Body {
			if err := p.checkStmt(sp, inputs, thread, inner, false); err != nil {
				return err
			}
		}
	case RepeatLog:
		if st.C < 1 {
			return ctx(fmt.Errorf("loop constant must be ≥ 1"))
		}
		if len(st.Body) == 0 {
			return ctx(fmt.Errorf("empty loop body"))
		}
		for _, inner := range st.Body {
			if err := p.checkStmt(sp, inputs, thread, inner, false); err != nil {
				return err
			}
		}
	case Execute:
		if !st.Forever && st.C < 1 {
			return ctx(fmt.Errorf("round constant must be ≥ 1"))
		}
		rs, err := rules.Parse(sp, joinLines(st.Rules))
		if err != nil {
			return ctx(err)
		}
		if err := rs.Validate(); err != nil {
			return ctx(err)
		}
		for i, r := range rs.Rules {
			for _, name := range writtenInputs(sp, inputs, r) {
				return ctx(fmt.Errorf("rule %d writes input variable %s", i, name))
			}
		}
	case IfExists:
		if _, err := rules.ParseFormula(sp, st.Cond); err != nil {
			return ctx(err)
		}
		if len(st.Then) == 0 {
			return ctx(fmt.Errorf("empty if body"))
		}
		for _, inner := range st.Then {
			if err := p.checkStmt(sp, inputs, thread, inner, false); err != nil {
				return err
			}
		}
		for _, inner := range st.Else {
			if err := p.checkStmt(sp, inputs, thread, inner, false); err != nil {
				return err
			}
		}
	case Assign:
		if _, ok := sp.LookupVar(st.Var); !ok {
			return ctx(fmt.Errorf("assignment to undeclared variable %s", st.Var))
		}
		if inputs[st.Var] {
			return ctx(fmt.Errorf("assignment to input variable %s", st.Var))
		}
		switch st.Expr {
		case RandExpr, OnExpr, OffExpr:
		default:
			if _, err := rules.ParseFormula(sp, st.Expr); err != nil {
				return ctx(err)
			}
		}
	default:
		return ctx(fmt.Errorf("unknown statement type %T", s))
	}
	return nil
}

// writtenInputs lists input variables written by the rule's updates.
func writtenInputs(sp *bitmask.Space, inputs map[string]bool, r rules.Rule) []string {
	var out []string
	for name := range inputs {
		v, ok := sp.LookupVar(name)
		if !ok {
			continue
		}
		var maskLo, maskHi uint64
		if v.Pos() < 64 {
			maskLo = 1 << uint(v.Pos())
		} else {
			maskHi = 1 << uint(v.Pos()-64)
		}
		if r.U1.Touches(maskLo, maskHi) || r.U2.Touches(maskLo, maskHi) {
			out = append(out, name)
		}
	}
	return out
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

// LoopDepth returns the program's l_max: the maximum RepeatLog/Execute
// nesting depth across threads.
func (p *Program) LoopDepth() int {
	max := 0
	for _, th := range p.Threads {
		if d := th.Body.LoopDepth(); d > max {
			max = d
		}
	}
	return max
}

// MaxC returns the program-wide maximum loop constant (the single c the
// compiled protocol uses throughout, per §4).
func (p *Program) MaxC() int {
	max := 1
	for _, th := range p.Threads {
		if c := th.Body.MaxC(); c > max {
			max = c
		}
	}
	return max
}
