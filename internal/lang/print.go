package lang

import (
	"fmt"
	"strings"
)

// Source renders the program back into the textual syntax accepted by
// Parse. Parse(p.Source()) is structurally identical to p, which the tests
// verify; popc and documentation use it to display generated programs
// (e.g. the Plurality family).
func (p *Program) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s\n", p.Name)
	for _, d := range p.Vars {
		writeDecl(&b, 0, d)
	}
	for _, th := range p.Threads {
		fmt.Fprintf(&b, "\nthread %s\n", th.Name)
		for _, d := range th.Vars {
			writeDecl(&b, 1, d)
		}
		writeBlock(&b, 1, th.Body)
	}
	return b.String()
}

func writeDecl(b *strings.Builder, indent int, d VarDecl) {
	init := "off"
	if d.Init {
		init = "on"
	}
	role := ""
	switch d.Role {
	case Input:
		role = " input"
	case Output:
		role = " output"
	}
	fmt.Fprintf(b, "%svar %s = %s%s\n", pad(indent), d.Name, init, role)
}

func writeBlock(b *strings.Builder, indent int, blk Block) {
	for _, s := range blk {
		writeStmt(b, indent, s)
	}
}

func writeStmt(b *strings.Builder, indent int, s Stmt) {
	ind := pad(indent)
	switch st := s.(type) {
	case Repeat:
		fmt.Fprintf(b, "%srepeat:\n", ind)
		writeBlock(b, indent+1, st.Body)
	case RepeatLog:
		fmt.Fprintf(b, "%srepeat >= %d ln n times:\n", ind, st.C)
		writeBlock(b, indent+1, st.Body)
	case Execute:
		if st.Forever {
			fmt.Fprintf(b, "%sexecute ruleset:\n", ind)
		} else {
			fmt.Fprintf(b, "%sexecute for >= %d ln n rounds ruleset:\n", ind, st.C)
		}
		for _, r := range st.Rules {
			fmt.Fprintf(b, "%s%s\n", pad(indent+1), r)
		}
	case IfExists:
		fmt.Fprintf(b, "%sif exists (%s):\n", ind, st.Cond)
		writeBlock(b, indent+1, st.Then)
		if len(st.Else) > 0 {
			fmt.Fprintf(b, "%selse:\n", ind)
			writeBlock(b, indent+1, st.Else)
		}
	case Assign:
		fmt.Fprintf(b, "%s%s := %s\n", ind, st.Var, st.Expr)
	}
}

func pad(indent int) string { return strings.Repeat("  ", indent) }
