package lang

import (
	"strings"
	"testing"
)

// leaderElectionSrc is the paper's LeaderElection program (§3.1) in the
// textual syntax.
const leaderElectionSrc = `
protocol LeaderElection
var L = on output

thread Main uses L
  var D = off
  var F = on
  repeat:
    if exists (L):
      F := rand
      D := L & F
    if exists (D):
      L := D
    else:
      L := on
`

// majoritySrc is the paper's Majority program (§3.2).
const majoritySrc = `
protocol Majority
var YA = off output
var A = off input, B = off input

thread Main uses YA reads A, B
  var As = off
  var Bs = off
  var K = off
  repeat:
    As := A
    Bs := B
    repeat >= 2 ln n times:
      execute for >= 2 ln n rounds ruleset:
        (As) + (Bs) -> (!As) + (!Bs)
      K := off
      execute for >= 2 ln n rounds ruleset:
        (As & !K) + (!As & !Bs) -> (As & K) + (As & K)
        (Bs & !K) + (!As & !Bs) -> (Bs & K) + (Bs & K)
    if exists (As):
      YA := on
    if exists (Bs):
      YA := off
`

func TestParseLeaderElection(t *testing.T) {
	prog, err := Parse(leaderElectionSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "LeaderElection" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.Vars) != 1 || prog.Vars[0].Name != "L" || !prog.Vars[0].Init || prog.Vars[0].Role != Output {
		t.Errorf("vars = %+v", prog.Vars)
	}
	if len(prog.Threads) != 1 {
		t.Fatalf("threads = %d", len(prog.Threads))
	}
	th := prog.Threads[0]
	if th.Name != "Main" || len(th.Vars) != 2 {
		t.Errorf("thread = %+v", th)
	}
	if len(th.Body) != 1 {
		t.Fatalf("body length = %d", len(th.Body))
	}
	rep, ok := th.Body[0].(Repeat)
	if !ok {
		t.Fatalf("top statement is %T, want Repeat", th.Body[0])
	}
	if len(rep.Body) != 2 {
		t.Fatalf("repeat body = %d stmts", len(rep.Body))
	}
	first, ok := rep.Body[0].(IfExists)
	if !ok || first.Cond != "L" {
		t.Errorf("first stmt = %+v", rep.Body[0])
	}
	if len(first.Then) != 2 || first.Else != nil {
		t.Errorf("if structure wrong: %+v", first)
	}
	if a, ok := first.Then[0].(Assign); !ok || a.Var != "F" || a.Expr != RandExpr {
		t.Errorf("rand assignment = %+v", first.Then[0])
	}
	second, ok := rep.Body[1].(IfExists)
	if !ok || second.Cond != "D" || len(second.Else) != 1 {
		t.Errorf("second if = %+v", rep.Body[1])
	}
	if err := prog.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestParseMajority(t *testing.T) {
	prog, err := Parse(majoritySrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	if prog.LoopDepth() != 2 {
		t.Errorf("LoopDepth = %d, want 2", prog.LoopDepth())
	}
	if prog.MaxC() != 2 {
		t.Errorf("MaxC = %d, want 2", prog.MaxC())
	}
	rep := prog.Threads[0].Body[0].(Repeat)
	if len(rep.Body) != 5 {
		t.Fatalf("repeat body = %d stmts", len(rep.Body))
	}
	inner, ok := rep.Body[2].(RepeatLog)
	if !ok || inner.C != 2 {
		t.Fatalf("nested loop = %+v", rep.Body[2])
	}
	exec, ok := inner.Body[0].(Execute)
	if !ok || exec.C != 2 || exec.Forever || len(exec.Rules) != 1 {
		t.Errorf("execute = %+v", inner.Body[0])
	}
}

func TestParseForeverExecute(t *testing.T) {
	src := `
protocol ReduceDemo
var R = on

thread ReduceSets uses R
  execute ruleset:
    (R) + (R) -> (R) + (!R)
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	exec, ok := prog.Threads[0].Body[0].(Execute)
	if !ok || !exec.Forever {
		t.Fatalf("statement = %+v", prog.Threads[0].Body[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no protocol", "var A = on\n", "must start with 'protocol"},
		{"no threads", "protocol P\nvar A = on\n", "no threads"},
		{"bad init", "protocol P\nvar A = maybe\nthread T\n  repeat:\n    A := A\n", "bad initializer"},
		{"bad role", "protocol P\nvar A = on banana\nthread T\n  repeat:\n    A := A\n", "bad role"},
		{"odd indent", "protocol P\nvar A = on\nthread T\n repeat:\n", "odd indentation"},
		{"empty repeat", "protocol P\nvar A = on\nthread T\n  repeat:\n", "empty repeat body"},
		{"orphan else", "protocol P\nvar A = on\nthread T\n  repeat:\n    else:\n", "'else:' without"},
		{"bad loop header", "protocol P\nvar A = on\nthread T\n  repeat >= x ln n times:\n    A := A\n", "repeat >= C ln n"},
		{"empty ruleset", "protocol P\nvar A = on\nthread T\n  execute ruleset:\n", "empty ruleset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"write to input",
			"protocol P\nvar A = on input\nthread T\n  repeat:\n    A := A\n",
			"assignment to input",
		},
		{
			"rule writes input",
			"protocol P\nvar A = on input, B = off\nthread T\n  repeat:\n    execute for >= 1 ln n rounds ruleset:\n      (A) + (.) -> (!A) + (.)\n",
			"writes input variable",
		},
		{
			"undeclared in condition",
			"protocol P\nvar A = on\nthread T\n  repeat:\n    if exists (Q):\n      A := A\n",
			"unknown variable",
		},
		{
			"undeclared assignment",
			"protocol P\nvar A = on\nthread T\n  repeat:\n    Q := A\n",
			"undeclared variable",
		},
		{
			"duplicate variable",
			"protocol P\nvar A = on\nvar A = off\nthread T\n  repeat:\n    A := A\n",
			"declared twice",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = prog.Check()
			if err == nil {
				t.Fatal("Check succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestInitialState(t *testing.T) {
	prog := MustParse(leaderElectionSrc)
	sp, err := prog.BuildSpace()
	if err != nil {
		t.Fatal(err)
	}
	s := prog.InitialState(sp)
	l, _ := sp.LookupVar("L")
	d, _ := sp.LookupVar("D")
	f, _ := sp.LookupVar("F")
	if !l.Get(s) || d.Get(s) || !f.Get(s) {
		t.Errorf("initial state = %s", sp.Format(s))
	}
}

func TestLoopDepthCounting(t *testing.T) {
	prog := MustParse(leaderElectionSrc)
	// Assignments compile to execute leaves: depth 1.
	if got := prog.LoopDepth(); got != 1 {
		t.Errorf("LeaderElection LoopDepth = %d, want 1", got)
	}
}

// TestSourceRoundTrip: printing and reparsing a program preserves its
// structure.
func TestSourceRoundTrip(t *testing.T) {
	for _, src := range []string{leaderElectionSrc, majoritySrc} {
		orig := MustParse(src)
		printed := orig.Source()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
		}
		if back.Name != orig.Name || len(back.Threads) != len(orig.Threads) {
			t.Fatalf("round trip changed structure")
		}
		if back.Source() != printed {
			t.Errorf("second print differs from first:\n%s\n----\n%s", printed, back.Source())
		}
		if back.LoopDepth() != orig.LoopDepth() || back.MaxC() != orig.MaxC() {
			t.Errorf("round trip changed metrics")
		}
		if err := back.Check(); err != nil {
			t.Errorf("round-tripped program fails Check: %v", err)
		}
	}
}

func TestSourceForeverThread(t *testing.T) {
	src := `
protocol P
var R = on

thread T uses R
  execute ruleset:
    (R) + (R) -> (R) + (!R)
`
	p := MustParse(src)
	printed := p.Source()
	if !strings.Contains(printed, "execute ruleset:") {
		t.Errorf("forever execute lost:\n%s", printed)
	}
	if _, err := Parse(printed); err != nil {
		t.Errorf("reparse: %v", err)
	}
}
