package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a program in the paper's indentation-based pseudocode style:
//
//	protocol LeaderElection
//	var L = on output
//
//	thread Main
//	  var D = off
//	  var F = on
//	  repeat:
//	    if exists (L):
//	      F := rand
//	      D := L & F
//	    if exists (D):
//	      L := D
//	    else:
//	      L := on
//
// Indentation is two spaces (or one tab) per level. '#' starts a comment.
// Other accepted statement forms:
//
//	repeat >= 2 ln n times:
//	execute for >= 2 ln n rounds ruleset:
//	  (A) + (B) -> (!A) + (!B)
//	execute ruleset:
//	  (R) + (R) -> (R) + (!R)
func Parse(src string) (*Program, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	p := &progParser{lines: lines}
	return p.parse()
}

// MustParse is Parse for statically-known programs; it panics on error.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic("lang: " + err.Error())
	}
	return prog
}

type line struct {
	no     int // 1-based source line
	indent int
	text   string
}

func splitLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		code := raw
		if idx := strings.Index(code, "#"); idx >= 0 {
			code = code[:idx]
		}
		if strings.TrimSpace(code) == "" {
			continue
		}
		indent := 0
		pos := 0
		for pos < len(code) {
			if code[pos] == '\t' {
				indent++
				pos++
			} else if strings.HasPrefix(code[pos:], "  ") {
				indent++
				pos += 2
			} else if code[pos] == ' ' {
				return nil, fmt.Errorf("line %d: odd indentation", i+1)
			} else {
				break
			}
		}
		out = append(out, line{no: i + 1, indent: indent, text: strings.TrimSpace(code[pos:])})
	}
	return out, nil
}

type progParser struct {
	lines []line
	pos   int
}

func (p *progParser) peek() (line, bool) {
	if p.pos < len(p.lines) {
		return p.lines[p.pos], true
	}
	return line{}, false
}

func (p *progParser) next() (line, bool) {
	l, ok := p.peek()
	if ok {
		p.pos++
	}
	return l, ok
}

func (p *progParser) errf(l line, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.no, fmt.Sprintf(format, args...))
}

func (p *progParser) parse() (*Program, error) {
	l, ok := p.next()
	if !ok || !strings.HasPrefix(l.text, "protocol ") || l.indent != 0 {
		return nil, fmt.Errorf("program must start with 'protocol NAME'")
	}
	prog := &Program{Name: strings.TrimSpace(strings.TrimPrefix(l.text, "protocol "))}
	if prog.Name == "" {
		return nil, p.errf(l, "missing protocol name")
	}
	for {
		l, ok := p.peek()
		if !ok {
			break
		}
		if l.indent != 0 {
			return nil, p.errf(l, "unexpected indentation at top level")
		}
		switch {
		case strings.HasPrefix(l.text, "var "):
			p.pos++
			d, err := parseVarDecl(l)
			if err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, d...)
		case strings.HasPrefix(l.text, "thread ") || l.text == "thread":
			p.pos++
			th, err := p.parseThread(l)
			if err != nil {
				return nil, err
			}
			prog.Threads = append(prog.Threads, th)
		default:
			return nil, p.errf(l, "expected 'var' or 'thread', got %q", l.text)
		}
	}
	if len(prog.Threads) == 0 {
		return nil, fmt.Errorf("program has no threads")
	}
	return prog, nil
}

// parseVarDecl parses "var A = on, B = off input" style lines: one or more
// comma-separated declarations, each optionally followed by a role word.
func parseVarDecl(l line) ([]VarDecl, error) {
	body := strings.TrimPrefix(l.text, "var ")
	var out []VarDecl
	for _, part := range strings.Split(body, ",") {
		fields := strings.Fields(part)
		if len(fields) < 3 || fields[1] != "=" {
			return nil, fmt.Errorf("line %d: var declaration %q must be 'NAME = on|off [input|output]'", l.no, strings.TrimSpace(part))
		}
		d := VarDecl{Name: fields[0]}
		switch fields[2] {
		case "on":
			d.Init = true
		case "off":
			d.Init = false
		default:
			return nil, fmt.Errorf("line %d: bad initializer %q", l.no, fields[2])
		}
		if len(fields) >= 4 {
			switch fields[3] {
			case "input":
				d.Role = Input
			case "output":
				d.Role = Output
			default:
				return nil, fmt.Errorf("line %d: bad role %q", l.no, fields[3])
			}
		}
		if len(fields) > 4 {
			return nil, fmt.Errorf("line %d: trailing tokens in var declaration", l.no)
		}
		out = append(out, d)
	}
	return out, nil
}

func (p *progParser) parseThread(header line) (Thread, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(header.text, "thread"))
	// "uses"/"reads" clauses are informational, as in the paper.
	name := rest
	for _, kw := range []string{" uses ", " reads "} {
		if i := strings.Index(name, kw); i >= 0 {
			name = name[:i]
		}
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return Thread{}, p.errf(header, "missing thread name")
	}
	th := Thread{Name: name}
	// Leading local var declarations.
	for {
		l, ok := p.peek()
		if !ok || l.indent != 1 || !strings.HasPrefix(l.text, "var ") {
			break
		}
		p.pos++
		d, err := parseVarDecl(l)
		if err != nil {
			return th, err
		}
		th.Vars = append(th.Vars, d...)
	}
	body, err := p.parseBlock(1)
	if err != nil {
		return th, err
	}
	if len(body) == 0 {
		return th, p.errf(header, "thread %s has an empty body", name)
	}
	th.Body = body
	return th, nil
}

func (p *progParser) parseBlock(indent int) (Block, error) {
	var out Block
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return out, nil
		}
		if l.indent > indent {
			return nil, p.errf(l, "unexpected indentation")
		}
		st, err := p.parseStmt(indent)
		if err != nil {
			return nil, err
		}
		if st != nil {
			out = append(out, st)
		}
	}
}

func (p *progParser) parseStmt(indent int) (Stmt, error) {
	l, _ := p.next()
	text := l.text
	switch {
	case text == "repeat:":
		body, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		if len(body) == 0 {
			return nil, p.errf(l, "empty repeat body")
		}
		return Repeat{Body: body}, nil

	case strings.HasPrefix(text, "repeat >="):
		c, rest, err := parseLnConstant(strings.TrimPrefix(text, "repeat >="))
		if err != nil || rest != "times:" {
			return nil, p.errf(l, "expected 'repeat >= C ln n times:'")
		}
		body, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		if len(body) == 0 {
			return nil, p.errf(l, "empty repeat body")
		}
		return RepeatLog{C: c, Body: body}, nil

	case text == "execute ruleset:":
		rulesLines, err := p.collectRuleLines(indent + 1)
		if err != nil {
			return nil, err
		}
		if len(rulesLines) == 0 {
			return nil, p.errf(l, "empty ruleset")
		}
		return Execute{Forever: true, Rules: rulesLines}, nil

	case strings.HasPrefix(text, "execute for >="):
		c, rest, err := parseLnConstant(strings.TrimPrefix(text, "execute for >="))
		if err != nil || rest != "rounds ruleset:" {
			return nil, p.errf(l, "expected 'execute for >= C ln n rounds ruleset:'")
		}
		rulesLines, err := p.collectRuleLines(indent + 1)
		if err != nil {
			return nil, err
		}
		if len(rulesLines) == 0 {
			return nil, p.errf(l, "empty ruleset")
		}
		return Execute{C: c, Rules: rulesLines}, nil

	case strings.HasPrefix(text, "if exists"):
		cond := strings.TrimSpace(strings.TrimPrefix(text, "if exists"))
		if !strings.HasSuffix(cond, ":") {
			return nil, p.errf(l, "missing ':' after if exists condition")
		}
		cond = strings.TrimSpace(strings.TrimSuffix(cond, ":"))
		cond = strings.TrimPrefix(cond, "(")
		cond = strings.TrimSuffix(cond, ")")
		if cond == "" {
			return nil, p.errf(l, "empty if exists condition")
		}
		then, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		if len(then) == 0 {
			return nil, p.errf(l, "empty if body")
		}
		var elseBlock Block
		if el, ok := p.peek(); ok && el.indent == indent && el.text == "else:" {
			p.pos++
			elseBlock, err = p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			if len(elseBlock) == 0 {
				return nil, p.errf(el, "empty else body")
			}
		}
		return IfExists{Cond: cond, Then: then, Else: elseBlock}, nil

	case text == "else:":
		return nil, p.errf(l, "'else:' without matching 'if exists'")

	case strings.Contains(text, ":="):
		parts := strings.SplitN(text, ":=", 2)
		name := strings.TrimSpace(parts[0])
		expr := strings.TrimSpace(parts[1])
		if name == "" || expr == "" {
			return nil, p.errf(l, "malformed assignment")
		}
		return Assign{Var: name, Expr: expr}, nil
	}
	return nil, p.errf(l, "unrecognized statement %q", text)
}

// collectRuleLines gathers the indented rule lines of an execute block.
func (p *progParser) collectRuleLines(indent int) ([]string, error) {
	var out []string
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return out, nil
		}
		if l.indent > indent {
			return nil, p.errf(l, "unexpected indentation in ruleset")
		}
		p.pos++
		out = append(out, l.text)
	}
}

// parseLnConstant parses "C ln n REST" returning C and REST.
func parseLnConstant(s string) (int, string, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 || fields[1] != "ln" || fields[2] != "n" {
		return 0, "", fmt.Errorf("expected 'C ln n'")
	}
	c, err := strconv.Atoi(fields[0])
	if err != nil || c < 1 {
		return 0, "", fmt.Errorf("bad constant %q", fields[0])
	}
	return c, strings.Join(fields[3:], " "), nil
}
