// Package lang defines the paper's imperative "sequential code" language
// for population protocols (§2.1): programs are collections of threads over
// a shared pool of boolean state variables, whose bodies are built from an
// outermost repeat loop, nested "repeat ≥ c·ln n times" loops, "execute for
// ≥ c·ln n rounds ruleset" leaves, "if exists (Σ)" branching, and "X := Σ"
// assignments (including the coin-flip assignment X := rand used by
// LeaderElection). The package provides the AST, a text parser in the
// paper's indentation style, and the static checks assumed by compilation.
package lang

import "fmt"

// Role classifies a protocol variable.
type Role int

const (
	// Internal variables are working state.
	Internal Role = iota
	// Input variables encode the problem instance; programs must not
	// write them.
	Input
	// Output variables carry the result.
	Output
)

func (r Role) String() string {
	switch r {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return "internal"
	}
}

// VarDecl declares a protocol or thread variable with its initial value.
type VarDecl struct {
	Name string
	Init bool
	Role Role
}

// Program is a full protocol definition.
type Program struct {
	Name    string
	Vars    []VarDecl
	Threads []Thread
}

// Thread is one composed protocol thread: local declarations and a body.
// Per the paper's convention the body behaves as if wrapped in an
// outermost "repeat:" unless it consists of a bare "execute ruleset:"
// (like thread ReduceSets of LeaderElectionExact).
type Thread struct {
	Name string
	Vars []VarDecl
	Body Block
}

// Block is a statement sequence.
type Block []Stmt

// Stmt is one language construct.
type Stmt interface {
	stmt()
	String() string
}

// Repeat is the outermost unbounded control loop of a thread.
type Repeat struct {
	Body Block
}

// RepeatLog is "repeat ≥ C·ln n times: body".
type RepeatLog struct {
	C    int
	Body Block
}

// Execute is "execute for ≥ C·ln n rounds ruleset: rules". Rules hold the
// rule lines in the textual DSL of the rules package; they are parsed
// against the program's variable space at compile time. An Execute with
// Forever set models the bare "execute ruleset:" thread form, which runs
// its rules unconditionally at all times.
type Execute struct {
	C       int
	Rules   []string
	Forever bool
}

// IfExists is "if exists (Cond): Then else: Else".
type IfExists struct {
	Cond string // boolean formula over state variables, textual
	Then Block
	Else Block
}

// Assign is "X := Expr" where Expr is a boolean formula, or "X := rand"
// for the uniform coin flip.
type Assign struct {
	Var  string
	Expr string // formula text, or "rand"
}

func (Repeat) stmt()    {}
func (RepeatLog) stmt() {}
func (Execute) stmt()   {}
func (IfExists) stmt()  {}
func (Assign) stmt()    {}

func (s Repeat) String() string    { return "repeat:" }
func (s RepeatLog) String() string { return fmt.Sprintf("repeat >= %d ln n times:", s.C) }
func (s Execute) String() string {
	if s.Forever {
		return "execute ruleset:"
	}
	return fmt.Sprintf("execute for >= %d ln n rounds ruleset:", s.C)
}
func (s IfExists) String() string { return fmt.Sprintf("if exists (%s):", s.Cond) }
func (s Assign) String() string   { return fmt.Sprintf("%s := %s", s.Var, s.Expr) }

// Special right-hand sides of Assign: the uniform coin flip and the
// constant assignments "X := on" / "X := off".
const (
	RandExpr = "rand"
	OnExpr   = "on"
	OffExpr  = "off"
)

// LoopDepth returns the maximum nesting depth of RepeatLog loops in the
// block (Execute leaves count as depth 1, matching the l_max of §4).
func (b Block) LoopDepth() int {
	max := 0
	for _, s := range b {
		d := 0
		switch st := s.(type) {
		case Repeat:
			d = st.Body.LoopDepth()
		case RepeatLog:
			d = 1 + st.Body.LoopDepth()
		case IfExists:
			d = st.Then.LoopDepth()
			if e := st.Else.LoopDepth(); e > d {
				d = e
			}
		case Execute:
			d = 1
		case Assign:
			d = 1 // compiles to two execute leaves (Fig. 1)
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MaxC returns the largest loop/round constant in the block (the paper
// takes the maximum across the code, w.l.o.g.).
func (b Block) MaxC() int {
	max := 0
	for _, s := range b {
		c := 0
		switch st := s.(type) {
		case Repeat:
			c = st.Body.MaxC()
		case RepeatLog:
			c = st.C
			if v := st.Body.MaxC(); v > c {
				c = v
			}
		case Execute:
			c = st.C
		case IfExists:
			c = st.Then.MaxC()
			if v := st.Else.MaxC(); v > c {
				c = v
			}
		}
		if c > max {
			max = c
		}
	}
	return max
}
