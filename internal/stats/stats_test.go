package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Error("empty summary not zero")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.Median != 5 {
		t.Errorf("median of {0,10} = %v", s.Median)
	}
	if math.Abs(s.P90-9) > 1e-12 {
		t.Errorf("p90 of {0,10} = %v", s.P90)
	}
}

func TestLinearExactFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := Linear(x, y)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = %v %v %v", a, b, r2)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, b, _ := Linear([]float64{1}, []float64{1}); !math.IsNaN(b) {
		t.Error("single point fit should be NaN")
	}
	if _, b, _ := Linear([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(b) {
		t.Error("vertical fit should be NaN")
	}
}

func TestPolylogExponentRecoversShape(t *testing.T) {
	// Generate t = 7·(ln n)^2.5 and recover the exponent.
	var ns, ts []float64
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		ns = append(ns, n)
		ts = append(ts, 7*math.Pow(math.Log(n), 2.5))
	}
	d, r2 := PolylogExponent(ns, ts)
	if math.Abs(d-2.5) > 1e-6 || r2 < 0.999 {
		t.Errorf("d = %v, r2 = %v", d, r2)
	}
}

func TestPolyExponentRecoversShape(t *testing.T) {
	var ns, ts []float64
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6} {
		ns = append(ns, n)
		ts = append(ts, 0.5*math.Pow(n, 0.75))
	}
	e, r2 := PolyExponent(ns, ts)
	if math.Abs(e-0.75) > 1e-6 || r2 < 0.999 {
		t.Errorf("e = %v, r2 = %v", e, r2)
	}
}

// TestExponentsDistinguishShapes: the polylog fit of a polynomial series
// has worse R² than its polynomial fit, and vice versa — the discriminator
// used in EXPERIMENTS.md.
func TestExponentsDistinguishShapes(t *testing.T) {
	var ns, poly, plog []float64
	for _, n := range []float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6} {
		ns = append(ns, n)
		poly = append(poly, math.Pow(n, 0.5))
		plog = append(plog, math.Pow(math.Log(n), 2))
	}
	_, r2PolyAsPoly := PolyExponent(ns, poly)
	_, r2PolyAsPlog := PolylogExponent(ns, poly)
	if r2PolyAsPoly <= r2PolyAsPlog {
		t.Errorf("polynomial series not identified: %v vs %v", r2PolyAsPoly, r2PolyAsPlog)
	}
	_, r2PlogAsPlog := PolylogExponent(ns, plog)
	dAsPoly, _ := PolyExponent(ns, plog)
	if r2PlogAsPlog < 0.999 {
		t.Errorf("polylog series misfit: %v", r2PlogAsPlog)
	}
	// A polylog series fit as a polynomial gives a tiny exponent.
	if dAsPoly > 0.4 {
		t.Errorf("polylog series produced poly exponent %v", dAsPoly)
	}
}

func TestSummarizeQuick(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1", "n", "rounds", "note")
	tb.AddRow(1024, 42.5, "ok")
	tb.AddRow(2048, 1234.5678, "with, comma")
	md := tb.Markdown()
	for _, want := range []string{"### E1", "| n | rounds | note |", "| 1024 | 42.50 | ok |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"with, comma"`) {
		t.Errorf("csv did not quote comma: %s", csv)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("E1", "n", "rounds")
	tb.AddRow(1024, 42.5)
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round-trip failed on %s: %v", data, err)
	}
	if got.Title != "E1" || len(got.Headers) != 2 || len(got.Rows) != 1 || got.Rows[0][1] != "42.50" {
		t.Errorf("JSON table mangled: %s", data)
	}
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "1024" {
		t.Error("Rows() exposed internal storage")
	}
}

func TestKS(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if d := KS(same, same); d != 0 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
	disjoint := []float64{101, 102, 103, 104}
	if d := KS(same, disjoint); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
	// Interleaved samples from the same grid should give a small statistic.
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = float64(2 * i)
		b[i] = float64(2*i + 1)
	}
	if d := KS(a, b); d > 0.05 {
		t.Errorf("KS of interleaved samples = %v, want ≤ 0.05", d)
	}
	if d := KS(nil, a); d != 1 {
		t.Errorf("KS with empty sample = %v, want 1", d)
	}
}

func TestChiSquareHomogeneity(t *testing.T) {
	if chi := ChiSquareHomogeneity([][]int64{{50, 50}, {50, 50}}); chi != 0 {
		t.Errorf("identical rows: chi2 = %v, want 0", chi)
	}
	// Strongly heterogeneous rows must exceed the α = 0.001 critical value
	// for 1 degree of freedom (10.83).
	if chi := ChiSquareHomogeneity([][]int64{{90, 10}, {10, 90}}); chi < 10.83 {
		t.Errorf("opposite rows: chi2 = %v, want ≥ 10.83", chi)
	}
	// Empty columns and empty tables are inert.
	if chi := ChiSquareHomogeneity([][]int64{{50, 0, 50}, {50, 0, 50}}); chi != 0 {
		t.Errorf("empty column: chi2 = %v, want 0", chi)
	}
	if chi := ChiSquareHomogeneity(nil); chi != 0 {
		t.Errorf("empty table: chi2 = %v, want 0", chi)
	}
	if chi := ChiSquareHomogeneity([][]int64{{0, 0}}); chi != 0 {
		t.Errorf("all-zero table: chi2 = %v, want 0", chi)
	}
}
