// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, least-squares fits of convergence
// times against powers of log n (to verify polylogarithmic shapes), and
// Markdown/CSV table rendering for EXPERIMENTS.md.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic sample statistics.
type Summary struct {
	N           int
	Mean, Std   float64
	Min, Max    float64
	Median, P90 float64
}

// Summarize computes summary statistics of the sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f ±%.1f median=%.1f p90=%.1f", s.N, s.Mean, s.Std, s.Median, s.P90)
}

// KS computes the two-sample Kolmogorov–Smirnov statistic
// sup_t |F_x(t) − F_y(t)| between the empirical CDFs of the two samples.
// The equivalence suites compare it against the α-level critical value
// c(α)·√((m+n)/(m·n)) with c(0.001) = 1.95 — for 150-vs-150 samples that is
// ≈ 0.225.
func KS(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 1
	}
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		// Step past the smallest remaining value on BOTH sides before
		// measuring, so tied values never contribute a spurious gap (the
		// empirical CDFs jump together at a shared point).
		t := x[i]
		if y[j] < t {
			t = y[j]
		}
		for i < len(x) && x[i] == t {
			i++
		}
		for j < len(y) && y[j] == t {
			j++
		}
		if gap := math.Abs(float64(i)/float64(len(x)) - float64(j)/float64(len(y))); gap > d {
			d = gap
		}
	}
	return d
}

// ChiSquareHomogeneity computes the Pearson chi-square statistic for the
// hypothesis that every row of the observed contingency table (rows =
// samples, columns = outcome categories) draws from the same categorical
// distribution, estimated by pooling. Columns empty across all rows
// contribute nothing. The caller compares against the critical value for
// (rows−1)·(nonEmptyCols−1) degrees of freedom — e.g. 13.82 at α = 0.001
// for a 3×2 table's 2 degrees of freedom.
func ChiSquareHomogeneity(obs [][]int64) float64 {
	if len(obs) == 0 {
		return 0
	}
	cols := len(obs[0])
	colSum := make([]float64, cols)
	rowSum := make([]float64, len(obs))
	var total float64
	for r, row := range obs {
		for c, v := range row {
			colSum[c] += float64(v)
			rowSum[r] += float64(v)
			total += float64(v)
		}
	}
	if total == 0 {
		return 0
	}
	var chi2 float64
	for r, row := range obs {
		for c, v := range row {
			exp := rowSum[r] * colSum[c] / total
			if exp == 0 {
				continue
			}
			d := float64(v) - exp
			chi2 += d * d / exp
		}
	}
	return chi2
}

// Linear fits y = a + b·x by ordinary least squares and returns a, b and
// the coefficient of determination R².
func Linear(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range x {
		d := y[i] - (a + b*x[i])
		ssRes += d * d
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2
}

// PolylogExponent estimates d in t(n) ≈ C·(ln n)^d by regressing
// ln t on ln ln n. It is the headline shape statistic of the experiment
// tables: leader election should give d ≈ 2, majority d ≈ 3, the
// polynomial baselines d ≫ (they do not fit a polylog at all — check R²
// and compare against PolyExponent).
func PolylogExponent(ns, times []float64) (d, r2 float64) {
	x := make([]float64, len(ns))
	y := make([]float64, len(times))
	for i := range ns {
		x[i] = math.Log(math.Log(ns[i]))
		y[i] = math.Log(times[i])
	}
	_, d, r2 = Linear(x, y)
	return d, r2
}

// PolyExponent estimates e in t(n) ≈ C·n^e by regressing ln t on ln n.
func PolyExponent(ns, times []float64) (e, r2 float64) {
	x := make([]float64, len(ns))
	y := make([]float64, len(times))
	for i := range ns {
		x[i] = math.Log(ns[i])
		y[i] = math.Log(times[i])
	}
	_, e, r2 = Linear(x, y)
	return e, r2
}

// Table accumulates rows and renders Markdown or CSV.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "—"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, r := range t.rows {
		cells := make([]string, len(r))
		for i, c := range r {
			if strings.ContainsAny(c, ",\"") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			cells[i] = c
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the formatted data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// MarshalJSON renders the table as {title, headers, rows} so benchmark
// results are machine-readable (BENCH_results.json) as well as human-
// readable (Markdown).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.rows})
}
