package fleet

import (
	"context"
	"strings"
	"testing"

	"popkit/internal/engine"
)

// TestOrderedSinkReordering feeds a hand-shuffled completion order and
// checks the inner sink sees replica order.
func TestOrderedSinkReordering(t *testing.T) {
	var got []int
	s := NewOrderedSink(SinkFunc(func(r Result) { got = append(got, r.ID) }))
	for _, id := range []int{3, 0, 2, 5, 1, 4} {
		s.Emit(Result{ID: id})
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("inner sink saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inner sink saw %v, want %v", got, want)
		}
	}
}

// TestOrderedSinkWorkerInvariance is the streaming counterpart of
// TestWorkerCountInvariance: the emitted sequence (IDs and values) must be
// identical for any worker count, not just the returned slice.
func TestOrderedSinkWorkerInvariance(t *testing.T) {
	jobs := makeJobs(24)
	stream := func(workers int) []uint64 {
		var seq []uint64
		sink := NewOrderedSink(SinkFunc(func(r Result) {
			seq = append(seq, r.Value.(uint64))
		}))
		Run(context.Background(), jobs, Options{Workers: workers, Sink: sink})
		return seq
	}
	want := stream(1)
	if len(want) != len(jobs) {
		t.Fatalf("1-worker stream has %d entries, want %d", len(want), len(jobs))
	}
	for _, workers := range []int{2, 4, 16} {
		got := stream(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: stream has %d entries, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: stream[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSinkPanicIsolation: a crashing sink must not kill workers or lose
// results.
func TestSinkPanicIsolation(t *testing.T) {
	jobs := makeJobs(8)
	var emitted int
	sink := SinkFunc(func(r Result) {
		emitted++
		if r.ID%2 == 0 {
			panic("observer exploded")
		}
	})
	res := Run(context.Background(), jobs, Options{Workers: 1, Sink: sink})
	if emitted != len(jobs) {
		t.Fatalf("sink saw %d results, want %d", emitted, len(jobs))
	}
	for i, r := range res {
		if r.Err != nil || r.Value == nil {
			t.Fatalf("replica %d lost to sink panic: %+v", i, r)
		}
	}
}

// TestPanicStackInError: the captured panic must carry the replica body's
// stack so a failed job is debuggable from the Result alone.
func TestPanicStackInError(t *testing.T) {
	jobs := makeJobs(2)
	jobs[1].Run = func(context.Context, *engine.RNG) (any, error) {
		explodeForStackTest()
		return nil, nil
	}
	res := Run(context.Background(), jobs, Options{Workers: 2})
	pe, ok := res[1].Err.(*PanicError)
	if !ok {
		t.Fatalf("want *PanicError, got %v", res[1].Err)
	}
	if !strings.Contains(string(pe.Stack), "explodeForStackTest") {
		t.Errorf("stack does not name the panicking frame:\n%s", pe.Stack)
	}
}

func explodeForStackTest() { panic("kaboom") }
