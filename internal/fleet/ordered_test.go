package fleet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"popkit/internal/engine"
)

// TestOrderedSinkReordering feeds a hand-shuffled completion order and
// checks the inner sink sees replica order.
func TestOrderedSinkReordering(t *testing.T) {
	var got []int
	s := NewOrderedSink(SinkFunc(func(r Result) { got = append(got, r.ID) }))
	for _, id := range []int{3, 0, 2, 5, 1, 4} {
		s.Emit(Result{ID: id})
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("inner sink saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inner sink saw %v, want %v", got, want)
		}
	}
}

// TestOrderedSinkWorkerInvariance is the streaming counterpart of
// TestWorkerCountInvariance: the emitted sequence (IDs and values) must be
// identical for any worker count, not just the returned slice.
func TestOrderedSinkWorkerInvariance(t *testing.T) {
	jobs := makeJobs(24)
	stream := func(workers int) []uint64 {
		var seq []uint64
		sink := NewOrderedSink(SinkFunc(func(r Result) {
			seq = append(seq, r.Value.(uint64))
		}))
		Run(context.Background(), jobs, Options{Workers: workers, Sink: sink})
		return seq
	}
	want := stream(1)
	if len(want) != len(jobs) {
		t.Fatalf("1-worker stream has %d entries, want %d", len(want), len(jobs))
	}
	for _, workers := range []int{2, 4, 16} {
		got := stream(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: stream has %d entries, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: stream[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSinkPanicIsolation: a crashing sink must not kill workers or lose
// results.
func TestSinkPanicIsolation(t *testing.T) {
	jobs := makeJobs(8)
	var emitted int
	sink := SinkFunc(func(r Result) {
		emitted++
		if r.ID%2 == 0 {
			panic("observer exploded")
		}
	})
	res := Run(context.Background(), jobs, Options{Workers: 1, Sink: sink})
	if emitted != len(jobs) {
		t.Fatalf("sink saw %d results, want %d", emitted, len(jobs))
	}
	for i, r := range res {
		if r.Err != nil || r.Value == nil {
			t.Fatalf("replica %d lost to sink panic: %+v", i, r)
		}
	}
}

// TestPanicStackInError: the captured panic must carry the replica body's
// stack so a failed job is debuggable from the Result alone.
func TestPanicStackInError(t *testing.T) {
	jobs := makeJobs(2)
	jobs[1].Run = func(context.Context, *engine.RNG) (any, error) {
		explodeForStackTest()
		return nil, nil
	}
	res := Run(context.Background(), jobs, Options{Workers: 2})
	pe, ok := res[1].Err.(*PanicError)
	if !ok {
		t.Fatalf("want *PanicError, got %v", res[1].Err)
	}
	if !strings.Contains(string(pe.Stack), "explodeForStackTest") {
		t.Errorf("stack does not name the panicking frame:\n%s", pe.Stack)
	}
}

func explodeForStackTest() { panic("kaboom") }

// TestOrderedSinkStartOffset: a resumed stream delivers [start, n) in order
// and never re-delivers the journaled prefix.
func TestOrderedSinkStartOffset(t *testing.T) {
	var got []int
	s := NewOrderedSinkAt(SinkFunc(func(r Result) { got = append(got, r.ID) }), 3)
	for _, id := range []int{6, 4, 3, 7, 5} {
		s.Emit(Result{ID: id})
	}
	want := []int{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("inner sink saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inner sink saw %v, want %v", got, want)
		}
	}
	if err := s.SinkErr(); err != nil {
		t.Fatalf("unexpected sink error: %v", err)
	}
}

// TestOrderedSinkPanicKeepsOrdering: an inner sink that panics on one
// result must not stall the cursor — every later result is still delivered
// in order, and the loss is reported by SinkErr instead of vanishing.
func TestOrderedSinkPanicKeepsOrdering(t *testing.T) {
	var got []int
	s := NewOrderedSink(SinkFunc(func(r Result) {
		if r.ID == 2 {
			panic("observer exploded")
		}
		got = append(got, r.ID)
	}))
	for _, id := range []int{2, 4, 0, 3, 1, 5} {
		s.Emit(Result{ID: id})
	}
	want := []int{0, 1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("inner sink saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inner sink saw %v, want %v", got, want)
		}
	}
	err := s.SinkErr()
	if err == nil || !strings.Contains(err.Error(), "replica 2") {
		t.Fatalf("sink panic not surfaced: %v", err)
	}
}

// TestOrderedSinkCancellationPanicOutOfOrder is the combined stress the
// serving path sees under chaos: a sweep cancelled mid-flight (so trailing
// replicas carry context errors), an inner sink that panics on one record,
// and out-of-order completion from concurrent workers. The inner sink must
// still see a strictly increasing ID sequence covering every replica except
// the panicked delivery, with the cancellation split surfaced as result
// errors and the sink panic surfaced by SinkErr — not a deadlock, not a
// silent gap.
func TestOrderedSinkCancellationPanicOutOfOrder(t *testing.T) {
	const n = 32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Replica 9's completion triggers the cancellation, so a nontrivial
	// suffix of the sweep is cancelled while earlier results stream.
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: i, Seed: uint64(i), Run: func(jctx context.Context, _ *engine.RNG) (any, error) {
			if i == 9 {
				cancel()
			}
			return i, nil
		}}
	}

	var mu sync.Mutex
	var got []int
	ordered := NewOrderedSink(SinkFunc(func(r Result) {
		if r.ID == 5 {
			panic("observer exploded")
		}
		mu.Lock()
		got = append(got, r.ID)
		mu.Unlock()
	}))
	results := Run(ctx, jobs, Options{Workers: 4, Sink: ordered})

	// Every replica has a result: a value or a cancellation error.
	for i, r := range results {
		if r.Err == nil && r.Value != i {
			t.Fatalf("replica %d value = %v", i, r.Value)
		}
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("replica %d unexpected error: %v", i, r.Err)
		}
	}

	// The stream is strictly increasing, covers all n replicas minus the
	// panicked delivery, and skips exactly ID 5.
	seen := map[int]bool{}
	prev := -1
	for _, id := range got {
		if id <= prev {
			t.Fatalf("stream out of order: %v", got)
		}
		prev = id
		seen[id] = true
	}
	if len(got) != n-1 || seen[5] {
		t.Fatalf("stream = %v, want all IDs except 5", got)
	}
	if err := ordered.SinkErr(); err == nil || !strings.Contains(err.Error(), "replica 5") {
		t.Fatalf("sink panic not surfaced: %v", err)
	}
}
