package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"popkit/internal/engine"
	"popkit/internal/fault"
)

// sumJob consumes the replica's RNG stream, so the value depends only on
// the seed — the determinism contract under test.
func sumJob(steps int) func(context.Context, *engine.RNG) (any, error) {
	return func(_ context.Context, rng *engine.RNG) (any, error) {
		var acc uint64
		for i := 0; i < steps; i++ {
			acc += rng.Uint64()
		}
		return acc, nil
	}
}

func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: i, Tag: "t", Seed: engine.SplitSeed(42, uint64(i)), Run: sumJob(100 + i)}
	}
	return jobs
}

func values(results []Result, t *testing.T) []uint64 {
	t.Helper()
	out := make([]uint64, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("replica %d failed: %v", i, r.Err)
		}
		out[i] = r.Value.(uint64)
	}
	return out
}

// TestWorkerCountInvariance is the core fleet determinism guarantee: the
// ordered results are identical for any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	jobs := makeJobs(40)
	want := values(Run(context.Background(), jobs, Options{Workers: 1}), t)
	for _, workers := range []int{2, 3, 8, 64} {
		got := values(Run(context.Background(), jobs, Options{Workers: workers}), t)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: replica %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestResultMetadata(t *testing.T) {
	jobs := makeJobs(5)
	res := Run(context.Background(), jobs, Options{Workers: 2})
	for i, r := range res {
		if r.ID != i || r.Tag != "t" || r.Seed != jobs[i].Seed {
			t.Errorf("replica %d metadata mismatch: %+v", i, r)
		}
		if r.Elapsed <= 0 {
			t.Errorf("replica %d has no elapsed time", i)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	jobs := makeJobs(6)
	jobs[3].Run = func(context.Context, *engine.RNG) (any, error) {
		panic("replica exploded")
	}
	res := Run(context.Background(), jobs, Options{Workers: 3})
	var pe *PanicError
	if !errors.As(res[3].Err, &pe) {
		t.Fatalf("replica 3: want PanicError, got %v", res[3].Err)
	}
	if !strings.Contains(pe.Error(), "replica exploded") {
		t.Errorf("panic message lost: %v", pe)
	}
	for i, r := range res {
		if i != 3 && r.Err != nil {
			t.Errorf("healthy replica %d infected: %v", i, r.Err)
		}
	}
}

// TestRetryRecoversPanic: a replica that panics on its first attempts must
// be re-executed from its own seed, so the recovered sweep is value-
// identical to a fault-free one.
func TestRetryRecoversPanic(t *testing.T) {
	jobs := makeJobs(12)
	want := values(Run(context.Background(), jobs, Options{Workers: 1}), t)

	var crashes atomic.Int64
	for i := range jobs {
		inner := jobs[i].Run
		var attempts atomic.Int64
		jobs[i].Run = func(ctx context.Context, rng *engine.RNG) (any, error) {
			if attempts.Add(1) <= 2 {
				crashes.Add(1)
				panic("transient crash")
			}
			return inner(ctx, rng)
		}
	}
	res := Run(context.Background(), jobs, Options{Workers: 4, MaxRetries: 3})
	got := values(res, t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica %d recovered to %d, want %d", i, got[i], want[i])
		}
		if res[i].Attempts != 3 {
			t.Errorf("replica %d took %d attempts, want 3", i, res[i].Attempts)
		}
	}
	if crashes.Load() != int64(2*len(jobs)) {
		t.Fatalf("crash count = %d, want %d", crashes.Load(), 2*len(jobs))
	}
}

// TestRetryBudgetExhausted: when every attempt panics, the final attempt's
// PanicError is the result.
func TestRetryBudgetExhausted(t *testing.T) {
	jobs := makeJobs(2)
	var attempts atomic.Int64
	jobs[1].Run = func(context.Context, *engine.RNG) (any, error) {
		attempts.Add(1)
		panic("hard crash")
	}
	res := Run(context.Background(), jobs, Options{Workers: 1, MaxRetries: 2})
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("want PanicError, got %v", res[1].Err)
	}
	if attempts.Load() != 3 || res[1].Attempts != 3 {
		t.Fatalf("attempts = %d (recorded %d), want 3", attempts.Load(), res[1].Attempts)
	}
	if res[0].Err != nil || res[0].Attempts != 1 {
		t.Errorf("healthy replica affected: %+v", res[0])
	}
}

// TestRetryDoesNotMaskDeterministicFailures: body errors, timeouts, and
// cancellation must not consume retry attempts.
func TestRetryDoesNotMaskDeterministicFailures(t *testing.T) {
	boom := errors.New("deterministic failure")
	var bodyRuns atomic.Int64
	jobs := makeJobs(2)
	jobs[0].Run = func(context.Context, *engine.RNG) (any, error) {
		bodyRuns.Add(1)
		return nil, boom
	}
	jobs[1].Timeout = 5 * time.Millisecond
	jobs[1].Run = func(ctx context.Context, _ *engine.RNG) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	res := Run(context.Background(), jobs, Options{Workers: 2, MaxRetries: 5})
	if !errors.Is(res[0].Err, boom) || bodyRuns.Load() != 1 {
		t.Fatalf("body error retried: runs=%d err=%v", bodyRuns.Load(), res[0].Err)
	}
	if !errors.Is(res[1].Err, context.DeadlineExceeded) || res[1].Attempts != 1 {
		t.Fatalf("timeout retried: attempts=%d err=%v", res[1].Attempts, res[1].Err)
	}
}

// TestReplicaFailpointRetry drives the fleet/replica failpoint end to end:
// a deterministic times-bounded panic trigger kills early attempts and the
// retry budget recovers the sweep to fault-free values.
func TestReplicaFailpointRetry(t *testing.T) {
	t.Cleanup(fault.Reset)
	jobs := makeJobs(6)
	want := values(Run(context.Background(), jobs, Options{Workers: 1}), t)

	if err := fault.Enable("fleet/replica=panic(times=4)"); err != nil {
		t.Fatal(err)
	}
	res := Run(context.Background(), jobs, Options{Workers: 1, MaxRetries: 6})
	got := values(res, t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica %d = %d under faults, want %d", i, got[i], want[i])
		}
	}
	var retried int
	for _, r := range res {
		retried += r.Attempts - 1
	}
	if retried != 4 {
		t.Fatalf("consumed %d retries, want 4 (one per injected panic)", retried)
	}

	// Injected errors are retryable too.
	fault.Reset()
	if err := fault.Enable("fleet/replica=error(times=2)"); err != nil {
		t.Fatal(err)
	}
	got = values(Run(context.Background(), jobs, Options{Workers: 1, MaxRetries: 3}), t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica %d = %d under injected errors, want %d", i, got[i], want[i])
		}
	}

	// Without a retry budget the injected failure is the result.
	fault.Reset()
	if err := fault.Enable("fleet/replica=error(times=1)"); err != nil {
		t.Fatal(err)
	}
	res = Run(context.Background(), jobs, Options{Workers: 1})
	if !fault.IsInjected(res[0].Err) {
		t.Fatalf("want injected error surfaced, got %v", res[0].Err)
	}
}

func TestReplicaTimeout(t *testing.T) {
	jobs := makeJobs(3)
	jobs[1].Timeout = 10 * time.Millisecond
	jobs[1].Run = func(ctx context.Context, _ *engine.RNG) (any, error) {
		<-ctx.Done() // cooperative body: stops when told
		return nil, ctx.Err()
	}
	res := Run(context.Background(), jobs, Options{Workers: 2})
	if !errors.Is(res[1].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", res[1].Err)
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Error("timeout leaked into other replicas")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bodies atomic.Int64
	inFirst := make(chan struct{})
	release := make(chan struct{})
	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: i, Run: func(context.Context, *engine.RNG) (any, error) {
			bodies.Add(1)
			if i == 0 {
				close(inFirst)
				<-release
			}
			return "done", nil
		}}
	}
	go func() {
		<-inFirst // replica 0 is in flight…
		cancel()  // …when the sweep is cancelled
		close(release)
	}()
	res := Run(ctx, jobs, Options{Workers: 1})
	// Replica 0 raced the cancel — either outcome is fine. Every later
	// replica must be marked cancelled without its body having run.
	for i := 1; i < len(jobs); i++ {
		if !errors.Is(res[i].Err, context.Canceled) {
			t.Errorf("replica %d: want Canceled, got value=%v err=%v", i, res[i].Value, res[i].Err)
		}
	}
	if got := bodies.Load(); got != 1 {
		t.Fatalf("%d replica bodies ran after cancellation, want 1", got)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	jobs := makeJobs(7)
	jobs[2].Run = func(context.Context, *engine.RNG) (any, error) {
		return nil, errors.New("boom")
	}
	Run(context.Background(), jobs, Options{Workers: 3, Sink: sink})
	seen := map[int]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec struct {
			ID   int     `json:"id"`
			Seed uint64  `json:"seed"`
			Err  string  `json:"err"`
			Ms   float64 `json:"elapsed_ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		seen[rec.ID] = true
		if rec.ID == 2 && rec.Err != "boom" {
			t.Errorf("replica 2 error not recorded: %+v", rec)
		}
		if rec.Seed != jobs[rec.ID].Seed {
			t.Errorf("replica %d seed mismatch", rec.ID)
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("sink saw %d replicas, want %d", len(seen), len(jobs))
	}
}

func TestCollector(t *testing.T) {
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: i, Tag: fmt.Sprintf("g%d", i%2), Run: func(context.Context, *engine.RNG) (any, error) {
			return float64(i), nil
		}}
	}
	col := NewCollector()
	Run(context.Background(), jobs, Options{Workers: 4, Sink: col})
	if got := col.Tags(); len(got) != 2 || got[0] != "g0" || got[1] != "g1" {
		t.Fatalf("tags = %v", got)
	}
	even := col.Samples("g0")
	want := []float64{0, 2, 4, 6, 8}
	if len(even) != len(want) {
		t.Fatalf("g0 samples = %v", even)
	}
	for i := range want {
		if even[i] != want[i] {
			t.Fatalf("g0 samples out of replica order: %v", even)
		}
	}
	if s := col.Summary("g1"); s.N != 5 || s.Mean != 5 {
		t.Errorf("g1 summary = %+v", s)
	}
}

func TestProgressReports(t *testing.T) {
	// Run joins the reporter goroutine before returning, so reading the
	// buffer afterwards is race-free.
	var buf bytes.Buffer
	jobs := makeJobs(12)
	Run(context.Background(), jobs, Options{
		Workers:  3,
		Progress: &Progress{W: &buf, Interval: time.Millisecond, Label: "test"},
	})
	out := buf.String()
	if !strings.Contains(out, "test: ") || !strings.Contains(out, "12/12 done") {
		t.Fatalf("progress output missing final report:\n%s", out)
	}
}

// TestStealing races four workers over the deque set and checks every job
// is claimed exactly once — workers that drain their own deque must steal
// the rest without duplicating or dropping claims.
func TestStealing(t *testing.T) {
	const n = 50
	d := newDeques(n, 4)
	claimed := make([]atomic.Int32, n)
	var finished atomic.Int32
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			for {
				idx, _, ok := d.next(w)
				if !ok {
					if finished.Add(1) == 4 {
						close(done)
					}
					return
				}
				claimed[idx].Add(1)
			}
		}(w)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deque drain deadlocked")
	}
	for i := range claimed {
		if c := claimed[i].Load(); c != 1 {
			t.Fatalf("job %d claimed %d times", i, c)
		}
	}
}

func TestSplitSeedStreams(t *testing.T) {
	// Distinct replicas under one root must get distinct seeds, and the
	// derivation must be a pure function.
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 4096; i++ {
		s := engine.SplitSeed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SplitSeed collision: replicas %d and %d both get %#x", prev, i, s)
		}
		seen[s] = i
	}
	if engine.SplitSeed(7, 3) != engine.SplitSeed(7, 3) {
		t.Fatal("SplitSeed is not deterministic")
	}
	// Replica streams must differ from the raw root stream and each other.
	a := engine.NewReplicaRNG(7, 0).Uint64()
	b := engine.NewReplicaRNG(7, 1).Uint64()
	c := engine.NewRNG(7).Uint64()
	if a == b || a == c {
		t.Fatalf("replica streams not independent: %#x %#x %#x", a, b, c)
	}
}
