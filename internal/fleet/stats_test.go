package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"popkit/internal/engine"
)

// TestStatsAccounting runs a lopsided sweep (one slow worker forces steals)
// and checks the tallies balance: jobs sum to the sweep size, busy time is
// recorded, and steals appear when workers outnumber their fair share of
// slow jobs.
func TestStatsAccounting(t *testing.T) {
	const n = 40
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID:   i,
			Seed: uint64(i + 1),
			Run: func(ctx context.Context, rng *engine.RNG) (any, error) {
				// The first deque's jobs are slow, so other workers drain
				// their own deques and steal from worker 0.
				if i < n/4 {
					time.Sleep(2 * time.Millisecond)
				}
				return i, nil
			},
		}
	}
	var stats Stats
	results := Run(context.Background(), jobs, Options{Workers: 4, Stats: &stats})
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i {
			t.Fatalf("result %d corrupted: %+v", i, r)
		}
	}
	ws := stats.Workers()
	if len(ws) != 4 {
		t.Fatalf("worker slots = %d, want 4", len(ws))
	}
	tot := stats.Totals()
	if tot.Jobs != n {
		t.Fatalf("total jobs = %d, want %d", tot.Jobs, n)
	}
	if tot.Retries != 0 {
		t.Fatalf("retries = %d, want 0", tot.Retries)
	}
	if tot.Busy <= 0 {
		t.Fatal("no busy time recorded")
	}
	if tot.Steals == 0 {
		t.Fatal("lopsided sweep recorded no steals")
	}
}

// TestStatsRetries checks retry attempts land in the tallies: a replica
// that panics on its first attempt consumes one retry.
func TestStatsRetries(t *testing.T) {
	attempts := 0
	jobs := []Job{{
		ID:   0,
		Seed: 1,
		Run: func(ctx context.Context, rng *engine.RNG) (any, error) {
			attempts++
			if attempts == 1 {
				panic("first attempt dies")
			}
			return "ok", nil
		},
	}}
	var stats Stats
	results := Run(context.Background(), jobs, Options{Workers: 1, MaxRetries: 2, Stats: &stats})
	if results[0].Err != nil || results[0].Attempts != 2 {
		t.Fatalf("retry did not recover: %+v", results[0])
	}
	if tot := stats.Totals(); tot.Retries != 1 || tot.Jobs != 1 {
		t.Fatalf("tallies = %+v, want 1 job / 1 retry", tot)
	}
}

// TestStatsDoNotChangeResults pins the observability contract: the same
// sweep with and without stats produces identical values, and a nil Stats
// is inert.
func TestStatsDoNotChangeResults(t *testing.T) {
	mk := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			jobs[i] = Job{ID: i, Seed: uint64(i + 7), Run: func(ctx context.Context, rng *engine.RNG) (any, error) {
				return rng.Intn(1 << 20), nil
			}}
		}
		return jobs
	}
	plain := Run(context.Background(), mk(), Options{Workers: 3})
	var stats Stats
	traced := Run(context.Background(), mk(), Options{Workers: 3, Stats: &stats})
	for i := range plain {
		if plain[i].Value != traced[i].Value {
			t.Fatalf("replica %d diverged with stats: %v vs %v", i, plain[i].Value, traced[i].Value)
		}
	}
	var nilStats *Stats
	if nilStats.Workers() != nil || nilStats.Totals() != (WorkerStats{}) {
		t.Fatal("nil Stats not inert")
	}
}

// TestStatsErrorJobsStillCounted: failed replicas count as executed jobs.
func TestStatsErrorJobsStillCounted(t *testing.T) {
	jobs := []Job{{ID: 0, Seed: 1, Run: func(ctx context.Context, rng *engine.RNG) (any, error) {
		return nil, errors.New("body error")
	}}}
	var stats Stats
	Run(context.Background(), jobs, Options{Workers: 1, Stats: &stats})
	if tot := stats.Totals(); tot.Jobs != 1 || tot.Retries != 0 {
		t.Fatalf("tallies = %+v, want 1 job / 0 retries (body errors are final)", tot)
	}
}
