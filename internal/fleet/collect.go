package fleet

import (
	"sort"
	"sync"

	"popkit/internal/stats"
)

// Collector aggregates per-tag numeric samples from a running sweep and
// summarizes them through internal/stats, exactly as the sequential
// experiment loops do after-the-fact. It implements ResultSink for replicas
// whose Value is a float64; richer replica payloads add samples explicitly
// via Add (typically from a SinkFunc that unpacks the payload).
type Collector struct {
	mu      sync.Mutex
	samples map[string][]float64
	// order[i] remembers the position of each sample so Samples can return
	// them in replica order regardless of completion order.
	order map[string][]int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		samples: make(map[string][]float64),
		order:   make(map[string][]int),
	}
}

// Add records one sample for the tag at the given replica position.
func (c *Collector) Add(tag string, replica int, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples[tag] = append(c.samples[tag], v)
	c.order[tag] = append(c.order[tag], replica)
}

// Emit implements ResultSink for float64-valued replicas; results carrying
// errors or other value types are ignored.
func (c *Collector) Emit(r Result) {
	if r.Err != nil {
		return
	}
	if v, ok := r.Value.(float64); ok {
		c.Add(r.Tag, r.ID, v)
	}
}

// Samples returns the tag's samples sorted into replica order, so the
// sequence is reproducible for any worker count.
func (c *Collector) Samples(tag string) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.order[tag]
	vals := c.samples[tag]
	perm := make([]int, len(idx))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return idx[perm[a]] < idx[perm[b]] })
	out := make([]float64, len(vals))
	for i, p := range perm {
		out[i] = vals[p]
	}
	return out
}

// Summary summarizes the tag's samples (in replica order).
func (c *Collector) Summary(tag string) stats.Summary {
	return stats.Summarize(c.Samples(tag))
}

// Tags returns the known tags, sorted.
func (c *Collector) Tags() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	tags := make([]string, 0, len(c.samples))
	for t := range c.samples {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}
