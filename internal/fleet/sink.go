package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ResultSink receives results as replicas complete. Emit is called
// concurrently from worker goroutines, in completion order (which depends
// on scheduling); anything that must be reproducible should instead consume
// the ordered slice returned by Run.
type ResultSink interface {
	Emit(Result)
}

// SinkFunc adapts a function to ResultSink. The function must be safe for
// concurrent calls.
type SinkFunc func(Result)

// Emit implements ResultSink.
func (f SinkFunc) Emit(r Result) { f(r) }

// MultiSink fans each result out to every sink in order.
type MultiSink []ResultSink

// Emit implements ResultSink.
func (m MultiSink) Emit(r Result) {
	for _, s := range m {
		s.Emit(r)
	}
}

// JSONLSink streams one JSON object per completed replica to a writer —
// a machine-readable progress log that survives a crashed or cancelled
// sweep. Lines are written atomically under a mutex.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps the writer; the caller retains ownership (and closes
// it, if applicable) after the sweep.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// jsonlRecord is the wire format of one replica line.
type jsonlRecord struct {
	ID        int             `json:"id"`
	Tag       string          `json:"tag,omitempty"`
	Seed      uint64          `json:"seed"`
	Worker    int             `json:"worker"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Value     json.RawMessage `json:"value,omitempty"`
	Err       string          `json:"err,omitempty"`
}

// Emit implements ResultSink.
func (s *JSONLSink) Emit(r Result) {
	rec := jsonlRecord{
		ID:        r.ID,
		Tag:       r.Tag,
		Seed:      r.Seed,
		Worker:    r.Worker,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	if r.Value != nil {
		if b, err := json.Marshal(r.Value); err == nil {
			rec.Value = b
		} else {
			rec.Value, _ = json.Marshal(fmt.Sprintf("%v", r.Value))
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(line)
	io.WriteString(s.w, "\n")
}
