// Package fleet fans independent simulation replicas out across a pool of
// workers. The experiment harness is dominated by Monte-Carlo sweeps —
// dozens of (protocol, n, seed) replicas that share nothing but read-only
// compiled protocols — so the package's contract is determinism by
// construction: every replica derives all of its randomness from its own
// seed (see engine.SplitSeed), results are returned in job order, and a
// sweep therefore produces byte-identical output for any worker count,
// including the sequential loop it replaces.
//
// The executor is a bounded work-stealing pool: jobs are split into
// contiguous per-worker deques, owners pop from the front, and an idle
// worker steals from the back of the most loaded victim. Replicas that
// panic are captured and reported as error results instead of killing the
// sweep; per-replica timeouts and context cancellation mark the affected
// results with the corresponding error. With Options.MaxRetries set, a
// panicking (or fault-injected) replica is re-executed from its own seed —
// because every attempt restarts the replica's entire RNG stream, a
// recovered replica's value is byte-identical to one that never crashed.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"popkit/internal/engine"
	"popkit/internal/fault"
)

// fpReplica injects into replica execution, inside the panic-capture
// goroutine and before the body runs: panic exercises the retry path the
// same way a crashing body would, error/cancel surface as the replica's
// result, sleep perturbs scheduling.
var fpReplica = fault.New("fleet/replica",
	"fires in the replica goroutine before the body runs (panic is retried under MaxRetries)")

// Job is one independent replica of a sweep.
type Job struct {
	// ID is the replica index; Run's result lands at this position of the
	// slice returned by Run (jobs are addressed by position, so IDs are
	// informational and normally equal the position).
	ID int
	// Tag labels the configuration point (e.g. "E3/n=20000") for sinks and
	// aggregation.
	Tag string
	// Seed is the replica's RNG seed. The executor hands Run an
	// engine.RNG seeded with it; bodies that build their own generators
	// (or pass the seed to frame.New) should derive them from this value
	// only, so the trajectory is independent of scheduling.
	Seed uint64
	// Timeout bounds the replica's wall-clock time; zero means none. On
	// expiry the result carries context.DeadlineExceeded. The replica's
	// goroutine is signalled via its context; a body that never checks it
	// keeps running detached, but the sweep moves on.
	Timeout time.Duration
	// Run computes the replica. Its value is opaque to the executor.
	Run func(ctx context.Context, rng *engine.RNG) (any, error)
}

// Result is the outcome of one replica.
type Result struct {
	ID      int
	Tag     string
	Seed    uint64
	Value   any
	Err     error
	Elapsed time.Duration
	// Worker is the index of the worker that ran the replica. It depends
	// on scheduling — reproducible output must not consume it.
	Worker int
	// Attempts is the number of executions the replica took (1 plus the
	// retries consumed). Like Worker it is diagnostic: reproducible output
	// must not consume it, since fault triggers may be probabilistic.
	Attempts int
}

// PanicError reports a replica that panicked; the sweep continues.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("replica panicked: %v\n%s", e.Value, e.Stack)
}

// Options configures a sweep.
type Options struct {
	// Workers is the pool size; values < 1 mean runtime.GOMAXPROCS(0).
	Workers int
	// Sink, when non-nil, receives every result as it completes. It is
	// called concurrently from worker goroutines; implementations must be
	// safe for concurrent use (the ones in this package are).
	Sink ResultSink
	// Progress, when non-nil, receives periodic progress reports.
	Progress *Progress
	// MaxRetries re-executes a replica whose attempt ended in a panic or
	// an injected fault, up to this many extra attempts. Each attempt
	// restarts from the replica's own seed, so a recovered replica is
	// indistinguishable from one that never crashed. Timeouts, context
	// cancellation, and ordinary body errors are not retried: they are
	// either deliberate aborts or deterministic, so re-running them would
	// waste the budget.
	MaxRetries int
	// Stats, when non-nil, is filled with per-worker utilization tallies
	// (jobs run, steals, retry attempts, busy time). Valid once Run
	// returns; collecting stats never affects scheduling or results.
	Stats *Stats
}

// WorkerStats is one worker's tallies for a single Run call.
type WorkerStats struct {
	// Jobs is the number of replicas the worker executed.
	Jobs uint64 `json:"jobs"`
	// Steals is how many of those were claimed from another worker's
	// deque — the load-balancing traffic.
	Steals uint64 `json:"steals"`
	// Retries is the number of extra attempts consumed by crashed
	// replicas (sum of Attempts−1).
	Retries uint64 `json:"retries"`
	// Busy is wall-clock time spent executing replicas; Busy divided by
	// the sweep's elapsed time is the worker's utilization.
	Busy time.Duration `json:"busy_ns"`
}

// Stats aggregates per-worker tallies for one Run call. Each worker writes
// only its own slot during the sweep, so no synchronization is needed to
// read the stats after Run returns. Methods are nil-safe.
type Stats struct {
	workers []WorkerStats
}

// Workers returns a copy of the per-worker tallies.
func (s *Stats) Workers() []WorkerStats {
	if s == nil {
		return nil
	}
	return append([]WorkerStats(nil), s.workers...)
}

// Totals sums the tallies across workers.
func (s *Stats) Totals() WorkerStats {
	var t WorkerStats
	if s == nil {
		return t
	}
	for _, w := range s.workers {
		t.Jobs += w.Jobs
		t.Steals += w.Steals
		t.Retries += w.Retries
		t.Busy += w.Busy
	}
	return t
}

// Run executes the jobs across the pool and returns their results indexed
// by job position. It blocks until every replica has completed, timed out,
// or been cancelled; cancelling ctx marks not-yet-started replicas with
// ctx.Err() without running them.
func Run(ctx context.Context, jobs []Job, opts Options) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	deques := newDeques(len(jobs), workers)
	var done atomic.Int64
	var inFlight atomic.Int64

	if opts.Stats != nil {
		opts.Stats.workers = make([]WorkerStats, workers)
	}

	if opts.Progress != nil {
		stop := opts.Progress.start(len(jobs), &done, &inFlight)
		defer stop()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ws *WorkerStats
			if opts.Stats != nil {
				ws = &opts.Stats.workers[w]
			}
			for {
				idx, stolen, ok := deques.next(w)
				if !ok {
					return
				}
				inFlight.Add(1)
				results[idx] = runOne(ctx, jobs[idx], w, opts.MaxRetries)
				inFlight.Add(-1)
				done.Add(1)
				if ws != nil {
					ws.Jobs++
					if stolen {
						ws.Steals++
					}
					ws.Retries += uint64(results[idx].Attempts - 1)
					ws.Busy += results[idx].Elapsed
				}
				if opts.Sink != nil {
					emit(opts.Sink, results[idx])
				}
			}
		}(w)
	}
	wg.Wait()
	return results
}

// emit delivers a result to the sink, swallowing sink panics: a crashing
// observer must not take down the sweep (the result itself is still in the
// ordered slice Run returns, so nothing is lost).
func emit(sink ResultSink, r Result) {
	defer func() { recover() }()
	sink.Emit(r)
}

// runOne executes a single replica, re-running crashed attempts up to
// maxRetries times. Every attempt gets a fresh RNG from the job's seed, so
// whichever attempt completes produces the replica's one deterministic
// value.
func runOne(ctx context.Context, job Job, worker, maxRetries int) Result {
	res := Result{ID: job.ID, Tag: job.Tag, Seed: job.Seed, Worker: worker}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		if err := ctx.Err(); err != nil {
			res.Err = err
			break
		}
		res.Value, res.Err = runAttempt(ctx, job)
		if res.Err == nil || attempt >= maxRetries || !retryable(res.Err) {
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// retryable reports whether an attempt's failure is a crash worth
// re-executing: a captured panic or an injected fault. Everything else
// (timeouts, cancellation, body errors) is final.
func retryable(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) || fault.IsInjected(err)
}

// runAttempt executes one attempt with panic capture and an optional
// deadline. The body runs in its own goroutine so a timeout can abandon it;
// the buffered channel lets an abandoned body finish without leaking a
// blocked goroutine.
func runAttempt(ctx context.Context, job Job) (any, error) {
	jctx := ctx
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
	}
	type outcome struct {
		value any
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				stack := make([]byte, 16<<10)
				stack = stack[:runtime.Stack(stack, false)]
				ch <- outcome{err: &PanicError{Value: r, Stack: stack}}
			}
		}()
		if err := fpReplica.Inject(jctx); err != nil {
			ch <- outcome{err: err}
			return
		}
		v, err := job.Run(jctx, engine.NewRNG(job.Seed))
		ch <- outcome{value: v, err: err}
	}()
	select {
	case out := <-ch:
		return out.value, out.err
	case <-jctx.Done():
		return nil, jctx.Err()
	}
}

// deques is the work-stealing queue set: worker w owns the contiguous job
// range [bounds[w], bounds[w+1]) packed into one atomic word as
// head<<32 | tail. The owner CASes head forward; thieves CAS tail backward,
// so claims are unique without locks.
type deques struct {
	words  []atomic.Uint64
	bounds []int
}

func newDeques(jobs, workers int) *deques {
	d := &deques{
		words:  make([]atomic.Uint64, workers),
		bounds: make([]int, workers+1),
	}
	for w := 0; w < workers; w++ {
		lo := w * jobs / workers
		hi := (w + 1) * jobs / workers
		d.bounds[w] = lo
		d.bounds[w+1] = hi
		d.words[w].Store(uint64(lo)<<32 | uint64(hi))
	}
	return d
}

// next claims the worker's next job index: its own deque front first, then
// the back of the fullest victim. stolen reports whether the claim came
// from a victim's deque; ok=false means the whole sweep is drained.
func (d *deques) next(w int) (idx int, stolen, ok bool) {
	if idx, ok := d.popFront(w); ok {
		return idx, false, true
	}
	for {
		victim, remaining := -1, 0
		for v := range d.words {
			if v == w {
				continue
			}
			word := d.words[v].Load()
			if r := int(word&0xffffffff) - int(word>>32); r > remaining {
				victim, remaining = v, r
			}
		}
		if victim < 0 {
			return 0, false, false
		}
		if idx, ok := d.popBack(victim); ok {
			return idx, true, true
		}
		// Lost the race for that victim; rescan.
	}
}

func (d *deques) popFront(w int) (int, bool) {
	for {
		word := d.words[w].Load()
		head, tail := word>>32, word&0xffffffff
		if head >= tail {
			return 0, false
		}
		if d.words[w].CompareAndSwap(word, (head+1)<<32|tail) {
			return int(head), true
		}
	}
}

func (d *deques) popBack(w int) (int, bool) {
	for {
		word := d.words[w].Load()
		head, tail := word>>32, word&0xffffffff
		if head >= tail {
			return 0, false
		}
		if d.words[w].CompareAndSwap(word, head<<32|(tail-1)) {
			return int(tail - 1), true
		}
	}
}
