package fleet

import "sync"

// OrderedSink forwards results to an inner sink in replica-ID order (0, 1,
// 2, …), regardless of the completion order the workers produce. Results
// that finish early are buffered until every lower ID has been emitted, so
// the inner sink sees the exact sequence a one-worker sweep would produce —
// this is what lets a streaming consumer (an NDJSON response body, a CLI
// stdout) be byte-identical for any worker count.
//
// The inner sink is always invoked under the OrderedSink's mutex, so it
// additionally never sees concurrent Emit calls, even though OrderedSink
// itself is safe for concurrent use. Job IDs must be the dense range
// [0, len(jobs)) — the fleet's normal addressing scheme.
type OrderedSink struct {
	mu      sync.Mutex
	next    int
	pending map[int]Result
	inner   ResultSink
}

// NewOrderedSink wraps inner so it receives results in replica order.
func NewOrderedSink(inner ResultSink) *OrderedSink {
	return &OrderedSink{pending: make(map[int]Result), inner: inner}
}

// Emit implements ResultSink.
func (s *OrderedSink) Emit(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[r.ID] = r
	for {
		rr, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		s.inner.Emit(rr)
	}
}
