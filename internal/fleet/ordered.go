package fleet

import (
	"fmt"
	"sync"
)

// OrderedSink forwards results to an inner sink in replica-ID order (0, 1,
// 2, …), regardless of the completion order the workers produce. Results
// that finish early are buffered until every lower ID has been emitted, so
// the inner sink sees the exact sequence a one-worker sweep would produce —
// this is what lets a streaming consumer (an NDJSON response body, a CLI
// stdout) be byte-identical for any worker count.
//
// The inner sink is always invoked under the OrderedSink's mutex, so it
// additionally never sees concurrent Emit calls, even though OrderedSink
// itself is safe for concurrent use. A panicking inner sink is isolated
// per-result: the ordering cursor still advances (later results are not
// silently dropped behind a stalled cursor) and the first panic is retained
// for SinkErr, so the sweep can report the lost delivery instead of
// claiming success with a gap in the stream. Job IDs must be the dense
// range [start, start+len(jobs)) — the fleet's normal addressing scheme.
type OrderedSink struct {
	mu      sync.Mutex
	next    int
	pending map[int]Result
	inner   ResultSink
	sinkErr error
}

// NewOrderedSink wraps inner so it receives results in replica order,
// starting at replica 0.
func NewOrderedSink(inner ResultSink) *OrderedSink { return NewOrderedSinkAt(inner, 0) }

// NewOrderedSinkAt wraps inner so it receives results in replica order,
// starting at replica ID start — the resume case, where replicas below
// start were already delivered by an earlier (checkpointed) run.
func NewOrderedSinkAt(inner ResultSink, start int) *OrderedSink {
	return &OrderedSink{next: start, pending: make(map[int]Result), inner: inner}
}

// Emit implements ResultSink.
func (s *OrderedSink) Emit(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[r.ID] = r
	for {
		rr, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		s.deliver(rr)
	}
}

// deliver hands one result to the inner sink, capturing a panic so a
// crashing observer cannot stall the ordering cursor.
func (s *OrderedSink) deliver(r Result) {
	defer func() {
		if v := recover(); v != nil && s.sinkErr == nil {
			s.sinkErr = fmt.Errorf("ordered sink: inner sink panicked on replica %d: %v", r.ID, v)
		}
	}()
	s.inner.Emit(r)
}

// SinkErr returns the first inner-sink panic observed, or nil. Consumers
// that stream results (rather than reading Run's slice) should check it
// after the sweep: a non-nil value means at least one result never reached
// the inner sink.
func (s *OrderedSink) SinkErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinkErr
}
