package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Progress periodically reports sweep status — replicas done, in flight,
// elapsed time and a naive ETA — to a writer (typically stderr). The zero
// Interval defaults to 10s.
type Progress struct {
	W        io.Writer
	Interval time.Duration
	// Label prefixes every line (e.g. the experiment ID); empty means
	// "fleet".
	Label string
}

// start launches the reporting goroutine and returns a function that stops
// it and emits a final line.
func (p *Progress) start(total int, done, inFlight *atomic.Int64) func() {
	interval := p.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	label := p.Label
	if label == "" {
		label = "fleet"
	}
	begin := time.Now()
	report := func() {
		d := done.Load()
		elapsed := time.Since(begin)
		eta := "?"
		if d > 0 && int(d) < total {
			remaining := time.Duration(float64(elapsed) / float64(d) * float64(int64(total)-d))
			eta = remaining.Round(time.Second).String()
		} else if int(d) == total {
			eta = "0s"
		}
		fmt.Fprintf(p.W, "%s: %d/%d done · %d in-flight · elapsed %s · eta %s\n",
			label, d, total, inFlight.Load(), elapsed.Round(time.Second), eta)
	}
	stop := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				report()
			case <-stop:
				report()
				return
			}
		}
	}()
	return func() {
		close(stop)
		<-finished
	}
}
