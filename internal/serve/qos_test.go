package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"popkit/internal/expt"
	"popkit/internal/qos"
)

// postSpecTenant is postSpec with an X-Popkit-Tenant header.
func postSpecTenant(t *testing.T, url, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/simulate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(tenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	return resp
}

// TestJobDeadlineDerivation covers both regression directions of replacing
// the flat 60s JobTimeout: large predicted jobs now get more than 60s by
// default, tiny jobs get the floor instead of a long flat grant, and an
// explicit JobTimeout still caps everything — plus the propagated-deadline
// header can only shrink the result.
func TestJobDeadlineDerivation(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()

	whale := s.CostModel().Predict(
		expt.JobSpec{Protocol: "exactmajority", N: 2_000_000, Replicas: 1, MaxRounds: 1e9}, "counted")
	if whale.Class != qos.ClassWhale {
		t.Fatalf("n=2e6 exact majority classed %v, want whale", whale.Class)
	}
	if d := s.jobDeadline(whale, nil); d <= 60*time.Second {
		t.Fatalf("auto deadline for a whale = %v — no better than the old flat 60s", d)
	}

	tiny := s.CostModel().Predict(expt.JobSpec{Protocol: "leader", N: 128, Replicas: 1}, "framework")
	if d := s.jobDeadline(tiny, nil); d != s.cfg.MinJobTimeout {
		t.Fatalf("auto deadline for a tiny job = %v, want the %v floor (not a flat long grant)", d, s.cfg.MinJobTimeout)
	}

	s2 := MustNew(Config{JobTimeout: 8 * time.Second})
	defer s2.Close()
	if d := s2.jobDeadline(whale, nil); d != 8*time.Second {
		t.Fatalf("explicit JobTimeout did not cap: got %v, want 8s", d)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", nil)
	req.Header.Set(deadlineHeader, "2500")
	if d := s2.jobDeadline(whale, req); d != 2500*time.Millisecond {
		t.Fatalf("propagated deadline did not shrink: got %v, want 2.5s", d)
	}
	req.Header.Set(deadlineHeader, "999999999")
	if d := s2.jobDeadline(whale, req); d != 8*time.Second {
		t.Fatalf("propagated deadline must not extend the cap: got %v, want 8s", d)
	}
}

// TestRetryAfterJitterBurst: the jitter stream is lock-free and still
// produces bounded, non-identical hints across a concurrent 429 burst.
func TestRetryAfterJitterBurst(t *testing.T) {
	p := newPool(qos.QueueConfig{PerTenantDepth: 4}, 1, 1, 0, NewMetrics(), nil, nil)
	defer p.close()
	const burst = 64
	vals := make([]int, burst)
	var wg sync.WaitGroup
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i] = p.retryAfterSeconds()
		}(i)
	}
	wg.Wait()
	distinct := map[int]bool{}
	for _, v := range vals {
		if v < 1 || v > 60 {
			t.Fatalf("hint %d outside [1, 60]", v)
		}
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("a %d-wide burst produced identical hints %v — jitter broken", burst, vals)
	}
}

// TestCostBudgetRejectsWith413: a job predicted beyond the operator budget
// is refused at admission with a structured, non-retryable 413.
func TestCostBudgetRejectsWith413(t *testing.T) {
	_, ts := newTestServer(t, Config{CostBudget: time.Minute})

	resp := postSpecTenant(t, ts.URL, "team-a", `{"protocol":"exactmajority","n":2000000,"seed":1}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("413 is permanent yet carries Retry-After %q", ra)
	}
	var doc errorDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.QoS == nil || doc.QoS.Tenant != "team-a" || doc.QoS.Reason != "over_budget" ||
		doc.QoS.PredictedCostMs < 60_000 || doc.QoS.Class != "whale" {
		t.Fatalf("structured 413 body wrong: %+v", doc.QoS)
	}

	// Under budget still runs.
	resp2 := postSpecTenant(t, ts.URL, "team-a", `{"protocol":"leader","n":128,"seed":1}`)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cheap job under a budget: status %d, want 200", resp2.StatusCode)
	}
}

func TestTenantHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postSpecTenant(t, ts.URL, "no spaces allowed", `{"protocol":"leader","n":128,"seed":1}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid tenant header: status %d, want 400", resp.StatusCode)
	}
}

// TestWhaleIsolation is the tentpole guarantee at the serve layer: with a
// whale tenant saturating the server, (1) a second whale waits on the
// running-whale cap rather than occupying another worker, (2) an
// interactive job from a different tenant dispatches and completes while
// that whale is still queued, and (3) the per-tenant popkit_qos_* series
// show up in both the JSON and Prometheus expositions.
func TestWhaleIsolation(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	reg := blockingRegistry(t, started, release)
	s, ts := newTestServer(t, Config{
		Registry:   reg,
		Workers:    2, // WhaleGlobal defaults to workers−1 = 1
		QueueDepth: 8,
	})

	// The "block" protocol is unknown to the cost model → linear rounds →
	// n=1e6 predicts thousands of seconds: a whale. Its replicas block on
	// the release channel, so the whale saturates a worker under our
	// control without burning CPU.
	whaleBody := `{"protocol":"block","n":1000000,"seed":%SEED%}`
	var wg sync.WaitGroup
	postAsync := func(tenant, body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postSpecTenant(t, ts.URL, tenant, body)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	postAsync("heavy", strings.Replace(whaleBody, "%SEED%", "1", 1))
	<-started // whale 1 is running, holding the only global whale slot

	postAsync("heavy", strings.Replace(whaleBody, "%SEED%", "2", 1))
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second whale never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Whale 2 must NOT have started: the global whale cap holds a worker
	// free. An interactive job from another tenant goes right through it.
	resp := postSpecTenant(t, ts.URL, "fast", `{"protocol":"leader","n":100,"seed":3}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"converged":true`)) {
		t.Fatalf("interactive job behind a whale flood: %d %s", resp.StatusCode, body)
	}
	if d := s.pool.depth(); d != 1 {
		t.Fatalf("after the interactive job, queue depth = %d, want the capped whale still queued", d)
	}
	if got := s.pool.whalesRunning(); got != 1 {
		t.Fatalf("whales running = %d, want 1 (global cap)", got)
	}

	close(release)
	wg.Wait()

	// Per-tenant series in the JSON exposition…
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if snap.QoS == nil {
		t.Fatal("metrics JSON lacks the qos section")
	}
	if got := snap.QoS.Tenants["heavy"].Admitted["whale"]; got != 2 {
		t.Fatalf(`qos.tenants.heavy.admitted.whale = %d, want 2`, got)
	}
	if got := snap.QoS.Tenants["fast"].Admitted["interactive"]; got != 1 {
		t.Fatalf(`qos.tenants.fast.admitted.interactive = %d, want 1`, got)
	}
	if snap.QoS.Tenants["heavy"].QueueWait.Count != 2 {
		t.Fatalf("heavy queue-wait count = %d, want 2", snap.QoS.Tenants["heavy"].QueueWait.Count)
	}

	// …and in the Prometheus exposition.
	pr, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	for _, want := range []string{
		`popkit_qos_admitted_total{class="whale",tenant="heavy"}`,
		`popkit_qos_admitted_total{class="interactive",tenant="fast"}`,
		"popkit_qos_whales_running",
		"popkit_qos_queue_wait_seconds",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			// Label order is registry-defined; accept the other order too.
			alt := strings.NewReplacer(
				`{class="whale",tenant="heavy"}`, `{tenant="heavy",class="whale"}`,
				`{class="interactive",tenant="fast"}`, `{tenant="fast",class="interactive"}`,
			).Replace(want)
			if !bytes.Contains(prom, []byte(alt)) {
				t.Errorf("prom exposition lacks %q", want)
			}
		}
	}
}

// TestSweepDoesNotStarveInteractive: a sweeping tenant's cache misses
// enqueue under its own tenant through the fair queue, so an interactive
// job from another tenant dispatches ahead of the sweep's queued batch
// points. If the sweep bypassed DRR, the single worker would pick the next
// blocked sweep point and the interactive job would never complete.
func TestSweepDoesNotStarveInteractive(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	reg := blockingRegistry(t, started, release)
	srv, ts := newTestServer(t, Config{
		Registry:     reg,
		Workers:      1,
		SweepWorkers: 3,
		QueueDepth:   8,
	})

	// block n=2e5 predicts ~17s: batch class. Three points, all misses.
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep",
			strings.NewReader(`{"base":{"protocol":"block","n":200000},"grid":{"seed":[1,2,3]}}`))
		req.Header.Set(tenantHeader, "sweeper")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // sweep point A occupies the only worker
	waitDepth := func(want int) {
		deadline := time.Now().Add(5 * time.Second)
		for srv.pool.depth() != want {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d (got %d)", want, srv.pool.depth())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitDepth(2) // sweep points B and C queued behind A

	// The interactive job arrives while A blocks and B/C queue behind it.
	type result struct {
		code int
		body []byte
	}
	interactiveDone := make(chan result, 1)
	go func() {
		resp := postSpecTenant(t, ts.URL, "human", `{"protocol":"leader","n":100,"seed":9}`)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		interactiveDone <- result{resp.StatusCode, body}
	}()
	waitDepth(3)

	// Unblock exactly one sweep replica. The worker frees up once; strict
	// class priority must hand it to the interactive job, which then runs
	// to completion with no further releases.
	release <- struct{}{}
	select {
	case res := <-interactiveDone:
		if res.code != http.StatusOK || !bytes.Contains(res.body, []byte(`"converged":true`)) {
			t.Fatalf("interactive job: status %d body %s", res.code, res.body)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("interactive job starved behind queued sweep points")
	}

	close(release)
	select {
	case <-sweepDone:
	case <-time.After(15 * time.Second):
		t.Fatal("sweep did not finish after release")
	}
}

// TestSweepBillsTenantAdmissions: sweep misses count as that tenant's
// admissions in the qos metrics (they cannot bypass accounting either).
func TestSweepBillsTenantAdmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(`{"base":{"protocol":"leader","n":128,"replicas":1},"grid":{"seed":[1,2]}}`))
	req.Header.Set(tenantHeader, "griddy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
	}
	resp.Body.Close()
	snap := s.qosM.Snapshot()
	if got := snap.Tenants["griddy"].Admitted["interactive"]; got != 2 {
		t.Fatalf("sweep admissions for tenant = %d, want 2", got)
	}
}
