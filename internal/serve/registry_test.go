package serve

import (
	"bytes"
	"context"
	"testing"

	"popkit/internal/expt"
)

// TestBuiltinsRunAndConverge: every registered protocol must normalize a
// tiny spec and produce a converged record.
func TestBuiltinsRunAndConverge(t *testing.T) {
	reg := NewRegistry()
	for _, p := range reg.List() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			spec := expt.JobSpec{Protocol: p.Name, N: 200, Seed: 11, Replicas: 2}
			if p.Name == "majority" || p.Name == "majorityexact" || p.Name == "approxmajority" || p.Name == "exactmajority" {
				spec.Gap = 2
			}
			proto, err := reg.Normalize(&spec, 1_000_000, 64)
			if err != nil {
				t.Fatalf("normalize: %v", err)
			}
			var recs []expt.ReplicaRecord
			if err := proto.Run(context.Background(), spec, RunOptions{Workers: 2}, func(r expt.ReplicaRecord) {
				recs = append(recs, r)
			}); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(recs) != 2 {
				t.Fatalf("got %d records, want 2", len(recs))
			}
			for i, r := range recs {
				if r.Replica != i {
					t.Errorf("record %d out of order: %+v", i, r)
				}
				if r.Err != "" {
					t.Errorf("replica %d failed: %s", i, r.Err)
				}
				if !r.Converged {
					t.Errorf("replica %d did not converge: %+v", i, r)
				}
				if r.Seed != expt.ReplicaSeed(spec.Seed, i) {
					t.Errorf("replica %d seed not split from root: %+v", i, r)
				}
				if len(r.Counts) == 0 {
					t.Errorf("replica %d carries no counts: %+v", i, r)
				}
			}
		})
	}
}

// TestNormalizeRejections covers protocol-specific validation.
func TestNormalizeRejections(t *testing.T) {
	reg := NewRegistry()
	bad := []expt.JobSpec{
		{Protocol: "nosuch", N: 100},
		{Protocol: "leader", N: 100, Gap: 3},             // gap not applicable
		{Protocol: "leader", N: 100, Colours: 3},         // colours not applicable
		{Protocol: "leader", N: 100, MaxRounds: 10},      // framework wants max_iters
		{Protocol: "exactmajority", N: 100, MaxIters: 5}, // counted wants max_rounds
		{Protocol: "plurality", N: 10, Colours: 4},       // n too small for colours
		{Protocol: "plurality", N: 100, Colours: 1},
	}
	for _, spec := range bad {
		s := spec
		if _, err := reg.Normalize(&s, 1_000_000, 64); err == nil {
			t.Errorf("spec %+v unexpectedly accepted", spec)
		}
	}

	good := expt.JobSpec{Protocol: "plurality", N: 400, Seed: 1}
	if _, err := reg.Normalize(&good, 1_000_000, 64); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	if good.Colours != 3 || good.MaxIters != defaultMaxIters || good.Replicas != 1 {
		t.Errorf("defaults not applied: %+v", good)
	}
}

// TestRunWorkerInvariance: the streamed NDJSON bytes must not depend on the
// fleet worker count.
func TestRunWorkerInvariance(t *testing.T) {
	reg := NewRegistry()
	render := func(workers int) []byte {
		spec := expt.JobSpec{Protocol: "leader", N: 300, Seed: 5, Replicas: 6}
		proto, err := reg.Normalize(&spec, 1_000_000, 64)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := proto.Run(context.Background(), spec, RunOptions{Workers: workers}, func(r expt.ReplicaRecord) {
			line, _ := r.MarshalLine()
			buf.Write(line)
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d changed the stream:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestCancelledRunAborts: a cancelled context must abort the replicas and
// surface the cancellation.
func TestCancelledRunAborts(t *testing.T) {
	reg := NewRegistry()
	spec := expt.JobSpec{Protocol: "exactmajority", N: 100000, Seed: 3, Replicas: 4, Gap: 1}
	proto, err := reg.Normalize(&spec, 1_000_000, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := proto.Run(ctx, spec, RunOptions{Workers: 2}, func(expt.ReplicaRecord) {}); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

// TestRegisterDuplicate rejects name collisions.
func TestRegisterDuplicate(t *testing.T) {
	reg := NewRegistry()
	err := reg.Register(&Protocol{Name: "leader", run: runFramework})
	if err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
