package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"popkit/internal/expt"
	"popkit/internal/fault"
)

// Failpoints of the HTTP layer (see internal/fault). Both are inert unless
// enabled via POPKIT_FAILPOINTS or popserved -failpoints.
var (
	fpEnqueue = fault.New("serve/enqueue",
		"fires in the simulate handler after spec validation, before enqueue (error → 503, panic aborts the request)")
	fpStream = fault.New("serve/stream",
		"fires before each streamed record; sleep delays the record, any other kind cuts the connection mid-stream")
)

// Config sizes the service.
type Config struct {
	// Registry names the runnable protocols; nil means NewRegistry().
	Registry *Registry
	// QueueDepth bounds the number of accepted-but-not-started jobs; a
	// full queue rejects with 429. Default 64.
	QueueDepth int
	// Workers is the number of jobs executing concurrently. Default:
	// runtime.GOMAXPROCS(0).
	Workers int
	// FleetWorkers is the replica-fleet width per job (output is identical
	// for any value — records stream in replica order). Default 1.
	FleetWorkers int
	// MaxRetries re-runs a replica that panicked or hit an injected fault,
	// restarting it from its own seed so recovery is byte-identical.
	// Default 0 (no retries).
	MaxRetries int
	// JournalDir, when non-empty, enables checkpoint/resume: jobs that
	// carry a job_id append each completed record to
	// JournalDir/<job_id>.ndjson, and a later request with the same id and
	// spec replays the journaled prefix and computes only the rest.
	JournalDir string
	// JobTimeout bounds one job's wall clock; 0 means 60s.
	JobTimeout time.Duration
	// MaxN caps the population size a request may ask for. Default 5e6.
	MaxN int
	// MaxReplicas caps replicas per request. Default 1024.
	MaxReplicas int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (popserved
	// -pprof). Off by default: profiling endpoints expose internals and cost
	// CPU, so they are opt-in.
	EnablePprof bool
}

func (c *Config) fillDefaults() {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.FleetWorkers == 0 {
		c.FleetWorkers = 1
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxN == 0 {
		c.MaxN = 5_000_000
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 1024
	}
}

// Server is the HTTP simulation service. Create with New, mount Handler
// on an http.Server, and call Close (optionally preceded by Abort after a
// drain deadline) on the way down.
type Server struct {
	cfg      Config
	pool     *pool
	journals *journalSet
	metrics  *Metrics
	started  time.Time
	// draining flips when graceful shutdown begins: /v1/simulate rejects
	// new jobs with 503 + Retry-After (a cluster client fails over to
	// another worker) and /healthz reports "draining" with 503 so a
	// coordinator's health probe stops routing shards here.
	draining atomic.Bool
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, started: time.Now()}
	// The metrics' endpoint set derives from the route table, so adding a
	// route cannot forget its latency histogram.
	names := make([]string, 0, 8)
	for _, rt := range s.routes() {
		names = append(names, rt.name)
	}
	m := NewMetrics(names...)
	s.metrics = m
	s.pool = newPool(cfg.QueueDepth, cfg.Workers, cfg.FleetWorkers, cfg.MaxRetries, m)
	if cfg.JournalDir != "" {
		s.journals = newJournalSet(cfg.JournalDir)
	}
	return s
}

// Metrics exposes the counter set (tests and embedding binaries).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops job intake and blocks until queued and in-flight jobs have
// drained. Call http.Server.Shutdown first so no handler is still
// enqueueing.
func (s *Server) Close() { s.pool.close() }

// Abort cancels in-flight jobs; pending Close calls then return promptly.
// Use when the drain deadline is blown.
func (s *Server) Abort() { s.pool.abort() }

// SetDraining marks the server as shutting down (or not). While draining,
// new simulate requests are rejected with 503 + Retry-After — retryable, so
// clients fail over instead of erroring — and /healthz turns unhealthy.
// In-flight and queued jobs still run to completion; call it just before
// http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// route is one entry of the server's route table: the metric name keying
// its latency histogram, the mux pattern, and the handler.
type route struct {
	name    string
	pattern string
	handler http.HandlerFunc
}

// routes is the authoritative route table. Both Handler (mux registration)
// and New (the metrics' endpoint set) derive from it, so every registered
// route gets a latency histogram by construction.
func (s *Server) routes() []route {
	rts := []route{
		{"simulate", "/v1/simulate", s.handleSimulate},
		{"protocols", "/v1/protocols", s.handleProtocols},
		{"healthz", "/healthz", s.handleHealthz},
		{"metrics", "/metrics", s.handleMetrics},
	}
	if s.cfg.EnablePprof {
		rts = append(rts,
			route{"pprof", "/debug/pprof/", pprof.Index},
			route{"pprof", "/debug/pprof/cmdline", pprof.Cmdline},
			route{"pprof", "/debug/pprof/profile", pprof.Profile},
			route{"pprof", "/debug/pprof/symbol", pprof.Symbol},
			route{"pprof", "/debug/pprof/trace", pprof.Trace},
		)
	}
	return rts
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.pattern, s.instrument(rt.name, rt.handler))
	}
	return mux
}

// instrument wraps a handler with the endpoint's latency histogram.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Latency(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		if hist != nil {
			hist.Observe(time.Since(start))
		}
	}
}

// errorDoc is the JSON body of every non-streaming error response.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: fmt.Sprintf(format, args...)})
}

// writeBackoff is writeError plus a computed Retry-After hint, for the two
// retryable rejections (queue full, job id busy).
func (s *Server) writeBackoff(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.pool.retryAfterSeconds()))
	writeError(w, status, format, args...)
}

// handleSimulate is POST /v1/simulate: decode a JobSpec, enqueue it, and
// stream its per-replica records back as NDJSON while the worker computes
// them. Client disconnect cancels the job; queue overflow rejects with 429
// and a queue-depth-scaled Retry-After.
//
// When the server runs with a journal directory and the spec carries a
// job_id, completed replicas are checkpointed to disk as they finish, and a
// repeat POST of the same (id, spec) replays the journaled prefix verbatim
// and computes only the remaining replicas — the full stream is
// byte-identical to an uninterrupted run.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.metrics.JobsRejectedDraining.Add(1)
		s.writeBackoff(w, http.StatusServiceUnavailable, "server draining; retry (or fail over to another worker)")
		return
	}
	var spec expt.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	proto, err := s.cfg.Registry.Normalize(&spec, s.cfg.MaxN, s.cfg.MaxReplicas)
	if err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := fpEnqueue.Inject(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "injected fault: %v", err)
		return
	}

	// Checkpoint/resume: claim the job id, load its journal, and pick up
	// after the longest contiguous successful prefix. A shard request
	// (spec.Start > 0, never combined with a job_id) instead starts at its
	// own window; replica records are unaffected either way.
	var (
		journal *expt.Journal
		replay  [][]byte
		start   = spec.Start
		onDone  func()
	)
	if spec.JobID != "" {
		if s.journals == nil {
			s.metrics.JobsRejectedInvalid.Add(1)
			writeError(w, http.StatusBadRequest, "job_id requires a journal-enabled server (start popserved with -journal)")
			return
		}
		if err := s.journals.acquire(spec.JobID); err != nil {
			s.writeBackoff(w, http.StatusConflict, "job %q is already in flight; retry later", spec.JobID)
			return
		}
		journal, replay, err = s.journals.open(spec.JobID, spec)
		if err != nil {
			s.journals.release(spec.JobID)
			if strings.Contains(err.Error(), "different job spec") {
				writeError(w, http.StatusConflict, "%v", err)
			} else {
				writeError(w, http.StatusInternalServerError, "journal: %v", err)
			}
			return
		}
		start = journal.Next()
		if start > 0 {
			s.metrics.JobsResumed.Add(1)
		}
		id := spec.JobID
		onDone = func() { s.journals.release(id) }
		if start >= spec.Replicas {
			// Every replica is journaled: serve the whole job from disk.
			journal.Close()
			s.journals.release(id)
			s.streamJob(w, replay, nil)
			return
		}
	}

	jctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	j := &queuedJob{
		spec:    spec,
		proto:   proto,
		ctx:     jctx,
		records: make(chan expt.ReplicaRecord, spec.Replicas-start),
		start:   start,
		journal: journal,
		onDone:  onDone,
	}
	if err := s.pool.tryEnqueue(j); err != nil {
		if journal != nil {
			journal.Close()
			s.journals.release(spec.JobID)
		}
		s.metrics.JobsRejectedFull.Add(1)
		s.writeBackoff(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.pool.depth())
		return
	}
	// The worker now owns the journal and the job-id lock (released via
	// onDone after the journal is closed).
	s.metrics.JobsAccepted.Add(1)
	s.streamJob(w, replay, j)
}

// streamJob writes the 200 header, the journal replay bytes (verbatim —
// they are the exact lines streamed when the records were first computed),
// then the live records, and finally the in-band error object if the job
// failed. j may be nil when the whole job was served from the journal.
func (s *Server) streamJob(w http.ResponseWriter, replay [][]byte, j *queuedJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line out before the first record so a queued
		// job's client sees the stream open immediately.
		flusher.Flush()
	}
	writeLine := func(line []byte) {
		if out := fpStream.Eval(); out.Fire {
			if out.Kind == fault.KindSleep {
				time.Sleep(out.Sleep)
			} else {
				// Cut the connection mid-stream: the handler unwinds, the
				// request context dies, and the worker (if any) aborts its
				// remaining replicas — journaled progress survives.
				panic(http.ErrAbortHandler)
			}
		}
		if _, err := w.Write(line); err != nil {
			// Client is gone; the request context dies with it, which
			// unwinds the worker. Keep draining so the channel closes.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, line := range replay {
		writeLine(line)
	}
	if j == nil {
		return
	}
	for rec := range j.records {
		line, err := rec.MarshalLine()
		if err != nil {
			continue
		}
		writeLine(line)
	}
	if err := j.err(); err != nil && !errors.Is(err, context.Canceled) {
		// The status line is sent; signal the failure in-band as a final
		// NDJSON error object (popsim's stream carries no such line on
		// success, so successful streams stay byte-identical to the CLI).
		if doc, merr := json.Marshal(errorDoc{Error: err.Error()}); merr == nil {
			w.Write(append(doc, '\n'))
		}
	}
}

// protocolDoc is one entry of GET /v1/protocols.
type protocolDoc struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Kind        string   `json:"kind"`
	Params      []string `json:"params,omitempty"`
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	list := s.cfg.Registry.List()
	docs := make([]protocolDoc, len(list))
	for i, p := range list {
		docs[i] = protocolDoc{Name: p.Name, Description: p.Description, Kind: p.Kind, Params: p.Params}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Protocols []protocolDoc `json:"protocols"`
	}{docs})
}

// handleHealthz is the cheap liveness probe: it touches no queue, journal,
// or fleet state — just two sampled gauges — so a cluster coordinator can
// poll it aggressively without perturbing job traffic. A draining server
// answers 503 so probes stop routing shards here before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		InFlight   int64  `json:"inflight_workers"`
	}{status, s.pool.depth(), s.metrics.InFlight.Load()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.WriteProm(w, s.pool.depth(), s.pool.capacity(), s.started)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.metrics.Snapshot(s.pool.depth(), s.pool.capacity(), s.started))
}
