package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"popkit/internal/expt"
	"popkit/internal/fault"
	"popkit/internal/qos"
	"popkit/internal/store"
)

// QoS headers: the tenant a request bills to, and the remaining deadline
// budget (milliseconds) a re-dispatching caller propagates so a retried
// shard inherits what is left instead of a fresh full timeout.
const (
	tenantHeader   = "X-Popkit-Tenant"
	deadlineHeader = "X-Popkit-Deadline-Ms"
)

// maxAutoDeadline caps the cost-derived per-job deadline when the operator
// sets no explicit JobTimeout: predictions can be wrong by the EWMA's whole
// convergence, so even an auto deadline needs a ceiling.
const maxAutoDeadline = 15 * time.Minute

// Failpoints of the HTTP layer (see internal/fault). Both are inert unless
// enabled via POPKIT_FAILPOINTS or popserved -failpoints.
var (
	fpEnqueue = fault.New("serve/enqueue",
		"fires in the simulate handler after spec validation, before enqueue (error → 503, panic aborts the request)")
	fpStream = fault.New("serve/stream",
		"fires before each streamed record; sleep delays the record, any other kind cuts the connection mid-stream")
)

// Config sizes the service.
type Config struct {
	// Registry names the runnable protocols; nil means NewRegistry().
	Registry *Registry
	// QueueDepth bounds the number of accepted-but-not-started jobs; a
	// full queue rejects with 429. Default 64.
	QueueDepth int
	// Workers is the number of jobs executing concurrently. Default:
	// runtime.GOMAXPROCS(0).
	Workers int
	// FleetWorkers is the replica-fleet width per job (output is identical
	// for any value — records stream in replica order). Default 1.
	FleetWorkers int
	// MaxRetries re-runs a replica that panicked or hit an injected fault,
	// restarting it from its own seed so recovery is byte-identical.
	// Default 0 (no retries).
	MaxRetries int
	// JournalDir, when non-empty, enables checkpoint/resume: jobs that
	// carry a job_id append each completed record to
	// JournalDir/<job_id>.ndjson, and a later request with the same id and
	// spec replays the journaled prefix and computes only the rest.
	JournalDir string
	// JobTimeout caps one job's wall clock. 0 (the default) derives each
	// job's deadline from its predicted cost — slack × prediction, clamped
	// to [MinJobTimeout, 15m] — so large-n jobs get the budget they need
	// and tiny jobs stop holding a 60s grant. A non-zero value is the
	// operator override: it caps every derived deadline, so an explicit
	// flat timeout behaves exactly as before.
	JobTimeout time.Duration
	// MinJobTimeout floors the derived deadline, keeping badly
	// under-predicted jobs alive. Default 10s.
	MinJobTimeout time.Duration
	// CostModelPath loads a measured kernel cost grid
	// (results/BENCH_kernel.json) over the baked-in defaults.
	CostModelPath string
	// CostBudget rejects jobs whose predicted total cost exceeds it with a
	// structured 413 at admission — before any compute is spent. 0 means
	// no budget.
	CostBudget time.Duration
	// InteractiveMax / WhaleMin are the size-class thresholds on predicted
	// total cost (defaults 1s / 30s; see qos.ModelOptions).
	InteractiveMax time.Duration
	WhaleMin       time.Duration
	// TenantWeights gives named tenants a DRR weight (unlisted tenants get
	// weight 1). MaxTenants bounds distinct live tenant queues (default 64).
	TenantWeights map[string]int
	MaxTenants    int
	// WhalePerTenant / WhaleGlobal cap concurrently running whale-class
	// jobs per tenant and server-wide. Defaults: 1 per tenant; globally
	// Workers−1 (min 1), so whales can never occupy every worker.
	WhalePerTenant int
	WhaleGlobal    int
	// MaxN caps the population size a request may ask for. Default 5e6.
	MaxN int
	// MaxReplicas caps replicas per request. Default 1024.
	MaxReplicas int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (popserved
	// -pprof). Off by default: profiling endpoints expose internals and cost
	// CPU, so they are opt-in.
	EnablePprof bool
	// StoreDir, when non-empty, enables the content-addressed result store:
	// completed cacheable jobs (no job_id, no start window) are committed
	// under the hash of their canonical spec, and a repeat POST of an
	// identical spec streams the stored bytes — byte-identical to a live
	// run — without touching the queue or fleet. Concurrent identical POSTs
	// single-flight: one computes, the rest coalesce.
	StoreDir string
	// StoreMaxBytes / StoreMaxEntries cap the store (see store.Options;
	// 0 → 256 MiB / 4096 objects, negative → unlimited).
	StoreMaxBytes   int64
	StoreMaxEntries int
	// MaxSweepPoints caps how many grid points one POST /v1/sweep may
	// expand to. Default 1024.
	MaxSweepPoints int
	// SweepWorkers bounds concurrently resolving sweep points per request.
	// Default: Workers.
	SweepWorkers int
}

func (c *Config) fillDefaults() {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.FleetWorkers == 0 {
		c.FleetWorkers = 1
	}
	if c.MinJobTimeout == 0 {
		c.MinJobTimeout = 10 * time.Second
	}
	if c.WhaleGlobal == 0 {
		c.WhaleGlobal = c.Workers - 1
		if c.WhaleGlobal < 1 {
			c.WhaleGlobal = 1
		}
	}
	if c.MaxN == 0 {
		c.MaxN = 5_000_000
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 1024
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 1024
	}
	if c.SweepWorkers == 0 {
		c.SweepWorkers = c.Workers
	}
}

// Server is the HTTP simulation service. Create with New, mount Handler
// on an http.Server, and call Close (optionally preceded by Abort after a
// drain deadline) on the way down.
type Server struct {
	cfg      Config
	pool     *pool
	journals *journalSet
	metrics  *Metrics
	// model prices jobs at admission; qosM is the popkit_qos_* series set,
	// registered on the same obs registry as the rest of the metrics.
	model *qos.Model
	qosM  *qos.Metrics
	// store is the content-addressed result cache (nil unless StoreDir is
	// set); flight single-flights concurrent identical computations and is
	// always present — sweep dedupe works even without a store.
	store   *store.Store
	flight  *store.Flight
	started time.Time
	// draining flips when graceful shutdown begins: /v1/simulate rejects
	// new jobs with 503 + Retry-After (a cluster client fails over to
	// another worker) and /healthz reports "draining" with 503 so a
	// coordinator's health probe stops routing shards here.
	draining atomic.Bool
}

// New builds a server and starts its worker pool. The failure modes are an
// unusable store directory and an unusable cost model (a grid file that
// exists but does not parse, or inverted class thresholds).
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, started: time.Now()}
	model, err := qos.NewModel(qos.ModelOptions{
		GridPath:       cfg.CostModelPath,
		InteractiveMax: cfg.InteractiveMax,
		WhaleMin:       cfg.WhaleMin,
	})
	if err != nil {
		return nil, err
	}
	s.model = model
	// The metrics' endpoint set derives from the route table, so adding a
	// route cannot forget its latency histogram.
	names := make([]string, 0, 8)
	for _, rt := range s.routes() {
		names = append(names, rt.name)
	}
	m := NewMetrics(names...)
	s.metrics = m
	s.qosM = qos.NewMetrics(m.Registry())
	s.pool = newPool(qos.QueueConfig{
		PerTenantDepth: cfg.QueueDepth,
		Weights:        cfg.TenantWeights,
		MaxTenants:     cfg.MaxTenants,
		WhalePerTenant: cfg.WhalePerTenant,
		WhaleGlobal:    cfg.WhaleGlobal,
	}, cfg.Workers, cfg.FleetWorkers, cfg.MaxRetries, m, model, s.qosM)
	if cfg.JournalDir != "" {
		s.journals = newJournalSet(cfg.JournalDir)
	}
	if cfg.StoreDir != "" {
		sm := store.NewMetrics(m.Registry())
		st, err := store.Open(store.Options{
			Dir:        cfg.StoreDir,
			MaxBytes:   cfg.StoreMaxBytes,
			MaxEntries: cfg.StoreMaxEntries,
			Metrics:    sm,
		})
		if err != nil {
			s.pool.close()
			return nil, err
		}
		s.store = st
		s.flight = store.NewFlight(sm)
	} else {
		s.flight = store.NewFlight(store.NewMetrics(nil))
	}
	return s, nil
}

// MustNew is New for callers whose Config cannot fail (no store directory,
// or one already validated) — chiefly tests.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Store exposes the result store (nil when disabled; tests and /metrics).
func (s *Server) Store() *store.Store { return s.store }

// Metrics exposes the counter set (tests and embedding binaries).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops job intake and blocks until queued and in-flight jobs have
// drained, then persists the store index. Call http.Server.Shutdown first
// so no handler is still enqueueing.
func (s *Server) Close() {
	s.pool.close()
	if s.store != nil {
		s.store.Close()
	}
}

// Abort cancels in-flight jobs; pending Close calls then return promptly.
// Use when the drain deadline is blown.
func (s *Server) Abort() { s.pool.abort() }

// SetDraining marks the server as shutting down (or not). While draining,
// new simulate requests are rejected with 503 + Retry-After — retryable, so
// clients fail over instead of erroring — and /healthz turns unhealthy.
// In-flight and queued jobs still run to completion; call it just before
// http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// route is one entry of the server's route table: the metric name keying
// its latency histogram, the mux pattern, and the handler.
type route struct {
	name    string
	pattern string
	handler http.HandlerFunc
}

// routes is the authoritative route table. Both Handler (mux registration)
// and New (the metrics' endpoint set) derive from it, so every registered
// route gets a latency histogram by construction.
func (s *Server) routes() []route {
	rts := []route{
		{"simulate", "/v1/simulate", s.handleSimulate},
		{"sweep", "/v1/sweep", s.handleSweep},
		{"protocols", "/v1/protocols", s.handleProtocols},
		{"healthz", "/healthz", s.handleHealthz},
		{"metrics", "/metrics", s.handleMetrics},
	}
	if s.cfg.EnablePprof {
		rts = append(rts,
			route{"pprof", "/debug/pprof/", pprof.Index},
			route{"pprof", "/debug/pprof/cmdline", pprof.Cmdline},
			route{"pprof", "/debug/pprof/profile", pprof.Profile},
			route{"pprof", "/debug/pprof/symbol", pprof.Symbol},
			route{"pprof", "/debug/pprof/trace", pprof.Trace},
		)
	}
	return rts
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.pattern, s.instrument(rt.name, rt.handler))
	}
	return mux
}

// instrument wraps a handler with the endpoint's latency histogram.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Latency(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		if hist != nil {
			hist.Observe(time.Since(start))
		}
	}
}

// CostModel exposes the admission cost model (tests, embedding binaries).
func (s *Server) CostModel() *qos.Model { return s.model }

// errorDoc is the JSON body of every non-streaming error response. QoS is
// present on admission-control rejections (429/413/503-shed), carrying the
// predicted cost and the machine-readable reason so clients can schedule
// their retry instead of guessing.
type errorDoc struct {
	Error string  `json:"error"`
	QoS   *qosDoc `json:"qos,omitempty"`
}

// qosDoc is the structured half of an admission rejection.
type qosDoc struct {
	Tenant          string `json:"tenant"`
	Class           string `json:"class"`
	PredictedCostMs int64  `json:"predicted_cost_ms"`
	RetryAfterS     int    `json:"retry_after_s,omitempty"`
	Reason          string `json:"reason"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: fmt.Sprintf(format, args...)})
}

// writeBackoff is writeError plus a computed Retry-After hint, for
// retryable rejections that predate (or sit outside) QoS admission.
func (s *Server) writeBackoff(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.pool.retryAfterSeconds()))
	writeError(w, status, format, args...)
}

// writeQoSReject renders a structured admission rejection: the error text,
// the prediction that drove the decision, and — for retryable statuses — a
// cost-aware Retry-After derived from the tenant's own queued backlog.
func (s *Server) writeQoSReject(w http.ResponseWriter, status int, tenant string, pred qos.Prediction, reason, format string, args ...any) {
	doc := errorDoc{
		Error: fmt.Sprintf(format, args...),
		QoS: &qosDoc{
			Tenant:          tenant,
			Class:           pred.Class.String(),
			PredictedCostMs: pred.Total.Milliseconds(),
			Reason:          reason,
		},
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		doc.QoS.RetryAfterS = s.pool.retryAfterTenant(tenant)
		w.Header().Set("Retry-After", strconv.Itoa(doc.QoS.RetryAfterS))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

// jobDeadline derives the per-job wall-clock budget: slack × predicted
// cost, floored at MinJobTimeout, capped by the operator's JobTimeout (or
// 15m when none is set). A caller-propagated X-Popkit-Deadline-Ms header —
// the remaining budget of a coordinator re-dispatching a shard — can only
// shrink it, so a retried shard inherits what is left.
func (s *Server) jobDeadline(pred qos.Prediction, r *http.Request) time.Duration {
	limit := s.cfg.JobTimeout
	if limit <= 0 {
		limit = maxAutoDeadline
	}
	d := qos.DeriveDeadline(pred.Total, s.cfg.MinJobTimeout, limit)
	if r != nil {
		if ms := r.Header.Get(deadlineHeader); ms != "" {
			if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
				if rem := time.Duration(v) * time.Millisecond; rem < d {
					d = rem
				}
			}
		}
	}
	return d
}

// shedReason decides overload-graceful degradation for one admission:
// during drain everything but interactive is turned away (cache hits were
// already served above), and under queue pressure whales are shed first.
// Interactive jobs are never shed — they are the cheap, human-facing tier.
func (s *Server) shedReason(class qos.Class) string {
	if s.draining.Load() && class != qos.ClassInteractive {
		return "draining"
	}
	if class == qos.ClassWhale && s.pool.overloaded() {
		return "overload"
	}
	return ""
}

// handleSimulate is POST /v1/simulate: decode a JobSpec, enqueue it, and
// stream its per-replica records back as NDJSON while the worker computes
// them. Client disconnect cancels the job; queue overflow rejects with 429
// and a queue-depth-scaled Retry-After.
//
// When the server runs with a journal directory and the spec carries a
// job_id, completed replicas are checkpointed to disk as they finish, and a
// repeat POST of the same (id, spec) replays the journaled prefix verbatim
// and computes only the remaining replicas — the full stream is
// byte-identical to an uninterrupted run.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	tenant, ok := qos.CleanTenant(r.Header.Get(tenantHeader))
	if !ok {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad %s header: want ≤64 chars of [A-Za-z0-9._-]", tenantHeader)
		return
	}
	var spec expt.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	proto, err := s.cfg.Registry.Normalize(&spec, s.cfg.MaxN, s.cfg.MaxReplicas)
	if err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}

	// Content-addressed cache: a cacheable spec (whole job, no checkpoint
	// identity) resolves through the store with single-flight dedupe before
	// any fleet machinery — including the enqueue failpoint below, which is
	// how tests prove a hit truly bypasses the queue. On a hit the stored
	// bytes stream verbatim; on a miss this request leads the computation
	// (capturing the stream for commit) while concurrent identical POSTs
	// wait and then read the committed object.
	var (
		cacheHash string
		capt      *capture
		finish    func(store.Outcome)
	)
	if s.store != nil && spec.Cacheable() {
		hash := expt.SpecHash(spec)
		for leader := false; !leader; {
			if lines, ok := s.store.Get(hash); ok {
				w.Header().Set("X-Popkit-Cache", "hit")
				s.streamJob(w, metaLine(r, spec, hash, true), lines, nil, nil)
				return
			}
			var wait func(context.Context) (store.Outcome, error)
			leader, wait = s.flight.Lead(hash)
			if leader {
				break
			}
			out, err := wait(r.Context())
			if err != nil {
				// Client gone while coalesced; nothing to stream.
				writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
				return
			}
			// A committed outcome hits the store on the next loop pass; a
			// failed or uncommitted one falls through to leading ourselves.
			_ = out
		}
		cacheHash = hash
		w.Header().Set("X-Popkit-Cache", "miss")
		capt = &capture{}
		finished := false
		finish = func(out store.Outcome) {
			if !finished {
				finished = true
				s.flight.Finish(cacheHash, out)
			}
		}
		// Safety net: if the handler unwinds before the commit below (stream
		// failpoint panic, client abort), release the followers with a
		// failure so they retry rather than hang.
		defer finish(store.Outcome{Err: "request aborted"})
	}

	// QoS admission. Everything above — cache hits, single-flight followers
	// — was served without touching the queue, which is why a draining or
	// overloaded server keeps answering cached and coalesced requests.
	pred := s.model.Predict(spec, proto.Kind)
	if s.cfg.CostBudget > 0 && pred.Total > s.cfg.CostBudget {
		s.qosM.Rejected(tenant, pred.Class, "over_budget")
		s.writeQoSReject(w, http.StatusRequestEntityTooLarge, tenant, pred, "over_budget",
			"predicted cost %v exceeds the server budget %v; shrink n, replicas, or max_rounds",
			pred.Total.Round(time.Millisecond), s.cfg.CostBudget)
		return
	}
	if reason := s.shedReason(pred.Class); reason != "" {
		if reason == "draining" {
			s.metrics.JobsRejectedDraining.Add(1)
		} else {
			s.metrics.JobsRejectedFull.Add(1)
		}
		s.qosM.Shed(tenant, pred.Class, reason)
		s.writeQoSReject(w, http.StatusServiceUnavailable, tenant, pred, reason,
			"server shedding %s jobs (%s); retry (or fail over to another worker)", pred.Class, reason)
		return
	}

	if err := fpEnqueue.Inject(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "injected fault: %v", err)
		return
	}

	// Checkpoint/resume: claim the job id, load its journal, and pick up
	// after the longest contiguous successful prefix. A shard request
	// (spec.Start > 0, never combined with a job_id) instead starts at its
	// own window; replica records are unaffected either way.
	var (
		journal *expt.Journal
		replay  [][]byte
		start   = spec.Start
		onDone  func()
	)
	if spec.JobID != "" {
		if s.journals == nil {
			s.metrics.JobsRejectedInvalid.Add(1)
			writeError(w, http.StatusBadRequest, "job_id requires a journal-enabled server (start popserved with -journal)")
			return
		}
		if err := s.journals.acquire(spec.JobID); err != nil {
			s.writeBackoff(w, http.StatusConflict, "job %q is already in flight; retry later", spec.JobID)
			return
		}
		journal, replay, err = s.journals.open(spec.JobID, spec)
		if err != nil {
			s.journals.release(spec.JobID)
			if strings.Contains(err.Error(), "different job spec") {
				writeError(w, http.StatusConflict, "%v", err)
			} else {
				writeError(w, http.StatusInternalServerError, "journal: %v", err)
			}
			return
		}
		start = journal.Next()
		if start > 0 {
			s.metrics.JobsResumed.Add(1)
		}
		id := spec.JobID
		onDone = func() { s.journals.release(id) }
		if start >= spec.Replicas {
			// Every replica is journaled: serve the whole job from disk.
			journal.Close()
			s.journals.release(id)
			s.streamJob(w, metaLine(r, spec, "", false), replay, nil, nil)
			return
		}
	}

	jctx, cancel := context.WithTimeout(r.Context(), s.jobDeadline(pred, r))
	defer cancel()
	j := &queuedJob{
		spec:    spec,
		proto:   proto,
		ctx:     jctx,
		records: make(chan expt.ReplicaRecord, spec.Replicas-start),
		tenant:  tenant,
		pred:    pred,
		start:   start,
		journal: journal,
		onDone:  onDone,
	}
	if err := s.pool.tryEnqueue(j); err != nil {
		if journal != nil {
			journal.Close()
			s.journals.release(spec.JobID)
		}
		s.metrics.JobsRejectedFull.Add(1)
		reason := "queue_full"
		switch {
		case errors.Is(err, qos.ErrTenantFull):
			reason = "tenant_queue_full"
		case errors.Is(err, qos.ErrTenantLimit):
			reason = "tenant_limit"
		}
		s.qosM.Rejected(tenant, pred.Class, reason)
		s.writeQoSReject(w, http.StatusTooManyRequests, tenant, pred, reason,
			"job queue full (%d queued); retry later", s.pool.depth())
		return
	}
	// The worker now owns the journal and the job-id lock (released via
	// onDone after the journal is closed).
	s.metrics.JobsAccepted.Add(1)
	s.qosM.Admitted(tenant, pred.Class)
	s.streamJob(w, metaLine(r, spec, cacheHash, false), replay, j, capt)

	if capt != nil {
		out := store.Outcome{Records: len(capt.lines), Bytes: capt.bytes}
		if capt.failed || len(capt.lines) != spec.Replicas {
			out = store.Outcome{Err: "job did not complete"}
		} else if _, err := s.store.Commit(spec, capt.lines); err == nil {
			out.Committed = true
		}
		finish(out)
	}
}

// capture accumulates the exact record lines a miss streams, so a
// completed job commits to the store byte-identically to what the client
// received. failed flips on any error record; an incomplete capture (count
// below Replicas — cancellation, disconnect) is simply never committed.
type capture struct {
	lines  [][]byte
	bytes  int64
	failed bool
}

// metaInfo is the optional opening metadata record of a job stream,
// requested with ?meta=1. It is opt-in (and outside the spec, so outside
// the content hash) because an unconditional extra line would break the
// byte-identity contract between HTTP, CLI, and cached streams.
type metaInfo struct {
	// SpecHash is the spec's content address ("" for uncacheable specs on a
	// store-less server).
	SpecHash string `json:"spec_hash,omitempty"`
	// Cached reports whether the body was served from the result store.
	Cached   bool `json:"cached"`
	Replicas int  `json:"replicas"`
}

// metaLine renders the opening metadata record when the request asked for
// it (nil otherwise).
func metaLine(r *http.Request, spec expt.JobSpec, hash string, cached bool) []byte {
	if v := r.URL.Query().Get("meta"); v != "1" && v != "true" {
		return nil
	}
	doc := struct {
		Meta metaInfo `json:"meta"`
	}{metaInfo{SpecHash: hash, Cached: cached, Replicas: spec.Replicas}}
	b, err := json.Marshal(doc)
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// streamJob writes the 200 header, the optional metadata record, the replay
// bytes (verbatim — journal prefix or cached object), then the live
// records, and finally the in-band error object if the job failed. j may be
// nil when the whole body comes from replay; capt, when non-nil, receives
// every live record line for a later store commit.
func (s *Server) streamJob(w http.ResponseWriter, meta []byte, replay [][]byte, j *queuedJob, capt *capture) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line out before the first record so a queued
		// job's client sees the stream open immediately.
		flusher.Flush()
	}
	writeLine := func(line []byte) {
		if out := fpStream.Eval(); out.Fire {
			if out.Kind == fault.KindSleep {
				time.Sleep(out.Sleep)
			} else {
				// Cut the connection mid-stream: the handler unwinds, the
				// request context dies, and the worker (if any) aborts its
				// remaining replicas — journaled progress survives.
				panic(http.ErrAbortHandler)
			}
		}
		if _, err := w.Write(line); err != nil {
			// Client is gone; the request context dies with it, which
			// unwinds the worker. Keep draining so the channel closes.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if meta != nil {
		writeLine(meta)
	}
	for _, line := range replay {
		writeLine(line)
	}
	if j == nil {
		return
	}
	for rec := range j.records {
		line, err := rec.MarshalLine()
		if err != nil {
			continue
		}
		if capt != nil {
			if rec.Err != "" {
				capt.failed = true
			} else {
				capt.lines = append(capt.lines, line)
				capt.bytes += int64(len(line))
			}
		}
		writeLine(line)
	}
	if err := j.err(); err != nil && capt != nil {
		capt.failed = true
	}
	if err := j.err(); err != nil && !errors.Is(err, context.Canceled) {
		// The status line is sent; signal the failure in-band as a final
		// NDJSON error object (popsim's stream carries no such line on
		// success, so successful streams stay byte-identical to the CLI).
		if doc, merr := json.Marshal(errorDoc{Error: err.Error()}); merr == nil {
			w.Write(append(doc, '\n'))
		}
	}
}

// protocolDoc is one entry of GET /v1/protocols.
type protocolDoc struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Kind        string   `json:"kind"`
	Params      []string `json:"params,omitempty"`
	// States is the per-agent state count at the reference population
	// n = 1024 — the space column of the capability matrix. Omitted when
	// the registry entry does not report one.
	States uint64 `json:"states,omitempty"`
	// StateRich marks protocols whose live species count grows with n;
	// their drivers pin the dense kernel instead of the counted tiers.
	StateRich bool `json:"state_rich,omitempty"`
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	list := s.cfg.Registry.List()
	docs := make([]protocolDoc, len(list))
	for i, p := range list {
		docs[i] = protocolDoc{
			Name: p.Name, Description: p.Description, Kind: p.Kind, Params: p.Params,
			StateRich: p.Hints.StateRich,
		}
		if p.States != nil {
			docs[i].States = p.States(1024)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Protocols []protocolDoc `json:"protocols"`
	}{docs})
}

// handleHealthz is the cheap liveness probe: it touches no queue, journal,
// or fleet state — just two sampled gauges — so a cluster coordinator can
// poll it aggressively without perturbing job traffic. A draining server
// answers 503 so probes stop routing shards here before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		InFlight   int64  `json:"inflight_workers"`
	}{status, s.pool.depth(), s.metrics.InFlight.Load()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The whale gauge is worker-maintained; refresh it at render time too so
	// an idle server reports the current truth, not the last transition.
	s.qosM.WhalesRunning.Set(int64(s.pool.whalesRunning()))
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.WriteProm(w, s.pool.depth(), s.pool.capacity(), s.started)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := s.metrics.Snapshot(s.pool.depth(), s.pool.capacity(), s.started)
	if s.store != nil {
		st := s.store.Metrics().Snapshot()
		snap.Store = &st
	}
	qs := s.qosM.Snapshot()
	qs.Corrections = s.model.Corrections()
	snap.QoS = &qs
	enc.Encode(snap)
}
