package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"popkit/internal/expt"
)

// Config sizes the service.
type Config struct {
	// Registry names the runnable protocols; nil means NewRegistry().
	Registry *Registry
	// QueueDepth bounds the number of accepted-but-not-started jobs; a
	// full queue rejects with 429. Default 64.
	QueueDepth int
	// Workers is the number of jobs executing concurrently. Default:
	// runtime.GOMAXPROCS(0).
	Workers int
	// FleetWorkers is the replica-fleet width per job (output is identical
	// for any value — records stream in replica order). Default 1.
	FleetWorkers int
	// JobTimeout bounds one job's wall clock; 0 means 60s.
	JobTimeout time.Duration
	// MaxN caps the population size a request may ask for. Default 5e6.
	MaxN int
	// MaxReplicas caps replicas per request. Default 1024.
	MaxReplicas int
}

func (c *Config) fillDefaults() {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.FleetWorkers == 0 {
		c.FleetWorkers = 1
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxN == 0 {
		c.MaxN = 5_000_000
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 1024
	}
}

// Server is the HTTP simulation service. Create with New, mount Handler
// on an http.Server, and call Close (optionally preceded by Abort after a
// drain deadline) on the way down.
type Server struct {
	cfg     Config
	pool    *pool
	metrics *Metrics
	started time.Time
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	m := NewMetrics("simulate", "protocols", "healthz", "metrics")
	return &Server{
		cfg:     cfg,
		pool:    newPool(cfg.QueueDepth, cfg.Workers, cfg.FleetWorkers, m),
		metrics: m,
		started: time.Now(),
	}
}

// Metrics exposes the counter set (tests and embedding binaries).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops job intake and blocks until queued and in-flight jobs have
// drained. Call http.Server.Shutdown first so no handler is still
// enqueueing.
func (s *Server) Close() { s.pool.close() }

// Abort cancels in-flight jobs; pending Close calls then return promptly.
// Use when the drain deadline is blown.
func (s *Server) Abort() { s.pool.abort() }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("/v1/protocols", s.instrument("protocols", s.handleProtocols))
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// instrument wraps a handler with the endpoint's latency histogram.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Latency(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		if hist != nil {
			hist.Observe(time.Since(start))
		}
	}
}

// errorDoc is the JSON body of every non-streaming error response.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: fmt.Sprintf(format, args...)})
}

// handleSimulate is POST /v1/simulate: decode a JobSpec, enqueue it, and
// stream its per-replica records back as NDJSON while the worker computes
// them. Client disconnect cancels the job; queue overflow rejects with 429.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var spec expt.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	proto, err := s.cfg.Registry.Normalize(&spec, s.cfg.MaxN, s.cfg.MaxReplicas)
	if err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}

	jctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	j := &queuedJob{
		spec:    spec,
		proto:   proto,
		ctx:     jctx,
		records: make(chan expt.ReplicaRecord, spec.Replicas),
	}
	if err := s.pool.tryEnqueue(j); err != nil {
		s.metrics.JobsRejectedFull.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.pool.depth())
		return
	}
	s.metrics.JobsAccepted.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line out before the first record so a queued
		// job's client sees the stream open immediately.
		flusher.Flush()
	}
	for rec := range j.records {
		line, err := rec.MarshalLine()
		if err != nil {
			continue
		}
		if _, err := w.Write(line); err != nil {
			// Client is gone; jctx dies with r.Context(), which unwinds the
			// worker. Keep draining so the channel closes.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := j.err(); err != nil && !errors.Is(err, context.Canceled) {
		// The status line is sent; signal the failure in-band as a final
		// NDJSON error object (popsim's stream carries no such line on
		// success, so successful streams stay byte-identical to the CLI).
		if doc, merr := json.Marshal(errorDoc{Error: err.Error()}); merr == nil {
			w.Write(append(doc, '\n'))
		}
	}
}

// protocolDoc is one entry of GET /v1/protocols.
type protocolDoc struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Kind        string   `json:"kind"`
	Params      []string `json:"params,omitempty"`
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	list := s.cfg.Registry.List()
	docs := make([]protocolDoc, len(list))
	for i, p := range list {
		docs[i] = protocolDoc{Name: p.Name, Description: p.Description, Kind: p.Kind, Params: p.Params}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Protocols []protocolDoc `json:"protocols"`
	}{docs})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		InFlight   int64  `json:"inflight_workers"`
	}{"ok", s.pool.depth(), s.metrics.InFlight.Load()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.metrics.Snapshot(s.pool.depth(), s.pool.capacity(), s.started))
}
