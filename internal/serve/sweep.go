package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"popkit/internal/expt"
	"popkit/internal/qos"
	"popkit/internal/store"
)

// handleSweep is POST /v1/sweep: decode a grid spec, expand it server-side
// into normalized JobSpecs, and resolve every point through the result
// store with single-flight dedupe — hits stream straight from disk, misses
// run on the worker pool (waiting politely when the bounded queue is full
// instead of failing the sweep), and concurrent identical points coalesce
// onto one computation. The response streams one NDJSON manifest line per
// grid point, in point order, followed by a {"sweep": {...}} summary.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.metrics.JobsRejectedDraining.Add(1)
		s.writeBackoff(w, http.StatusServiceUnavailable, "server draining; retry (or fail over to another worker)")
		return
	}
	tenant, ok := qos.CleanTenant(r.Header.Get(tenantHeader))
	if !ok {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad %s header: want ≤64 chars of [A-Za-z0-9._-]", tenantHeader)
		return
	}
	var sw expt.SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	specs, err := sw.Expand(s.cfg.MaxSweepPoints)
	if err != nil {
		s.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	// Normalize per point, so one invalid grid point yields one manifest
	// error line instead of failing the sweep.
	points := make([]store.Point, len(specs))
	for i := range specs {
		sp := specs[i]
		if _, err := s.cfg.Registry.Normalize(&sp, s.cfg.MaxN, s.cfg.MaxReplicas); err != nil {
			points[i] = store.Point{Spec: specs[i], Err: err}
			continue
		}
		points[i] = store.Point{Spec: sp}
	}
	s.metrics.Sweeps.Add(1)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sweeper := &store.Sweeper{
		Store:   s.store,
		Flight:  s.flight,
		Workers: s.cfg.SweepWorkers,
		Execute: func(ctx context.Context, spec expt.JobSpec) ([][]byte, error) {
			return s.executeJob(ctx, spec, tenant)
		},
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	writeLine := func(line []byte) {
		if _, err := w.Write(line); err != nil {
			// Client gone; the request context cancels the sweep.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum := sweeper.Run(ctx, points, func(res expt.SweepResult) {
		switch {
		case res.Err != "":
			s.metrics.SweepPointsError.Add(1)
		case res.Cache == "hit":
			s.metrics.SweepPointsHit.Add(1)
		case res.Cache == "miss":
			s.metrics.SweepPointsMiss.Add(1)
		case res.Cache == "inflight":
			s.metrics.SweepPointsInfl.Add(1)
		}
		if line, err := json.Marshal(res); err == nil {
			writeLine(append(line, '\n'))
		}
	})
	if line, err := expt.MarshalSummaryLine(sum); err == nil {
		writeLine(line)
	}
}

// executeJob runs one normalized spec on the worker pool without an HTTP
// stream — the sweep's miss path. The job enqueues under the sweep's own
// tenant, so a sweeping tenant's misses bill against its DRR budget and
// can never bypass fair queueing; a full queue (global or this tenant's
// lane) means waiting for a slot (the request context bounds the wait)
// rather than failing the sweep: inside one sweep, backpressure is pacing.
// Returns the complete newline-terminated record lines in replica order.
func (s *Server) executeJob(ctx context.Context, spec expt.JobSpec, tenant string) ([][]byte, error) {
	// Re-normalizing a normalized spec is the identity; it recovers the
	// protocol handle without widening the Sweeper's Execute signature.
	proto, err := s.cfg.Registry.Normalize(&spec, s.cfg.MaxN, s.cfg.MaxReplicas)
	if err != nil {
		return nil, err
	}
	pred := s.model.Predict(spec, proto.Kind)
	if s.cfg.CostBudget > 0 && pred.Total > s.cfg.CostBudget {
		s.qosM.Rejected(tenant, pred.Class, "over_budget")
		return nil, fmt.Errorf("predicted cost %v exceeds the server budget %v",
			pred.Total.Round(time.Millisecond), s.cfg.CostBudget)
	}
	jctx, cancel := context.WithTimeout(ctx, s.jobDeadline(pred, nil))
	defer cancel()
	j := &queuedJob{
		spec:    spec,
		proto:   proto,
		ctx:     jctx,
		records: make(chan expt.ReplicaRecord, spec.Replicas),
		tenant:  tenant,
		pred:    pred,
	}
	for {
		err := s.pool.tryEnqueue(j)
		if err == nil {
			break
		}
		if errors.Is(err, qos.ErrQueueClosed) {
			return nil, err
		}
		if err := sleepCtx(jctx, 25*time.Millisecond); err != nil {
			return nil, fmt.Errorf("waiting for a queue slot: %w", err)
		}
	}
	s.metrics.JobsAccepted.Add(1)
	s.qosM.Admitted(tenant, pred.Class)

	lines := make([][]byte, 0, spec.Replicas)
	var failed string
	for rec := range j.records {
		if rec.Err != "" {
			if failed == "" {
				failed = fmt.Sprintf("replica %d failed (%s): %s", rec.Replica, rec.ErrKind, rec.Err)
			}
			continue
		}
		line, err := rec.MarshalLine()
		if err != nil {
			return nil, err
		}
		lines = append(lines, line)
	}
	if err := j.err(); err != nil {
		return nil, err
	}
	if failed != "" {
		return nil, fmt.Errorf("%s", failed)
	}
	if len(lines) != spec.Replicas {
		return nil, fmt.Errorf("job produced %d of %d records", len(lines), spec.Replicas)
	}
	return lines, nil
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
