package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"popkit/internal/expt"
	"popkit/internal/obs"
)

// TestEveryRouteHasHistogram pins the fix for the hardcoded endpoint list:
// the metrics' endpoint set derives from the route table, so every
// registered route — pprof included — has a latency histogram.
func TestEveryRouteHasHistogram(t *testing.T) {
	s := MustNew(Config{EnablePprof: true})
	defer s.Close()
	rts := s.routes()
	if len(rts) < 9 {
		t.Fatalf("route table has %d entries with pprof on, want 9", len(rts))
	}
	for _, rt := range rts {
		if s.Metrics().Latency(rt.name) == nil {
			t.Errorf("route %q (%s) has no latency histogram", rt.name, rt.pattern)
		}
	}
}

// TestPprofGating: the profiling endpoints exist only when EnablePprof is
// set.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served while disabled: %d", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

// TestMetricsPromFormat runs a job and checks the Prometheus exposition:
// the popkit_* families appear with correct values, the per-endpoint
// latency series exists, and a second render is consistent (counters
// monotone, families in the same order).
func TestMetricsPromFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{FleetWorkers: 2})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":64,"seed":1,"replicas":3}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	fetch := func() string {
		t.Helper()
		mr, err := http.Get(ts.URL + "/metrics?format=prom")
		if err != nil {
			t.Fatal(err)
		}
		defer mr.Body.Close()
		if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("prom content type = %q", ct)
		}
		b, err := io.ReadAll(mr.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	text := fetch()

	for _, want := range []string{
		"# TYPE popkit_jobs_accepted_total counter",
		"popkit_jobs_accepted_total 1",
		`popkit_jobs_rejected_total{reason="queue_full"} 0`,
		`popkit_jobs_rejected_total{reason="invalid"} 0`,
		"popkit_jobs_completed_total 1",
		"popkit_replicas_completed_total 3",
		"# TYPE popkit_jobs_inflight gauge",
		"# TYPE popkit_fleet_replica_duration_seconds histogram",
		"popkit_fleet_replica_duration_seconds_count 3",
		`popkit_http_request_duration_seconds_count{endpoint="simulate"} 1`,
		"popkit_queue_capacity 64",
		"# TYPE popkit_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// Second render: same family order, counters not moving backwards.
	again := fetch()
	order := func(s string) []string {
		var fams []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				fams = append(fams, line)
			}
		}
		return fams
	}
	a, b := order(text), order(again)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("family order unstable:\n%v\nvs\n%v", a, b)
	}
	if !strings.Contains(again, "popkit_jobs_accepted_total 1") {
		t.Errorf("accepted counter regressed between renders")
	}
}

// TestMetricsJSONFieldOrder is the JSON snapshot golden: the documented
// field names appear, in declaration order, on every render.
func TestMetricsJSONFieldOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":64,"seed":1,"replicas":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	doc := string(body)
	keys := []string{
		`"jobs_accepted"`, `"jobs_rejected_queue_full"`, `"jobs_rejected_invalid"`,
		`"jobs_completed"`, `"jobs_failed"`, `"jobs_cancelled"`, `"jobs_resumed"`,
		`"replicas_completed"`, `"interactions_total"`, `"interactions_per_sec"`,
		`"fleet_steals_total"`, `"fleet_retries_total"`,
		`"queue_depth"`, `"queue_capacity"`, `"inflight_workers"`, `"uptime_sec"`,
		`"replica_latency"`, `"latency"`,
	}
	prev := -1
	for _, k := range keys {
		i := strings.Index(doc, k)
		if i < 0 {
			t.Fatalf("metrics JSON missing %s:\n%s", k, doc)
		}
		if i < prev {
			t.Fatalf("field %s out of order", k)
		}
		prev = i
	}
}

// TestFleetTelemetryReachesMetrics: after a multi-replica job, the
// replica-duration histogram has one sample per replica and the fleet
// tallies are present in the snapshot.
func TestFleetTelemetryReachesMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{FleetWorkers: 4})
	resp := postSpec(t, ts.URL, `{"protocol":"coalescence","n":2000,"seed":7,"replicas":6}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if got := s.Metrics().ReplicaDuration.Count(); got != 6 {
		t.Errorf("replica duration samples = %d, want 6", got)
	}
	snap := s.Metrics().Snapshot(0, 1, time.Now().Add(-time.Second))
	if snap.ReplicaLatency.Count != 6 {
		t.Errorf("snapshot replica latency count = %d, want 6", snap.ReplicaLatency.Count)
	}
	if snap.FleetSteals < 0 || snap.FleetRetries != 0 {
		t.Errorf("fleet tallies wrong: steals=%d retries=%d", snap.FleetSteals, snap.FleetRetries)
	}
}

// TestMetricsConcurrentWithJobs hammers both metric renders while fleet
// workers are writing the shared registry — the -race check for the
// registry-backed metrics path.
func TestMetricsConcurrentWithJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, FleetWorkers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			resp := postSpec(t, ts.URL, `{"protocol":"leader","n":64,"seed":`+string(rune('1'+seed))+`,"replicas":4}`)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
		}
		for _, path := range []string{"/metrics", "/metrics?format=prom"} {
			r, err := http.Get(ts.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}
}

// runRecords executes a protocol directly through the registry, returning
// the marshalled record lines in replica order.
func runRecords(t *testing.T, ctx context.Context, specJSON string) []string {
	t.Helper()
	reg := NewRegistry()
	var spec expt.JobSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatalf("spec: %v", err)
	}
	p, err := reg.Normalize(&spec, 5_000_000, 1024)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	var lines []string
	err = p.Run(ctx, spec, RunOptions{Workers: 2}, func(rec expt.ReplicaRecord) {
		b, merr := rec.MarshalLine()
		if merr != nil {
			t.Fatalf("marshal: %v", merr)
		}
		lines = append(lines, string(b))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return lines
}

// TestTraceDoesNotPerturbRecords is the service-level acceptance property:
// a job run with a context-attached trace streams byte-identical records to
// an untraced run, for both the framework and the counted paths — while the
// trace itself captures the run's timeline.
func TestTraceDoesNotPerturbRecords(t *testing.T) {
	cases := []struct {
		spec string
		kind string // event kind the trace must contain
	}{
		{`{"protocol":"leader","n":64,"seed":42,"replicas":3}`, "iteration"},
		{`{"protocol":"coalescence","n":3000,"seed":42,"replicas":2}`, "count"},
	}
	for _, c := range cases {
		plain := runRecords(t, context.Background(), c.spec)
		tr := obs.NewTrace(1 << 16)
		traced := runRecords(t, obs.WithTrace(context.Background(), tr), c.spec)
		if strings.Join(plain, "") != strings.Join(traced, "") {
			t.Errorf("%s: traced records diverged\nplain:  %v\ntraced: %v", c.spec, plain, traced)
		}
		found := false
		for _, e := range tr.Events() {
			if e.Kind == c.kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: trace has no %q events (%d total)", c.spec, c.kind, tr.Len())
		}
	}
}
