package serve

import (
	"io"
	"time"

	"popkit/internal/obs"
	"popkit/internal/qos"
	"popkit/internal/store"
)

// Histogram is the service's request-latency histogram — the shared obs
// implementation (lock-free, power-of-two µs buckets). The zero value is
// ready to use.
type Histogram = obs.Histogram

// HistogramSnapshot summarizes a Histogram for the JSON metrics document.
type HistogramSnapshot = obs.HistogramSnapshot

// Metrics holds the service's counters, backed by a shared obs.Registry so
// one set of atomics feeds both the JSON document (GET /metrics) and the
// Prometheus text exposition (GET /metrics?format=prom). Everything is
// monotonic except the gauges (queue depth, in-flight workers), which are
// sampled at render time.
type Metrics struct {
	reg *obs.Registry

	JobsAccepted        *obs.Counter
	JobsRejectedFull    *obs.Counter
	JobsRejectedInvalid *obs.Counter
	// JobsRejectedDraining counts simulate requests turned away with 503
	// because graceful shutdown had begun.
	JobsRejectedDraining *obs.Counter
	JobsCompleted        *obs.Counter
	JobsFailed           *obs.Counter
	JobsCancelled        *obs.Counter
	// JobsResumed counts requests that found a journaled prefix for their
	// job_id (including jobs served entirely from the journal).
	JobsResumed       *obs.Counter
	ReplicasCompleted *obs.Counter
	Interactions      *obs.Counter
	InFlight          *obs.GaugeInt

	// Sweeps counts accepted /v1/sweep requests; SweepPointsHit/Miss/
	// Inflight/Error break down how their grid points resolved.
	Sweeps           *obs.Counter
	SweepPointsHit   *obs.Counter
	SweepPointsMiss  *obs.Counter
	SweepPointsInfl  *obs.Counter
	SweepPointsError *obs.Counter

	// FleetSteals / FleetRetries aggregate the replica fleet's work-stealing
	// traffic and crash-retry attempts across jobs (fleet.Stats totals).
	FleetSteals  *obs.Counter
	FleetRetries *obs.Counter
	// ReplicaDuration is the per-replica wall-clock histogram, fed from
	// every fleet result as it completes.
	ReplicaDuration *obs.Histogram

	// queueDepth/queueCap mirror the pool's sampled gauges into the prom
	// exposition; the JSON document samples them directly.
	queueDepth *obs.GaugeInt
	queueCap   *obs.GaugeInt

	// latency histograms, keyed by endpoint name at construction.
	latency map[string]*Histogram
}

// NewMetrics returns a metrics set with one latency histogram per endpoint,
// all registered on a fresh obs.Registry under popkit_* family names.
func NewMetrics(endpoints ...string) *Metrics {
	reg := obs.NewRegistry()
	rejected := "jobs rejected before entering the queue, by reason"
	m := &Metrics{
		reg:                  reg,
		JobsAccepted:         reg.Counter("popkit_jobs_accepted_total", "jobs admitted to the queue"),
		JobsRejectedFull:     reg.Counter("popkit_jobs_rejected_total", rejected, obs.L("reason", "queue_full")),
		JobsRejectedInvalid:  reg.Counter("popkit_jobs_rejected_total", rejected, obs.L("reason", "invalid")),
		JobsRejectedDraining: reg.Counter("popkit_jobs_rejected_total", rejected, obs.L("reason", "draining")),
		JobsCompleted:        reg.Counter("popkit_jobs_completed_total", "jobs that ran every replica"),
		JobsFailed:           reg.Counter("popkit_jobs_failed_total", "jobs that ended with a replica error"),
		JobsCancelled:        reg.Counter("popkit_jobs_cancelled_total", "jobs aborted by client disconnect or timeout"),
		JobsResumed:          reg.Counter("popkit_jobs_resumed_total", "requests that replayed a journaled prefix"),
		ReplicasCompleted:    reg.Counter("popkit_replicas_completed_total", "replicas computed successfully"),
		Interactions:         reg.Counter("popkit_interactions_total", "simulated scheduler activations served"),
		InFlight:             reg.Gauge("popkit_jobs_inflight", "jobs currently executing"),
		Sweeps:               reg.Counter("popkit_sweeps_total", "sweep requests accepted"),
		SweepPointsHit:       reg.Counter("popkit_sweep_points_total", "sweep grid points by cache resolution", obs.L("cache", "hit")),
		SweepPointsMiss:      reg.Counter("popkit_sweep_points_total", "sweep grid points by cache resolution", obs.L("cache", "miss")),
		SweepPointsInfl:      reg.Counter("popkit_sweep_points_total", "sweep grid points by cache resolution", obs.L("cache", "inflight")),
		SweepPointsError:     reg.Counter("popkit_sweep_points_total", "sweep grid points by cache resolution", obs.L("cache", "error")),
		FleetSteals:          reg.Counter("popkit_fleet_steals_total", "replicas claimed from another fleet worker's deque"),
		FleetRetries:         reg.Counter("popkit_fleet_retries_total", "extra replica attempts consumed by crashes"),
		ReplicaDuration:      reg.Histogram("popkit_fleet_replica_duration_seconds", "per-replica wall-clock time"),
		queueDepth:           reg.Gauge("popkit_queue_depth", "accepted-but-not-started jobs"),
		queueCap:             reg.Gauge("popkit_queue_capacity", "job queue capacity"),
		latency:              make(map[string]*Histogram, len(endpoints)),
	}
	for _, e := range endpoints {
		if _, dup := m.latency[e]; dup {
			continue
		}
		m.latency[e] = reg.Histogram("popkit_http_request_duration_seconds",
			"HTTP request latency by endpoint", obs.L("endpoint", e))
	}
	return m
}

// Registry exposes the underlying obs registry (embedding binaries that want
// to add their own series to the same /metrics exposition).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Latency returns the endpoint's histogram (nil for unknown endpoints, so
// instrumentation of an unregistered route is a no-op rather than a crash).
func (m *Metrics) Latency(endpoint string) *Histogram { return m.latency[endpoint] }

// MetricsSnapshot is the /metrics JSON document.
type MetricsSnapshot struct {
	JobsAccepted         int64 `json:"jobs_accepted"`
	JobsRejectedFull     int64 `json:"jobs_rejected_queue_full"`
	JobsRejectedInvalid  int64 `json:"jobs_rejected_invalid"`
	JobsRejectedDraining int64 `json:"jobs_rejected_draining"`
	JobsCompleted        int64 `json:"jobs_completed"`
	JobsFailed           int64 `json:"jobs_failed"`
	JobsCancelled        int64 `json:"jobs_cancelled"`
	JobsResumed          int64 `json:"jobs_resumed"`
	ReplicasCompleted    int64 `json:"replicas_completed"`
	// Interactions is the total number of simulated scheduler activations
	// served, including ones the counted kernels leapt over.
	Interactions uint64 `json:"interactions_total"`
	// InteractionsPerSec is the lifetime average service throughput.
	InteractionsPerSec float64 `json:"interactions_per_sec"`
	// FleetSteals/FleetRetries are the replica fleet's cumulative
	// work-stealing and crash-retry tallies across all jobs.
	FleetSteals     int64   `json:"fleet_steals_total"`
	FleetRetries    int64   `json:"fleet_retries_total"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCapacity   int     `json:"queue_capacity"`
	InFlightWorkers int64   `json:"inflight_workers"`
	UptimeSec       float64 `json:"uptime_sec"`
	// Sweeps and the SweepPoints* fields tally /v1/sweep traffic.
	Sweeps              int64 `json:"sweeps"`
	SweepPointsHit      int64 `json:"sweep_points_hit"`
	SweepPointsMiss     int64 `json:"sweep_points_miss"`
	SweepPointsInflight int64 `json:"sweep_points_inflight"`
	SweepPointsError    int64 `json:"sweep_points_error"`
	// Store summarizes the content-addressed result store (present only
	// when the server runs with one).
	Store *store.Snapshot `json:"store,omitempty"`
	// QoS summarizes admission control: per-tenant admit/reject/shed
	// tallies, queue-wait and prediction-error histograms, whale gauge,
	// and the cost model's per-tier EWMA corrections.
	QoS *qos.Snapshot `json:"qos,omitempty"`
	// ReplicaLatency summarizes per-replica wall-clock time across jobs.
	ReplicaLatency HistogramSnapshot `json:"replica_latency"`
	// Latency maps endpoint name to its request-latency summary.
	Latency map[string]HistogramSnapshot `json:"latency"`
}

// Snapshot renders the counters. queueDepth/queueCap are sampled by the
// caller (the server owns the queue); started anchors the uptime.
func (m *Metrics) Snapshot(queueDepth, queueCap int, started time.Time) MetricsSnapshot {
	up := time.Since(started).Seconds()
	s := MetricsSnapshot{
		JobsAccepted:         int64(m.JobsAccepted.Load()),
		JobsRejectedFull:     int64(m.JobsRejectedFull.Load()),
		JobsRejectedInvalid:  int64(m.JobsRejectedInvalid.Load()),
		JobsRejectedDraining: int64(m.JobsRejectedDraining.Load()),
		JobsCompleted:        int64(m.JobsCompleted.Load()),
		JobsFailed:           int64(m.JobsFailed.Load()),
		JobsCancelled:        int64(m.JobsCancelled.Load()),
		JobsResumed:          int64(m.JobsResumed.Load()),
		ReplicasCompleted:    int64(m.ReplicasCompleted.Load()),
		Sweeps:               int64(m.Sweeps.Load()),
		SweepPointsHit:       int64(m.SweepPointsHit.Load()),
		SweepPointsMiss:      int64(m.SweepPointsMiss.Load()),
		SweepPointsInflight:  int64(m.SweepPointsInfl.Load()),
		SweepPointsError:     int64(m.SweepPointsError.Load()),
		Interactions:         m.Interactions.Load(),
		FleetSteals:          int64(m.FleetSteals.Load()),
		FleetRetries:         int64(m.FleetRetries.Load()),
		QueueDepth:           queueDepth,
		QueueCapacity:        queueCap,
		InFlightWorkers:      m.InFlight.Load(),
		UptimeSec:            up,
		ReplicaLatency:       m.ReplicaDuration.Snapshot(),
		Latency:              make(map[string]HistogramSnapshot, len(m.latency)),
	}
	if up > 0 {
		s.InteractionsPerSec = float64(s.Interactions) / up
	}
	for name, h := range m.latency {
		s.Latency[name] = h.Snapshot()
	}
	return s
}

// WriteProm renders the registry in the Prometheus text exposition format,
// first refreshing the sampled gauges (queue depth/capacity, uptime) that
// other components own.
func (m *Metrics) WriteProm(w io.Writer, queueDepth, queueCap int, started time.Time) error {
	m.queueDepth.Set(int64(queueDepth))
	m.queueCap.Set(int64(queueCap))
	m.reg.GaugeFunc("popkit_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(started).Seconds() })
	return m.reg.WritePromTo(w)
}
