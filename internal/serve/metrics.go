package serve

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Metrics holds the service's expvar-style counters: lock-free atomics,
// rendered as one JSON document by GET /metrics. Everything is monotonic
// except the gauges (queue depth, in-flight workers), which are sampled at
// render time.
type Metrics struct {
	JobsAccepted        atomic.Int64
	JobsRejectedFull    atomic.Int64
	JobsRejectedInvalid atomic.Int64
	JobsCompleted       atomic.Int64
	JobsFailed          atomic.Int64
	JobsCancelled       atomic.Int64
	// JobsResumed counts requests that found a journaled prefix for their
	// job_id (including jobs served entirely from the journal).
	JobsResumed       atomic.Int64
	ReplicasCompleted atomic.Int64
	Interactions      atomic.Uint64
	InFlight          atomic.Int64

	// latency histograms, keyed by endpoint name at construction.
	latency map[string]*Histogram
}

// NewMetrics returns a metrics set with one latency histogram per endpoint.
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{latency: make(map[string]*Histogram, len(endpoints))}
	for _, e := range endpoints {
		m.latency[e] = &Histogram{}
	}
	return m
}

// Latency returns the endpoint's histogram (nil for unknown endpoints, so
// instrumentation of an unregistered route is a no-op rather than a crash).
func (m *Metrics) Latency(endpoint string) *Histogram { return m.latency[endpoint] }

// MetricsSnapshot is the /metrics JSON document.
type MetricsSnapshot struct {
	JobsAccepted        int64 `json:"jobs_accepted"`
	JobsRejectedFull    int64 `json:"jobs_rejected_queue_full"`
	JobsRejectedInvalid int64 `json:"jobs_rejected_invalid"`
	JobsCompleted       int64 `json:"jobs_completed"`
	JobsFailed          int64 `json:"jobs_failed"`
	JobsCancelled       int64 `json:"jobs_cancelled"`
	JobsResumed         int64 `json:"jobs_resumed"`
	ReplicasCompleted   int64 `json:"replicas_completed"`
	// Interactions is the total number of simulated scheduler activations
	// served, including ones the counted kernels leapt over.
	Interactions uint64 `json:"interactions_total"`
	// InteractionsPerSec is the lifetime average service throughput.
	InteractionsPerSec float64 `json:"interactions_per_sec"`
	QueueDepth         int     `json:"queue_depth"`
	QueueCapacity      int     `json:"queue_capacity"`
	InFlightWorkers    int64   `json:"inflight_workers"`
	UptimeSec          float64 `json:"uptime_sec"`
	// Latency maps endpoint name to its request-latency summary.
	Latency map[string]HistogramSnapshot `json:"latency"`
}

// Snapshot renders the counters. queueDepth/queueCap are sampled by the
// caller (the server owns the queue); started anchors the uptime.
func (m *Metrics) Snapshot(queueDepth, queueCap int, started time.Time) MetricsSnapshot {
	up := time.Since(started).Seconds()
	s := MetricsSnapshot{
		JobsAccepted:        m.JobsAccepted.Load(),
		JobsRejectedFull:    m.JobsRejectedFull.Load(),
		JobsRejectedInvalid: m.JobsRejectedInvalid.Load(),
		JobsCompleted:       m.JobsCompleted.Load(),
		JobsFailed:          m.JobsFailed.Load(),
		JobsCancelled:       m.JobsCancelled.Load(),
		JobsResumed:         m.JobsResumed.Load(),
		ReplicasCompleted:   m.ReplicasCompleted.Load(),
		Interactions:        m.Interactions.Load(),
		QueueDepth:          queueDepth,
		QueueCapacity:       queueCap,
		InFlightWorkers:     m.InFlight.Load(),
		UptimeSec:           up,
		Latency:             make(map[string]HistogramSnapshot, len(m.latency)),
	}
	if up > 0 {
		s.InteractionsPerSec = float64(s.Interactions) / up
	}
	for name, h := range m.latency {
		s.Latency[name] = h.Snapshot()
	}
	return s
}

// histBuckets is the number of power-of-two microsecond latency buckets:
// bucket i counts observations in [2^i µs, 2^(i+1) µs), so the range spans
// 1 µs to ~67 s — wider than any job the per-job timeout admits.
const histBuckets = 27

// Histogram is a lock-free power-of-two latency histogram.
type Histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one request latency.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	i := bits.Len64(uint64(us)) - 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.count.Add(1)
	h.sumUS.Add(us)
	h.buckets[i].Add(1)
}

// HistogramSnapshot summarizes a histogram: count, mean, and bucket-upper-
// bound estimates of the 50th/90th/99th percentiles.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	// BucketsUS maps each non-empty bucket's upper bound in µs to its
	// count; a poor man's cumulative latency curve.
	BucketsUS map[string]int64 `json:"buckets_us,omitempty"`
}

// Snapshot renders the histogram. Concurrent Observe calls may tear the
// (count, buckets) pair slightly; the summary is monitoring data, not an
// invariant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count == 0 {
		return s
	}
	s.MeanMS = float64(h.sumUS.Load()) / float64(s.Count) / 1000
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	s.P50MS = percentile(counts[:], s.Count, 0.50)
	s.P90MS = percentile(counts[:], s.Count, 0.90)
	s.P99MS = percentile(counts[:], s.Count, 0.99)
	s.BucketsUS = make(map[string]int64)
	for i, c := range counts {
		if c > 0 {
			s.BucketsUS[formatBound(i)] = c
		}
	}
	return s
}

// percentile returns the upper bound (in ms) of the bucket containing the
// q-quantile observation.
func percentile(counts []int64, total int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return float64(uint64(1)<<(i+1)) / 1000
		}
	}
	return float64(uint64(1)<<len(counts)) / 1000
}

// formatBound renders bucket i's upper bound in µs.
func formatBound(i int) string {
	return strconv.FormatUint(uint64(1)<<(i+1), 10)
}
