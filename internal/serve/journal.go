package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"popkit/internal/expt"
)

// journalSet owns the on-disk job journals of a journal-enabled server: one
// expt.Journal file per job ID under dir, plus an in-memory busy set that
// serializes access — at most one request (or its enqueued job) touches a
// given ID at a time. The busy set is process-local on purpose: after a
// crash the new process starts idle, and the journals on disk are the only
// state that matters.
type journalSet struct {
	dir  string
	mu   sync.Mutex
	busy map[string]bool
}

func newJournalSet(dir string) *journalSet {
	return &journalSet{dir: dir, busy: make(map[string]bool)}
}

// errJobBusy means another request currently owns the job ID; the client
// should back off and retry (HTTP 409 + Retry-After).
var errJobBusy = fmt.Errorf("job already in flight")

// acquire claims exclusive use of id. The matching release must run exactly
// once — by the handler on early exits, or by the worker once an enqueued
// job finishes.
func (s *journalSet) acquire(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy[id] {
		return errJobBusy
	}
	s.busy[id] = true
	return nil
}

func (s *journalSet) release(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.busy, id)
}

// open loads (or creates) the journal for id. The caller must hold the ID
// via acquire. The spec must be normalized (journal identity is canonical-
// JSON equality).
func (s *journalSet) open(id string, spec expt.JobSpec) (*expt.Journal, [][]byte, error) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, nil, err
	}
	return expt.LoadJournal(filepath.Join(s.dir, id+".ndjson"), spec)
}
