package serve

import (
	"context"
	"errors"
	"sync"

	"popkit/internal/expt"
)

// jobStatus is a queued job's terminal outcome.
type jobStatus int

const (
	jobCompleted jobStatus = iota
	jobFailed
	jobCancelled
)

// queuedJob is one accepted simulation job travelling from the HTTP handler
// through the queue to a pool worker. The worker streams records into the
// records channel (in replica order) and closes it; the terminal error, if
// any, is then available from err().
type queuedJob struct {
	spec  expt.JobSpec
	proto *Protocol
	// ctx is the request-scoped context: client disconnect and the per-job
	// timeout both cancel it, aborting not-yet-started replicas.
	ctx     context.Context
	records chan expt.ReplicaRecord

	mu      sync.Mutex
	termErr error
	status  jobStatus
}

func (j *queuedJob) finish(status jobStatus, err error) {
	j.mu.Lock()
	j.status, j.termErr = status, err
	j.mu.Unlock()
}

// err returns the terminal error; valid once records is closed.
func (j *queuedJob) err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.termErr
}

// errQueueFull is returned by tryEnqueue's callers' contract: the queue is
// at capacity and the client should back off (HTTP 429).
var errQueueFull = errors.New("job queue full")

// pool is the bounded job queue plus the workers draining it. Each worker
// runs one job at a time; a job's replicas fan out across fleetWorkers
// fleet workers, so total simulation parallelism is workers×fleetWorkers.
type pool struct {
	queue        chan *queuedJob
	workers      int
	fleetWorkers int
	metrics      *Metrics

	// hard aborts in-flight fleets when the drain deadline is blown.
	hard     context.Context
	hardStop context.CancelFunc

	closeOnce sync.Once
	wg        sync.WaitGroup
}

func newPool(queueDepth, workers, fleetWorkers int, metrics *Metrics) *pool {
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = 1
	}
	if fleetWorkers < 1 {
		fleetWorkers = 1
	}
	hard, stop := context.WithCancel(context.Background())
	p := &pool{
		queue:        make(chan *queuedJob, queueDepth),
		workers:      workers,
		fleetWorkers: fleetWorkers,
		metrics:      metrics,
		hard:         hard,
		hardStop:     stop,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// tryEnqueue offers the job to the queue without blocking; errQueueFull
// means the caller should reject with backpressure.
func (p *pool) tryEnqueue(j *queuedJob) error {
	select {
	case p.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// depth samples the number of queued (not yet started) jobs.
func (p *pool) depth() int { return len(p.queue) }

func (p *pool) capacity() int { return cap(p.queue) }

// close stops intake and blocks until every queued and in-flight job has
// drained. Callers that need a deadline race close against a timer and then
// call abort.
func (p *pool) close() {
	p.closeOnce.Do(func() { close(p.queue) })
	p.wg.Wait()
}

// abort cancels the contexts of in-flight jobs so close can finish; queued
// jobs are still drained (each sees its cancelled context immediately).
func (p *pool) abort() { p.hardStop() }

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.runJob(j)
	}
}

// runJob executes one job's replicas and streams its records.
func (p *pool) runJob(j *queuedJob) {
	defer close(j.records)
	p.metrics.InFlight.Add(1)
	defer p.metrics.InFlight.Add(-1)

	// Merge the request context with the pool's hard-stop so either aborts
	// the fleet.
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(p.hard, cancel)
	defer stop()

	runErr := j.proto.Run(ctx, j.spec, p.fleetWorkers, func(rec expt.ReplicaRecord) {
		if rec.Err == "" {
			p.metrics.ReplicasCompleted.Add(1)
			p.metrics.Interactions.Add(rec.Interactions)
		}
		select {
		case j.records <- rec:
		case <-ctx.Done():
			// The consumer is gone; drop the record rather than block the
			// worker forever.
		}
	})

	switch {
	case runErr == nil:
		j.finish(jobCompleted, nil)
		p.metrics.JobsCompleted.Add(1)
	case ctx.Err() != nil:
		j.finish(jobCancelled, context.Cause(ctx))
		p.metrics.JobsCancelled.Add(1)
	default:
		j.finish(jobFailed, runErr)
		p.metrics.JobsFailed.Add(1)
	}
}
