package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"popkit/internal/expt"
	"popkit/internal/fleet"
	"popkit/internal/qos"
)

// jobStatus is a queued job's terminal outcome.
type jobStatus int

const (
	jobCompleted jobStatus = iota
	jobFailed
	jobCancelled
)

// queuedJob is one accepted simulation job travelling from the HTTP handler
// through the queue to a pool worker. The worker streams records into the
// records channel (in replica order) and closes it; the terminal error, if
// any, is then available from err().
type queuedJob struct {
	spec  expt.JobSpec
	proto *Protocol
	// ctx is the request-scoped context: client disconnect and the per-job
	// deadline both cancel it, aborting not-yet-started replicas.
	ctx     context.Context
	records chan expt.ReplicaRecord

	// tenant and pred drive QoS scheduling (fair queueing, whale caps) and
	// the prediction-error feedback loop. The zero values — default tenant,
	// zero-cost interactive prediction — are what internal callers without
	// an admission decision get.
	tenant string
	pred   qos.Prediction

	// start is the first replica to compute; records below it were already
	// streamed from the journal by the handler.
	start int
	// journal, when non-nil, receives every completed record before it is
	// offered to the stream, so a crash (of the client or the server)
	// costs only the replicas past the journaled prefix. The worker owns
	// it: closed after the job finishes.
	journal *expt.Journal
	// onDone, when non-nil, runs exactly once after the job finishes and
	// the journal is closed — the handler uses it to release the job-ID
	// lock only when nothing can touch the journal anymore.
	onDone func()

	mu      sync.Mutex
	termErr error
	status  jobStatus
}

func (j *queuedJob) finish(status jobStatus, err error) {
	j.mu.Lock()
	j.status, j.termErr = status, err
	j.mu.Unlock()
}

// err returns the terminal error; valid once records is closed.
func (j *queuedJob) err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.termErr
}

// pool is the per-tenant fair job queue plus the workers draining it. Each
// worker runs one job at a time; a job's replicas fan out across
// fleetWorkers fleet workers, so total simulation parallelism is
// workers×fleetWorkers. Scheduling — class priority, weighted
// deficit-round-robin across tenants, whale concurrency caps — lives in
// qos.Queue; this type owns execution and the metrics feedback loops.
type pool struct {
	q            *qos.Queue
	model        *qos.Model
	qm           *qos.Metrics
	workers      int
	fleetWorkers int
	maxRetries   int
	metrics      *Metrics

	// hard aborts in-flight fleets when the drain deadline is blown.
	hard     context.Context
	hardStop context.CancelFunc

	closeOnce sync.Once
	wg        sync.WaitGroup

	// jitter is a lock-free splitmix64 stream randomizing Retry-After
	// hints, so a burst of rejected clients doesn't return in lockstep.
	jitter atomic.Uint64
}

func newPool(qcfg qos.QueueConfig, workers, fleetWorkers, maxRetries int, metrics *Metrics, model *qos.Model, qm *qos.Metrics) *pool {
	if workers < 1 {
		workers = 1
	}
	if fleetWorkers < 1 {
		fleetWorkers = 1
	}
	if model == nil {
		model = qos.MustNewModel(qos.ModelOptions{})
	}
	if qm == nil {
		qm = qos.NewMetrics(nil)
	}
	hard, stop := context.WithCancel(context.Background())
	p := &pool{
		q:            qos.NewQueue(qcfg),
		model:        model,
		qm:           qm,
		workers:      workers,
		fleetWorkers: fleetWorkers,
		maxRetries:   maxRetries,
		metrics:      metrics,
		hard:         hard,
		hardStop:     stop,
	}
	p.jitter.Store(1)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// tryEnqueue offers the job to its tenant's queue without blocking. The
// returned qos error identifies which limit rejected it (per-tenant depth,
// global depth, tenant cardinality, closed queue); callers map it to a
// structured 429.
func (p *pool) tryEnqueue(j *queuedJob) error {
	tenant := j.tenant
	if tenant == "" {
		tenant = qos.DefaultTenant
	}
	return p.q.Enqueue(&qos.Item{
		Tenant: tenant,
		Class:  j.pred.Class,
		Cost:   j.pred.Total,
		Job:    j,
	})
}

// depth samples the number of queued (not yet started) jobs.
func (p *pool) depth() int { return p.q.Depth() }

// capacity is the per-tenant queue bound (historical queue_capacity gauge).
func (p *pool) capacity() int { return p.q.Capacity() }

// overloaded reports queue pressure at or beyond the shed threshold.
func (p *pool) overloaded() bool { return p.q.Overloaded() }

// tenantQueuedCharge samples one tenant's capped-cost backlog.
func (p *pool) tenantQueuedCharge(tenant string) time.Duration {
	return p.q.TenantQueuedCharge(tenant)
}

// whalesRunning samples currently executing whale-class jobs.
func (p *pool) whalesRunning() int { return p.q.WhalesRunning() }

// retryAfterSeconds computes the Retry-After hint for a rejected request:
// roughly the time for the backlog to clear one slot, scaled by queue depth
// over worker count, plus jitter so a burst of rejected clients spreads its
// return instead of stampeding in lockstep. Bounded to [1, 60].
func (p *pool) retryAfterSeconds() int {
	return p.retryHint(1 + 2*p.q.Depth()/p.workers)
}

// retryAfterTenant is the cost-aware variant: the base is the tenant's own
// queued predicted cost spread across the workers, so a tenant with minutes
// of backlog is told to come back later than one with none.
func (p *pool) retryAfterTenant(tenant string) int {
	base := 1 + int(p.q.TenantQueuedCharge(tenant).Seconds())/p.workers
	global := 1 + 2*p.q.Depth()/p.workers
	if global > base {
		base = global
	}
	return p.retryHint(base)
}

// retryHint adds jitter to a base hint and clamps to [1, 60]. The jitter
// stream is a single atomic — no lock, and concurrent rejections still draw
// distinct values because Add hands each caller a unique counter.
func (p *pool) retryHint(sec int) int {
	if sec < 1 {
		sec = 1
	}
	z := p.jitter.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	sec += int(z % uint64(sec/2+2))
	if sec > 60 {
		sec = 60
	}
	return sec
}

// close stops intake and blocks until every queued and in-flight job has
// drained. Callers that need a deadline race close against a timer and then
// call abort.
func (p *pool) close() {
	p.closeOnce.Do(func() { p.q.Close() })
	p.wg.Wait()
}

// abort cancels the contexts of in-flight jobs so close can finish; queued
// jobs are still drained (each sees its cancelled context immediately).
func (p *pool) abort() { p.hardStop() }

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		it, ok := p.q.Next()
		if !ok {
			return
		}
		j := it.Job.(*queuedJob)
		p.qm.QueueWait(it.Tenant, time.Since(it.Enqueued))
		p.qm.WhalesRunning.Set(int64(p.q.WhalesRunning()))
		p.runJob(j)
		p.q.Done(it)
		p.qm.WhalesRunning.Set(int64(p.q.WhalesRunning()))
	}
}

// runJob executes one job's replicas and streams its records. For
// journaled jobs it also appends each completed record to the journal
// before offering it to the (possibly disconnected) stream, closes the
// journal when the fleet is done, and only then signals onDone — the
// ordering that makes a resumed request safe to admit.
func (p *pool) runJob(j *queuedJob) {
	defer func() {
		close(j.records)
		if j.journal != nil {
			j.journal.Close()
		}
		if j.onDone != nil {
			j.onDone()
		}
	}()
	p.metrics.InFlight.Add(1)
	defer p.metrics.InFlight.Add(-1)

	// Merge the request context with the pool's hard-stop so either aborts
	// the fleet.
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(p.hard, cancel)
	defer stop()

	var fstats fleet.Stats
	opts := RunOptions{
		Workers:    p.fleetWorkers,
		MaxRetries: p.maxRetries,
		Start:      j.start,
		FleetStats: &fstats,
		Observe: func(r fleet.Result) {
			p.metrics.ReplicaDuration.Observe(r.Elapsed)
			if j.pred.PerReplica > 0 {
				// Feed the cost model's EWMA and the drift histogram from
				// every completed replica — this is how a grid measured on
				// other hardware converges onto this machine.
				p.model.Observe(j.pred, r.Elapsed)
				p.qm.ObservePrediction(j.pred.PerReplica, r.Elapsed)
			}
		},
	}
	runErr := j.proto.Run(ctx, j.spec, opts, func(rec expt.ReplicaRecord) {
		if rec.Err == "" {
			p.metrics.ReplicasCompleted.Add(1)
			p.metrics.Interactions.Add(rec.Interactions)
		}
		if j.journal != nil {
			// Journal first: the record is durable even if the stream's
			// client is gone, which is exactly what a resumed request
			// harvests.
			j.journal.Append(rec)
		}
		select {
		case j.records <- rec:
		case <-ctx.Done():
			// The consumer is gone; drop the record rather than block the
			// worker forever.
		}
	})

	tot := fstats.Totals()
	p.metrics.FleetSteals.Add(tot.Steals)
	p.metrics.FleetRetries.Add(tot.Retries)

	switch {
	case runErr == nil:
		j.finish(jobCompleted, nil)
		p.metrics.JobsCompleted.Add(1)
	case ctx.Err() != nil:
		j.finish(jobCancelled, context.Cause(ctx))
		p.metrics.JobsCancelled.Add(1)
	default:
		j.finish(jobFailed, runErr)
		p.metrics.JobsFailed.Add(1)
	}
}
