package serve

import (
	"context"
	"errors"
	"sync"

	"popkit/internal/expt"
	"popkit/internal/fleet"
)

// jobStatus is a queued job's terminal outcome.
type jobStatus int

const (
	jobCompleted jobStatus = iota
	jobFailed
	jobCancelled
)

// queuedJob is one accepted simulation job travelling from the HTTP handler
// through the queue to a pool worker. The worker streams records into the
// records channel (in replica order) and closes it; the terminal error, if
// any, is then available from err().
type queuedJob struct {
	spec  expt.JobSpec
	proto *Protocol
	// ctx is the request-scoped context: client disconnect and the per-job
	// timeout both cancel it, aborting not-yet-started replicas.
	ctx     context.Context
	records chan expt.ReplicaRecord

	// start is the first replica to compute; records below it were already
	// streamed from the journal by the handler.
	start int
	// journal, when non-nil, receives every completed record before it is
	// offered to the stream, so a crash (of the client or the server)
	// costs only the replicas past the journaled prefix. The worker owns
	// it: closed after the job finishes.
	journal *expt.Journal
	// onDone, when non-nil, runs exactly once after the job finishes and
	// the journal is closed — the handler uses it to release the job-ID
	// lock only when nothing can touch the journal anymore.
	onDone func()

	mu      sync.Mutex
	termErr error
	status  jobStatus
}

func (j *queuedJob) finish(status jobStatus, err error) {
	j.mu.Lock()
	j.status, j.termErr = status, err
	j.mu.Unlock()
}

// err returns the terminal error; valid once records is closed.
func (j *queuedJob) err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.termErr
}

// errQueueFull is returned by tryEnqueue's callers' contract: the queue is
// at capacity and the client should back off (HTTP 429).
var errQueueFull = errors.New("job queue full")

// pool is the bounded job queue plus the workers draining it. Each worker
// runs one job at a time; a job's replicas fan out across fleetWorkers
// fleet workers, so total simulation parallelism is workers×fleetWorkers.
type pool struct {
	queue        chan *queuedJob
	workers      int
	fleetWorkers int
	maxRetries   int
	metrics      *Metrics

	// hard aborts in-flight fleets when the drain deadline is blown.
	hard     context.Context
	hardStop context.CancelFunc

	closeOnce sync.Once
	wg        sync.WaitGroup

	// jitterMu/jitter randomize the Retry-After hint so a burst of
	// rejected clients doesn't return in lockstep.
	jitterMu sync.Mutex
	jitter   uint64
}

func newPool(queueDepth, workers, fleetWorkers, maxRetries int, metrics *Metrics) *pool {
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = 1
	}
	if fleetWorkers < 1 {
		fleetWorkers = 1
	}
	hard, stop := context.WithCancel(context.Background())
	p := &pool{
		queue:        make(chan *queuedJob, queueDepth),
		workers:      workers,
		fleetWorkers: fleetWorkers,
		maxRetries:   maxRetries,
		metrics:      metrics,
		hard:         hard,
		hardStop:     stop,
		jitter:       1,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// tryEnqueue offers the job to the queue without blocking; errQueueFull
// means the caller should reject with backpressure.
func (p *pool) tryEnqueue(j *queuedJob) error {
	select {
	case p.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// depth samples the number of queued (not yet started) jobs.
func (p *pool) depth() int { return len(p.queue) }

func (p *pool) capacity() int { return cap(p.queue) }

// retryAfterSeconds computes the Retry-After hint for a rejected request:
// roughly the time for the backlog to clear one slot, scaled by queue depth
// over worker count, plus jitter so a burst of rejected clients spreads its
// return instead of stampeding in lockstep. Bounded to [1, 60].
func (p *pool) retryAfterSeconds() int {
	sec := 1 + 2*p.depth()/p.workers
	p.jitterMu.Lock()
	p.jitter += 0x9e3779b97f4a7c15
	z := p.jitter
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	p.jitterMu.Unlock()
	sec += int(z % uint64(sec/2+2))
	if sec > 60 {
		sec = 60
	}
	return sec
}

// close stops intake and blocks until every queued and in-flight job has
// drained. Callers that need a deadline race close against a timer and then
// call abort.
func (p *pool) close() {
	p.closeOnce.Do(func() { close(p.queue) })
	p.wg.Wait()
}

// abort cancels the contexts of in-flight jobs so close can finish; queued
// jobs are still drained (each sees its cancelled context immediately).
func (p *pool) abort() { p.hardStop() }

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.runJob(j)
	}
}

// runJob executes one job's replicas and streams its records. For
// journaled jobs it also appends each completed record to the journal
// before offering it to the (possibly disconnected) stream, closes the
// journal when the fleet is done, and only then signals onDone — the
// ordering that makes a resumed request safe to admit.
func (p *pool) runJob(j *queuedJob) {
	defer func() {
		close(j.records)
		if j.journal != nil {
			j.journal.Close()
		}
		if j.onDone != nil {
			j.onDone()
		}
	}()
	p.metrics.InFlight.Add(1)
	defer p.metrics.InFlight.Add(-1)

	// Merge the request context with the pool's hard-stop so either aborts
	// the fleet.
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(p.hard, cancel)
	defer stop()

	var fstats fleet.Stats
	opts := RunOptions{
		Workers:    p.fleetWorkers,
		MaxRetries: p.maxRetries,
		Start:      j.start,
		FleetStats: &fstats,
		Observe: func(r fleet.Result) {
			p.metrics.ReplicaDuration.Observe(r.Elapsed)
		},
	}
	runErr := j.proto.Run(ctx, j.spec, opts, func(rec expt.ReplicaRecord) {
		if rec.Err == "" {
			p.metrics.ReplicasCompleted.Add(1)
			p.metrics.Interactions.Add(rec.Interactions)
		}
		if j.journal != nil {
			// Journal first: the record is durable even if the stream's
			// client is gone, which is exactly what a resumed request
			// harvests.
			j.journal.Append(rec)
		}
		select {
		case j.records <- rec:
		case <-ctx.Done():
			// The consumer is gone; drop the record rather than block the
			// worker forever.
		}
	})

	tot := fstats.Totals()
	p.metrics.FleetSteals.Add(tot.Steals)
	p.metrics.FleetRetries.Add(tot.Retries)

	switch {
	case runErr == nil:
		j.finish(jobCompleted, nil)
		p.metrics.JobsCompleted.Add(1)
	case ctx.Err() != nil:
		j.finish(jobCancelled, context.Cause(ctx))
		p.metrics.JobsCancelled.Add(1)
	default:
		j.finish(jobFailed, runErr)
		p.metrics.JobsFailed.Add(1)
	}
}
