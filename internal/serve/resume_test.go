package serve

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"popkit/internal/client"
	"popkit/internal/expt"
	"popkit/internal/fault"
)

const resumeSpec = `{"protocol":"exactmajority","n":2000,"seed":42,"replicas":6,"gap":1,"job_id":%q}`

// baselineBytes renders the fault-free stream of resumeSpec without a
// job id — the byte-identity reference for every recovery scenario.
func baselineBytes(t *testing.T) []byte {
	t.Helper()
	spec := expt.JobSpec{Protocol: "exactmajority", N: 2000, Seed: 42, Replicas: 6, Gap: 1}
	proto, err := NewRegistry().Normalize(&spec, 5_000_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := proto.Run(context.Background(), spec, RunOptions{Workers: 1}, func(r expt.ReplicaRecord) {
		line, _ := r.MarshalLine()
		buf.Write(line)
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postUntilAccepted re-POSTs while the job id is still winding down from a
// previous cancelled request (409), honouring the integer Retry-After only
// long enough for tests.
func postUntilAccepted(t *testing.T, url, body string) *http.Response {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp := postSpec(t, url, body)
		if resp.StatusCode != http.StatusConflict {
			return resp
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if _, err := strconv.Atoi(ra); err != nil {
				t.Fatalf("409 Retry-After %q is not integer seconds", ra)
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job id never released")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalResumeByteIdentical is the crash-recovery contract: a client
// that disconnects mid-stream and re-POSTs the same (job_id, spec) gets the
// full stream, byte-identical to an uninterrupted run, with the journaled
// prefix replayed from disk rather than recomputed.
func TestJournalResumeByteIdentical(t *testing.T) {
	want := baselineBytes(t)
	s, ts := newTestServer(t, Config{JournalDir: t.TempDir(), Workers: 1})
	body := strings.Replace(resumeSpec, "%q", `"r1"`, 1)

	// First request: read two records, then walk away mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		if _, err := br.ReadBytes('\n'); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	cancel()
	resp.Body.Close()

	// Second request with the same id: the journaled prefix replays, the
	// rest is computed, and the whole stream matches the reference.
	resp = postUntilAccepted(t, ts.URL, body)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed stream diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if s.Metrics().JobsResumed.Load() == 0 {
		t.Error("resume not counted in jobs_resumed")
	}

	// Third request: the journal is complete, so the job serves entirely
	// from disk — still byte-identical.
	resp = postUntilAccepted(t, ts.URL, body)
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, want) {
		t.Fatalf("journal-only stream diverges:\n%s", got)
	}
}

func TestJournalSpecMismatchConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{JournalDir: t.TempDir(), Workers: 1})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":128,"seed":1,"replicas":2,"job_id":"m1"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp = postSpec(t, ts.URL, `{"protocol":"leader","n":128,"seed":2,"replicas":2,"job_id":"m1"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched spec got status %d, want 409", resp.StatusCode)
	}
}

func TestJobIDWithoutJournalRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":128,"seed":1,"job_id":"x"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("job_id on journal-less server got status %d, want 400", resp.StatusCode)
	}
}

// TestClientRecoversMidStreamCut drives the full recovery loop end to end:
// the serve/stream failpoint cuts the connection after two records, the
// retrying client reconnects with the same job id, skips the replayed
// prefix, and the delivered bytes match a fault-free run exactly.
func TestClientRecoversMidStreamCut(t *testing.T) {
	want := baselineBytes(t)
	_, ts := newTestServer(t, Config{JournalDir: t.TempDir(), Workers: 1})
	if err := fault.Enable("serve/stream=panic(after=2,times=1)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	cl := client.New(client.Options{
		BaseURL:     ts.URL,
		MaxRetries:  8,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	spec := expt.JobSpec{Protocol: "exactmajority", N: 2000, Seed: 42, Replicas: 6, Gap: 1, JobID: "cut1"}
	var got bytes.Buffer
	seen := map[int]int{}
	if err := cl.Stream(context.Background(), spec, func(rec expt.ReplicaRecord, line []byte) {
		seen[rec.Replica]++
		got.Write(line)
	}); err != nil {
		t.Fatalf("client did not recover: %v", err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Errorf("replica %d delivered %d times", r, n)
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("recovered stream diverges:\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

// TestEnqueueFailpoint: serve/enqueue=error surfaces as 503, and the client
// treats it as retryable.
func TestEnqueueFailpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if err := fault.Enable("serve/enqueue=error(times=1)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":128,"seed":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected enqueue fault got status %d, want 503", resp.StatusCode)
	}

	cl := client.New(client.Options{BaseURL: ts.URL, MaxRetries: 2, BackoffBase: time.Millisecond})
	fault.Reset()
	if err := fault.Enable("serve/enqueue=error(times=1)"); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := cl.Stream(context.Background(), expt.JobSpec{Protocol: "leader", N: 128, Seed: 1, Replicas: 2},
		func(expt.ReplicaRecord, []byte) { n++ })
	if err != nil || n != 2 {
		t.Fatalf("client did not ride out the 503: err=%v records=%d", err, n)
	}
}
