package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"popkit/internal/expt"
	"popkit/internal/qos"
)

func postSpec(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	return resp
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestSimulateStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":256,"seed":9,"replicas":3}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var recs []expt.ReplicaRecord
	for sc.Scan() {
		var rec expt.ReplicaRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Replica != i || !rec.Converged || rec.Err != "" {
			t.Errorf("record %d: %+v", i, rec)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxN: 10000})
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"protocol":`},
		{"unknown field", `{"protocol":"leader","n":100,"wat":1}`},
		{"unknown protocol", `{"protocol":"nosuch","n":100}`},
		{"n too small", `{"protocol":"leader","n":1}`},
		{"n beyond cap", `{"protocol":"leader","n":20000}`},
		{"bad param", `{"protocol":"leader","n":100,"gap":5}`},
	}
	for _, c := range cases {
		resp := postSpec(t, ts.URL, c.body)
		var doc errorDoc
		err := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if err != nil || doc.Error == "" {
			t.Errorf("%s: error body missing (%v)", c.name, err)
		}
	}
	if got := s.Metrics().JobsRejectedInvalid.Load(); got != uint64(len(cases)) {
		t.Errorf("rejected-invalid counter = %d, want %d", got, len(cases))
	}

	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate: status %d, want 405", resp.StatusCode)
	}
}

// blockingRegistry registers a protocol whose replicas block until release
// is closed (or their context dies), for queue/cancellation tests.
func blockingRegistry(t *testing.T, started chan struct{}, release chan struct{}) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register(&Protocol{
		Name: "block",
		Kind: "test",
		run: func(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-release:
				return expt.ReplicaRecord{
					Replica: replica, Protocol: spec.Protocol, N: spec.N,
					Seed: expt.ReplicaSeed(spec.Seed, replica), Converged: true,
				}, nil
			case <-ctx.Done():
				return expt.ReplicaRecord{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		Registry:   blockingRegistry(t, started, release),
		Workers:    1,
		QueueDepth: 1,
	})

	// Job 1 occupies the only worker…
	go func() {
		resp := postSpec(t, ts.URL, `{"protocol":"block","n":10,"seed":1}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	<-started

	// …job 2 fills the queue…
	go func() {
		resp := postSpec(t, ts.URL, `{"protocol":"block","n":10,"seed":2}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// …job 3 must bounce with 429.
	resp := postSpec(t, ts.URL, `{"protocol":"block","n":10,"seed":3}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	} else if sec, err := strconv.Atoi(ra); err != nil || sec < 1 || sec > 60 {
		t.Errorf("429 Retry-After = %q, want integer seconds in [1, 60]", ra)
	}
	var doc errorDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Error == "" {
		t.Errorf("429 error body missing (%v)", err)
	}
	if got := s.Metrics().JobsRejectedFull.Load(); got != 1 {
		t.Errorf("rejected-full counter = %d, want 1", got)
	}
}

func TestClientDisconnectCancelsJob(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		Registry: blockingRegistry(t, started, release),
		Workers:  1,
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"protocol":"block","n":10,"seed":1,"replicas":2}`))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel() // client walks away mid-stream
	<-errc

	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().JobsCancelled.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("job not marked cancelled (cancelled=%d failed=%d completed=%d)",
				s.Metrics().JobsCancelled.Load(), s.Metrics().JobsFailed.Load(), s.Metrics().JobsCompleted.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// The worker must be free again: a normal job completes.
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":64,"seed":4}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"converged":true`)) {
		t.Fatalf("post-cancel job failed: %d %s", resp.StatusCode, body)
	}
}

// TestJobTimeoutSurfacesError: a job outliving JobTimeout is cancelled and
// reports the deadline in-band.
func TestJobTimeoutSurfacesError(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		Registry:   blockingRegistry(t, started, release),
		Workers:    1,
		JobTimeout: 50 * time.Millisecond,
	})
	resp := postSpec(t, ts.URL, `{"protocol":"block","n":10,"seed":1}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("deadline")) {
		t.Fatalf("timeout not surfaced in stream: %s", body)
	}
	if got := s.Metrics().JobsCancelled.Load(); got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
}

// TestHTTPMatchesDirectRun is the determinism-across-the-network-boundary
// guarantee: the HTTP stream must be byte-identical to what the registry
// (and therefore popsim -ndjson, which calls the same code) produces.
func TestHTTPMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{FleetWorkers: 3})
	const body = `{"protocol":"exactmajority","n":2000,"seed":42,"replicas":4,"gap":1}`

	resp := postSpec(t, ts.URL, body)
	httpBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, httpBytes)
	}

	spec := expt.JobSpec{Protocol: "exactmajority", N: 2000, Seed: 42, Replicas: 4, Gap: 1}
	proto, err := NewRegistry().Normalize(&spec, 5_000_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := proto.Run(context.Background(), spec, RunOptions{Workers: 1}, func(r expt.ReplicaRecord) {
		line, _ := r.MarshalLine()
		cli.Write(line)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpBytes, cli.Bytes()) {
		t.Fatalf("HTTP and direct run diverge:\nHTTP:\n%s\nCLI:\n%s", httpBytes, cli.Bytes())
	}
}

func TestProtocolsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Protocols []protocolDoc `json:"protocols"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(doc.Protocols))
	for i, p := range doc.Protocols {
		names[i] = p.Name
		if p.Description == "" || p.Kind == "" {
			t.Errorf("protocol %q missing metadata: %+v", p.Name, p)
		}
	}
	want := NewRegistry().Names()
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("listed %v, want %v", names, want)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":64,"seed":1,"replicas":2}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", hz.StatusCode, health)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.JobsAccepted != 1 || snap.JobsCompleted != 1 || snap.ReplicasCompleted != 2 {
		t.Errorf("job counters wrong: %+v", snap)
	}
	if snap.QueueCapacity == 0 || snap.UptimeSec <= 0 {
		t.Errorf("gauges missing: %+v", snap)
	}
	sim, ok := snap.Latency["simulate"]
	if !ok || sim.Count != 1 || sim.P50MS <= 0 {
		t.Errorf("simulate latency histogram wrong: %+v", snap.Latency)
	}
}

// TestPoolDrainAndAbort: close() must wait for in-flight jobs; abort()
// must break a stuck drain.
func TestPoolDrainAndAbort(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	reg := blockingRegistry(t, started, release)
	m := NewMetrics()
	p := newPool(qos.QueueConfig{PerTenantDepth: 4}, 1, 1, 0, m, nil, nil)
	proto, _ := reg.Lookup("block")
	j := &queuedJob{
		spec:    expt.JobSpec{Protocol: "block", N: 10, Seed: 1, Replicas: 1},
		proto:   proto,
		ctx:     context.Background(),
		records: make(chan expt.ReplicaRecord, 1),
	}
	if err := p.tryEnqueue(j); err != nil {
		t.Fatal(err)
	}
	<-started

	closed := make(chan struct{})
	go func() { p.close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("close returned with a job in flight")
	case <-time.After(50 * time.Millisecond):
	}

	p.abort() // drain deadline blown: force the job down
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close did not return after abort")
	}
	if got := m.JobsCancelled.Load(); got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50MS > 5 {
		t.Errorf("p50 = %v ms, want ~1-2ms bucket", s.P50MS)
	}
	if s.P99MS < 50 {
		t.Errorf("p99 = %v ms, want ≥ the 100ms bucket", s.P99MS)
	}
	if s.MeanMS < 5 || s.MeanMS > 20 {
		t.Errorf("mean = %v ms, want ≈ 10.9", s.MeanMS)
	}
}
