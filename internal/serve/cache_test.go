package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"popkit/internal/fault"
)

const cacheSpecJSON = `{"protocol":"leader","n":256,"seed":9,"replicas":3}`

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestRepeatPostServedFromStore(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	first := postSpec(t, ts.URL, cacheSpecJSON)
	if got := first.Header.Get("X-Popkit-Cache"); got != "miss" {
		t.Fatalf("first POST X-Popkit-Cache = %q, want miss", got)
	}
	firstBody := readAll(t, first)

	// The store-bypass proof: with the enqueue failpoint hard-failing, the
	// repeat POST can only succeed if it never reaches the queue at all.
	if err := fault.Enable("serve/enqueue=error"); err != nil {
		t.Fatal(err)
	}
	second := postSpec(t, ts.URL, cacheSpecJSON)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("cached POST status %d: %s", second.StatusCode, readAll(t, second))
	}
	if got := second.Header.Get("X-Popkit-Cache"); got != "hit" {
		t.Fatalf("second POST X-Popkit-Cache = %q, want hit", got)
	}
	secondBody := readAll(t, second)
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("cached stream not byte-identical:\nfirst  %q\nsecond %q", firstBody, secondBody)
	}

	if got := s.Metrics().JobsAccepted.Load(); got != 1 {
		t.Errorf("jobs accepted = %d, want 1 (the hit must not enqueue)", got)
	}
	snap := s.Store().Metrics().Snapshot()
	if snap.Hits != 1 || snap.Commits != 1 {
		t.Errorf("store snapshot = %+v, want hits=1 commits=1", snap)
	}
}

func TestMetaRecordReportsCached(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	type metaDoc struct {
		Meta struct {
			SpecHash string `json:"spec_hash"`
			Cached   bool   `json:"cached"`
			Replicas int    `json:"replicas"`
		} `json:"meta"`
	}
	post := func() (metaDoc, []string) {
		resp, err := http.Post(ts.URL+"/v1/simulate?meta=1", "application/json", strings.NewReader(cacheSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		var doc metaDoc
		if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil {
			t.Fatalf("bad meta line %q: %v", lines[0], err)
		}
		return doc, lines[1:]
	}

	doc, records := post()
	if doc.Meta.Cached || len(doc.Meta.SpecHash) != 64 || doc.Meta.Replicas != 3 {
		t.Fatalf("first meta = %+v, want cached=false with a sha256 hash and replicas=3", doc.Meta)
	}
	if len(records) != 3 {
		t.Fatalf("first POST streamed %d records, want 3", len(records))
	}
	doc2, records2 := post()
	if !doc2.Meta.Cached || doc2.Meta.SpecHash != doc.Meta.SpecHash {
		t.Fatalf("second meta = %+v, want cached=true with the same hash %.12s", doc2.Meta, doc.Meta.SpecHash)
	}
	if len(records2) != 3 {
		t.Fatalf("cached POST streamed %d records, want 3", len(records2))
	}

	// Without ?meta=1 no metadata record is emitted, preserving byte-identity
	// with CLI output and with store-less servers.
	resp := postSpec(t, ts.URL, cacheSpecJSON)
	body := readAll(t, resp)
	if bytes.Contains(body, []byte(`"meta"`)) {
		t.Fatal("metadata record emitted without ?meta=1")
	}
}

func TestConcurrentIdenticalPostsSingleFlight(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Registry: blockingRegistry(t, started, release),
		Workers:  2,
		StoreDir: t.TempDir(),
	})

	const concurrent = 4
	body := `{"protocol":"block","n":10,"seed":1,"replicas":2}`
	bodies := make([][]byte, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postSpec(t, ts.URL, body)
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			bodies[i] = raw
		}(i)
	}
	<-started // the leader is computing; followers are coalesced
	close(release)
	wg.Wait()

	for i := 1; i < concurrent; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty responses")
	}
	if got := s.Metrics().JobsAccepted.Load(); got != 1 {
		t.Errorf("jobs accepted = %d, want exactly 1 for %d concurrent identical POSTs", got, concurrent)
	}
	snap := s.Store().Metrics().Snapshot()
	if snap.Coalesced != concurrent-1 {
		t.Errorf("coalesced = %d, want %d", snap.Coalesced, concurrent-1)
	}
}

func TestJobIDRequestsBypassTheStore(t *testing.T) {
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir(), JournalDir: t.TempDir()})
	resp := postSpec(t, ts.URL, `{"protocol":"leader","n":256,"seed":9,"replicas":2,"job_id":"j1"}`)
	if got := resp.Header.Get("X-Popkit-Cache"); got != "" {
		t.Fatalf("journaled job got X-Popkit-Cache %q; job_id specs are served by their journal, not the store", got)
	}
	readAll(t, resp)
	if s.Store().Len() != 0 {
		t.Fatal("journaled job was committed to the store")
	}
}

func TestMetricsExposeStoreCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir()})
	readAll(t, postSpec(t, ts.URL, cacheSpecJSON))
	readAll(t, postSpec(t, ts.URL, cacheSpecJSON))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Store == nil {
		t.Fatal("/metrics JSON has no store object on a store-enabled server")
	}
	if snap.Store.Hits != 1 || snap.Store.Misses != 1 || snap.Store.Commits != 1 {
		t.Fatalf("store snapshot = %+v, want hits=1 misses=1 commits=1", *snap.Store)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readAll(t, resp))
	for _, series := range []string{"popkit_store_hits_total 1", "popkit_store_misses_total 1", "popkit_store_entries 1"} {
		if !strings.Contains(prom, series) {
			t.Errorf("prom exposition missing %q", series)
		}
	}
}

func TestStorelessServerStillWorks(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postSpec(t, ts.URL, cacheSpecJSON)
	if got := resp.Header.Get("X-Popkit-Cache"); got != "" {
		t.Fatalf("store-less server set X-Popkit-Cache %q", got)
	}
	first := readAll(t, resp)
	second := readAll(t, postSpec(t, ts.URL, cacheSpecJSON))
	if !bytes.Equal(first, second) {
		t.Fatal("determinism broke without a store")
	}
	if s.Store() != nil {
		t.Fatal("Store() non-nil without StoreDir")
	}
	if got := s.Metrics().JobsAccepted.Load(); got != 2 {
		t.Errorf("jobs accepted = %d, want 2 (no cache, both computed)", got)
	}
}
