package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"popkit/internal/expt"
)

// postSweep POSTs body to /v1/sweep and decodes the manifest + summary.
func postSweep(t *testing.T, url, body string) ([]expt.SweepResult, expt.SweepSummary, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, expt.SweepSummary{}, resp
	}
	var (
		results []expt.SweepResult
		sum     expt.SweepSummary
		sawSum  bool
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if s, ok := expt.ParseSummaryLine(sc.Bytes()); ok {
			sum, sawSum = s, true
			continue
		}
		var res expt.SweepResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad manifest line %q: %v", sc.Text(), err)
		}
		results = append(results, res)
	}
	if !sawSum {
		t.Fatal("sweep stream ended without a summary line")
	}
	return results, sum, resp
}

func TestSweepRunsGridAndDedupesOverlap(t *testing.T) {
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	first := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2]}}`
	results, sum, _ := postSweep(t, ts.URL, first)
	if len(results) != 2 {
		t.Fatalf("got %d manifest lines, want 2", len(results))
	}
	for i, res := range results {
		if res.Point != i || res.Cache != "miss" || res.Err != "" || res.Records != 2 {
			t.Fatalf("point %d = %+v, want an in-order 2-record miss", i, res)
		}
		if len(res.Hash) != 64 {
			t.Fatalf("point %d hash %q is not a sha256", i, res.Hash)
		}
		if res.Spec.Seed != uint64(i+1) {
			t.Fatalf("point %d spec seed = %d, want %d", i, res.Spec.Seed, i+1)
		}
	}
	if sum != (expt.SweepSummary{Points: 2, Misses: 2}) {
		t.Fatalf("first summary = %+v, want 2 misses", sum)
	}

	// Overlapping grid: seeds 1,2 are cached, 3 is new. Only the miss runs.
	accepted := s.Metrics().JobsAccepted.Load()
	second := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2,3]}}`
	results, sum, _ = postSweep(t, ts.URL, second)
	if len(results) != 3 {
		t.Fatalf("got %d manifest lines, want 3", len(results))
	}
	wantCache := []string{"hit", "hit", "miss"}
	for i, res := range results {
		if res.Cache != wantCache[i] {
			t.Fatalf("point %d cache = %q, want %q", i, res.Cache, wantCache[i])
		}
	}
	if sum != (expt.SweepSummary{Points: 3, Hits: 2, Misses: 1}) {
		t.Fatalf("second summary = %+v, want 2 hits 1 miss", sum)
	}
	if got := s.Metrics().JobsAccepted.Load() - accepted; got != 1 {
		t.Fatalf("overlap sweep enqueued %d jobs, want 1 (only the miss set runs)", got)
	}
	if s.Metrics().SweepPointsHit.Load() != 2 || s.Metrics().SweepPointsMiss.Load() != 3 {
		t.Fatalf("sweep point counters hit=%d miss=%d, want 2/3",
			s.Metrics().SweepPointsHit.Load(), s.Metrics().SweepPointsMiss.Load())
	}
}

func TestSweepInvalidPointFailsThatPointOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir()})
	body := `{"base":{"protocol":"leader","n":256},"grid":{"protocol":["leader","nosuch"]}}`
	results, sum, _ := postSweep(t, ts.URL, body)
	if len(results) != 2 {
		t.Fatalf("got %d manifest lines, want 2", len(results))
	}
	if results[0].Err != "" || results[0].Cache != "miss" {
		t.Fatalf("valid point = %+v", results[0])
	}
	if results[1].Err == "" || results[1].Cache != "" {
		t.Fatalf("invalid point = %+v, want an error line", results[1])
	}
	if sum.Errors != 1 || sum.Misses != 1 {
		t.Fatalf("summary = %+v, want 1 miss 1 error", sum)
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir(), MaxSweepPoints: 4})
	for name, body := range map[string]string{
		"malformed":   `{"base":`,
		"unknown key": `{"base":{"protocol":"leader","n":100},"wat":1}`,
		"job_id base": `{"base":{"protocol":"leader","n":100,"job_id":"x"}}`,
		"over cap":    `{"base":{"protocol":"leader","n":100},"grid":{"seed":{"from":1,"to":5}}}`,
	} {
		_, _, resp := postSweep(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: status %d, want 405", resp.StatusCode)
	}
}

// TestSweepWorksWithoutStore exercises the store-less degenerate mode: every
// point computes (no hits possible), but single-flight still dedupes points
// within the request and the manifest still streams.
func TestSweepWorksWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2]}}`
	results, sum, _ := postSweep(t, ts.URL, body)
	if len(results) != 2 || sum.Misses != 2 {
		t.Fatalf("store-less sweep: %d lines, summary %+v", len(results), sum)
	}
}

// TestSweepPacedByBoundedQueue: more grid points than queue slots must not
// 429 — inside a sweep, backpressure means waiting, not failure.
func TestSweepPacedByBoundedQueue(t *testing.T) {
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir(), Workers: 1, QueueDepth: 1, SweepWorkers: 4})
	body := `{"base":{"protocol":"leader","n":128,"replicas":1},"grid":{"seed":{"from":1,"to":6}}}`
	results, sum, _ := postSweep(t, ts.URL, body)
	if len(results) != 6 || sum.Misses != 6 || sum.Errors != 0 {
		t.Fatalf("queue-paced sweep: %d lines, summary %+v, want 6 error-free misses", len(results), sum)
	}
	if got := s.Metrics().JobsRejectedFull.Load(); got != 0 {
		t.Fatalf("sweep tripped the 429 path %d times; it must wait for slots instead", got)
	}
}
