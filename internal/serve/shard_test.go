package serve

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"testing"
)

// TestShardWindowsConcatenateByteIdentical is the worker-side half of the
// cluster contract: splitting a job into [start, replicas) windows and
// concatenating the shard streams reproduces the unsharded stream byte for
// byte, because replica i's record depends only on ReplicaSeed(seed, i).
func TestShardWindowsConcatenateByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	read := func(body string) string {
		resp := postSpec(t, ts.URL, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for %s", resp.StatusCode, body)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	full := read(`{"protocol":"exactmajority","n":300,"seed":11,"replicas":6,"gap":2}`)
	for _, cuts := range [][]int{{0, 3, 6}, {0, 1, 6}, {0, 2, 4, 6}, {0, 1, 2, 3, 4, 5, 6}} {
		var shards string
		for i := 0; i+1 < len(cuts); i++ {
			shards += read(`{"protocol":"exactmajority","n":300,"seed":11,"replicas":` +
				strconv.Itoa(cuts[i+1]) + `,"gap":2,"start":` + strconv.Itoa(cuts[i]) + `}`)
		}
		if shards != full {
			t.Fatalf("shard windows %v differ from full run:\n%s\nvs\n%s", cuts, shards, full)
		}
	}
}

func TestShardWindowValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{JournalDir: t.TempDir()})
	for _, tc := range []struct{ name, body string }{
		{"start at replicas", `{"protocol":"leader","n":100,"replicas":4,"start":4}`},
		{"negative start", `{"protocol":"leader","n":100,"replicas":4,"start":-1}`},
		{"start with job_id", `{"protocol":"leader","n":100,"replicas":4,"start":2,"job_id":"x"}`},
	} {
		resp := postSpec(t, ts.URL, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestDrainingRejectsWithRetryableStatus: once SetDraining flips,
// non-interactive simulate requests bounce with 503 + Retry-After (the
// client treats that like 429/409 and fails over) while interactive jobs —
// predicted sub-second — keep being served (graceful degradation), and
// /healthz reports draining with 503 so cluster health probes stop routing
// shards here — while the cheap liveness body still renders.
func TestDrainingRejectsWithRetryableStatus(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetDraining(true)

	// A batch-class spec (exactmajority n=1e5 predicts ~n·log n rounds —
	// seconds of work) is shed; it never runs, so the test stays fast.
	resp := postSpec(t, ts.URL, `{"protocol":"exactmajority","n":100000,"seed":1}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining simulate: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}
	if !bytes.Contains(body, []byte(`"reason":"draining"`)) {
		t.Fatalf("shed body lacks structured reason: %s", body)
	}
	if s.Metrics().JobsRejectedDraining.Load() != 1 {
		t.Fatal("draining rejection not counted")
	}

	// Interactive work still completes during the drain window.
	resp = postSpec(t, ts.URL, `{"protocol":"leader","n":100,"seed":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining interactive simulate: status %d, want 200", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d", hresp.StatusCode)
	}
	if !bytes.Contains(hbody, []byte(`"status":"draining"`)) {
		t.Fatalf("draining healthz body: %s", hbody)
	}

	// Flipping back restores service — drain is reversible for tests and
	// for load-balancer maintenance drains.
	s.SetDraining(false)
	resp = postSpec(t, ts.URL, `{"protocol":"leader","n":100,"seed":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain simulate: status %d", resp.StatusCode)
	}
}
