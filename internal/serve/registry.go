// Package serve exposes the simulation stack as an HTTP service: a
// protocol registry naming runnable workloads, a bounded job queue with
// backpressure, a worker pool backed by the replica fleet, and NDJSON
// streaming of per-replica results.
//
// Determinism survives the network boundary by construction: a job is an
// expt.JobSpec, replica i derives its whole RNG stream from
// expt.ReplicaSeed(spec.Seed, i), records are streamed in replica order
// through a fleet.OrderedSink, and the CLI (popsim -ndjson) runs the exact
// same registry code — so the same spec yields byte-identical output from
// either entry point, for any worker count.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"popkit/internal/baseline"
	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/expt"
	"popkit/internal/fleet"
	"popkit/internal/frame"
	"popkit/internal/lang"
	"popkit/internal/obs"
	"popkit/internal/protocols"
)

// Protocol is one runnable entry of the registry.
type Protocol struct {
	// Name is the spec's protocol field.
	Name string
	// Description is shown by GET /v1/protocols.
	Description string
	// Kind is "framework" (good-iteration semantics over the paper's
	// programs) or "counted" (flat rule set on the species-count kernels).
	Kind string
	// Params lists the optional JobSpec fields the protocol honours.
	Params []string
	// States reports the per-agent state count at population size n — the
	// space column of the registry's capability matrix. For framework
	// protocols the compiled variable space is independent of n; for the
	// counted protocols it grows with the level/phase range, Θ(log n) for
	// the majority pair and polynomial in log n for GS18.
	States func(n int) uint64
	// Hints are the runner-selection hints this protocol's driver runs
	// under. The zero value means the three-tier dense/batch/aggregate
	// crossover applies unmodified; StateRich pins the dense kernel for
	// protocols whose live species count grows with n.
	Hints expt.RunnerHints

	// normalize applies protocol-specific defaults and validation, after
	// JobSpec.NormalizeCommon has run.
	normalize func(spec *expt.JobSpec) error
	// run executes one replica. All randomness must derive from
	// expt.ReplicaSeed(spec.Seed, replica); ctx cancellation must abort
	// within a bounded amount of simulated work.
	run func(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error)
}

// Jobs expands a normalized spec into the fleet jobs of replicas
// [start, spec.Replicas). A non-zero start is the resume case: replicas
// below it were already computed (and journaled) by an earlier run, and
// because replica i's whole RNG stream derives from ReplicaSeed(Seed, i),
// the remaining replicas are unaffected by the split.
func (p *Protocol) Jobs(spec expt.JobSpec, start int) []fleet.Job {
	jobs := make([]fleet.Job, spec.Replicas-start)
	for k := range jobs {
		i := start + k
		jobs[k] = fleet.Job{
			ID:   i,
			Tag:  spec.Protocol,
			Seed: expt.ReplicaSeed(spec.Seed, i),
			Run: func(ctx context.Context, _ *engine.RNG) (any, error) {
				return p.run(ctx, spec, i)
			},
		}
	}
	return jobs
}

// RecordOf converts a fleet result back into the wire record: a healthy
// replica's record is its computed value; a failed one (panic, timeout,
// cancellation) becomes an error record in its place, with the failure
// classified in ErrKind and a panicking replica's stack preserved so the
// crash is debuggable from the stream alone.
func RecordOf(spec expt.JobSpec, r fleet.Result) expt.ReplicaRecord {
	if r.Err == nil {
		if rec, ok := r.Value.(expt.ReplicaRecord); ok {
			return rec
		}
	}
	rec := expt.ReplicaRecord{
		Replica:  r.ID,
		Protocol: spec.Protocol,
		N:        spec.N,
		Seed:     r.Seed,
	}
	var pe *fleet.PanicError
	switch {
	case r.Err == nil:
		rec.Err = fmt.Sprintf("replica produced %T, want ReplicaRecord", r.Value)
		rec.ErrKind = "error"
	case errors.As(r.Err, &pe):
		rec.Err = fmt.Sprintf("replica panicked: %v", pe.Value)
		rec.ErrKind = "panic"
		rec.Stack = string(pe.Stack)
	case errors.Is(r.Err, context.DeadlineExceeded):
		rec.Err = r.Err.Error()
		rec.ErrKind = "timeout"
	case errors.Is(r.Err, context.Canceled):
		rec.Err = r.Err.Error()
		rec.ErrKind = "cancelled"
	default:
		rec.Err = r.Err.Error()
		rec.ErrKind = "error"
	}
	return rec
}

// RunOptions configures one Protocol.Run. None of its fields change the
// records produced — only how (and whether) they get recomputed.
type RunOptions struct {
	// Workers is the replica-fleet width.
	Workers int
	// MaxRetries re-executes panicked or fault-killed replicas from their
	// own seed (fleet.Options.MaxRetries), so transient crashes never
	// reach the stream.
	MaxRetries int
	// Start skips replicas below this index — the checkpoint-resume case,
	// where a journal already holds records [0, Start).
	Start int
	// Observe, when non-nil, receives every fleet result as it completes —
	// called concurrently from worker goroutines, unlike the ordered record
	// sink — carrying the latency and attempt telemetry the wire records
	// don't.
	Observe func(fleet.Result)
	// FleetStats, when non-nil, is filled with the job's per-worker fleet
	// tallies — work-stealing traffic, retry attempts, busy time
	// (fleet.Options.Stats) — valid once Run returns. (It has nothing to do
	// with /v1/sweep; "sweep" in older comments meant one job's replica
	// fan-out, a usage retired when the parameter-grid sweep API arrived.)
	FleetStats *fleet.Stats
}

// Run executes the spec's replicas [opts.Start, spec.Replicas) across the
// fleet, delivering records to sink in replica order as they complete (sink
// is never called concurrently). It returns the first replica's error in
// replica order, if any — cancellations and panics included — and reports a
// panicking sink, so a record that never reached the stream can't pass for
// success.
func (p *Protocol) Run(ctx context.Context, spec expt.JobSpec, opts RunOptions, sink func(expt.ReplicaRecord)) error {
	ordered := fleet.NewOrderedSinkAt(fleet.SinkFunc(func(r fleet.Result) {
		sink(RecordOf(spec, r))
	}), opts.Start)
	var fanout fleet.ResultSink = ordered
	if opts.Observe != nil {
		fanout = fleet.MultiSink{ordered, fleet.SinkFunc(opts.Observe)}
	}
	results := fleet.Run(ctx, p.Jobs(spec, opts.Start), fleet.Options{
		Workers:    opts.Workers,
		MaxRetries: opts.MaxRetries,
		Sink:       fanout,
		Stats:      opts.FleetStats,
	})
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("replica %d (seed %d): %w", r.ID, r.Seed, r.Err)
		}
	}
	return ordered.SinkErr()
}

// Registry maps protocol names to runnable workloads.
type Registry struct {
	m map[string]*Protocol
}

// NewRegistry returns a registry of the built-in protocols: the paper's
// framework programs (leader, leaderexact, majority, majorityexact,
// plurality) and the counted prior-work baselines the paper compares
// against in §1.2 / experiment E11 (approxmajority, exactmajority,
// coalescence).
func NewRegistry() *Registry {
	r := &Registry{m: make(map[string]*Protocol)}
	for _, p := range builtins() {
		if err := r.Register(p); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds a protocol; duplicate names are an error.
func (r *Registry) Register(p *Protocol) error {
	if p.Name == "" || p.run == nil {
		return fmt.Errorf("serve: protocol needs a name and a run body")
	}
	if _, dup := r.m[p.Name]; dup {
		return fmt.Errorf("serve: protocol %q already registered", p.Name)
	}
	r.m[p.Name] = p
	return nil
}

// Lookup finds a protocol by name.
func (r *Registry) Lookup(name string) (*Protocol, bool) {
	p, ok := r.m[name]
	return p, ok
}

// List returns the protocols sorted by name.
func (r *Registry) List() []*Protocol {
	out := make([]*Protocol, 0, len(r.m))
	for _, p := range r.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted protocol names.
func (r *Registry) Names() []string {
	list := r.List()
	names := make([]string, len(list))
	for i, p := range list {
		names[i] = p.Name
	}
	return names
}

// Normalize validates the spec against the registry and the given limits,
// applying defaults in place, and returns the protocol that will run it.
func (r *Registry) Normalize(spec *expt.JobSpec, maxN, maxReplicas int) (*Protocol, error) {
	if err := spec.NormalizeCommon(maxN, maxReplicas); err != nil {
		return nil, err
	}
	p, ok := r.Lookup(spec.Protocol)
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (known: %v)", spec.Protocol, r.Names())
	}
	if p.normalize != nil {
		if err := p.normalize(spec); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ---- framework protocols (frame executor, good-iteration semantics) ----

// defaultMaxIters mirrors popsim's historical -max-iters default.
const defaultMaxIters = 2000

func normalizeFramework(spec *expt.JobSpec) error {
	if spec.MaxIters == 0 {
		spec.MaxIters = defaultMaxIters
	}
	if spec.MaxRounds != 0 {
		return fmt.Errorf("max_rounds applies to counted protocols only; use max_iters for %q", spec.Protocol)
	}
	return nil
}

// runFramework builds the program, seeds the inputs, and runs to the
// convergence condition, mirroring popsim's semantics exactly.
func runFramework(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{
		Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed,
	}
	prog, err := frameworkProgram(spec)
	if err != nil {
		return rec, err
	}
	e, err := frame.New(prog, spec.N, seed)
	if err != nil {
		return rec, err
	}
	// A timeline attached to the context (obs.WithTrace — popsim -trace)
	// rides along; tracing draws nothing from the RNG, so records stay
	// byte-identical with or without it.
	if tr := obs.FromContext(ctx); tr != nil {
		e.Trace = tr
		e.TraceReplica = replica
	}
	setupFrameworkInputs(e, spec)
	cond := frameworkConvergence(spec)
	iters, ok := e.RunUntil(func(e *frame.Executor) bool {
		return ctx.Err() != nil || cond(e)
	}, spec.MaxIters)
	if err := ctx.Err(); err != nil {
		return rec, err
	}
	rec.Iterations = iters
	rec.Rounds = e.Rounds
	rec.Converged = ok
	rec.Counts = frameworkCounts(e, spec)
	return rec, nil
}

func frameworkProgram(spec expt.JobSpec) (*lang.Program, error) {
	switch spec.Protocol {
	case "leader":
		return protocols.LeaderElection(), nil
	case "leaderexact":
		return protocols.LeaderElectionExact(), nil
	case "majority":
		return protocols.Majority(2), nil
	case "majorityexact":
		return protocols.MajorityExact(2), nil
	case "plurality":
		return protocols.Plurality(spec.Colours, 2), nil
	}
	return nil, fmt.Errorf("no framework program for %q", spec.Protocol)
}

// setupFrameworkInputs assigns the initial input variables the same way
// popsim does: a gap-split A/B population for the majority family, a
// decreasing colour split for plurality.
func setupFrameworkInputs(e *frame.Executor, spec expt.JobSpec) {
	switch spec.Protocol {
	case "majority", "majorityexact":
		a, _ := e.Space.LookupVar("A")
		b, _ := e.Space.LookupVar("B")
		nB := (spec.N - spec.Gap) / 2
		nA := nB + spec.Gap
		e.SetInput(func(i int, s bitmask.State) bitmask.State {
			switch {
			case i < nA:
				s = a.Set(s, true)
			case i < nA+nB:
				s = b.Set(s, true)
			default:
				return s
			}
			if spec.Protocol == "majorityexact" {
				at, _ := e.Space.LookupVar("At")
				bt, _ := e.Space.LookupVar("Bt")
				if i < nA {
					s = at.Set(s, true)
				} else {
					s = bt.Set(s, true)
				}
			}
			return s
		})
	case "plurality":
		colours := spec.Colours
		vars := make([]bitmask.Var, colours)
		for i := range vars {
			vars[i], _ = e.Space.LookupVar(fmt.Sprintf("C%d", i+1))
		}
		sizes := make([]int, colours)
		base := spec.N / (colours + 1)
		rem := spec.N
		for i := range sizes {
			sizes[i] = base - i
			rem -= sizes[i]
		}
		sizes[0] += rem
		e.SetInput(func(i int, s bitmask.State) bitmask.State {
			acc := 0
			for c := 0; c < colours; c++ {
				acc += sizes[c]
				if i < acc {
					return vars[c].Set(s, true)
				}
			}
			return s
		})
	}
}

func frameworkConvergence(spec expt.JobSpec) func(*frame.Executor) bool {
	n := spec.N
	switch spec.Protocol {
	case "leader":
		return func(e *frame.Executor) bool { return e.CountVar("L") == 1 }
	case "leaderexact":
		return func(e *frame.Executor) bool { return e.CountVar("L") == 1 && e.CountVar("R") == 1 }
	case "majority":
		return func(e *frame.Executor) bool {
			y := e.CountVar("YA")
			return (y == 0 || y == n) && e.Iterations >= 3
		}
	case "majorityexact":
		return func(e *frame.Executor) bool {
			return (e.CountVar("At") == 0 || e.CountVar("Bt") == 0) && e.Iterations >= 3
		}
	default: // plurality
		return func(e *frame.Executor) bool { return e.CountVar("W1") == n }
	}
}

func frameworkCounts(e *frame.Executor, spec expt.JobSpec) map[string]int64 {
	out := map[string]int64{}
	switch spec.Protocol {
	case "leader", "leaderexact":
		out["L"] = int64(e.CountVar("L"))
	case "majority", "majorityexact":
		out["YA"] = int64(e.CountVar("YA"))
	case "plurality":
		for c := 1; c <= spec.Colours; c++ {
			key := fmt.Sprintf("W%d", c)
			out[key] = int64(e.CountVar(key))
		}
	}
	return out
}

// ---- counted baselines (species-count kernels via expt.Driver) ----

// driveSliced advances the driver until stop or the round budget, slicing
// the budget so cancellation is honoured between slices even while the
// tracker-gated kernels skip condition polls.
func driveSliced(ctx context.Context, drv *expt.Driver, stop func() bool, maxRounds float64) (rounds float64, ok bool, err error) {
	const slice = 4096.0
	for rounds < maxRounds {
		if err := ctx.Err(); err != nil {
			return rounds, false, err
		}
		step := slice
		if rem := maxRounds - rounds; rem < step {
			step = rem
		}
		r, done := drv.RunUntil(stop, step)
		rounds += r
		if done {
			return rounds, true, nil
		}
		if r <= 0 {
			// Defensive: a kernel that cannot advance must not spin here.
			return rounds, stop(), nil
		}
	}
	return rounds, false, nil
}

// attachTrace wires a context-carried obs timeline (if any) into a counted
// driver, so traced runs emit their tracked-count timeline (one "count"
// event per parallel round) without perturbing the trajectory.
func attachTrace(ctx context.Context, drv *expt.Driver, replica int) {
	if tr := obs.FromContext(ctx); tr != nil {
		drv.SetTrace(tr, replica)
	}
}

// splitGap splits n agents into opinion-A and opinion-B camps with the
// spec's gap (every agent carries an opinion; odd remainders favour A).
func splitGap(n, gap int) (nA, nB int64) {
	b := int64(n-gap) / 2
	return int64(n) - b, b
}

func runApproxMajority(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed}
	am := baseline.NewApproxMajority()
	sA := am.A.Set(bitmask.State{}, true)
	sB := am.B.Set(bitmask.State{}, true)
	nA, nB := splitGap(spec.N, spec.Gap)
	drv := expt.NewDriver(am.Rules(), engine.CompileProtocol(am.Rules()), map[bitmask.State]int64{sA: nA, sB: nB}, engine.NewRNG(seed))
	ta := drv.Track("A", bitmask.Is(am.A))
	tb := drv.Track("B", bitmask.Is(am.B))
	attachTrace(ctx, drv, replica)
	rounds, ok, err := driveSliced(ctx, drv, func() bool {
		return ta.Count() == 0 || tb.Count() == 0
	}, spec.MaxRounds)
	if err != nil {
		return rec, err
	}
	rec.Rounds = rounds
	rec.Converged = ok
	rec.Runner = drv.Kind.String()
	rec.RunnerReason = drv.Reason
	rec.Interactions = drv.Interactions()
	rec.Counts = map[string]int64{"A": ta.Count(), "B": tb.Count()}
	return rec, nil
}

func runExactMajority(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed}
	em := baseline.NewExactMajority4()
	emA := em.Strong.Set(em.IsA.Set(bitmask.State{}, true), true)
	emB := em.Strong.Set(bitmask.State{}, true)
	nA, nB := splitGap(spec.N, spec.Gap)
	drv := expt.NewDriver(em.Rules(), engine.CompileProtocol(em.Rules()), map[bitmask.State]int64{emA: nA, emB: nB}, engine.NewRNG(seed))
	ta := drv.Track("A", bitmask.Is(em.IsA))
	attachTrace(ctx, drv, replica)
	n64 := int64(spec.N)
	rounds, ok, err := driveSliced(ctx, drv, func() bool {
		a := ta.Count()
		return a == 0 || a == n64
	}, spec.MaxRounds)
	if err != nil {
		return rec, err
	}
	rec.Rounds = rounds
	rec.Converged = ok
	rec.Runner = drv.Kind.String()
	rec.RunnerReason = drv.Reason
	rec.Interactions = drv.Interactions()
	rec.Counts = map[string]int64{"A": ta.Count()}
	return rec, nil
}

func runCoalescence(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed}
	cl := baseline.NewCoalescenceLeader()
	sL := cl.L.Set(bitmask.State{}, true)
	drv := expt.NewDriver(cl.Rules(), engine.CompileProtocol(cl.Rules()), map[bitmask.State]int64{sL: int64(spec.N)}, engine.NewRNG(seed))
	tl := drv.Track("L", bitmask.Is(cl.L))
	attachTrace(ctx, drv, replica)
	rounds, ok, err := driveSliced(ctx, drv, func() bool { return tl.Count() == 1 }, spec.MaxRounds)
	if err != nil {
		return rec, err
	}
	rec.Rounds = rounds
	rec.Converged = ok
	rec.Runner = drv.Kind.String()
	rec.RunnerReason = drv.Reason
	rec.Interactions = drv.Interactions()
	rec.Counts = map[string]int64{"L": tl.Count()}
	return rec, nil
}

// ---- related-work protocols (internal/protocols, counted kernels) ----

// majorityStop is the shared decision condition of the exact-majority
// protocols: an A verdict is "no B tokens survive and every agent outputs
// A", a B verdict the mirror image. The conserved weighted opinion sum
// makes the surviving sign always the true initial majority.
func majorityStop(n int64, tokA, tokB, out expt.Counter) func() bool {
	return func() bool {
		if tokB.Count() == 0 && out.Count() == n {
			return true
		}
		return tokA.Count() == 0 && out.Count() == 0
	}
}

func runCDMajority(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed}
	m := protocols.NewCDMajority(spec.N)
	nA, nB := splitGap(spec.N, spec.Gap)
	drv := expt.NewDriver(m.Rules(), engine.CompileProtocol(m.Rules()), m.InitCounts(nA, nB), engine.NewRNG(seed))
	tokA := drv.Track("TokA", bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)))
	tokB := drv.Track("TokB", bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)))
	out := drv.Track("Out", bitmask.Is(m.Out))
	attachTrace(ctx, drv, replica)
	rounds, ok, err := driveSliced(ctx, drv, majorityStop(int64(spec.N), tokA, tokB, out), spec.MaxRounds)
	if err != nil {
		return rec, err
	}
	rec.Rounds = rounds
	rec.Converged = ok
	rec.Runner = drv.Kind.String()
	rec.RunnerReason = drv.Reason
	rec.Interactions = drv.Interactions()
	rec.Counts = map[string]int64{"TokA": tokA.Count(), "TokB": tokB.Count(), "Out": out.Count()}
	return rec, nil
}

func runPRMajority(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed}
	m := protocols.NewPRMajority(spec.N)
	nA, nB := splitGap(spec.N, spec.Gap)
	drv := expt.NewDriver(m.Rules(), engine.CompileProtocol(m.Rules()), m.InitCounts(nA, nB), engine.NewRNG(seed))
	tokA := drv.Track("TokA", bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)))
	tokB := drv.Track("TokB", bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)))
	out := drv.Track("Out", bitmask.Is(m.Out))
	attachTrace(ctx, drv, replica)
	rounds, ok, err := driveSliced(ctx, drv, majorityStop(int64(spec.N), tokA, tokB, out), spec.MaxRounds)
	if err != nil {
		return rec, err
	}
	rec.Rounds = rounds
	rec.Converged = ok
	rec.Runner = drv.Kind.String()
	rec.RunnerReason = drv.Reason
	rec.Interactions = drv.Interactions()
	rec.Counts = map[string]int64{"TokA": tokA.Count(), "TokB": tokB.Count(), "Out": out.Count()}
	return rec, nil
}

func runGS18Leader(ctx context.Context, spec expt.JobSpec, replica int) (expt.ReplicaRecord, error) {
	seed := expt.ReplicaSeed(spec.Seed, replica)
	rec := expt.ReplicaRecord{Replica: replica, Protocol: spec.Protocol, N: spec.N, Seed: seed}
	g := protocols.NewGS18Leader(spec.N)
	rng := engine.NewRNG(seed)
	// InitCounts draws the oscillator species from the same stream the
	// driver then consumes — the whole replica derives from one seed.
	counts := g.InitCounts(spec.N, rng)
	drv := expt.NewDriverWithHints(g.Rules(), engine.CompileProtocol(g.Rules()), counts, rng, gs18Hints)
	tl := drv.Track("L", bitmask.Is(g.L))
	attachTrace(ctx, drv, replica)
	rounds, ok, err := driveSliced(ctx, drv, func() bool { return tl.Count() == 1 }, spec.MaxRounds)
	if err != nil {
		return rec, err
	}
	rec.Rounds = rounds
	rec.Converged = ok
	rec.Runner = drv.Kind.String()
	rec.RunnerReason = drv.Reason
	rec.Interactions = drv.Interactions()
	rec.Counts = map[string]int64{"L": tl.Count()}
	return rec, nil
}

// gs18Hints pins GS18 to the dense kernel: its live species count grows
// with n, which makes the counted kernels' per-firing cost degenerate.
var gs18Hints = expt.RunnerHints{StateRich: true}

func normalizeCounted(defaultRounds float64) func(*expt.JobSpec) error {
	return func(spec *expt.JobSpec) error {
		if spec.MaxIters != 0 {
			return fmt.Errorf("max_iters applies to framework protocols only; use max_rounds for %q", spec.Protocol)
		}
		if spec.MaxRounds == 0 {
			spec.MaxRounds = defaultRounds
		}
		return nil
	}
}

// frameworkStates computes the compiled per-agent state count of a
// framework program. The variable space is fixed by the program text, so
// any legal n gives the same answer; n = 64 keeps the probe cheap.
func frameworkStates(build func() *lang.Program) func(int) uint64 {
	return func(int) uint64 {
		e, err := frame.New(build(), 64, 1)
		if err != nil {
			return 0
		}
		return e.Space.NumStates()
	}
}

func builtins() []*Protocol {
	noGapColours := func(spec *expt.JobSpec) error {
		if spec.Gap != 0 {
			return fmt.Errorf("gap does not apply to %q", spec.Protocol)
		}
		if spec.Colours != 0 {
			return fmt.Errorf("colours does not apply to %q", spec.Protocol)
		}
		return nil
	}
	noColours := func(spec *expt.JobSpec) error {
		if spec.Colours != 0 {
			return fmt.Errorf("colours does not apply to %q", spec.Protocol)
		}
		return nil
	}
	return []*Protocol{
		{
			Name:        "leader",
			Description: "LeaderElection (§3.1): w.h.p. unique leader in O(log² n) rounds",
			Kind:        "framework",
			Params:      []string{"max_iters"},
			States:      frameworkStates(protocols.LeaderElection),
			normalize: func(spec *expt.JobSpec) error {
				if err := noGapColours(spec); err != nil {
					return err
				}
				return normalizeFramework(spec)
			},
			run: runFramework,
		},
		{
			Name:        "leaderexact",
			Description: "LeaderElectionExact (§6.1): always-correct unique leader",
			Kind:        "framework",
			Params:      []string{"max_iters"},
			States:      frameworkStates(protocols.LeaderElectionExact),
			normalize: func(spec *expt.JobSpec) error {
				if err := noGapColours(spec); err != nil {
					return err
				}
				return normalizeFramework(spec)
			},
			run: runFramework,
		},
		{
			Name:        "majority",
			Description: "Majority (§3.2): w.h.p. exact majority for any gap ≥ 1",
			Kind:        "framework",
			Params:      []string{"gap", "max_iters"},
			States:      frameworkStates(func() *lang.Program { return protocols.Majority(2) }),
			normalize: func(spec *expt.JobSpec) error {
				if err := noColours(spec); err != nil {
					return err
				}
				return normalizeFramework(spec)
			},
			run: runFramework,
		},
		{
			Name:        "majorityexact",
			Description: "MajorityExact (§6.2): always-correct exact majority",
			Kind:        "framework",
			Params:      []string{"gap", "max_iters"},
			States:      frameworkStates(func() *lang.Program { return protocols.MajorityExact(2) }),
			normalize: func(spec *expt.JobSpec) error {
				if err := noColours(spec); err != nil {
					return err
				}
				return normalizeFramework(spec)
			},
			run: runFramework,
		},
		{
			Name:        "plurality",
			Description: "Plurality consensus (§1.1): l-colour plurality with O(l²) states",
			Kind:        "framework",
			Params:      []string{"colours", "max_iters"},
			States:      frameworkStates(func() *lang.Program { return protocols.Plurality(3, 2) }),
			normalize: func(spec *expt.JobSpec) error {
				if spec.Gap != 0 {
					return fmt.Errorf("gap does not apply to %q", spec.Protocol)
				}
				if spec.Colours == 0 {
					spec.Colours = 3
				}
				if spec.Colours < 2 {
					return fmt.Errorf("colours must be ≥ 2 (got %d)", spec.Colours)
				}
				if spec.N < (spec.Colours+1)*spec.Colours {
					return fmt.Errorf("n too small for %d colours (need at least %d agents)", spec.Colours, (spec.Colours+1)*spec.Colours)
				}
				return normalizeFramework(spec)
			},
			run: runFramework,
		},
		{
			Name:        "approxmajority",
			Description: "3-state approximate majority [AAE08a] (§1.2 / E11 baseline)",
			Kind:        "counted",
			Params:      []string{"gap", "max_rounds"},
			States:      func(int) uint64 { return baseline.NewApproxMajority().Rules().Space.NumStates() },
			normalize: func(spec *expt.JobSpec) error {
				if err := noColours(spec); err != nil {
					return err
				}
				return normalizeCounted(1e6)(spec)
			},
			run: runApproxMajority,
		},
		{
			Name:        "exactmajority",
			Description: "4-state exact majority [DV12], Θ(n log n) rounds (the E11 load-test workload)",
			Kind:        "counted",
			Params:      []string{"gap", "max_rounds"},
			States:      func(int) uint64 { return baseline.NewExactMajority4().Rules().Space.NumStates() },
			normalize: func(spec *expt.JobSpec) error {
				if err := noColours(spec); err != nil {
					return err
				}
				return normalizeCounted(1e9)(spec)
			},
			run: runExactMajority,
		},
		{
			Name:        "coalescence",
			Description: "folklore coalescence leader election, Θ(n) rounds (E11 baseline)",
			Kind:        "counted",
			Params:      []string{"max_rounds"},
			States:      func(int) uint64 { return baseline.NewCoalescenceLeader().Rules().Space.NumStates() },
			normalize: func(spec *expt.JobSpec) error {
				if err := noGapColours(spec); err != nil {
					return err
				}
				return normalizeCounted(1e9)(spec)
			},
			run: runCoalescence,
		},
		{
			Name:        "gsexactmajority",
			Description: "cancelling–doubling exact majority [arXiv:2011.07392]: always correct at any gap, O(log n) states",
			Kind:        "counted",
			Params:      []string{"gap", "max_rounds"},
			States:      func(n int) uint64 { return uint64(protocols.NewCDMajority(n).States()) },
			normalize: func(spec *expt.JobSpec) error {
				if err := noColours(spec); err != nil {
					return err
				}
				if spec.Gap == 0 {
					// Exactness holds for any non-zero margin; a dead tie has
					// no majority to report, so default to the adversarial
					// minimum rather than accept an unanswerable input.
					spec.Gap = 1
				}
				return normalizeCounted(1e6)(spec)
			},
			run: runCDMajority,
		},
		{
			Name:        "aagmajority",
			Description: "phase-ratcheted exact majority [arXiv:1704.04947]: space-optimal always-correct majority",
			Kind:        "counted",
			Params:      []string{"gap", "max_rounds"},
			States:      func(n int) uint64 { return uint64(protocols.NewPRMajority(n).States()) },
			normalize: func(spec *expt.JobSpec) error {
				if err := noColours(spec); err != nil {
					return err
				}
				if spec.Gap == 0 {
					spec.Gap = 1
				}
				return normalizeCounted(1e6)(spec)
			},
			run: runPRMajority,
		},
		{
			Name:        "gs18leader",
			Description: "junta-clocked leader election [arXiv:1802.06867]: polylog-time w.h.p., phase-clock driven elimination",
			Kind:        "counted",
			Params:      []string{"max_rounds"},
			States:      func(n int) uint64 { return uint64(protocols.NewGS18Leader(n).States()) },
			Hints:       gs18Hints,
			normalize: func(spec *expt.JobSpec) error {
				if err := noGapColours(spec); err != nil {
					return err
				}
				if spec.N < 16 {
					return fmt.Errorf("gs18leader needs n ≥ 16 (got %d): the junta construction degenerates below that", spec.N)
				}
				if spec.N > 1<<20 {
					return fmt.Errorf("gs18leader caps n at %d (got %d): the state-rich space pins the dense kernel, which holds every agent in memory", 1<<20, spec.N)
				}
				return normalizeCounted(1e5)(spec)
			},
			run: runGS18Leader,
		},
	}
}
