package serve

// Golden capability matrix of the protocol registry. The exact name set and
// the per-entry (kind, params, state count, runner hints, selected tier)
// matrix are part of the service contract: clients discover workloads via
// GET /v1/protocols and pick grid sizes from the states column, and the
// comparative benchmark (popbench -compare) addresses protocols by these
// names. Any intentional registry change must update this table — an
// unintentional one fails here before it reaches the wire.

import (
	"reflect"
	"testing"

	"popkit/internal/baseline"
	"popkit/internal/expt"
	"popkit/internal/protocols"
	"popkit/internal/rules"
)

// goldenEntry is one row of the expected capability matrix, probed at the
// reference population n = 1024.
type goldenEntry struct {
	Kind      string
	Params    []string
	States    uint64
	StateRich bool
	// Runner is the tier the entry's hints select at n = 1024 for counted
	// protocols ("" for framework entries, which bypass runner selection).
	Runner expt.RunnerKind
}

func TestRegistryGolden(t *testing.T) {
	want := map[string]goldenEntry{
		"leader":        {Kind: "framework", Params: []string{"max_iters"}, States: 8},
		"leaderexact":   {Kind: "framework", Params: []string{"max_iters"}, States: 64},
		"majority":      {Kind: "framework", Params: []string{"gap", "max_iters"}, States: 64},
		"majorityexact": {Kind: "framework", Params: []string{"gap", "max_iters"}, States: 256},
		"plurality":     {Kind: "framework", Params: []string{"colours", "max_iters"}, States: 262144},
		"approxmajority": {Kind: "counted", Params: []string{"gap", "max_rounds"},
			States: 4, Runner: expt.RunnerBatch},
		"exactmajority": {Kind: "counted", Params: []string{"gap", "max_rounds"},
			States: 4, Runner: expt.RunnerBatch},
		"coalescence": {Kind: "counted", Params: []string{"max_rounds"},
			States: 2, Runner: expt.RunnerBatch},
		"gsexactmajority": {Kind: "counted", Params: []string{"gap", "max_rounds"},
			States: 28, Runner: expt.RunnerBatch},
		"aagmajority": {Kind: "counted", Params: []string{"gap", "max_rounds"},
			States: 52, Runner: expt.RunnerBatch},
		"gs18leader": {Kind: "counted", Params: []string{"max_rounds"},
			States: 1 << 30, StateRich: true, Runner: expt.RunnerDense},
	}

	r := NewRegistry()
	wantNames := make([]string, 0, len(want))
	for name := range want {
		wantNames = append(wantNames, name)
	}
	if got := r.Names(); len(got) != len(want) {
		t.Fatalf("registry has %d protocols %v, want the %d of %v", len(got), got, len(want), wantNames)
	}

	for name, exp := range want {
		p, ok := r.Lookup(name)
		if !ok {
			t.Errorf("protocol %q missing from registry", name)
			continue
		}
		if p.Kind != exp.Kind {
			t.Errorf("%s: kind %q, want %q", name, p.Kind, exp.Kind)
		}
		if !reflect.DeepEqual(p.Params, exp.Params) {
			t.Errorf("%s: params %v, want %v", name, p.Params, exp.Params)
		}
		if p.Description == "" {
			t.Errorf("%s: empty description", name)
		}
		if p.States == nil {
			t.Errorf("%s: no States function", name)
		} else if got := p.States(1024); got != exp.States {
			t.Errorf("%s: States(1024) = %d, want %d", name, got, exp.States)
		}
		if p.Hints.StateRich != exp.StateRich {
			t.Errorf("%s: StateRich = %v, want %v", name, p.Hints.StateRich, exp.StateRich)
		}
		if exp.Kind == "counted" {
			kind := selectedTier(t, r, p, name)
			if kind != exp.Runner {
				t.Errorf("%s: selected runner %v at n=1024, want %v", name, kind, exp.Runner)
			}
		}
	}
}

// selectedTier normalizes a counted spec at n = 1024 and reports which
// kernel tier the entry's hints select — the driver wiring the run func
// actually uses, probed without running any interactions.
func selectedTier(t *testing.T, r *Registry, p *Protocol, name string) expt.RunnerKind {
	t.Helper()
	spec := expt.JobSpec{Protocol: name, N: 1024, Replicas: 1, Seed: 1}
	if _, err := r.Normalize(&spec, 1<<20, 8); err != nil {
		t.Fatalf("%s: normalize failed: %v", name, err)
	}
	rs := countedRuleset(name, spec.N)
	if rs == nil {
		t.Fatalf("%s: no ruleset probe", name)
	}
	kind, _ := expt.SelectRunnerReasonHints(rs, int64(spec.N), p.Hints)
	return kind
}

// countedRuleset rebuilds the ruleset a counted entry's run func compiles,
// so the tier probe selects over exactly the rules the driver sees.
func countedRuleset(name string, n int) *rules.Ruleset {
	switch name {
	case "approxmajority":
		return baseline.NewApproxMajority().Rules()
	case "exactmajority":
		return baseline.NewExactMajority4().Rules()
	case "coalescence":
		return baseline.NewCoalescenceLeader().Rules()
	case "gsexactmajority":
		return protocols.NewCDMajority(n).Rules()
	case "aagmajority":
		return protocols.NewPRMajority(n).Rules()
	case "gs18leader":
		return protocols.NewGS18Leader(n).Rules()
	}
	return nil
}
