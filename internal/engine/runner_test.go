package engine

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// epidemicProtocol builds the one-way epidemic (I)+(·) → (I)+(I) on a fresh
// space; it is the canonical O(log n)-round process.
func epidemicProtocol() (*Protocol, *bitmask.Space, bitmask.Var) {
	sp := bitmask.NewSpace()
	i := sp.Bool("I")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(i), bitmask.True(), bitmask.Is(i), bitmask.Is(i))
	return CompileProtocol(rs), sp, i
}

func TestRunnerEpidemicCompletes(t *testing.T) {
	p, _, infected := epidemicProtocol()
	const n = 2000
	pop := NewDenseInit(n, func(k int) bitmask.State {
		var s bitmask.State
		if k == 0 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(1))
	tr := r.Track("I", bitmask.Is(infected))
	if tr.Count() != 1 {
		t.Fatalf("initial infected = %d", tr.Count())
	}
	rounds, ok := r.RunUntil(func(*Runner) bool { return tr.Count() == n }, 1, 500)
	if !ok {
		t.Fatalf("epidemic did not complete in 500 rounds (reached %d)", tr.Count())
	}
	// The one-way epidemic takes Θ(log n) rounds; allow a generous window.
	if rounds < math.Log(n)/2 || rounds > 30*math.Log(n) {
		t.Errorf("epidemic rounds = %.1f, expected Θ(ln n) ≈ %.1f", rounds, math.Log(n))
	}
}

func TestTrackerMatchesScan(t *testing.T) {
	p, _, infected := epidemicProtocol()
	const n = 500
	pop := NewDenseInit(n, func(k int) bitmask.State {
		var s bitmask.State
		if k%10 == 0 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(2))
	tr := r.Track("I", bitmask.Is(infected))
	g := bitmask.Compile(bitmask.Is(infected))
	for step := 0; step < 2000; step++ {
		r.Step()
		if step%200 == 0 {
			if scan := pop.Count(g); scan != tr.Count() {
				t.Fatalf("step %d: tracker %d != scan %d", step, tr.Count(), scan)
			}
		}
	}
}

func TestMatchingRoundEpidemic(t *testing.T) {
	p, _, infected := epidemicProtocol()
	const n = 1024
	pop := NewDenseInit(n, func(k int) bitmask.State {
		var s bitmask.State
		if k == 0 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(3))
	tr := r.Track("I", bitmask.Is(infected))
	for round := 0; round < 400 && tr.Count() < n; round++ {
		r.MatchingRound()
	}
	if tr.Count() != n {
		t.Fatalf("matching-scheduler epidemic incomplete: %d/%d", tr.Count(), n)
	}
	// Under a matching scheduler, infections at most double per round, so
	// at least log2(n) rounds must have elapsed.
	if r.Rounds() < math.Log2(n) {
		t.Errorf("epidemic finished in %.1f rounds, impossible under matchings (< log2 n = %.1f)",
			r.Rounds(), math.Log2(n))
	}
}

func TestMatchingRoundOddPopulation(t *testing.T) {
	p, _, infected := epidemicProtocol()
	pop := NewDenseInit(7, func(k int) bitmask.State {
		var s bitmask.State
		if k < 3 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(4))
	r.MatchingRound() // must not panic with an unpaired agent
	if r.Interactions != 7 {
		t.Errorf("Interactions = %d, want 7 (one round)", r.Interactions)
	}
}

func TestRunnerCountsInteractionsIncludingMisses(t *testing.T) {
	p, _, _ := epidemicProtocol()
	// Nobody infected: the rule never matches, but steps still count.
	pop := NewDense(10)
	r := NewRunner(p, pop, NewRNG(5))
	r.RunRounds(3)
	if r.Interactions != 30 {
		t.Errorf("Interactions = %d, want 30", r.Interactions)
	}
	if r.Rounds() != 3 {
		t.Errorf("Rounds = %v, want 3", r.Rounds())
	}
}

func TestApplyAllAndResync(t *testing.T) {
	p, sp, infected := epidemicProtocol()
	pop := NewDense(100)
	r := NewRunner(p, pop, NewRNG(6))
	tr := r.Track("I", bitmask.Is(infected))
	n := pop.ApplyAll(bitmask.TrueGuard(), bitmask.SetVar(infected))
	if n != 100 {
		t.Fatalf("ApplyAll touched %d agents", n)
	}
	if tr.Count() != 0 {
		t.Fatal("tracker updated without resync — test premise broken")
	}
	r.ResyncTrackers()
	if tr.Count() != 100 {
		t.Errorf("after resync tracker = %d, want 100", tr.Count())
	}
	_ = sp
}

func TestRunUntilTimeout(t *testing.T) {
	p, _, infected := epidemicProtocol()
	pop := NewDense(50) // nobody infected; epidemic can never start
	r := NewRunner(p, pop, NewRNG(7))
	tr := r.Track("I", bitmask.Is(infected))
	rounds, ok := r.RunUntil(func(*Runner) bool { return tr.Count() > 0 }, 1, 20)
	if ok {
		t.Error("condition reported met in a dead population")
	}
	if rounds < 20 {
		t.Errorf("stopped after %.1f rounds, want ≥ 20", rounds)
	}
}

func TestReachableStates(t *testing.T) {
	sp := bitmask.NewSpace()
	l := sp.Bool("L")
	rs := rules.NewRuleset(sp)
	// Classic coalescing leader election: (L)+(L) → (L)+(¬L).
	rs.Add(bitmask.Is(l), bitmask.Is(l), bitmask.Is(l), bitmask.IsNot(l))
	p := CompileProtocol(rs)
	leader := l.Set(bitmask.State{}, true)
	states, ok := p.ReachableStates([]bitmask.State{leader}, 100)
	if !ok {
		t.Fatal("closure exceeded limit")
	}
	if len(states) != 2 {
		t.Errorf("reachable states = %d, want 2 (L and follower)", len(states))
	}
	// The limit is respected.
	if _, ok := p.ReachableStates([]bitmask.State{leader}, 1); ok {
		t.Error("limit of 1 not enforced")
	}
}

func TestNewDensePanicsOnTinyPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(1) did not panic")
		}
	}()
	NewDense(1)
}

func TestDenseHistogram(t *testing.T) {
	_, _, infected := epidemicProtocol()
	pop := NewDenseInit(10, func(k int) bitmask.State {
		var s bitmask.State
		if k < 4 {
			s = infected.Set(s, true)
		}
		return s
	})
	h := pop.Histogram()
	if len(h) != 2 {
		t.Fatalf("histogram has %d states, want 2", len(h))
	}
	inf := infected.Set(bitmask.State{}, true)
	if h[inf] != 4 || h[bitmask.State{}] != 6 {
		t.Errorf("histogram = %v", h)
	}
}
