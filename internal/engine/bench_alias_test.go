package engine

import (
	"testing"

	"popkit/internal/bitmask"
)

// BenchmarkAliasSample measures one weighted species draw through the
// Fenwick prefix-sum sampler at 64 occupied species with skewed counts —
// the sampler that replaced the historical linear scan over the species
// table. The tree is built lazily on the first draw and maintained
// incrementally afterwards, so steady-state draws are what this measures.
func BenchmarkAliasSample(b *testing.B) {
	counts := make(map[bitmask.State]int64, 64)
	for i := 0; i < 64; i++ {
		counts[bitmask.State{Lo: uint64(i + 1)}] = int64(1 + i*i)
	}
	pop := NewCounted(counts)
	rng := NewRNG(7)
	var sink bitmask.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = pop.sample(rng, false, bitmask.State{})
	}
	_ = sink
}
