package engine

import (
	"testing"

	"popkit/internal/bitmask"
)

// benchSamplePop builds the shared sampler workload: 64 occupied species
// with skewed counts.
func benchSamplePop() *Counted {
	counts := make(map[bitmask.State]int64, 64)
	for i := 0; i < 64; i++ {
		counts[bitmask.State{Lo: uint64(i + 1)}] = int64(1 + i*i)
	}
	return NewCounted(counts)
}

// BenchmarkFenwickSample measures one weighted species draw through the
// Fenwick prefix-sum sampler — the stream-compatible sampler CountRunner
// draws from, O(log S) per draw. The tree is built lazily on the first draw
// and maintained incrementally afterwards, so steady-state draws are what
// this measures. Run together with BenchmarkAliasSample to compare the two
// samplers on the identical population.
func BenchmarkFenwickSample(b *testing.B) {
	pop := benchSamplePop()
	rng := NewRNG(7)
	var sink bitmask.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = pop.sample(rng, false, bitmask.State{})
	}
	_ = sink
}

// BenchmarkAliasSample measures the same draw through the Walker alias
// table — O(1) per draw after an O(S) build, the sampler the aggregate
// runner's per-agent composition path uses. Counts are static here, so the
// lazy build amortizes to nothing and the steady-state two-draw lookup is
// what this measures.
func BenchmarkAliasSample(b *testing.B) {
	pop := benchSamplePop()
	rng := NewRNG(7)
	var sink int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = pop.sampleSlotAlias(rng)
	}
	_ = sink
}
