package engine

import (
	"popkit/internal/bitmask"
)

// Dense is a population holding one explicit state per agent. It supports
// both scheduler models exactly and scales to ~10^7 agents.
type Dense struct {
	agents []bitmask.State
	perm   []int32 // scratch for random matchings, allocated lazily
}

// NewDense returns a population of n agents, all in the zero state.
func NewDense(n int) *Dense {
	if n < 2 {
		panic("engine: population needs at least 2 agents")
	}
	return &Dense{agents: make([]bitmask.State, n)}
}

// NewDenseInit returns a population of n agents where agent i starts in
// init(i).
func NewDenseInit(n int, init func(i int) bitmask.State) *Dense {
	d := NewDense(n)
	for i := range d.agents {
		d.agents[i] = init(i)
	}
	return d
}

// N returns the population size.
func (d *Dense) N() int { return len(d.agents) }

// Agent returns the state of agent i.
func (d *Dense) Agent(i int) bitmask.State { return d.agents[i] }

// SetAgent overwrites the state of agent i (initialization only; scheduler
// trackers are not adjusted).
func (d *Dense) SetAgent(i int, s bitmask.State) { d.agents[i] = s }

// Count returns the number of agents matching the guard (linear scan).
func (d *Dense) Count(g bitmask.Guard) int {
	c := 0
	for _, s := range d.agents {
		if g.Match(s) {
			c++
		}
	}
	return c
}

// CountFormula counts agents satisfying the formula.
func (d *Dense) CountFormula(f bitmask.Formula) int {
	return d.Count(bitmask.Compile(f))
}

// ForEach visits every agent state.
func (d *Dense) ForEach(fn func(i int, s bitmask.State)) {
	for i, s := range d.agents {
		fn(i, s)
	}
}

// Histogram returns the multiset of states as a count map.
func (d *Dense) Histogram() map[bitmask.State]int64 {
	h := make(map[bitmask.State]int64, 16)
	d.HistogramInto(h)
	return h
}

// HistogramInto clears dst and fills it with the multiset of states.
// Trajectory collectors that snapshot the population every few rounds use
// it to reuse one map across the whole sweep instead of allocating per
// sample.
func (d *Dense) HistogramInto(dst map[bitmask.State]int64) {
	clear(dst)
	for _, s := range d.agents {
		dst[s]++
	}
}

// ApplyAll applies the update to every agent matching the guard and returns
// how many were updated. This is the framework executor's bulk-assignment
// primitive; it bypasses interaction scheduling.
func (d *Dense) ApplyAll(g bitmask.Guard, u bitmask.Update) int {
	c := 0
	for i, s := range d.agents {
		if g.Match(s) {
			d.agents[i] = u.Apply(s)
			c++
		}
	}
	return c
}
