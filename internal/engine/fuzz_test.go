package engine

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// Fuzz invariants: whatever protocol, initial counts, seed, and step budget
// the fuzzer picks, every runner must conserve the total population, keep
// every species count non-negative, and keep the incremental match tallies
// and tracker counts equal to a from-scratch recomputation.

// fuzzProtocol builds one of three fixed protocol shapes on a fresh
// two-variable space, returning the compiled protocol, the three seed
// species, and a formula worth tracking.
func fuzzProtocol(pick uint8) (*Protocol, [3]bitmask.State, bitmask.Formula) {
	sp := bitmask.NewSpace()
	va, vb := sp.Bool("A"), sp.Bool("B")
	rs := rules.NewRuleset(sp)
	a, b := bitmask.Is(va), bitmask.Is(vb)
	na, nb := bitmask.IsNot(va), bitmask.IsNot(vb)
	blank := bitmask.And(na, nb)
	switch pick {
	case 0:
		// 3-state approximate majority.
		rs.Add(a, b, bitmask.True(), bitmask.And(na, nb))
		rs.Add(b, a, bitmask.True(), bitmask.And(na, nb))
		rs.Add(a, blank, bitmask.True(), bitmask.And(a, nb))
		rs.Add(b, blank, bitmask.True(), bitmask.And(b, na))
	case 1:
		// 4-state exact majority: A = opinion bit, B = strength bit.
		sA := bitmask.And(a, b)
		sB := bitmask.And(na, b)
		wA := bitmask.And(a, nb)
		wB := bitmask.And(na, nb)
		rs.Add(sA, sB, nb, nb)
		rs.Add(sA, wB, bitmask.True(), a)
		rs.Add(sB, wA, bitmask.True(), na)
	default:
		// Coalescence on A plus an epidemic on B.
		rs.Add(a, a, a, na)
		rs.Add(b, nb, b, b)
	}
	zero := bitmask.State{}
	species := [3]bitmask.State{va.Set(vb.Set(zero, true), true), vb.Set(zero, true), zero}
	return CompileProtocol(rs), species, bitmask.Is(va)
}

// checkCounted verifies population conservation and non-negativity, plus
// the incremental tallies and trackers against a full recomputation.
func checkCounted(t *testing.T, label string, pop *Counted, ix *matchIndex, tr *CountTracker, want int64) {
	t.Helper()
	var sum int64
	pop.ForEach(func(s bitmask.State, k int64) {
		if k < 0 {
			t.Fatalf("%s: species %v has negative count %d", label, s, k)
		}
		sum += k
	})
	if sum != want || pop.N64() != want {
		t.Fatalf("%s: population not conserved: histogram %d, N %d, want %d", label, sum, pop.N64(), want)
	}
	m1 := append([]int64(nil), ix.m1...)
	m2 := append([]int64(nil), ix.m2...)
	m12 := append([]int64(nil), ix.m12...)
	occ1 := append([]int64(nil), ix.occ1...)
	occ2 := append([]int64(nil), ix.occ2...)
	trCount := tr.Count()
	ix.resync()
	for i := range m1 {
		if m1[i] != ix.m1[i] || m2[i] != ix.m2[i] || m12[i] != ix.m12[i] {
			t.Fatalf("%s: rule %d incremental tallies (%d,%d,%d) != recomputed (%d,%d,%d)",
				label, i, m1[i], m2[i], m12[i], ix.m1[i], ix.m2[i], ix.m12[i])
		}
		if occ1[i] != ix.occ1[i] || occ2[i] != ix.occ2[i] {
			t.Fatalf("%s: rule %d incremental occupancy (%d,%d) != recomputed (%d,%d)",
				label, i, occ1[i], occ2[i], ix.occ1[i], ix.occ2[i])
		}
	}
	if trCount != tr.Count() {
		t.Fatalf("%s: incremental tracker count %d != recomputed %d", label, trCount, tr.Count())
	}
}

func FuzzRunnerConservation(f *testing.F) {
	f.Add(uint8(0), uint16(5), uint16(7), uint16(3), uint64(1), uint16(200))
	f.Add(uint8(1), uint16(66), uint16(62), uint16(0), uint64(42), uint16(400))
	f.Add(uint8(2), uint16(512), uint16(1), uint16(9), uint64(7), uint16(300))
	f.Add(uint8(1), uint16(2), uint16(0), uint16(0), uint64(99), uint16(50))
	f.Fuzz(func(t *testing.T, pick uint8, ka, kb, kc uint16, seed uint64, steps uint16) {
		proto, species, trackF := fuzzProtocol(pick % 3)
		counts := map[bitmask.State]int64{
			species[0]: int64(ka % 1024),
			species[1]: int64(kb % 1024),
			species[2]: int64(kc % 1024),
		}
		total := counts[species[0]] + counts[species[1]] + counts[species[2]]
		if total < 2 {
			t.Skip("population too small")
		}
		budget := uint64(steps % 512)

		// Leaping CountRunner.
		pop := NewCounted(counts)
		cr := NewCountRunner(proto, pop, NewRNG(seed))
		tr := cr.Track("a", trackF)
		for i := uint64(0); i < budget; i++ {
			if !cr.LeapStep(0) {
				break
			}
		}
		checkCounted(t, "CountRunner/leap", pop, cr.idx, tr, total)

		// Literal-step CountRunner.
		pop = NewCounted(counts)
		cr = NewCountRunner(proto, pop, NewRNG(seed))
		tr = cr.Track("a", trackF)
		for i := uint64(0); i < budget; i++ {
			cr.Step()
		}
		checkCounted(t, "CountRunner/step", pop, cr.idx, tr, total)

		// BatchRunner.
		pop = NewCounted(counts)
		br := NewBatchRunner(proto, pop, NewRNG(seed))
		tr = br.Track("a", trackF)
		br.RunBatch(budget, 0)
		checkCounted(t, "BatchRunner", pop, br.idx, tr, total)
		var fired uint64
		for _, k := range br.Fired {
			fired += k
		}
		if fired > budget {
			t.Fatalf("BatchRunner: fired %d rule firings with budget %d", fired, budget)
		}

		// AggregateRunner, both flavours: default gating (mostly geometric
		// leaps at fuzz-sized populations) and forced run decomposition.
		for _, force := range []bool{false, true} {
			label := "AggregateRunner/leap"
			pop = NewCounted(counts)
			ar := NewAggregateRunner(proto, pop, NewRNG(seed))
			if force {
				label = "AggregateRunner/aggregate"
				ar.MinRunFirings = 0
			}
			tr = ar.Track("a", trackF)
			ar.RunBatch(budget, 0)
			checkCounted(t, label, pop, ar.idx, tr, total)
			var atot uint64
			for _, k := range ar.Fired {
				atot += k
			}
			if atot != ar.FiredTotal {
				t.Fatalf("%s: Fired sums to %d but FiredTotal is %d", label, atot, ar.FiredTotal)
			}
			if ar.FiredTotal > ar.Interactions {
				t.Fatalf("%s: %d firings exceed %d interactions", label, ar.FiredTotal, ar.Interactions)
			}
		}

		// Dense Runner.
		dense := NewDense(int(total))
		i := 0
		for _, s := range species {
			for j := int64(0); j < counts[s]; j++ {
				dense.SetAgent(i, s)
				i++
			}
		}
		dr := NewRunner(proto, dense, NewRNG(seed))
		dtr := dr.Track("a", trackF)
		for i := uint64(0); i < budget; i++ {
			dr.Step()
		}
		var sum int64
		h := dense.Histogram()
		for _, k := range h {
			sum += k
		}
		if sum != total || dense.N() != int(total) {
			t.Fatalf("Runner: population not conserved: %d agents, want %d", sum, total)
		}
		if got, want := int64(dtr.Count()), dense.CountFormula(trackF); got != int64(want) {
			t.Fatalf("Runner: tracker %d != scan %d", got, want)
		}
	})
}
