package engine

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// Protocol is a ruleset compiled for fast scheduling. The scheduler picks a
// rule group uniformly by weight (the paper's "one rule picked uniformly at
// random" convention of §1.3, with a field-indexed family counting as one
// logical rule) and fires the unique rule of the group matching the ordered
// agent pair, if any. Groups whose rules share a common single-cube
// initiator guard structure get an O(1) hash index; others fall back to a
// linear scan.
type Protocol struct {
	Set    *rules.Ruleset
	slots  []int32 // slot → group number
	groups []groupIndex
	// ruleWeight[i] is the weight of rule i's group, used by the counted
	// engine's exact event-rate computation.
	ruleWeight []int
	// ruleG1/ruleG2 flatten the per-rule guards into contiguous arrays —
	// the dispatch table the counted runners' incremental match index
	// walks when memoizing a new state's rule participation.
	ruleG1, ruleG2 []bitmask.Guard
	// ruleWeightF caches float64(ruleWeight) for the event-rate loops;
	// ruleWeightN is ruleWeightF[i]/NumSlots(), the rule-pick probability,
	// pre-divided so the per-leap event-rate loop skips a division. (The
	// quotient is computed once with the same rounding the loop used, so
	// leap lengths stay bit-identical.)
	ruleWeightF []float64
	ruleWeightN []float64
}

type groupIndex struct {
	start, end int32
	// Initiator hash index, valid when every rule's G1 is a single cube
	// and all rules share the same care mask.
	indexed        bool
	careLo, careHi uint64
	buckets        map[[2]uint64][]int32
}

// CompileProtocol prepares a ruleset for simulation. The ruleset must be
// valid (disjoint groups) and non-empty.
func CompileProtocol(rs *rules.Ruleset) *Protocol {
	if err := rs.Validate(); err != nil {
		panic("engine: " + err.Error())
	}
	if rs.Len() == 0 {
		panic("engine: empty ruleset")
	}
	p := &Protocol{Set: rs, ruleWeight: make([]int, len(rs.Rules))}
	p.slots = make([]int32, 0, rs.TotalWeight())
	p.groups = make([]groupIndex, len(rs.Groups))
	for gi, g := range rs.Groups {
		for w := 0; w < g.Weight; w++ {
			p.slots = append(p.slots, int32(gi))
		}
		for i := g.Start; i < g.End; i++ {
			p.ruleWeight[i] = g.Weight
		}
		p.groups[gi] = buildGroupIndex(rs, g)
	}
	p.ruleG1 = make([]bitmask.Guard, len(rs.Rules))
	p.ruleG2 = make([]bitmask.Guard, len(rs.Rules))
	p.ruleWeightF = make([]float64, len(rs.Rules))
	p.ruleWeightN = make([]float64, len(rs.Rules))
	for i := range rs.Rules {
		p.ruleG1[i] = rs.Rules[i].G1
		p.ruleG2[i] = rs.Rules[i].G2
		p.ruleWeightF[i] = float64(p.ruleWeight[i])
		p.ruleWeightN[i] = p.ruleWeightF[i] / float64(p.NumSlots())
	}
	return p
}

func buildGroupIndex(rs *rules.Ruleset, g rules.Group) groupIndex {
	idx := groupIndex{start: int32(g.Start), end: int32(g.End)}
	if g.Ordered || g.End-g.Start < 4 {
		// Ordered groups need in-order scanning; tiny groups scan faster
		// than they hash.
		return idx
	}
	first := rs.Rules[g.Start].G1
	if len(first.Cubes) != 1 {
		return idx
	}
	careLo, careHi := first.Cubes[0].CareLo, first.Cubes[0].CareHi
	for i := g.Start + 1; i < g.End; i++ {
		c := rs.Rules[i].G1.Cubes
		if len(c) != 1 || c[0].CareLo != careLo || c[0].CareHi != careHi {
			return idx
		}
	}
	idx.indexed = true
	idx.careLo, idx.careHi = careLo, careHi
	idx.buckets = make(map[[2]uint64][]int32, g.End-g.Start)
	for i := g.Start; i < g.End; i++ {
		c := rs.Rules[i].G1.Cubes[0]
		key := [2]uint64{c.WantLo, c.WantHi}
		idx.buckets[key] = append(idx.buckets[key], int32(i))
	}
	return idx
}

// NumRules returns the number of distinct rules.
func (p *Protocol) NumRules() int { return len(p.Set.Rules) }

// NumSlots returns the number of scheduler slots (total group weight).
func (p *Protocol) NumSlots() int { return len(p.slots) }

// Rule returns rule i.
func (p *Protocol) Rule(i int) *rules.Rule { return &p.Set.Rules[i] }

// RuleWeight returns the scheduler weight of rule i's group.
func (p *Protocol) RuleWeight(i int) int { return p.ruleWeight[i] }

// PickRule draws a uniform scheduler slot and resolves it against the
// ordered pair (a, b): it returns the matching rule of the picked group, or
// nil if none matches (a non-firing interaction).
func (p *Protocol) PickRule(rng *RNG, a, b bitmask.State) *rules.Rule {
	_, r := p.PickRuleIndexed(rng, a, b)
	return r
}

// PickRuleIndexed is PickRule also reporting the fired rule's index into
// Set.Rules ((-1, nil) for a non-firing interaction), so instrumented
// runners can tally per-rule firings without a pointer-to-index search. It
// consumes exactly the same RNG draws as PickRule.
func (p *Protocol) PickRuleIndexed(rng *RNG, a, b bitmask.State) (int, *rules.Rule) {
	gi := p.slots[rng.Intn(len(p.slots))]
	return p.matchGroup(gi, a, b)
}

// matchGroup finds the unique rule of group gi matching (a, b), or
// (-1, nil).
func (p *Protocol) matchGroup(gi int32, a, b bitmask.State) (int, *rules.Rule) {
	g := &p.groups[gi]
	if g.indexed {
		key := [2]uint64{a.Lo & g.careLo, a.Hi & g.careHi}
		for _, ri := range g.buckets[key] {
			r := &p.Set.Rules[ri]
			if r.G2.Match(b) {
				return int(ri), r
			}
		}
		return -1, nil
	}
	for ri := g.start; ri < g.end; ri++ {
		r := &p.Set.Rules[ri]
		if r.G1.Match(a) && r.G2.Match(b) {
			return int(ri), r
		}
	}
	return -1, nil
}

// GroupTally aggregates per-rule firing counts (indexed by rule, as
// produced by obs.RuleStats or BatchRunner.Fired) into per-group totals
// keyed by group name; unnamed groups key as "group<i>". Extra trailing
// counts are ignored so a tally sized for a different protocol cannot
// corrupt the map.
func (p *Protocol) GroupTally(fired []uint64) map[string]uint64 {
	out := make(map[string]uint64, len(p.Set.Groups))
	for gi, g := range p.Set.Groups {
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("group%d", gi)
		}
		var sum uint64
		for i := g.Start; i < g.End && i < len(fired); i++ {
			sum += fired[i]
		}
		out[name] += sum
	}
	return out
}

// ReachableStates enumerates the set of states reachable from the given
// initial states under the protocol's rules (bounded breadth-first closure;
// gives up and returns ok=false once more than limit states are found).
// Used to report exact automaton sizes for constant-state protocols.
func (p *Protocol) ReachableStates(initial []bitmask.State, limit int) (states []bitmask.State, ok bool) {
	seen := make(map[bitmask.State]bool, len(initial))
	queue := make([]bitmask.State, 0, len(initial))
	push := func(s bitmask.State) bool {
		if !seen[s] {
			if len(seen) >= limit {
				return false
			}
			seen[s] = true
			queue = append(queue, s)
		}
		return true
	}
	for _, s := range initial {
		if !push(s) {
			return nil, false
		}
	}
	// Closure: for every pair of known states and every rule, add the
	// successor states. Pairs include (s, s): two distinct agents can hold
	// the same state.
	for head := 0; head < len(queue); head++ {
		a := queue[head]
		for i := 0; i <= head; i++ {
			b := queue[i]
			for _, pair := range [2][2]bitmask.State{{a, b}, {b, a}} {
				for _, r := range p.Set.Rules {
					if r.Matches(pair[0], pair[1]) {
						na, nb := r.Apply(pair[0], pair[1])
						if !push(na) || !push(nb) {
							return nil, false
						}
					}
				}
			}
		}
	}
	out := make([]bitmask.State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	return out, true
}
