package engine

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/obs"
)

// A Tracker incrementally maintains the number of agents matching a guard,
// so stop conditions do not rescan the population every round.
type Tracker struct {
	Name  string
	guard bitmask.Guard
	count int
}

// Count returns the current number of matching agents.
func (t *Tracker) Count() int { return t.count }

// Runner drives a Dense population under a compiled protocol with the
// asynchronous sequential scheduler (uniform random ordered pairs) or the
// random-matching parallel scheduler. One parallel round is n interactions
// (sequential) or one matching (parallel); Rounds() reports parallel time
// t/n as used throughout the paper.
type Runner struct {
	P   *Protocol
	Pop *Dense
	RNG *RNG

	// Interactions counts scheduler activations, including non-matching
	// picks (the paper's convention counts those as steps too).
	Interactions uint64

	// Stats, when non-nil, tallies per-rule firings (obs.NewRuleStats
	// sized to P.NumRules()). The nil default costs one branch per firing
	// and never touches the RNG stream.
	Stats *obs.RuleStats

	trackers []*Tracker
}

// NewRunner assembles a runner. The population must already be initialized.
func NewRunner(p *Protocol, pop *Dense, rng *RNG) *Runner {
	return &Runner{P: p, Pop: pop, RNG: rng}
}

// Rounds returns elapsed parallel time (interactions / n).
func (r *Runner) Rounds() float64 {
	return float64(r.Interactions) / float64(r.Pop.N())
}

// Track registers a guard for incremental counting and returns its tracker.
// Must be called before stepping (or counts resynced via ResyncTrackers).
func (r *Runner) Track(name string, f bitmask.Formula) *Tracker {
	t := &Tracker{Name: name, guard: bitmask.Compile(f)}
	t.count = r.Pop.Count(t.guard)
	r.trackers = append(r.trackers, t)
	return t
}

// ResyncTrackers recomputes all tracker counts by scanning the population.
// Needed after out-of-band mutations (Dense.SetAgent / ApplyAll).
func (r *Runner) ResyncTrackers() {
	for _, t := range r.trackers {
		t.count = r.Pop.Count(t.guard)
	}
}

// applyTo applies new states to agents i and j, updating trackers.
func (r *Runner) applyTo(i, j int, ni, nj bitmask.State) {
	a := r.Pop.agents
	oi, oj := a[i], a[j]
	if oi == ni && oj == nj {
		return
	}
	a[i], a[j] = ni, nj
	for _, t := range r.trackers {
		if t.guard.Match(oi) {
			t.count--
		}
		if t.guard.Match(oj) {
			t.count--
		}
		if t.guard.Match(ni) {
			t.count++
		}
		if t.guard.Match(nj) {
			t.count++
		}
	}
}

// Step performs one asynchronous interaction: a uniform random ordered pair
// of distinct agents and one uniform rule pick. It reports whether a rule
// fired.
func (r *Runner) Step() bool {
	n := len(r.Pop.agents)
	i := r.RNG.Intn(n)
	j := r.RNG.Intn(n - 1)
	if j >= i {
		j++
	}
	r.Interactions++
	a := r.Pop.agents
	ri, rule := r.P.PickRuleIndexed(r.RNG, a[i], a[j])
	if rule == nil {
		return false
	}
	ni, nj := rule.Apply(a[i], a[j])
	r.applyTo(i, j, ni, nj)
	r.Stats.Fire(ri, 1)
	return true
}

// RunRounds advances the sequential scheduler by k parallel rounds
// (k·n interactions).
func (r *Runner) RunRounds(k float64) {
	steps := uint64(k * float64(r.Pop.N()))
	for s := uint64(0); s < steps; s++ {
		r.Step()
	}
}

// MatchingRound performs one round of the random-matching parallel
// scheduler: a uniform random matching of ⌊n/2⌋ pairs is activated, and
// each pair independently picks one uniform rule. Counts as n interactions
// of parallel time (one round).
func (r *Runner) MatchingRound() {
	n := len(r.Pop.agents)
	perm := r.perm()
	r.RNG.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for k := 0; k+1 < n; k += 2 {
		i, j := int(perm[k]), int(perm[k+1])
		// Orientation of the pair is random via the shuffle.
		a := r.Pop.agents
		if ri, rule := r.P.PickRuleIndexed(r.RNG, a[i], a[j]); rule != nil {
			ni, nj := rule.Apply(a[i], a[j])
			r.applyTo(i, j, ni, nj)
			r.Stats.Fire(ri, 1)
		}
	}
	r.Interactions += uint64(n)
}

func (r *Runner) perm() []int32 {
	if r.Pop.perm == nil {
		n := len(r.Pop.agents)
		r.Pop.perm = make([]int32, n)
		for i := range r.Pop.perm {
			r.Pop.perm[i] = int32(i)
		}
	}
	return r.Pop.perm
}

// StopCondition is evaluated between rounds; returning true stops the run.
type StopCondition func(r *Runner) bool

// RunUntil advances the sequential scheduler until the condition holds
// (checked every checkEvery rounds) or maxRounds elapses. It returns the
// parallel time consumed in this call and whether the condition was met.
func (r *Runner) RunUntil(cond StopCondition, checkEvery, maxRounds float64) (rounds float64, ok bool) {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	start := r.Rounds()
	for {
		if cond(r) {
			return r.Rounds() - start, true
		}
		if r.Rounds()-start >= maxRounds {
			return r.Rounds() - start, false
		}
		r.RunRounds(checkEvery)
	}
}

// Snapshot renders tracker state for debugging.
func (r *Runner) Snapshot() string {
	s := fmt.Sprintf("t=%.1f rounds", r.Rounds())
	for _, tr := range r.trackers {
		s += fmt.Sprintf(" %s=%d", tr.Name, tr.count)
	}
	return s
}

// StepPair performs one scheduler activation on the chosen ordered pair
// (i, j): one uniform rule pick, fired if matching. It lets tests drive
// adversarial schedulers — the paper's guaranteed-behavior property
// (Definition 2.1) must hold under *any* interaction sequence, including
// ones that isolate subsets of agents indefinitely.
func (r *Runner) StepPair(i, j int) bool {
	if i == j {
		panic("engine: an agent cannot interact with itself")
	}
	r.Interactions++
	a := r.Pop.agents
	ri, rule := r.P.PickRuleIndexed(r.RNG, a[i], a[j])
	if rule == nil {
		return false
	}
	ni, nj := rule.Apply(a[i], a[j])
	r.applyTo(i, j, ni, nj)
	r.Stats.Fire(ri, 1)
	return true
}

// RunIsolated advances k interactions restricted to the agents whose
// indices lie in live (which must contain at least two indices): a simple
// adversarial scheduler that starves everyone else.
func (r *Runner) RunIsolated(live []int, k int) {
	if len(live) < 2 {
		panic("engine: isolation set needs at least two agents")
	}
	for s := 0; s < k; s++ {
		pi := r.RNG.Intn(len(live))
		pj := r.RNG.Intn(len(live) - 1)
		if pj >= pi {
			pj++
		}
		r.StepPair(live[pi], live[pj])
	}
}
