package engine

import (
	"sort"

	"popkit/internal/bitmask"
)

// Counted is a population represented as a species vector: a count per
// occupied state. It is exact (it simulates the same Markov chain as Dense
// under the sequential scheduler) but scales to populations of 10^9 agents
// for protocols whose occupied-state count stays small — all the paper's
// constant-state protocols. Its runners can also leap over stretches of
// non-reactive interactions in O(1) per stretch, which makes slow baselines
// such as the 4-state exact-majority protocol (Θ(n log n) rounds) feasible
// to measure.
//
// Internally the species table is a slot array: keys[i] is the state of
// slot i and cnt[i] its count, with index mapping states back to slots.
// Slot order is the sampling order (sorted at construction, then insertion
// order), so the Fenwick-tree sampler below reproduces byte-for-byte the
// RNG stream of the original linear-scan sampler. Slots are only remapped
// by compact(), which bumps compactGen so runners can invalidate their
// slot-keyed caches; appends keep existing slot ids stable.
type Counted struct {
	n     int64
	keys  []bitmask.State         // slot → state
	cnt   []int64                 // slot → count (may be 0 until compacted)
	index map[bitmask.State]int32 // state → slot
	dirty bool                    // some slot has a zero count

	// compactGen is bumped whenever compact() remaps slots. Runners key
	// their per-slot caches on it.
	compactGen uint64

	// fen is a Fenwick (binary indexed) tree over slot counts, used by
	// sample for O(log #species) draws. It is rebuilt lazily — only when
	// the occupancy set changed since the last draw (fenOK false) — and
	// maintained incrementally by addSlot otherwise.
	fen   []int64
	fenOK bool

	// alias is a Walker alias table over slot counts (see alias.go),
	// rebuilt lazily by sampleSlotAlias when any count changed since the
	// last build (aliasOK false). It serves draw-heavy static-weight
	// consumers — the aggregate runner's per-agent composition path — at
	// O(1) per draw, where the Fenwick tree would pay O(log S).
	alias   aliasTable
	aliasOK bool

	// hook, when set, receives every count mutation (slot, state, delta).
	// The simulation runners use it to maintain per-rule match tallies and
	// tracker counts incrementally instead of rescanning the table.
	hook func(slot int32, s bitmask.State, delta int64)
}

// NewCounted builds a counted population from a state→count table.
func NewCounted(counts map[bitmask.State]int64) *Counted {
	c := &Counted{
		index: make(map[bitmask.State]int32, len(counts)),
	}
	for s, k := range counts {
		if k < 0 {
			panic("engine: negative species count")
		}
		if k == 0 {
			continue
		}
		c.keys = append(c.keys, s)
		c.n += k
	}
	if c.n < 2 {
		panic("engine: population needs at least 2 agents")
	}
	c.sortKeys()
	c.cnt = make([]int64, len(c.keys))
	for i, s := range c.keys {
		c.index[s] = int32(i)
		c.cnt[i] = counts[s]
	}
	return c
}

func (c *Counted) sortKeys() {
	sort.Slice(c.keys, func(i, j int) bool {
		a, b := c.keys[i], c.keys[j]
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
}

// N returns the population size.
func (c *Counted) N() int { return int(c.n) }

// N64 returns the population size as int64 (counted populations may exceed
// the range convenient for int arithmetic on 32-bit platforms).
func (c *Counted) N64() int64 { return c.n }

// NumSpecies returns the number of occupied states.
func (c *Counted) NumSpecies() int {
	c.compact()
	return len(c.keys)
}

// CountState returns the number of agents in exactly state s.
func (c *Counted) CountState(s bitmask.State) int64 {
	if i, ok := c.index[s]; ok {
		return c.cnt[i]
	}
	return 0
}

// Count returns the number of agents matching the guard.
func (c *Counted) Count(g bitmask.Guard) int64 {
	var total int64
	for i, s := range c.keys {
		if c.cnt[i] > 0 && g.Match(s) {
			total += c.cnt[i]
		}
	}
	return total
}

// CountFormula counts agents satisfying the formula.
func (c *Counted) CountFormula(f bitmask.Formula) int64 {
	return c.Count(bitmask.Compile(f))
}

// ForEach visits every occupied state with its count.
func (c *Counted) ForEach(fn func(s bitmask.State, count int64)) {
	for i, s := range c.keys {
		if c.cnt[i] > 0 {
			fn(s, c.cnt[i])
		}
	}
}

// Histogram returns a copy of the species table.
func (c *Counted) Histogram() map[bitmask.State]int64 {
	out := make(map[bitmask.State]int64, len(c.keys))
	c.HistogramInto(out)
	return out
}

// HistogramInto clears dst and fills it with the species table. Trajectory
// collectors that snapshot the population every few rounds use it to reuse
// one map across the whole sweep instead of allocating per sample.
func (c *Counted) HistogramInto(dst map[bitmask.State]int64) {
	clear(dst)
	for i, s := range c.keys {
		if c.cnt[i] > 0 {
			dst[s] = c.cnt[i]
		}
	}
}

// NumSlots returns the size of the slot table including not-yet-compacted
// zero-count entries. Runners size their per-slot caches from it.
func (c *Counted) numSlots() int { return len(c.keys) }

// compact drops zero-count slots when the table has grown stale. Slot ids
// are remapped, so compactGen is bumped and the sampler invalidated.
func (c *Counted) compact() {
	if !c.dirty {
		return
	}
	keys := c.keys[:0]
	cnt := c.cnt[:0]
	for i, s := range c.keys {
		if c.cnt[i] > 0 {
			keys = append(keys, s)
			cnt = append(cnt, c.cnt[i])
		} else {
			delete(c.index, s)
		}
	}
	c.keys, c.cnt = keys, cnt
	for i, s := range c.keys {
		c.index[s] = int32(i)
	}
	c.dirty = false
	c.compactGen++
	c.fenOK = false
	c.aliasOK = false
}

// slotFor returns the slot of state s, registering a fresh slot if the
// state has never been occupied. Appends keep existing slot ids valid.
func (c *Counted) slotFor(s bitmask.State) int32 {
	if i, ok := c.index[s]; ok {
		return i
	}
	i := int32(len(c.keys))
	c.keys = append(c.keys, s)
	c.cnt = append(c.cnt, 0)
	c.index[s] = i
	c.fenOK = false
	c.aliasOK = false
	return i
}

// add adjusts the count of state s by delta, registering new states.
func (c *Counted) add(s bitmask.State, delta int64) {
	c.addSlot(c.slotFor(s), delta)
}

// addSlot is the hot-path variant of add for callers that already know the
// slot. It keeps the Fenwick sampler and the attached runner's incremental
// tallies in sync.
func (c *Counted) addSlot(slot int32, delta int64) {
	now := c.cnt[slot] + delta
	if now < 0 {
		panic("engine: species count went negative")
	}
	c.cnt[slot] = now
	if now == 0 {
		c.dirty = true
	}
	if c.fenOK {
		c.fenAdd(slot, delta)
	}
	c.aliasOK = false
	if c.hook != nil {
		c.hook(slot, c.keys[slot], delta)
	}
}

// attachHook registers the mutation listener of a runner. A population can
// drive at most one incremental runner at a time: a second attachment would
// silently desynchronize the first runner's tallies, so it panics instead.
func (c *Counted) attachHook(h func(slot int32, s bitmask.State, delta int64)) {
	if c.hook != nil {
		panic("engine: population already driven by another runner")
	}
	c.hook = h
}

// Fenwick tree over slot counts: fen is 1-based, node i covering the slot
// range (i − lowbit(i), i].

func (c *Counted) rebuildFen() {
	if cap(c.fen) < len(c.cnt)+1 {
		c.fen = make([]int64, len(c.cnt)+1)
	} else {
		c.fen = c.fen[:len(c.cnt)+1]
		clear(c.fen)
	}
	for i, k := range c.cnt {
		j := i + 1
		c.fen[j] += k
		if p := j + j&-j; p < len(c.fen) {
			c.fen[p] += c.fen[j]
		}
	}
	c.fenOK = true
}

func (c *Counted) fenAdd(slot int32, delta int64) {
	for i := int(slot) + 1; i < len(c.fen); i += i & -i {
		c.fen[i] += delta
	}
}

// fenSearch returns the first slot whose cumulative count exceeds r — the
// same slot the original linear scan over keys would return — in
// O(log #species).
func (c *Counted) fenSearch(r int64) int32 {
	idx := 0
	half := 1
	for half < len(c.fen)-1 {
		half <<= 1
	}
	for ; half > 0; half >>= 1 {
		if next := idx + half; next < len(c.fen) && c.fen[next] <= r {
			idx = next
			r -= c.fen[next]
		}
	}
	if idx >= len(c.cnt) {
		return -1
	}
	return int32(idx)
}

// sampleSlotAlias returns a slot drawn proportionally to counts through
// the lazily rebuilt alias table. Unlike sample it returns the slot (the
// aggregate runner works in slot space) and makes no stream-compatibility
// promise: it costs two RNG draws per sample regardless of the species
// count, with the O(S) table build amortized over every draw between count
// mutations.
func (c *Counted) sampleSlotAlias(rng *RNG) int32 {
	if !c.aliasOK {
		c.alias.build(c.cnt)
		c.aliasOK = true
	}
	return c.alias.sample(rng)
}

// sample returns a state drawn proportionally to counts, excluding one
// agent of state excl if exclOne is true. The draw consumes exactly one
// Int63n and maps it to the same species as the historical linear scan, so
// RNG streams are unchanged by the prefix-sum sampler.
func (c *Counted) sample(rng *RNG, exclOne bool, excl bitmask.State) bitmask.State {
	total := c.n
	exclSlot := int32(-1)
	if exclOne {
		total--
		if i, ok := c.index[excl]; ok {
			exclSlot = i
		}
	}
	if !c.fenOK {
		c.rebuildFen()
	}
	if exclSlot >= 0 {
		c.fenAdd(exclSlot, -1)
	}
	r := rng.Int63n(total)
	slot := c.fenSearch(r)
	if exclSlot >= 0 {
		c.fenAdd(exclSlot, 1)
	}
	if slot < 0 {
		panic("engine: sample walked off the species table")
	}
	return c.keys[slot]
}
