package engine

import (
	"sort"

	"popkit/internal/bitmask"
)

// Counted is a population represented as a species vector: a count per
// occupied state. It is exact (it simulates the same Markov chain as Dense
// under the sequential scheduler) but scales to populations of 10^9 agents
// for protocols whose occupied-state count stays small — all the paper's
// constant-state protocols. Its runner can also leap over stretches of
// non-reactive interactions in O(1) per stretch, which makes slow baselines
// such as the 4-state exact-majority protocol (Θ(n log n) rounds) feasible
// to measure.
type Counted struct {
	n      int64
	counts map[bitmask.State]int64
	keys   []bitmask.State        // occupied states, compacted lazily
	inKeys map[bitmask.State]bool // membership of keys (counts may be 0)
	dirty  bool                   // keys may contain zero-count entries
}

// NewCounted builds a counted population from a state→count table.
func NewCounted(counts map[bitmask.State]int64) *Counted {
	c := &Counted{
		counts: make(map[bitmask.State]int64, len(counts)),
		inKeys: make(map[bitmask.State]bool, len(counts)),
	}
	for s, k := range counts {
		if k < 0 {
			panic("engine: negative species count")
		}
		if k == 0 {
			continue
		}
		c.counts[s] = k
		c.keys = append(c.keys, s)
		c.inKeys[s] = true
		c.n += k
	}
	if c.n < 2 {
		panic("engine: population needs at least 2 agents")
	}
	c.sortKeys()
	return c
}

func (c *Counted) sortKeys() {
	sort.Slice(c.keys, func(i, j int) bool {
		a, b := c.keys[i], c.keys[j]
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
}

// N returns the population size.
func (c *Counted) N() int { return int(c.n) }

// N64 returns the population size as int64 (counted populations may exceed
// the range convenient for int arithmetic on 32-bit platforms).
func (c *Counted) N64() int64 { return c.n }

// NumSpecies returns the number of occupied states.
func (c *Counted) NumSpecies() int {
	c.compact()
	return len(c.keys)
}

// CountState returns the number of agents in exactly state s.
func (c *Counted) CountState(s bitmask.State) int64 { return c.counts[s] }

// Count returns the number of agents matching the guard.
func (c *Counted) Count(g bitmask.Guard) int64 {
	c.compact()
	var total int64
	for _, s := range c.keys {
		if g.Match(s) {
			total += c.counts[s]
		}
	}
	return total
}

// CountFormula counts agents satisfying the formula.
func (c *Counted) CountFormula(f bitmask.Formula) int64 {
	return c.Count(bitmask.Compile(f))
}

// ForEach visits every occupied state with its count.
func (c *Counted) ForEach(fn func(s bitmask.State, count int64)) {
	c.compact()
	for _, s := range c.keys {
		fn(s, c.counts[s])
	}
}

// Histogram returns a copy of the species table.
func (c *Counted) Histogram() map[bitmask.State]int64 {
	c.compact()
	out := make(map[bitmask.State]int64, len(c.keys))
	for _, s := range c.keys {
		out[s] = c.counts[s]
	}
	return out
}

// compact drops zero-count keys when the list has grown stale.
func (c *Counted) compact() {
	if !c.dirty {
		return
	}
	kept := c.keys[:0]
	for _, s := range c.keys {
		if c.counts[s] > 0 {
			kept = append(kept, s)
		} else {
			delete(c.counts, s)
			delete(c.inKeys, s)
		}
	}
	c.keys = kept
	c.dirty = false
}

// add adjusts the count of state s by delta, registering new states.
func (c *Counted) add(s bitmask.State, delta int64) {
	old := c.counts[s]
	now := old + delta
	if now < 0 {
		panic("engine: species count went negative")
	}
	c.counts[s] = now
	if now > 0 && !c.inKeys[s] {
		c.keys = append(c.keys, s)
		c.inKeys[s] = true
	}
	if now == 0 {
		c.dirty = true
	}
}

// sample returns a state drawn proportionally to counts, excluding one
// agent of state excl if exclOne is true.
func (c *Counted) sample(rng *RNG, exclOne bool, excl bitmask.State) bitmask.State {
	total := c.n
	if exclOne {
		total--
	}
	r := rng.Int63n(total)
	for _, s := range c.keys {
		k := c.counts[s]
		if exclOne && s == excl {
			k--
		}
		if r < k {
			return s
		}
		r -= k
	}
	panic("engine: sample walked off the species table")
}
