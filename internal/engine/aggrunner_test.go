package engine

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// aggEpidemicProtocol is a one-rule spreading protocol: infected +
// susceptible → two infected. Unlike runner_test's epidemicProtocol its
// responder guard requires a susceptible, so the saturated population is
// silent — which is what the silence and accounting tests below need.
func aggEpidemicProtocol() (*Protocol, bitmask.State, bitmask.State, bitmask.Formula) {
	sp := bitmask.NewSpace()
	v := sp.Bool("I")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(v), bitmask.IsNot(v), bitmask.Is(v), bitmask.Is(v))
	zero := bitmask.State{}
	return CompileProtocol(rs), v.Set(zero, true), zero, bitmask.Is(v)
}

func TestAggregateRunnerSilence(t *testing.T) {
	proto, infected, _, _ := aggEpidemicProtocol()
	pop := NewCounted(map[bitmask.State]int64{infected: 512})
	r := NewAggregateRunner(proto, pop, NewRNG(1))
	r.MinRunFirings = 0
	if r.LeapStep(0) {
		t.Fatal("fully infected epidemic should be silent")
	}
	if r.Interactions != 0 || r.FiredTotal != 0 {
		t.Fatalf("silent step advanced: %d interactions, %d firings", r.Interactions, r.FiredTotal)
	}
}

// TestAggregateRunnerHorizon checks exact horizon truncation: the runner
// must land on the interaction bound exactly, never past it, under both
// step flavours.
func TestAggregateRunnerHorizon(t *testing.T) {
	proto, infected, healthy, _ := aggEpidemicProtocol()
	for _, force := range []bool{false, true} {
		for _, horizon := range []uint64{1, 7, 100, 1000} {
			pop := NewCounted(map[bitmask.State]int64{infected: 8, healthy: 504})
			r := NewAggregateRunner(proto, pop, NewRNG(7*horizon+1))
			if force {
				r.MinRunFirings = 0
			}
			for i := 0; i < 10000; i++ {
				if !r.LeapStep(horizon) || r.Interactions >= horizon {
					break
				}
			}
			if r.Interactions > horizon {
				t.Fatalf("force=%v horizon=%d: overshot to %d interactions", force, horizon, r.Interactions)
			}
			if r.Interactions != horizon {
				t.Fatalf("force=%v horizon=%d: stalled at %d interactions", force, horizon, r.Interactions)
			}
			if r.FiredTotal > r.Interactions {
				t.Fatalf("force=%v horizon=%d: %d firings in %d interactions", force, horizon, r.FiredTotal, r.Interactions)
			}
		}
	}
}

// TestAggregateRunnerEpidemicCompletes drives the epidemic to saturation
// through the forced aggregate path and checks the terminal configuration,
// per-rule accounting, and tracker agreement.
func TestAggregateRunnerEpidemicCompletes(t *testing.T) {
	proto, infected, healthy, isI := aggEpidemicProtocol()
	const n = 4096
	pop := NewCounted(map[bitmask.State]int64{infected: 1, healthy: n - 1})
	r := NewAggregateRunner(proto, pop, NewRNG(99))
	r.MinRunFirings = 0
	tr := r.Track("i", isI)
	rounds, ok := r.RunUntil(func(*AggregateRunner) bool { return tr.Count() == n }, 10000)
	if !ok {
		t.Fatal("epidemic did not saturate")
	}
	if got := pop.CountState(infected); got != n {
		t.Fatalf("terminal infected count %d, want %d", got, n)
	}
	// Every firing infects exactly one agent: n−1 firings, all of rule 0.
	if r.FiredTotal != n-1 || r.Fired[0] != n-1 {
		t.Fatalf("fired %d total / %d rule-0, want %d", r.FiredTotal, r.Fired[0], n-1)
	}
	if rounds <= 0 {
		t.Fatalf("rounds = %v", rounds)
	}
	// Saturated epidemic is silent.
	if r.LeapStep(0) {
		t.Fatal("saturated epidemic still alive")
	}
}

// TestAggregateRunnerWeightedGroups exercises the conditional binomial
// chain over multiple matching rule groups with unequal weights: two rules
// both matching the same pair type, weights 3:1, must fire in that ratio.
func TestAggregateRunnerWeightedGroups(t *testing.T) {
	sp := bitmask.NewSpace()
	va, vb := sp.Bool("A"), sp.Bool("B")
	rs := rules.NewRuleset(sp)
	zero := bitmask.State{}
	a := bitmask.Is(va)
	// Both rules match (A, A) pairs and toggle B on the responder — the
	// population keeps churning between B-states so neither rule starves.
	rs.AddWeighted(3, a, a, a, bitmask.And(a, bitmask.Is(vb)))
	rs.AddWeighted(1, a, a, a, bitmask.And(a, bitmask.IsNot(vb)))
	proto := CompileProtocol(rs)
	pop := NewCounted(map[bitmask.State]int64{va.Set(zero, true): 2048})
	r := NewAggregateRunner(proto, pop, NewRNG(5))
	r.MinRunFirings = 0
	const horizon = 200000
	for r.Interactions < horizon {
		if !r.LeapStep(horizon) {
			t.Fatal("churning protocol went silent")
		}
	}
	f0, f1 := float64(r.Fired[0]), float64(r.Fired[1])
	if f0+f1 == 0 {
		t.Fatal("no firings recorded")
	}
	ratio := f0 / (f0 + f1)
	// 3:1 weights → 0.75 share; 5σ band at ~150k firings is well under 1%.
	if ratio < 0.74 || ratio > 0.76 {
		t.Fatalf("rule-0 share %.4f, want ≈0.75 (fired %d vs %d)", ratio, r.Fired[0], r.Fired[1])
	}
}
