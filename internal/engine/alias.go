package engine

// Walker alias table: O(1) weighted draws after an O(#species) build. It
// complements the Fenwick sampler in counted.go: the Fenwick tree absorbs
// incremental weight updates at O(log S) per update and per draw, which is
// the right trade for the stream-compatible CountRunner (one draw per
// update). The aggregate runner's composition path inverts that ratio —
// thousands of draws against a weight vector frozen for the whole batch —
// so it rebuilds an alias table lazily whenever some count changed and then
// samples at flat cost per draw.

// aliasTable holds the Walker small/large decomposition of a weight vector:
// column i is split between outcome i (probability prob[i]) and outcome
// alias[i] (the rest), so a draw is one uniform column pick plus one
// Bernoulli test.
type aliasTable struct {
	prob  []float64
	alias []int32
}

// build (re)constructs the table over the given non-negative int64 weights,
// reusing the receiver's storage. At least one weight must be positive.
func (a *aliasTable) build(weights []int64) {
	n := len(weights)
	if cap(a.prob) < n {
		a.prob = make([]float64, n)
		a.alias = make([]int32, n)
	} else {
		a.prob = a.prob[:n]
		a.alias = a.alias[:n]
	}
	var total int64
	for _, w := range weights {
		if w < 0 {
			panic("engine: alias table with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("engine: alias table with zero total weight")
	}
	// Scaled weights: prob temporarily holds w·n/total; columns below 1 are
	// "small" and get topped up by "large" columns.
	scale := float64(n) / float64(total)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		a.prob[i] = float64(w) * scale
		a.alias[i] = int32(i)
		if a.prob[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.alias[s] = l
		a.prob[l] -= 1 - a.prob[s]
		if a.prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers on either list are exactly 1 up to rounding.
	for _, i := range small {
		a.prob[i] = 1
	}
	for _, i := range large {
		a.prob[i] = 1
	}
}

// sample draws an index proportionally to the built weights. Two RNG draws,
// independent of the number of outcomes.
func (a *aliasTable) sample(rng *RNG) int32 {
	i := int32(rng.Intn(len(a.prob)))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
