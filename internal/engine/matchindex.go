package engine

import (
	"popkit/internal/bitmask"
)

// This file implements the incremental match-count machinery shared by the
// counted runners. The historical kernel recomputed the per-rule tallies
// m1/m2/m12 with a full #species × #rules rescan before every leap; the
// matchIndex maintains them as running sums instead, fed one delta at a
// time through Counted's mutation hook. Per-state guard evaluations happen
// once — the first time a state is seen — and are memoized as dispatch
// rows, so the leap loop itself touches only integer adds.

// rowEntry marks one rule whose guards match a given state.
type rowEntry struct {
	rule  int32
	flags uint8 // rowG1 | rowG2
}

const (
	rowG1 = 1 << iota // state matches the rule's initiator guard
	rowG2             // state matches the rule's responder guard
)

// stateRow is the memoized dispatch row of one state: the rules it can
// participate in, with initiator/responder flags. Rules matching neither
// side are absent. Rows record the one-time guard evaluations; the hot
// loops never touch them — rebuildDispatch flattens the rows of the live
// slots into the contiguous struct-of-arrays layout below.
type stateRow struct {
	entries     []rowEntry
	r1, r2, r12 []int32
}

// A CountTracker incrementally maintains the number of agents matching a
// guard in a counted population, the counterpart of the dense Runner's
// Tracker. Stop conditions built on trackers are re-evaluated only when a
// tracked count actually moves.
type CountTracker struct {
	Name  string
	guard bitmask.Guard
	count int64

	slotMatch []bool // slot → guard match, synced with the population
}

// Count returns the current number of matching agents.
func (t *CountTracker) Count() int64 { return t.count }

// matchIndex binds one (Protocol, Counted) pair: per-rule m1/m2/m12
// tallies, memoized dispatch rows, and registered trackers, all maintained
// incrementally from count deltas.
type matchIndex struct {
	p   *Protocol
	pop *Counted

	// m1[i], m2[i] count agents matching rule i's initiator and responder
	// guards; m12[i] counts agents matching both (the same-agent
	// correction in the ordered-pair count m1·m2 − m12).
	m1, m2, m12 []int64

	// occ1[i], occ2[i] count occupied species (not agents) matching rule
	// i's guards. When a guard has exactly one occupied species the
	// corresponding participant pick is deterministic, and BatchRunner
	// skips the RNG draw entirely.
	occ1, occ2 []int64

	rows map[bitmask.State]*stateRow // per-state guard-eval memoization

	// Struct-of-arrays dispatch over the live slots, rebuilt by syncSlots
	// whenever the slot table changes shape. The historical layout was a
	// []*stateRow with per-row slices — three pointer hops per delta; the
	// flat layout keeps the leap loop on two contiguous arrays:
	//
	//   dispRule[dispOff[3s]:dispOff[3s+1]]   rules matching slot s as initiator
	//   dispRule[dispOff[3s+1]:dispOff[3s+2]] … as responder
	//   dispRule[dispOff[3s+2]:dispOff[3s+3]] … as both (the m12 correction)
	//
	// flagsMat is the transposed O(1) lookup the pick loops scan: entry
	// [rule·flagStride + slot] holds the rowG1|rowG2 flags, laid out
	// rule-major so a scan over slots for a fixed rule is contiguous.
	dispOff    []int32
	dispRule   []int32
	flagsMat   []uint8
	flagStride int
	nSlots     int // number of slots the flat arrays cover

	trackers []*CountTracker
	// trackersMoved is set whenever a tracker count changes; RunUntil
	// clears it after re-evaluating its stop condition.
	trackersMoved bool

	compactGen uint64 // pop.compactGen the slot caches were built against

	// trans caches rule firings at the species level: (rule, initiator
	// slot, responder slot) → packed result slots, so the hot loop applies
	// a firing without re-evaluating updates or hashing states. Rebuilt
	// whenever the slot table changes shape. Shared by every counted
	// runner driving this index.
	trans      []int64
	transSlots int
	transGen   uint64
}

// transUnset marks an empty transition-cache entry.
const transUnset = int64(-1)

// transCacheLimit bounds the dense cache; protocols with huge live state
// spaces fall back to applying rules directly.
const transCacheLimit = 1 << 16

// newMatchIndex builds the index, performs the single full scan that seeds
// the tallies, and attaches the index to the population's mutation hook.
func newMatchIndex(p *Protocol, pop *Counted) *matchIndex {
	if p.Set.HasOrderedGroups() {
		panic("engine: counted runners do not support ordered rule groups")
	}
	nr := len(p.Set.Rules)
	ix := &matchIndex{
		p: p, pop: pop,
		m1: make([]int64, nr), m2: make([]int64, nr), m12: make([]int64, nr),
		occ1: make([]int64, nr), occ2: make([]int64, nr),
		rows: make(map[bitmask.State]*stateRow),
	}
	ix.syncSlots()
	for slot := 0; slot < ix.nSlots; slot++ {
		if k := pop.cnt[slot]; k > 0 {
			ix.bumpSlot(int32(slot), k)
			ix.occBumpSlot(int32(slot), 1)
		}
	}
	pop.attachHook(ix.apply)
	return ix
}

// rowOf memoizes the dispatch row of a state.
func (ix *matchIndex) rowOf(s bitmask.State) *stateRow {
	if row, ok := ix.rows[s]; ok {
		return row
	}
	row := &stateRow{}
	for i := range ix.p.Set.Rules {
		var f uint8
		if ix.p.ruleG1[i].Match(s) {
			f |= rowG1
		}
		if ix.p.ruleG2[i].Match(s) {
			f |= rowG2
		}
		if f != 0 {
			row.entries = append(row.entries, rowEntry{rule: int32(i), flags: f})
			if f&rowG1 != 0 {
				row.r1 = append(row.r1, int32(i))
			}
			if f&rowG2 != 0 {
				row.r2 = append(row.r2, int32(i))
			}
			if f == rowG1|rowG2 {
				row.r12 = append(row.r12, int32(i))
			}
		}
	}
	ix.rows[s] = row
	return row
}

// syncSlots (re)validates the slot-keyed caches: after a compaction they
// are rebuilt from scratch; after appends the memoized rows and tracker
// bitmaps extend in place and the flat dispatch arrays are re-flattened.
func (ix *matchIndex) syncSlots() {
	pop := ix.pop
	if ix.compactGen != pop.compactGen {
		ix.nSlots = 0
		for _, t := range ix.trackers {
			t.slotMatch = t.slotMatch[:0]
		}
		ix.compactGen = pop.compactGen
	}
	if ix.nSlots == len(pop.keys) {
		return
	}
	for slot := ix.nSlots; slot < len(pop.keys); slot++ {
		s := pop.keys[slot]
		ix.rowOf(s)
		for _, t := range ix.trackers {
			t.slotMatch = append(t.slotMatch, t.guard.Match(s))
		}
	}
	ix.nSlots = len(pop.keys)
	ix.rebuildDispatch()
}

// rebuildDispatch re-flattens the memoized rows of the live slots into the
// contiguous dispatch arrays. O(#slots × row length) plus the flags matrix
// fill; slot-table reshapes are rare (new species discovery, compaction),
// so the cost amortizes to nothing against the per-delta wins.
func (ix *matchIndex) rebuildDispatch() {
	ns := ix.nSlots
	nr := len(ix.p.Set.Rules)
	ix.dispOff = append(ix.dispOff[:0], 0)
	ix.dispRule = ix.dispRule[:0]
	ix.flagStride = ns
	if need := nr * ns; cap(ix.flagsMat) < need {
		ix.flagsMat = make([]uint8, need)
	} else {
		ix.flagsMat = ix.flagsMat[:need]
		clear(ix.flagsMat)
	}
	for slot := 0; slot < ns; slot++ {
		row := ix.rows[ix.pop.keys[slot]]
		ix.dispRule = append(ix.dispRule, row.r1...)
		ix.dispOff = append(ix.dispOff, int32(len(ix.dispRule)))
		ix.dispRule = append(ix.dispRule, row.r2...)
		ix.dispOff = append(ix.dispOff, int32(len(ix.dispRule)))
		ix.dispRule = append(ix.dispRule, row.r12...)
		ix.dispOff = append(ix.dispOff, int32(len(ix.dispRule)))
		for _, e := range row.entries {
			ix.flagsMat[int(e.rule)*ns+slot] = e.flags
		}
	}
}

// flags returns the rowG1|rowG2 match flags of (rule, slot) in O(1).
func (ix *matchIndex) flags(rule int32, slot int) uint8 {
	return ix.flagsMat[int(rule)*ix.flagStride+slot]
}

// bumpSlot adds delta to every tally the slot's state participates in.
func (ix *matchIndex) bumpSlot(slot int32, delta int64) {
	o := ix.dispOff[3*slot : 3*slot+4]
	for _, i := range ix.dispRule[o[0]:o[1]] {
		ix.m1[i] += delta
	}
	for _, i := range ix.dispRule[o[1]:o[2]] {
		ix.m2[i] += delta
	}
	for _, i := range ix.dispRule[o[2]:o[3]] {
		ix.m12[i] += delta
	}
}

// occBumpSlot adds delta to the occupied-species tallies of the slot's
// rules.
func (ix *matchIndex) occBumpSlot(slot int32, delta int64) {
	o := ix.dispOff[3*slot : 3*slot+3]
	for _, i := range ix.dispRule[o[0]:o[1]] {
		ix.occ1[i] += delta
	}
	for _, i := range ix.dispRule[o[1]:o[2]] {
		ix.occ2[i] += delta
	}
}

// apply is the population mutation hook: one count delta in, tally and
// tracker updates out.
func (ix *matchIndex) apply(slot int32, s bitmask.State, delta int64) {
	if delta == 0 {
		return
	}
	if int(slot) >= ix.nSlots || ix.compactGen != ix.pop.compactGen {
		ix.syncSlots()
	}
	ix.bumpSlot(slot, delta)
	if now := ix.pop.cnt[slot]; now == 0 {
		ix.occBumpSlot(slot, -1)
	} else if now == delta {
		ix.occBumpSlot(slot, 1)
	}
	for _, t := range ix.trackers {
		if t.slotMatch[slot] {
			t.count += delta
			ix.trackersMoved = true
		}
	}
}

// track registers a guard for incremental counting.
func (ix *matchIndex) track(name string, f bitmask.Formula) *CountTracker {
	ix.syncSlots()
	t := &CountTracker{Name: name, guard: bitmask.Compile(f)}
	t.slotMatch = make([]bool, ix.nSlots)
	for slot, s := range ix.pop.keys {
		if t.guard.Match(s) {
			t.slotMatch[slot] = true
			t.count += ix.pop.cnt[slot]
		}
	}
	ix.trackers = append(ix.trackers, t)
	return t
}

// matchingPairs returns the number of ordered pairs of distinct agents
// matching rule i.
func (ix *matchIndex) matchingPairs(i int) int64 {
	return ix.m1[i]*ix.m2[i] - ix.m12[i]
}

// syncCaches revalidates the slot-keyed caches after any external table
// reshape (a compaction triggered through the public API, or new species).
func (ix *matchIndex) syncCaches() {
	pop := ix.pop
	if ix.compactGen != pop.compactGen || ix.nSlots != len(pop.keys) {
		ix.syncSlots()
	}
	if ix.transGen != pop.compactGen || ix.transSlots != len(pop.keys) {
		ix.rebuildTrans()
	}
}

func (ix *matchIndex) rebuildTrans() {
	pop := ix.pop
	s := len(pop.keys)
	need := len(ix.p.Set.Rules) * s * s
	ix.transSlots = s
	ix.transGen = pop.compactGen
	if need > transCacheLimit {
		ix.trans = nil
		return
	}
	if cap(ix.trans) < need {
		ix.trans = make([]int64, need)
	} else {
		ix.trans = ix.trans[:need]
	}
	for i := range ix.trans {
		ix.trans[i] = transUnset
	}
}

// fire applies rule → (slot1, slot2) at the species level, going through
// the transition cache when possible. A participant whose state is
// unchanged by the rule needs no update at all: the −1/+1 on its slot
// cancels exactly through counts, tallies, trackers, and the sampler
// alike.
func (ix *matchIndex) fire(rule, slot1, slot2 int32) {
	pop := ix.pop
	var t1, t2 int32
	ci := -1
	// Slots born after the last rebuild (outputs of earlier firings in the
	// same batch) are outside the cache layout; they take the slow path
	// until syncCaches resizes it.
	if s := int32(ix.transSlots); ix.trans != nil && slot1 < s && slot2 < s {
		ci = int((rule*s+slot1)*s + slot2)
		if packed := ix.trans[ci]; packed != transUnset {
			t1, t2 = int32(packed>>32), int32(packed&0xffffffff)
			if t1 != slot1 {
				pop.addSlot(slot1, -1)
				pop.addSlot(t1, 1)
			}
			if t2 != slot2 {
				pop.addSlot(slot2, -1)
				pop.addSlot(t2, 1)
			}
			return
		}
	}
	rl := ix.p.Rule(int(rule))
	ns1, ns2 := rl.Apply(pop.keys[slot1], pop.keys[slot2])
	t1 = pop.slotFor(ns1)
	t2 = pop.slotFor(ns2)
	// slotFor may have grown the table, invalidating the cache layout; in
	// that case skip the store — the next syncCaches rebuilds the cache.
	if ci >= 0 && ix.transSlots == len(pop.keys) {
		ix.trans[ci] = int64(t1)<<32 | int64(t2)
	}
	if t1 != slot1 {
		pop.addSlot(slot1, -1)
		pop.addSlot(t1, 1)
	}
	if t2 != slot2 {
		pop.addSlot(slot2, -1)
		pop.addSlot(t2, 1)
	}
}

// fireForcedMatching executes one uniformly chosen matching (rule, ordered
// pair) event, conditioned on the interaction firing, skipping RNG draws
// whose outcome is forced: the rule pick when exactly one rule has matching
// pairs, and the participant picks when their guard has exactly one
// occupied species (occ1/occ2). Shared by BatchRunner (every firing) and
// AggregateRunner (its sparse-regime fallback). pairsW is caller-owned
// scratch of length #rules; the fired rule's index is returned so callers
// can keep their own accounting.
func (ix *matchIndex) fireForcedMatching(rng *RNG, pairsW []float64) int {
	// Rule pick, probability ∝ weight × matching pairs. With a single
	// active rule the pick is certain and the Float64 draw is skipped.
	var total float64
	active, nActive := 0, 0
	for i := range pairsW {
		pairs := ix.matchingPairs(i)
		v := 0.0
		if pairs > 0 {
			nActive++
			active = i
			v = ix.p.ruleWeightF[i] * float64(pairs)
		}
		pairsW[i] = v
		total += v
	}
	idx := active
	if nActive > 1 {
		pick := rng.Float64() * total
		idx = -1
		for i, v := range pairsW {
			pick -= v
			if pick < 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(pairsW) - 1
		}
	}
	rule := int32(idx)

	// Initiator pick, weight cnt(s)·(m2 − [G2(s)]). With a single occupied
	// G1 species all weight sits on one slot: find it without drawing.
	pop := ix.pop
	m2 := ix.m2[idx]
	var target int64
	byDraw := ix.occ1[idx] > 1
	if byDraw {
		target = rng.Int63n(ix.matchingPairs(idx))
	}
	slot1 := int32(-1)
	var g2s1 int64
	for slot := range pop.keys {
		f := ix.flags(rule, slot)
		if f&rowG1 == 0 || pop.cnt[slot] == 0 {
			continue
		}
		var b int64
		if f&rowG2 != 0 {
			b = 1
		}
		if !byDraw {
			slot1 = int32(slot)
			g2s1 = b
			break
		}
		w := pop.cnt[slot] * (m2 - b)
		if target < w {
			slot1 = int32(slot)
			g2s1 = b
			break
		}
		target -= w
	}
	if slot1 < 0 {
		panic("engine: initiator sampling walked off the table")
	}

	// Responder pick among G2-matchers, excluding the initiator agent.
	avail := m2 - g2s1
	byDraw = ix.occ2[idx] > 1
	var t2 int64
	if byDraw {
		t2 = rng.Int63n(avail)
	}
	slot2 := int32(-1)
	for slot := range pop.keys {
		if ix.flags(rule, slot)&rowG2 == 0 || pop.cnt[slot] == 0 {
			continue
		}
		w := pop.cnt[slot]
		if int32(slot) == slot1 {
			w -= g2s1
		}
		if w <= 0 {
			continue
		}
		if !byDraw || t2 < w {
			slot2 = int32(slot)
			break
		}
		t2 -= w
	}
	if slot2 < 0 {
		panic("engine: responder sampling walked off the table")
	}
	ix.fire(rule, slot1, slot2)
	return idx
}

// resync recomputes every tally from a full scan. Only used by tests to
// cross-check the incremental path; the simulation never needs it.
func (ix *matchIndex) resync() {
	clear(ix.m1)
	clear(ix.m2)
	clear(ix.m12)
	clear(ix.occ1)
	clear(ix.occ2)
	ix.syncSlots()
	for slot := 0; slot < ix.nSlots; slot++ {
		if k := ix.pop.cnt[slot]; k > 0 {
			ix.bumpSlot(int32(slot), k)
			ix.occBumpSlot(int32(slot), 1)
		}
	}
	for _, t := range ix.trackers {
		t.count = 0
		for slot := range ix.pop.keys {
			if t.slotMatch[slot] {
				t.count += ix.pop.cnt[slot]
			}
		}
	}
}
