package engine

import (
	"popkit/internal/bitmask"
)

// This file implements the incremental match-count machinery shared by the
// counted runners. The historical kernel recomputed the per-rule tallies
// m1/m2/m12 with a full #species × #rules rescan before every leap; the
// matchIndex maintains them as running sums instead, fed one delta at a
// time through Counted's mutation hook. Per-state guard evaluations happen
// once — the first time a state is seen — and are memoized as dispatch
// rows, so the leap loop itself touches only integer adds.

// rowEntry marks one rule whose guards match a given state.
type rowEntry struct {
	rule  int32
	flags uint8 // rowG1 | rowG2
}

const (
	rowG1 = 1 << iota // state matches the rule's initiator guard
	rowG2             // state matches the rule's responder guard
)

// stateRow is the dispatch row of one state: the rules it can participate
// in, with initiator/responder flags. Rules matching neither side are
// absent, so delta dispatch is O(row length), not O(#rules). The r1/r2/r12
// slices pre-split the entries by tally so bump runs branch-free.
type stateRow struct {
	entries     []rowEntry
	r1, r2, r12 []int32
}

// flagsFor returns the row's match flags for one rule (0 if absent).
func (row *stateRow) flagsFor(rule int32) uint8 {
	for _, e := range row.entries {
		if e.rule == rule {
			return e.flags
		}
	}
	return 0
}

// A CountTracker incrementally maintains the number of agents matching a
// guard in a counted population, the counterpart of the dense Runner's
// Tracker. Stop conditions built on trackers are re-evaluated only when a
// tracked count actually moves.
type CountTracker struct {
	Name  string
	guard bitmask.Guard
	count int64

	slotMatch []bool // slot → guard match, synced with the population
}

// Count returns the current number of matching agents.
func (t *CountTracker) Count() int64 { return t.count }

// matchIndex binds one (Protocol, Counted) pair: per-rule m1/m2/m12
// tallies, memoized dispatch rows, and registered trackers, all maintained
// incrementally from count deltas.
type matchIndex struct {
	p   *Protocol
	pop *Counted

	// m1[i], m2[i] count agents matching rule i's initiator and responder
	// guards; m12[i] counts agents matching both (the same-agent
	// correction in the ordered-pair count m1·m2 − m12).
	m1, m2, m12 []int64

	// occ1[i], occ2[i] count occupied species (not agents) matching rule
	// i's guards. When a guard has exactly one occupied species the
	// corresponding participant pick is deterministic, and BatchRunner
	// skips the RNG draw entirely.
	occ1, occ2 []int64

	rows     map[bitmask.State]*stateRow
	slotRows []*stateRow // slot → row, remapped when the population compacts

	trackers []*CountTracker
	// trackersMoved is set whenever a tracker count changes; RunUntil
	// clears it after re-evaluating its stop condition.
	trackersMoved bool

	compactGen uint64 // pop.compactGen the slot caches were built against

	// trans caches rule firings at the species level: (rule, initiator
	// slot, responder slot) → packed result slots, so the hot loop applies
	// a firing without re-evaluating updates or hashing states. Rebuilt
	// whenever the slot table changes shape. Shared by every counted
	// runner driving this index.
	trans      []int64
	transSlots int
	transGen   uint64
}

// transUnset marks an empty transition-cache entry.
const transUnset = int64(-1)

// transCacheLimit bounds the dense cache; protocols with huge live state
// spaces fall back to applying rules directly.
const transCacheLimit = 1 << 16

// newMatchIndex builds the index, performs the single full scan that seeds
// the tallies, and attaches the index to the population's mutation hook.
func newMatchIndex(p *Protocol, pop *Counted) *matchIndex {
	if p.Set.HasOrderedGroups() {
		panic("engine: counted runners do not support ordered rule groups")
	}
	nr := len(p.Set.Rules)
	ix := &matchIndex{
		p: p, pop: pop,
		m1: make([]int64, nr), m2: make([]int64, nr), m12: make([]int64, nr),
		occ1: make([]int64, nr), occ2: make([]int64, nr),
		rows: make(map[bitmask.State]*stateRow),
	}
	ix.syncSlots()
	for slot, row := range ix.slotRows {
		if k := pop.cnt[slot]; k > 0 {
			ix.bump(row, k)
			ix.occBump(row, 1)
		}
	}
	pop.attachHook(ix.apply)
	return ix
}

// rowOf memoizes the dispatch row of a state.
func (ix *matchIndex) rowOf(s bitmask.State) *stateRow {
	if row, ok := ix.rows[s]; ok {
		return row
	}
	row := &stateRow{}
	for i := range ix.p.Set.Rules {
		var f uint8
		if ix.p.ruleG1[i].Match(s) {
			f |= rowG1
		}
		if ix.p.ruleG2[i].Match(s) {
			f |= rowG2
		}
		if f != 0 {
			row.entries = append(row.entries, rowEntry{rule: int32(i), flags: f})
			if f&rowG1 != 0 {
				row.r1 = append(row.r1, int32(i))
			}
			if f&rowG2 != 0 {
				row.r2 = append(row.r2, int32(i))
			}
			if f == rowG1|rowG2 {
				row.r12 = append(row.r12, int32(i))
			}
		}
	}
	ix.rows[s] = row
	return row
}

// syncSlots (re)builds the slot-keyed caches: after a compaction they are
// rebuilt from scratch; after appends they are extended in place.
func (ix *matchIndex) syncSlots() {
	pop := ix.pop
	if ix.compactGen != pop.compactGen {
		ix.slotRows = ix.slotRows[:0]
		for _, t := range ix.trackers {
			t.slotMatch = t.slotMatch[:0]
		}
		ix.compactGen = pop.compactGen
	}
	for slot := len(ix.slotRows); slot < len(pop.keys); slot++ {
		s := pop.keys[slot]
		ix.slotRows = append(ix.slotRows, ix.rowOf(s))
		for _, t := range ix.trackers {
			t.slotMatch = append(t.slotMatch, t.guard.Match(s))
		}
	}
}

// bump adds delta to every tally the row participates in.
func (ix *matchIndex) bump(row *stateRow, delta int64) {
	for _, i := range row.r1 {
		ix.m1[i] += delta
	}
	for _, i := range row.r2 {
		ix.m2[i] += delta
	}
	for _, i := range row.r12 {
		ix.m12[i] += delta
	}
}

// occBump adds delta to the occupied-species tallies of the row's rules.
func (ix *matchIndex) occBump(row *stateRow, delta int64) {
	for _, i := range row.r1 {
		ix.occ1[i] += delta
	}
	for _, i := range row.r2 {
		ix.occ2[i] += delta
	}
}

// apply is the population mutation hook: one count delta in, tally and
// tracker updates out.
func (ix *matchIndex) apply(slot int32, s bitmask.State, delta int64) {
	if delta == 0 {
		return
	}
	if int(slot) >= len(ix.slotRows) || ix.compactGen != ix.pop.compactGen {
		ix.syncSlots()
	}
	row := ix.slotRows[slot]
	ix.bump(row, delta)
	if now := ix.pop.cnt[slot]; now == 0 {
		ix.occBump(row, -1)
	} else if now == delta {
		ix.occBump(row, 1)
	}
	for _, t := range ix.trackers {
		if t.slotMatch[slot] {
			t.count += delta
			ix.trackersMoved = true
		}
	}
}

// track registers a guard for incremental counting.
func (ix *matchIndex) track(name string, f bitmask.Formula) *CountTracker {
	ix.syncSlots()
	t := &CountTracker{Name: name, guard: bitmask.Compile(f)}
	t.slotMatch = make([]bool, len(ix.slotRows))
	for slot, s := range ix.pop.keys {
		if t.guard.Match(s) {
			t.slotMatch[slot] = true
			t.count += ix.pop.cnt[slot]
		}
	}
	ix.trackers = append(ix.trackers, t)
	return t
}

// matchingPairs returns the number of ordered pairs of distinct agents
// matching rule i.
func (ix *matchIndex) matchingPairs(i int) int64 {
	return ix.m1[i]*ix.m2[i] - ix.m12[i]
}

// syncCaches revalidates the slot-keyed caches after any external table
// reshape (a compaction triggered through the public API, or new species).
func (ix *matchIndex) syncCaches() {
	pop := ix.pop
	if ix.compactGen != pop.compactGen || len(ix.slotRows) != len(pop.keys) {
		ix.syncSlots()
	}
	if ix.transGen != pop.compactGen || ix.transSlots != len(pop.keys) {
		ix.rebuildTrans()
	}
}

func (ix *matchIndex) rebuildTrans() {
	pop := ix.pop
	s := len(pop.keys)
	need := len(ix.p.Set.Rules) * s * s
	ix.transSlots = s
	ix.transGen = pop.compactGen
	if need > transCacheLimit {
		ix.trans = nil
		return
	}
	if cap(ix.trans) < need {
		ix.trans = make([]int64, need)
	} else {
		ix.trans = ix.trans[:need]
	}
	for i := range ix.trans {
		ix.trans[i] = transUnset
	}
}

// fire applies rule → (slot1, slot2) at the species level, going through
// the transition cache when possible. A participant whose state is
// unchanged by the rule needs no update at all: the −1/+1 on its slot
// cancels exactly through counts, tallies, trackers, and the sampler
// alike.
func (ix *matchIndex) fire(rule, slot1, slot2 int32) {
	pop := ix.pop
	var t1, t2 int32
	ci := -1
	if ix.trans != nil {
		s := int32(ix.transSlots)
		ci = int((rule*s+slot1)*s + slot2)
		if packed := ix.trans[ci]; packed != transUnset {
			t1, t2 = int32(packed>>32), int32(packed&0xffffffff)
			if t1 != slot1 {
				pop.addSlot(slot1, -1)
				pop.addSlot(t1, 1)
			}
			if t2 != slot2 {
				pop.addSlot(slot2, -1)
				pop.addSlot(t2, 1)
			}
			return
		}
	}
	rl := ix.p.Rule(int(rule))
	ns1, ns2 := rl.Apply(pop.keys[slot1], pop.keys[slot2])
	t1 = pop.slotFor(ns1)
	t2 = pop.slotFor(ns2)
	// slotFor may have grown the table, invalidating the cache layout; in
	// that case skip the store — the next syncCaches rebuilds the cache.
	if ci >= 0 && ix.transSlots == len(pop.keys) {
		ix.trans[ci] = int64(t1)<<32 | int64(t2)
	}
	if t1 != slot1 {
		pop.addSlot(slot1, -1)
		pop.addSlot(t1, 1)
	}
	if t2 != slot2 {
		pop.addSlot(slot2, -1)
		pop.addSlot(t2, 1)
	}
}

// resync recomputes every tally from a full scan. Only used by tests to
// cross-check the incremental path; the simulation never needs it.
func (ix *matchIndex) resync() {
	clear(ix.m1)
	clear(ix.m2)
	clear(ix.m12)
	clear(ix.occ1)
	clear(ix.occ2)
	ix.syncSlots()
	for slot, row := range ix.slotRows {
		if k := ix.pop.cnt[slot]; k > 0 {
			ix.bump(row, k)
			ix.occBump(row, 1)
		}
	}
	for _, t := range ix.trackers {
		t.count = 0
		for slot := range ix.pop.keys {
			if t.slotMatch[slot] {
				t.count += ix.pop.cnt[slot]
			}
		}
	}
}
