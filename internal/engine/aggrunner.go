package engine

import (
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/obs"
)

// AggregateRunner drives a Counted population through the same Markov chain
// as Runner, CountRunner, and BatchRunner, but simulates whole *runs* of
// interactions per step instead of one firing at a time. BatchRunner's
// geometric leaps make non-firing interactions free; at n ≥ 10^8 the E11
// workload is firing-dominated and the ~100 ns per individual firing
// becomes the wall. This runner batches the firings themselves.
//
// The construction is exact in distribution (law-identical, like
// BatchRunner — not stream-identical). A step decomposes the schedule at
// its first *collision*:
//
//  1. Draw ℓ, the length of the maximal prefix of activations whose
//     participants are pairwise distinct, from its closed-form survival
//     function (collisionRunLen). Conditioned on ℓ, those activations
//     involve 2ℓ agents sampled uniformly without replacement — their
//     outcomes are mutually independent of ordering, so they can be
//     resolved in aggregate:
//  2. Decompose who participated: the initiator and responder species
//     multisets are multivariate hypergeometric draws against the count
//     vector, and the pairing between them is a uniform random bijection,
//     sampled as a contingency table of nested hypergeometric rows.
//  3. Decompose what fired: each pair type (a, b) independently picked a
//     uniform scheduler slot, so the firing counts of the rule groups
//     matching (a, b) follow a conditional Binomial chain; every rule's
//     count-delta is applied once per run through the same mutation hook
//     the other kernels use, keeping tallies, trackers, and samplers exact.
//  4. Fire the collision interaction (the ℓ+1st) literally: its pair is
//     uniform among ordered pairs with at least one already-touched agent.
//
// When a run is expected to contain few firings (q·E[ℓ] < MinRunFirings —
// small populations, or the long quiescent tail of exact majority where
// BatchRunner's one-geometric-per-firing leap is already optimal), the
// step falls back to exactly that leap. Both step flavours are exact
// transitions of the same chain, and the choice depends only on the
// current counts, so mixing them preserves the law.
//
// Fired[i] counts the firings of rule i; FiredTotal is their sum.
type AggregateRunner struct {
	P   *Protocol
	Pop *Counted
	RNG *RNG

	// Interactions counts scheduler activations including non-firing ones.
	Interactions uint64

	// Fired counts rule firings, indexed by rule; FiredTotal is the sum.
	Fired      []uint64
	FiredTotal uint64

	// Stats, when non-nil, mirrors Fired into a shared obs.RuleStats.
	Stats *obs.RuleStats

	// MinRunFirings gates the aggregate path: a collision-free run is
	// decomposed in aggregate only when its expected firing count q·E[ℓ]
	// reaches this bound; below it a geometric leap plus one forced firing
	// (BatchRunner's step) is cheaper. The default is calibrated from the
	// committed kernel benchmarks (one aggregate decomposition costs on
	// the order of 50–100 leap steps). Tests set 0 to force the aggregate
	// path at small n.
	MinRunFirings float64

	idx    *matchIndex
	pairsW []float64

	// Per-population constants of the run-length sampler.
	lgN1    float64 // ln Γ(n+1)
	lnPairs float64 // ln n + ln(n−1)
	meanRun float64 // E[ℓ] ≈ √(πn/8)

	// Slot-indexed scratch, zeroed per aggregate step.
	compI []int64 // initiator species multiset of the run
	compR []int64 // responder species multiset
	compF []int64 // untouched ("fresh") agents per species
	delta []int64 // net count delta accumulated over the run
	aA    []int32 // small-path initiator slots
	aB    []int32 // small-path responder slots

	// pairRules caches, per (initiator slot, responder slot), the rule
	// groups whose unique matching rule fires on that pair, with weights
	// and lazily resolved output slots. Keyed like the transition cache:
	// reset whenever the slot table reshapes.
	pairRules [][]pairRule
	pairBuilt []bool
	pairGen   uint64
	pairSlots int
}

// pairRule is one rule-group entry of a pair-type dispatch list.
type pairRule struct {
	rule   int32
	weight int32
	t1, t2 int32 // output slots, -1 until first resolved
}

// pairCacheLimit bounds the pair-type cache; beyond slots² entries the
// dispatch lists are rebuilt per use.
const pairCacheLimit = 1 << 14

// defaultMinRunFirings is the aggregate-vs-leap crossover in expected
// firings per collision-free run.
const defaultMinRunFirings = 64

// NewAggregateRunner assembles an aggregate runner. Like the other counted
// runners it rejects protocols with ordered (first-match) groups and
// attaches to the population's mutation hook, so a population can drive
// only one incremental runner at a time.
func NewAggregateRunner(p *Protocol, pop *Counted, rng *RNG) *AggregateRunner {
	n := float64(pop.n)
	lg, _ := math.Lgamma(n + 1)
	return &AggregateRunner{
		P: p, Pop: pop, RNG: rng,
		Fired:         make([]uint64, len(p.Set.Rules)),
		MinRunFirings: defaultMinRunFirings,
		idx:           newMatchIndex(p, pop),
		pairsW:        make([]float64, len(p.Set.Rules)),
		lgN1:          lg,
		lnPairs:       math.Log(n) + math.Log(n-1),
		meanRun:       math.Sqrt(math.Pi * n / 8),
	}
}

// Rounds returns elapsed parallel time (interactions / n).
func (r *AggregateRunner) Rounds() float64 {
	return float64(r.Interactions) / float64(r.Pop.n)
}

// Track registers a guard for incremental counting and returns its
// tracker. RunUntil re-evaluates its stop condition only when some tracked
// count moves.
func (r *AggregateRunner) Track(name string, f bitmask.Formula) *CountTracker {
	return r.idx.track(name, f)
}

// stepProbability returns the probability that a single scheduler
// activation fires some rule.
func (r *AggregateRunner) stepProbability() float64 {
	n := float64(r.Pop.n)
	totalPairs := n * (n - 1)
	var q float64
	ix := r.idx
	for i := range r.P.ruleWeightN {
		q += r.P.ruleWeightN[i] * float64(ix.m1[i]*ix.m2[i]-ix.m12[i]) / totalPairs
	}
	return q
}

// LeapStep advances the chain by one step of whichever flavour the current
// firing density favours: an aggregate collision-run decomposition, or a
// geometric leap through the quiescent stretch plus one forced firing. It
// returns false (without advancing) when no rule can ever fire again.
// maxInteractions bounds the step: the runner never advances past the
// bound (run decompositions are truncated to it, which is exact — the
// first k activations of a run of length ≥ k are themselves a uniform
// collision-free prefix).
func (r *AggregateRunner) LeapStep(maxInteractions uint64) bool {
	if maxInteractions > 0 && r.Interactions >= maxInteractions {
		return true
	}
	r.idx.syncCaches()
	r.syncPairCache()
	q := r.stepProbability()
	if q <= 0 {
		return false
	}
	if q*r.meanRun < r.MinRunFirings {
		return r.leapOne(q, maxInteractions)
	}
	r.aggregateStep(maxInteractions)
	return true
}

// leapOne is the sparse-regime step: one geometric leap over the
// non-firing stretch, then one forced-pick firing.
func (r *AggregateRunner) leapOne(q float64, maxInteractions uint64) bool {
	skip := r.RNG.Geometric(q)
	if maxInteractions > 0 && r.Interactions+skip+1 > maxInteractions {
		r.Interactions = maxInteractions
		return true
	}
	r.Interactions += skip + 1
	idx := r.idx.fireForcedMatching(r.RNG, r.pairsW)
	r.Fired[idx]++
	r.FiredTotal++
	r.Stats.Fire(idx, 1)
	return true
}

// aggregateStep simulates one collision-free run (possibly truncated at
// the interaction bound) plus, when not truncated, its closing collision
// interaction.
func (r *AggregateRunner) aggregateStep(maxInteractions uint64) {
	pop := r.Pop
	l := r.RNG.collisionRunLen(pop.n, r.lgN1, r.lnPairs)
	m := l
	collide := true
	if maxInteractions > 0 {
		if avail := int64(maxInteractions - r.Interactions); l >= avail {
			// The bound falls inside the run: simulate exactly the first
			// avail activations. Conditioned on ℓ ≥ avail they are a
			// uniform collision-free prefix, so the same decomposition
			// applies; the collision is never reached.
			m = avail
			collide = false
		}
	}
	ns := len(pop.keys)
	r.resetScratch(ns)
	live := 0
	for s := 0; s < ns; s++ {
		if pop.cnt[s] > 0 {
			live++
		}
	}
	// Composition flavour: the hypergeometric decomposition costs
	// O(live²) closed-form draws; when the run is short relative to the
	// species count it is cheaper (and equally exact) to draw the 2m
	// participants individually through the alias sampler.
	if m < int64(32*live) {
		r.smallRun(m)
	} else {
		r.mvhRun(m)
	}
	r.Interactions += uint64(m)
	if collide {
		r.collisionStep(m)
	}
}

// resetScratch sizes and zeroes the slot-indexed scratch vectors.
func (r *AggregateRunner) resetScratch(ns int) {
	r.compI = resizeZero(r.compI, ns)
	r.compR = resizeZero(r.compR, ns)
	r.compF = resizeZero(r.compF, ns)
	r.delta = resizeZero(r.delta, ns)
}

func resizeZero(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growZero extends s with zeros to length n, preserving existing entries.
func growZero(s []int64, n int) []int64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// mvhRun resolves m collision-free interactions in aggregate: initiator
// and responder species multisets by sequential hypergeometrics, their
// pairing by nested hypergeometric contingency rows, per-pair rule-group
// firing counts by conditional Binomial chains, and one count-delta
// application per touched species.
func (r *AggregateRunner) mvhRun(m int64) {
	pop, rng := r.Pop, r.RNG
	ns := len(pop.keys)

	// Initiator multiset: MVH(m) against the counts.
	remaining, want := pop.n, m
	for s := 0; s < ns && want > 0; s++ {
		c := pop.cnt[s]
		if c == 0 {
			continue
		}
		var k int64
		if remaining == c {
			k = want
		} else {
			k = rng.Hypergeometric(remaining, c, want)
		}
		r.compI[s] = k
		want -= k
		remaining -= c
	}
	// Responder multiset: MVH(m) against the counts minus the initiators.
	remaining, want = pop.n-m, m
	for s := 0; s < ns && want > 0; s++ {
		c := pop.cnt[s] - r.compI[s]
		if c == 0 {
			continue
		}
		var k int64
		if remaining == c {
			k = want
		} else {
			k = rng.Hypergeometric(remaining, c, want)
		}
		r.compR[s] = k
		want -= k
		remaining -= c
	}
	// Fresh (untouched) agents per species, fixed before any mutation —
	// the collision step needs them to identify the touched multiset.
	for s := 0; s < ns; s++ {
		r.compF[s] = pop.cnt[s] - r.compI[s] - r.compR[s]
	}
	// Pairing: a uniform bijection between the two multisets. Row by
	// initiator species (ascending), each row an MVH draw from the
	// responders not yet paired.
	pending := m
	for a := 0; a < ns; a++ {
		ia := r.compI[a]
		if ia == 0 {
			continue
		}
		remRow, want := pending, ia
		for b := 0; b < ns && want > 0; b++ {
			rb := r.compR[b]
			if rb == 0 {
				continue
			}
			var k int64
			if remRow == rb {
				k = want
			} else {
				k = rng.Hypergeometric(remRow, rb, want)
			}
			if k > 0 {
				r.firePairs(int32(a), int32(b), k)
				r.compR[b] -= k
				want -= k
			}
			remRow -= rb
		}
		pending -= ia
	}
	// Apply the accumulated net deltas, one hook call per moved species.
	// Non-firing pairs cancel exactly, so only rule effects remain.
	for s := range r.delta {
		if d := r.delta[s]; d != 0 {
			pop.addSlot(int32(s), d)
		}
	}
}

// firePairs resolves K interactions of pair type (a, b): each picked a
// uniform scheduler slot, so the firing counts of the matching rule groups
// follow a conditional Binomial chain; slots of non-matching groups are
// non-firings and need no work at all.
func (r *AggregateRunner) firePairs(a, b int32, K int64) {
	prs := r.pairRulesFor(a, b)
	if len(prs) == 0 {
		return
	}
	remW := int64(r.P.NumSlots())
	remaining := K
	for i := range prs {
		if remaining == 0 {
			break
		}
		pr := &prs[i]
		f := r.RNG.Binomial(remaining, float64(pr.weight)/float64(remW))
		remW -= int64(pr.weight)
		if f == 0 {
			continue
		}
		remaining -= f
		if pr.t1 < 0 {
			rl := r.P.Rule(int(pr.rule))
			ns1, ns2 := rl.Apply(r.Pop.keys[a], r.Pop.keys[b])
			pr.t1 = r.Pop.slotFor(ns1)
			pr.t2 = r.Pop.slotFor(ns2)
			r.delta = growZero(r.delta, len(r.Pop.keys))
		}
		r.delta[a] -= f
		r.delta[b] -= f
		r.delta[pr.t1] += f
		r.delta[pr.t2] += f
		r.Fired[pr.rule] += uint64(f)
		r.FiredTotal += uint64(f)
		r.Stats.Fire(int(pr.rule), uint64(f))
	}
}

// smallRun resolves a short run literally: the 2m distinct participants
// are drawn one by one through the alias sampler (proposal ∝ count,
// rejection correcting for already-drawn agents), then each pair picks its
// scheduler slot and fires through the shared species-level fire path.
// Exact for any m; preferred when m is small relative to the species count
// so the O(live²) hypergeometric decomposition wouldn't amortize.
func (r *AggregateRunner) smallRun(m int64) {
	pop, rng := r.Pop, r.RNG
	if cap(r.aA) < int(m) {
		r.aA = make([]int32, m)
		r.aB = make([]int32, m)
	}
	r.aA, r.aB = r.aA[:m], r.aB[:m]
	// compI doubles as the drawn-agents tally ("used") here.
	used := r.compI
	drawOne := func() int32 {
		for {
			s := pop.sampleSlotAlias(rng)
			if u := used[s]; u > 0 && rng.Int63n(pop.cnt[s]) < u {
				continue
			}
			used[s]++
			return s
		}
	}
	for j := int64(0); j < m; j++ {
		r.aA[j] = drawOne()
	}
	for j := int64(0); j < m; j++ {
		r.aB[j] = drawOne()
	}
	ns := len(pop.keys)
	for s := 0; s < ns; s++ {
		r.compF[s] = pop.cnt[s] - used[s]
	}
	for j := int64(0); j < m; j++ {
		a, b := r.aA[j], r.aB[j]
		gi := r.P.slots[rng.Intn(len(r.P.slots))]
		ri, _ := r.P.matchGroup(gi, pop.keys[a], pop.keys[b])
		if ri < 0 {
			continue
		}
		r.idx.fire(int32(ri), a, b)
		r.Fired[ri]++
		r.FiredTotal++
		r.Stats.Fire(ri, 1)
	}
}

// collisionStep fires the interaction that terminated the run: its ordered
// pair is uniform among pairs of distinct agents that are NOT both fresh.
// Touched agents are identified by their current species (exchangeability:
// agents of one species are interchangeable for all future evolution), as
// current count minus fresh count.
func (r *AggregateRunner) collisionStep(m int64) {
	pop, rng := r.Pop, r.RNG
	ns := len(pop.keys)
	r.compF = growZero(r.compF, ns) // new species from this run are all touched
	T := 2 * m
	F := pop.n - T
	wTT := T * (T - 1)
	wTF := T * F
	pick := rng.Int63n(wTT + 2*wTF)
	uTouched, vTouched := true, true
	switch {
	case pick < wTT:
	case pick < wTT+wTF:
		vTouched = false
	default:
		uTouched = false
	}
	slotU := r.pickCollision(uTouched, T, F, -1)
	var slotV int32
	if uTouched && vTouched {
		slotV = r.pickCollision(true, T-1, F, slotU)
	} else {
		slotV = r.pickCollision(vTouched, T, F, -1)
	}
	r.Interactions++
	gi := r.P.slots[rng.Intn(len(r.P.slots))]
	ri, _ := r.P.matchGroup(gi, pop.keys[slotU], pop.keys[slotV])
	if ri < 0 {
		return
	}
	r.idx.fire(int32(ri), slotU, slotV)
	r.Fired[ri]++
	r.FiredTotal++
	r.Stats.Fire(ri, 1)
}

// pickCollision draws a species slot proportionally to the touched
// (current minus fresh) or fresh per-species counts, with total mass
// `total` and one agent at slot excl removed from the pool.
func (r *AggregateRunner) pickCollision(touched bool, T, F int64, excl int32) int32 {
	pop := r.Pop
	total := F
	if touched {
		total = T // already reduced by the caller when excl is set
	}
	target := r.RNG.Int63n(total)
	for s := range pop.cnt {
		w := r.compF[s]
		if touched {
			w = pop.cnt[s] - r.compF[s]
		}
		if int32(s) == excl {
			w--
		}
		if w <= 0 {
			continue
		}
		if target < w {
			return int32(s)
		}
		target -= w
	}
	panic("engine: collision sampling walked off the table")
}

// syncPairCache revalidates the pair-type dispatch cache against the
// current slot table.
func (r *AggregateRunner) syncPairCache() {
	pop := r.Pop
	if r.pairGen == pop.compactGen && r.pairSlots == len(pop.keys) {
		return
	}
	r.pairGen = pop.compactGen
	r.pairSlots = len(pop.keys)
	n := r.pairSlots * r.pairSlots
	if n > pairCacheLimit {
		r.pairRules, r.pairBuilt = nil, nil
		return
	}
	if cap(r.pairRules) < n {
		r.pairRules = make([][]pairRule, n)
		r.pairBuilt = make([]bool, n)
	} else {
		r.pairRules = r.pairRules[:n]
		r.pairBuilt = r.pairBuilt[:n]
		for i := range r.pairRules {
			r.pairRules[i] = nil
			r.pairBuilt[i] = false
		}
	}
}

// pairRulesFor returns the dispatch list of pair type (a, b), cached when
// the cache fits.
func (r *AggregateRunner) pairRulesFor(a, b int32) []pairRule {
	if r.pairBuilt != nil {
		ci := int(a)*r.pairSlots + int(b)
		if r.pairBuilt[ci] {
			return r.pairRules[ci]
		}
		prs := r.buildPairRules(a, b)
		r.pairRules[ci] = prs
		r.pairBuilt[ci] = true
		return prs
	}
	return r.buildPairRules(a, b)
}

func (r *AggregateRunner) buildPairRules(a, b int32) []pairRule {
	var prs []pairRule
	sa, sb := r.Pop.keys[a], r.Pop.keys[b]
	for gi := range r.P.groups {
		if ri, _ := r.P.matchGroup(int32(gi), sa, sb); ri >= 0 {
			prs = append(prs, pairRule{
				rule:   int32(ri),
				weight: int32(r.P.Set.Groups[gi].Weight),
				t1:     -1, t2: -1,
			})
		}
	}
	return prs
}

// RunBatch advances until at least maxFirings rule firings have executed
// (aggregate steps fire in lumps, so the total may overshoot), bounded by
// maxInteractions total activations (0 = unbounded). It returns the number
// of firings executed and whether the protocol can still move.
func (r *AggregateRunner) RunBatch(maxFirings, maxInteractions uint64) (fired uint64, alive bool) {
	start := r.FiredTotal
	for r.FiredTotal-start < maxFirings {
		if maxInteractions > 0 && r.Interactions >= maxInteractions {
			return r.FiredTotal - start, true
		}
		if !r.LeapStep(maxInteractions) {
			return r.FiredTotal - start, false
		}
	}
	return r.FiredTotal - start, true
}

// RunUntil leaps until the condition holds or maxRounds elapses or the
// protocol goes silent, returning the parallel time consumed and whether
// the condition was met.
//
// When trackers are registered (Track), the condition is re-evaluated only
// after steps that moved a tracked count. Conditions are checked at run
// boundaries: a target hit mid-run is observed up to one collision-free
// run (E[ℓ] ≈ 0.63·√n interactions, well under one parallel round) later —
// the hitting times the registry protocols measure are against absorbing
// targets, where the boundary is exact up to that sub-round granularity.
func (r *AggregateRunner) RunUntil(cond func(*AggregateRunner) bool, maxRounds float64) (rounds float64, ok bool) {
	start := r.Rounds()
	n := float64(r.Pop.n)
	budget := uint64(math.Ceil(maxRounds*n)) + r.Interactions
	gated := len(r.idx.trackers) > 0
	check := true
	for {
		if check || !gated {
			r.idx.trackersMoved = false
			if cond(r) {
				return r.Rounds() - start, true
			}
		}
		if r.Interactions >= budget {
			return r.Rounds() - start, false
		}
		if !r.LeapStep(budget) {
			// Silent: the configuration can never change again.
			return r.Rounds() - start, cond(r)
		}
		check = r.idx.trackersMoved
	}
}
