package engine

import (
	"bytes"
	"strings"
	"testing"

	"popkit/internal/bitmask"
)

func TestDenseSnapshotRoundTrip(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	f := sp.Field("F", 15)
	rng := NewRNG(4)
	pop := NewDenseInit(500, func(i int) bitmask.State {
		var s bitmask.State
		if rng.Bool() {
			s = a.Set(s, true)
		}
		return f.Set(s, uint64(rng.Intn(16)))
	})
	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != pop.N() {
		t.Fatalf("size %d != %d", back.N(), pop.N())
	}
	for i := 0; i < pop.N(); i++ {
		if back.Agent(i) != pop.Agent(i) {
			t.Fatalf("agent %d differs after round trip", i)
		}
	}
}

// TestDenseSnapshotResume: a run checkpointed mid-flight and resumed with
// the same RNG state produces a valid continuation (the epidemic still
// completes).
func TestDenseSnapshotResume(t *testing.T) {
	p, _, infected := epidemicProtocol()
	pop := NewDenseInit(300, func(i int) bitmask.State {
		var s bitmask.State
		if i == 0 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(8))
	r.RunRounds(3)
	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(p, restored, NewRNG(99))
	tr := r2.Track("I", bitmask.Is(infected))
	if _, ok := r2.RunUntil(func(*Runner) bool { return tr.Count() == restored.N() }, 1, 500); !ok {
		t.Fatal("resumed epidemic did not complete")
	}
}

func TestCountedSnapshotRoundTrip(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	sA := a.Set(bitmask.State{}, true)
	pop := NewCounted(map[bitmask.State]int64{sA: 123456789, {}: 876543211})
	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCounted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N64() != pop.N64() {
		t.Fatalf("size %d != %d", back.N64(), pop.N64())
	}
	if back.CountState(sA) != 123456789 {
		t.Errorf("species count = %d", back.CountState(sA))
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadDense(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage accepted as dense snapshot")
	}
	if _, err := ReadCounted(strings.NewReader("POPK\x01\x01")); err == nil {
		t.Error("dense snapshot accepted as counted")
	}
	// Truncated payload.
	sp := bitmask.NewSpace()
	sp.Bool("A")
	pop := NewDense(10)
	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadDense(bytes.NewReader(cut)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestSnapshotKindMismatch(t *testing.T) {
	pop := NewDense(10)
	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCounted(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("kind mismatch accepted")
	}
}
