package engine

import "math"

// Exact discrete samplers for the aggregate-firing kernel. The aggregate
// runner replaces per-interaction simulation with closed-form draws of how
// a whole run of collision-free interactions decomposes — which species the
// participants came from (multivariate hypergeometric, built from the
// scalar Hypergeometric below) and how many activations of each rule group
// fired (a conditional Binomial chain). Both samplers are exact inverse-CDF
// transforms: the pmf at the mode is computed once via math.Lgamma and
// neighbouring probabilities follow by ratio recurrences, scanning outward
// from the mode (mode, mode+1, mode−1, …) so the expected scan length is
// O(standard deviation), not O(support). Exactness is up to float64
// arithmetic — the same contract the geometric-leap kernels already carry.

// smallTrials is the crossover below which the samplers use the literal
// sequential construction (one cheap RNG draw per trial) instead of the
// lgamma-based inversion: for a handful of trials the per-draw loop is both
// faster and trivially exact.
const smallTrials = 32

// Binomial returns the number of successes in n independent Bernoulli(p)
// trials. It consumes n Float64 draws for n ≤ 32 and exactly one otherwise.
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= smallTrials {
		var k int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mode := int64(math.Floor(float64(n+1) * p))
	if mode > n {
		mode = n
	}
	lgn1, _ := math.Lgamma(float64(n + 1))
	lgk, _ := math.Lgamma(float64(mode + 1))
	lgnk, _ := math.Lgamma(float64(n - mode + 1))
	pm := math.Exp(lgn1 - lgk - lgnk + float64(mode)*math.Log(p) + float64(n-mode)*math.Log1p(-p))
	u := r.Float64() - pm
	if u < 0 {
		return mode
	}
	// Zig-zag inverse CDF from the mode; odds is p/(1−p), the factor the
	// ratio recurrences share.
	odds := p / (1 - p)
	up, down := mode, mode
	pu, pd := pm, pm
	for up < n || down > 0 {
		if up < n {
			pu *= odds * float64(n-up) / float64(up+1)
			up++
			u -= pu
			if u < 0 {
				return up
			}
		}
		if down > 0 {
			pd *= float64(down) / (odds * float64(n-down+1))
			down--
			u -= pd
			if u < 0 {
				return down
			}
		}
	}
	// Float crumbs: the pmf sums to 1 only up to rounding. The mode is the
	// most defensible owner of the leftover sliver.
	return mode
}

// Hypergeometric returns the number of "success" items in a uniform sample
// of draws items taken without replacement from a population of total items
// containing success successes. It consumes draws Int63n draws for
// draws ≤ 32 and exactly one Float64 otherwise.
func (r *RNG) Hypergeometric(total, success, draws int64) int64 {
	if total < 0 || success < 0 || success > total || draws < 0 || draws > total {
		panic("engine: Hypergeometric with inconsistent parameters")
	}
	lo := draws + success - total
	if lo < 0 {
		lo = 0
	}
	hi := draws
	if success < hi {
		hi = success
	}
	if lo >= hi {
		return lo
	}
	if draws <= smallTrials {
		// Sequential urn: each draw succeeds with the current proportion.
		var got int64
		rem, succ := total, success
		for i := int64(0); i < draws; i++ {
			if r.Int63n(rem) < succ {
				got++
				succ--
			}
			rem--
		}
		return got
	}
	fail := total - success
	mode := (draws + 1) * (success + 1) / (total + 2)
	if mode < lo {
		mode = lo
	}
	if mode > hi {
		mode = hi
	}
	pm := math.Exp(lnChoose(success, mode) + lnChoose(fail, draws-mode) - lnChoose(total, draws))
	u := r.Float64() - pm
	if u < 0 {
		return mode
	}
	up, down := mode, mode
	pu, pd := pm, pm
	for up < hi || down > lo {
		if up < hi {
			// pmf(k+1)/pmf(k) = (success−k)(draws−k) / ((k+1)(fail−draws+k+1))
			pu *= float64(success-up) * float64(draws-up) / (float64(up+1) * float64(fail-draws+up+1))
			up++
			u -= pu
			if u < 0 {
				return up
			}
		}
		if down > lo {
			// pmf(k−1)/pmf(k) = k(fail−draws+k) / ((success−k+1)(draws−k+1))
			pd *= float64(down) * float64(fail-draws+down) / (float64(success-down+1) * float64(draws-down+1))
			down--
			u -= pd
			if u < 0 {
				return down
			}
		}
	}
	return mode
}

// lnChoose returns ln C(a, b) for 0 ≤ b ≤ a.
func lnChoose(a, b int64) float64 {
	l1, _ := math.Lgamma(float64(a + 1))
	l2, _ := math.Lgamma(float64(b + 1))
	l3, _ := math.Lgamma(float64(a - b + 1))
	return l1 - l2 - l3
}

// collisionRunLen samples the length ℓ ≥ 1 of the maximal prefix of
// scheduler activations whose participant pairs are pairwise disjoint (all
// 2ℓ agents distinct — "collision-free"), in a population of n agents. The
// survival function is
//
//	S(k) = P(ℓ ≥ k) = n! / ((n−2k)! · (n(n−1))^k)     for 2k ≤ n,
//
// with S(1) = 1 (the first activation can't collide with anything) and
// S(k) = 0 beyond k = ⌊n/2⌋. The sample inverts S by bracket + binary
// search on lnS, seeded at the asymptotic solution of lnS(k) ≈ −2k²/n, so
// a draw costs O(log) Lgamma evaluations. lgN1 and lnPairs are
// ln Γ(n+1) and ln(n(n−1)), precomputed by the caller (n is fixed for the
// lifetime of a runner).
func (r *RNG) collisionRunLen(n int64, lgN1, lnPairs float64) int64 {
	max := n / 2
	if max <= 1 {
		return 1
	}
	u := 1 - r.Float64() // (0, 1]
	lu := math.Log(u)
	lnS := func(k int64) float64 {
		lg, _ := math.Lgamma(float64(n - 2*k + 1))
		return lgN1 - lg - float64(k)*lnPairs
	}
	// Invariant: lnS(lo) ≥ lu (lo=1 always qualifies), lnS(hi) < lu where
	// hi = max+1 stands for "past the support" (S there is 0 ≤ u).
	lo, hi := int64(1), max+1
	if guess := int64(math.Ceil(math.Sqrt(-float64(n) * lu / 2))); guess > lo && guess < hi {
		if lnS(guess) >= lu {
			lo = guess
		} else {
			hi = guess
		}
	}
	for step := int64(1); lo+step < hi; step *= 2 {
		if lnS(lo+step) >= lu {
			lo += step
		} else {
			hi = lo + step
			break
		}
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if lnS(mid) >= lu {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
