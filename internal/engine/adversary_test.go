package engine

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

func TestStepPairDrivesChosenAgents(t *testing.T) {
	p, _, infected := epidemicProtocol()
	pop := NewDenseInit(10, func(i int) bitmask.State {
		var s bitmask.State
		if i == 0 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(1))
	// Drive only the pair (0, 1): agent 1 gets infected, nobody else.
	for k := 0; k < 20; k++ {
		r.StepPair(0, 1)
	}
	g := bitmask.Compile(bitmask.Is(infected))
	if !g.Match(pop.Agent(1)) {
		t.Error("driven responder not infected")
	}
	for i := 2; i < 10; i++ {
		if g.Match(pop.Agent(i)) {
			t.Errorf("agent %d infected without ever interacting", i)
		}
	}
}

func TestStepPairRejectsSelfInteraction(t *testing.T) {
	p, _, _ := epidemicProtocol()
	r := NewRunner(p, NewDense(4), NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Error("self-interaction did not panic")
		}
	}()
	r.StepPair(2, 2)
}

// TestRunIsolatedStarvesOutsiders is the paper's isolation adversary: a
// fair-looking scheduler restricted to a subset leaves everyone else
// untouched, which is why convergence is not locally detectable.
func TestRunIsolatedStarvesOutsiders(t *testing.T) {
	p, _, infected := epidemicProtocol()
	const n = 50
	pop := NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < 5 {
			s = infected.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(3))
	live := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.RunIsolated(live, 2000)
	g := bitmask.Compile(bitmask.Is(infected))
	for _, i := range live {
		if !g.Match(pop.Agent(i)) {
			t.Errorf("live agent %d not infected after 2000 isolated steps", i)
		}
	}
	for i := 8; i < n; i++ {
		if g.Match(pop.Agent(i)) {
			t.Errorf("starved agent %d changed state", i)
		}
	}
}

// TestGuaranteedBehaviorUnderAdversary drives a compiled-style Z-flag
// epidemic with an empty source under an adversarial schedule: the flag
// must never appear (Definition 2.1, second condition).
func TestGuaranteedBehaviorUnderAdversary(t *testing.T) {
	sp := bitmask.NewSpace()
	src := sp.Bool("Src")
	z := sp.Bool("Z")
	rs := rules.NewRuleset(sp)
	rs.AddGroup("exists", 1,
		rules.MustNew(bitmask.And(bitmask.Is(src), bitmask.IsNot(z)), bitmask.True(), bitmask.Is(z), bitmask.True()),
		rules.MustNew(bitmask.Is(z), bitmask.IsNot(z), bitmask.True(), bitmask.Is(z)),
	)
	p := CompileProtocol(rs)
	const n = 40
	pop := NewDense(n) // source empty everywhere
	r := NewRunner(p, pop, NewRNG(9))
	gZ := bitmask.Compile(bitmask.Is(z))
	// Mix of uniform and adversarial scheduling.
	r.RunRounds(50)
	r.RunIsolated([]int{0, 1, 2}, 500)
	for i := 0; i < 300; i++ {
		r.StepPair(r.RNG.Intn(n/2), n/2+r.RNG.Intn(n/2))
	}
	if got := pop.Count(gZ); got != 0 {
		t.Errorf("Z flag appeared on %d agents with an empty source", got)
	}
}

// TestMatchingSchedulerEquivalence: the paper's analyses carry over from
// the sequential to the random-matching scheduler (§5.3 footnote). Check
// the shape empirically: absorption time of the cancellation protocol
// agrees between schedulers within sampling error.
func TestMatchingSchedulerEquivalence(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.Is(b),
		bitmask.And(bitmask.IsNot(a), bitmask.IsNot(b)), bitmask.And(bitmask.IsNot(a), bitmask.IsNot(b)))
	rs.Add(bitmask.Is(b), bitmask.Is(a),
		bitmask.And(bitmask.IsNot(a), bitmask.IsNot(b)), bitmask.And(bitmask.IsNot(a), bitmask.IsNot(b)))
	p := CompileProtocol(rs)

	const n = 400
	mk := func() *Dense {
		return NewDenseInit(n, func(i int) bitmask.State {
			var s bitmask.State
			switch {
			case i < 150:
				s = a.Set(s, true)
			case i < 300:
				s = b.Set(s, true)
			}
			return s
		})
	}
	gB := bitmask.Compile(bitmask.Is(b))
	const seeds = 12
	var seq, match float64
	for seed := uint64(0); seed < seeds; seed++ {
		pop := mk()
		r := NewRunner(p, pop, NewRNG(seed))
		tr := r.Track("B", bitmask.Is(b))
		rounds, ok := r.RunUntil(func(*Runner) bool { return tr.Count() == 0 }, 1, 1e5)
		if !ok {
			t.Fatal("sequential did not absorb")
		}
		seq += rounds

		pop2 := mk()
		r2 := NewRunner(p, pop2, NewRNG(seed+1000))
		for r2.Rounds() < 1e5 && pop2.Count(gB) > 0 {
			r2.MatchingRound()
		}
		if pop2.Count(gB) > 0 {
			t.Fatal("matching did not absorb")
		}
		match += r2.Rounds()
	}
	seq /= seeds
	match /= seeds
	ratio := seq / match
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("scheduler absorption times diverge: sequential %.0f vs matching %.0f rounds", seq, match)
	}
}
