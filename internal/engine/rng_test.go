package engine

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(54321)
	same := 0
	a = NewRNG(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{1, 2, 3, 7, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(7)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ≈%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(9)
	const n = 100
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, n)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("value %d appears twice after shuffle", x)
		}
		seen[x] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(11)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / trials
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.1*want+0.05 {
			t.Errorf("Geometric(%v) mean = %v, want ≈%v", p, mean, want)
		}
	}
	if NewRNG(1).Geometric(1.5) != 0 {
		t.Error("Geometric(p≥1) != 0")
	}
}

func TestInt63nBounds(t *testing.T) {
	r := NewRNG(13)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n = %d out of range", v)
		}
	}
}
