package engine_test

import (
	"testing"

	"popkit/internal/baseline"
	"popkit/internal/engine"
)

// Kernel step benchmarks. Each iteration is one LeapStep; for the count and
// batch runners that is one fired interaction (plus the geometric leap over
// the non-matching stretch before it), for the aggregate runner one whole
// collision-free run. Since the units of work differ, every benchmark also
// reports ns/interaction — simulated scheduler activations per wall-clock
// nanosecond — which is the number the kernels compete on and the one
// benchdiff gates.

// reportPerInteraction normalizes the timed section by the interactions
// simulated inside it.
func reportPerInteraction(b *testing.B, interactions uint64) {
	if interactions > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(interactions), "ns/interaction")
	}
}

// e11Horizon bounds each E11 trajectory at 20n interactions. Without a
// bound, a trajectory driven to silence spends almost all its interactions
// inside a handful of tail leaps (q → Θ(1/n) during the final
// annihilations), and ns/interaction degenerates into a noisy measure of
// how many tails fit in b.N — the horizon keeps the metric on the active
// phase, matching how popbench -kernel measures the crossover table.
const e11Horizon = 20

// BenchmarkCountStep drives the counted kernel on the E11 4-state
// exact-majority baseline [DV12] at n = 10^6, gap 1 — the workload whose
// Θ(n log n) round count makes per-firing cost the wall-clock bottleneck.
func BenchmarkCountStep(b *testing.B) {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	const n = 1_000_000
	rng := engine.NewRNG(1)
	pop := em.Population(n/2+1, n/2)
	cr := engine.NewCountRunner(proto, pop, rng)
	var interactions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cr.LeapStep(e11Horizon*n) || cr.Interactions >= e11Horizon*n {
			b.StopTimer()
			interactions += cr.Interactions
			pop = em.Population(n/2+1, n/2)
			cr = engine.NewCountRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
	b.StopTimer()
	reportPerInteraction(b, interactions+cr.Interactions)
}

// BenchmarkBatchStep is BenchmarkCountStep on the batched runner: same
// chain, same workload, but forced picks skip their RNG draws.
func BenchmarkBatchStep(b *testing.B) {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	const n = 1_000_000
	rng := engine.NewRNG(1)
	pop := em.Population(n/2+1, n/2)
	br := engine.NewBatchRunner(proto, pop, rng)
	var interactions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !br.LeapStep(e11Horizon*n) || br.Interactions >= e11Horizon*n {
			b.StopTimer()
			interactions += br.Interactions
			pop = em.Population(n/2+1, n/2)
			br = engine.NewBatchRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
	b.StopTimer()
	reportPerInteraction(b, interactions+br.Interactions)
}

// BenchmarkBatchStepCoalescence drives the single-rule coalescence
// protocol, where every pick is forced and the batch runner's fast paths
// carry the entire firing.
func BenchmarkBatchStepCoalescence(b *testing.B) {
	cl := baseline.NewCoalescenceLeader()
	proto := engine.CompileProtocol(cl.Rules())
	const n = 1_000_000
	rng := engine.NewRNG(1)
	pop := cl.Population(n)
	br := engine.NewBatchRunner(proto, pop, rng)
	var interactions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !br.LeapStep(0) {
			b.StopTimer()
			interactions += br.Interactions
			pop = cl.Population(n)
			br = engine.NewBatchRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
	b.StopTimer()
	reportPerInteraction(b, interactions+br.Interactions)
}

// BenchmarkAggregateStep drives the aggregate kernel on the same E11
// workload at n = 10^8 — the regime the run-length decomposition exists
// for: each step resolves a whole collision-free run (≈ 0.63·√n ≈ 6300
// interactions here) through hypergeometric composition and binomial
// chains, so ns/interaction is the meaningful number, not ns/op.
func BenchmarkAggregateStep(b *testing.B) {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	const n = 100_000_000
	rng := engine.NewRNG(1)
	pop := em.Population(n/2+1, n/2)
	ar := engine.NewAggregateRunner(proto, pop, rng)
	var interactions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ar.LeapStep(e11Horizon*n) || ar.Interactions >= e11Horizon*n {
			b.StopTimer()
			interactions += ar.Interactions
			pop = em.Population(n/2+1, n/2)
			ar = engine.NewAggregateRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
	b.StopTimer()
	reportPerInteraction(b, interactions+ar.Interactions)
}
