package engine_test

import (
	"testing"

	"popkit/internal/baseline"
	"popkit/internal/engine"
)

// BenchmarkCountStep drives the counted kernel on the E11 4-state
// exact-majority baseline [DV12] at n = 10^6, gap 1 — the workload whose
// Θ(n log n) round count makes per-firing cost the wall-clock bottleneck.
// Each iteration is one LeapStep (one fired interaction plus the geometric
// leap over the non-matching stretch before it).
func BenchmarkCountStep(b *testing.B) {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	const n = 1_000_000
	rng := engine.NewRNG(1)
	pop := em.Population(n/2+1, n/2)
	cr := engine.NewCountRunner(proto, pop, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cr.LeapStep(0) {
			b.StopTimer()
			pop = em.Population(n/2+1, n/2)
			cr = engine.NewCountRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
}

// BenchmarkBatchStep is BenchmarkCountStep on the batched runner: same
// chain, same workload, but forced picks skip their RNG draws.
func BenchmarkBatchStep(b *testing.B) {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	const n = 1_000_000
	rng := engine.NewRNG(1)
	pop := em.Population(n/2+1, n/2)
	br := engine.NewBatchRunner(proto, pop, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !br.LeapStep(0) {
			b.StopTimer()
			pop = em.Population(n/2+1, n/2)
			br = engine.NewBatchRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
}

// BenchmarkBatchStepCoalescence drives the single-rule coalescence
// protocol, where every pick is forced and the batch runner's fast paths
// carry the entire firing.
func BenchmarkBatchStepCoalescence(b *testing.B) {
	cl := baseline.NewCoalescenceLeader()
	proto := engine.CompileProtocol(cl.Rules())
	const n = 1_000_000
	rng := engine.NewRNG(1)
	pop := cl.Population(n)
	br := engine.NewBatchRunner(proto, pop, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !br.LeapStep(0) {
			b.StopTimer()
			pop = cl.Population(n)
			br = engine.NewBatchRunner(proto, pop, rng)
			b.StartTimer()
		}
	}
}
