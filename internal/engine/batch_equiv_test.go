package engine_test

import (
	"math"
	"sort"
	"testing"

	"popkit/internal/baseline"
	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

// Statistical equivalence suite: BatchRunner skips RNG draws whose outcome
// is forced, so its streams differ from Runner's and CountRunner's — the
// claim is equality in distribution, not per-seed equality. Each test runs
// the same protocol under all three schedulers across a bank of seeds and
// compares hitting-time distributions with a two-sample KS statistic (and
// outcome frequencies with a chi-square statistic where the outcome is
// random). Seeds are fixed, so the tests are deterministic; the thresholds
// sit above the α = 0.001 critical values for the sample sizes used,
// chosen so that a genuine distributional bug (off-by-one in the leap, a
// biased pick) trips them while correct kernels pass with margin.

const equivSeeds = 150

// ksCrit is the two-sample KS threshold for 150-vs-150 samples: the
// α = 0.001 critical value is 1.95·√(2/150) ≈ 0.225.
const ksCrit = 0.25

// ksStat computes the two-sample Kolmogorov–Smirnov statistic.
func ksStat(xs, ys []float64) float64 {
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			i++
		} else {
			j++
		}
		if gap := math.Abs(float64(i)/float64(len(x)) - float64(j)/float64(len(y))); gap > d {
			d = gap
		}
	}
	return d
}

// hitSpec is one (protocol, stop condition) hitting-time experiment small
// enough to run under every scheduler: track counts the given formulas,
// done reads them (plus n) and decides whether the target configuration is
// reached.
type hitSpec struct {
	proto     *engine.Protocol
	counts    map[bitmask.State]int64
	track     []bitmask.Formula
	done      func(get func(i int) int64, n int64) bool
	maxRounds float64
	seedRoot  uint64
}

func (hs hitSpec) n() int64 {
	var n int64
	for _, k := range hs.counts {
		n += k
	}
	return n
}

// denseTimes measures hitting times under the dense per-interaction Runner.
func denseTimes(t *testing.T, hs hitSpec) []float64 {
	t.Helper()
	n := hs.n()
	times := make([]float64, 0, equivSeeds)
	for seed := uint64(0); seed < equivSeeds; seed++ {
		pop := engine.NewDense(int(n))
		i := 0
		for s, k := range hs.counts {
			for j := int64(0); j < k; j++ {
				pop.SetAgent(i, s)
				i++
			}
		}
		run := engine.NewRunner(hs.proto, pop, engine.NewRNG(engine.SplitSeed(hs.seedRoot, seed)))
		trs := make([]*engine.Tracker, len(hs.track))
		for ti, f := range hs.track {
			trs[ti] = run.Track("t", f)
		}
		get := func(i int) int64 { return int64(trs[i].Count()) }
		steps := uint64(hs.maxRounds * float64(n))
		ok := false
		for step := uint64(0); step < steps; step++ {
			if hs.done(get, n) {
				ok = true
				break
			}
			run.Step()
		}
		if !ok && !hs.done(get, n) {
			t.Fatalf("Runner: seed %d did not converge within %.0f rounds", seed, hs.maxRounds)
		}
		times = append(times, run.Rounds())
	}
	return times
}

// countedTimes measures hitting times under one of the counted kernels
// ("count", "batch", or "aggregate"), through the tracker-gated RunUntil
// path. The aggregate runner's leap fallback would make it identical to
// BatchRunner at these population sizes, so MinRunFirings is forced to 0 —
// every step exercises the run-decomposition path under test.
func countedTimes(t *testing.T, hs hitSpec, kind string) []float64 {
	t.Helper()
	times := make([]float64, 0, equivSeeds)
	for seed := uint64(0); seed < equivSeeds; seed++ {
		pop := engine.NewCounted(hs.counts)
		rng := engine.NewRNG(engine.SplitSeed(hs.seedRoot, seed))
		n := pop.N64()
		var rounds float64
		var ok bool
		switch kind {
		case "batch":
			run := engine.NewBatchRunner(hs.proto, pop, rng)
			trs := make([]*engine.CountTracker, len(hs.track))
			for ti, f := range hs.track {
				trs[ti] = run.Track("t", f)
			}
			get := func(i int) int64 { return trs[i].Count() }
			rounds, ok = run.RunUntil(func(*engine.BatchRunner) bool { return hs.done(get, n) }, hs.maxRounds)
		case "aggregate":
			run := engine.NewAggregateRunner(hs.proto, pop, rng)
			run.MinRunFirings = 0
			trs := make([]*engine.CountTracker, len(hs.track))
			for ti, f := range hs.track {
				trs[ti] = run.Track("t", f)
			}
			get := func(i int) int64 { return trs[i].Count() }
			rounds, ok = run.RunUntil(func(*engine.AggregateRunner) bool { return hs.done(get, n) }, hs.maxRounds)
		default:
			run := engine.NewCountRunner(hs.proto, pop, rng)
			trs := make([]*engine.CountTracker, len(hs.track))
			for ti, f := range hs.track {
				trs[ti] = run.Track("t", f)
			}
			get := func(i int) int64 { return trs[i].Count() }
			rounds, ok = run.RunUntil(func(*engine.CountRunner) bool { return hs.done(get, n) }, hs.maxRounds)
		}
		if !ok {
			t.Fatalf("%s: seed %d did not converge within %.0f rounds", kind, seed, hs.maxRounds)
		}
		times = append(times, rounds)
	}
	return times
}

func requireKS(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if d := ksStat(a, b); d > ksCrit {
		t.Errorf("%s: KS statistic %.3f exceeds %.3f", label, d, ksCrit)
	}
}

// TestBatchEquivCoalescence compares leader-coalescence hitting times
// (leaders == 1) at n = 256 across all three schedulers. Coalescence has a
// single rule, so BatchRunner's deterministic-rule fast path carries the
// whole run.
func TestBatchEquivCoalescence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	cl := baseline.NewCoalescenceLeader()
	leader := cl.L.Set(bitmask.State{}, true)
	hs := hitSpec{
		proto:     engine.CompileProtocol(cl.Rules()),
		counts:    map[bitmask.State]int64{leader: 256},
		track:     []bitmask.Formula{bitmask.Is(cl.L)},
		done:      func(get func(int) int64, n int64) bool { return get(0) == 1 },
		maxRounds: 100_000,
		seedRoot:  12345,
	}
	dense := denseTimes(t, hs)
	count := countedTimes(t, hs, "count")
	batch := countedTimes(t, hs, "batch")
	agg := countedTimes(t, hs, "aggregate")
	requireKS(t, "coalescence count-vs-batch", count, batch)
	requireKS(t, "coalescence dense-vs-batch", dense, batch)
	requireKS(t, "coalescence dense-vs-count", dense, count)
	requireKS(t, "coalescence count-vs-aggregate", count, agg)
	requireKS(t, "coalescence dense-vs-aggregate", dense, agg)
}

// TestBatchEquivExactMajority compares decision times of the 4-state exact
// majority at n = 128, gap 4, and checks that every scheduler decides for
// the true majority on every seed (the protocol is always correct).
func TestBatchEquivExactMajority(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	em := baseline.NewExactMajority4()
	sA := em.Strong.Set(em.IsA.Set(bitmask.State{}, true), true)
	sB := em.Strong.Set(bitmask.State{}, true)
	hs := hitSpec{
		proto:  engine.CompileProtocol(em.Rules()),
		counts: map[bitmask.State]int64{sA: 66, sB: 62},
		track:  []bitmask.Formula{bitmask.Is(em.IsA)},
		done: func(get func(int) int64, n int64) bool {
			a := get(0)
			if a == 0 {
				panic("exact majority decided for the minority")
			}
			return a == n
		},
		maxRounds: 100_000,
		seedRoot:  777,
	}
	dense := denseTimes(t, hs)
	count := countedTimes(t, hs, "count")
	batch := countedTimes(t, hs, "batch")
	agg := countedTimes(t, hs, "aggregate")
	requireKS(t, "exact-majority count-vs-batch", count, batch)
	requireKS(t, "exact-majority dense-vs-batch", dense, batch)
	requireKS(t, "exact-majority count-vs-aggregate", count, agg)
	requireKS(t, "exact-majority dense-vs-aggregate", dense, agg)
}

// TestBatchEquivApproxMajorityOutcome runs the 3-state approximate
// majority at n = 128 with a gap too small to guarantee correctness, so
// the winner is genuinely random, and compares both the winner frequencies
// (chi-square) and the convergence-time distributions between the two
// counted schedulers.
func TestBatchEquivApproxMajorityOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	am := baseline.NewApproxMajority()
	sA := am.A.Set(bitmask.State{}, true)
	sB := am.B.Set(bitmask.State{}, true)
	proto := engine.CompileProtocol(am.Rules())

	sample := func(kind string) (aWins int, times []float64) {
		for seed := uint64(0); seed < equivSeeds; seed++ {
			pop := engine.NewCounted(map[bitmask.State]int64{sA: 66, sB: 62})
			rng := engine.NewRNG(engine.SplitSeed(999, seed))
			var rounds float64
			var ok bool
			var aLeft int64
			switch kind {
			case "batch":
				run := engine.NewBatchRunner(proto, pop, rng)
				ta := run.Track("a", bitmask.Is(am.A))
				tb := run.Track("b", bitmask.Is(am.B))
				rounds, ok = run.RunUntil(func(*engine.BatchRunner) bool {
					return ta.Count() == 0 || tb.Count() == 0
				}, 100_000)
				aLeft = ta.Count()
			case "aggregate":
				run := engine.NewAggregateRunner(proto, pop, rng)
				run.MinRunFirings = 0
				ta := run.Track("a", bitmask.Is(am.A))
				tb := run.Track("b", bitmask.Is(am.B))
				rounds, ok = run.RunUntil(func(*engine.AggregateRunner) bool {
					return ta.Count() == 0 || tb.Count() == 0
				}, 100_000)
				aLeft = ta.Count()
			default:
				run := engine.NewCountRunner(proto, pop, rng)
				ta := run.Track("a", bitmask.Is(am.A))
				tb := run.Track("b", bitmask.Is(am.B))
				rounds, ok = run.RunUntil(func(*engine.CountRunner) bool {
					return ta.Count() == 0 || tb.Count() == 0
				}, 100_000)
				aLeft = ta.Count()
			}
			if !ok {
				t.Fatalf("seed %d did not converge", seed)
			}
			if aLeft > 0 {
				aWins++
			}
			times = append(times, rounds)
		}
		return aWins, times
	}

	cw, ct := sample("count")
	bw, bt := sample("batch")
	aw, at := sample("aggregate")
	requireKS(t, "approx-majority count-vs-batch times", ct, bt)
	requireKS(t, "approx-majority count-vs-aggregate times", ct, at)

	// 3×2 chi-square on (runner × winner); χ²(2 dof) at α = 0.001 is 13.82.
	obs := [3][2]float64{
		{float64(cw), float64(equivSeeds - cw)},
		{float64(bw), float64(equivSeeds - bw)},
		{float64(aw), float64(equivSeeds - aw)},
	}
	var chi2 float64
	for c := 0; c < 2; c++ {
		colTot := obs[0][c] + obs[1][c] + obs[2][c]
		exp := colTot / 3
		if exp == 0 {
			continue
		}
		for r := 0; r < 3; r++ {
			chi2 += (obs[r][c] - exp) * (obs[r][c] - exp) / exp
		}
	}
	if chi2 > 13.82 {
		t.Errorf("approx-majority winner split: chi-square %.2f exceeds 13.82 (count %d, batch %d, aggregate %d A-wins of %d)",
			chi2, cw, bw, aw, equivSeeds)
	}
}

// TestAggregateEquivFiredCounts cross-validates the aggregate kernel's
// per-rule firing accounting against BatchRunner's: for a fixed interaction
// horizon of the 3-state approximate majority, each rule's firing count is
// itself a random variable whose distribution must agree between the
// kernels. The aggregate path resolves firings through hypergeometric
// composition and binomial chains rather than one pick per firing, so this
// is the test that would catch a mis-weighted chain.
func TestAggregateEquivFiredCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	am := baseline.NewApproxMajority()
	sA := am.A.Set(bitmask.State{}, true)
	sB := am.B.Set(bitmask.State{}, true)
	proto := engine.CompileProtocol(am.Rules())
	const horizon = 2048 // interactions; n=128, mid-flight (not converged)

	nRules := len(am.Rules().Rules)
	sample := func(kind string) [][]float64 {
		perRule := make([][]float64, nRules)
		for seed := uint64(0); seed < equivSeeds; seed++ {
			pop := engine.NewCounted(map[bitmask.State]int64{sA: 66, sB: 62})
			rng := engine.NewRNG(engine.SplitSeed(4242, seed))
			var fired []uint64
			var interactions uint64
			if kind == "batch" {
				run := engine.NewBatchRunner(proto, pop, rng)
				for run.Interactions < horizon {
					if !run.LeapStep(horizon) {
						break
					}
				}
				fired, interactions = run.Fired, run.Interactions
			} else {
				run := engine.NewAggregateRunner(proto, pop, rng)
				run.MinRunFirings = 0
				for run.Interactions < horizon {
					if !run.LeapStep(horizon) {
						break
					}
				}
				fired, interactions = run.Fired, run.Interactions
				var tot uint64
				for _, k := range fired {
					tot += k
				}
				if tot != run.FiredTotal {
					t.Fatalf("aggregate: Fired sums to %d but FiredTotal is %d", tot, run.FiredTotal)
				}
				if run.FiredTotal > run.Interactions {
					t.Fatalf("aggregate: %d firings exceed %d interactions", run.FiredTotal, run.Interactions)
				}
			}
			if interactions > horizon {
				t.Fatalf("%s: ran %d interactions past horizon %d", kind, interactions, horizon)
			}
			for i := 0; i < nRules; i++ {
				perRule[i] = append(perRule[i], float64(fired[i]))
			}
		}
		return perRule
	}

	batch := sample("batch")
	agg := sample("aggregate")
	for i := 0; i < nRules; i++ {
		requireKS(t, "approx-majority rule firing counts", batch[i], agg[i])
	}
}
