package engine_test

import (
	"math"
	"sort"
	"testing"

	"popkit/internal/baseline"
	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

// Statistical equivalence suite: BatchRunner skips RNG draws whose outcome
// is forced, so its streams differ from Runner's and CountRunner's — the
// claim is equality in distribution, not per-seed equality. Each test runs
// the same protocol under all three schedulers across a bank of seeds and
// compares hitting-time distributions with a two-sample KS statistic (and
// outcome frequencies with a chi-square statistic where the outcome is
// random). Seeds are fixed, so the tests are deterministic; the thresholds
// sit above the α = 0.001 critical values for the sample sizes used,
// chosen so that a genuine distributional bug (off-by-one in the leap, a
// biased pick) trips them while correct kernels pass with margin.

const equivSeeds = 150

// ksCrit is the two-sample KS threshold for 150-vs-150 samples: the
// α = 0.001 critical value is 1.95·√(2/150) ≈ 0.225.
const ksCrit = 0.25

// ksStat computes the two-sample Kolmogorov–Smirnov statistic.
func ksStat(xs, ys []float64) float64 {
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			i++
		} else {
			j++
		}
		if gap := math.Abs(float64(i)/float64(len(x)) - float64(j)/float64(len(y))); gap > d {
			d = gap
		}
	}
	return d
}

// hitSpec is one (protocol, stop condition) hitting-time experiment small
// enough to run under every scheduler: track counts the given formulas,
// done reads them (plus n) and decides whether the target configuration is
// reached.
type hitSpec struct {
	proto     *engine.Protocol
	counts    map[bitmask.State]int64
	track     []bitmask.Formula
	done      func(get func(i int) int64, n int64) bool
	maxRounds float64
	seedRoot  uint64
}

func (hs hitSpec) n() int64 {
	var n int64
	for _, k := range hs.counts {
		n += k
	}
	return n
}

// denseTimes measures hitting times under the dense per-interaction Runner.
func denseTimes(t *testing.T, hs hitSpec) []float64 {
	t.Helper()
	n := hs.n()
	times := make([]float64, 0, equivSeeds)
	for seed := uint64(0); seed < equivSeeds; seed++ {
		pop := engine.NewDense(int(n))
		i := 0
		for s, k := range hs.counts {
			for j := int64(0); j < k; j++ {
				pop.SetAgent(i, s)
				i++
			}
		}
		run := engine.NewRunner(hs.proto, pop, engine.NewRNG(engine.SplitSeed(hs.seedRoot, seed)))
		trs := make([]*engine.Tracker, len(hs.track))
		for ti, f := range hs.track {
			trs[ti] = run.Track("t", f)
		}
		get := func(i int) int64 { return int64(trs[i].Count()) }
		steps := uint64(hs.maxRounds * float64(n))
		ok := false
		for step := uint64(0); step < steps; step++ {
			if hs.done(get, n) {
				ok = true
				break
			}
			run.Step()
		}
		if !ok && !hs.done(get, n) {
			t.Fatalf("Runner: seed %d did not converge within %.0f rounds", seed, hs.maxRounds)
		}
		times = append(times, run.Rounds())
	}
	return times
}

// countedTimes measures hitting times under CountRunner (batch=false) or
// BatchRunner (batch=true), through the tracker-gated RunUntil path.
func countedTimes(t *testing.T, hs hitSpec, batch bool) []float64 {
	t.Helper()
	name := "CountRunner"
	if batch {
		name = "BatchRunner"
	}
	times := make([]float64, 0, equivSeeds)
	for seed := uint64(0); seed < equivSeeds; seed++ {
		pop := engine.NewCounted(hs.counts)
		rng := engine.NewRNG(engine.SplitSeed(hs.seedRoot, seed))
		n := pop.N64()
		var rounds float64
		var ok bool
		if batch {
			run := engine.NewBatchRunner(hs.proto, pop, rng)
			trs := make([]*engine.CountTracker, len(hs.track))
			for ti, f := range hs.track {
				trs[ti] = run.Track("t", f)
			}
			get := func(i int) int64 { return trs[i].Count() }
			rounds, ok = run.RunUntil(func(*engine.BatchRunner) bool { return hs.done(get, n) }, hs.maxRounds)
		} else {
			run := engine.NewCountRunner(hs.proto, pop, rng)
			trs := make([]*engine.CountTracker, len(hs.track))
			for ti, f := range hs.track {
				trs[ti] = run.Track("t", f)
			}
			get := func(i int) int64 { return trs[i].Count() }
			rounds, ok = run.RunUntil(func(*engine.CountRunner) bool { return hs.done(get, n) }, hs.maxRounds)
		}
		if !ok {
			t.Fatalf("%s: seed %d did not converge within %.0f rounds", name, seed, hs.maxRounds)
		}
		times = append(times, rounds)
	}
	return times
}

func requireKS(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if d := ksStat(a, b); d > ksCrit {
		t.Errorf("%s: KS statistic %.3f exceeds %.3f", label, d, ksCrit)
	}
}

// TestBatchEquivCoalescence compares leader-coalescence hitting times
// (leaders == 1) at n = 256 across all three schedulers. Coalescence has a
// single rule, so BatchRunner's deterministic-rule fast path carries the
// whole run.
func TestBatchEquivCoalescence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	cl := baseline.NewCoalescenceLeader()
	leader := cl.L.Set(bitmask.State{}, true)
	hs := hitSpec{
		proto:     engine.CompileProtocol(cl.Rules()),
		counts:    map[bitmask.State]int64{leader: 256},
		track:     []bitmask.Formula{bitmask.Is(cl.L)},
		done:      func(get func(int) int64, n int64) bool { return get(0) == 1 },
		maxRounds: 100_000,
		seedRoot:  12345,
	}
	dense := denseTimes(t, hs)
	count := countedTimes(t, hs, false)
	batch := countedTimes(t, hs, true)
	requireKS(t, "coalescence count-vs-batch", count, batch)
	requireKS(t, "coalescence dense-vs-batch", dense, batch)
	requireKS(t, "coalescence dense-vs-count", dense, count)
}

// TestBatchEquivExactMajority compares decision times of the 4-state exact
// majority at n = 128, gap 4, and checks that every scheduler decides for
// the true majority on every seed (the protocol is always correct).
func TestBatchEquivExactMajority(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	em := baseline.NewExactMajority4()
	sA := em.Strong.Set(em.IsA.Set(bitmask.State{}, true), true)
	sB := em.Strong.Set(bitmask.State{}, true)
	hs := hitSpec{
		proto:  engine.CompileProtocol(em.Rules()),
		counts: map[bitmask.State]int64{sA: 66, sB: 62},
		track:  []bitmask.Formula{bitmask.Is(em.IsA)},
		done: func(get func(int) int64, n int64) bool {
			a := get(0)
			if a == 0 {
				panic("exact majority decided for the minority")
			}
			return a == n
		},
		maxRounds: 100_000,
		seedRoot:  777,
	}
	dense := denseTimes(t, hs)
	count := countedTimes(t, hs, false)
	batch := countedTimes(t, hs, true)
	requireKS(t, "exact-majority count-vs-batch", count, batch)
	requireKS(t, "exact-majority dense-vs-batch", dense, batch)
}

// TestBatchEquivApproxMajorityOutcome runs the 3-state approximate
// majority at n = 128 with a gap too small to guarantee correctness, so
// the winner is genuinely random, and compares both the winner frequencies
// (chi-square) and the convergence-time distributions between the two
// counted schedulers.
func TestBatchEquivApproxMajorityOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	am := baseline.NewApproxMajority()
	sA := am.A.Set(bitmask.State{}, true)
	sB := am.B.Set(bitmask.State{}, true)
	proto := engine.CompileProtocol(am.Rules())

	sample := func(batch bool) (aWins int, times []float64) {
		for seed := uint64(0); seed < equivSeeds; seed++ {
			pop := engine.NewCounted(map[bitmask.State]int64{sA: 66, sB: 62})
			rng := engine.NewRNG(engine.SplitSeed(999, seed))
			var rounds float64
			var ok bool
			var aLeft int64
			if batch {
				run := engine.NewBatchRunner(proto, pop, rng)
				ta := run.Track("a", bitmask.Is(am.A))
				tb := run.Track("b", bitmask.Is(am.B))
				rounds, ok = run.RunUntil(func(*engine.BatchRunner) bool {
					return ta.Count() == 0 || tb.Count() == 0
				}, 100_000)
				aLeft = ta.Count()
			} else {
				run := engine.NewCountRunner(proto, pop, rng)
				ta := run.Track("a", bitmask.Is(am.A))
				tb := run.Track("b", bitmask.Is(am.B))
				rounds, ok = run.RunUntil(func(*engine.CountRunner) bool {
					return ta.Count() == 0 || tb.Count() == 0
				}, 100_000)
				aLeft = ta.Count()
			}
			if !ok {
				t.Fatalf("seed %d did not converge", seed)
			}
			if aLeft > 0 {
				aWins++
			}
			times = append(times, rounds)
		}
		return aWins, times
	}

	cw, ct := sample(false)
	bw, bt := sample(true)
	requireKS(t, "approx-majority count-vs-batch times", ct, bt)

	// 2×2 chi-square on (runner × winner); χ²(1 dof) at α = 0.001 is 10.83.
	obs := [2][2]float64{
		{float64(cw), float64(equivSeeds - cw)},
		{float64(bw), float64(equivSeeds - bw)},
	}
	var chi2 float64
	for c := 0; c < 2; c++ {
		colTot := obs[0][c] + obs[1][c]
		exp := colTot / 2
		if exp == 0 {
			continue
		}
		for r := 0; r < 2; r++ {
			chi2 += (obs[r][c] - exp) * (obs[r][c] - exp) / exp
		}
	}
	if chi2 > 10.83 {
		t.Errorf("approx-majority winner split: chi-square %.2f exceeds 10.83 (count %d/%d, batch %d/%d A-wins)",
			chi2, cw, equivSeeds, bw, equivSeeds)
	}
}
