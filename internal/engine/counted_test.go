package engine

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

func TestCountedBasics(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	sA := a.Set(bitmask.State{}, true)
	pop := NewCounted(map[bitmask.State]int64{
		{}: 70,
		sA: 30,
	})
	if pop.N() != 100 {
		t.Fatalf("N = %d", pop.N())
	}
	if pop.NumSpecies() != 2 {
		t.Fatalf("NumSpecies = %d", pop.NumSpecies())
	}
	if got := pop.CountFormula(bitmask.Is(a)); got != 30 {
		t.Errorf("Count(A) = %d", got)
	}
	if got := pop.CountState(sA); got != 30 {
		t.Errorf("CountState = %d", got)
	}
	total := int64(0)
	pop.ForEach(func(_ bitmask.State, c int64) { total += c })
	if total != 100 {
		t.Errorf("ForEach total = %d", total)
	}
}

func TestCountedRejectsBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count did not panic")
		}
	}()
	NewCounted(map[bitmask.State]int64{{}: -1, {Lo: 1}: 10})
}

// TestCountRunnerAgreesWithDense runs the same cancellation protocol on both
// engines with many seeds and compares the distribution of the absolute
// survivor count. This is the exactness check for the counted engine.
func TestCountRunnerAgreesWithDense(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	rs := rules.NewRuleset(sp)
	// Cancellation: (A)+(B) → (¬A)+(¬B); absorbing once one side is gone.
	rs.Add(bitmask.Is(a), bitmask.Is(b),
		bitmask.And(bitmask.IsNot(a), bitmask.IsNot(b)), bitmask.And(bitmask.IsNot(a), bitmask.IsNot(b)))
	p := CompileProtocol(rs)

	const n = 300
	const nA, nB = 180, 120
	const seeds = 30
	gA := bitmask.Compile(bitmask.Is(a))
	gB := bitmask.Compile(bitmask.Is(b))

	var denseRounds, countRounds float64
	for seed := uint64(0); seed < seeds; seed++ {
		pop := NewDenseInit(n, func(k int) bitmask.State {
			var s bitmask.State
			switch {
			case k < nA:
				s = a.Set(s, true)
			case k < nA+nB:
				s = b.Set(s, true)
			}
			return s
		})
		r := NewRunner(p, pop, NewRNG(seed))
		trB := r.Track("B", bitmask.Is(b))
		rounds, ok := r.RunUntil(func(*Runner) bool { return trB.Count() == 0 }, 1, 1e6)
		if !ok {
			t.Fatalf("dense run %d did not absorb", seed)
		}
		if pop.Count(gA) != nA-nB {
			t.Fatalf("dense survivors = %d, want %d", pop.Count(gA), nA-nB)
		}
		denseRounds += rounds
	}
	sA := a.Set(bitmask.State{}, true)
	sB := b.Set(bitmask.State{}, true)
	for seed := uint64(100); seed < 100+seeds; seed++ {
		pop := NewCounted(map[bitmask.State]int64{
			sA: nA, sB: nB, {}: n - nA - nB,
		})
		cr := NewCountRunner(p, pop, NewRNG(seed))
		rounds, ok := cr.RunUntil(func(c *CountRunner) bool { return c.Pop.Count(gB) == 0 }, 1e6)
		if !ok {
			t.Fatalf("counted run %d did not absorb", seed)
		}
		if pop.Count(gA) != nA-nB {
			t.Fatalf("counted survivors = %d, want %d", pop.Count(gA), nA-nB)
		}
		countRounds += rounds
	}
	denseMean := denseRounds / seeds
	countMean := countRounds / seeds
	// The two engines simulate the same chain; their mean absorption times
	// must agree within sampling error (generous 35% tolerance).
	if math.Abs(denseMean-countMean) > 0.35*math.Max(denseMean, countMean) {
		t.Errorf("absorption time mismatch: dense %.1f vs counted %.1f rounds", denseMean, countMean)
	}
}

func TestCountRunnerStepEquivalence(t *testing.T) {
	// Literal Step on the counted engine preserves population size and
	// never goes negative across many random protocols steps.
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.IsNot(a), bitmask.Is(a), bitmask.Is(a))
	rs.Add(bitmask.IsNot(a), bitmask.Is(a), bitmask.IsNot(a), bitmask.IsNot(a))
	p := CompileProtocol(rs)
	sA := a.Set(bitmask.State{}, true)
	pop := NewCounted(map[bitmask.State]int64{sA: 50, {}: 50})
	cr := NewCountRunner(p, pop, NewRNG(42))
	for i := 0; i < 5000; i++ {
		cr.Step()
		if got := pop.N(); got != 100 {
			t.Fatalf("population size changed to %d", got)
		}
	}
	if cr.Interactions != 5000 {
		t.Errorf("Interactions = %d", cr.Interactions)
	}
}

func TestLeapStepSilentDetection(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.Is(a), bitmask.IsNot(a), bitmask.Is(a))
	p := CompileProtocol(rs)
	sA := a.Set(bitmask.State{}, true)
	pop := NewCounted(map[bitmask.State]int64{sA: 1, {}: 99})
	cr := NewCountRunner(p, pop, NewRNG(1))
	// Only one A agent: the rule (A)+(A) can never fire.
	if cr.LeapStep(0) {
		t.Error("LeapStep fired in a silent configuration")
	}
}

func TestLeapStepHonorsBudget(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.Is(a), bitmask.IsNot(a), bitmask.Is(a))
	p := CompileProtocol(rs)
	sA := a.Set(bitmask.State{}, true)
	// Two A's among 10^6: firing is rare, the budget hits first.
	pop := NewCounted(map[bitmask.State]int64{sA: 2, {}: 1_000_000 - 2})
	cr := NewCountRunner(p, pop, NewRNG(1))
	const budget = 1000
	if !cr.LeapStep(budget) {
		t.Fatal("LeapStep reported silence with a fireable rule")
	}
	if cr.Interactions > budget {
		t.Errorf("Interactions = %d exceeds budget %d", cr.Interactions, budget)
	}
}

// TestLeapMatchesTheory checks the geometric leap against the closed form:
// in the pure coalescence protocol (L)+(L) → (L)+(¬L), the expected number
// of interactions to go from 2 leaders to 1 is n(n−1)/2 (two specific
// agents must meet, ordered pairs both count).
func TestLeapMatchesTheory(t *testing.T) {
	sp := bitmask.NewSpace()
	l := sp.Bool("L")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(l), bitmask.Is(l), bitmask.Is(l), bitmask.IsNot(l))
	p := CompileProtocol(rs)
	sL := l.Set(bitmask.State{}, true)

	const n = 1000
	const seeds = 200
	var total float64
	for seed := uint64(0); seed < seeds; seed++ {
		pop := NewCounted(map[bitmask.State]int64{sL: 2, {}: n - 2})
		cr := NewCountRunner(p, pop, NewRNG(seed))
		if !cr.LeapStep(0) {
			t.Fatal("unexpected silence")
		}
		total += float64(cr.Interactions)
	}
	mean := total / seeds
	want := float64(n) * float64(n-1) / 2
	if math.Abs(mean-want) > 0.2*want {
		t.Errorf("mean interactions to coalesce = %.0f, want ≈ %.0f", mean, want)
	}
}

func TestCountedHistogramAndCompact(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	// Everyone becomes A on any interaction.
	rs.Add(bitmask.True(), bitmask.True(), bitmask.Is(a), bitmask.Is(a))
	p := CompileProtocol(rs)
	sA := a.Set(bitmask.State{}, true)
	pop := NewCounted(map[bitmask.State]int64{{}: 10, sA: 10})
	cr := NewCountRunner(p, pop, NewRNG(3))
	for i := 0; i < 200 && pop.CountState(bitmask.State{}) > 0; i++ {
		if !cr.LeapStep(0) {
			break
		}
	}
	h := pop.Histogram()
	if len(h) != 1 || h[sA] != 20 {
		t.Errorf("histogram after absorption = %v", h)
	}
	if pop.NumSpecies() != 1 {
		t.Errorf("NumSpecies = %d after compaction", pop.NumSpecies())
	}
}

// TestCountedSamplingUniform: the pair sampler draws agents proportionally
// to species counts, which shows up as matching-rate proportionality in a
// two-species tagging protocol.
func TestCountedSamplingUniform(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	h := sp.Bool("H")
	rs := rules.NewRuleset(sp)
	// Tag the initiator's H with the responder's A-ness.
	rs.AddGroup("probe", 1,
		rules.MustNew(bitmask.True(), bitmask.Is(a), bitmask.Is(h), bitmask.True()),
		rules.MustNew(bitmask.True(), bitmask.IsNot(a), bitmask.IsNot(h), bitmask.True()),
	)
	p := CompileProtocol(rs)
	sA := a.Set(bitmask.State{}, true)
	// 30% A agents.
	pop := NewCounted(map[bitmask.State]int64{sA: 300, {}: 700})
	cr := NewCountRunner(p, pop, NewRNG(7))
	hits := 0
	const trials = 20000
	gH := bitmask.Compile(bitmask.Is(h))
	for i := 0; i < trials; i++ {
		before := pop.Count(gH)
		cr.Step()
		after := pop.Count(gH)
		if after > before {
			hits++
		}
		// Reset the tag so each step is an independent probe.
		_ = before
	}
	// The responder is A with probability ≈ 0.3; H-count transitions
	// blank→tagged happen at a rate bounded by that. A crude bound: the
	// steady-state fraction of H-tagged agents approaches 0.3.
	frac := float64(pop.Count(gH)) / 1000
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("steady-state tag fraction %.3f, want ≈ 0.3", frac)
	}
}
