package engine

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/obs"
	"popkit/internal/rules"
)

// statsHistogramAfter mirrors histogramAfter but optionally attaches a
// RuleStats tally, returning both the final histogram and the tally.
func statsHistogramAfter(seed uint64, n int, rounds float64, withStats bool) (map[bitmask.State]int64, *obs.RuleStats, *Runner) {
	sp := bitmask.NewSpace()
	p, a, _ := twoRuleProtocol(sp)
	pop := NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i == 0 {
			s = a.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(seed))
	if withStats {
		r.Stats = obs.NewRuleStats(p.NumRules())
	}
	r.RunRounds(rounds)
	return pop.Histogram(), r.Stats, r
}

// TestStatsDoNotPerturbRNG is the overhead-guard determinism half: the same
// seed must yield the identical trajectory with and without RuleStats
// attached, because the tally happens strictly after every RNG draw.
func TestStatsDoNotPerturbRNG(t *testing.T) {
	plain, _, _ := statsHistogramAfter(4242, 400, 15, false)
	traced, stats, r := statsHistogramAfter(4242, 400, 15, true)
	if len(plain) != len(traced) {
		t.Fatalf("histogram support differs with stats: %v vs %v", plain, traced)
	}
	for s, c := range plain {
		if traced[s] != c {
			t.Fatalf("species %v count %d (plain) vs %d (stats)", s, c, traced[s])
		}
	}
	if stats.Total() == 0 {
		t.Fatal("instrumented run recorded no firings")
	}
	if stats.Total() > r.Interactions {
		t.Fatalf("firings %d exceed interactions %d", stats.Total(), r.Interactions)
	}
}

// TestCountRunnerStatsMatchDense cross-checks the counted kernel's tally:
// with identical seeds, CountRunner.Step and Runner fire the same rules in
// distribution, and the counted tally sums to the number of firings.
func TestCountRunnerStats(t *testing.T) {
	sp := bitmask.NewSpace()
	p, a, _ := twoRuleProtocol(sp)
	var sA, s0 bitmask.State
	sA = a.Set(sA, true)
	pop := NewCounted(map[bitmask.State]int64{sA: 10, s0: 290})
	r := NewCountRunner(p, pop, NewRNG(9))
	r.Stats = obs.NewRuleStats(p.NumRules())
	rounds, _ := r.RunUntil(func(*CountRunner) bool { return false }, 10)
	if rounds <= 0 {
		t.Fatal("counted run did not advance")
	}
	if r.Stats.Total() == 0 {
		t.Fatal("counted run recorded no firings")
	}
}

// TestBatchRunnerStatsMirrorFired pins the batched kernel's dual tally:
// Stats must agree exactly with the existing Fired array.
func TestBatchRunnerStatsMirrorFired(t *testing.T) {
	sp := bitmask.NewSpace()
	p, a, _ := twoRuleProtocol(sp)
	var sA, s0 bitmask.State
	sA = a.Set(sA, true)
	pop := NewCounted(map[bitmask.State]int64{sA: 10, s0: 290})
	r := NewBatchRunner(p, pop, NewRNG(11))
	r.Stats = obs.NewRuleStats(p.NumRules())
	r.RunUntil(func(*BatchRunner) bool { return false }, 10)
	fired := r.Stats.Fired()
	for i, c := range r.Fired {
		if fired[i] != c {
			t.Fatalf("rule %d: Stats %d != Fired %d", i, fired[i], c)
		}
	}
	if r.Stats.Total() == 0 {
		t.Fatal("batched run recorded no firings")
	}
}

// TestPickRuleIndexedAgreesWithPickRule verifies the indexed path returns
// the address of Set.Rules[i] for every match, on both the hash-indexed and
// scanning group layouts.
func TestPickRuleIndexedAgreesWithPickRule(t *testing.T) {
	sp := bitmask.NewSpace()
	p, a, b := twoRuleProtocol(sp)
	_ = b
	var s0, s1 bitmask.State
	s1 = a.Set(s1, true)
	rng := NewRNG(3)
	for trial := 0; trial < 200; trial++ {
		x, y := s0, s1
		if trial%2 == 0 {
			x, y = y, x
		}
		i, r := p.PickRuleIndexed(rng, x, y)
		if (r == nil) != (i < 0) {
			t.Fatalf("index %d inconsistent with rule %v", i, r)
		}
		if r != nil && p.Rule(i) != r {
			t.Fatalf("index %d does not address the returned rule", i)
		}
	}
}

// TestGroupTally aggregates per-rule counts into named group totals.
func TestGroupTally(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	rs.AddGroup("infect", 1, rules.MustNew(bitmask.Is(a), bitmask.IsNot(a), bitmask.True(), bitmask.Is(a)))
	rs.Add(bitmask.IsNot(a), bitmask.Is(a), bitmask.Is(a), bitmask.True())
	p := CompileProtocol(rs)
	tally := p.GroupTally([]uint64{5, 7})
	if tally["infect"] != 5 {
		t.Fatalf("infect = %d, want 5", tally["infect"])
	}
	if tally["group1"] != 7 {
		t.Fatalf("group1 = %d, want 7 (tally: %v)", tally["group1"], tally)
	}
	// A short tally must not panic or misattribute.
	short := p.GroupTally([]uint64{3})
	if short["infect"] != 3 || short["group1"] != 0 {
		t.Fatalf("short tally wrong: %v", short)
	}
}

// BenchmarkStepNoStats / BenchmarkStepWithStats bound the instrumentation
// overhead on the dense kernel's hot path.
func BenchmarkStepNoStats(b *testing.B) {
	sp := bitmask.NewSpace()
	p, a, _ := twoRuleProtocol(sp)
	pop := NewDenseInit(1024, func(i int) bitmask.State {
		var s bitmask.State
		if i%2 == 0 {
			s = a.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

func BenchmarkStepWithStats(b *testing.B) {
	sp := bitmask.NewSpace()
	p, a, _ := twoRuleProtocol(sp)
	pop := NewDenseInit(1024, func(i int) bitmask.State {
		var s bitmask.State
		if i%2 == 0 {
			s = a.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(1))
	r.Stats = obs.NewRuleStats(p.NumRules())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}
