// Package engine provides the population-protocol simulation substrate: a
// deterministic random number generator, dense (per-agent) and counted
// (per-species) population representations, and schedulers implementing the
// paper's probabilistic interaction models — the asynchronous uniform
// random-pair scheduler and the random-matching parallel scheduler (§5.3).
package engine

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256++ generator seeded via splitmix64.
// It is not safe for concurrent use; every Runner owns its own instance so
// experiments are reproducible from a single seed.
type RNG struct {
	s [4]uint64
}

// mix64 is the splitmix64 output function: a bijective avalanche mix used
// both to expand seeds into xoshiro state and to derive replica sub-seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given value. Distinct seeds
// give independent-looking streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		r.s[i] = mix64(sm)
	}
	return r
}

// SplitSeed derives the seed of replica i from a root seed. The derivation
// is a two-stage splitmix64 mix, so nearby (root, replica) pairs map to
// statistically independent streams: a fleet of replicas seeded with
// SplitSeed(root, 0..k) reproduces identical trajectories no matter how the
// replicas are scheduled across workers.
func SplitSeed(root, replica uint64) uint64 {
	return mix64(root + 0x9e3779b97f4a7c15*mix64(replica+0x9e3779b97f4a7c15))
}

// NewReplicaRNG returns the deterministic RNG stream of replica i under the
// given root seed: NewRNG(SplitSeed(root, replica)).
func NewReplicaRNG(root, replica uint64) *RNG {
	return NewRNG(SplitSeed(root, replica))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's unbiased multiply-shift rejection method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive bound")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Int63n is Intn for int64 bounds (large populations in counted mode).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("engine: Int63n with non-positive bound")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int64(hi)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Shuffle permutes n elements using the provided swap function
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns the number of consecutive failures before the first
// success of a Bernoulli(p) trial, i.e. a sample of the geometric
// distribution with support {0, 1, 2, …}. For p ≥ 1 it returns 0; p must be
// > 0. Used by the counted engine to leap over non-reactive interactions.
func (r *RNG) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("engine: Geometric with non-positive probability")
	}
	// Inverse transform: floor(ln(U) / ln(1-p)) with U in (0,1].
	u := 1 - r.Float64() // (0, 1]
	k := math.Floor(math.Log(u) / math.Log(1-p))
	if k < 0 {
		return 0
	}
	if k > 1e18 {
		return 1 << 60
	}
	return uint64(k)
}
