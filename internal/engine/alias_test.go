package engine

import (
	"testing"

	"popkit/internal/bitmask"
)

func TestAliasTableFrequencies(t *testing.T) {
	weights := []int64{10, 0, 30, 5, 0, 55}
	var total int64
	for _, w := range weights {
		total += w
	}
	var a aliasTable
	a.build(weights)
	rng := NewRNG(0xA11A5)
	const samples = 200000
	counts := make([]int, len(weights))
	for i := 0; i < samples; i++ {
		counts[a.sample(rng)]++
	}
	var chi2 float64
	dof := 0
	for s, w := range weights {
		exp := float64(w) / float64(total) * samples
		if w == 0 {
			if counts[s] != 0 {
				t.Fatalf("zero-weight slot %d sampled %d times", s, counts[s])
			}
			continue
		}
		chi2 += (float64(counts[s]) - exp) * (float64(counts[s]) - exp) / exp
		dof++
	}
	if crit := chi2Crit(dof - 1); chi2 > crit {
		t.Errorf("alias frequencies: chi-square %.1f exceeds %.1f", chi2, crit)
	}
}

func TestAliasTableRebuildReuses(t *testing.T) {
	var a aliasTable
	a.build([]int64{1, 2, 3})
	p0 := &a.prob[0]
	a.build([]int64{3, 2, 1})
	if &a.prob[0] != p0 {
		t.Error("rebuild at same size reallocated storage")
	}
	rng := NewRNG(7)
	for i := 0; i < 100; i++ {
		if s := a.sample(rng); s < 0 || s > 2 {
			t.Fatalf("sample %d out of range", s)
		}
	}
}

// TestSampleSlotAliasTracksMutations verifies the lazy invalidation: after
// a count mutation the next draw must reflect the new distribution, not the
// stale table.
func TestSampleSlotAliasTracksMutations(t *testing.T) {
	sp := bitmask.NewSpace()
	va := sp.Bool("A")
	zero := bitmask.State{}
	sA := va.Set(zero, true)
	pop := NewCounted(map[bitmask.State]int64{zero: 1000, sA: 1000})
	rng := NewRNG(0x5EED)
	slotA := pop.slotFor(sA)

	draw := func(n int) int {
		hits := 0
		for i := 0; i < n; i++ {
			if pop.sampleSlotAlias(rng) == slotA {
				hits++
			}
		}
		return hits
	}
	if hits := draw(2000); hits < 800 || hits > 1200 {
		t.Fatalf("balanced population: %d/2000 draws hit A", hits)
	}
	// Move all but one A agent away; a stale table would keep returning A
	// half the time.
	pop.addSlot(slotA, -999)
	pop.addSlot(pop.slotFor(zero), 999)
	if hits := draw(2000); hits > 20 {
		t.Fatalf("after mutation: %d/2000 draws hit the near-empty species", hits)
	}
}
