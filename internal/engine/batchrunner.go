package engine

import (
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/obs"
)

// BatchRunner drives a Counted population through the same Markov chain as
// Runner and CountRunner, but fires whole runs of interactions between
// stop-condition checks and strips every RNG draw whose outcome is forced.
// It is exact in distribution — leaps over non-firing interactions are
// geometric races against the horizon (the exact analogue of binomial
// τ-leap batching, without its approximation error), and a draw is skipped
// only when the pick it would make is deterministic:
//
//   - the rule pick, when exactly one rule has matching pairs (epidemics,
//     coalescence, and the long annihilation tail of exact majority);
//   - the initiator/responder picks, when the guard has exactly one
//     occupied species (tracked incrementally as occ1/occ2).
//
// Unlike CountRunner it does NOT promise byte-identical RNG streams with
// the historical kernel — skipped draws shift the stream. What it promises
// instead is the same law: batch_equiv_test.go cross-validates its
// hitting-time distributions against both exact runners at small n.
//
// Fired[i] counts the firings of rule i, giving experiments per-rule
// interaction accounting for free.
type BatchRunner struct {
	P   *Protocol
	Pop *Counted
	RNG *RNG

	// Interactions counts scheduler activations including the leapt
	// non-matching ones.
	Interactions uint64

	// Fired counts rule firings, indexed by rule.
	Fired []uint64

	// Stats, when non-nil, mirrors Fired into a shared obs.RuleStats so
	// instrumented drivers read one tally type across all three kernels.
	Stats *obs.RuleStats

	idx    *matchIndex
	pairsW []float64
}

// NewBatchRunner assembles a batched runner. Like NewCountRunner it rejects
// protocols with ordered (first-match) groups and attaches to the
// population's mutation hook, so a population can drive only one
// incremental runner at a time.
func NewBatchRunner(p *Protocol, pop *Counted, rng *RNG) *BatchRunner {
	return &BatchRunner{
		P: p, Pop: pop, RNG: rng,
		Fired:  make([]uint64, len(p.Set.Rules)),
		idx:    newMatchIndex(p, pop),
		pairsW: make([]float64, len(p.Set.Rules)),
	}
}

// Rounds returns elapsed parallel time (interactions / n).
func (r *BatchRunner) Rounds() float64 {
	return float64(r.Interactions) / float64(r.Pop.n)
}

// Track registers a guard for incremental counting and returns its
// tracker. RunUntil re-evaluates its stop condition only when some tracked
// count moves.
func (r *BatchRunner) Track(name string, f bitmask.Formula) *CountTracker {
	return r.idx.track(name, f)
}

// matchingPairs returns the number of ordered pairs of distinct agents
// matching rule i.
func (r *BatchRunner) matchingPairs(i int) int64 {
	return r.idx.matchingPairs(i)
}

// stepProbability returns the probability that a single scheduler
// activation fires some rule.
func (r *BatchRunner) stepProbability() float64 {
	n := float64(r.Pop.n)
	totalPairs := n * (n - 1)
	var q float64
	ix := r.idx
	for i := range r.P.ruleWeightN {
		q += r.P.ruleWeightN[i] * float64(ix.m1[i]*ix.m2[i]-ix.m12[i]) / totalPairs
	}
	return q
}

// LeapStep advances the chain to (and through) the next rule-firing
// interaction. It returns false (without advancing) when no rule can ever
// fire again — the protocol is silent. maxInteractions bounds the leap: if
// the next firing lies beyond the bound, the runner advances exactly to
// the bound and returns true without firing.
func (r *BatchRunner) LeapStep(maxInteractions uint64) bool {
	_, alive := r.leap(maxInteractions)
	return alive
}

// leap is LeapStep distinguishing "fired" from "advanced to the horizon
// without firing".
func (r *BatchRunner) leap(maxInteractions uint64) (fired, alive bool) {
	r.idx.syncCaches()
	q := r.stepProbability()
	if q <= 0 {
		return false, false
	}
	skip := r.RNG.Geometric(q)
	if maxInteractions > 0 && r.Interactions+skip+1 > maxInteractions {
		r.Interactions = maxInteractions
		return false, true
	}
	r.Interactions += skip + 1
	r.fireMatching()
	return true, true
}

// fireMatching executes one uniformly chosen matching (rule, ordered pair)
// event, conditioned on the interaction firing, skipping draws whose
// outcome is forced.
func (r *BatchRunner) fireMatching() {
	idx := r.idx.fireForcedMatching(r.RNG, r.pairsW)
	r.Fired[idx]++
	r.Stats.Fire(idx, 1)
}

// RunBatch fires up to maxFirings rule firings without evaluating any stop
// condition in between, bounded by maxInteractions total scheduler
// activations (0 = unbounded). It returns the number of firings executed
// and whether the protocol can still move. Trajectory collectors use it to
// advance in fixed-size strides between snapshots.
func (r *BatchRunner) RunBatch(maxFirings, maxInteractions uint64) (fired uint64, alive bool) {
	for fired < maxFirings {
		f, a := r.leap(maxInteractions)
		if !a {
			return fired, false
		}
		if !f {
			// Hit the horizon without firing.
			return fired, true
		}
		fired++
	}
	return fired, true
}

// RunUntil leaps until the condition holds or maxRounds elapses or the
// protocol goes silent, returning the parallel time consumed and whether
// the condition was met.
//
// When trackers are registered (Track), the condition is re-evaluated only
// after firings that moved a tracked count — the runs of quiescent firings
// in between form the batches. Conditions must therefore read registered
// trackers (or state derived from them); with no trackers the condition
// runs after every firing.
func (r *BatchRunner) RunUntil(cond func(*BatchRunner) bool, maxRounds float64) (rounds float64, ok bool) {
	start := r.Rounds()
	n := float64(r.Pop.n)
	budget := uint64(math.Ceil(maxRounds*n)) + r.Interactions
	gated := len(r.idx.trackers) > 0
	check := true
	for {
		if check || !gated {
			r.idx.trackersMoved = false
			if cond(r) {
				return r.Rounds() - start, true
			}
		}
		if r.Interactions >= budget {
			return r.Rounds() - start, false
		}
		if !r.LeapStep(budget) {
			// Silent: the configuration can never change again.
			return r.Rounds() - start, cond(r)
		}
		check = r.idx.trackersMoved
	}
}
