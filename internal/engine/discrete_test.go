package engine

import (
	"math"
	"testing"
)

// chi2Crit returns an α = 0.001 critical value for the chi-square
// distribution with dof degrees of freedom (Wilson–Hilferty approximation,
// z = 3.09).
func chi2Crit(dof int) float64 {
	d := float64(dof)
	z := 3.09
	v := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * v * v * v
}

// checkPMF draws samples from draw and chi-square-tests them against the
// exact pmf on [lo, hi], lumping bins with expected count below 5 into
// their neighbours.
func checkPMF(t *testing.T, label string, nSamples int, draw func() int64, pmf func(k int64) float64, lo, hi int64) {
	t.Helper()
	counts := make(map[int64]int)
	for i := 0; i < nSamples; i++ {
		k := draw()
		if k < lo || k > hi {
			t.Fatalf("%s: sample %d outside support [%d, %d]", label, k, lo, hi)
		}
		counts[k]++
	}
	// Walk the support accumulating bins of expected mass ≥ 5.
	var chi2 float64
	dof := -1
	expAcc, obsAcc := 0.0, 0.0
	for k := lo; k <= hi; k++ {
		expAcc += pmf(k) * float64(nSamples)
		obsAcc += float64(counts[k])
		if expAcc >= 5 && k < hi {
			chi2 += (obsAcc - expAcc) * (obsAcc - expAcc) / expAcc
			dof++
			expAcc, obsAcc = 0, 0
		}
	}
	if expAcc > 0 {
		chi2 += (obsAcc - expAcc) * (obsAcc - expAcc) / expAcc
		dof++
	}
	if dof < 1 {
		dof = 1
	}
	if crit := chi2Crit(dof); chi2 > crit {
		t.Errorf("%s: chi-square %.1f exceeds %.1f (%d dof)", label, chi2, crit, dof)
	}
}

func TestBinomialDegenerate(t *testing.T) {
	rng := NewRNG(1)
	if got := rng.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := rng.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := rng.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
}

func TestBinomialMatchesPMF(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{20, 0.3},    // sequential small-trials path
		{200, 0.3},   // zig-zag inversion
		{1000, 0.01}, // skewed: mode near the edge
		{150, 0.97},  // p near 1
	}
	for _, c := range cases {
		rng := NewRNG(0xB10 + uint64(c.n))
		ln1p := math.Log1p(-c.p)
		lp := math.Log(c.p)
		pmf := func(k int64) float64 {
			return math.Exp(lnChoose(c.n, k) + float64(k)*lp + float64(c.n-k)*ln1p)
		}
		checkPMF(t, "Binomial", 20000,
			func() int64 { return rng.Binomial(c.n, c.p) }, pmf, 0, c.n)
	}
}

func TestHypergeometricDegenerate(t *testing.T) {
	rng := NewRNG(2)
	if got := rng.Hypergeometric(10, 10, 4); got != 4 {
		t.Errorf("all-success draw = %d, want 4", got)
	}
	if got := rng.Hypergeometric(10, 0, 4); got != 0 {
		t.Errorf("no-success draw = %d, want 0", got)
	}
	if got := rng.Hypergeometric(10, 4, 10); got != 4 {
		t.Errorf("exhaustive draw = %d, want 4", got)
	}
	// lo bound: drawing 8 of 10 with 6 successes must take at least 4.
	for i := 0; i < 100; i++ {
		if got := rng.Hypergeometric(10, 6, 8); got < 4 || got > 6 {
			t.Fatalf("Hypergeometric(10,6,8) = %d outside [4,6]", got)
		}
	}
}

func TestHypergeometricMatchesPMF(t *testing.T) {
	cases := []struct{ total, success, draws int64 }{
		{50, 20, 10},     // sequential urn path
		{1000, 300, 100}, // zig-zag inversion
		{100, 90, 60},    // tight support (lo > 0)
	}
	for _, c := range cases {
		rng := NewRNG(0x4E + uint64(c.total))
		lo := max(0, c.draws+c.success-c.total)
		hi := min(c.draws, c.success)
		pmf := func(k int64) float64 {
			return math.Exp(lnChoose(c.success, k) +
				lnChoose(c.total-c.success, c.draws-k) -
				lnChoose(c.total, c.draws))
		}
		checkPMF(t, "Hypergeometric", 20000,
			func() int64 { return rng.Hypergeometric(c.total, c.success, c.draws) }, pmf, lo, hi)
	}
}

// TestCollisionRunLenSurvival checks the empirical survival function of
// the collision-free run length against the closed form
// S(k) = n! / ((n−2k)!·(n(n−1))^k).
func TestCollisionRunLenSurvival(t *testing.T) {
	const n = 100
	const samples = 50000
	rng := NewRNG(0xC0111)
	lgN1, _ := math.Lgamma(n + 1)
	lnPairs := math.Log(n) + math.Log(n-1)
	counts := make(map[int64]int)
	for i := 0; i < samples; i++ {
		l := rng.collisionRunLen(n, lgN1, lnPairs)
		if l < 1 || l > n/2 {
			t.Fatalf("run length %d outside [1, %d]", l, n/2)
		}
		counts[l]++
	}
	surv := func(k int64) float64 {
		lg, _ := math.Lgamma(float64(n - 2*k + 1))
		return math.Exp(lgN1 - lg - float64(k)*lnPairs)
	}
	// Compare empirical tail P(ℓ ≥ k) for small k where S(k) is not tiny.
	tail := samples
	for k := int64(1); k <= 12; k++ {
		want := surv(k)
		got := float64(tail) / samples
		// Binomial std dev of the empirical tail; 4.5σ ≈ α below 0.001
		// across the 12 checks.
		sd := math.Sqrt(want*(1-want)/samples) + 1e-12
		if math.Abs(got-want) > 4.5*sd+1e-9 {
			t.Errorf("P(run ≥ %d): empirical %.4f vs exact %.4f (%.1fσ)",
				k, got, want, math.Abs(got-want)/sd)
		}
		tail -= counts[k]
	}
}

func TestCollisionRunLenTinyPopulation(t *testing.T) {
	rng := NewRNG(3)
	for _, n := range []int64{2, 3} {
		lgN1, _ := math.Lgamma(float64(n) + 1)
		lnPairs := math.Log(float64(n)) + math.Log(float64(n)-1)
		for i := 0; i < 50; i++ {
			if l := rng.collisionRunLen(n, lgN1, lnPairs); l != 1 {
				t.Fatalf("n=%d: run length %d, want 1", n, l)
			}
		}
	}
}
