package engine

import (
	"bytes"
	"testing"

	"popkit/internal/bitmask"
)

// TestResyncTrackersAfterMutation covers the out-of-band mutation contract:
// SetAgent and ApplyAll bypass tracker maintenance, ResyncTrackers restores
// consistency, and incremental tracking stays exact afterwards.
func TestResyncTrackersAfterMutation(t *testing.T) {
	sp := bitmask.NewSpace()
	p, a, b := twoRuleProtocol(sp)
	const n = 200
	pop := NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < 10 {
			s = a.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(99))
	trA := r.Track("A", bitmask.Is(a))
	trB := r.Track("B", bitmask.Is(b))
	trAB := r.Track("A&!B", bitmask.And(bitmask.Is(a), bitmask.IsNot(b)))
	if trA.Count() != 10 || trB.Count() != 0 {
		t.Fatalf("initial counts A=%d B=%d", trA.Count(), trB.Count())
	}

	check := func(stage string) {
		t.Helper()
		for _, tc := range []struct {
			tr *Tracker
			f  bitmask.Formula
		}{
			{trA, bitmask.Is(a)},
			{trB, bitmask.Is(b)},
			{trAB, bitmask.And(bitmask.Is(a), bitmask.IsNot(b))},
		} {
			want := pop.Count(bitmask.Compile(tc.f))
			if got := tc.tr.Count(); got != want {
				t.Fatalf("%s: tracker %s = %d, population holds %d", stage, tc.tr.Name, got, want)
			}
		}
	}

	r.RunRounds(5)
	check("after scheduled rounds")

	// Out-of-band single-agent writes: trackers are stale by contract…
	for i := 0; i < 50; i++ {
		s := pop.Agent(i)
		pop.SetAgent(i, b.Set(s, true))
	}
	// …and resync restores exactness.
	r.ResyncTrackers()
	check("after SetAgent + resync")

	// Bulk mutation via ApplyAll, then resync.
	g := bitmask.Compile(bitmask.Is(b))
	u, err := bitmask.CompileUpdate(bitmask.Is(a))
	if err != nil {
		t.Fatal(err)
	}
	if updated := pop.ApplyAll(g, u); updated == 0 {
		t.Fatal("ApplyAll touched nothing; the mutation scenario is vacuous")
	}
	r.ResyncTrackers()
	check("after ApplyAll + resync")

	// Incremental maintenance must remain exact after the resyncs.
	r.RunRounds(5)
	check("after further scheduled rounds")
}

// TestSnapshotRestoreTrackers covers checkpoint/resume: a Dense population
// round-trips through its binary snapshot, a fresh runner over the restored
// population sees identical tracker counts, and both copies evolve
// identically under the same RNG stream.
func TestSnapshotRestoreTrackers(t *testing.T) {
	sp := bitmask.NewSpace()
	p, a, bvar := twoRuleProtocol(sp)
	const n = 300
	pop := NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i%7 == 0 {
			s = a.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(1234))
	r.Track("A", bitmask.Is(a))
	r.RunRounds(10)

	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != pop.N() {
		t.Fatalf("restored n=%d, want %d", restored.N(), pop.N())
	}
	for i := 0; i < n; i++ {
		if restored.Agent(i) != pop.Agent(i) {
			t.Fatalf("agent %d state drifted through snapshot: %v vs %v", i, restored.Agent(i), pop.Agent(i))
		}
	}

	// A fresh runner over the restored population must agree with the
	// original's trackers once tracked (Track counts at registration).
	r2 := NewRunner(p, restored, NewRNG(777))
	trA2 := r2.Track("A", bitmask.Is(a))
	trB2 := r2.Track("B", bitmask.Is(bvar))
	if want := pop.Count(bitmask.Compile(bitmask.Is(a))); trA2.Count() != want {
		t.Fatalf("restored tracker A=%d, want %d", trA2.Count(), want)
	}

	// Drive original and restored with identical fresh streams: the
	// populations are equal, so the trajectories must stay equal.
	r1b := NewRunner(p, pop, NewRNG(777))
	trB1 := r1b.Track("B", bitmask.Is(bvar))
	r1b.RunRounds(8)
	r2.RunRounds(8)
	if trB1.Count() != trB2.Count() {
		t.Fatalf("post-restore trajectories diverge: B=%d vs %d", trB1.Count(), trB2.Count())
	}
	h1, h2 := pop.Histogram(), restored.Histogram()
	for s, c := range h1 {
		if h2[s] != c {
			t.Fatalf("histograms diverge at %v: %d vs %d", s, c, h2[s])
		}
	}
}
