package engine

import (
	"math"

	"popkit/internal/bitmask"
)

// CountRunner drives a Counted population under the asynchronous sequential
// scheduler. It simulates exactly the same Markov chain as Runner, but
// leaps over maximal stretches of non-matching interactions with a single
// geometric sample, making protocols with long quiescent phases (e.g. the
// Θ(n log n)-round 4-state exact-majority baseline) tractable at large n.
type CountRunner struct {
	P   *Protocol
	Pop *Counted
	RNG *RNG

	// Interactions counts scheduler activations including the leapt
	// non-matching ones.
	Interactions uint64

	// scratch per rule
	m1, m2, m12 []int64
}

// NewCountRunner assembles a counted runner. Protocols with ordered
// (first-match) groups are rejected: their event rates are not sums of
// per-rule matching counts.
func NewCountRunner(p *Protocol, pop *Counted, rng *RNG) *CountRunner {
	if p.Set.HasOrderedGroups() {
		panic("engine: counted runner does not support ordered rule groups")
	}
	nr := len(p.Set.Rules)
	return &CountRunner{
		P: p, Pop: pop, RNG: rng,
		m1: make([]int64, nr), m2: make([]int64, nr), m12: make([]int64, nr),
	}
}

// Rounds returns elapsed parallel time (interactions / n).
func (r *CountRunner) Rounds() float64 {
	return float64(r.Interactions) / float64(r.Pop.n)
}

// matchCounts refreshes the per-rule species tallies:
// m1 = agents matching G1, m2 = agents matching G2,
// m12 = agents matching both (the same-agent correction).
func (r *CountRunner) matchCounts() {
	pop := r.Pop
	pop.compact()
	for i, rule := range r.P.Set.Rules {
		var a, b, ab int64
		for _, s := range pop.keys {
			cnt := pop.counts[s]
			g1 := rule.G1.Match(s)
			g2 := rule.G2.Match(s)
			if g1 {
				a += cnt
			}
			if g2 {
				b += cnt
			}
			if g1 && g2 {
				ab += cnt
			}
		}
		r.m1[i], r.m2[i], r.m12[i] = a, b, ab
	}
}

// matchingPairs returns the number of ordered pairs of distinct agents
// matching rule i.
func (r *CountRunner) matchingPairs(i int) int64 {
	return r.m1[i]*r.m2[i] - r.m12[i]
}

// stepProbability returns the probability that a single scheduler
// activation fires some rule, given fresh matchCounts.
func (r *CountRunner) stepProbability() float64 {
	n := float64(r.Pop.n)
	totalPairs := n * (n - 1)
	w := float64(r.P.NumSlots())
	var q float64
	for i := range r.P.Set.Rules {
		q += float64(r.P.RuleWeight(i)) / w * float64(r.matchingPairs(i)) / totalPairs
	}
	return q
}

// LeapStep advances the chain to (and through) the next rule-firing
// interaction. It returns false (without advancing) when no rule can ever
// fire again — the protocol is silent. maxInteractions bounds the leap so
// callers can stop at a time horizon; if the next firing lies beyond the
// bound, the runner advances exactly to the bound and returns true without
// firing.
func (r *CountRunner) LeapStep(maxInteractions uint64) bool {
	r.matchCounts()
	q := r.stepProbability()
	if q <= 0 {
		return false
	}
	skip := r.RNG.Geometric(q)
	if maxInteractions > 0 && r.Interactions+skip+1 > maxInteractions {
		r.Interactions = maxInteractions
		return true
	}
	r.Interactions += skip + 1
	r.fireMatching()
	return true
}

// fireMatching executes one uniformly chosen matching (rule, ordered pair)
// event, conditioned on the interaction firing.
func (r *CountRunner) fireMatching() {
	// Pick the rule with probability ∝ weight × matching pairs.
	var total float64
	for i := range r.P.Set.Rules {
		total += float64(r.P.RuleWeight(i)) * float64(r.matchingPairs(i))
	}
	pick := r.RNG.Float64() * total
	idx := -1
	for i := range r.P.Set.Rules {
		pick -= float64(r.P.RuleWeight(i)) * float64(r.matchingPairs(i))
		if pick < 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = len(r.P.Set.Rules) - 1
	}
	rule := r.P.Rule(idx)

	// Pick the initiator species s1 with weight cnt(s1)·(m2 − [G2(s1)]).
	pop := r.Pop
	m2 := r.m2[idx]
	target := r.RNG.Int63n(r.matchingPairs(idx))
	var s1 bitmask.State
	found := false
	for _, s := range pop.keys {
		if !rule.G1.Match(s) {
			continue
		}
		w := pop.counts[s] * (m2 - boolToInt64(rule.G2.Match(s)))
		if target < w {
			s1 = s
			found = true
			break
		}
		target -= w
	}
	if !found {
		panic("engine: initiator sampling walked off the table")
	}
	// Pick the responder species s2 among G2-matchers, excluding the
	// initiator agent itself.
	avail := m2 - boolToInt64(rule.G2.Match(s1))
	t2 := r.RNG.Int63n(avail)
	var s2 bitmask.State
	found = false
	for _, s := range pop.keys {
		if !rule.G2.Match(s) {
			continue
		}
		w := pop.counts[s]
		if s == s1 {
			w -= boolToInt64(rule.G2.Match(s1))
		}
		if t2 < w {
			s2 = s
			found = true
			break
		}
		t2 -= w
	}
	if !found {
		panic("engine: responder sampling walked off the table")
	}

	ns1, ns2 := rule.Apply(s1, s2)
	pop.add(s1, -1)
	pop.add(s2, -1)
	pop.add(ns1, 1)
	pop.add(ns2, 1)
}

// Step performs one literal scheduler activation (no leaping): sample an
// ordered pair and a rule, fire if matching. Exists for equivalence tests
// against Runner and LeapStep.
func (r *CountRunner) Step() bool {
	pop := r.Pop
	pop.compact()
	s1 := pop.sample(r.RNG, false, bitmask.State{})
	s2 := pop.sample(r.RNG, true, s1)
	r.Interactions++
	rule := r.P.PickRule(r.RNG, s1, s2)
	if rule == nil {
		return false
	}
	ns1, ns2 := rule.Apply(s1, s2)
	pop.add(s1, -1)
	pop.add(s2, -1)
	pop.add(ns1, 1)
	pop.add(ns2, 1)
	return true
}

// RunUntil leaps until the condition holds (checked after every firing and
// at least every checkEvery rounds) or maxRounds elapses or the protocol
// goes silent. It returns the parallel time consumed in this call, and
// whether the condition was met.
func (r *CountRunner) RunUntil(cond func(*CountRunner) bool, maxRounds float64) (rounds float64, ok bool) {
	start := r.Rounds()
	n := float64(r.Pop.n)
	budget := uint64(math.Ceil(maxRounds*n)) + r.Interactions
	for {
		if cond(r) {
			return r.Rounds() - start, true
		}
		if r.Interactions >= budget {
			return r.Rounds() - start, false
		}
		if !r.LeapStep(budget) {
			// Silent: the configuration can never change again.
			return r.Rounds() - start, cond(r)
		}
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
