package engine

import (
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/obs"
)

// CountRunner drives a Counted population under the asynchronous sequential
// scheduler. It simulates exactly the same Markov chain as Runner, but
// leaps over maximal stretches of non-matching interactions with a single
// geometric sample, making protocols with long quiescent phases (e.g. the
// Θ(n log n)-round 4-state exact-majority baseline) tractable at large n.
//
// The per-rule match tallies that drive the leap are maintained
// incrementally (see matchIndex): the historical full rescan per firing is
// gone, and the RNG stream is byte-identical to the scanning kernel's, so
// seeds reproduce the exact trajectories recorded before the rewrite.
type CountRunner struct {
	P   *Protocol
	Pop *Counted
	RNG *RNG

	// Interactions counts scheduler activations including the leapt
	// non-matching ones.
	Interactions uint64

	// Stats, when non-nil, tallies per-rule firings. The tally is taken
	// after the rule pick so it never touches the RNG stream — traces stay
	// byte-identical with or without it.
	Stats *obs.RuleStats

	idx *matchIndex

	// pairsW is fireMatching's scratch: per-rule weight × matching pairs,
	// computed once per firing and reused for the pick walk.
	pairsW []float64
}

// NewCountRunner assembles a counted runner. Protocols with ordered
// (first-match) groups are rejected: their event rates are not sums of
// per-rule matching counts. The runner attaches to the population's
// mutation hook; a population can drive only one runner at a time.
func NewCountRunner(p *Protocol, pop *Counted, rng *RNG) *CountRunner {
	return &CountRunner{
		P: p, Pop: pop, RNG: rng,
		idx:    newMatchIndex(p, pop),
		pairsW: make([]float64, len(p.Set.Rules)),
	}
}

// Rounds returns elapsed parallel time (interactions / n).
func (r *CountRunner) Rounds() float64 {
	return float64(r.Interactions) / float64(r.Pop.n)
}

// Track registers a guard for incremental counting and returns its
// tracker. RunUntil re-evaluates its stop condition only when some tracked
// count moves, so conditions should read trackers rather than rescan the
// population.
func (r *CountRunner) Track(name string, f bitmask.Formula) *CountTracker {
	return r.idx.track(name, f)
}

// matchingPairs returns the number of ordered pairs of distinct agents
// matching rule i.
func (r *CountRunner) matchingPairs(i int) int64 {
	return r.idx.matchingPairs(i)
}

// stepProbability returns the probability that a single scheduler
// activation fires some rule. The float expression mirrors the historical
// per-rule loop exactly so leap lengths stay byte-identical.
func (r *CountRunner) stepProbability() float64 {
	n := float64(r.Pop.n)
	totalPairs := n * (n - 1)
	var q float64
	ix := r.idx
	for i := range r.P.ruleWeightN {
		q += r.P.ruleWeightN[i] * float64(ix.m1[i]*ix.m2[i]-ix.m12[i]) / totalPairs
	}
	return q
}

// LeapStep advances the chain to (and through) the next rule-firing
// interaction. It returns false (without advancing) when no rule can ever
// fire again — the protocol is silent. maxInteractions bounds the leap so
// callers can stop at a time horizon; if the next firing lies beyond the
// bound, the runner advances exactly to the bound and returns true without
// firing.
func (r *CountRunner) LeapStep(maxInteractions uint64) bool {
	r.idx.syncCaches()
	q := r.stepProbability()
	if q <= 0 {
		return false
	}
	skip := r.RNG.Geometric(q)
	if maxInteractions > 0 && r.Interactions+skip+1 > maxInteractions {
		r.Interactions = maxInteractions
		return true
	}
	r.Interactions += skip + 1
	r.fireMatching()
	return true
}

// fireMatching executes one uniformly chosen matching (rule, ordered pair)
// event, conditioned on the interaction firing.
func (r *CountRunner) fireMatching() {
	// Pick the rule with probability ∝ weight × matching pairs.
	var total float64
	for i := range r.pairsW {
		v := r.P.ruleWeightF[i] * float64(r.matchingPairs(i))
		r.pairsW[i] = v
		total += v
	}
	pick := r.RNG.Float64() * total
	idx := -1
	for i, v := range r.pairsW {
		pick -= v
		if pick < 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = len(r.P.Set.Rules) - 1
	}
	rule := int32(idx)
	r.Stats.Fire(idx, 1)

	// Pick the initiator species s1 with weight cnt(s1)·(m2 − [G2(s1)]).
	pop := r.Pop
	ix := r.idx
	m2 := ix.m2[idx]
	target := r.RNG.Int63n(ix.matchingPairs(idx))
	slot1 := int32(-1)
	var g2s1 int64
	for slot := range pop.keys {
		f := ix.flags(rule, slot)
		if f&rowG1 == 0 {
			continue
		}
		var b int64
		if f&rowG2 != 0 {
			b = 1
		}
		w := pop.cnt[slot] * (m2 - b)
		if target < w {
			slot1 = int32(slot)
			g2s1 = b
			break
		}
		target -= w
	}
	if slot1 < 0 {
		panic("engine: initiator sampling walked off the table")
	}
	// Pick the responder species s2 among G2-matchers, excluding the
	// initiator agent itself.
	avail := m2 - g2s1
	t2 := r.RNG.Int63n(avail)
	slot2 := int32(-1)
	for slot := range pop.keys {
		if ix.flags(rule, slot)&rowG2 == 0 {
			continue
		}
		w := pop.cnt[slot]
		if int32(slot) == slot1 {
			w -= g2s1
		}
		if t2 < w {
			slot2 = int32(slot)
			break
		}
		t2 -= w
	}
	if slot2 < 0 {
		panic("engine: responder sampling walked off the table")
	}
	r.idx.fire(rule, slot1, slot2)
}

// Step performs one literal scheduler activation (no leaping): sample an
// ordered pair and a rule, fire if matching. Exists for equivalence tests
// against Runner and LeapStep.
func (r *CountRunner) Step() bool {
	pop := r.Pop
	s1 := pop.sample(r.RNG, false, bitmask.State{})
	s2 := pop.sample(r.RNG, true, s1)
	r.Interactions++
	ri, rule := r.P.PickRuleIndexed(r.RNG, s1, s2)
	if rule == nil {
		return false
	}
	r.Stats.Fire(ri, 1)
	ns1, ns2 := rule.Apply(s1, s2)
	pop.add(s1, -1)
	pop.add(s2, -1)
	pop.add(ns1, 1)
	pop.add(ns2, 1)
	return true
}

// RunUntil leaps until the condition holds or maxRounds elapses or the
// protocol goes silent. It returns the parallel time consumed in this
// call, and whether the condition was met.
//
// When trackers are registered (Track), the condition is re-evaluated only
// after firings that moved a tracked count — quiescent firings skip the
// check entirely. Conditions must therefore read registered trackers (or
// state derived from them); with no trackers the condition runs after
// every firing, as the scanning kernel did.
func (r *CountRunner) RunUntil(cond func(*CountRunner) bool, maxRounds float64) (rounds float64, ok bool) {
	start := r.Rounds()
	n := float64(r.Pop.n)
	budget := uint64(math.Ceil(maxRounds*n)) + r.Interactions
	gated := len(r.idx.trackers) > 0
	check := true
	for {
		if check || !gated {
			r.idx.trackersMoved = false
			if cond(r) {
				return r.Rounds() - start, true
			}
		}
		if r.Interactions >= budget {
			return r.Rounds() - start, false
		}
		if !r.LeapStep(budget) {
			// Silent: the configuration can never change again.
			return r.Rounds() - start, cond(r)
		}
		check = r.idx.trackersMoved
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
