package engine

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// twoRuleProtocol is a minimal two-rule protocol for determinism tests:
// an infection epidemic plus a mutation rule, enough to keep the state
// histogram evolving under both schedulers.
func twoRuleProtocol(sp *bitmask.Space) (*Protocol, bitmask.Var, bitmask.Var) {
	a := sp.Bool("A")
	b := sp.Bool("B")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.IsNot(a), bitmask.True(), bitmask.Is(a))
	rs.Add(bitmask.Is(a), bitmask.Is(a), bitmask.Is(b), bitmask.True())
	return CompileProtocol(rs), a, b
}

func histogramAfter(seed uint64, n int, rounds float64, matching bool) map[bitmask.State]int64 {
	sp := bitmask.NewSpace()
	p, a, _ := twoRuleProtocol(sp)
	pop := NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i == 0 {
			s = a.Set(s, true)
		}
		return s
	})
	r := NewRunner(p, pop, NewRNG(seed))
	if matching {
		for r.Rounds() < rounds {
			r.MatchingRound()
		}
	} else {
		r.RunRounds(rounds)
	}
	return pop.Histogram()
}

// TestRunnerDeterminism guards the RNG-splitting refactor: the same
// (protocol, n, seed) must produce identical final species counts when run
// twice, under both the sequential and the random-matching scheduler.
func TestRunnerDeterminism(t *testing.T) {
	for _, matching := range []bool{false, true} {
		first := histogramAfter(12345, 500, 20, matching)
		second := histogramAfter(12345, 500, 20, matching)
		if len(first) != len(second) {
			t.Fatalf("matching=%v: histograms differ in support: %v vs %v", matching, first, second)
		}
		for s, c := range first {
			if second[s] != c {
				t.Fatalf("matching=%v: species %v count %d vs %d", matching, s, c, second[s])
			}
		}
		// A different seed must (generically) give a different trajectory —
		// otherwise the test above proves nothing.
		other := histogramAfter(54321, 500, 20, matching)
		same := len(other) == len(first)
		if same {
			for s, c := range first {
				if other[s] != c {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("matching=%v: seeds 12345 and 54321 gave identical histograms — RNG not seed-dependent?", matching)
		}
	}
}

// TestSplitSeedReplicaDeterminism pins the (root, replica) → stream map:
// replica RNGs must be reproducible across calls and distinct across
// replicas and roots.
func TestSplitSeedReplicaDeterminism(t *testing.T) {
	h1 := histogramAfter(SplitSeed(7, 3), 300, 10, false)
	h2 := histogramAfter(SplitSeed(7, 3), 300, 10, false)
	for s, c := range h1 {
		if h2[s] != c {
			t.Fatalf("SplitSeed(7,3) trajectory not reproducible: %v vs %v", h1, h2)
		}
	}
	if SplitSeed(7, 3) == SplitSeed(7, 4) || SplitSeed(7, 3) == SplitSeed(8, 3) {
		t.Fatal("SplitSeed collides on adjacent inputs")
	}
}
