package engine

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// counterProtocol builds a mod-q counter advanced on every interaction as a
// single indexed group: P==v → P==v+1 (mod q).
func counterProtocol(q uint64) (*Protocol, bitmask.Field) {
	sp := bitmask.NewSpace()
	f := sp.Field("P", q-1)
	var grp []rules.Rule
	for v := uint64(0); v < q; v++ {
		grp = append(grp, rules.MustNew(
			bitmask.FieldIs(f, v), bitmask.True(),
			bitmask.FieldIs(f, (v+1)%q), bitmask.True()))
	}
	rs := rules.NewRuleset(sp)
	rs.AddGroup("advance", 1, grp...)
	return CompileProtocol(rs), f
}

func TestGroupIndexedDispatch(t *testing.T) {
	p, f := counterProtocol(16)
	pop := NewDense(10)
	r := NewRunner(p, pop, NewRNG(1))
	// Every interaction advances exactly the initiator's counter.
	for i := 0; i < 1000; i++ {
		if !r.Step() {
			t.Fatal("counter group failed to fire")
		}
	}
	var total uint64
	pop.ForEach(func(_ int, s bitmask.State) { total += f.Get(s) })
	// 1000 firings each advanced one counter by 1 (mod 16); totals mod 16
	// can wrap, so just check counters are in range and something moved.
	if total == 0 {
		t.Error("no counter advanced")
	}
}

func TestGroupUniqueMatchSemantics(t *testing.T) {
	// With q=16 the group is indexed; with q=2 (small) it scans linearly.
	// Both must fire exactly one rule per interaction.
	for _, q := range []uint64{2, 16} {
		p, f := counterProtocol(q)
		pop := NewDense(4)
		r := NewRunner(p, pop, NewRNG(9))
		before := make([]uint64, 4)
		for step := 0; step < 200; step++ {
			for i := 0; i < 4; i++ {
				before[i] = f.Get(pop.Agent(i))
			}
			r.Step()
			changed := 0
			for i := 0; i < 4; i++ {
				if f.Get(pop.Agent(i)) != before[i] {
					changed++
				}
			}
			if changed > 1 {
				t.Fatalf("q=%d: one interaction changed %d agents", q, changed)
			}
		}
	}
}

func TestCountRunnerGroupWeights(t *testing.T) {
	// Two groups: a heavy counter group and a light toggler. The counted
	// engine must weight events by group, not by rule count.
	sp := bitmask.NewSpace()
	f := sp.Field("P", 7)
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	var grp []rules.Rule
	for v := uint64(0); v < 8; v++ {
		grp = append(grp, rules.MustNew(
			bitmask.FieldIs(f, v), bitmask.True(),
			bitmask.FieldIs(f, (v+1)%8), bitmask.True()))
	}
	rs.AddGroup("counter", 3, grp...)
	rs.Add(bitmask.IsNot(a), bitmask.True(), bitmask.Is(a), bitmask.True()) // weight 1

	p := CompileProtocol(rs)
	if p.NumSlots() != 4 {
		t.Fatalf("NumSlots = %d, want 4", p.NumSlots())
	}
	if p.RuleWeight(0) != 3 || p.RuleWeight(8) != 1 {
		t.Fatalf("RuleWeight = %d,%d", p.RuleWeight(0), p.RuleWeight(8))
	}

	pop := NewCounted(map[bitmask.State]int64{{}: 100})
	cr := NewCountRunner(p, pop, NewRNG(4))
	// Fire 4000 events. The counter group holds 3 of 4 slots and always
	// matches; the toggler (1 slot) matches only while ¬A agents remain.
	counterFires, togglerFires := 0, 0
	gA := bitmask.Compile(bitmask.Is(a))
	for i := 0; i < 4000; i++ {
		beforeA := pop.Count(gA)
		if !cr.LeapStep(0) {
			break
		}
		if pop.Count(gA) != beforeA {
			togglerFires++
		} else {
			counterFires++
		}
	}
	if togglerFires == 0 || counterFires == 0 {
		t.Fatalf("fires: counter=%d toggler=%d", counterFires, togglerFires)
	}
	// All 100 agents acquire A exactly once, then the toggler goes quiet.
	if togglerFires != 100 {
		t.Errorf("toggler fired %d times, want exactly 100", togglerFires)
	}
	// After saturation only 3/4 of slots can fire, so interactions must
	// exceed events (leaping over the dead toggler slot).
	if cr.Interactions <= 4000 {
		t.Errorf("Interactions = %d, expected > 4000 with a quiet slot", cr.Interactions)
	}
	// Population size is conserved throughout.
	if pop.N() != 100 {
		t.Errorf("population size drifted to %d", pop.N())
	}
}

func TestMatchGroupReturnsNilOnMiss(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	rs := rules.NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.Is(a), bitmask.IsNot(a), bitmask.True())
	p := CompileProtocol(rs)
	if r := p.PickRule(NewRNG(1), bitmask.State{}, bitmask.State{}); r != nil {
		t.Error("PickRule matched a rule whose guard fails")
	}
}
