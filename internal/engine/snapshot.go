package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"popkit/internal/bitmask"
)

// Snapshot support: populations serialize to a compact binary format so
// long experiments (the clock hierarchy runs take hours at scale) can be
// checkpointed and resumed, and interesting configurations can be archived
// alongside the CSV figures. The format is versioned and self-describing
// enough to reject mismatched payloads, but deliberately does not encode
// the protocol or variable space — a snapshot is only meaningful to code
// that reconstructs the same Space.

const (
	snapshotMagic   = "POPK"
	snapshotVersion = 1
	kindDense       = byte(1)
	kindCounted     = byte(2)
)

func writeHeader(w io.Writer, kind byte) error {
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, [2]byte{snapshotVersion, kind})
}

func readHeader(r io.Reader, wantKind byte) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("engine: reading snapshot header: %w", err)
	}
	if string(magic[:]) != snapshotMagic {
		return fmt.Errorf("engine: not a population snapshot")
	}
	var vk [2]byte
	if _, err := io.ReadFull(r, vk[:]); err != nil {
		return fmt.Errorf("engine: reading snapshot header: %w", err)
	}
	if vk[0] != snapshotVersion {
		return fmt.Errorf("engine: unsupported snapshot version %d", vk[0])
	}
	if vk[1] != wantKind {
		return fmt.Errorf("engine: snapshot holds population kind %d, want %d", vk[1], wantKind)
	}
	return nil
}

// WriteTo serializes the population. It returns the byte count written.
func (d *Dense) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindDense); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.agents))); err != nil {
		return 0, err
	}
	for _, s := range d.agents {
		if err := binary.Write(bw, binary.LittleEndian, [2]uint64{s.Lo, s.Hi}); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(6 + 8 + 16*len(d.agents)), nil
}

// ReadDense deserializes a dense population.
func ReadDense(r io.Reader) (*Dense, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindDense); err != nil {
		return nil, err
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 2 || n > 1<<40 {
		return nil, fmt.Errorf("engine: implausible snapshot population size %d", n)
	}
	d := &Dense{agents: make([]bitmask.State, n)}
	for i := range d.agents {
		var lanes [2]uint64
		if err := binary.Read(br, binary.LittleEndian, &lanes); err != nil {
			return nil, fmt.Errorf("engine: truncated snapshot at agent %d: %w", i, err)
		}
		d.agents[i] = bitmask.State{Lo: lanes[0], Hi: lanes[1]}
	}
	return d, nil
}

// WriteTo serializes the species table. It returns the byte count written.
func (c *Counted) WriteTo(w io.Writer) (int64, error) {
	c.compact()
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindCounted); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.keys))); err != nil {
		return 0, err
	}
	for i, s := range c.keys {
		rec := [3]uint64{s.Lo, s.Hi, uint64(c.cnt[i])}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(6 + 8 + 24*len(c.keys)), nil
}

// ReadCounted deserializes a counted population.
func ReadCounted(r io.Reader) (*Counted, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, kindCounted); err != nil {
		return nil, err
	}
	var k uint64
	if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
		return nil, err
	}
	if k == 0 || k > 1<<24 {
		return nil, fmt.Errorf("engine: implausible species count %d", k)
	}
	table := make(map[bitmask.State]int64, k)
	for i := uint64(0); i < k; i++ {
		var rec [3]uint64
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("engine: truncated snapshot at species %d: %w", i, err)
		}
		if rec[2] > 1<<40 {
			return nil, fmt.Errorf("engine: implausible species population %d", rec[2])
		}
		table[bitmask.State{Lo: rec[0], Hi: rec[1]}] += int64(rec[2])
	}
	return NewCounted(table), nil
}
