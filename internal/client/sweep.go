package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"popkit/internal/expt"
)

// Sweep posts a parameter grid to POST /v1/sweep and delivers one manifest
// line per grid point to fn, in point order, with the exact NDJSON bytes the
// server sent. It returns the trailing {"sweep": ...} summary.
//
// Retries cover only the pre-stream rejections (429/503 backpressure, with
// the server's Retry-After honored): once manifest lines start flowing, a
// cut connection fails the call — the sweep API has no mid-stream resume
// protocol, and re-POSTing would re-deliver (cheaply, from the server's
// result store) rather than resume. Callers wanting a resumable sweep
// simply re-run it: every point already computed resolves as a cache hit.
func (c *Client) Sweep(ctx context.Context, sw expt.SweepSpec, fn func(res expt.SweepResult, line []byte)) (expt.SweepSummary, error) {
	if c.opt.BaseURL == "" {
		return expt.SweepSummary{}, &permanentError{errors.New("client: no BaseURL")}
	}
	body, err := json.Marshal(sw)
	if err != nil {
		return expt.SweepSummary{}, &permanentError{err}
	}
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return expt.SweepSummary{}, err
		}
		sum, started, retryAfter, err := c.sweepAttempt(ctx, body, fn)
		if err == nil {
			return sum, nil
		}
		var pe *permanentError
		if started || errors.As(err, &pe) {
			return expt.SweepSummary{}, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return expt.SweepSummary{}, cerr
		}
		fails++
		if fails > c.opt.MaxRetries {
			return expt.SweepSummary{}, fmt.Errorf("giving up after %d attempt(s): %w", fails, err)
		}
		wait := retryAfter
		if wait <= 0 {
			wait = c.backoff(fails)
		}
		c.logf("sweep retrying in %v: %v", wait, err)
		if err := sleep(ctx, wait); err != nil {
			return expt.SweepSummary{}, err
		}
	}
}

// sweepAttempt runs one POST /v1/sweep. started reports whether any
// manifest line was delivered (after which the attempt must not be retried).
func (c *Client) sweepAttempt(ctx context.Context, body []byte, fn func(expt.SweepResult, []byte)) (sum expt.SweepSummary, started bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.opt.BaseURL, "/")+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return sum, false, 0, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	c.setQoSHeaders(ctx, req)
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return sum, false, 0, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		c.lastCache = resp.Header.Get("X-Popkit-Cache")
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return sum, false, parseRetryAfter(resp), fmt.Errorf("server busy (%s): %s", resp.Status, readErrorDoc(resp.Body))
	case resp.StatusCode >= 500:
		return sum, false, 0, fmt.Errorf("server error (%s): %s", resp.Status, readErrorDoc(resp.Body))
	default:
		return sum, false, 0, &permanentError{fmt.Errorf("request rejected (%s): %s", resp.Status, readErrorDoc(resp.Body))}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	sawSummary := false
	for sc.Scan() {
		line := sc.Bytes()
		if s, ok := expt.ParseSummaryLine(line); ok {
			sum, sawSummary = s, true
			continue
		}
		var res expt.SweepResult
		if err := json.Unmarshal(line, &res); err != nil {
			return sum, started, 0, &permanentError{fmt.Errorf("undecodable manifest line %.120q: %v", line, err)}
		}
		started = true
		if fn != nil {
			out := make([]byte, len(line)+1)
			copy(out, line)
			out[len(line)] = '\n'
			fn(res, out)
		}
	}
	if err := sc.Err(); err != nil {
		return sum, started, 0, fmt.Errorf("stream read: %w", err)
	}
	if !sawSummary {
		return sum, started, 0, fmt.Errorf("sweep stream ended without a summary line")
	}
	return sum, started, 0, nil
}
