package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"popkit/internal/expt"
)

func testSweepSpec() expt.SweepSpec {
	return expt.SweepSpec{Base: expt.JobSpec{Protocol: "leader", N: 100, Replicas: 2}}
}

// sweepLine renders point i's manifest line the way the server would.
func sweepLine(t *testing.T, i int, cache string) []byte {
	t.Helper()
	res := expt.SweepResult{Point: i, Spec: testSpec(2), Hash: "h", Cache: cache, Records: 2}
	line, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return append(line, '\n')
}

func summaryLine(t *testing.T, sum expt.SweepSummary) []byte {
	t.Helper()
	line, err := expt.MarshalSummaryLine(sum)
	if err != nil {
		t.Fatal(err)
	}
	return line
}

func TestSweepHappyPath(t *testing.T) {
	wantSum := expt.SweepSummary{Points: 2, Hits: 1, Misses: 1}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var sw expt.SweepSpec
		if err := json.NewDecoder(r.Body).Decode(&sw); err != nil || sw.Base.Protocol != "leader" {
			t.Errorf("bad sweep body: %+v err=%v", sw, err)
		}
		w.Write(sweepLine(t, 0, "hit"))
		w.Write(sweepLine(t, 1, "miss"))
		w.Write(summaryLine(t, wantSum))
	}))
	defer ts.Close()

	c := fastClient(ts.URL, 0)
	var got []expt.SweepResult
	var raw []byte
	sum, err := c.Sweep(context.Background(), testSweepSpec(), func(res expt.SweepResult, line []byte) {
		got = append(got, res)
		raw = append(raw, line...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != wantSum {
		t.Fatalf("summary = %+v, want %+v", sum, wantSum)
	}
	if len(got) != 2 || got[0].Cache != "hit" || got[1].Cache != "miss" {
		t.Fatalf("manifest = %+v, want hit then miss", got)
	}
	want := append(sweepLine(t, 0, "hit"), sweepLine(t, 1, "miss")...)
	if string(raw) != string(want) {
		t.Fatalf("delivered bytes differ:\n%s\nvs\n%s", raw, want)
	}
}

func TestSweepRetriesPreStreamBackpressure(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write(sweepLine(t, 0, "miss"))
		w.Write(summaryLine(t, expt.SweepSummary{Points: 1, Misses: 1}))
	}))
	defer ts.Close()

	sum, err := fastClient(ts.URL, 2).Sweep(context.Background(), testSweepSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != 1 || attempts.Load() != 2 {
		t.Fatalf("summary %+v after %d attempts, want 1 point on attempt 2", sum, attempts.Load())
	}
}

func TestSweepExhaustsRetryBudget(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	if _, err := fastClient(ts.URL, 1).Sweep(context.Background(), testSweepSpec(), nil); err == nil {
		t.Fatal("sweep against a permanently busy server succeeded")
	}
	if attempts.Load() != 2 {
		t.Fatalf("made %d attempts, want 2 (initial + one retry)", attempts.Load())
	}
}

func TestSweepDoesNotRetryMidStream(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		// One manifest line, then the connection dies: no summary ever comes.
		w.Write(sweepLine(t, 0, "miss"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 3).Sweep(context.Background(), testSweepSpec(), nil)
	if err == nil {
		t.Fatal("cut mid-stream sweep succeeded")
	}
	if attempts.Load() != 1 {
		t.Fatalf("made %d attempts, want 1 — a started stream must not be re-POSTed", attempts.Load())
	}
}

func TestSweepPermanentRejection(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"bad sweep spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL, 3).Sweep(context.Background(), testSweepSpec(), nil)
	var pe *permanentError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a permanent error", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("made %d attempts, want 1 — 400s must not be retried", attempts.Load())
	}
}

func TestSweepMissingSummaryFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(sweepLine(t, 0, "miss")) // clean EOF, but no summary line
	}))
	defer ts.Close()
	if _, err := fastClient(ts.URL, 0).Sweep(context.Background(), testSweepSpec(), nil); err == nil {
		t.Fatal("summary-less sweep succeeded")
	}
}

func TestSweepUndecodableLineIsPermanent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json\n"))
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL, 3).Sweep(context.Background(), testSweepSpec(), nil)
	var pe *permanentError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a permanent error", err)
	}
}

func TestSweepRequiresBaseURL(t *testing.T) {
	c := New(Options{})
	if _, err := c.Sweep(context.Background(), testSweepSpec(), nil); err == nil {
		t.Fatal("sweep without a BaseURL succeeded")
	}
}

func TestLastCacheStatusTracksHeader(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Popkit-Cache", "hit")
		w.Write(recLine(t, 0))
	}))
	defer ts.Close()
	c := fastClient(ts.URL, 0)
	if got := c.LastCacheStatus(); got != "" {
		t.Fatalf("pre-request cache status %q, want empty", got)
	}
	if _, _, err := collect(t, c, testSpec(1)); err != nil {
		t.Fatal(err)
	}
	if got := c.LastCacheStatus(); got != "hit" {
		t.Fatalf("cache status = %q, want hit", got)
	}
}
