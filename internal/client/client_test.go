package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"popkit/internal/expt"
)

func testSpec(replicas int) expt.JobSpec {
	return expt.JobSpec{Protocol: "leader", N: 100, Seed: 7, Replicas: replicas}
}

// recLine renders replica i's NDJSON line the way the server would.
func recLine(t *testing.T, i int) []byte {
	t.Helper()
	rec := expt.ReplicaRecord{
		Replica: i, Protocol: "leader", N: 100,
		Seed: expt.ReplicaSeed(7, i), Rounds: float64(10 + i), Converged: true,
		Counts: map[string]int64{"L": 1},
	}
	line, err := rec.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	return line
}

func fastClient(url string, retries int) *Client {
	return New(Options{
		BaseURL:     url,
		MaxRetries:  retries,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
}

// collect runs Stream and returns the delivered bytes plus the per-replica
// delivery counts.
func collect(t *testing.T, c *Client, spec expt.JobSpec) ([]byte, map[int]int, error) {
	t.Helper()
	var buf []byte
	seen := map[int]int{}
	err := c.Stream(context.Background(), spec, func(rec expt.ReplicaRecord, line []byte) {
		seen[rec.Replica]++
		buf = append(buf, line...)
	})
	return buf, seen, err
}

func TestStreamHappyPath(t *testing.T) {
	var want []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 3; i++ {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()
	for i := 0; i < 3; i++ {
		want = append(want, recLine(t, i)...)
	}

	got, seen, err := collect(t, fastClient(ts.URL, 0), testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("delivered bytes differ:\n%s\nvs\n%s", got, want)
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Errorf("replica %d delivered %d times", i, seen[i])
		}
	}
}

// TestStreamReconnectResumes: the first response ends after two records (a
// cut connection); the retry replays the full stream and the client skips
// what it already delivered.
func TestStreamReconnectResumes(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		stop := 4
		if n == 1 {
			stop = 2
		}
		for i := 0; i < stop; i++ {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()

	got, seen, err := collect(t, fastClient(ts.URL, 2), testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("made %d requests, want 2", calls.Load())
	}
	var want []byte
	for i := 0; i < 4; i++ {
		want = append(want, recLine(t, i)...)
		if seen[i] != 1 {
			t.Errorf("replica %d delivered %d times", i, seen[i])
		}
	}
	if string(got) != string(want) {
		t.Fatalf("delivered bytes differ after reconnect:\n%s\nvs\n%s", got, want)
	}
}

// TestProgressResetsRetryBudget: with MaxRetries=1, a stream that advances
// one replica per attempt must still finish — each reconnect that makes
// progress refills the budget.
func TestProgressResetsRetryBudget(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1))
		for i := 0; i < n && i < 5; i++ {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()

	_, seen, err := collect(t, fastClient(ts.URL, 1), testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 || calls.Load() != 5 {
		t.Fatalf("delivered %d replicas over %d calls, want 5 over 5", len(seen), calls.Load())
	}
}

func TestStreamHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"queue full"}`)
			return
		}
		w.Write(recLine(t, 0))
	}))
	defer ts.Close()

	start := time.Now()
	_, _, err := collect(t, fastClient(ts.URL, 1), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("Retry-After: 1 not honored (waited only %v)", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("made %d requests, want 2", calls.Load())
	}
}

func TestStreamPermanentRejection(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"bad job spec: unknown protocol"}`)
	}))
	defer ts.Close()

	_, _, err := collect(t, fastClient(ts.URL, 5), testSpec(1))
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v, want the server's rejection", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 retried: %d requests", calls.Load())
	}
}

// TestErrorRecordsNeverDelivered: a failed replica in the stream aborts the
// attempt (retryable) instead of reaching the callback.
func TestErrorRecordsNeverDelivered(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Write(recLine(t, 0))
			bad := expt.ReplicaRecord{Replica: 1, Protocol: "leader", N: 100,
				Err: "replica panicked: boom", ErrKind: "panic"}
			line, _ := bad.MarshalLine()
			w.Write(line)
			return
		}
		for i := 0; i < 3; i++ {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()

	_, seen, err := collect(t, fastClient(ts.URL, 2), testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Errorf("replica %d delivered %d times", i, seen[i])
		}
	}
}

// TestInBandErrorObjectRetried: the server's terminal {"error":...} line is
// a retryable job failure, not a record.
func TestInBandErrorObjectRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Write(recLine(t, 0))
			fmt.Fprintln(w, `{"error":"replica 1 (seed 9): boom"}`)
			return
		}
		w.Write(recLine(t, 0))
		w.Write(recLine(t, 1))
	}))
	defer ts.Close()

	_, seen, err := collect(t, fastClient(ts.URL, 2), testSpec(2))
	if err != nil || len(seen) != 2 {
		t.Fatalf("err=%v seen=%v", err, seen)
	}
}

func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	_, _, err := collect(t, fastClient(ts.URL, 2), testSpec(1))
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v, want exhaustion", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d requests, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestStreamGapIsPermanent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(recLine(t, 1)) // skips replica 0
	}))
	defer ts.Close()

	_, _, err := collect(t, fastClient(ts.URL, 3), testSpec(2))
	if err == nil || !strings.Contains(err.Error(), "stream gap") {
		t.Fatalf("err = %v, want stream gap", err)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fastClient(ts.URL, 100).Stream(ctx, testSpec(1), func(expt.ReplicaRecord, []byte) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamShardWindowDelivery: a spec with start set delivers exactly the
// window [start, replicas) — the contract the cluster coordinator builds on.
func TestStreamShardWindowDelivery(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 2; i < 6; i++ {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()

	spec := testSpec(6)
	spec.Start = 2
	got, seen, err := collect(t, fastClient(ts.URL, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 2; i < 6; i++ {
		want = append(want, recLine(t, i)...)
	}
	if string(got) != string(want) {
		t.Fatalf("window bytes differ:\n%s\nvs\n%s", got, want)
	}
	if len(seen) != 4 || seen[0] != 0 || seen[1] != 0 {
		t.Fatalf("delivered outside the window: %v", seen)
	}
}

// TestStreamReconnectAtShardBoundary: the connection cuts exactly at the end
// of a shard-sized prefix (a worker died right on the boundary the cluster
// re-dispatches from), and the replacement stream replays the whole window.
// The client must suppress the already-delivered prefix and resume without a
// gap or a duplicate.
func TestStreamReconnectAtShardBoundary(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Dies after delivering [2, 4) — exactly one whole shard.
			w.Write(recLine(t, 2))
			w.Write(recLine(t, 3))
			return
		}
		for i := 2; i < 6; i++ {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()

	spec := testSpec(6)
	spec.Start = 2
	got, seen, err := collect(t, fastClient(ts.URL, 2), spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("made %d requests, want 2", calls.Load())
	}
	var want []byte
	for i := 2; i < 6; i++ {
		want = append(want, recLine(t, i)...)
		if seen[i] != 1 {
			t.Errorf("replica %d delivered %d times", i, seen[i])
		}
	}
	if string(got) != string(want) {
		t.Fatalf("boundary reconnect bytes differ:\n%s\nvs\n%s", got, want)
	}
}

// TestStreamSuppressesInStreamDuplicates: a single response that repeats
// already-sent replicas (a resumed journal replaying more than it needed to)
// still delivers each record exactly once.
func TestStreamSuppressesInStreamDuplicates(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, i := range []int{0, 0, 1, 0, 1, 2} {
			w.Write(recLine(t, i))
		}
	}))
	defer ts.Close()

	got, seen, err := collect(t, fastClient(ts.URL, 0), testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 3; i++ {
		want = append(want, recLine(t, i)...)
		if seen[i] != 1 {
			t.Errorf("replica %d delivered %d times", i, seen[i])
		}
	}
	if string(got) != string(want) {
		t.Fatalf("duplicate suppression bytes differ:\n%s\nvs\n%s", got, want)
	}
}

// TestStream503DrainingRetried: a worker answering 503 (draining on SIGTERM)
// is transient exactly like 429 — the client backs off and retries rather
// than failing the job.
func TestStream503DrainingRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"server draining"}`)
			return
		}
		w.Write(recLine(t, 0))
	}))
	defer ts.Close()

	_, seen, err := collect(t, fastClient(ts.URL, 1), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || seen[0] != 1 {
		t.Fatalf("calls=%d seen=%v, want a single retry then delivery", calls.Load(), seen)
	}
}
