// Package client is the retrying HTTP client for popserved's streaming
// simulate endpoint. It hides the service's failure modes behind one call:
// Stream posts a job and delivers each replica record exactly once, in
// replica order, surviving queue backpressure (429/409 with Retry-After),
// transient server errors, and mid-stream disconnects — on reconnect it
// re-posts the same spec and skips the replicas it already delivered, so
// the delivered byte stream is identical to an uninterrupted run.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"popkit/internal/expt"
)

// Options configures a Client. The zero value of every field has a usable
// meaning; only BaseURL is required.
type Options struct {
	// BaseURL is the popserved root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient (tests, timeouts, TLS).
	HTTPClient *http.Client
	// MaxRetries bounds CONSECUTIVE failed attempts — attempts that deliver
	// no new record. An attempt that makes progress (a reconnect that gets
	// further into the stream) resets the budget, so a long job tolerates
	// many separate disconnects without ever giving up mid-recovery.
	MaxRetries int
	// BackoffBase is the first retry delay; doubles per consecutive
	// failure. Default 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Default 5s. A server
	// Retry-After hint overrides the computed backoff entirely.
	BackoffMax time.Duration
	// JitterSeed seeds the deterministic backoff jitter (tests).
	JitterSeed uint64
	// Tenant, when non-empty, is sent as X-Popkit-Tenant on every request,
	// so the server's fair queueing bills this client's jobs to the right
	// per-tenant lane. Empty means the server's default tenant.
	Tenant string
	// Logf, when set, receives one line per retry (diagnostics only).
	Logf func(format string, args ...any)
}

// Client streams simulation jobs from a popserved instance.
type Client struct {
	opt Options
	rng uint64
	// lastCache is the X-Popkit-Cache header of the most recent 200 response
	// ("" when the server has no result store).
	lastCache string
}

// LastCacheStatus reports the X-Popkit-Cache header of the last successful
// attempt: "hit" (served from the server's result store), "miss" (computed,
// then committed), or "" (server has no store, or no attempt yet). Valid
// after Stream or Sweep returns; not safe for use concurrently with them.
func (c *Client) LastCacheStatus() string { return c.lastCache }

// New builds a client; see Options for defaults.
func New(opt Options) *Client {
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	return &Client{opt: opt, rng: opt.JitterSeed}
}

func (c *Client) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// permanentError marks failures no retry can fix (spec rejected, protocol
// violation in the stream).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Stream posts spec to POST /v1/simulate and delivers every replica record
// of the spec's window [spec.Start, spec.Replicas) to fn exactly once, in
// replica order, with the record's exact NDJSON line (newline included) —
// concatenating the lines reproduces the server stream byte for byte. fn is
// never called with an error record: a failed replica aborts the attempt
// and is retried instead, because a crash the server can recover from
// (restart, journal resume, replica retry) must not leak into the output.
// Stream returns nil only after replica spec.Replicas-1 has been delivered.
func (c *Client) Stream(ctx context.Context, spec expt.JobSpec, fn func(rec expt.ReplicaRecord, line []byte)) error {
	if c.opt.BaseURL == "" {
		return &permanentError{errors.New("client: no BaseURL")}
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return &permanentError{err}
	}
	want := spec.Replicas
	if want < 1 {
		want = 1
	}
	next := spec.Start // next replica index to deliver; survives reconnects
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		before := next
		retryAfter, err := c.attempt(ctx, body, &next, want, fn)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if next > before {
			// The attempt got further into the stream: recovery is
			// working, so grant it a fresh failure budget.
			fails = 0
		} else {
			fails++
			if fails > c.opt.MaxRetries {
				return fmt.Errorf("giving up after %d attempt(s) without progress: %w", fails, err)
			}
		}
		wait := retryAfter
		if wait <= 0 {
			wait = c.backoff(fails)
		}
		c.logf("retrying in %v (replica %d/%d delivered): %v", wait, next, want, err)
		if err := sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// attempt runs one POST, advancing *next past every newly delivered record.
// A non-zero retryAfter is the server's own backpressure hint and overrides
// the client's backoff.
func (c *Client) attempt(ctx context.Context, body []byte, next *int, want int, fn func(expt.ReplicaRecord, []byte)) (retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.opt.BaseURL, "/")+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return 0, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	c.setQoSHeaders(ctx, req)
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		c.lastCache = resp.Header.Get("X-Popkit-Cache")
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusConflict,
		resp.StatusCode == http.StatusServiceUnavailable:
		// Backpressure (queue full), our own previous request still
		// winding down (job id busy), or a worker draining on SIGTERM:
		// all transient — honor the server's Retry-After.
		ra := parseRetryAfter(resp)
		return ra, fmt.Errorf("server busy (%s): %s", resp.Status, readErrorDoc(resp.Body))
	case resp.StatusCode >= 500:
		return 0, fmt.Errorf("server error (%s): %s", resp.Status, readErrorDoc(resp.Body))
	default:
		return 0, &permanentError{fmt.Errorf("request rejected (%s): %s", resp.Status, readErrorDoc(resp.Body))}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		// In-band terminal error object ({"error":...}): the job failed
		// server-side after the 200 was committed. Retryable — a rerun (or
		// a journal resume) may get past it.
		var probe struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Error != "" {
			return 0, fmt.Errorf("job failed server-side: %s", probe.Error)
		}
		var rec expt.ReplicaRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return 0, fmt.Errorf("undecodable stream line %.120q: %v", line, err)
		}
		switch {
		case rec.Replica < *next:
			// A resumed stream replays from the journal's start; skip what
			// we already delivered.
			continue
		case rec.Replica > *next:
			return 0, &permanentError{fmt.Errorf("stream gap: got replica %d, want %d", rec.Replica, *next)}
		}
		if rec.Err != "" {
			// Never deliver a failed replica: retry the job instead.
			return 0, fmt.Errorf("replica %d failed (%s): %s", rec.Replica, rec.ErrKind, rec.Err)
		}
		out := make([]byte, len(line)+1)
		copy(out, line)
		out[len(line)] = '\n'
		fn(rec, out)
		*next++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("stream read: %w", err)
	}
	if *next < want {
		return 0, fmt.Errorf("stream ended early at replica %d of %d", *next, want)
	}
	return 0, nil
}

// setQoSHeaders stamps the admission-control headers on one attempt: the
// configured tenant, and — when ctx carries a deadline — the budget still
// remaining, in milliseconds. Because the header is computed per attempt
// from the live context, a caller that re-dispatches work under the same
// context (the cluster coordinator re-routing a shard after a worker died)
// automatically hands the next worker only what is left of the original
// deadline, never a fresh full timeout.
func (c *Client) setQoSHeaders(ctx context.Context, req *http.Request) {
	if c.opt.Tenant != "" {
		req.Header.Set("X-Popkit-Tenant", c.opt.Tenant)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set("X-Popkit-Deadline-Ms", strconv.FormatInt(ms, 10))
		}
	}
}

// backoff is BackoffBase·2^(fails-1) capped at BackoffMax, with ±25%
// deterministic jitter so a fleet of clients doesn't retry in lockstep.
func (c *Client) backoff(fails int) time.Duration {
	d := c.opt.BackoffBase
	for i := 1; i < fails && d < c.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opt.BackoffMax {
		d = c.opt.BackoffMax
	}
	// splitmix64 step on the jitter stream.
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	q := d / 4
	if q > 0 {
		d = d - q + time.Duration(z%uint64(2*q))
	}
	return d
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads the integer-seconds form of Retry-After (the only
// form popserved emits); 0 means absent or unparseable.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// readErrorDoc extracts the {"error":...} body of a non-200 response,
// falling back to the raw bytes.
func readErrorDoc(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4<<10))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(bytes.TrimSpace(raw), &doc) == nil && doc.Error != "" {
		return doc.Error
	}
	return strings.TrimSpace(string(raw))
}
