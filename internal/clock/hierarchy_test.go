package clock

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/osc"
)

func TestHierarchyStructure(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	h := NewHierarchy(sp, x, 2, 12, 6, osc.DefaultParams())
	if h.Levels() != 2 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if len(h.Oscs) != 2 || len(h.Clocks) != 2 || len(h.Slowed) != 1 || len(h.Stored) != 1 {
		t.Fatalf("component counts: %d %d %d %d", len(h.Oscs), len(h.Clocks), len(h.Slowed), len(h.Stored))
	}
	if err := h.Rules().Validate(); err != nil {
		t.Fatalf("hierarchy rules invalid: %v", err)
	}
	// The whole 2-level machinery fits the 128-bit state budget.
	if bits := sp.NumBitsUsed(); bits > 80 {
		t.Errorf("2-level hierarchy uses %d bits", bits)
	}
	// A 3-level hierarchy still fits.
	sp3 := bitmask.NewSpace()
	x3 := sp3.Bool("X")
	NewHierarchy(sp3, x3, 3, 12, 6, osc.DefaultParams())
	if bits := sp3.NumBitsUsed(); bits > bitmask.WordBits {
		t.Errorf("3-level hierarchy uses %d bits", bits)
	}
}

func TestHierarchyInitAgent(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	h := NewHierarchy(sp, x, 2, 12, 6, osc.DefaultParams())
	rng := engine.NewRNG(1)
	s := h.InitAgent(bitmask.State{}, rng)
	for j := 1; j <= 2; j++ {
		if h.Phase(j, s) != 0 {
			t.Errorf("level %d phase = %d at init", j, h.Phase(j, s))
		}
	}
	if h.StoredPhase(2, s) != 0 {
		t.Errorf("stored phase = %d at init", h.StoredPhase(2, s))
	}
	if !h.Slowed[0].Trigger.Get(s) {
		t.Error("level-2 trigger not armed at init")
	}
}

func TestHierarchyValidatesLevels(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	defer func() {
		if recover() == nil {
			t.Error("0-level hierarchy did not panic")
		}
	}()
	NewHierarchy(sp, x, 0, 12, 6, osc.DefaultParams())
}

// TestStoredCopyRefreshAndConsensus drives the stored-copy rules manually:
// agents with a diverged stored value converge to the larger neighbour
// value at phase 2 and refresh from the live counter at phase 0.
func TestStoredCopyRefreshAndConsensus(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	h := NewHierarchy(sp, x, 2, 12, 6, osc.DefaultParams())
	proto := engine.CompileProtocol(h.Rules())
	rng := engine.NewRNG(3)

	const n = 60
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		s := h.InitAgent(bitmask.State{}, rng)
		// Live level-2 counter = 5 everywhere; stored copies split 4/5.
		s = h.Clocks[1].Counter.Set(s, 5)
		if i%2 == 0 {
			s = h.Stored[0].Set(s, 4)
		} else {
			s = h.Stored[0].Set(s, 5)
		}
		// Park level-1 at phase 2 (consensus window) and freeze the
		// tracker by making the population single-species: segment 0
		// listens for species 1, which never appears.
		s = h.Oscs[0].Species.Set(s, 2)
		return h.Clocks[0].Counter.Set(s, 2)
	})
	r := engine.NewRunner(proto, pop, rng)
	r.RunRounds(400)
	larger := 0
	for i := 0; i < n; i++ {
		if h.StoredPhase(2, pop.Agent(i)) == 5 {
			larger++
		}
	}
	if larger < n*9/10 {
		t.Errorf("consensus reached only %d/%d agents", larger, n)
	}

	// Refresh: park level-1 at phase 0; stored copies must snapshot the
	// live counter.
	pop2 := engine.NewDenseInit(n, func(i int) bitmask.State {
		s := h.InitAgent(bitmask.State{}, rng)
		s = h.Clocks[1].Counter.Set(s, 7)
		s = h.Stored[0].Set(s, 1)
		s = h.Oscs[0].Species.Set(s, 2)
		return h.Clocks[0].Counter.Set(s, 0)
	})
	r2 := engine.NewRunner(proto, pop2, rng)
	r2.RunRounds(400)
	refreshed := 0
	for i := 0; i < n; i++ {
		if h.StoredPhase(2, pop2.Agent(i)) == 7 {
			refreshed++
		}
	}
	if refreshed < n*8/10 {
		t.Errorf("refresh reached only %d/%d agents", refreshed, n)
	}
}
