package clock

import (
	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/obs"
)

// PhaseProbe samples a Base clock's population and emits a "phase-tick"
// obs event whenever the dominant phase (the counter value held by the
// largest group of agents) changes, producing the phase timeline the
// paper's round bounds are stated against. A nil probe is inert, and
// sampling only reads the population — it never draws from any RNG, so
// probing cannot perturb a run.
type PhaseProbe struct {
	b       *Base
	level   int
	replica int
	tr      *obs.Trace
	xGuard  bitmask.Guard
	last    int
}

// NewPhaseProbe builds a probe for the clock at the given hierarchy level
// (0 for the base clock), emitting into tr. Returns nil when tr is nil so
// callers can unconditionally Sample.
func NewPhaseProbe(b *Base, level, replica int, tr *obs.Trace) *PhaseProbe {
	if tr == nil {
		return nil
	}
	return &PhaseProbe{
		b: b, level: level, replica: replica, tr: tr,
		xGuard: bitmask.Compile(bitmask.Is(b.Osc.X)),
		last:   -1,
	}
}

// Sample inspects the population at the given parallel time, emitting one
// event per dominant-phase change: the event carries the clock level, the
// new phase, the round number, and the oscillator's #X count (Value). It
// reports whether an event was emitted.
func (p *PhaseProbe) Sample(pop *engine.Dense, rounds float64) bool {
	if p == nil {
		return false
	}
	counts := p.b.PhaseCounts(pop)
	dom, best := 0, -1
	for c, k := range counts {
		if k > best {
			dom, best = c, k
		}
	}
	if dom == p.last {
		return false
	}
	p.last = dom
	p.tr.Emit(obs.Event{
		Kind: "phase-tick", Replica: p.replica, Level: p.level,
		Phase: dom, Rounds: rounds, Name: "clock",
		Value: int64(pop.Count(p.xGuard)),
	})
	return true
}
