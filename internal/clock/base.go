// Package clock implements the paper's phase-clock machinery (§5): the base
// oscillator-driven modulo-m phase clock (Theorem 5.2 and the modulo-m
// extension of §5.1), the protocol-slowdown transformer that lets one clock
// emulate a Θ(log n)-times slower random-matching scheduler for another
// protocol (§5.3), and the resulting hierarchy of clocks whose rates are
// separated by Θ(log n) factors, together with the stored-copy/consensus
// rules used to expose higher clocks' phases to every agent.
package clock

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/osc"
	"popkit/internal/rules"
)

// Base is the oscillator-driven modulo-m phase clock. It has two layers:
//
// Tracker (§5.2 verbatim): a position p ∈ {0, …, 3K−1} split into three
// segments of K. In segment i the agent listens for species (i+1) mod 3:
// meeting it advances p, meeting another species resets p to the segment
// start, so crossing a segment takes K consecutive hits — possible only
// while the listened species dominates, which happens once per dominance
// window. Each agent therefore crosses exactly one segment per window.
//
// Counter (the §5.1 modulo-m extension): a value c ∈ {0, …, m−1}
// incremented whenever the position crosses a segment boundary, so c ticks
// once per dominance window, i.e. every Θ(log n) rounds. Because segments
// repeat modulo 3, agents that miss a window would drift; a confirmation-
// gated cyclic consensus repairs them: an agent that meets agents whose
// counter is cyclically 1 or 2 ahead in ConfirmThreshold consecutive
// encounters adopts the ahead value. The gate makes isolated "seed" agents
// (spurious early crossers, expected count ≈ n·f^K per window) harmless:
// the probability of meeting seeds thrice in a row is negligible, while a
// genuine tick quickly raises the ahead-fraction to Θ(1) and the whole
// population ratchets within O(1) rounds. Agents agree on c up to ±1,
// w.h.p., which is the Theorem 5.2 contract for the modulo-m clock.
type Base struct {
	Osc     *osc.Oscillator
	Pos     bitmask.Field // 3K values: the mod-3 tracker
	Counter bitmask.Field // m values: the clock phase
	Confirm bitmask.Field // 0..ConfirmThreshold-1 consecutive ahead-meetings
	M, K    int

	confirmAt int
	rs        *rules.Ruleset
}

// DefaultK is the calibrated consecutive-hit count.
const DefaultK = 8

// ConfirmThreshold is the default number of consecutive ahead-meetings
// needed before the consensus adopts an ahead counter value.
const ConfirmThreshold = 3

// BaseOptions tune the clock for ablation studies. The zero value is the
// calibrated configuration.
type BaseOptions struct {
	// DisableConsensus omits the counter catch-up rules entirely — the
	// ablated clock demonstrates why the §5.1 modulo-m extension needs a
	// repair mechanism (laggards and splits never heal).
	DisableConsensus bool
	// ConfirmThreshold overrides the confirmation gate (0 = default 3).
	// Threshold 1 adopts on the first ahead-meeting, letting spurious
	// early-crossers drag the population.
	ConfirmThreshold int
}

// NewBase allocates the clock's fields and builds its ruleset (composed
// with, but not containing, the oscillator's rules). m must be a positive
// multiple of 4 (required by the §5.3 slowdown construction); weight is the
// scheduler weight of each of the clock's rule groups.
func NewBase(sp *bitmask.Space, prefix string, o *osc.Oscillator, m, k, weight int) *Base {
	return NewBaseWithOptions(sp, prefix, o, m, k, weight, BaseOptions{})
}

// NewBaseWithOptions is NewBase with ablation knobs.
func NewBaseWithOptions(sp *bitmask.Space, prefix string, o *osc.Oscillator, m, k, weight int, opts BaseOptions) *Base {
	if m <= 0 || m%4 != 0 {
		panic(fmt.Sprintf("clock: module %d must be a positive multiple of 4", m))
	}
	if k < 1 || weight < 1 {
		panic("clock: K and weight must be ≥ 1")
	}
	if opts.ConfirmThreshold == 0 {
		opts.ConfirmThreshold = ConfirmThreshold
	}
	if opts.ConfirmThreshold < 1 {
		panic("clock: confirm threshold must be ≥ 1")
	}
	b := &Base{
		Osc:       o,
		Pos:       sp.Field(prefix+"Pos", uint64(3*k-1)),
		Counter:   sp.Field(prefix+"Ctr", uint64(m-1)),
		Confirm:   sp.Field(prefix+"Cf", uint64(opts.ConfirmThreshold-1)),
		M:         m,
		K:         k,
		confirmAt: opts.ConfirmThreshold,
	}
	b.rs = rules.NewRuleset(sp)
	b.buildTracker(prefix, weight)
	if !opts.DisableConsensus {
		b.buildConsensus(prefix, weight)
	}
	return b
}

// buildTracker emits the §5.2 position rules, expanded over the counter
// value at segment boundaries so the tick is atomic.
func (b *Base) buildTracker(prefix string, weight int) {
	o := b.Osc
	k := b.K
	notX := bitmask.IsNot(o.X)
	// Every rule constrains both Pos and Counter so the group shares one
	// single-cube initiator care mask and dispatches through the O(1)
	// hash index (the hot path of every composed protocol).
	group := make([]rules.Rule, 0, (6*k+3)*b.M)
	for p := 0; p < 3*k; p++ {
		seg := p / k
		listen := uint64((seg + 1) % 3)
		hit := bitmask.And(notX, bitmask.FieldIs(o.Species, listen))
		miss := bitmask.And(notX, bitmask.Not(bitmask.FieldIs(o.Species, listen)))
		next := uint64((p + 1) % (3 * k))
		for c := 0; c < b.M; c++ {
			at := bitmask.And(bitmask.FieldIs(b.Pos, uint64(p)), bitmask.FieldIs(b.Counter, uint64(c)))
			if (p+1)%k == 0 {
				// Segment crossing: advance the position and tick the
				// counter in one transition.
				group = append(group, rules.MustNew(at, hit,
					bitmask.And(bitmask.FieldIs(b.Pos, next), bitmask.FieldIs(b.Counter, uint64((c+1)%b.M))),
					bitmask.True()))
			} else {
				group = append(group, rules.MustNew(at, hit,
					bitmask.FieldIs(b.Pos, next), bitmask.True()))
			}
			// Reset to the segment start on a miss (skip the no-op at
			// offset 0).
			if p%k != 0 {
				group = append(group, rules.MustNew(at, miss,
					bitmask.FieldIs(b.Pos, uint64(seg*k)), bitmask.True()))
			}
		}
	}
	b.rs.AddGroup(prefix+"track", weight, group...)
}

// buildConsensus emits the counter catch-up rules: confirmations on
// meeting a counter cyclically ahead by 1 or 2, reset otherwise, adoption
// at the threshold. Adoption also jumps the agent's tracker position
// forward by the same number of segments: the adopted ticks replace the
// agent's pending crossings, so a pulled-up laggard does not tick again
// (and double-count) when its delayed position run finally completes.
func (b *Base) buildConsensus(prefix string, weight int) {
	m := b.M
	k := b.K
	// Two indexed groups: "confirm" (care mask Counter|Confirm) handles
	// confirmations and resets; "adopt" (care mask Counter|Confirm|Pos)
	// performs the threshold adoption with the position jump. Splitting
	// keeps every rule's initiator guard a single cube, so both groups
	// dispatch through the O(1) hash index.
	confirm := make([]rules.Rule, 0, m*m)
	adopt := make([]rules.Rule, 0, m*2*3*k)
	for c := 0; c < m; c++ {
		own := bitmask.FieldIs(b.Counter, uint64(c))
		for d := 0; d < m; d++ {
			other := bitmask.FieldIs(b.Counter, uint64((c+d)%m))
			switch {
			case d == 1 || d == 2:
				// Ahead: confirm, then adopt (with the position jump,
				// expanded per current tracker position).
				for cf := 0; cf < b.confirmAt-1; cf++ {
					confirm = append(confirm, rules.MustNew(
						bitmask.And(own, bitmask.FieldIs(b.Confirm, uint64(cf))), other,
						bitmask.FieldIs(b.Confirm, uint64(cf+1)), bitmask.True()))
				}
				for p := 0; p < 3*k; p++ {
					seg := p / k
					adopt = append(adopt, rules.MustNew(
						bitmask.And(own, bitmask.FieldIs(b.Confirm, uint64(b.confirmAt-1)), bitmask.FieldIs(b.Pos, uint64(p))),
						other,
						bitmask.And(
							bitmask.FieldIs(b.Counter, uint64((c+d)%m)),
							bitmask.FieldIs(b.Confirm, 0),
							bitmask.FieldIs(b.Pos, uint64(((seg+d)%3)*k))),
						bitmask.True()))
				}
			default:
				// Equal or not-ahead: reset any pending confirmation.
				for cf := 1; cf < b.confirmAt; cf++ {
					confirm = append(confirm, rules.MustNew(
						bitmask.And(own, bitmask.FieldIs(b.Confirm, uint64(cf))), other,
						bitmask.FieldIs(b.Confirm, 0), bitmask.True()))
				}
			}
		}
	}
	b.rs.AddGroup(prefix+"consensus", weight, confirm...)
	b.rs.AddGroup(prefix+"adopt", weight, adopt...)
}

// Rules returns the clock's ruleset (not including the oscillator's).
func (b *Base) Rules() *rules.Ruleset { return b.rs }

// Phase returns the clock phase (counter value) of a state.
func (b *Base) Phase(s bitmask.State) int {
	return int(b.Counter.Get(s))
}

// PhaseFormula returns the formula "agent is in clock phase c".
func (b *Base) PhaseFormula(c int) bitmask.Formula {
	if c < 0 || c >= b.M {
		panic("clock: phase out of range")
	}
	return bitmask.FieldIs(b.Counter, uint64(c))
}

// PhaseModFormula returns the formula "agent's phase ≡ r (mod q)".
func (b *Base) PhaseModFormula(r, q int) bitmask.Formula {
	var parts []bitmask.Formula
	for c := 0; c < b.M; c++ {
		if c%q == r {
			parts = append(parts, b.PhaseFormula(c))
		}
	}
	return bitmask.Or(parts...)
}

// PhaseCounts tallies how many agents are in each phase.
func (b *Base) PhaseCounts(pop *engine.Dense) []int {
	out := make([]int, b.M)
	for i := 0; i < pop.N(); i++ {
		out[b.Phase(pop.Agent(i))]++
	}
	return out
}

// PhaseAgreement returns the largest fraction of agents whose phases lie
// within a cyclic window of two adjacent phases — the "agree up to ±1"
// measure of Theorem 5.2.
func (b *Base) PhaseAgreement(pop *engine.Dense) float64 {
	counts := b.PhaseCounts(pop)
	best := 0
	for j := 0; j < b.M; j++ {
		w := counts[j] + counts[(j+1)%b.M]
		if w > best {
			best = w
		}
	}
	return float64(best) / float64(pop.N())
}
