package clock

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/osc"
	"popkit/internal/rules"
)

// buildClock assembles oscillator + base clock over a fresh space.
func buildClock(n, m, k int, seed uint64) (*osc.Oscillator, *Base, *engine.Runner) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	b := NewBase(sp, "C", o, m, k, o.Ruleset().TotalWeight())
	proto := engine.CompileProtocol(rules.Concat(o.Ruleset(), b.Rules()))
	rng := engine.NewRNG(seed)
	nx := int(math.Sqrt(float64(n)) / 2)
	if nx < 1 {
		nx = 1
	}
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return o.InitState(s, uint64(rng.Intn(3)), false)
	})
	return o, b, engine.NewRunner(proto, pop, rng)
}

// TestBaseClockContract is the Theorem 5.2 calibration: once the oscillator
// is running, the clock phase must ratchet through 0,1,…,m−1 cyclically
// with no skips, each phase reaching near-unanimous agreement, at Θ(log n)
// spacing.
func TestBaseClockContract(t *testing.T) {
	if testing.Short() {
		t.Skip("clock contract test is long")
	}
	const n, m, k = 2000, 12, DefaultK
	_, b, r := buildClock(n, m, k, 3)
	slow := float64(r.P.NumSlots()) / float64(13) // oscillator slot share
	r.RunRounds(1500 * slow)                      // past escape

	lastPhase := -1
	ticks, skips := 0, 0
	var tickTimes []float64
	peak := map[int]float64{}
	horizon := 2200 * slow
	for round := 0.0; round < horizon; round++ {
		r.RunRounds(1)
		counts := b.PhaseCounts(r.Pop)
		bestJ, bestC := 0, 0
		for j, c := range counts {
			if c > bestC {
				bestJ, bestC = j, c
			}
		}
		frac := float64(bestC) / float64(n)
		if frac > peak[bestJ] {
			peak[bestJ] = frac
		}
		if frac > 0.6 && bestJ != lastPhase {
			if lastPhase >= 0 && bestJ != (lastPhase+1)%m {
				skips++
			}
			ticks++
			lastPhase = bestJ
			tickTimes = append(tickTimes, r.Rounds())
		}
	}
	if ticks < m {
		t.Fatalf("only %d phase changes in %0.f rounds; clock not ticking", ticks, horizon)
	}
	if skips > 0 {
		t.Errorf("%d phase skips out of %d ticks", skips, ticks)
	}
	for phase, p := range peak {
		if p < 0.9 {
			t.Errorf("phase %d peaked at only %.2f agreement", phase, p)
		}
	}
	// Tick spacing is Θ(log n) (scaled by the composition slowdown).
	var mean float64
	for i := 1; i < len(tickTimes); i++ {
		mean += tickTimes[i] - tickTimes[i-1]
	}
	mean /= float64(len(tickTimes) - 1)
	logn := math.Log(n)
	if mean < slow*logn || mean > 30*slow*logn {
		t.Errorf("tick spacing %.0f outside Θ(slow·ln n) window [%.0f, %.0f]",
			mean, slow*logn, 30*slow*logn)
	}
}

func TestBaseClockValidation(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	for _, bad := range []struct{ m, k, w int }{
		{10, 4, 1}, // m not a multiple of 4
		{12, 0, 1},
		{12, 4, 0},
		{0, 4, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBase(m=%d,k=%d,w=%d) did not panic", bad.m, bad.k, bad.w)
				}
			}()
			NewBase(bitmask.NewSpace(), "C", o, bad.m, bad.k, bad.w)
		}()
	}
}

func TestBaseClockRulesValidate(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	b := NewBase(sp, "C", o, 12, 4, 1)
	if err := b.Rules().Validate(); err != nil {
		t.Errorf("clock ruleset invalid: %v", err)
	}
	if b.Rules().NumGroups() != 3 {
		t.Errorf("groups = %d, want 3 (track, consensus, adopt)", b.Rules().NumGroups())
	}
}

func TestPhaseFormulas(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	b := NewBase(sp, "C", o, 12, 4, 1)
	var s bitmask.State
	s = b.Counter.Set(s, 7)
	if !bitmask.Compile(b.PhaseFormula(7)).Match(s) {
		t.Error("PhaseFormula(7) does not match counter 7")
	}
	if bitmask.Compile(b.PhaseFormula(6)).Match(s) {
		t.Error("PhaseFormula(6) matches counter 7")
	}
	if b.Phase(s) != 7 {
		t.Errorf("Phase = %d", b.Phase(s))
	}
	// Phase mod formulas partition the phases.
	mod0 := bitmask.Compile(b.PhaseModFormula(0, 4))
	mod2 := bitmask.Compile(b.PhaseModFormula(2, 4))
	for c := uint64(0); c < 12; c++ {
		st := b.Counter.Set(bitmask.State{}, c)
		want0 := c%4 == 0
		want2 := c%4 == 2
		if mod0.Match(st) != want0 || mod2.Match(st) != want2 {
			t.Errorf("mod formulas wrong at counter %d", c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PhaseFormula(12) did not panic")
		}
	}()
	b.PhaseFormula(12)
}

func TestPhaseAgreementMeasure(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	b := NewBase(sp, "C", o, 12, 4, 1)
	pop := engine.NewDenseInit(10, func(i int) bitmask.State {
		var s bitmask.State
		if i < 6 {
			s = b.Counter.Set(s, 3)
		} else if i < 9 {
			s = b.Counter.Set(s, 4)
		} else {
			s = b.Counter.Set(s, 9)
		}
		return s
	})
	if got := b.PhaseAgreement(pop); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("PhaseAgreement = %v, want 0.9", got)
	}
}
