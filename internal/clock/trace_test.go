package clock

import (
	"testing"

	"popkit/internal/obs"
)

func TestPhaseProbeEmitsOnDominantChange(t *testing.T) {
	_, b, r := buildClock(500, 12, 4, 7)
	tr := obs.NewTrace(1024)
	p := NewPhaseProbe(b, 0, 2, tr)

	// First sample always reports the initial dominant phase.
	if !p.Sample(r.Pop, r.Rounds()) {
		t.Fatal("first sample did not emit")
	}
	// Re-sampling an unchanged population is silent.
	if p.Sample(r.Pop, r.Rounds()) {
		t.Fatal("unchanged dominant phase re-emitted")
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != "phase-tick" || e.Level != 0 || e.Replica != 2 || e.Name != "clock" {
		t.Fatalf("unexpected event: %+v", e)
	}
	if e.Phase < 0 || e.Phase >= 12 {
		t.Fatalf("phase out of range: %+v", e)
	}
	if e.Value < 0 || e.Value > 500 {
		t.Fatalf("#X out of range: %+v", e)
	}

	// Run the clock and keep sampling: the tick count must match the
	// number of emitted events, and phases must stay in range.
	ticks := 1
	for i := 0; i < 200; i++ {
		r.RunRounds(5)
		if p.Sample(r.Pop, r.Rounds()) {
			ticks++
		}
	}
	if got := tr.Len(); got != ticks {
		t.Fatalf("trace has %d events, probe reported %d ticks", got, ticks)
	}
	for _, e := range tr.Events() {
		if e.Phase < 0 || e.Phase >= 12 {
			t.Fatalf("phase out of range in %+v", e)
		}
	}
}

func TestPhaseProbeNilSafety(t *testing.T) {
	_, b, r := buildClock(100, 12, 4, 1)
	if NewPhaseProbe(b, 0, 0, nil) != nil {
		t.Fatal("nil trace produced a live probe")
	}
	var p *PhaseProbe
	if p.Sample(r.Pop, 0) {
		t.Fatal("nil probe emitted")
	}
}

// TestPhaseProbeDoesNotPerturbRun pins the determinism contract: sampling
// between rounds must leave the trajectory byte-identical to an unprobed
// run with the same seed.
func TestPhaseProbeDoesNotPerturbRun(t *testing.T) {
	_, b1, r1 := buildClock(300, 12, 4, 99)
	_, _, r2 := buildClock(300, 12, 4, 99)
	tr := obs.NewTrace(1024)
	p := NewPhaseProbe(b1, 0, 0, tr)
	for i := 0; i < 50; i++ {
		r1.RunRounds(2)
		p.Sample(r1.Pop, r1.Rounds())
		r2.RunRounds(2)
	}
	h1, h2 := r1.Pop.Histogram(), r2.Pop.Histogram()
	if len(h1) != len(h2) {
		t.Fatalf("histogram support differs: %v vs %v", h1, h2)
	}
	for s, c := range h1 {
		if h2[s] != c {
			t.Fatalf("probed run diverged at species %v: %d vs %d", s, c, h2[s])
		}
	}
}
