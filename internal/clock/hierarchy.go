package clock

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/osc"
	"popkit/internal/rules"
)

// Hierarchy is the full §5.3 construction: level 1 is a base clock running
// at the oscillator's natural rate (cycle Θ(log n) per phase); every higher
// level is a complete copy of the level-1 machinery (its own oscillator and
// clock, sharing the control state X) executed through the Slow transformer
// gated by the level below, so level j's phase advances Θ(log n) times
// slower than level j−1's: r(j) = Θ((α log n)^j).
//
// For levels j ≥ 2 each agent additionally keeps a stored copy C*_j of the
// level-j phase, refreshed at the start of each level-(j−1) cycle and
// reconciled by the paper's larger-value consensus at phase 2, so that the
// Π_τ time-path guards of the compiled program read stable values
// (Proposition 5.6).
type Hierarchy struct {
	X      bitmask.Var
	Oscs   []*osc.Oscillator // Oscs[j-1] drives level j
	Clocks []*Base           // Clocks[j-1] is level j's clock
	Slowed []*Slowed         // Slowed[j-2] wraps level j ≥ 2
	Stored []bitmask.Field   // Stored[j-2] is C*_j for level j ≥ 2
	M, K   int

	rs *rules.Ruleset
}

// NewHierarchy builds a hierarchy with the given number of levels (≥ 1).
// All levels share the control variable x. m and k parameterize every
// clock; p parameterizes every oscillator.
func NewHierarchy(sp *bitmask.Space, x bitmask.Var, levels, m, k int, p osc.Params) *Hierarchy {
	if levels < 1 {
		panic("clock: hierarchy needs at least one level")
	}
	h := &Hierarchy{X: x, M: m, K: k}
	parts := make([]*rules.Ruleset, 0, 2*levels)
	for j := 1; j <= levels; j++ {
		prefix := fmt.Sprintf("L%d", j)
		o := osc.New(sp, prefix, x, p)
		b := NewBase(sp, prefix, o, m, k, o.Ruleset().TotalWeight())
		h.Oscs = append(h.Oscs, o)
		h.Clocks = append(h.Clocks, b)
		level := rules.Concat(o.Ruleset(), b.Rules())
		if j == 1 {
			parts = append(parts, level)
			continue
		}
		vars := VarSet{
			Vars:   []bitmask.Var{o.Strong},
			Fields: []bitmask.Field{o.Species, b.Pos, b.Counter, b.Confirm},
		}
		sl := Slow(sp, prefix+"n", h.Clocks[j-2], level, vars)
		h.Slowed = append(h.Slowed, sl)
		parts = append(parts, sl.Rules())
		parts = append(parts, h.buildStored(sp, prefix, j))
	}
	h.rs = rules.Concat(parts...)
	return h
}

// buildStored allocates C*_j and emits its refresh and consensus rules,
// gated by the level-(j−1) clock.
func (h *Hierarchy) buildStored(sp *bitmask.Space, prefix string, j int) *rules.Ruleset {
	below := h.Clocks[j-2]
	cur := h.Clocks[j-1].Counter
	star := sp.Field(prefix+"Star", uint64(h.M-1))
	h.Stored = append(h.Stored, star)
	rs := rules.NewRuleset(sp)

	// Refresh: at the start of a level-(j−1) cycle, each agent snapshots
	// the (committed) level-j phase into its stored copy.
	refresh := rules.MustNew(below.PhaseFormula(0), bitmask.True(),
		bitmask.True(), bitmask.True())
	refresh.Copy1 = rules.CopyField(cur, star)
	rs.AddGroup(prefix+"star", 1, refresh)

	// Consensus: strictly later (phase 2 of the clock below), adjacent
	// stored values default to the larger (cyclically: i beats i−1).
	group := make([]rules.Rule, 0, h.M)
	phase2 := below.PhaseFormula(2)
	for i := 0; i < h.M; i++ {
		prev := (i + h.M - 1) % h.M
		group = append(group, rules.MustNew(
			bitmask.And(phase2, bitmask.FieldIs(star, uint64(i))),
			bitmask.And(phase2, bitmask.FieldIs(star, uint64(prev))),
			bitmask.True(),
			bitmask.FieldIs(star, uint64(i))))
	}
	rs.AddGroup(prefix+"starcons", 1, group...)
	return rs
}

// Levels returns the number of levels.
func (h *Hierarchy) Levels() int { return len(h.Clocks) }

// Rules returns the composed ruleset of the entire hierarchy machinery.
func (h *Hierarchy) Rules() *rules.Ruleset { return h.rs }

// Phase returns the committed phase of level j (1-based) in a state.
func (h *Hierarchy) Phase(j int, s bitmask.State) int {
	return h.Clocks[j-1].Phase(s)
}

// StoredPhase returns the stored copy C*_j (j ≥ 2) in a state.
func (h *Hierarchy) StoredPhase(j int, s bitmask.State) int {
	return int(h.Stored[j-2].Get(s))
}

// StoredPhaseFormula returns the formula "stored copy of level j's phase
// equals c" (j ≥ 2).
func (h *Hierarchy) StoredPhaseFormula(j, c int) bitmask.Formula {
	return bitmask.FieldIs(h.Stored[j-2], uint64(c))
}

// InitAgent initializes every level of the hierarchy on one agent state:
// skewed random weak species per level (off-centre start per Theorem 5.2),
// positions and counters zero, triggers armed, stored copies zero.
func (h *Hierarchy) InitAgent(s bitmask.State, rng *engine.RNG) bitmask.State {
	for j, o := range h.Oscs {
		s = o.InitState(s, osc.RandSpecies(rng), false)
		if j >= 1 {
			s = h.Slowed[j-1].InitAgent(s)
		}
	}
	return s
}

// PhaseCounts tallies agents per phase of level j (1-based).
func (h *Hierarchy) PhaseCounts(j int, pop *engine.Dense) []int {
	return h.Clocks[j-1].PhaseCounts(pop)
}
