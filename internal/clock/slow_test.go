package clock

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/osc"
	"popkit/internal/rules"
)

// slowFixture builds a tiny inner protocol P (a mod-4 counter advanced on
// every interaction) wrapped by the Slow transformer, with the gate clock's
// phases driven manually (no oscillator rules composed), so the
// double-buffer mechanics are observable in isolation.
type slowFixture struct {
	sp    *bitmask.Space
	gate  *Base
	inner bitmask.Field
	sl    *Slowed
	proto *engine.Protocol
}

func newSlowFixture(t *testing.T) *slowFixture {
	t.Helper()
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	gate := NewBase(sp, "G", o, 12, 4, 1)

	ctr := sp.Field("Ctr", 3)
	inner := rules.NewRuleset(sp)
	var grp []rules.Rule
	for v := uint64(0); v < 4; v++ {
		grp = append(grp, rules.MustNew(
			bitmask.FieldIs(ctr, v), bitmask.True(),
			bitmask.FieldIs(ctr, (v+1)%4), bitmask.True()))
	}
	inner.AddGroup("count", 1, grp...)

	sl := Slow(sp, "S", gate, inner, VarSet{Fields: []bitmask.Field{ctr}})
	return &slowFixture{
		sp:    sp,
		gate:  gate,
		inner: ctr,
		sl:    sl,
		proto: engine.CompileProtocol(sl.Rules()),
	}
}

// population of n agents pinned at the given gate phase, armed, counter 0.
func (f *slowFixture) population(n int, phase uint64) *engine.Dense {
	return engine.NewDenseInit(n, func(int) bitmask.State {
		var s bitmask.State
		s = f.gate.Counter.Set(s, phase)
		return f.sl.InitAgent(s)
	})
}

func (f *slowFixture) setPhase(pop *engine.Dense, phase uint64) {
	for i := 0; i < pop.N(); i++ {
		pop.SetAgent(i, f.gate.Counter.Set(pop.Agent(i), phase))
	}
}

func (f *slowFixture) newCopy() bitmask.Field { return f.sl.NewFields["Ctr"] }

func TestSlowSimulateWindowAdvancesNewCopyOnce(t *testing.T) {
	f := newSlowFixture(t)
	const n = 100
	pop := f.population(n, 0) // phase 0 ≡ 0 (mod 4): simulation window
	r := engine.NewRunner(f.proto, pop, engine.NewRNG(1))
	r.RunRounds(50)

	armed, advanced := 0, 0
	for i := 0; i < n; i++ {
		s := pop.Agent(i)
		if f.inner.Get(s) != 0 {
			t.Fatalf("agent %d: current copy changed during the simulate window", i)
		}
		nc := f.newCopy().Get(s)
		trig := f.sl.Trigger.Get(s)
		switch {
		case trig && nc == 0:
			armed++ // skipped the window: invariant new == cur holds
		case !trig && nc <= 1:
			advanced++ // simulated exactly one interaction of P
		default:
			t.Fatalf("agent %d: trigger=%v newCopy=%d violates the invariant", i, trig, nc)
		}
	}
	if advanced == 0 {
		t.Fatal("no agent simulated an inner interaction in 50 rounds")
	}
	// Participants must be even: interactions disarm pairs.
	if advanced%2 != 0 {
		t.Errorf("odd number of disarmed agents: %d", advanced)
	}
}

func TestSlowCommitWindowSwapsBuffers(t *testing.T) {
	f := newSlowFixture(t)
	const n = 100
	pop := f.population(n, 0)
	r := engine.NewRunner(f.proto, pop, engine.NewRNG(2))
	r.RunRounds(50) // simulate
	f.setPhase(pop, 2)
	r.RunRounds(50) // commit window: phase 2 ≡ 2 (mod 4)

	for i := 0; i < n; i++ {
		s := pop.Agent(i)
		if !f.sl.Trigger.Get(s) {
			t.Fatalf("agent %d not re-armed after the commit window", i)
		}
		if f.inner.Get(s) != f.newCopy().Get(s) {
			t.Fatalf("agent %d: current %d != new %d after commit",
				i, f.inner.Get(s), f.newCopy().Get(s))
		}
	}
	// At least someone's counter moved to 1.
	g := bitmask.Compile(bitmask.FieldIs(f.inner, 1))
	if pop.Count(g) == 0 {
		t.Error("no committed progress")
	}
}

func TestSlowOutsideWindowsNothingHappens(t *testing.T) {
	f := newSlowFixture(t)
	const n = 60
	pop := f.population(n, 1) // phase 1: neither simulate nor commit
	r := engine.NewRunner(f.proto, pop, engine.NewRNG(3))
	r.RunRounds(80)
	for i := 0; i < n; i++ {
		s := pop.Agent(i)
		if f.inner.Get(s) != 0 || f.newCopy().Get(s) != 0 || !f.sl.Trigger.Get(s) {
			t.Fatalf("agent %d changed outside the gated windows: %s", i, f.sp.Format(s))
		}
	}
}

// TestSlowMatchingSemantics: over a full simulate+commit cycle each agent's
// committed counter advances by at most one — the emulated scheduler is a
// (partial) matching, not a free-for-all.
func TestSlowMatchingSemantics(t *testing.T) {
	f := newSlowFixture(t)
	const n = 100
	pop := f.population(n, 0)
	r := engine.NewRunner(f.proto, pop, engine.NewRNG(4))
	for cycle := 0; cycle < 3; cycle++ {
		f.setPhase(pop, 0)
		r.RunRounds(60)
		f.setPhase(pop, 2)
		r.RunRounds(60)
		for i := 0; i < n; i++ {
			if got := f.inner.Get(pop.Agent(i)); got > uint64(cycle+1) {
				t.Fatalf("cycle %d: agent %d advanced %d times", cycle, i, got)
			}
		}
	}
}

func TestSlowRejectsForeignCopies(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	gate := NewBase(sp, "G", o, 12, 4, 1)
	outside := sp.Bool("Out")
	inside := sp.Bool("In")
	inner := rules.NewRuleset(sp)
	r := rules.MustNew(bitmask.True(), bitmask.True(), bitmask.True(), bitmask.True())
	r.Copy1 = []rules.BitCopy{rules.CopyVar(outside, outside)}
	inner.AddRule(r)
	defer func() {
		if recover() == nil {
			t.Error("copy outside the VarSet did not panic")
		}
	}()
	Slow(sp, "S", gate, inner, VarSet{Vars: []bitmask.Var{inside}})
}
