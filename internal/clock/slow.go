package clock

import (
	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// A VarSet names the state variables and fields constituting a protocol's
// per-agent state, so a transformer can double-buffer them.
type VarSet struct {
	Vars   []bitmask.Var
	Fields []bitmask.Field
}

// Bits returns the total bit count of the set.
func (v VarSet) Bits() int {
	total := len(v.Vars)
	for _, f := range v.Fields {
		total += int(f.Width())
	}
	return total
}

// Slowed is the §5.3 construction: a protocol P re-executed under the
// gating of a clock so that it proceeds at one random-matching step per
// clock cycle quarter — a slowdown of Θ(log n) per level.
//
// Each agent holds the current copy of P's variables (the originals), a new
// copy (freshly allocated), and a trigger S. When two agents meet while
// both are in a clock phase ≡ 0 (mod 4) with S set, they simulate one
// interaction of P reading current copies and writing new copies, and unset
// S; pairs whose picked rule does not match still consume their slot
// (writing new := current), faithfully emulating a non-firing activation of
// the random-matching scheduler. When two agents meet in a phase ≡ 2
// (mod 4), each commits new → current and re-arms S. The invariant "S set ⟹
// new = current" makes agents that miss a window harmlessly idle.
type Slowed struct {
	// Trigger is the §5.3 trigger variable S.
	Trigger bitmask.Var
	// NewVars maps each original variable/field to its new-copy twin.
	NewVars   map[string]bitmask.Var
	NewFields map[string]bitmask.Field

	vars        VarSet
	rs          *rules.Ruleset
	allCurToNew []rules.BitCopy
	allNewToCur []rules.BitCopy
}

// Slow builds the slowed version of protocol p (whose per-agent state is
// vars) gated by the given clock. The returned ruleset contains the
// transformed simulation groups and the commit group; the caller composes
// it with the gate clock's own rules (and the oscillator's).
func Slow(sp *bitmask.Space, prefix string, gate *Base, p *rules.Ruleset, vars VarSet) *Slowed {
	s := &Slowed{
		Trigger:   sp.Bool(prefix + "S"),
		NewVars:   make(map[string]bitmask.Var, len(vars.Vars)),
		NewFields: make(map[string]bitmask.Field, len(vars.Fields)),
		vars:      vars,
	}
	for _, v := range vars.Vars {
		nv := sp.Bool(prefix + v.Name())
		s.NewVars[v.Name()] = nv
		s.allCurToNew = append(s.allCurToNew, rules.CopyVar(v, nv))
		s.allNewToCur = append(s.allNewToCur, rules.CopyVar(nv, v))
	}
	for _, f := range vars.Fields {
		nf := sp.Field(prefix+f.Name(), f.Max())
		s.NewFields[f.Name()] = nf
		s.allCurToNew = append(s.allCurToNew, rules.CopyField(f, nf)...)
		s.allNewToCur = append(s.allNewToCur, rules.CopyField(nf, f)...)
	}

	simWindow := gate.PhaseModFormula(0, 4)
	commitWindow := gate.PhaseModFormula(2, 4)
	armed := bitmask.And(simWindow, bitmask.Is(s.Trigger))

	subVar := func(v bitmask.Var) bitmask.Formula {
		if nv, ok := s.NewVars[v.Name()]; ok {
			return bitmask.Is(nv)
		}
		return bitmask.Is(v)
	}
	subField := func(f bitmask.Field, val uint64) bitmask.Formula {
		if nf, ok := s.NewFields[f.Name()]; ok {
			return bitmask.FieldIs(nf, val)
		}
		return bitmask.FieldIs(f, val)
	}

	s.rs = rules.NewRuleset(sp)
	for _, g := range p.Groups {
		transformed := make([]rules.Rule, 0, g.End-g.Start+1)
		for _, r := range p.Rules[g.Start:g.End] {
			// Guards read the current copies (original variables) and
			// require the simulation window and armed triggers.
			src1 := bitmask.And(armed, r.Src1)
			src2 := bitmask.And(armed, r.Src2)
			// Targets are redirected to the new copies and disarm S.
			src3 := bitmask.And(r.Src3.Substitute(subVar, subField), bitmask.IsNot(s.Trigger))
			src4 := bitmask.And(r.Src4.Substitute(subVar, subField), bitmask.IsNot(s.Trigger))
			nr := rules.MustNew(src1, src2, src3, src4)
			nr.Name = r.Name
			// Copies: first refresh new := current wholesale, then apply
			// the inner rule's own copies redirected onto the new copy;
			// the mask update (explicit literals) wins last.
			nr.Copy1 = append(append([]rules.BitCopy{}, s.allCurToNew...), s.redirectCopies(r.Copy1)...)
			nr.Copy2 = append(append([]rules.BitCopy{}, s.allCurToNew...), s.redirectCopies(r.Copy2)...)
			transformed = append(transformed, nr)
		}
		// Catch-all: an armed pair whose picked rule does not match still
		// consumes its matching-scheduler slot as a no-op.
		catch := rules.MustNew(armed, armed,
			bitmask.IsNot(s.Trigger), bitmask.IsNot(s.Trigger))
		catch.Copy1 = s.allCurToNew
		catch.Copy2 = s.allCurToNew
		transformed = append(transformed, catch)
		name := g.Name
		if name == "" {
			name = prefix + "sim"
		} else {
			name = prefix + name
		}
		s.rs.AddOrderedGroup(name, g.Weight, transformed...)
	}

	// Commit: both agents in a phase ≡ 2 (mod 4) copy new → current and
	// re-arm. Agents that skipped the window commit a no-op (new == cur).
	commit := rules.MustNew(commitWindow, commitWindow,
		bitmask.Is(s.Trigger), bitmask.Is(s.Trigger))
	commit.Copy1 = s.allNewToCur
	commit.Copy2 = s.allNewToCur
	s.rs.AddGroup(prefix+"commit", 1, commit)
	return s
}

// redirectCopies rewrites intra-agent copies so their destinations land in
// the new copy (sources keep reading the current copy).
func (s *Slowed) redirectCopies(copies []rules.BitCopy) []rules.BitCopy {
	if len(copies) == 0 {
		return nil
	}
	// Build a current→new bit position map.
	posMap := make(map[int]int, len(s.allCurToNew))
	for _, c := range s.allCurToNew {
		posMap[c.Src] = c.Dst
	}
	out := make([]rules.BitCopy, len(copies))
	for i, c := range copies {
		dst, ok := posMap[c.Dst]
		if !ok {
			panic("clock: inner rule copies to a bit outside the slowed VarSet")
		}
		out[i] = rules.BitCopy{Src: c.Src, Dst: dst}
	}
	return out
}

// Rules returns the slowed protocol's ruleset (simulation + commit groups).
func (s *Slowed) Rules() *rules.Ruleset { return s.rs }

// InitAgent returns the state with the new copy synchronized to the
// current copy and the trigger armed — the required initial invariant.
func (s *Slowed) InitAgent(st bitmask.State) bitmask.State {
	for _, v := range s.vars.Vars {
		st = s.NewVars[v.Name()].Set(st, v.Get(st))
	}
	for _, f := range s.vars.Fields {
		st = s.NewFields[f.Name()].Set(st, f.Get(st))
	}
	return s.Trigger.Set(st, true)
}
