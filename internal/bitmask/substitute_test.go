package bitmask

import "testing"

func TestSubstituteVars(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	a2 := sp.Bool("A2")

	// f ≡ A ∧ B (written redundantly to exercise Or/Not recursion).
	f := And(Is(a), Or(IsNot(a), Is(b)))
	sub := f.Substitute(func(v Var) Formula {
		if v == a {
			return Is(a2)
		}
		return Is(v)
	}, nil)

	s := b.Set(a2.Set(State{}, true), true) // A2 on, B on, A off
	if !Compile(sub).Match(s) {
		t.Error("substituted formula should match the A2∧B state")
	}
	if Compile(sub).Match(b.Set(a.Set(State{}, true), true)) {
		t.Error("substituted formula still reads the original variable")
	}
	// The original formula is untouched (persistent structure) and still
	// reads A.
	if Compile(f).Match(s) {
		t.Error("substitution mutated the original formula")
	}
}

func TestSubstituteFields(t *testing.T) {
	sp := NewSpace()
	f1 := sp.Field("F", 7)
	f2 := sp.Field("G", 7)
	x := FieldIs(f1, 3)
	sub := x.Substitute(nil, func(f Field, val uint64) Formula {
		return FieldIs(f2, val)
	})
	s := f2.Set(State{}, 3)
	if !Compile(sub).Match(s) {
		t.Error("field substitution lost the literal")
	}
	if Compile(sub).Match(f1.Set(State{}, 3)) {
		t.Error("field substitution still reads the original field")
	}
}

func TestSubstituteNilIsIdentity(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	f := sp.Field("F", 3)
	x := And(Is(a), Not(FieldIs(f, 2)))
	y := x.Substitute(nil, nil)
	for _, s := range []State{{}, a.Set(State{}, true), f.Set(a.Set(State{}, true), 2)} {
		if x.Eval(s) != y.Eval(s) {
			t.Errorf("identity substitution changed semantics on %v", s)
		}
	}
}

func TestMentions(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	f := sp.Field("F", 3)
	g := sp.Field("G", 3)

	x := And(Is(a), Not(FieldIs(f, 1)))
	if !x.Mentions(a) || x.Mentions(b) {
		t.Error("Mentions wrong for variables")
	}
	if !x.MentionsField(f) || x.MentionsField(g) {
		t.Error("MentionsField wrong")
	}
	if True().Mentions(a) || False().MentionsField(f) {
		t.Error("constants mention nothing")
	}
}
