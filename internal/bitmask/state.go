// Package bitmask implements the state representation used by every protocol
// in this repository: a 128-bit word holding named boolean state variables
// and small unsigned integer fields, together with the guard ("bit-mask
// formula") and minimal-update machinery of the paper's rule notation
//
//	▷ (Σ1) + (Σ2) → (Σ3) + (Σ4)
//
// (Kosowski & Uznański, "Population Protocols Are Fast", §1.3). Guards are
// compiled to disjunctions of cubes — (state & care) == want tests — so the
// simulation inner loop never walks a formula tree.
package bitmask

import (
	"fmt"
	"strconv"
	"strings"
)

// WordBits is the number of usable bits in a State.
const WordBits = 128

// State is the full local state of one agent: 128 bits split across two
// uint64 lanes. The zero value is the all-off state.
type State struct {
	Lo, Hi uint64
}

// Bit reports whether bit p (0 ≤ p < WordBits) is set.
func (s State) Bit(p int) bool {
	if p < 64 {
		return s.Lo&(1<<uint(p)) != 0
	}
	return s.Hi&(1<<uint(p-64)) != 0
}

// SetBit returns s with bit p set to v.
func (s State) SetBit(p int, v bool) State {
	var lane *uint64
	var off uint
	if p < 64 {
		lane, off = &s.Lo, uint(p)
	} else {
		lane, off = &s.Hi, uint(p-64)
	}
	if v {
		*lane |= 1 << off
	} else {
		*lane &^= 1 << off
	}
	return s
}

// IsZero reports whether every bit of s is off.
func (s State) IsZero() bool { return s.Lo == 0 && s.Hi == 0 }

// String renders the raw state as a hexadecimal pair, high lane first.
func (s State) String() string {
	return fmt.Sprintf("%016x:%016x", s.Hi, s.Lo)
}

// Var is a named boolean state variable: a single bit position in a State.
type Var struct {
	name string
	pos  int
}

// Name returns the variable's declared name.
func (v Var) Name() string { return v.name }

// Pos returns the variable's bit position.
func (v Var) Pos() int { return v.pos }

// Get reads the variable from a state.
func (v Var) Get(s State) bool { return s.Bit(v.pos) }

// Set writes the variable into a state.
func (v Var) Set(s State, on bool) State { return s.SetBit(v.pos, on) }

// Field is a named unsigned integer state variable occupying width
// consecutive bits inside a single lane of a State. Fields model
// multi-valued components such as the clock position C's ∈ {0, …, 3k−1}.
type Field struct {
	name  string
	hi    bool // true if the field lives in the Hi lane
	shift uint
	width uint
}

// Name returns the field's declared name.
func (f Field) Name() string { return f.name }

// Width returns the field's width in bits.
func (f Field) Width() uint { return f.width }

// Max returns the largest value the field can hold.
func (f Field) Max() uint64 { return (1 << f.width) - 1 }

// BitPos returns the position of the field's least significant bit within
// the 128-bit state word.
func (f Field) BitPos() int {
	if f.hi {
		return 64 + int(f.shift)
	}
	return int(f.shift)
}

// Get reads the field value from a state.
func (f Field) Get(s State) uint64 {
	lane := s.Lo
	if f.hi {
		lane = s.Hi
	}
	return (lane >> f.shift) & f.Max()
}

// Set writes value v (masked to the field width) into a state.
func (f Field) Set(s State, v uint64) State {
	m := f.Max() << f.shift
	bits := (v << f.shift) & m
	if f.hi {
		s.Hi = (s.Hi &^ m) | bits
	} else {
		s.Lo = (s.Lo &^ m) | bits
	}
	return s
}

// laneMasks returns the field's (lo, hi) lane masks.
func (f Field) laneMasks() (uint64, uint64) {
	m := f.Max() << f.shift
	if f.hi {
		return 0, m
	}
	return m, 0
}

// laneBits returns the (lo, hi) lane bit patterns encoding value v.
func (f Field) laneBits(v uint64) (uint64, uint64) {
	bits := (v & f.Max()) << f.shift
	if f.hi {
		return 0, bits
	}
	return bits, 0
}

// Space allocates named variables and fields inside the 128-bit state word.
// It is the single authority on the meaning of each bit for one protocol;
// composed protocols ("threads", §1.3) share one Space so their rule sets can
// be merged without bit collisions.
type Space struct {
	vars   []Var
	fields []Field
	byName map[string]int // index into vars (≥0) or fields (encoded as -1-idx)
	nextLo uint           // next free bit in Lo lane
	nextHi uint           // next free bit in Hi lane
}

// NewSpace returns an empty variable space.
func NewSpace() *Space {
	return &Space{byName: make(map[string]int)}
}

// NumBitsUsed returns the total number of allocated bits.
func (sp *Space) NumBitsUsed() int { return int(sp.nextLo + sp.nextHi) }

// NumStates returns the size of the induced per-agent state space,
// 2^(bits used), saturating at 1<<62. This is the "number of states of the
// interacting automata" in the paper's accounting.
func (sp *Space) NumStates() uint64 {
	b := sp.NumBitsUsed()
	if b >= 62 {
		return 1 << 62
	}
	return 1 << uint(b)
}

func (sp *Space) register(name string) {
	if name == "" {
		panic("bitmask: empty variable name")
	}
	if _, dup := sp.byName[name]; dup {
		panic("bitmask: duplicate variable " + name)
	}
}

// Bool allocates a fresh boolean variable.
func (sp *Space) Bool(name string) Var {
	sp.register(name)
	pos, ok := sp.alloc(1)
	if !ok {
		panic("bitmask: state word exhausted allocating " + name)
	}
	v := Var{name: name, pos: pos}
	sp.byName[name] = len(sp.vars)
	sp.vars = append(sp.vars, v)
	return v
}

// Bools allocates one boolean variable per name, in order.
func (sp *Space) Bools(names ...string) []Var {
	out := make([]Var, len(names))
	for i, n := range names {
		out[i] = sp.Bool(n)
	}
	return out
}

// Field allocates a fresh integer field wide enough to hold values
// 0 … max. It never straddles the lane boundary.
func (sp *Space) Field(name string, max uint64) Field {
	sp.register(name)
	width := uint(1)
	for (uint64(1)<<width)-1 < max {
		width++
	}
	if width > 32 {
		panic("bitmask: field too wide: " + name)
	}
	pos, ok := sp.allocContig(width)
	if !ok {
		panic("bitmask: state word exhausted allocating " + name)
	}
	f := Field{name: name, hi: pos >= 64, width: width}
	if f.hi {
		f.shift = uint(pos - 64)
	} else {
		f.shift = uint(pos)
	}
	sp.byName[name] = -1 - len(sp.fields)
	sp.fields = append(sp.fields, f)
	return f
}

// alloc grabs w bits from whichever lane has room, preferring Lo.
func (sp *Space) alloc(w uint) (int, bool) {
	return sp.allocContig(w)
}

// allocContig grabs w contiguous bits within one lane.
func (sp *Space) allocContig(w uint) (int, bool) {
	if sp.nextLo+w <= 64 {
		p := int(sp.nextLo)
		sp.nextLo += w
		return p, true
	}
	if sp.nextHi+w <= 64 {
		p := 64 + int(sp.nextHi)
		sp.nextHi += w
		return p, true
	}
	return 0, false
}

// LookupVar returns the boolean variable with the given name.
func (sp *Space) LookupVar(name string) (Var, bool) {
	i, ok := sp.byName[name]
	if !ok || i < 0 {
		return Var{}, false
	}
	return sp.vars[i], true
}

// LookupField returns the integer field with the given name.
func (sp *Space) LookupField(name string) (Field, bool) {
	i, ok := sp.byName[name]
	if !ok || i >= 0 {
		return Field{}, false
	}
	return sp.fields[-1-i], true
}

// Vars returns all boolean variables in allocation order.
// The returned slice is a copy.
func (sp *Space) Vars() []Var {
	out := make([]Var, len(sp.vars))
	copy(out, sp.vars)
	return out
}

// Fields returns all integer fields in allocation order.
// The returned slice is a copy.
func (sp *Space) Fields() []Field {
	out := make([]Field, len(sp.fields))
	copy(out, sp.fields)
	return out
}

// Format renders a state using the space's variable names, e.g.
// "A B* C=3"; unset booleans and zero fields are omitted. The zero state
// renders as "∅".
func (sp *Space) Format(s State) string {
	var b strings.Builder
	for _, v := range sp.vars {
		if v.Get(s) {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.name)
		}
	}
	for _, f := range sp.fields {
		if val := f.Get(s); val != 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(f.name)
			b.WriteByte('=')
			b.WriteString(strconv.FormatUint(val, 10))
		}
	}
	if b.Len() == 0 {
		return "∅"
	}
	return b.String()
}
