package bitmask

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompileUpdateLiterals(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	f := sp.Field("C", 7)

	u, err := CompileUpdate(And(Is(a), IsNot(b), FieldIs(f, 5)))
	if err != nil {
		t.Fatal(err)
	}
	s := b.Set(State{}, true)
	s2 := u.Apply(s)
	if !a.Get(s2) || b.Get(s2) || f.Get(s2) != 5 {
		t.Errorf("after update: %s", sp.Format(s2))
	}
}

// TestMinimalUpdateTouchesOnlyMentionedBits is the paper's "minimal update"
// requirement: bits not mentioned in Σ3/Σ4 are preserved.
func TestMinimalUpdateTouchesOnlyMentionedBits(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	sp.Bool("B")
	f := sp.Field("C", 7)
	other := sp.Bool("Z")

	u, err := CompileUpdate(And(Is(a), FieldIs(f, 2)))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(lo, hi uint64) bool {
		s := State{Lo: lo, Hi: hi}
		s2 := u.Apply(s)
		// Mentioned parts reach their target...
		if !a.Get(s2) || f.Get(s2) != 2 {
			return false
		}
		// ...and unmentioned parts survive.
		bvar, _ := sp.LookupVar("B")
		return bvar.Get(s2) == bvar.Get(s) && other.Get(s2) == other.Get(s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateSatisfiesTarget(t *testing.T) {
	// For any random cube formula, applying its compiled update makes the
	// formula true on any starting state.
	sp := NewSpace()
	vars := sp.Bools("A", "B", "C", "D")
	f := sp.Field("P", 15)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		lits := make([]Formula, 0, 4)
		seen := map[int]bool{}
		for i := 0; i < 1+r.Intn(3); i++ {
			vi := r.Intn(len(vars))
			if seen[vi] {
				continue
			}
			seen[vi] = true
			if r.Intn(2) == 0 {
				lits = append(lits, Is(vars[vi]))
			} else {
				lits = append(lits, IsNot(vars[vi]))
			}
		}
		if r.Intn(2) == 0 {
			lits = append(lits, FieldIs(f, uint64(r.Intn(16))))
		}
		target := And(lits...)
		u, err := CompileUpdate(target)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s := State{Lo: r.Uint64(), Hi: r.Uint64()}
		if !target.Eval(u.Apply(s)) {
			t.Fatalf("trial %d: update does not satisfy %s", trial, target)
		}
	}
}

func TestCompileUpdateRejectsNonCubes(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	f := sp.Field("C", 7)
	bad := []Formula{
		Or(Is(a), Is(b)),
		Not(FieldIs(f, 1)),
		Not(And(Is(a), Is(b))),
		False(),
	}
	for _, x := range bad {
		if _, err := CompileUpdate(x); !errors.Is(err, ErrNotCube) {
			t.Errorf("CompileUpdate(%s) err = %v, want ErrNotCube", x, err)
		}
	}
}

func TestCompileUpdateTrueIsNoop(t *testing.T) {
	u, err := CompileUpdate(True())
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsNoop() {
		t.Error("update for (.) is not a no-op")
	}
}

func TestMergeConflictPanics(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	defer func() {
		if recover() == nil {
			t.Error("conflicting merge did not panic")
		}
	}()
	Merge(SetVar(a), ClearVar(a))
}

func TestUpdateThen(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	// Apply set-A then clear-A+set-B: final state has A off, B on.
	first := SetVar(a)
	second := Merge(ClearVar(a), SetVar(b))
	composed := second.Then(first)
	s := composed.Apply(State{})
	if a.Get(s) || !b.Get(s) {
		t.Errorf("composed update wrong: %s", sp.Format(s))
	}
	// Equivalence with sequential application on random states.
	prop := func(lo, hi uint64) bool {
		st := State{Lo: lo, Hi: hi}
		return composed.Apply(st) == second.Apply(first.Apply(st))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateTouches(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	u := SetVar(a)
	aMask := uint64(1) << uint(a.Pos())
	bMask := uint64(1) << uint(b.Pos())
	if !u.Touches(aMask, 0) {
		t.Error("update does not touch its own variable")
	}
	if u.Touches(bMask, 0) {
		t.Error("update touches an unrelated variable")
	}
	if NoUpdate.Touches(^uint64(0), ^uint64(0)) {
		t.Error("NoUpdate touches something")
	}
}

func TestDescribeUpdate(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	f := sp.Field("C", 7)
	u := Merge(SetVar(a), ClearVar(b), StoreField(f, 6))
	if got := sp.DescribeUpdate(u); got != "+A -B C:=6" {
		t.Errorf("DescribeUpdate = %q", got)
	}
	if got := sp.DescribeUpdate(NoUpdate); got != "·" {
		t.Errorf("DescribeUpdate(noop) = %q", got)
	}
}
