package bitmask

// Substitute rebuilds the formula with every boolean-variable literal V
// replaced by sub(V) and every field literal F==v replaced by fsub(F, v).
// Passing nil for either function leaves the corresponding literals
// unchanged. It is used by protocol transformers (e.g. the clock-hierarchy
// slowdown of §5.3) to redirect a ruleset onto a renamed copy of its
// variables.
func (x Formula) Substitute(sub func(Var) Formula, fsub func(Field, uint64) Formula) Formula {
	switch x.kind {
	case fTrue, fFalse:
		return x
	case fVar:
		if sub == nil {
			return x
		}
		return sub(x.v)
	case fFieldEq:
		if fsub == nil {
			return x
		}
		return fsub(x.f, x.val)
	case fNot:
		return Not(x.child[0].Substitute(sub, fsub))
	case fAnd:
		out := make([]Formula, len(x.child))
		for i, c := range x.child {
			out[i] = c.Substitute(sub, fsub)
		}
		return And(out...)
	case fOr:
		out := make([]Formula, len(x.child))
		for i, c := range x.child {
			out[i] = c.Substitute(sub, fsub)
		}
		return Or(out...)
	}
	panic("bitmask: bad formula kind")
}

// Mentions reports whether the formula contains a literal on the given
// boolean variable.
func (x Formula) Mentions(v Var) bool {
	switch x.kind {
	case fVar:
		return x.v == v
	case fNot, fAnd, fOr:
		for _, c := range x.child {
			if c.Mentions(v) {
				return true
			}
		}
	}
	return false
}

// MentionsField reports whether the formula contains a literal on the given
// field.
func (x Formula) MentionsField(f Field) bool {
	switch x.kind {
	case fFieldEq:
		return x.f == f
	case fNot, fAnd, fOr:
		for _, c := range x.child {
			if c.MentionsField(f) {
				return true
			}
		}
	}
	return false
}
