package bitmask

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testSpace builds a space with a handful of booleans and two fields used
// across the formula tests.
func testSpace() (*Space, []Var, []Field) {
	sp := NewSpace()
	vars := sp.Bools("A", "B", "C", "D", "E")
	fields := []Field{sp.Field("P", 5), sp.Field("Q", 3)}
	return sp, vars, fields
}

// randFormula generates a random formula of bounded depth.
func randFormula(r *rand.Rand, vars []Var, fields []Field, depth int) Formula {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return Is(vars[r.Intn(len(vars))])
		case 1:
			return IsNot(vars[r.Intn(len(vars))])
		case 2:
			f := fields[r.Intn(len(fields))]
			return FieldIs(f, uint64(r.Intn(int(f.Max()+1))))
		default:
			return True()
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not(randFormula(r, vars, fields, depth-1))
	case 1:
		return And(randFormula(r, vars, fields, depth-1), randFormula(r, vars, fields, depth-1))
	default:
		return Or(randFormula(r, vars, fields, depth-1), randFormula(r, vars, fields, depth-1))
	}
}

// TestCompileMatchesEval is the core property test: for random formulas and
// random states, the compiled guard and the tree evaluator agree.
func TestCompileMatchesEval(t *testing.T) {
	_, vars, fields := testSpace()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		f := randFormula(r, vars, fields, 3)
		g := Compile(f)
		for probe := 0; probe < 64; probe++ {
			s := State{Lo: r.Uint64(), Hi: r.Uint64()}
			if g.Match(s) != f.Eval(s) {
				t.Fatalf("trial %d: guard disagrees with Eval on %v for formula %s",
					trial, s, f)
			}
		}
	}
}

func TestCompileBasics(t *testing.T) {
	_, vars, fields := testSpace()
	a, b := vars[0], vars[1]
	p := fields[0]

	cases := []struct {
		name    string
		formula Formula
		state   func() State
		want    bool
	}{
		{"true matches zero", True(), func() State { return State{} }, true},
		{"false matches nothing", False(), func() State { return State{} }, false},
		{"var unset", Is(a), func() State { return State{} }, false},
		{"var set", Is(a), func() State { return a.Set(State{}, true) }, true},
		{"not var", IsNot(a), func() State { return State{} }, true},
		{"and", And(Is(a), IsNot(b)), func() State { return a.Set(State{}, true) }, true},
		{"and fails", And(Is(a), Is(b)), func() State { return a.Set(State{}, true) }, false},
		{"or", Or(Is(a), Is(b)), func() State { return b.Set(State{}, true) }, true},
		{"field eq", FieldIs(p, 3), func() State { return p.Set(State{}, 3) }, true},
		{"field neq", Not(FieldIs(p, 3)), func() State { return p.Set(State{}, 4) }, true},
		{"field out of range is false", FieldIs(p, 99), func() State { return State{} }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Compile(tc.formula)
			if got := g.Match(tc.state()); got != tc.want {
				t.Errorf("Match = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestGuardIsFalse(t *testing.T) {
	_, vars, _ := testSpace()
	a := vars[0]
	if !Compile(False()).IsFalse() {
		t.Error("Compile(False) not IsFalse")
	}
	if !Compile(And(Is(a), IsNot(a))).IsFalse() {
		t.Error("contradiction not IsFalse")
	}
	if Compile(Or(Is(a), IsNot(a))).IsFalse() {
		t.Error("tautology reported IsFalse")
	}
}

func TestSimplifyRemovesSubsumedCubes(t *testing.T) {
	_, vars, _ := testSpace()
	a, b := vars[0], vars[1]
	// A ∨ (A ∧ B) ≡ A: should compile to a single cube.
	g := Compile(Or(Is(a), And(Is(a), Is(b))))
	if len(g.Cubes) != 1 {
		t.Errorf("got %d cubes, want 1: %+v", len(g.Cubes), g.Cubes)
	}
}

func TestDoubleNegation(t *testing.T) {
	_, vars, _ := testSpace()
	a := vars[0]
	f := Not(Not(Is(a)))
	s := a.Set(State{}, true)
	if !Compile(f).Match(s) {
		t.Error("double negation lost the literal")
	}
	if Compile(f).Match(State{}) {
		t.Error("double negation matches unset state")
	}
}

func TestDeMorganQuick(t *testing.T) {
	_, vars, fields := testSpace()
	r := rand.New(rand.NewSource(7))
	prop := func(lo, hi uint64) bool {
		x := randFormula(r, vars, fields, 2)
		y := randFormula(r, vars, fields, 2)
		s := State{Lo: lo, Hi: hi}
		lhs := Compile(Not(And(x, y)))
		rhs := Compile(Or(Not(x), Not(y)))
		return lhs.Match(s) == rhs.Match(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFormulaString(t *testing.T) {
	_, vars, fields := testSpace()
	a, b := vars[0], vars[1]
	p := fields[0]
	cases := []struct {
		f    Formula
		want string
	}{
		{True(), "."},
		{Is(a), "A"},
		{IsNot(a), "!A"},
		{And(Is(a), IsNot(b)), "A & !B"},
		{Or(Is(a), Is(b)), "A | B"},
		{FieldIs(p, 2), "P==2"},
		{And(Is(a), Or(Is(b), FieldIs(p, 1))), "A & (B | P==1)"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestAndOrFlattening(t *testing.T) {
	_, vars, _ := testSpace()
	a, b, c := vars[0], vars[1], vars[2]
	f := And(And(Is(a), Is(b)), Is(c))
	if len(f.child) != 3 {
		t.Errorf("nested And not flattened: %d children", len(f.child))
	}
	g := Or(Or(Is(a), Is(b)), Is(c))
	if len(g.child) != 3 {
		t.Errorf("nested Or not flattened: %d children", len(g.child))
	}
	if And().kind != fTrue {
		t.Error("And() != True()")
	}
	if Or().kind != fFalse {
		t.Error("Or() != False()")
	}
}
