package bitmask

import (
	"errors"
	"fmt"
	"strings"
)

// An Update realizes the paper's right-hand-side semantics: "a minimal
// update of the states of the agents so that formulas Σ3 and Σ4 are
// satisfied". The right-hand side of a rule must therefore be a
// *conjunction of literals* (a cube); the update sets the positive literals,
// clears the negative ones, stores field values, and leaves every other bit
// untouched.
type Update struct {
	ClearLo, SetLo uint64
	ClearHi, SetHi uint64
}

// NoUpdate leaves the state unchanged (the "(.)" right-hand side).
var NoUpdate = Update{}

// Apply returns s with the update applied.
func (u Update) Apply(s State) State {
	s.Lo = (s.Lo &^ u.ClearLo) | u.SetLo
	s.Hi = (s.Hi &^ u.ClearHi) | u.SetHi
	return s
}

// IsNoop reports whether the update never changes any state.
func (u Update) IsNoop() bool { return u == NoUpdate }

// Touches reports whether the update writes (sets or clears) any bit
// covered by the given masks.
func (u Update) Touches(maskLo, maskHi uint64) bool {
	return (u.ClearLo|u.SetLo)&maskLo != 0 || (u.ClearHi|u.SetHi)&maskHi != 0
}

// Then composes two updates: v.Then(u) applies u first, then v (v wins on
// conflicting bits).
func (v Update) Then(u Update) Update {
	return Update{
		ClearLo: (u.ClearLo &^ v.SetLo) | v.ClearLo,
		SetLo:   (u.SetLo &^ v.ClearLo) | v.SetLo,
		ClearHi: (u.ClearHi &^ v.SetHi) | v.ClearHi,
		SetHi:   (u.SetHi &^ v.ClearHi) | v.SetHi,
	}
}

// SetVar returns an update setting boolean variable v to on.
func SetVar(v Var) Update { return boolUpdate(v, true) }

// ClearVar returns an update setting boolean variable v to off.
func ClearVar(v Var) Update { return boolUpdate(v, false) }

// StoreField returns an update storing val into field f.
func StoreField(f Field, val uint64) Update {
	var u Update
	u.ClearLo, u.ClearHi = f.laneMasks()
	u.SetLo, u.SetHi = f.laneBits(val)
	return u
}

// Merge combines updates that touch disjoint bits; it panics on overlap
// with conflicting values (programming error in a protocol definition).
func Merge(us ...Update) Update {
	var out Update
	for _, u := range us {
		if conflictLo := (out.SetLo & u.ClearLo) | (out.ClearLo & u.SetLo); conflictLo != 0 {
			panic("bitmask: conflicting updates merged")
		}
		if conflictHi := (out.SetHi & u.ClearHi) | (out.ClearHi & u.SetHi); conflictHi != 0 {
			panic("bitmask: conflicting updates merged")
		}
		out.ClearLo |= u.ClearLo
		out.SetLo |= u.SetLo
		out.ClearHi |= u.ClearHi
		out.SetHi |= u.SetHi
	}
	return out
}

func boolUpdate(v Var, on bool) Update {
	var u Update
	var mask uint64 = 1
	if v.pos < 64 {
		mask <<= uint(v.pos)
		u.ClearLo = mask
		if on {
			u.SetLo = mask
		}
	} else {
		mask <<= uint(v.pos - 64)
		u.ClearHi = mask
		if on {
			u.SetHi = mask
		}
	}
	return u
}

// ErrNotCube is returned by CompileUpdate when the target formula is not a
// conjunction of literals and therefore has no well-defined minimal update.
var ErrNotCube = errors.New("bitmask: rule right-hand side is not a conjunction of literals")

// CompileUpdate lowers a right-hand-side formula Σ to the minimal update
// making Σ true. Allowed shapes: True (i.e. "(.)"), literals, conjunctions
// of literals (including field-equality literals).
func CompileUpdate(x Formula) (Update, error) {
	switch x.kind {
	case fTrue:
		return NoUpdate, nil
	case fFalse:
		return NoUpdate, fmt.Errorf("%w: unsatisfiable target", ErrNotCube)
	case fVar:
		return SetVar(x.v), nil
	case fFieldEq:
		return StoreField(x.f, x.val), nil
	case fNot:
		c := x.child[0]
		switch c.kind {
		case fVar:
			return ClearVar(c.v), nil
		default:
			return NoUpdate, fmt.Errorf("%w: negation of non-variable %q", ErrNotCube, c.String())
		}
	case fAnd:
		parts := make([]Update, 0, len(x.child))
		for _, c := range x.child {
			u, err := CompileUpdate(c)
			if err != nil {
				return NoUpdate, err
			}
			parts = append(parts, u)
		}
		return Merge(parts...), nil
	}
	return NoUpdate, fmt.Errorf("%w: %q", ErrNotCube, x.String())
}

// DescribeUpdate renders an update using the space's variable names,
// e.g. "+A -B C:=3". NoUpdate renders as "·".
func (sp *Space) DescribeUpdate(u Update) string {
	if u.IsNoop() {
		return "·"
	}
	var b strings.Builder
	emit := func(s string) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s)
	}
	for _, v := range sp.vars {
		set := SetVar(v)
		if u.SetLo&set.SetLo != 0 || u.SetHi&set.SetHi != 0 {
			emit("+" + v.name)
		} else if u.ClearLo&set.ClearLo != 0 || u.ClearHi&set.ClearHi != 0 {
			emit("-" + v.name)
		}
	}
	for _, f := range sp.fields {
		mLo, mHi := f.laneMasks()
		if u.ClearLo&mLo != 0 || u.ClearHi&mHi != 0 {
			val := (u.SetLo >> f.shift) & f.Max()
			if f.hi {
				val = (u.SetHi >> f.shift) & f.Max()
			}
			emit(fmt.Sprintf("%s:=%d", f.name, val))
		}
	}
	return b.String()
}
