package bitmask

import (
	"fmt"
	"sort"
	"strings"
)

// A Formula is a boolean expression over the variables and fields of a
// Space. Formulas are the Σ's of the paper's rule notation; they are
// compiled to Guards (disjunctions of cubes) before simulation.
type Formula struct {
	kind  formulaKind
	v     Var
	f     Field
	val   uint64
	child []Formula
}

type formulaKind uint8

const (
	fTrue formulaKind = iota
	fFalse
	fVar
	fFieldEq
	fNot
	fAnd
	fOr
)

// True is the empty formula "(.)": it matches any agent.
func True() Formula { return Formula{kind: fTrue} }

// False matches no agent.
func False() Formula { return Formula{kind: fFalse} }

// Is is the positive literal "V".
func Is(v Var) Formula { return Formula{kind: fVar, v: v} }

// IsNot is the negative literal "¬V".
func IsNot(v Var) Formula { return Not(Is(v)) }

// FieldIs is the literal "F == val".
func FieldIs(f Field, val uint64) Formula {
	if val > f.Max() {
		return False()
	}
	return Formula{kind: fFieldEq, f: f, val: val}
}

// Not negates a formula.
func Not(x Formula) Formula {
	switch x.kind {
	case fTrue:
		return False()
	case fFalse:
		return True()
	case fNot:
		return x.child[0]
	}
	return Formula{kind: fNot, child: []Formula{x}}
}

// And conjoins formulas. And() is True.
func And(xs ...Formula) Formula {
	flat := make([]Formula, 0, len(xs))
	for _, x := range xs {
		switch x.kind {
		case fTrue:
			continue
		case fFalse:
			return False()
		case fAnd:
			flat = append(flat, x.child...)
		default:
			flat = append(flat, x)
		}
	}
	switch len(flat) {
	case 0:
		return True()
	case 1:
		return flat[0]
	}
	return Formula{kind: fAnd, child: flat}
}

// Or disjoins formulas. Or() is False.
func Or(xs ...Formula) Formula {
	flat := make([]Formula, 0, len(xs))
	for _, x := range xs {
		switch x.kind {
		case fFalse:
			continue
		case fTrue:
			return True()
		case fOr:
			flat = append(flat, x.child...)
		default:
			flat = append(flat, x)
		}
	}
	switch len(flat) {
	case 0:
		return False()
	case 1:
		return flat[0]
	}
	return Formula{kind: fOr, child: flat}
}

// Eval evaluates the formula on a concrete state. It is the reference
// semantics against which compiled Guards are property-tested; the
// simulation hot path uses Guard.Match instead.
func (x Formula) Eval(s State) bool {
	switch x.kind {
	case fTrue:
		return true
	case fFalse:
		return false
	case fVar:
		return x.v.Get(s)
	case fFieldEq:
		return x.f.Get(s) == x.val
	case fNot:
		return !x.child[0].Eval(s)
	case fAnd:
		for _, c := range x.child {
			if !c.Eval(s) {
				return false
			}
		}
		return true
	case fOr:
		for _, c := range x.child {
			if c.Eval(s) {
				return true
			}
		}
		return false
	}
	panic("bitmask: bad formula kind")
}

// String renders the formula in the paper's notation.
func (x Formula) String() string {
	switch x.kind {
	case fTrue:
		return "."
	case fFalse:
		return "⊥"
	case fVar:
		return x.v.name
	case fFieldEq:
		return fmt.Sprintf("%s==%d", x.f.name, x.val)
	case fNot:
		c := x.child[0]
		if c.kind == fVar || c.kind == fFieldEq {
			return "!" + c.String()
		}
		return "!(" + c.String() + ")"
	case fAnd, fOr:
		op := " & "
		if x.kind == fOr {
			op = " | "
		}
		parts := make([]string, len(x.child))
		for i, c := range x.child {
			if c.kind == fOr || (x.kind == fOr && c.kind == fAnd) {
				parts[i] = "(" + c.String() + ")"
			} else {
				parts[i] = c.String()
			}
		}
		return strings.Join(parts, op)
	}
	panic("bitmask: bad formula kind")
}

// A Cube is a conjunction of literals compiled to mask form: a state s
// matches iff (s.Lo & CareLo) == WantLo and (s.Hi & CareHi) == WantHi.
type Cube struct {
	CareLo, WantLo uint64
	CareHi, WantHi uint64
}

// FullCube matches every state.
var FullCube = Cube{}

// Match reports whether the cube matches state s.
func (c Cube) Match(s State) bool {
	return s.Lo&c.CareLo == c.WantLo && s.Hi&c.CareHi == c.WantHi
}

// and intersects two cubes; ok is false if they contradict.
func (c Cube) and(d Cube) (Cube, bool) {
	if conflict := (c.CareLo & d.CareLo) & (c.WantLo ^ d.WantLo); conflict != 0 {
		return Cube{}, false
	}
	if conflict := (c.CareHi & d.CareHi) & (c.WantHi ^ d.WantHi); conflict != 0 {
		return Cube{}, false
	}
	return Cube{
		CareLo: c.CareLo | d.CareLo, WantLo: c.WantLo | d.WantLo,
		CareHi: c.CareHi | d.CareHi, WantHi: c.WantHi | d.WantHi,
	}, true
}

// A Guard is a compiled formula: a disjunction of cubes. The zero Guard
// matches nothing; use TrueGuard for "matches everything".
type Guard struct {
	Cubes []Cube
}

// TrueGuard matches every state.
func TrueGuard() Guard { return Guard{Cubes: []Cube{FullCube}} }

// Match reports whether any cube matches s. With one cube (the common case)
// this is two mask-compare operations.
func (g Guard) Match(s State) bool {
	for _, c := range g.Cubes {
		if c.Match(s) {
			return true
		}
	}
	return false
}

// IsFalse reports whether the guard matches no state.
func (g Guard) IsFalse() bool { return len(g.Cubes) == 0 }

// Compile lowers a formula to a Guard in disjunctive normal form.
// Negated field-equality literals expand into one cube per alternative
// value, so fields should be kept narrow (they are: clock counters).
func Compile(x Formula) Guard {
	cubes := toDNF(x)
	return Guard{Cubes: simplify(cubes)}
}

func toDNF(x Formula) []Cube {
	switch x.kind {
	case fTrue:
		return []Cube{FullCube}
	case fFalse:
		return nil
	case fVar:
		return []Cube{varCube(x.v, true)}
	case fFieldEq:
		return []Cube{fieldCube(x.f, x.val)}
	case fNot:
		return negDNF(x.child[0])
	case fAnd:
		acc := []Cube{FullCube}
		for _, c := range x.child {
			acc = andDNF(acc, toDNF(c))
			if len(acc) == 0 {
				return nil
			}
		}
		return acc
	case fOr:
		var acc []Cube
		for _, c := range x.child {
			acc = append(acc, toDNF(c)...)
		}
		return acc
	}
	panic("bitmask: bad formula kind")
}

func negDNF(x Formula) []Cube {
	switch x.kind {
	case fTrue:
		return nil
	case fFalse:
		return []Cube{FullCube}
	case fVar:
		return []Cube{varCube(x.v, false)}
	case fFieldEq:
		// ¬(F==v): one cube per other value of the field.
		out := make([]Cube, 0, x.f.Max())
		for v := uint64(0); v <= x.f.Max(); v++ {
			if v != x.val {
				out = append(out, fieldCube(x.f, v))
			}
		}
		return out
	case fNot:
		return toDNF(x.child[0])
	case fAnd: // ¬(a∧b) = ¬a ∨ ¬b
		var acc []Cube
		for _, c := range x.child {
			acc = append(acc, negDNF(c)...)
		}
		return acc
	case fOr: // ¬(a∨b) = ¬a ∧ ¬b
		acc := []Cube{FullCube}
		for _, c := range x.child {
			acc = andDNF(acc, negDNF(c))
			if len(acc) == 0 {
				return nil
			}
		}
		return acc
	}
	panic("bitmask: bad formula kind")
}

func andDNF(a, b []Cube) []Cube {
	out := make([]Cube, 0, len(a)*len(b))
	for _, ca := range a {
		for _, cb := range b {
			if c, ok := ca.and(cb); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

func varCube(v Var, want bool) Cube {
	var c Cube
	if v.pos < 64 {
		c.CareLo = 1 << uint(v.pos)
		if want {
			c.WantLo = c.CareLo
		}
	} else {
		c.CareHi = 1 << uint(v.pos-64)
		if want {
			c.WantHi = c.CareHi
		}
	}
	return c
}

func fieldCube(f Field, val uint64) Cube {
	var c Cube
	c.CareLo, c.CareHi = f.laneMasks()
	c.WantLo, c.WantHi = f.laneBits(val)
	return c
}

// simplify removes duplicate and subsumed cubes, keeping output order
// deterministic.
func simplify(cubes []Cube) []Cube {
	if len(cubes) <= 1 {
		return cubes
	}
	sort.Slice(cubes, func(i, j int) bool { return cubeLess(cubes[i], cubes[j]) })
	out := cubes[:0]
	for _, c := range cubes {
		dup := false
		for _, k := range out {
			if k == c || cubeCovers(k, c) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// cubeCovers reports whether every state matching c also matches k (k less
// constrained, agreeing where both care).
func cubeCovers(k, c Cube) bool {
	if k.CareLo&^c.CareLo != 0 || k.CareHi&^c.CareHi != 0 {
		return false
	}
	return k.WantLo == c.WantLo&k.CareLo && k.WantHi == c.WantHi&k.CareHi
}

func cubeLess(a, b Cube) bool {
	if a.CareHi != b.CareHi {
		return a.CareHi < b.CareHi
	}
	if a.WantHi != b.WantHi {
		return a.WantHi < b.WantHi
	}
	if a.CareLo != b.CareLo {
		return a.CareLo < b.CareLo
	}
	return a.WantLo < b.WantLo
}
