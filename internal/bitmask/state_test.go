package bitmask

import (
	"testing"
	"testing/quick"
)

func TestStateBitRoundTrip(t *testing.T) {
	var s State
	for p := 0; p < WordBits; p++ {
		if s.Bit(p) {
			t.Fatalf("zero state has bit %d set", p)
		}
	}
	for p := 0; p < WordBits; p += 7 {
		s = s.SetBit(p, true)
	}
	for p := 0; p < WordBits; p++ {
		want := p%7 == 0
		if got := s.Bit(p); got != want {
			t.Errorf("bit %d = %v, want %v", p, got, want)
		}
	}
	for p := 0; p < WordBits; p += 7 {
		s = s.SetBit(p, false)
	}
	if !s.IsZero() {
		t.Errorf("state not zero after clearing all bits: %v", s)
	}
}

func TestStateSetBitIsPure(t *testing.T) {
	var s State
	_ = s.SetBit(3, true)
	if !s.IsZero() {
		t.Error("SetBit mutated its receiver")
	}
}

func TestSpaceBoolAllocation(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	if a.Pos() == b.Pos() {
		t.Fatal("two variables share a bit")
	}
	var s State
	s = a.Set(s, true)
	if !a.Get(s) || b.Get(s) {
		t.Errorf("A=%v B=%v, want true false", a.Get(s), b.Get(s))
	}
	if sp.NumBitsUsed() != 2 {
		t.Errorf("NumBitsUsed = %d, want 2", sp.NumBitsUsed())
	}
	if sp.NumStates() != 4 {
		t.Errorf("NumStates = %d, want 4", sp.NumStates())
	}
}

func TestSpaceDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	sp := NewSpace()
	sp.Bool("A")
	sp.Bool("A")
}

func TestSpaceExhaustionPanics(t *testing.T) {
	sp := NewSpace()
	for i := 0; i < WordBits; i++ {
		sp.Bool(string(rune('a'+i/26)) + string(rune('a'+i%26)) + "x")
	}
	defer func() {
		if recover() == nil {
			t.Error("allocating bit 129 did not panic")
		}
	}()
	sp.Bool("overflow")
}

func TestFieldRoundTrip(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	f := sp.Field("C", 23) // needs 5 bits
	g := sp.Field("D", 1)  // 1 bit
	if f.Width() != 5 {
		t.Errorf("width = %d, want 5", f.Width())
	}
	var s State
	s = a.Set(s, true)
	for v := uint64(0); v <= 23; v++ {
		s = f.Set(s, v)
		if got := f.Get(s); got != v {
			t.Errorf("field C = %d, want %d", got, v)
		}
		if !a.Get(s) {
			t.Error("field store clobbered variable A")
		}
		if g.Get(s) != 0 {
			t.Error("field store clobbered field D")
		}
	}
	// Values are masked to the width.
	s = f.Set(s, 1<<f.Width())
	if got := f.Get(s); got != 0 {
		t.Errorf("masked store = %d, want 0", got)
	}
}

func TestFieldCrossesIntoHiLane(t *testing.T) {
	sp := NewSpace()
	for i := 0; i < 60; i++ {
		sp.Bool(names2(i))
	}
	f := sp.Field("F", 255) // 8 bits cannot fit in the 4 remaining Lo bits
	var s State
	s = f.Set(s, 0xA5)
	if s.Lo != 0 {
		t.Errorf("field leaked into Lo lane: %x", s.Lo)
	}
	if got := f.Get(s); got != 0xA5 {
		t.Errorf("hi-lane field = %#x, want 0xa5", got)
	}
}

func names2(i int) string {
	return "v" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestSpaceLookup(t *testing.T) {
	sp := NewSpace()
	sp.Bool("A")
	sp.Field("C", 7)
	if v, ok := sp.LookupVar("A"); !ok || v.Name() != "A" {
		t.Errorf("LookupVar(A) = %v, %v", v, ok)
	}
	if _, ok := sp.LookupVar("C"); ok {
		t.Error("LookupVar found a field")
	}
	if f, ok := sp.LookupField("C"); !ok || f.Name() != "C" {
		t.Errorf("LookupField(C) = %v, %v", f, ok)
	}
	if _, ok := sp.LookupField("A"); ok {
		t.Error("LookupField found a variable")
	}
	if _, ok := sp.LookupVar("missing"); ok {
		t.Error("LookupVar found a missing name")
	}
}

func TestSpaceFormat(t *testing.T) {
	sp := NewSpace()
	a := sp.Bool("A")
	sp.Bool("B")
	c := sp.Field("C", 7)
	var s State
	if got := sp.Format(s); got != "∅" {
		t.Errorf("Format(zero) = %q", got)
	}
	s = a.Set(s, true)
	s = c.Set(s, 5)
	if got := sp.Format(s); got != "A C=5" {
		t.Errorf("Format = %q, want %q", got, "A C=5")
	}
}

func TestFieldSetGetQuick(t *testing.T) {
	sp := NewSpace()
	f := sp.Field("F", 63)
	prop := func(lo, hi, v uint64) bool {
		s := State{Lo: lo, Hi: hi}
		s2 := f.Set(s, v%64)
		// The store hits exactly the field bits and reads back.
		if f.Get(s2) != v%64 {
			return false
		}
		mLo, mHi := f.laneMasks()
		return s2.Lo&^mLo == s.Lo&^mLo && s2.Hi&^mHi == s.Hi&^mHi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
