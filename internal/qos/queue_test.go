package qos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"popkit/internal/obs"
)

func item(tenant string, c Class, cost time.Duration, tag string) *Item {
	return &Item{Tenant: tenant, Class: c, Cost: cost, Job: tag}
}

// next returns the queue's next item or fails the test after a timeout —
// Next blocks, so a missing wakeup would otherwise hang the suite.
func next(t *testing.T, q *Queue) *Item {
	t.Helper()
	type res struct {
		it *Item
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		it, ok := q.Next()
		ch <- res{it, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatal("queue closed unexpectedly")
		}
		return r.it
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not return")
		return nil
	}
}

func TestFIFOWithinTenantAndClass(t *testing.T) {
	q := NewQueue(QueueConfig{})
	for _, tag := range []string{"a", "b", "c"} {
		if err := q.Enqueue(item("t", ClassBatch, time.Second, tag)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		it := next(t, q)
		if it.Job.(string) != want {
			t.Fatalf("got %v, want %v", it.Job, want)
		}
		q.Done(it)
	}
}

func TestClassPriorityWithinTenant(t *testing.T) {
	q := NewQueue(QueueConfig{})
	q.Enqueue(item("t", ClassWhale, time.Hour, "whale"))
	q.Enqueue(item("t", ClassBatch, 5*time.Second, "batch"))
	q.Enqueue(item("t", ClassInteractive, time.Millisecond, "inter"))
	for _, want := range []string{"inter", "batch", "whale"} {
		it := next(t, q)
		if it.Job.(string) != want {
			t.Fatalf("got %v, want %v", it.Job, want)
		}
		q.Done(it)
	}
}

func TestInteractiveNeverBehindAnotherTenantsWhales(t *testing.T) {
	q := NewQueue(QueueConfig{WhaleGlobal: 4, WhalePerTenant: 4})
	for i := 0; i < 8; i++ {
		if err := q.Enqueue(item("whaler", ClassWhale, time.Hour, "whale")); err != nil {
			t.Fatal(err)
		}
	}
	q.Enqueue(item("alice", ClassInteractive, time.Millisecond, "inter"))
	// Strict class priority: the interactive item dispatches first even
	// though the whale tenant queued first and has eight items waiting.
	it := next(t, q)
	if it.Job.(string) != "inter" {
		t.Fatalf("first dispatch = %v, want the interactive job", it.Job)
	}
	q.Done(it)
}

func TestDRRWeightedShare(t *testing.T) {
	q := NewQueue(QueueConfig{
		PerTenantDepth: 100,
		GlobalDepth:    300,
		Weights:        map[string]int{"heavy": 4, "light": 1},
	})
	for i := 0; i < 80; i++ {
		q.Enqueue(item("heavy", ClassBatch, time.Second, "heavy"))
		q.Enqueue(item("light", ClassBatch, time.Second, "light"))
	}
	counts := map[string]int{}
	for i := 0; i < 50; i++ {
		it := next(t, q)
		counts[it.Tenant]++
		q.Done(it)
	}
	if counts["heavy"] < 3*counts["light"] {
		t.Fatalf("weight-4 tenant got %d dispatches vs %d — want ≥ 3×", counts["heavy"], counts["light"])
	}
	if counts["light"] == 0 {
		t.Fatal("weight-1 tenant fully starved")
	}
}

func TestEqualWeightShareDespiteCostGap(t *testing.T) {
	// One tenant's items are 100× more expensive (capped by ChargeCap):
	// the cheap tenant must get proportionally more dispatches, and the
	// expensive tenant must still progress.
	q := NewQueue(QueueConfig{PerTenantDepth: 100, GlobalDepth: 300, ChargeCap: 10 * time.Second})
	for i := 0; i < 60; i++ {
		q.Enqueue(item("cheap", ClassBatch, 100*time.Millisecond, "cheap"))
		q.Enqueue(item("dear", ClassBatch, 10*time.Second, "dear"))
	}
	var order []string
	for i := 0; i < 120; i++ {
		it := next(t, q)
		order = append(order, it.Tenant)
		q.Done(it)
	}
	early := 0
	for _, tn := range order[:50] {
		if tn == "cheap" {
			early++
		}
	}
	if early < 45 {
		t.Fatalf("cost-aware DRR should front-load the cheap tenant: %d/50 early dispatches", early)
	}
	dear := 0
	for _, tn := range order {
		if tn == "dear" {
			dear++
		}
	}
	if dear != 60 {
		t.Fatalf("expensive tenant dispatched %d of 60 items", dear)
	}
}

func TestWhaleCaps(t *testing.T) {
	q := NewQueue(QueueConfig{WhaleGlobal: 1, WhalePerTenant: 1})
	q.Enqueue(item("a", ClassWhale, time.Hour, "w1"))
	q.Enqueue(item("b", ClassWhale, time.Hour, "w2"))
	first := next(t, q)

	// The global cap holds the second whale back even though a worker asks.
	got := make(chan *Item, 1)
	go func() {
		it, ok := q.Next()
		if ok {
			got <- it
		}
	}()
	select {
	case it := <-got:
		t.Fatalf("second whale %v dispatched past the global cap", it.Job)
	case <-time.After(100 * time.Millisecond):
	}
	// A batch job is unaffected by whale caps.
	q.Enqueue(item("c", ClassBatch, time.Second, "batch"))
	select {
	case it := <-got:
		if it.Job.(string) != "batch" {
			t.Fatalf("expected the batch job to bypass capped whales, got %v", it.Job)
		}
		q.Done(it)
	case <-time.After(5 * time.Second):
		t.Fatal("batch job did not dispatch while whales were capped")
	}
	// Finishing the first whale frees the slot.
	q.Done(first)
	it := next(t, q)
	if it.Job.(string) != "w2" {
		t.Fatalf("after Done, got %v, want w2", it.Job)
	}
	if q.WhalesRunning() != 1 {
		t.Fatalf("whales running = %d, want 1", q.WhalesRunning())
	}
	q.Done(it)
	if q.WhalesRunning() != 0 {
		t.Fatalf("whales running after Done = %d, want 0", q.WhalesRunning())
	}
}

func TestPerTenantWhaleCap(t *testing.T) {
	q := NewQueue(QueueConfig{WhaleGlobal: 8, WhalePerTenant: 1})
	q.Enqueue(item("a", ClassWhale, time.Hour, "a1"))
	q.Enqueue(item("a", ClassWhale, time.Hour, "a2"))
	q.Enqueue(item("b", ClassWhale, time.Hour, "b1"))
	first := next(t, q)
	second := next(t, q)
	if first.Tenant == second.Tenant {
		t.Fatalf("two running whales from tenant %q despite per-tenant cap 1", first.Tenant)
	}
	q.Done(first)
	q.Done(second)
}

func TestEnqueueLimits(t *testing.T) {
	q := NewQueue(QueueConfig{PerTenantDepth: 2, GlobalDepth: 3, MaxTenants: 2})
	if err := q.Enqueue(item("a", ClassBatch, time.Second, "1")); err != nil {
		t.Fatal(err)
	}
	q.Enqueue(item("a", ClassBatch, time.Second, "2"))
	if err := q.Enqueue(item("a", ClassBatch, time.Second, "3")); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("tenant overflow: %v, want ErrTenantFull", err)
	}
	q.Enqueue(item("b", ClassBatch, time.Second, "4"))
	if err := q.Enqueue(item("b", ClassBatch, time.Second, "5")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global overflow: %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Enqueue(item("a", ClassBatch, time.Second, "7")); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("closed queue: %v, want ErrQueueClosed", err)
	}

	// Tenant cardinality: with ample depth and both tenants busy, a third
	// tenant cannot evict anyone and is refused.
	q2 := NewQueue(QueueConfig{PerTenantDepth: 4, GlobalDepth: 16, MaxTenants: 2})
	q2.Enqueue(item("a", ClassBatch, time.Second, "a1"))
	q2.Enqueue(item("b", ClassBatch, time.Second, "b1"))
	if err := q2.Enqueue(item("c", ClassBatch, time.Second, "c1")); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("tenant cardinality: %v, want ErrTenantLimit", err)
	}
}

func TestIdleTenantEviction(t *testing.T) {
	q := NewQueue(QueueConfig{MaxTenants: 1})
	q.Enqueue(item("a", ClassBatch, time.Second, "a1"))
	it := next(t, q)
	q.Done(it)
	// Tenant a is idle now; tenant b takes its slot.
	if err := q.Enqueue(item("b", ClassBatch, time.Second, "b1")); err != nil {
		t.Fatalf("idle tenant not evicted: %v", err)
	}
	it = next(t, q)
	if it.Tenant != "b" {
		t.Fatalf("got tenant %q, want b", it.Tenant)
	}
	q.Done(it)
}

func TestCloseDrainsThenStops(t *testing.T) {
	q := NewQueue(QueueConfig{})
	q.Enqueue(item("t", ClassBatch, time.Second, "1"))
	q.Enqueue(item("t", ClassBatch, time.Second, "2"))
	q.Close()
	for i := 0; i < 2; i++ {
		it, ok := q.Next()
		if !ok {
			t.Fatalf("queued item %d lost on close", i)
		}
		q.Done(it)
	}
	if _, ok := q.Next(); ok {
		t.Fatal("Next returned an item from an empty closed queue")
	}
	q.Close() // idempotent
}

func TestDepthAndChargeSampling(t *testing.T) {
	q := NewQueue(QueueConfig{ChargeCap: 10 * time.Second, PerTenantDepth: 4, ShedDepth: 2})
	q.Enqueue(item("t", ClassBatch, 3*time.Second, "1"))
	q.Enqueue(item("t", ClassBatch, time.Hour, "2")) // charge capped at 10s
	if d := q.Depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	if d := q.TenantDepth("t"); d != 2 {
		t.Fatalf("tenant depth = %d, want 2", d)
	}
	if d := q.TenantDepth("ghost"); d != 0 {
		t.Fatalf("ghost tenant depth = %d", d)
	}
	if c := q.TenantQueuedCharge("t"); c != 13*time.Second {
		t.Fatalf("queued charge = %v, want 13s", c)
	}
	if !q.Overloaded() {
		t.Fatal("2 queued with ShedDepth 2 must report overload")
	}
	it := next(t, q)
	q.Done(it)
	it = next(t, q)
	q.Done(it)
	if q.Overloaded() {
		t.Fatal("drained queue still overloaded")
	}
	if c := q.TenantQueuedCharge("t"); c != 0 {
		t.Fatalf("drained queued charge = %v", c)
	}
	if q.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", q.Capacity())
	}
}

// TestConcurrentProducersConsumers is the race-detector workout: many
// producers and consumers over all classes and several tenants, with whale
// caps in play, must neither deadlock nor lose items.
func TestConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(QueueConfig{
		PerTenantDepth: 1000,
		GlobalDepth:    4000,
		WhaleGlobal:    2,
		WhalePerTenant: 1,
	})
	const perTenant = 50
	tenants := []string{"a", "b", "c"}
	var produced sync.WaitGroup
	for _, tn := range tenants {
		produced.Add(1)
		go func(tn string) {
			defer produced.Done()
			for i := 0; i < perTenant; i++ {
				c := Classes()[i%3]
				cost := time.Millisecond
				if c == ClassWhale {
					cost = time.Hour
				}
				for q.Enqueue(item(tn, c, cost, tn)) != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}(tn)
	}
	var mu sync.Mutex
	got := 0
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				it, ok := q.Next()
				if !ok {
					return
				}
				mu.Lock()
				got++
				mu.Unlock()
				q.Done(it)
			}
		}()
	}
	produced.Wait()
	q.Close()
	workers.Wait()
	if want := perTenant * len(tenants); got != want {
		t.Fatalf("dispatched %d items, want %d", got, want)
	}
	if q.WhalesRunning() != 0 {
		t.Fatalf("whales running after drain: %d", q.WhalesRunning())
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics(nil) // nil registry: inert series, no panics
	m.Admitted("t", ClassInteractive)
	m.Rejected("t", ClassWhale, "over_budget")
	m.Shed("t", ClassWhale, "overload")
	m.QueueWait("t", time.Millisecond)
	m.ObservePrediction(time.Second, 3*time.Second)
	m.ObservePrediction(3*time.Second, time.Second)
	_ = m.Snapshot()

	reg := obs.NewRegistry()
	m = NewMetrics(reg)
	m.Admitted("alice", ClassInteractive)
	m.Admitted("alice", ClassInteractive)
	m.Rejected("bob", ClassWhale, "over_budget")
	m.Shed("bob", ClassWhale, "draining")
	m.QueueWait("alice", 5*time.Millisecond)
	snap := m.Snapshot()
	if snap.Tenants["alice"].Admitted["interactive"] != 2 {
		t.Fatalf("alice interactive admitted = %d, want 2", snap.Tenants["alice"].Admitted["interactive"])
	}
	if snap.Tenants["bob"].Rejected["over_budget"] != 1 {
		t.Fatalf("bob over_budget = %d, want 1", snap.Tenants["bob"].Rejected["over_budget"])
	}
	if snap.Tenants["bob"].Shed["draining"] != 1 {
		t.Fatalf("bob shed draining = %d, want 1", snap.Tenants["bob"].Shed["draining"])
	}
	if snap.Tenants["alice"].QueueWait.Count != 1 {
		t.Fatalf("alice queue-wait count = %d, want 1", snap.Tenants["alice"].QueueWait.Count)
	}
}
