package qos

import (
	"sync"
	"time"

	"popkit/internal/obs"
)

// maxMetricTenants bounds per-tenant label cardinality. Admitted tenants
// are already capped by QueueConfig.MaxTenants, but rejections can name
// arbitrarily many tenants; past the cap they collapse into "_other".
const maxMetricTenants = 256

// Metrics is the popkit_qos_* series set, registered on a shared
// obs.Registry so the series land in the same /metrics exposition (JSON
// and Prometheus) as the rest of the server.
type Metrics struct {
	reg *obs.Registry

	// PredictionError is the |actual − predicted| per-replica wall-clock
	// histogram — the model-drift signal.
	PredictionError *obs.Histogram
	// WhalesRunning mirrors the queue's running-whale gauge.
	WhalesRunning *obs.GaugeInt

	mu      sync.Mutex
	tenants map[string]*tenantMetrics
}

// tenantMetrics is one tenant's counter set, created lazily.
type tenantMetrics struct {
	admitted  [3]*obs.Counter
	rejected  map[string]*obs.Counter // by reason
	shed      map[string]*obs.Counter // by reason
	queueWait *obs.Histogram
}

// NewMetrics registers the qos families on reg (nil-safe: a nil registry
// yields inert series).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		PredictionError: reg.Histogram("popkit_qos_prediction_error_seconds",
			"absolute error of the cost model's per-replica prediction"),
		WhalesRunning: reg.Gauge("popkit_qos_whales_running",
			"whale-class jobs currently executing"),
		tenants: make(map[string]*tenantMetrics),
	}
}

// tenant returns (and lazily creates) the tenant's counter set, along with
// the resolved label value — "_other" once the cardinality cap is hit.
func (m *Metrics) tenant(name string) (*tenantMetrics, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	if ok {
		return t, name
	}
	if len(m.tenants) >= maxMetricTenants {
		name = "_other"
		if t, ok = m.tenants[name]; ok {
			return t, name
		}
	}
	t = &tenantMetrics{
		rejected: make(map[string]*obs.Counter),
		shed:     make(map[string]*obs.Counter),
		queueWait: m.reg.Histogram("popkit_qos_queue_wait_seconds",
			"time jobs spent queued before dispatch", obs.L("tenant", name)),
	}
	for _, c := range Classes() {
		t.admitted[c] = m.reg.Counter("popkit_qos_admitted_total",
			"jobs admitted past QoS, by tenant and size class",
			obs.L("tenant", name), obs.L("class", c.String()))
	}
	m.tenants[name] = t
	return t, name
}

// Admitted counts one admission.
func (m *Metrics) Admitted(tenant string, c Class) {
	t, _ := m.tenant(tenant)
	t.admitted[c].Inc()
}

// Rejected counts one structured rejection (429/413) by reason.
func (m *Metrics) Rejected(tenant string, c Class, reason string) {
	t, name := m.tenant(tenant)
	m.mu.Lock()
	ctr, ok := t.rejected[reason]
	if !ok {
		ctr = m.reg.Counter("popkit_qos_rejected_total",
			"jobs rejected by QoS admission, by tenant and reason",
			obs.L("tenant", name), obs.L("reason", reason))
		t.rejected[reason] = ctr
	}
	m.mu.Unlock()
	ctr.Inc()
}

// Shed counts one load-shed rejection (503 under pressure or drain).
func (m *Metrics) Shed(tenant string, c Class, reason string) {
	t, name := m.tenant(tenant)
	m.mu.Lock()
	ctr, ok := t.shed[reason]
	if !ok {
		ctr = m.reg.Counter("popkit_qos_shed_total",
			"jobs shed under overload or drain, by tenant and reason",
			obs.L("tenant", name), obs.L("reason", reason))
		t.shed[reason] = ctr
	}
	m.mu.Unlock()
	ctr.Inc()
}

// QueueWait records how long a dispatched job sat queued.
func (m *Metrics) QueueWait(tenant string, d time.Duration) {
	t, _ := m.tenant(tenant)
	t.queueWait.Observe(d)
}

// ObservePrediction records one predicted-vs-actual per-replica pair.
func (m *Metrics) ObservePrediction(predicted, actual time.Duration) {
	diff := actual - predicted
	if diff < 0 {
		diff = -diff
	}
	m.PredictionError.Observe(diff)
}

// TenantSnapshot is one tenant's QoS tallies in the JSON document.
type TenantSnapshot struct {
	Admitted  map[string]int64      `json:"admitted"`
	Rejected  map[string]int64      `json:"rejected,omitempty"`
	Shed      map[string]int64      `json:"shed,omitempty"`
	QueueWait obs.HistogramSnapshot `json:"queue_wait"`
}

// Snapshot is the "qos" section of the /metrics JSON document.
type Snapshot struct {
	Tenants         map[string]TenantSnapshot `json:"tenants"`
	PredictionError obs.HistogramSnapshot     `json:"prediction_error"`
	WhalesRunning   int64                     `json:"whales_running"`
	// Corrections are the cost model's per-tier EWMA multipliers
	// (1.0 = raw grid; populated by the server from its model).
	Corrections map[string]float64 `json:"corrections,omitempty"`
}

// Snapshot renders the current tallies.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Tenants:         make(map[string]TenantSnapshot, len(m.tenants)),
		PredictionError: m.PredictionError.Snapshot(),
		WhalesRunning:   m.WhalesRunning.Load(),
	}
	for name, t := range m.tenants {
		ts := TenantSnapshot{
			Admitted:  make(map[string]int64, 3),
			QueueWait: t.queueWait.Snapshot(),
		}
		for _, c := range Classes() {
			ts.Admitted[c.String()] = int64(t.admitted[c].Load())
		}
		if len(t.rejected) > 0 {
			ts.Rejected = make(map[string]int64, len(t.rejected))
			for reason, ctr := range t.rejected {
				ts.Rejected[reason] = int64(ctr.Load())
			}
		}
		if len(t.shed) > 0 {
			ts.Shed = make(map[string]int64, len(t.shed))
			for reason, ctr := range t.shed {
				ts.Shed[reason] = int64(ctr.Load())
			}
		}
		s.Tenants[name] = ts
	}
	return s
}
