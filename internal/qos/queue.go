package qos

import (
	"errors"
	"sync"
	"time"
)

// DefaultTenant is the queue a request without an X-Popkit-Tenant header
// lands in.
const DefaultTenant = "default"

// CleanTenant validates a tenant name from the wire: empty maps to
// DefaultTenant; otherwise up to 64 characters of [A-Za-z0-9._-]. The
// second return is false for anything else — reject the request rather
// than letting arbitrary header bytes become metric labels and map keys.
func CleanTenant(s string) (string, bool) {
	if s == "" {
		return DefaultTenant, true
	}
	if len(s) > 64 {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", false
		}
	}
	return s, true
}

// Enqueue rejections. Each maps to one structured-429 reason on the wire.
var (
	ErrQueueClosed = errors.New("queue closed")
	ErrQueueFull   = errors.New("job queue full (global)")
	ErrTenantFull  = errors.New("job queue full (tenant)")
	ErrTenantLimit = errors.New("too many distinct tenants")
)

// Item is one queued unit of work. Job carries the caller's payload
// opaquely; Tenant/Class/Cost drive scheduling.
type Item struct {
	Tenant string
	Class  Class
	// Cost is the predicted total cost (Prediction.Total); the DRR charge
	// is capped at ChargeCap so a whale cannot wedge its tenant's deficit.
	Cost     time.Duration
	Enqueued time.Time
	Job      any
}

// QueueConfig sizes a Queue. Zero values mean defaults.
type QueueConfig struct {
	// PerTenantDepth bounds each tenant's queued jobs — the direct analogue
	// of the old single-queue depth, so a single-tenant server keeps its
	// historical 429 behaviour. Default 64.
	PerTenantDepth int
	// GlobalDepth bounds total queued jobs across tenants.
	// Default 4 × PerTenantDepth.
	GlobalDepth int
	// MaxTenants bounds distinct live tenant queues; beyond it, new tenants
	// are rejected unless an idle tenant can be evicted. Default 64.
	MaxTenants int
	// Weights gives named tenants a DRR weight; unlisted tenants get
	// DefaultWeight. Higher weight → proportionally more dispatch credit.
	Weights map[string]int
	// DefaultWeight is the weight of unlisted tenants. Default 1.
	DefaultWeight int
	// Quantum is the deficit credit added per DRR round per unit weight.
	// Default 1s.
	Quantum time.Duration
	// ChargeCap caps one item's deficit charge, so predicted-for-days
	// whales cost a bounded amount of credit and the round-robin always
	// makes progress. Default 30s.
	ChargeCap time.Duration
	// WhalePerTenant / WhaleGlobal cap concurrently *running* whale-class
	// jobs per tenant and across the queue. Defaults 1 and 1 — servers
	// should raise WhaleGlobal to workers−1 so whales can never occupy
	// every worker.
	WhalePerTenant int
	WhaleGlobal    int
	// ShedDepth is the total queued size at or above which Overloaded
	// reports pressure (the load-shed trigger). Default 3 × PerTenantDepth.
	ShedDepth int
}

func (c *QueueConfig) fillDefaults() {
	if c.PerTenantDepth < 1 {
		c.PerTenantDepth = 64
	}
	if c.GlobalDepth < 1 {
		c.GlobalDepth = 4 * c.PerTenantDepth
	}
	if c.GlobalDepth < c.PerTenantDepth {
		c.GlobalDepth = c.PerTenantDepth
	}
	if c.MaxTenants < 1 {
		c.MaxTenants = 64
	}
	if c.DefaultWeight < 1 {
		c.DefaultWeight = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = time.Second
	}
	if c.ChargeCap <= 0 {
		c.ChargeCap = 30 * time.Second
	}
	if c.WhalePerTenant < 1 {
		c.WhalePerTenant = 1
	}
	if c.WhaleGlobal < 1 {
		c.WhaleGlobal = 1
	}
	if c.ShedDepth < 1 {
		c.ShedDepth = 3 * c.PerTenantDepth
	}
}

// tenantQ is one tenant's queue state: a FIFO lane per size class plus the
// DRR deficit.
type tenantQ struct {
	name         string
	weight       int
	deficit      time.Duration
	lanes        [3][]*Item
	depth        int
	queuedCharge time.Duration // sum of capped charges, for Retry-After hints
}

// Queue is the per-tenant weighted fair queue: deficit round-robin across
// tenants, strict class priority (interactive > batch > whale) so small
// jobs never sit behind whales, and concurrency caps on running whales.
// All methods are safe for concurrent use.
type Queue struct {
	cfg QueueConfig

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQ
	order   []*tenantQ
	rr      int // next tenant index the DRR scan starts from
	size    int
	closed  bool

	whales      map[string]int // running whale jobs per tenant
	whalesTotal int
}

// NewQueue builds a queue; see QueueConfig for defaults.
func NewQueue(cfg QueueConfig) *Queue {
	cfg.fillDefaults()
	q := &Queue{
		cfg:     cfg,
		tenants: make(map[string]*tenantQ),
		whales:  make(map[string]int),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *Queue) weightOf(tenant string) int {
	if w, ok := q.cfg.Weights[tenant]; ok && w >= 1 {
		return w
	}
	return q.cfg.DefaultWeight
}

func (q *Queue) charge(cost time.Duration) time.Duration {
	if cost <= 0 {
		return time.Millisecond
	}
	if cost > q.cfg.ChargeCap {
		return q.cfg.ChargeCap
	}
	return cost
}

// evictIdleTenant drops one tenant with nothing queued and no running
// whales, making room for a new one. Reports whether it found a victim.
// Caller holds q.mu.
func (q *Queue) evictIdleTenant() bool {
	for i, t := range q.order {
		if t.depth == 0 && q.whales[t.name] == 0 {
			q.order = append(q.order[:i], q.order[i+1:]...)
			delete(q.tenants, t.name)
			if len(q.order) > 0 {
				q.rr %= len(q.order)
			} else {
				q.rr = 0
			}
			return true
		}
	}
	return false
}

// Enqueue offers an item without blocking. The error identifies which
// limit rejected it (per-tenant depth, global depth, tenant cardinality,
// or a closed queue).
func (q *Queue) Enqueue(it *Item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.size >= q.cfg.GlobalDepth {
		return ErrQueueFull
	}
	t := q.tenants[it.Tenant]
	if t == nil {
		if len(q.tenants) >= q.cfg.MaxTenants && !q.evictIdleTenant() {
			return ErrTenantLimit
		}
		t = &tenantQ{name: it.Tenant, weight: q.weightOf(it.Tenant)}
		q.tenants[it.Tenant] = t
		q.order = append(q.order, t)
	}
	if t.depth >= q.cfg.PerTenantDepth {
		return ErrTenantFull
	}
	if it.Enqueued.IsZero() {
		it.Enqueued = time.Now()
	}
	t.lanes[it.Class] = append(t.lanes[it.Class], it)
	t.depth++
	t.queuedCharge += q.charge(it.Cost)
	q.size++
	q.cond.Broadcast()
	return nil
}

// Next blocks until an item is dispatchable and returns it, or returns
// false once the queue is closed and drained. Callers must call Done with
// the item after running it (it releases the whale slot).
func (q *Queue) Next() (*Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it := q.pick(); it != nil {
			return it, true
		}
		if q.closed && q.size == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

// Done releases the resources the dispatch of it acquired (the whale
// concurrency slot). Must be called exactly once per item Next returned.
func (q *Queue) Done(it *Item) {
	if it.Class != ClassWhale {
		return
	}
	q.mu.Lock()
	if q.whales[it.Tenant] > 0 {
		q.whales[it.Tenant]--
		if q.whales[it.Tenant] == 0 {
			delete(q.whales, it.Tenant)
		}
	}
	if q.whalesTotal > 0 {
		q.whalesTotal--
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Close stops intake. Workers keep draining queued items; Next returns
// false once the queue is empty. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pick implements the dispatch policy under q.mu:
//
//  1. strict class priority: all interactive heads across tenants are
//     considered before any batch head, batch before whale — the "small
//     jobs never sit behind whales" guarantee (sustained interactive
//     saturation deliberately delays whales);
//  2. within a class, deficit round-robin across tenants: each round every
//     competing tenant accrues Quantum×weight credit, and the first tenant
//     (in rotating order) whose deficit covers its head's capped charge
//     dispatches — weighted max-min fairness over predicted cost;
//  3. whale heads are only eligible while their tenant and the queue as a
//     whole are under the running-whale caps.
func (q *Queue) pick() *Item {
	if q.size == 0 || len(q.order) == 0 {
		return nil
	}
	n := len(q.order)
	for _, class := range Classes() {
		var eligible []int
		for i := 0; i < n; i++ {
			idx := (q.rr + i) % n
			t := q.order[idx]
			if len(t.lanes[class]) == 0 {
				continue
			}
			if class == ClassWhale &&
				(q.whalesTotal >= q.cfg.WhaleGlobal || q.whales[t.name] >= q.cfg.WhalePerTenant) {
				continue
			}
			eligible = append(eligible, idx)
		}
		if len(eligible) == 0 {
			continue
		}
		// Bounded by construction: charges are ≤ ChargeCap and every round
		// adds ≥ Quantum to each competitor, but keep a hard stop anyway.
		maxRounds := int(q.cfg.ChargeCap/q.cfg.Quantum) + 2
		for round := 0; round <= maxRounds; round++ {
			for _, idx := range eligible {
				t := q.order[idx]
				it := t.lanes[class][0]
				ch := q.charge(it.Cost)
				if t.deficit < ch && round < maxRounds {
					continue
				}
				// Dispatch (the final round dispatches unconditionally —
				// unreachable unless the bound above is ever wrong).
				if t.deficit >= ch {
					t.deficit -= ch
				} else {
					t.deficit = 0
				}
				q.dequeue(t, class)
				if class == ClassWhale {
					q.whales[t.name]++
					q.whalesTotal++
				}
				q.rr = (idx + 1) % n
				return it
			}
			for _, idx := range eligible {
				t := q.order[idx]
				t.deficit += q.cfg.Quantum * time.Duration(t.weight)
				if lim := q.cfg.ChargeCap + 2*q.cfg.Quantum*time.Duration(t.weight); t.deficit > lim {
					t.deficit = lim
				}
			}
		}
	}
	return nil
}

// dequeue pops t's head item in class. Caller holds q.mu.
func (q *Queue) dequeue(t *tenantQ, class Class) {
	it := t.lanes[class][0]
	t.lanes[class] = t.lanes[class][1:]
	t.depth--
	t.queuedCharge -= q.charge(it.Cost)
	if t.queuedCharge < 0 {
		t.queuedCharge = 0
	}
	q.size--
	if t.depth == 0 {
		// Classic DRR: an emptied queue forfeits its accumulated credit,
		// so an idle tenant cannot bank a burst.
		t.deficit = 0
	}
}

// Depth samples total queued items.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Capacity is the per-tenant depth bound (the historical queue_capacity
// gauge semantics: what one tenant can have queued).
func (q *Queue) Capacity() int { return q.cfg.PerTenantDepth }

// TenantDepth samples one tenant's queued items.
func (q *Queue) TenantDepth(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t := q.tenants[tenant]; t != nil {
		return t.depth
	}
	return 0
}

// TenantQueuedCharge samples the tenant's queued capped-cost backlog — the
// cost-aware half of a Retry-After hint.
func (q *Queue) TenantQueuedCharge(tenant string) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t := q.tenants[tenant]; t != nil {
		return t.queuedCharge
	}
	return 0
}

// WhalesRunning samples the number of running whale-class jobs.
func (q *Queue) WhalesRunning() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.whalesTotal
}

// Overloaded reports queue pressure: total backlog at or beyond ShedDepth.
// The server sheds whale admissions while it holds.
func (q *Queue) Overloaded() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size >= q.cfg.ShedDepth
}
