// Package qos is the service's admission-control layer: a cost model that
// predicts a job's wall-clock footprint before it runs, size classes
// (interactive / batch / whale) derived from that prediction, a per-tenant
// deficit-round-robin fair queue so one tenant's whales cannot starve
// another tenant's interactive jobs, and deadline derivation so a job's
// budget scales with its predicted cost instead of a flat timeout.
//
// The model combines three measured/analytic inputs:
//
//   - the kernel cost grid (results/BENCH_kernel.json): measured
//     ns-per-interaction per (runner tier, n) on the E11 exact-majority
//     workload, with a baked-in copy of the committed grid so the model
//     works without the file;
//   - the paper's expected-interaction bounds per protocol — e.g. the DV12
//     4-state exact-majority baseline converges in Θ(n·log n) rounds
//     (Θ(n²·log n) interactions), coalescence in Θ(n) rounds, approximate
//     majority in O(log n) rounds — clamped by the spec's max_rounds or
//     max_iters budget;
//   - the engine's three-tier runner selection (expt.SelectRunnerForSize),
//     so a job is priced on the kernel that will actually run it.
//
// Predictions self-correct: Observe feeds actual replica durations back
// into a per-tier EWMA multiplier, so a miscalibrated grid (different CPU,
// different protocol mix) converges onto real costs within a few jobs.
// Nothing in this package touches job *content*: admission, queueing, and
// deadlines decide when (and whether) a job runs, never what it computes,
// so byte-identity of the record streams is preserved by construction.
package qos

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"popkit/internal/expt"
)

// Class is a job's size class under the cost model.
type Class int

const (
	// ClassInteractive jobs are predicted to finish quickly (≤ the model's
	// InteractiveMax, default 1s); they are dispatched ahead of everything
	// else and keep being served during load shed and drain.
	ClassInteractive Class = iota
	// ClassBatch is the middle band: too slow for the interactive lane,
	// predicted under the whale threshold.
	ClassBatch
	// ClassWhale jobs are predicted at or above WhaleMin (default 30s) —
	// the paper's huge-n aggregate runs. They are capped in concurrency and
	// shed first under pressure.
	ClassWhale
)

func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	case ClassWhale:
		return "whale"
	}
	return "unknown"
}

// Classes lists the size classes in dispatch-priority order.
func Classes() []Class { return []Class{ClassInteractive, ClassBatch, ClassWhale} }

// maxPredictSeconds clamps per-replica predictions: expected interactions
// for a Θ(n²·log n) protocol at n = 1e9 overflow a time.Duration, and no
// admission decision distinguishes "a month" from "a millennium".
const maxPredictSeconds = 30 * 24 * 3600

// gridRow is one measured point of the kernel cost surface.
type gridRow struct {
	Runner           string  `json:"runner"`
	N                float64 `json:"n"`
	NsPerInteraction float64 `json:"ns_per_interaction"`
}

// kernelFile is the subset of results/BENCH_kernel.json the model reads.
type kernelFile struct {
	Rows []gridRow `json:"rows"`
}

// defaultGrid is the committed BENCH_kernel.json surface, baked in so a
// server without the results file still prices jobs on measured numbers.
func defaultGrid() []gridRow {
	return []gridRow{
		{"dense", 1e4, 27.38},
		{"dense", 1e6, 63.46},
		{"counted", 1e4, 0.00376},
		{"counted", 1e6, 6.54},
		{"counted", 1e8, 10.90},
		{"counted", 1e9, 11.10},
		{"batch", 1e4, 0.00296},
		{"batch", 1e6, 6.32},
		{"batch", 1e8, 10.35},
		{"batch", 1e9, 10.47},
		{"aggregate", 1e4, 2.70},
		{"aggregate", 1e6, 2.66},
		{"aggregate", 1e8, 0.838},
		{"aggregate", 1e9, 0.280},
	}
}

// ModelOptions configures NewModel. Zero values mean defaults.
type ModelOptions struct {
	// GridPath loads a measured kernel grid (results/BENCH_kernel.json
	// format) over the baked-in defaults. Empty uses the defaults alone.
	GridPath string
	// InteractiveMax is the largest predicted total cost still classed
	// interactive. Default 1s.
	InteractiveMax time.Duration
	// WhaleMin is the smallest predicted total cost classed whale.
	// Default 30s.
	WhaleMin time.Duration
	// Alpha is the EWMA weight of each new observation in the per-tier
	// correction factor. Default 0.25.
	Alpha float64
}

// Model predicts job cost from the kernel grid and the paper's
// expected-interaction bounds, self-correcting from observed durations.
// All methods are safe for concurrent use.
type Model struct {
	interactiveMax time.Duration
	whaleMin       time.Duration
	alpha          float64

	mu   sync.Mutex
	grid map[string][]gridRow // tier → rows sorted by N ascending
	corr map[string]float64   // tier → EWMA multiplier on predictions
}

// NewModel builds a model. A GridPath that exists but does not parse is an
// error; a missing file falls back to the baked-in grid silently (servers
// run fine without a results checkout).
func NewModel(opts ModelOptions) (*Model, error) {
	if opts.InteractiveMax <= 0 {
		opts.InteractiveMax = time.Second
	}
	if opts.WhaleMin <= 0 {
		opts.WhaleMin = 30 * time.Second
	}
	if opts.WhaleMin < opts.InteractiveMax {
		return nil, fmt.Errorf("qos: WhaleMin %v below InteractiveMax %v", opts.WhaleMin, opts.InteractiveMax)
	}
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = 0.25
	}
	m := &Model{
		interactiveMax: opts.InteractiveMax,
		whaleMin:       opts.WhaleMin,
		alpha:          opts.Alpha,
		grid:           make(map[string][]gridRow),
		corr:           make(map[string]float64),
	}
	m.load(defaultGrid())
	if opts.GridPath != "" {
		raw, err := os.ReadFile(opts.GridPath)
		if err != nil {
			if !os.IsNotExist(err) {
				return nil, fmt.Errorf("qos: reading grid %s: %w", opts.GridPath, err)
			}
		} else {
			var kf kernelFile
			if err := json.Unmarshal(raw, &kf); err != nil {
				return nil, fmt.Errorf("qos: parsing grid %s: %w", opts.GridPath, err)
			}
			if len(kf.Rows) > 0 {
				m.grid = make(map[string][]gridRow)
				m.load(kf.Rows)
			}
		}
	}
	return m, nil
}

// MustNewModel is NewModel for configurations that cannot fail (tests).
func MustNewModel(opts ModelOptions) *Model {
	m, err := NewModel(opts)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Model) load(rows []gridRow) {
	for _, r := range rows {
		if r.N <= 0 || r.NsPerInteraction <= 0 || r.Runner == "" {
			continue
		}
		m.grid[r.Runner] = append(m.grid[r.Runner], r)
	}
	for tier := range m.grid {
		rows := m.grid[tier]
		sort.Slice(rows, func(i, j int) bool { return rows[i].N < rows[j].N })
	}
}

// Prediction is the model's admission-time estimate for one job.
type Prediction struct {
	// Tier names the runner the engine will select for this (protocol, n).
	Tier string
	// Class is the size class the total prediction falls into.
	Class Class
	// Interactions is the expected scheduler activations per replica
	// (leapt ones included — the grid's ns/interaction amortizes leaps).
	Interactions float64
	// PerReplica is the predicted wall clock of one replica.
	PerReplica time.Duration
	// Total is PerReplica × the replicas this request computes.
	Total time.Duration
	// Correction is the EWMA multiplier that was applied (1.0 = raw grid).
	Correction float64
}

// Predict prices a normalized spec. kind is the protocol's registry kind
// ("framework" or "counted"); anything else is treated as counted.
func (m *Model) Predict(spec expt.JobSpec, kind string) Prediction {
	n := float64(spec.N)
	if n < 2 {
		n = 2
	}
	var tier string
	var inter float64
	if kind == "framework" {
		// Framework programs always run dense (ordered rule groups). The
		// iteration count is O(log² n) for the paper's programs; each
		// iteration's phase clocks cost Θ(n·log n) activations.
		tier = expt.RunnerDense.String()
		iters := 3 * math.Log2(n)
		if spec.MaxIters > 0 && float64(spec.MaxIters) < iters {
			iters = float64(spec.MaxIters)
		}
		if iters < 1 {
			iters = 1
		}
		inter = iters * n * (math.Log(n) + 1)
	} else {
		tier = expt.SelectRunnerForSize(int64(spec.N)).String()
		if stateRichProtocols[spec.Protocol] {
			// Mirrors the registry's RunnerHints: state-rich protocols pin
			// the dense kernel at every n, so predicting a counted tier
			// would charge them the wrong per-interaction cost.
			tier = expt.RunnerDense.String()
		}
		rounds := expectedRounds(spec.Protocol, n)
		if spec.MaxRounds > 0 && spec.MaxRounds < rounds {
			rounds = spec.MaxRounds
		}
		inter = rounds * n
	}
	ns := m.nsPerInteraction(tier, n)
	corr := m.correction(tier)
	secs := inter * ns * corr / 1e9
	if secs > maxPredictSeconds {
		secs = maxPredictSeconds
	}
	per := time.Duration(secs * float64(time.Second))
	if per < time.Microsecond {
		per = time.Microsecond
	}
	reps := spec.Replicas - spec.Start
	if reps < 1 {
		reps = 1
	}
	total := per * time.Duration(reps)
	if total < per { // overflow
		total = time.Duration(math.MaxInt64)
	}
	p := Prediction{
		Tier:         tier,
		Interactions: inter,
		PerReplica:   per,
		Total:        total,
		Correction:   corr,
	}
	switch {
	case total <= m.interactiveMax:
		p.Class = ClassInteractive
	case total >= m.whaleMin:
		p.Class = ClassWhale
	default:
		p.Class = ClassBatch
	}
	return p
}

// stateRichProtocols names the counted registry entries whose drivers pin
// the dense kernel (serve's RunnerHints.StateRich) regardless of n.
var stateRichProtocols = map[string]bool{
	"gs18leader": true,
}

// expectedRounds is the paper-side half of the prediction: expected parallel
// time (rounds) to convergence per counted protocol.
func expectedRounds(protocol string, n float64) float64 {
	ln := math.Log(n)
	switch protocol {
	case "approxmajority":
		// AAE08a: O(log n) rounds w.h.p.
		return 8 * ln
	case "exactmajority":
		// DV12 4-state exact majority: Θ(n·log n) rounds at gap 1.
		return n * ln
	case "coalescence":
		// Folklore coalescence: Θ(n) rounds (the last pair dominates).
		return 2 * n
	case "gsexactmajority", "aagmajority":
		// Cancelling–doubling majorities: polylog rounds at any gap
		// (measured ≈ 430/340 rounds at n=512, gap 1 — ~10·ln² n).
		return 10 * ln * ln
	case "gs18leader":
		// GS18 junta-clocked election: polylog, near-flat in n (measured
		// means 2.7k–3.8k rounds across n = 512…8192 — ~70·ln² n).
		return 70 * ln * ln
	default:
		// Unknown counted protocol: assume linear rounds, the middle of the
		// observed range; the EWMA absorbs the constant.
		return n
	}
}

// nsPerInteraction interpolates the grid log-log in n within a tier,
// clamping outside the measured range. A tier absent from the grid falls
// back to the most conservative measured tier ("counted"), then to 10 ns.
func (m *Model) nsPerInteraction(tier string, n float64) float64 {
	m.mu.Lock()
	rows := m.grid[tier]
	if len(rows) == 0 {
		rows = m.grid["counted"]
	}
	m.mu.Unlock()
	if len(rows) == 0 {
		return 10
	}
	if n <= rows[0].N {
		return rows[0].NsPerInteraction
	}
	last := rows[len(rows)-1]
	if n >= last.N {
		return last.NsPerInteraction
	}
	i := sort.Search(len(rows), func(i int) bool { return rows[i].N >= n })
	lo, hi := rows[i-1], rows[i]
	t := (math.Log(n) - math.Log(lo.N)) / (math.Log(hi.N) - math.Log(lo.N))
	return math.Exp(math.Log(lo.NsPerInteraction)*(1-t) + math.Log(hi.NsPerInteraction)*t)
}

func (m *Model) correction(tier string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.corr[tier]; ok {
		return c
	}
	return 1
}

// Observe feeds an actual per-replica duration back into the tier's EWMA
// correction. Predictions of the same tier immediately reflect it, so a
// grid measured on different hardware converges within a few replicas.
func (m *Model) Observe(p Prediction, actual time.Duration) {
	if p.PerReplica <= 0 || actual <= 0 {
		return
	}
	ratio := float64(actual) / float64(p.PerReplica)
	// Undo the correction the prediction already carried, so the EWMA
	// tracks actual/raw-grid rather than compounding on itself.
	if p.Correction > 0 {
		ratio *= p.Correction
	}
	// Clamp a single pathological observation (first replica paging the
	// binary in, a leapt-to-quiescence short-circuit) to two decades.
	if ratio < 0.01 {
		ratio = 0.01
	} else if ratio > 100 {
		ratio = 100
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	prev, ok := m.corr[p.Tier]
	if !ok {
		m.corr[p.Tier] = ratio
		return
	}
	next := prev*(1-m.alpha) + ratio*m.alpha
	if next < 0.01 {
		next = 0.01
	} else if next > 100 {
		next = 100
	}
	m.corr[p.Tier] = next
}

// Corrections snapshots the per-tier EWMA multipliers (metrics, tests).
func (m *Model) Corrections() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.corr))
	for k, v := range m.corr {
		out[k] = v
	}
	return out
}

// InteractiveMax / WhaleMin expose the class thresholds.
func (m *Model) InteractiveMax() time.Duration { return m.interactiveMax }
func (m *Model) WhaleMin() time.Duration       { return m.whaleMin }

// DeriveDeadline turns a predicted total cost into a per-job wall-clock
// budget: slack × prediction, clamped to [floor, cap]. The slack absorbs
// model error in the direction that matters (killing a legitimate job);
// the floor keeps badly under-predicted tiny jobs alive; the cap is the
// operator's override (Config.JobTimeout) — it always wins, so an explicit
// flat timeout behaves exactly as before. cap ≤ 0 means uncapped.
func DeriveDeadline(predicted, floor, cap time.Duration) time.Duration {
	const slack = 8
	d := predicted * slack
	if d < predicted { // overflow
		d = time.Duration(math.MaxInt64)
	}
	if d < floor {
		d = floor
	}
	if cap > 0 && d > cap {
		d = cap
	}
	return d
}
