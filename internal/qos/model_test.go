package qos

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"popkit/internal/expt"
)

func spec(protocol string, n, replicas int, maxRounds float64) expt.JobSpec {
	return expt.JobSpec{Protocol: protocol, N: n, Replicas: replicas, MaxRounds: maxRounds}
}

func TestPredictClasses(t *testing.T) {
	m := MustNewModel(ModelOptions{})
	cases := []struct {
		name string
		spec expt.JobSpec
		kind string
		want Class
		tier string
	}{
		// Tiny DV12 exact majority: far under a second even with Θ(n·log n)
		// rounds, because the batch kernel leaps quiescence at small n.
		{"interactive", spec("exactmajority", 2000, 2, 1e9), "counted", ClassInteractive, "batch"},
		// n=1e5 lands in the seconds band.
		{"batch", spec("exactmajority", 100_000, 1, 1e9), "counted", ClassBatch, "batch"},
		// Huge-n runs on the aggregate kernel are whales.
		{"whale", spec("exactmajority", 10_000_000, 1, 1e9), "counted", ClassWhale, "aggregate"},
		// Framework protocols always price on the dense tier.
		{"framework", spec("leader", 128, 1, 0), "framework", ClassInteractive, "dense"},
	}
	for _, tc := range cases {
		p := m.Predict(tc.spec, tc.kind)
		if p.Class != tc.want {
			t.Errorf("%s: class = %v (total %v), want %v", tc.name, p.Class, p.Total, tc.want)
		}
		if p.Tier != tc.tier {
			t.Errorf("%s: tier = %q, want %q", tc.name, p.Tier, tc.tier)
		}
		if p.PerReplica <= 0 || p.Total < p.PerReplica {
			t.Errorf("%s: nonsense durations per=%v total=%v", tc.name, p.PerReplica, p.Total)
		}
	}
}

func TestPredictScalesWithReplicas(t *testing.T) {
	m := MustNewModel(ModelOptions{})
	one := m.Predict(spec("exactmajority", 100_000, 1, 1e9), "counted")
	ten := m.Predict(spec("exactmajority", 100_000, 10, 1e9), "counted")
	if ten.Total != 10*one.Total {
		t.Fatalf("10 replicas predicted %v, want 10 × %v", ten.Total, one.Total)
	}
	// A shard window [start, replicas) prices only its own width.
	sh := spec("exactmajority", 100_000, 10, 1e9)
	sh.Start = 8
	if got := m.Predict(sh, "counted"); got.Total != 2*one.Total {
		t.Fatalf("2-replica window predicted %v, want 2 × %v", got.Total, one.Total)
	}
}

func TestPredictRespectsRoundBudget(t *testing.T) {
	m := MustNewModel(ModelOptions{})
	free := m.Predict(spec("exactmajority", 1_000_000, 1, 1e9), "counted")
	capped := m.Predict(spec("exactmajority", 1_000_000, 1, 10), "counted")
	if capped.Interactions >= free.Interactions {
		t.Fatalf("max_rounds=10 predicted %.3g interactions, uncapped %.3g", capped.Interactions, free.Interactions)
	}
	if capped.Interactions != 10*1_000_000 {
		t.Fatalf("capped interactions = %.3g, want 1e7", capped.Interactions)
	}
}

func TestObserveEWMACorrection(t *testing.T) {
	m := MustNewModel(ModelOptions{})
	s := spec("exactmajority", 100_000, 1, 1e9)
	before := m.Predict(s, "counted")
	// The hardware is consistently 10× slower than the raw grid says:
	// actual = 10 × (prediction / applied correction).
	for i := 0; i < 20; i++ {
		p := m.Predict(s, "counted")
		raw := float64(p.PerReplica) / p.Correction
		m.Observe(p, time.Duration(10*raw))
	}
	after := m.Predict(s, "counted")
	if ratio := float64(after.PerReplica) / float64(before.PerReplica); ratio < 5 || ratio > 20 {
		t.Fatalf("after 20 × 10×-slow observations, prediction moved %.2f×, want ≈10×", ratio)
	}
	corr := m.Corrections()["batch"]
	if corr < 5 || corr > 20 {
		t.Fatalf("batch correction = %v, want ≈10", corr)
	}
	// Observations of one tier must not touch another.
	if _, ok := m.Corrections()["aggregate"]; ok {
		t.Fatal("aggregate correction set without aggregate observations")
	}
}

func TestObserveClampsOutliers(t *testing.T) {
	m := MustNewModel(ModelOptions{})
	s := spec("exactmajority", 100_000, 1, 1e9)
	p := m.Predict(s, "counted")
	m.Observe(p, p.PerReplica*1e6) // absurd single outlier
	if c := m.Corrections()["batch"]; c > 100 {
		t.Fatalf("correction %v exceeded clamp", c)
	}
	m.Observe(p, 0) // ignored
	m.Observe(Prediction{}, time.Second)
}

func TestGridFileOverridesDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	body := `{"rows":[{"runner":"batch","n":1000000,"ns_per_interaction":1000}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(ModelOptions{GridPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if ns := m.nsPerInteraction("batch", 1e6); ns != 1000 {
		t.Fatalf("ns = %v, want 1000 from the file", ns)
	}
	// A tier the file lacks falls back to "counted", itself absent → 10.
	if ns := m.nsPerInteraction("dense", 1e6); ns != 10 {
		t.Fatalf("fallback ns = %v, want 10", ns)
	}

	if _, err := NewModel(ModelOptions{GridPath: filepath.Join(dir, "missing.json")}); err != nil {
		t.Fatalf("missing grid file must fall back, got %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := NewModel(ModelOptions{GridPath: bad}); err == nil {
		t.Fatal("unparseable grid file must error")
	}
	if _, err := NewModel(ModelOptions{InteractiveMax: time.Minute, WhaleMin: time.Second}); err == nil {
		t.Fatal("WhaleMin below InteractiveMax must error")
	}
}

func TestNsPerInteractionInterpolates(t *testing.T) {
	m := MustNewModel(ModelOptions{})
	lo := m.nsPerInteraction("aggregate", 1e4)
	mid := m.nsPerInteraction("aggregate", 1e7)
	hi := m.nsPerInteraction("aggregate", 1e8)
	last := m.nsPerInteraction("aggregate", 1e9)
	if !(mid < lo && mid > hi) {
		t.Fatalf("interpolation not monotone on the aggregate decline: lo=%v mid=%v hi=%v", lo, mid, hi)
	}
	// Outside the measured range clamps to the endpoints.
	if got := m.nsPerInteraction("aggregate", 1); got != lo {
		t.Fatalf("below-range ns = %v, want clamp %v", got, lo)
	}
	if got := m.nsPerInteraction("aggregate", 1e12); got != last {
		t.Fatalf("above-range ns = %v, want clamp %v", got, last)
	}
}

func TestDeriveDeadline(t *testing.T) {
	floor, cap := 10*time.Second, 15*time.Minute
	// Tiny prediction: the floor holds (over-granting direction).
	if d := DeriveDeadline(time.Millisecond, floor, cap); d != floor {
		t.Fatalf("tiny job deadline = %v, want floor %v", d, floor)
	}
	// Mid prediction: slack × prediction.
	if d := DeriveDeadline(10*time.Second, floor, cap); d != 80*time.Second {
		t.Fatalf("mid job deadline = %v, want 80s", d)
	}
	// Huge prediction: the cap holds (the operator override wins).
	if d := DeriveDeadline(24*time.Hour, floor, cap); d != cap {
		t.Fatalf("whale deadline = %v, want cap %v", d, cap)
	}
	// Uncapped.
	if d := DeriveDeadline(24*time.Hour, floor, 0); d != 8*24*time.Hour {
		t.Fatalf("uncapped deadline = %v, want 8d", d)
	}
	// Overflow saturates instead of wrapping negative.
	if d := DeriveDeadline(time.Duration(math.MaxInt64/2), floor, 0); d <= 0 {
		t.Fatalf("overflow deadline = %v", d)
	}
}

func TestCleanTenant(t *testing.T) {
	if got, ok := CleanTenant(""); !ok || got != DefaultTenant {
		t.Fatalf("empty → %q/%v", got, ok)
	}
	if got, ok := CleanTenant("team-a.prod_1"); !ok || got != "team-a.prod_1" {
		t.Fatalf("valid name mangled: %q/%v", got, ok)
	}
	for _, bad := range []string{"has space", "semi;colon", "ünïcode", string(make([]byte, 65))} {
		if _, ok := CleanTenant(bad); ok {
			t.Fatalf("accepted invalid tenant %q", bad)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range Classes() {
		if c.String() == "unknown" {
			t.Fatalf("class %d stringifies to unknown", c)
		}
	}
	if Class(99).String() != "unknown" {
		t.Fatal("out-of-range class must stringify to unknown")
	}
}
