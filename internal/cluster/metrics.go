package cluster

import (
	"io"
	"time"

	"popkit/internal/obs"
	"popkit/internal/qos"
	"popkit/internal/store"
)

// Metrics is the coordinator's counter set, backed by a shared obs.Registry
// so one set of atomics feeds both the JSON document (GET /metrics) and the
// Prometheus exposition (GET /metrics?format=prom), mirroring popserved's
// metrics surface.
type Metrics struct {
	reg *obs.Registry

	JobsAccepted        *obs.Counter
	JobsCompleted       *obs.Counter
	JobsFailed          *obs.Counter
	JobsCancelled       *obs.Counter
	JobsRejectedInvalid *obs.Counter
	// JobsRejectedNoWorkers counts jobs turned away with 503 because no
	// registered worker was live.
	JobsRejectedNoWorkers *obs.Counter
	// JobsResumed counts requests that replayed a journaled prefix after a
	// coordinator restart (or a repeat POST of a finished job).
	JobsResumed *obs.Counter

	// Sweeps counts POST /v1/sweep requests that started streaming; the
	// SweepPoints* family tallies grid points by cache resolution.
	Sweeps           *obs.Counter
	SweepPointsHit   *obs.Counter
	SweepPointsMiss  *obs.Counter
	SweepPointsInfl  *obs.Counter
	SweepPointsError *obs.Counter

	// ShardsDispatched counts every shard handed to a worker, re-dispatch
	// attempts included; ShardsRedispatched counts only the dispatches that
	// re-route a shard after a worker failed it mid-flight.
	ShardsDispatched   *obs.Counter
	ShardsRedispatched *obs.Counter
	// RecordsMerged counts replica records merged into client streams in
	// replica order.
	RecordsMerged *obs.Counter

	// Workers/WorkersLive are the registered and currently-healthy worker
	// gauges; WorkersLost counts live→down transitions (probe failures and
	// dispatch errors); Probes/ProbeFailures tally the health-check traffic.
	Workers       *obs.GaugeInt
	WorkersLive   *obs.GaugeInt
	WorkersLost   *obs.Counter
	Probes        *obs.Counter
	ProbeFailures *obs.Counter

	// latency histograms, keyed by endpoint name at construction.
	latency map[string]*obs.Histogram
}

// NewMetrics returns a metrics set with one request-latency histogram per
// endpoint, registered under popkit_cluster_* family names.
func NewMetrics(endpoints ...string) *Metrics {
	reg := obs.NewRegistry()
	rejected := "jobs rejected by the coordinator, by reason"
	sweepPoints := "sweep grid points resolved, by cache outcome"
	m := &Metrics{
		reg:                   reg,
		JobsAccepted:          reg.Counter("popkit_cluster_jobs_accepted_total", "jobs admitted for shard dispatch"),
		JobsCompleted:         reg.Counter("popkit_cluster_jobs_completed_total", "jobs whose every replica was merged"),
		JobsFailed:            reg.Counter("popkit_cluster_jobs_failed_total", "jobs that ended with a shard error"),
		JobsCancelled:         reg.Counter("popkit_cluster_jobs_cancelled_total", "jobs aborted by client disconnect or timeout"),
		JobsRejectedInvalid:   reg.Counter("popkit_cluster_jobs_rejected_total", rejected, obs.L("reason", "invalid")),
		JobsRejectedNoWorkers: reg.Counter("popkit_cluster_jobs_rejected_total", rejected, obs.L("reason", "no_workers")),
		JobsResumed:           reg.Counter("popkit_cluster_jobs_resumed_total", "requests that replayed a journaled prefix"),
		Sweeps:                reg.Counter("popkit_cluster_sweeps_total", "parameter-grid sweep requests accepted"),
		SweepPointsHit:        reg.Counter("popkit_cluster_sweep_points_total", sweepPoints, obs.L("cache", "hit")),
		SweepPointsMiss:       reg.Counter("popkit_cluster_sweep_points_total", sweepPoints, obs.L("cache", "miss")),
		SweepPointsInfl:       reg.Counter("popkit_cluster_sweep_points_total", sweepPoints, obs.L("cache", "inflight")),
		SweepPointsError:      reg.Counter("popkit_cluster_sweep_points_total", sweepPoints, obs.L("cache", "error")),
		ShardsDispatched:      reg.Counter("popkit_cluster_shards_dispatched_total", "shard dispatches to workers, re-dispatches included"),
		ShardsRedispatched:    reg.Counter("popkit_cluster_shards_redispatched_total", "shards re-routed after a worker failure"),
		RecordsMerged:         reg.Counter("popkit_cluster_records_merged_total", "replica records merged in replica order"),
		Workers:               reg.Gauge("popkit_cluster_workers", "registered workers"),
		WorkersLive:           reg.Gauge("popkit_cluster_workers_live", "workers currently passing health checks"),
		WorkersLost:           reg.Counter("popkit_cluster_workers_lost_total", "live→down worker transitions"),
		Probes:                reg.Counter("popkit_cluster_probes_total", "worker health probes sent"),
		ProbeFailures:         reg.Counter("popkit_cluster_probe_failures_total", "worker health probes that failed"),
		latency:               make(map[string]*obs.Histogram, len(endpoints)),
	}
	for _, e := range endpoints {
		if _, dup := m.latency[e]; dup {
			continue
		}
		m.latency[e] = reg.Histogram("popkit_cluster_http_request_duration_seconds",
			"coordinator HTTP request latency by endpoint", obs.L("endpoint", e))
	}
	return m
}

// WorkerShardDuration returns (registering on first use) the per-worker
// shard-attempt wall-clock histogram — the cluster's per-worker latency
// series.
func (m *Metrics) WorkerShardDuration(workerURL string) *obs.Histogram {
	return m.reg.Histogram("popkit_cluster_shard_duration_seconds",
		"shard attempt wall-clock time by worker", obs.L("worker", workerURL))
}

// Latency returns the endpoint's request-latency histogram (nil for unknown
// endpoints).
func (m *Metrics) Latency(endpoint string) *obs.Histogram { return m.latency[endpoint] }

// MetricsSnapshot is the coordinator's /metrics JSON document.
type MetricsSnapshot struct {
	JobsAccepted          int64   `json:"jobs_accepted"`
	JobsCompleted         int64   `json:"jobs_completed"`
	JobsFailed            int64   `json:"jobs_failed"`
	JobsCancelled         int64   `json:"jobs_cancelled"`
	JobsRejectedInvalid   int64   `json:"jobs_rejected_invalid"`
	JobsRejectedNoWorkers int64   `json:"jobs_rejected_no_workers"`
	JobsResumed           int64   `json:"jobs_resumed"`
	Sweeps                int64   `json:"sweeps"`
	SweepPointsHit        int64   `json:"sweep_points_hit"`
	SweepPointsMiss       int64   `json:"sweep_points_miss"`
	SweepPointsInflight   int64   `json:"sweep_points_inflight"`
	SweepPointsError      int64   `json:"sweep_points_error"`
	ShardsDispatched      int64   `json:"shards_dispatched"`
	ShardsRedispatched    int64   `json:"shards_redispatched"`
	RecordsMerged         int64   `json:"records_merged"`
	Workers               int64   `json:"workers"`
	WorkersLive           int64   `json:"workers_live"`
	WorkersLost           int64   `json:"workers_lost"`
	Probes                int64   `json:"probes"`
	ProbeFailures         int64   `json:"probe_failures"`
	UptimeSec             float64 `json:"uptime_sec"`
	// Latency maps endpoint name to its request-latency summary.
	Latency map[string]obs.HistogramSnapshot `json:"latency"`
	// Store summarizes the coordinator's result cache (absent when the
	// store is disabled).
	Store *store.Snapshot `json:"store,omitempty"`
	// QoS summarizes coordinator-side admission: per-tenant admit/reject
	// tallies and the cost model's per-tier EWMA corrections.
	QoS *qos.Snapshot `json:"qos,omitempty"`
}

// Snapshot renders the counters; started anchors the uptime.
func (m *Metrics) Snapshot(started time.Time) MetricsSnapshot {
	s := MetricsSnapshot{
		JobsAccepted:          int64(m.JobsAccepted.Load()),
		JobsCompleted:         int64(m.JobsCompleted.Load()),
		JobsFailed:            int64(m.JobsFailed.Load()),
		JobsCancelled:         int64(m.JobsCancelled.Load()),
		JobsRejectedInvalid:   int64(m.JobsRejectedInvalid.Load()),
		JobsRejectedNoWorkers: int64(m.JobsRejectedNoWorkers.Load()),
		JobsResumed:           int64(m.JobsResumed.Load()),
		Sweeps:                int64(m.Sweeps.Load()),
		SweepPointsHit:        int64(m.SweepPointsHit.Load()),
		SweepPointsMiss:       int64(m.SweepPointsMiss.Load()),
		SweepPointsInflight:   int64(m.SweepPointsInfl.Load()),
		SweepPointsError:      int64(m.SweepPointsError.Load()),
		ShardsDispatched:      int64(m.ShardsDispatched.Load()),
		ShardsRedispatched:    int64(m.ShardsRedispatched.Load()),
		RecordsMerged:         int64(m.RecordsMerged.Load()),
		Workers:               m.Workers.Load(),
		WorkersLive:           m.WorkersLive.Load(),
		WorkersLost:           int64(m.WorkersLost.Load()),
		Probes:                int64(m.Probes.Load()),
		ProbeFailures:         int64(m.ProbeFailures.Load()),
		UptimeSec:             time.Since(started).Seconds(),
		Latency:               make(map[string]obs.HistogramSnapshot, len(m.latency)),
	}
	for name, h := range m.latency {
		s.Latency[name] = h.Snapshot()
	}
	return s
}

// WriteProm renders the registry in the Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer, started time.Time) error {
	m.reg.GaugeFunc("popkit_cluster_uptime_seconds", "seconds since the coordinator started",
		func() float64 { return time.Since(started).Seconds() })
	return m.reg.WritePromTo(w)
}
