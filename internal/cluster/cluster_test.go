package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"popkit/internal/serve"
)

// testSpec is the job every byte-identity test runs: a counted protocol
// (fast per replica) with enough replicas to spread across shards.
const testSpecJSON = `{"protocol":"exactmajority","n":400,"seed":7,"replicas":12,"gap":2}`

// newWorker boots an in-process popserved and returns its base URL.
func newWorker(t *testing.T) string {
	t.Helper()
	s := serve.MustNew(serve.Config{QueueDepth: 16, Workers: 2, FleetWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// newCoordinator builds a probed coordinator (no background loop — tests
// drive probes explicitly) and its HTTP front end.
func newCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeNow()
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Stop()
	})
	return c, ts.URL
}

// post runs one job and returns (status, body bytes).
func post(t *testing.T, base, path, spec string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, body
}

// singleNodeBytes is the ground truth: the same spec through one popserved.
func singleNodeBytes(t *testing.T, spec string) []byte {
	t.Helper()
	status, body := post(t, newWorker(t), "/v1/simulate", spec)
	if status != http.StatusOK {
		t.Fatalf("single-node run: status %d: %s", status, body)
	}
	if bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("single-node run failed in-band: %s", body)
	}
	return body
}

func TestClusterByteIdenticalAcrossShardPlans(t *testing.T) {
	want := singleNodeBytes(t, testSpecJSON)
	for _, tc := range []struct {
		workers   int
		shardSize int
	}{
		{1, 0}, {2, 0}, {3, 0}, {2, 1}, {3, 5}, {2, 12},
	} {
		t.Run(fmt.Sprintf("workers=%d shard=%d", tc.workers, tc.shardSize), func(t *testing.T) {
			urls := make([]string, tc.workers)
			for i := range urls {
				urls[i] = newWorker(t)
			}
			_, base := newCoordinator(t, Config{Workers: urls, ShardSize: tc.shardSize})
			status, got := post(t, base, "/v1/jobs", testSpecJSON)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cluster output differs from single node:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

func TestSimulateAliasMatchesJobs(t *testing.T) {
	want := singleNodeBytes(t, testSpecJSON)
	_, base := newCoordinator(t, Config{Workers: []string{newWorker(t), newWorker(t)}})
	status, got := post(t, base, "/v1/simulate", testSpecJSON)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("alias output differs (status %d)", status)
	}
}

// flakyWorker fronts a real popserved handler with a kill switch: after
// `lines` NDJSON lines have been streamed in total, the worker "dies" — the
// in-flight connection is cut mid-stream and every later request (health
// probes included) is refused — until revive() flips it back.
type flakyWorker struct {
	inner http.Handler
	lines atomic.Int64
	dead  atomic.Bool
}

func (f *flakyWorker) revive() {
	f.lines.Store(1 << 30)
	f.dead.Store(false)
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "worker is dead", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(&killWriter{ResponseWriter: w, f: f}, r)
}

// killWriter counts streamed lines and pulls the kill switch mid-write.
type killWriter struct {
	http.ResponseWriter
	f *flakyWorker
}

func (k *killWriter) Write(p []byte) (int, error) {
	if n := int64(bytes.Count(p, []byte{'\n'})); n > 0 {
		if k.f.lines.Add(-n) < 0 {
			k.f.dead.Store(true)
			panic(http.ErrAbortHandler) // cut the connection mid-stream
		}
	}
	return k.ResponseWriter.Write(p)
}

func (k *killWriter) Flush() {
	if fl, ok := k.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// newFlakyWorker boots a popserved that dies after streaming `lines` lines.
func newFlakyWorker(t *testing.T, lines int64) (*flakyWorker, string) {
	t.Helper()
	s := serve.MustNew(serve.Config{QueueDepth: 16, Workers: 2, FleetWorkers: 2})
	f := &flakyWorker{inner: s.Handler()}
	f.lines.Store(lines)
	ts := httptest.NewServer(f)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return f, ts.URL
}

// TestWorkerLossRedispatchesShard is the fail-over contract: a worker that
// dies mid-stream loses its shard to another worker, which resumes at the
// exact replica the stream stopped at (RunOptions.Start under the hood),
// and the merged output is still byte-identical to a single-node run.
func TestWorkerLossRedispatchesShard(t *testing.T) {
	want := singleNodeBytes(t, testSpecJSON)
	_, flakyURL := newFlakyWorker(t, 3)
	c, base := newCoordinator(t, Config{
		Workers:       []string{newWorker(t), flakyURL},
		ShardSize:     6,
		ClientRetries: 0, // fail over immediately rather than hammering the corpse
	})
	status, got := post(t, base, "/v1/jobs", testSpecJSON)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs after worker loss:\n%s\nvs\n%s", got, want)
	}
	if re := c.Metrics().ShardsRedispatched.Load(); re == 0 {
		t.Fatal("no shard was re-dispatched — the flaky worker never fired")
	}
	lost := false
	for _, w := range c.Workers() {
		if w.URL == flakyURL && !w.Live {
			lost = true
		}
	}
	if !lost {
		t.Fatalf("flaky worker still marked live: %+v", c.Workers())
	}
}

// TestCoordinatorJournalResume proves coordinator checkpointing: a job that
// dies with every worker down leaves a journaled prefix, and a fresh
// coordinator (a restart) re-POSTed the same (job_id, spec) replays the
// prefix and computes only the rest — byte-identical to a clean run.
func TestCoordinatorJournalResume(t *testing.T) {
	spec := `{"protocol":"exactmajority","n":400,"seed":7,"replicas":12,"gap":2,"job_id":"e2e"}`
	plain := testSpecJSON // same job without the id
	want := singleNodeBytes(t, plain)
	dir := t.TempDir()

	f, flakyURL := newFlakyWorker(t, 4)
	_, base := newCoordinator(t, Config{
		Workers:         []string{flakyURL},
		ShardSize:       12, // one shard so the kill leaves a clean prefix
		ClientRetries:   0,
		DispatchRetries: 1,
		JournalDir:      dir,
	})
	status, body := post(t, base, "/v1/jobs", spec)
	if status != http.StatusOK {
		t.Fatalf("first attempt: status %d: %s", status, body)
	}
	if !bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("first attempt should have failed in-band (worker died):\n%s", body)
	}
	if !bytes.HasPrefix(want, bytes.TrimSuffix(body, lastLine(body))) {
		t.Fatalf("failed run's record prefix is not a prefix of the clean run:\n%s", body)
	}

	// "Restart": a brand-new coordinator over the same journal directory,
	// with the worker back up.
	f.revive()
	c2, base2 := newCoordinator(t, Config{
		Workers:    []string{flakyURL},
		JournalDir: dir,
	})
	status, got := post(t, base2, "/v1/jobs", spec)
	if status != http.StatusOK {
		t.Fatalf("resume: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from clean run:\n%s\nvs\n%s", got, want)
	}
	if c2.Metrics().JobsResumed.Load() != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", c2.Metrics().JobsResumed.Load())
	}

	// A third POST replays everything from disk without touching a worker.
	f.dead.Store(true)
	status, again := post(t, base2, "/v1/jobs", spec)
	if status != http.StatusOK || !bytes.Equal(again, want) {
		t.Fatalf("full-journal replay differs (status %d)", status)
	}
}

// lastLine returns the final newline-terminated line of b.
func lastLine(b []byte) []byte {
	trimmed := bytes.TrimSuffix(b, []byte{'\n'})
	i := bytes.LastIndexByte(trimmed, '\n')
	return b[i+1:]
}

func TestRegistrationLifecycle(t *testing.T) {
	c, base := newCoordinator(t, Config{})

	// No workers: jobs are rejected with a retryable 503.
	status, body := post(t, base, "/v1/jobs", testSpecJSON)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("no-worker job: status %d: %s", status, body)
	}
	if c.Metrics().JobsRejectedNoWorkers.Load() != 1 {
		t.Fatal("no-worker rejection not counted")
	}

	// Degraded healthz while the fleet is dark.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dark-fleet healthz: status %d", resp.StatusCode)
	}

	// Register a live worker at runtime; it is routable immediately.
	status, body = post(t, base, "/v1/workers", fmt.Sprintf(`{"url":%q}`, newWorker(t)))
	if status != http.StatusOK {
		t.Fatalf("register: status %d: %s", status, body)
	}
	var listing struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("bad listing: %v", err)
	}
	if len(listing.Workers) != 1 || !listing.Workers[0].Live {
		t.Fatalf("worker not live after registration: %+v", listing.Workers)
	}

	want := singleNodeBytes(t, testSpecJSON)
	status, got := post(t, base, "/v1/jobs", testSpecJSON)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-registration job differs (status %d)", status)
	}

	// Bad registrations are rejected.
	for _, bad := range []string{`{"url":"ftp://x"}`, `{"url":""}`, `{"wat":1}`} {
		if status, _ := post(t, base, "/v1/workers", bad); status != http.StatusBadRequest {
			t.Errorf("registration %s: status %d, want 400", bad, status)
		}
	}
}

func TestValidationAndMethodErrors(t *testing.T) {
	_, base := newCoordinator(t, Config{Workers: []string{newWorker(t)}})
	for _, tc := range []struct{ name, body string }{
		{"malformed", `{"protocol":`},
		{"unknown protocol", `{"protocol":"nosuch","n":100}`},
		{"start with job_id", `{"protocol":"leader","n":100,"replicas":4,"start":2,"job_id":"x"}`},
		{"start out of range", `{"protocol":"leader","n":100,"replicas":4,"start":4}`},
	} {
		if status, _ := post(t, base, "/v1/jobs", tc.body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
	}
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: status %d", resp.StatusCode)
	}
	if status, _ := post(t, base, "/v1/jobs", `{"protocol":"leader","n":100,"job_id":"x"}`); status != http.StatusBadRequest {
		t.Fatal("job_id without -journal accepted")
	}
}

func TestMetricsEndpoints(t *testing.T) {
	_, base := newCoordinator(t, Config{Workers: []string{newWorker(t), newWorker(t)}})
	if status, _ := post(t, base, "/v1/jobs", testSpecJSON); status != http.StatusOK {
		t.Fatalf("job: status %d", status)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("bad metrics JSON: %v", err)
	}
	if snap.JobsCompleted != 1 || snap.ShardsDispatched == 0 || snap.RecordsMerged != 12 ||
		snap.Workers != 2 || snap.WorkersLive != 2 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}

	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"popkit_cluster_shards_dispatched_total",
		"popkit_cluster_workers_live 2",
		"popkit_cluster_shard_duration_seconds",
		`popkit_cluster_http_request_duration_seconds_bucket{endpoint="jobs"`,
	} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("prom exposition missing %q", series)
		}
	}

	resp, err = http.Get(base + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	plist, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(plist), `"exactmajority"`) {
		t.Fatalf("protocols listing missing exactmajority: %s", plist)
	}
}

// TestProbeLoopRevivesWorker covers Start's background sweep end to end: a
// worker marked down by a dispatch failure comes back once its process
// answers probes again.
func TestProbeLoopRevivesWorker(t *testing.T) {
	f, flakyURL := newFlakyWorker(t, 0) // dies on the first streamed line
	c, base := newCoordinator(t, Config{
		Workers:         []string{flakyURL},
		ClientRetries:   0,
		DispatchRetries: 1,
		ProbeInterval:   20 * time.Millisecond,
	})
	c.Start()
	// Depending on whether the initial probe or the first shard kills the
	// worker, this lands as a 503 (no live workers) or a 200 with an in-band
	// error — either way the job must not succeed.
	status, body := post(t, base, "/v1/jobs", testSpecJSON)
	if status == http.StatusOK && !bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("job against dying worker succeeded: status %d: %s", status, body)
	}

	f.revive()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, live := workerCounts(c); live == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never revived the worker: %+v", c.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := singleNodeBytes(t, testSpecJSON)
	status, got := post(t, base, "/v1/jobs", testSpecJSON)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-revival job differs (status %d)", status)
	}
}

func workerCounts(c *Coordinator) (total, live int) {
	for _, w := range c.Workers() {
		total++
		if w.Live {
			live++
		}
	}
	return total, live
}
