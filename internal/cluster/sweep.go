package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"popkit/internal/expt"
	"popkit/internal/qos"
	"popkit/internal/store"
)

// handleSweep is POST /v1/sweep on the coordinator: the same grid API the
// workers expose, resolved against the coordinator's own result store, with
// misses fanned out across the worker fleet through the normal shard
// dispatch path. A sweep whose every point is cached completes with zero
// live workers; only the miss set needs a fleet.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	tenant, ok := qos.CleanTenant(r.Header.Get(tenantHeader))
	if !ok {
		c.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad %s header: want ≤64 chars of [A-Za-z0-9._-]", tenantHeader)
		return
	}
	var sw expt.SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		c.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	specs, err := sw.Expand(c.cfg.MaxSweepPoints)
	if err != nil {
		c.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	// Normalize per point so one invalid grid point yields one manifest
	// error line instead of failing the sweep.
	points := make([]store.Point, len(specs))
	for i := range specs {
		sp := specs[i]
		if _, err := c.cfg.Registry.Normalize(&sp, c.cfg.MaxN, c.cfg.MaxReplicas); err != nil {
			points[i] = store.Point{Spec: specs[i], Err: err}
			continue
		}
		points[i] = store.Point{Spec: sp}
	}
	c.metrics.Sweeps.Add(1)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sweeper := &store.Sweeper{
		Store:   c.rstore,
		Flight:  c.flight,
		Workers: c.cfg.SweepWorkers,
		Execute: func(ctx context.Context, spec expt.JobSpec) ([][]byte, error) {
			return c.executeSweepPoint(ctx, spec, tenant)
		},
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	writeLine := func(line []byte) {
		if _, err := w.Write(line); err != nil {
			// Client gone; the request context cancels the sweep.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum := sweeper.Run(ctx, points, func(res expt.SweepResult) {
		switch {
		case res.Err != "":
			c.metrics.SweepPointsError.Add(1)
		case res.Cache == "hit":
			c.metrics.SweepPointsHit.Add(1)
		case res.Cache == "miss":
			c.metrics.SweepPointsMiss.Add(1)
		case res.Cache == "inflight":
			c.metrics.SweepPointsInfl.Add(1)
		}
		if line, err := json.Marshal(res); err == nil {
			writeLine(append(line, '\n'))
		}
	})
	if line, err := expt.MarshalSummaryLine(sum); err == nil {
		writeLine(line)
	}
}

// executeSweepPoint runs one normalized spec through the shard dispatcher
// without an HTTP stream — the coordinator sweep's miss path. Each point is
// priced and admitted individually under the sweep's tenant, so one
// over-budget grid point yields one manifest error line instead of failing
// the sweep. Returns the complete merged record lines in replica order.
func (c *Coordinator) executeSweepPoint(ctx context.Context, spec expt.JobSpec, tenant string) ([][]byte, error) {
	proto, err := c.cfg.Registry.Normalize(&spec, c.cfg.MaxN, c.cfg.MaxReplicas)
	if err != nil {
		return nil, err
	}
	pred := c.model.Predict(spec, proto.Kind)
	if c.cfg.CostBudget > 0 && pred.Total > c.cfg.CostBudget {
		c.qosM.Rejected(tenant, pred.Class, "over_budget")
		return nil, fmt.Errorf("predicted cost %v exceeds the coordinator budget %v",
			pred.Total.Round(time.Millisecond), c.cfg.CostBudget)
	}
	if _, live := c.workers.counts(); live == 0 && c.ProbeNow() == 0 {
		return nil, fmt.Errorf("no live workers registered")
	}
	c.metrics.JobsAccepted.Add(1)
	c.qosM.Admitted(tenant, pred.Class)
	jctx, cancel := context.WithTimeout(ctx, c.jobDeadline(pred, nil))
	defer cancel()
	lines := make([][]byte, 0, spec.Replicas)
	err = c.execute(jctx, tenant, spec, 0, nil, func(line []byte) {
		// Dispatch hands each merged line over freshly allocated.
		lines = append(lines, line)
	})
	if err != nil {
		return nil, err
	}
	if len(lines) != spec.Replicas {
		return nil, fmt.Errorf("job produced %d of %d records", len(lines), spec.Replicas)
	}
	return lines, nil
}
