package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"popkit/internal/obs"
)

// WorkerInfo is the externally visible state of one registered worker, as
// listed by GET /v1/workers and the coordinator's /healthz.
type WorkerInfo struct {
	URL string `json:"url"`
	// Live reports the worker's last known health: true after a 200 from
	// its /healthz (or a successful shard), false after a failed probe, a
	// draining 503, or a shard dispatch that died against it.
	Live bool `json:"live"`
	// LastErr is the most recent probe or dispatch failure ("" when Live).
	LastErr string `json:"last_err,omitempty"`
	// Inflight counts shards currently dispatched to the worker.
	Inflight int `json:"inflight_shards"`
	// Shards counts shard dispatches ever routed to the worker.
	Shards int64 `json:"shards_total"`
}

// worker is one registered popserved instance.
type worker struct {
	url      string
	live     bool
	lastErr  string
	inflight int
	shards   int64
	// shardDur observes each shard attempt's wall clock against this
	// worker (the per-worker latency series of the cluster metrics).
	shardDur *obs.Histogram
}

// workerSet is the coordinator's registry of popserved workers: explicit
// registration (flags or POST /v1/workers), periodic /healthz probing, and
// least-loaded live-worker selection for shard dispatch. Liveness is
// advisory — dispatch failures mark a worker down immediately, and the next
// successful probe revives it.
type workerSet struct {
	client  *http.Client
	timeout time.Duration
	metrics *Metrics

	mu      sync.Mutex
	workers map[string]*worker
}

func newWorkerSet(client *http.Client, probeTimeout time.Duration, m *Metrics) *workerSet {
	return &workerSet{
		client:  client,
		timeout: probeTimeout,
		metrics: m,
		workers: make(map[string]*worker),
	}
}

// add registers a worker by base URL (scheme://host[:port]); adding an
// existing URL is a no-op. New workers start not-live until their first
// successful probe, so a registration typo cannot attract shards.
func (s *workerSet) add(rawURL string) error {
	base := strings.TrimRight(rawURL, "/")
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("worker URL must be http(s)://host[:port], got %q", rawURL)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.workers[base]; dup {
		return nil
	}
	s.workers[base] = &worker{
		url:      base,
		shardDur: s.metrics.WorkerShardDuration(base),
	}
	s.metrics.Workers.Set(int64(len(s.workers)))
	return nil
}

// snapshot lists every worker, sorted by URL.
func (s *workerSet) snapshot() []WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerInfo, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, WorkerInfo{
			URL: w.url, Live: w.live, LastErr: w.lastErr,
			Inflight: w.inflight, Shards: w.shards,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// counts returns (registered, live) worker tallies.
func (s *workerSet) counts() (total, live int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.workers {
		if w.live {
			live++
		}
	}
	return len(s.workers), live
}

// pick claims the least-loaded live worker (ties broken by URL so selection
// is deterministic), skipping avoidURL when any other live worker exists —
// the re-dispatch case, where the avoided worker just failed a shard. The
// claim increments the worker's inflight count; the caller must release.
func (s *workerSet) pick(avoidURL string) *worker {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := s.pickLocked(avoidURL)
	if best == nil && avoidURL != "" {
		best = s.pickLocked("")
	}
	if best != nil {
		best.inflight++
		best.shards++
	}
	return best
}

func (s *workerSet) pickLocked(avoidURL string) *worker {
	var best *worker
	for _, w := range s.workers {
		if !w.live || w.url == avoidURL {
			continue
		}
		if best == nil || w.inflight < best.inflight ||
			(w.inflight == best.inflight && w.url < best.url) {
			best = w
		}
	}
	return best
}

// release returns a claim taken by pick, optionally observing the shard
// attempt's duration on the worker's latency series.
func (s *workerSet) release(w *worker, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.inflight > 0 {
		w.inflight--
	}
	w.shardDur.Observe(elapsed)
}

// markDown records a dispatch failure: the worker stops receiving shards
// until a probe sees it healthy again.
func (s *workerSet) markDown(w *worker, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.live {
		w.live = false
		s.metrics.WorkersLost.Add(1)
	}
	w.lastErr = err.Error()
	s.updateLiveLocked()
}

func (s *workerSet) updateLiveLocked() {
	live := 0
	for _, w := range s.workers {
		if w.live {
			live++
		}
	}
	s.metrics.WorkersLive.Set(int64(live))
}

// probeAll checks every registered worker's /healthz concurrently and
// updates liveness. It returns the number of live workers afterwards.
func (s *workerSet) probeAll(ctx context.Context) int {
	s.mu.Lock()
	targets := make([]*worker, 0, len(s.workers))
	for _, w := range s.workers {
		targets = append(targets, w)
	}
	s.mu.Unlock()

	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, w := range targets {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			errs[i] = s.probe(ctx, url)
		}(i, w.url)
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	for i, w := range targets {
		if errs[i] == nil {
			w.live = true
			w.lastErr = ""
		} else {
			if w.live {
				s.metrics.WorkersLost.Add(1)
			}
			w.live = false
			w.lastErr = errs[i].Error()
		}
	}
	s.updateLiveLocked()
	live := 0
	for _, w := range s.workers {
		if w.live {
			live++
		}
	}
	return live
}

// probe GETs one worker's /healthz under the probe timeout. Anything but a
// 200 — connection refused, timeout, or a draining worker's 503 — is down.
func (s *workerSet) probe(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	s.metrics.Probes.Inc()
	resp, err := s.client.Do(req)
	if err != nil {
		s.metrics.ProbeFailures.Inc()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.metrics.ProbeFailures.Inc()
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}
