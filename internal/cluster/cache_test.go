package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"popkit/internal/expt"
	"popkit/internal/serve"
)

// postResp is post with the full response exposed, for header assertions.
func postResp(t *testing.T, base, path, spec string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCoordinatorRepeatPostServedFromStore: the second identical POST must
// come out of the coordinator store — byte-identical, no shards dispatched,
// and still served after the whole fleet goes dark.
func TestCoordinatorRepeatPostServedFromStore(t *testing.T) {
	want := singleNodeBytes(t, testSpecJSON)

	// A worker we can kill mid-test, unlike newWorker's test-scoped one.
	ws := serve.MustNew(serve.Config{QueueDepth: 16, Workers: 2, FleetWorkers: 2})
	wts := httptest.NewServer(ws.Handler())
	defer ws.Close()
	defer wts.Close()

	c, base := newCoordinator(t, Config{Workers: []string{wts.URL}, StoreDir: t.TempDir()})

	first := postResp(t, base, "/v1/jobs", testSpecJSON)
	if got := first.Header.Get("X-Popkit-Cache"); got != "miss" {
		t.Fatalf("first POST X-Popkit-Cache = %q, want miss", got)
	}
	firstBody := readBody(t, first)
	if !bytes.Equal(firstBody, want) {
		t.Fatalf("cluster output differs from single node:\n%s\nvs\n%s", firstBody, want)
	}
	dispatched := c.Metrics().ShardsDispatched.Load()
	accepted := c.Metrics().JobsAccepted.Load()

	// Kill the fleet. A plain job would now 503; the cached one must serve.
	wts.Close()
	c.ProbeNow()
	if _, live := c.workers.counts(); live != 0 {
		t.Fatalf("worker still live after close: %d", live)
	}

	second := postResp(t, base, "/v1/jobs", testSpecJSON)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("cached POST against a dark fleet: status %d", second.StatusCode)
	}
	if got := second.Header.Get("X-Popkit-Cache"); got != "hit" {
		t.Fatalf("second POST X-Popkit-Cache = %q, want hit", got)
	}
	if secondBody := readBody(t, second); !bytes.Equal(firstBody, secondBody) {
		t.Fatal("cached stream not byte-identical to the first run")
	}
	if got := c.Metrics().ShardsDispatched.Load(); got != dispatched {
		t.Fatalf("cache hit dispatched %d shard(s)", got-dispatched)
	}
	if got := c.Metrics().JobsAccepted.Load(); got != accepted {
		t.Fatalf("cache hit accepted a job (%d -> %d)", accepted, got)
	}

	// An uncached spec against the dark fleet still 503s — the store did not
	// mask the liveness check, it preceded it.
	uncached := postResp(t, base, "/v1/jobs", `{"protocol":"leader","n":100,"replicas":2}`)
	readBody(t, uncached)
	if uncached.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached POST against a dark fleet: status %d, want 503", uncached.StatusCode)
	}
}

// postSweepC POSTs a sweep to the coordinator and decodes manifest + summary.
func postSweepC(t *testing.T, base, body string) ([]expt.SweepResult, expt.SweepSummary) {
	t.Helper()
	resp := postResp(t, base, "/v1/sweep", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var (
		results []expt.SweepResult
		sum     expt.SweepSummary
		sawSum  bool
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if s, ok := expt.ParseSummaryLine(sc.Bytes()); ok {
			sum, sawSum = s, true
			continue
		}
		var res expt.SweepResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad manifest line %q: %v", sc.Text(), err)
		}
		results = append(results, res)
	}
	if !sawSum {
		t.Fatal("sweep stream ended without a summary line")
	}
	return results, sum
}

// TestCoordinatorSweepDedupesOverlap mirrors the worker-side sweep test at
// cluster scale: an overlapping second grid fans out only its miss set, and
// the sweep/store counters surface in both metrics formats.
func TestCoordinatorSweepDedupesOverlap(t *testing.T) {
	c, base := newCoordinator(t, Config{
		Workers:  []string{newWorker(t), newWorker(t)},
		StoreDir: t.TempDir(),
	})

	first := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2]}}`
	results, sum := postSweepC(t, base, first)
	if len(results) != 2 || sum != (expt.SweepSummary{Points: 2, Misses: 2}) {
		t.Fatalf("first sweep: %d lines, summary %+v, want 2 misses", len(results), sum)
	}
	for i, res := range results {
		if res.Point != i || res.Cache != "miss" || res.Err != "" || res.Records != 2 {
			t.Fatalf("point %d = %+v, want an in-order 2-record miss", i, res)
		}
	}

	accepted := c.Metrics().JobsAccepted.Load()
	second := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2,3]}}`
	results, sum = postSweepC(t, base, second)
	if sum != (expt.SweepSummary{Points: 3, Hits: 2, Misses: 1}) {
		t.Fatalf("second summary = %+v, want 2 hits 1 miss", sum)
	}
	wantCache := []string{"hit", "hit", "miss"}
	for i, res := range results {
		if res.Cache != wantCache[i] {
			t.Fatalf("point %d cache = %q, want %q", i, res.Cache, wantCache[i])
		}
	}
	if got := c.Metrics().JobsAccepted.Load() - accepted; got != 1 {
		t.Fatalf("overlap sweep accepted %d jobs, want 1 (only the miss set runs)", got)
	}

	// The counters ride the same metrics surfaces as every other series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Sweeps != 2 || snap.SweepPointsHit != 2 || snap.SweepPointsMiss != 3 {
		t.Fatalf("snapshot sweeps=%d hit=%d miss=%d, want 2/2/3",
			snap.Sweeps, snap.SweepPointsHit, snap.SweepPointsMiss)
	}
	if snap.Store == nil || snap.Store.Hits != 2 || snap.Store.Commits != 3 {
		t.Fatalf("store snapshot = %+v, want hits=2 commits=3", snap.Store)
	}
	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readBody(t, resp))
	for _, series := range []string{
		"popkit_cluster_sweeps_total 2",
		`popkit_cluster_sweep_points_total{cache="hit"} 2`,
		"popkit_store_commits_total 3",
	} {
		if !strings.Contains(prom, series) {
			t.Errorf("prom exposition missing %q", series)
		}
	}
}

// TestCoordinatorSweepNeedsWorkersOnlyForMisses: with every point cached, a
// sweep completes against a dark fleet; an uncached point fails in-band.
func TestCoordinatorSweepNeedsWorkersOnlyForMisses(t *testing.T) {
	ws := serve.MustNew(serve.Config{QueueDepth: 16, Workers: 2, FleetWorkers: 2})
	wts := httptest.NewServer(ws.Handler())
	defer ws.Close()
	defer wts.Close()
	c, base := newCoordinator(t, Config{Workers: []string{wts.URL}, StoreDir: t.TempDir()})

	warm := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2]}}`
	if _, sum := postSweepC(t, base, warm); sum.Misses != 2 {
		t.Fatalf("warm-up summary %+v, want 2 misses", sum)
	}
	wts.Close()
	c.ProbeNow()

	cold := `{"base":{"protocol":"leader","n":256,"replicas":2},"grid":{"seed":[1,2,3]}}`
	results, sum := postSweepC(t, base, cold)
	if sum.Hits != 2 || sum.Errors != 1 {
		t.Fatalf("dark-fleet sweep summary %+v, want 2 hits 1 error", sum)
	}
	if results[2].Err == "" {
		t.Fatalf("uncached point against a dark fleet = %+v, want an in-band error", results[2])
	}
}
