package cluster

import (
	"reflect"
	"testing"
)

func TestPlanShards(t *testing.T) {
	for _, tc := range []struct {
		start, end, size int
		want             []shard
	}{
		{0, 10, 4, []shard{{0, 4}, {4, 8}, {8, 10}}},
		{0, 10, 10, []shard{{0, 10}}},
		{0, 10, 100, []shard{{0, 10}}},
		{3, 10, 3, []shard{{3, 6}, {6, 9}, {9, 10}}},
		{0, 1, 0, []shard{{0, 1}}}, // size clamps to 1
		{5, 5, 4, nil},             // nothing left: resume found a full journal
	} {
		got := planShards(tc.start, tc.end, tc.size)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("planShards(%d,%d,%d) = %v, want %v", tc.start, tc.end, tc.size, got, tc.want)
		}
	}
}

// TestPlanShardsCoversRangeExactly property-checks the plan: contiguous,
// disjoint, in order, covering [start, end).
func TestPlanShardsCoversRangeExactly(t *testing.T) {
	for start := 0; start < 5; start++ {
		for end := start + 1; end < 40; end += 3 {
			for size := 1; size < 12; size++ {
				next := start
				for _, sh := range planShards(start, end, size) {
					if sh.lo != next || sh.hi <= sh.lo || sh.hi-sh.lo > size {
						t.Fatalf("bad plan for (%d,%d,%d): %v", start, end, size, sh)
					}
					next = sh.hi
				}
				if next != end {
					t.Fatalf("plan for (%d,%d,%d) stops at %d", start, end, size, next)
				}
			}
		}
	}
}

func TestShardSizeFor(t *testing.T) {
	c := &Coordinator{cfg: Config{}}
	// Auto mode: about two shards per live worker.
	if got := c.shardSizeFor(100, 5); got != 10 {
		t.Errorf("auto shard size for 100 replicas on 5 workers = %d, want 10", got)
	}
	if got := c.shardSizeFor(3, 8); got != 1 {
		t.Errorf("tiny jobs shard to 1, got %d", got)
	}
	// Zero live workers (everything down at submit) must not divide by zero.
	if got := c.shardSizeFor(10, 0); got != 5 {
		t.Errorf("dark-fleet shard size = %d, want 5", got)
	}
	// Explicit cap wins.
	c.cfg.ShardSize = 7
	if got := c.shardSizeFor(100, 5); got != 7 {
		t.Errorf("explicit shard size = %d, want 7", got)
	}
}
