package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"popkit/internal/serve"
)

// headerRecorder collects the QoS headers of every /v1/simulate dispatch
// across all workers, in arrival order.
type headerRecorder struct {
	mu        sync.Mutex
	deadlines []int64
	tenants   []string
}

func (h *headerRecorder) record(r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ms, _ := strconv.ParseInt(r.Header.Get("X-Popkit-Deadline-Ms"), 10, 64)
	h.deadlines = append(h.deadlines, ms)
	h.tenants = append(h.tenants, r.Header.Get("X-Popkit-Tenant"))
}

func (h *headerRecorder) snapshot() ([]int64, []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.deadlines...), append([]string(nil), h.tenants...)
}

// recordedWorker fronts a real popserved, recording the QoS headers of
// every simulate dispatch. Arming it (arm) turns it into a flaky worker: a
// total budget of streamed lines, after which the in-flight connection is
// cut (with a small pause first, so the next dispatch observably burns
// deadline budget) and every later request — health probes included — is
// refused, exactly like a killed process.
type recordedWorker struct {
	inner http.Handler
	rec   *headerRecorder
	lines atomic.Int64
	dead  atomic.Bool
}

func (d *recordedWorker) arm(lines int64) { d.lines.Store(lines) }

func (d *recordedWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.dead.Load() {
		http.Error(w, "worker is dead", http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/v1/simulate" || r.URL.Path == "/v1/jobs" {
		d.rec.record(r)
	}
	d.inner.ServeHTTP(&recCutter{ResponseWriter: w, d: d}, r)
}

// recCutter charges streamed NDJSON lines against the worker's budget and
// pulls the kill switch mid-write when it runs out.
type recCutter struct {
	http.ResponseWriter
	d *recordedWorker
}

func (k *recCutter) Write(p []byte) (int, error) {
	if n := int64(bytes.Count(p, []byte{'\n'})); n > 0 {
		if k.d.lines.Add(-n) < 0 {
			k.d.dead.Store(true)
			// Burn a visible slice of the deadline before dying so the
			// re-dispatch header is strictly smaller even at ms resolution.
			time.Sleep(20 * time.Millisecond)
			panic(http.ErrAbortHandler)
		}
	}
	return k.ResponseWriter.Write(p)
}

func (k *recCutter) Flush() {
	if fl, ok := k.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func newRecordedWorker(t *testing.T, rec *headerRecorder) (*recordedWorker, string) {
	t.Helper()
	s := serve.MustNew(serve.Config{QueueDepth: 16, Workers: 2, FleetWorkers: 2})
	d := &recordedWorker{inner: s.Handler(), rec: rec}
	d.lines.Store(1 << 30)
	ts := httptest.NewServer(d)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return d, ts.URL
}

// postTenant posts a job with the tenant header set.
func postTenant(t *testing.T, base, path, tenant, spec string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Popkit-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestShardRedispatchInheritsDeadline is the deadline-propagation contract:
// the coordinator derives one wall-clock budget per job, stamps the
// REMAINING budget on every shard dispatch via X-Popkit-Deadline-Ms, and a
// shard re-routed after its worker died mid-stream inherits what is left —
// each successive dispatch's header is strictly smaller, never a fresh full
// timeout. The tenant rides along on every dispatch, and the merged output
// stays byte-identical to a single-node run despite two worker deaths.
func TestShardRedispatchInheritsDeadline(t *testing.T) {
	want := singleNodeBytes(t, testSpecJSON)
	rec := &headerRecorder{}
	// The worker with the lexicographically smaller URL wins the idle
	// tie-break in pick(), so arming that one guarantees it receives the
	// shard first, dies 3 lines in, and the shard re-dispatches to the
	// healthy survivor.
	wa, urlA := newRecordedWorker(t, rec)
	wb, urlB := newRecordedWorker(t, rec)
	if urlA < urlB {
		wa.arm(3)
	} else {
		wb.arm(3)
	}
	c, base := newCoordinator(t, Config{
		Workers:    []string{urlA, urlB},
		ShardSize:  12, // one shard, so the deadline chain is linear
		JobTimeout: 8 * time.Second,
	})
	status, got := post(t, base, "/v1/jobs", testSpecJSON)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs after worker deaths:\n%s\nvs\n%s", got, want)
	}
	if c.Metrics().ShardsRedispatched.Load() == 0 {
		t.Fatal("no shard was re-dispatched — the die-once workers never fired")
	}

	deadlines, _ := rec.snapshot()
	if len(deadlines) < 2 {
		t.Fatalf("want ≥2 dispatches, recorded %d", len(deadlines))
	}
	for i, ms := range deadlines {
		if ms <= 0 || ms > (8*time.Second).Milliseconds() {
			t.Fatalf("dispatch %d deadline %dms outside (0, 8000]", i, ms)
		}
		if i > 0 && ms >= deadlines[i-1] {
			t.Fatalf("re-dispatch %d inherited %dms ≥ prior %dms — deadline not propagated: %v",
				i, ms, deadlines[i-1], deadlines)
		}
	}
}

// TestClusterForwardsTenantToWorkers: the tenant a job bills to at the
// coordinator is forwarded on every shard dispatch, so worker-side fair
// queueing sees the originating tenant rather than one anonymous
// coordinator lane.
func TestClusterForwardsTenantToWorkers(t *testing.T) {
	rec := &headerRecorder{}
	// Unarmed: recorder-only wrappers, nobody dies.
	_, urlA := newRecordedWorker(t, rec)
	_, urlB := newRecordedWorker(t, rec)
	_, base := newCoordinator(t, Config{Workers: []string{urlA, urlB}})
	status, body := postTenant(t, base, "/v1/jobs", "acme", testSpecJSON)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	_, tenants := rec.snapshot()
	if len(tenants) == 0 {
		t.Fatal("no dispatches recorded")
	}
	for i, tn := range tenants {
		if tn != "acme" {
			t.Fatalf("dispatch %d carried tenant %q, want acme (all: %v)", i, tn, tenants)
		}
	}
}

// TestCoordinatorCostBudgetRejects covers coordinator-side admission: a job
// whose predicted cost exceeds -cost-budget bounces with a structured 413
// before any shard is dispatched, cheap work still flows, and the decisions
// land in the per-tenant qos section of /metrics (JSON and Prometheus).
func TestCoordinatorCostBudgetRejects(t *testing.T) {
	_, base := newCoordinator(t, Config{
		Workers:    []string{newWorker(t)},
		CostBudget: time.Minute,
	})

	// exactmajority at n=2e6 predicts ~n·ln n rounds — hours, not a minute.
	status, body := postTenant(t, base, "/v1/jobs", "acme",
		`{"protocol":"exactmajority","n":2000000,"seed":1}`)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget job: status %d: %s", status, body)
	}
	var doc struct {
		Error string `json:"error"`
		QoS   *struct {
			Tenant          string `json:"tenant"`
			Class           string `json:"class"`
			PredictedCostMs int64  `json:"predicted_cost_ms"`
			Reason          string `json:"reason"`
		} `json:"qos"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.QoS == nil {
		t.Fatalf("413 body not a structured rejection: %s", body)
	}
	if doc.QoS.Tenant != "acme" || doc.QoS.Reason != "over_budget" ||
		doc.QoS.PredictedCostMs < time.Minute.Milliseconds() {
		t.Fatalf("unexpected qos doc: %+v", doc.QoS)
	}

	// Cheap work is unaffected by the budget.
	if status, body := postTenant(t, base, "/v1/jobs", "acme", testSpecJSON); status != http.StatusOK {
		t.Fatalf("cheap job under budget: status %d: %s", status, body)
	}

	// Both decisions are visible per tenant in the JSON document…
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("bad metrics JSON: %v", err)
	}
	if snap.QoS == nil {
		t.Fatal("metrics JSON lacks qos section")
	}
	acme, ok := snap.QoS.Tenants["acme"]
	if !ok {
		t.Fatalf("qos section lacks tenant acme: %+v", snap.QoS.Tenants)
	}
	if acme.Rejected["over_budget"] != 1 {
		t.Fatalf("acme rejected tallies: %+v", acme.Rejected)
	}
	var admitted int64
	for _, v := range acme.Admitted {
		admitted += v
	}
	if admitted != 1 {
		t.Fatalf("acme admitted tallies: %+v", acme.Admitted)
	}

	// …and in the Prometheus exposition.
	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"popkit_qos_rejected_total",
		"popkit_qos_admitted_total",
		`tenant="acme"`,
	} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("prom exposition missing %q", series)
		}
	}

	// A malformed tenant header is a 400, not a silent default.
	status, _ = postTenant(t, base, "/v1/jobs", "no spaces", testSpecJSON)
	if status != http.StatusBadRequest {
		t.Fatalf("bad tenant header: status %d, want 400", status)
	}
}
