// Package cluster shards one simulation job across many popserved workers.
//
// The coordinator accepts the same expt.JobSpec as a single popserved
// (POST /v1/jobs, with /v1/simulate as an alias), splits the job's replica
// range [0, Replicas) into contiguous shards, dispatches each shard to a
// registered worker as the same spec with a [Start, Replicas) window, and
// merges the returning streams in replica order through a fleet.OrderedSink.
// Because replica i's whole RNG stream derives from ReplicaSeed(Seed, i),
// the merged NDJSON output is byte-identical to a single-node run — for any
// worker count, any shard size, and across worker failures.
//
// Failure handling is layered:
//
//   - Each shard streams through internal/client, whose retry/reconnect
//     machinery already survives backpressure (429/409/503 + Retry-After)
//     and mid-stream cuts against the same worker.
//   - When a worker dies outright (kill -9, network partition), the client
//     gives up, the coordinator marks the worker down, and the shard's
//     remaining replicas [cursor, hi) are re-dispatched to another live
//     worker via the spec's Start window — replicas already merged are
//     never recomputed or re-emitted.
//   - With a journal directory, jobs carrying a job_id checkpoint every
//     merged record through the same fsynced expt.Journal format popserved
//     uses, so a coordinator crash costs only the replicas past the
//     journaled prefix: re-POSTing the same (job_id, spec) replays the
//     prefix verbatim and dispatches only the rest.
//
// Workers are registered explicitly (popcoord -workers, or POST
// /v1/workers at runtime) and health-checked by polling their cheap
// /healthz endpoint; a draining worker (SIGTERM) answers 503 and stops
// receiving shards before its listener closes.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"popkit/internal/expt"
	"popkit/internal/qos"
	"popkit/internal/serve"
	"popkit/internal/store"
)

// Config sizes the coordinator.
type Config struct {
	// Registry validates and normalizes job specs; nil means
	// serve.NewRegistry(). It must match the workers' registry, since the
	// workers re-normalize the shard specs they receive.
	Registry *serve.Registry
	// Workers is the initial set of popserved base URLs. More can be
	// registered at runtime via POST /v1/workers.
	Workers []string
	// ShardSize caps replicas per shard. 0 sizes shards automatically to
	// about two per live worker, so one slow worker can't serialize the
	// tail of a job. Shard size never changes output bytes.
	ShardSize int
	// ProbeInterval is the worker health-check period. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe. Default 500ms.
	ProbeTimeout time.Duration
	// ClientRetries is the per-dispatch retry budget of the streaming
	// client against one worker (client.Options.MaxRetries). Default 2.
	ClientRetries int
	// DispatchRetries bounds consecutive no-progress dispatch attempts per
	// shard — re-dispatches that deliver at least one new replica reset the
	// budget, like the client's own retry accounting. Default 4.
	DispatchRetries int
	// MaxInflightShards caps concurrently dispatched shards per job.
	// Default 2×registered workers (min 4).
	MaxInflightShards int
	// JournalDir, when non-empty, enables coordinator checkpoint/resume
	// for jobs that carry a job_id (same journal format as popserved).
	JournalDir string
	// JobTimeout caps one job's wall clock. 0 means the deadline is derived
	// per job from the cost model's prediction (capped at 15 minutes); an
	// explicit value caps the derived deadline — it is an operator override,
	// never extended by a prediction. Workers apply their own per-shard
	// timeout on top, inheriting the remaining budget via the
	// X-Popkit-Deadline-Ms header on every shard dispatch.
	JobTimeout time.Duration
	// MinJobTimeout floors the derived deadline so a mispredicted tiny job
	// still gets a usable window. Default 10s.
	MinJobTimeout time.Duration
	// CostModelPath optionally overrides the baked-in ns-per-interaction
	// grid with a measured one (popbench output). Missing file → baked grid.
	CostModelPath string
	// CostBudget, when > 0, rejects any job whose predicted total cost
	// exceeds it with 413 — the coordinator-level admission guardrail.
	CostBudget time.Duration
	// MaxN / MaxReplicas cap accepted specs; they must not exceed the
	// workers' own caps. Defaults 5e6 and 1024.
	MaxN        int
	MaxReplicas int
	// StoreDir, when non-empty, enables the coordinator-side content-
	// addressed result store: completed cacheable jobs are committed under
	// their canonical spec hash and repeat POSTs stream the stored bytes
	// without dispatching a single shard. Coordinator and worker stores are
	// independent caches of the same pure function, so they never disagree.
	StoreDir string
	// StoreMaxBytes / StoreMaxEntries cap the store (0 → 256 MiB / 4096).
	StoreMaxBytes   int64
	StoreMaxEntries int
	// MaxSweepPoints caps POST /v1/sweep grid expansion. Default 1024.
	MaxSweepPoints int
	// SweepWorkers bounds concurrently resolving sweep points per request —
	// each miss fans out across the worker fleet, so a handful go a long
	// way. Default 4.
	SweepWorkers int
	// HTTPClient overrides http.DefaultClient for probes and shard streams.
	HTTPClient *http.Client
	// Logf, when set, receives one line per dispatch failure and worker
	// transition (diagnostics only).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Registry == nil {
		c.Registry = serve.NewRegistry()
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.ClientRetries == 0 {
		c.ClientRetries = 2
	}
	if c.DispatchRetries == 0 {
		c.DispatchRetries = 4
	}
	if c.MinJobTimeout == 0 {
		c.MinJobTimeout = 10 * time.Second
	}
	if c.MaxN == 0 {
		c.MaxN = 5_000_000
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 1024
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 1024
	}
	if c.SweepWorkers == 0 {
		c.SweepWorkers = 4
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
}

// Coordinator shards jobs across the registered workers. Create with New,
// start health probing with Start, and mount Handler on an http.Server.
type Coordinator struct {
	cfg      Config
	workers  *workerSet
	journals *journalSet
	metrics  *Metrics
	// rstore is the coordinator-side result cache (nil unless StoreDir is
	// set); flight single-flights concurrent identical jobs regardless.
	rstore  *store.Store
	flight  *store.Flight
	started time.Time
	// model predicts job cost for admission and deadline derivation; qosM
	// tallies per-tenant admission decisions on the shared metrics registry.
	model *qos.Model
	qosM  *qos.Metrics

	stopOnce sync.Once
	stopCh   chan struct{}
}

// New builds a coordinator with cfg's initial workers registered (but not
// yet probed — call Start, or ProbeNow for a synchronous first check).
func New(cfg Config) (*Coordinator, error) {
	cfg.fillDefaults()
	c := &Coordinator{
		cfg:     cfg,
		started: time.Now(),
		stopCh:  make(chan struct{}),
	}
	names := make([]string, 0, 8)
	for _, rt := range c.routes() {
		names = append(names, rt.name)
	}
	c.metrics = NewMetrics(names...)
	model, err := qos.NewModel(qos.ModelOptions{GridPath: cfg.CostModelPath})
	if err != nil {
		return nil, fmt.Errorf("cost model: %w", err)
	}
	c.model = model
	c.qosM = qos.NewMetrics(c.metrics.reg)
	c.workers = newWorkerSet(cfg.HTTPClient, cfg.ProbeTimeout, c.metrics)
	for _, u := range cfg.Workers {
		if err := c.workers.add(u); err != nil {
			return nil, err
		}
	}
	if cfg.JournalDir != "" {
		c.journals = &journalSet{dir: cfg.JournalDir, busy: make(map[string]bool)}
	}
	if cfg.StoreDir != "" {
		sm := store.NewMetrics(c.metrics.reg)
		st, err := store.Open(store.Options{
			Dir:        cfg.StoreDir,
			MaxBytes:   cfg.StoreMaxBytes,
			MaxEntries: cfg.StoreMaxEntries,
			Metrics:    sm,
		})
		if err != nil {
			return nil, err
		}
		c.rstore = st
		c.flight = store.NewFlight(sm)
	} else {
		c.flight = store.NewFlight(store.NewMetrics(nil))
	}
	return c, nil
}

// Store exposes the coordinator's result store (nil when disabled).
func (c *Coordinator) Store() *store.Store { return c.rstore }

// CostModel exposes the admission cost model (tests, embedding binaries).
func (c *Coordinator) CostModel() *qos.Model { return c.model }

// Metrics exposes the counter set (tests and embedding binaries).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Workers lists the registered workers and their health.
func (c *Coordinator) Workers() []WorkerInfo { return c.workers.snapshot() }

// Register adds a worker at runtime; it starts receiving shards after its
// first successful health probe.
func (c *Coordinator) Register(url string) error { return c.workers.add(url) }

// Start launches the background health-check loop (one concurrent probe
// sweep per ProbeInterval), beginning with a synchronous sweep so callers
// observe real liveness as soon as Start returns. Stop ends the loop.
func (c *Coordinator) Start() {
	c.ProbeNow()
	go func() {
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
				c.ProbeNow()
			}
		}
	}()
}

// ProbeNow runs one synchronous health sweep and returns the live count.
func (c *Coordinator) ProbeNow() int {
	return c.workers.probeAll(context.Background())
}

// Stop ends the health-check loop and persists the store index. In-flight
// jobs are unaffected (their request contexts govern them).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		if c.rstore != nil {
			c.rstore.Close()
		}
	})
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// journalSet mirrors popserved's: one expt.Journal per job ID under dir,
// plus a process-local busy set serializing access per ID. After a
// coordinator crash the new process starts idle; the journals on disk are
// the only state that matters, which is exactly what makes restart-resume
// work.
type journalSet struct {
	dir  string
	mu   sync.Mutex
	busy map[string]bool
}

var errJobBusy = fmt.Errorf("job already in flight")

func (s *journalSet) acquire(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy[id] {
		return errJobBusy
	}
	s.busy[id] = true
	return nil
}

func (s *journalSet) release(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.busy, id)
}

func (s *journalSet) open(id string, spec expt.JobSpec) (*expt.Journal, [][]byte, error) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, nil, err
	}
	return expt.LoadJournal(filepath.Join(s.dir, id+".ndjson"), spec)
}
