package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"popkit/internal/expt"
	"popkit/internal/qos"
	"popkit/internal/store"
)

// QoS headers, identical to popserved's: the tenant a request bills to, and
// the remaining deadline budget (milliseconds) a caller propagates so a
// retried job inherits what is left instead of a fresh full timeout.
const (
	tenantHeader   = "X-Popkit-Tenant"
	deadlineHeader = "X-Popkit-Deadline-Ms"
)

// maxAutoDeadline caps the cost-derived per-job deadline when the operator
// sets no explicit JobTimeout (mirrors popserved).
const maxAutoDeadline = 15 * time.Minute

// route is one entry of the coordinator's route table; as in popserved, the
// metrics' endpoint set derives from this table so every route gets a
// latency histogram by construction.
type route struct {
	name    string
	pattern string
	handler http.HandlerFunc
}

func (c *Coordinator) routes() []route {
	return []route{
		{"jobs", "/v1/jobs", c.handleJob},
		// Alias: a coordinator is a drop-in for a single popserved, so the
		// worker's simulate path accepts the same specs here.
		{"jobs", "/v1/simulate", c.handleJob},
		{"sweep", "/v1/sweep", c.handleSweep},
		{"workers", "/v1/workers", c.handleWorkers},
		{"protocols", "/v1/protocols", c.handleProtocols},
		{"healthz", "/healthz", c.handleHealthz},
		{"metrics", "/metrics", c.handleMetrics},
	}
}

// Handler returns the coordinator's route table as an http.Handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range c.routes() {
		mux.HandleFunc(rt.pattern, c.instrument(rt.name, rt.handler))
	}
	return mux
}

func (c *Coordinator) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := c.metrics.Latency(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		if hist != nil {
			hist.Observe(time.Since(start))
		}
	}
}

// errorDoc is the JSON body of every non-streaming error response. QoS is
// present on admission-control rejections (413), carrying the predicted
// cost and the machine-readable reason, matching popserved's shape.
type errorDoc struct {
	Error string  `json:"error"`
	QoS   *qosDoc `json:"qos,omitempty"`
}

// qosDoc is the structured half of an admission rejection.
type qosDoc struct {
	Tenant          string `json:"tenant"`
	Class           string `json:"class"`
	PredictedCostMs int64  `json:"predicted_cost_ms"`
	RetryAfterS     int    `json:"retry_after_s,omitempty"`
	Reason          string `json:"reason"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorDoc{Error: fmt.Sprintf(format, args...)})
}

// writeBackoff is writeError plus a Retry-After hint for the retryable
// rejections (no live workers, job id busy).
func (c *Coordinator) writeBackoff(w http.ResponseWriter, status int, format string, args ...any) {
	sec := int(c.cfg.ProbeInterval / time.Second)
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec+1))
	writeError(w, status, format, args...)
}

// writeQoSReject renders a structured admission rejection with the
// prediction that drove it, so clients can tell "too expensive, ever" (413)
// from plain backpressure.
func (c *Coordinator) writeQoSReject(w http.ResponseWriter, status int, tenant string, pred qos.Prediction, reason, format string, args ...any) {
	doc := errorDoc{
		Error: fmt.Sprintf(format, args...),
		QoS: &qosDoc{
			Tenant:          tenant,
			Class:           pred.Class.String(),
			PredictedCostMs: pred.Total.Milliseconds(),
			Reason:          reason,
		},
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		sec := int(c.cfg.ProbeInterval/time.Second) + 1
		doc.QoS.RetryAfterS = sec
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

// jobDeadline derives the per-job wall-clock budget from the prediction,
// floored at MinJobTimeout and capped by the operator's JobTimeout (or 15m
// when none is set). A caller-propagated X-Popkit-Deadline-Ms header can
// only shrink it, so a coordinator chained behind another coordinator — or
// any deadline-aware client — hands down what is left.
func (c *Coordinator) jobDeadline(pred qos.Prediction, r *http.Request) time.Duration {
	limit := c.cfg.JobTimeout
	if limit <= 0 {
		limit = maxAutoDeadline
	}
	d := qos.DeriveDeadline(pred.Total, c.cfg.MinJobTimeout, limit)
	if r != nil {
		if ms := r.Header.Get(deadlineHeader); ms != "" {
			if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
				if rem := time.Duration(v) * time.Millisecond; rem < d {
					d = rem
				}
			}
		}
	}
	return d
}

// handleJob is POST /v1/jobs (and /v1/simulate): decode a JobSpec, shard it
// across the live workers, and stream the merged records back as NDJSON —
// byte-identical to a single popserved running the same spec.
//
// With a journal directory and a job_id, every merged record is journaled
// before it is streamed, and a repeat POST of the same (id, spec) — e.g.
// after a coordinator restart — replays the journaled prefix verbatim and
// dispatches only the remaining replicas.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	tenant, ok := qos.CleanTenant(r.Header.Get(tenantHeader))
	if !ok {
		c.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad %s header: want ≤64 chars of [A-Za-z0-9._-]", tenantHeader)
		return
	}
	var spec expt.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		c.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	proto, err := c.cfg.Registry.Normalize(&spec, c.cfg.MaxN, c.cfg.MaxReplicas)
	if err != nil {
		c.metrics.JobsRejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}

	// Content-addressed cache, mirroring popserved's: a cacheable spec
	// resolves through the coordinator store with single-flight dedupe
	// before the liveness check — a hit serves even with zero live workers.
	// On a miss this request leads: the merged stream is captured and
	// committed on success while concurrent identical POSTs coalesce.
	var (
		capt   [][]byte
		commit func(err error)
	)
	if c.rstore != nil && spec.Cacheable() {
		hash := expt.SpecHash(spec)
		for leader := false; !leader; {
			if lines, ok := c.rstore.Get(hash); ok {
				w.Header().Set("X-Popkit-Cache", "hit")
				c.streamCached(w, lines)
				return
			}
			var wait func(context.Context) (store.Outcome, error)
			leader, wait = c.flight.Lead(hash)
			if leader {
				break
			}
			if _, err := wait(r.Context()); err != nil {
				writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
				return
			}
			// Loop: a committed outcome hits the store; otherwise lead.
		}
		w.Header().Set("X-Popkit-Cache", "miss")
		capt = make([][]byte, 0, spec.Replicas)
		finished := false
		finish := func(out store.Outcome) {
			if !finished {
				finished = true
				c.flight.Finish(hash, out)
			}
		}
		defer finish(store.Outcome{Err: "request aborted"})
		commit = func(err error) {
			if err != nil || len(capt) != spec.Replicas {
				finish(store.Outcome{Err: "job did not complete"})
				return
			}
			out := store.Outcome{Records: len(capt), Bytes: lineBytes(capt)}
			if _, cerr := c.rstore.Commit(spec, capt); cerr == nil {
				out.Committed = true
			}
			finish(out)
		}
	}

	// Admission: predict the job's cost after the cache had its chance — a
	// cached result serves no matter how expensive it once was to compute.
	pred := c.model.Predict(spec, proto.Kind)
	if c.cfg.CostBudget > 0 && pred.Total > c.cfg.CostBudget {
		c.metrics.JobsRejectedInvalid.Add(1)
		c.qosM.Rejected(tenant, pred.Class, "over_budget")
		c.writeQoSReject(w, http.StatusRequestEntityTooLarge, tenant, pred, "over_budget",
			"predicted cost %v exceeds the coordinator budget %v; shrink the job or raise -cost-budget",
			pred.Total.Round(time.Millisecond), c.cfg.CostBudget)
		return
	}

	if _, live := c.workers.counts(); live == 0 && c.ProbeNow() == 0 {
		c.metrics.JobsRejectedNoWorkers.Add(1)
		c.writeBackoff(w, http.StatusServiceUnavailable, "no live workers registered; retry later")
		return
	}

	// Checkpoint/resume: claim the job id, load the coordinator journal,
	// and pick up after the longest contiguous merged prefix. (Shard
	// requests with start > 0 never carry a job_id — NormalizeCommon
	// rejects the combination.)
	var (
		journal *expt.Journal
		replay  [][]byte
		start   = spec.Start
		release func()
	)
	if spec.JobID != "" {
		if c.journals == nil {
			c.metrics.JobsRejectedInvalid.Add(1)
			writeError(w, http.StatusBadRequest, "job_id requires a journal-enabled coordinator (start popcoord with -journal)")
			return
		}
		if err := c.journals.acquire(spec.JobID); err != nil {
			c.writeBackoff(w, http.StatusConflict, "job %q is already in flight; retry later", spec.JobID)
			return
		}
		id := spec.JobID
		release = func() { c.journals.release(id) }
		var err error
		journal, replay, err = c.journals.open(id, spec)
		if err != nil {
			release()
			if strings.Contains(err.Error(), "different job spec") {
				writeError(w, http.StatusConflict, "%v", err)
			} else {
				writeError(w, http.StatusInternalServerError, "journal: %v", err)
			}
			return
		}
		start = journal.Next()
		if start > 0 {
			c.metrics.JobsResumed.Add(1)
		}
	}
	if journal != nil {
		defer func() {
			journal.Close()
			release()
		}()
	}
	c.metrics.JobsAccepted.Add(1)
	c.qosM.Admitted(tenant, pred.Class)

	ctx, cancel := context.WithTimeout(r.Context(), c.jobDeadline(pred, r))
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	writeLine := func(line []byte) {
		if capt != nil {
			// Retain the merged line for the store commit; dispatch hands
			// each line over freshly allocated, so no copy is needed.
			capt = append(capt, line)
		}
		if _, err := w.Write(line); err != nil {
			// Client is gone; its request context cancels the dispatch.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, line := range replay {
		writeLine(line)
	}
	if start >= spec.Replicas {
		// Every replica was journaled: the whole job streamed from disk.
		c.metrics.JobsCompleted.Add(1)
		return
	}

	err = c.execute(ctx, tenant, spec, start, journal, writeLine)
	if commit != nil {
		commit(err)
	}
	switch {
	case err == nil:
		c.metrics.JobsCompleted.Add(1)
	case errors.Is(err, context.Canceled):
		c.metrics.JobsCancelled.Add(1)
	default:
		c.metrics.JobsFailed.Add(1)
		// The status line is long gone; signal the failure in-band like
		// popserved does, so successful streams stay byte-identical to a
		// single-node run.
		if doc, merr := json.Marshal(errorDoc{Error: err.Error()}); merr == nil {
			w.Write(append(doc, '\n'))
		}
	}
}

// streamCached streams a committed object's lines — byte-identical to a
// live merged run of the same spec.
func (c *Coordinator) streamCached(w http.ResponseWriter, lines [][]byte) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for _, line := range lines {
		if _, err := w.Write(line); err != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	c.metrics.JobsCompleted.Add(1)
}

func lineBytes(lines [][]byte) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l))
	}
	return n
}

// registerDoc is the body of POST /v1/workers.
type registerDoc struct {
	URL string `json:"url"`
}

// handleWorkers is the registration surface: GET lists the workers and
// their health; POST {"url": "http://host:port"} registers one and probes
// it immediately so a healthy worker is routable as soon as the call
// returns.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		var doc registerDoc
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			writeError(w, http.StatusBadRequest, "bad registration: %v", err)
			return
		}
		if err := c.workers.add(doc.URL); err != nil {
			writeError(w, http.StatusBadRequest, "bad registration: %v", err)
			return
		}
		c.ProbeNow()
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Workers []WorkerInfo `json:"workers"`
	}{c.workers.snapshot()})
}

// handleProtocols mirrors popserved's GET /v1/protocols from the
// coordinator's own registry — the same registry the workers run.
func (c *Coordinator) handleProtocols(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	type protocolDoc struct {
		Name        string   `json:"name"`
		Description string   `json:"description"`
		Kind        string   `json:"kind"`
		Params      []string `json:"params,omitempty"`
	}
	list := c.cfg.Registry.List()
	docs := make([]protocolDoc, len(list))
	for i, p := range list {
		docs[i] = protocolDoc{Name: p.Name, Description: p.Description, Kind: p.Kind, Params: p.Params}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Protocols []protocolDoc `json:"protocols"`
	}{docs})
}

// handleHealthz reports the coordinator's own liveness plus the cluster
// view: how many workers are registered and how many are passing probes. A
// coordinator with zero live workers is degraded (503) — it cannot place
// shards — but still answers, so operators can tell "coordinator down"
// from "fleet down".
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	total, live := c.workers.counts()
	status := "ok"
	code := http.StatusOK
	if live == 0 {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Live    int    `json:"workers_live"`
	}{status, total, live})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.metrics.WriteProm(w, c.started)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := c.metrics.Snapshot(c.started)
	if c.rstore != nil {
		st := c.rstore.Metrics().Snapshot()
		snap.Store = &st
	}
	qs := c.qosM.Snapshot()
	qs.Corrections = c.model.Corrections()
	snap.QoS = &qs
	enc.Encode(snap)
}
