package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"popkit/internal/client"
	"popkit/internal/expt"
	"popkit/internal/fleet"
)

// shard is one contiguous replica window [lo, hi) of a job.
type shard struct{ lo, hi int }

// planShards slices [start, end) into windows of at most size replicas.
// The plan only affects dispatch granularity, never output bytes: the merge
// reorders by replica ID regardless.
func planShards(start, end, size int) []shard {
	if size < 1 {
		size = 1
	}
	var out []shard
	for lo := start; lo < end; lo += size {
		hi := lo + size
		if hi > end {
			hi = end
		}
		out = append(out, shard{lo, hi})
	}
	return out
}

// shardSizeFor picks the shard size for a job with remaining replicas:
// the configured cap, or about two shards per live worker so the tail of a
// job stays balanced when workers finish at different speeds.
func (c *Coordinator) shardSizeFor(remaining, liveWorkers int) int {
	if c.cfg.ShardSize > 0 {
		return c.cfg.ShardSize
	}
	if liveWorkers < 1 {
		liveWorkers = 1
	}
	size := (remaining + 2*liveWorkers - 1) / (2 * liveWorkers)
	if size < 1 {
		size = 1
	}
	return size
}

// merged is the value carried through the ordered merge: the decoded record
// (for journaling) plus its exact wire line (for byte-identical output).
type merged struct {
	rec  expt.ReplicaRecord
	line []byte
}

// execute dispatches replicas [start, spec.Replicas) across the live
// workers and delivers every record line — in replica order, exactly once —
// to write. With a journal, each line is made durable before it is written
// to the client. Returns the first shard failure (cancellations included)
// after all shards settle.
func (c *Coordinator) execute(ctx context.Context, tenant string, spec expt.JobSpec, start int, journal *expt.Journal, write func([]byte)) error {
	inner := fleet.SinkFunc(func(r fleet.Result) {
		m := r.Value.(merged)
		if journal != nil {
			// Journal first: the record survives a coordinator crash even
			// if the requesting client is gone.
			journal.AppendLine(m.rec, m.line)
		}
		c.metrics.RecordsMerged.Inc()
		write(m.line)
	})
	ordered := fleet.NewOrderedSinkAt(inner, start)

	_, live := c.workers.counts()
	shards := planShards(start, spec.Replicas, c.shardSizeFor(spec.Replicas-start, live))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	maxInflight := c.cfg.MaxInflightShards
	if maxInflight == 0 {
		total, _ := c.workers.counts()
		maxInflight = 2 * total
		if maxInflight < 4 {
			maxInflight = 4
		}
	}
	sem := make(chan struct{}, maxInflight)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, sh := range shards {
		wg.Add(1)
		go func(sh shard) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			if err := c.runShard(ctx, tenant, spec, sh, ordered); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("shard [%d,%d): %w", sh.lo, sh.hi, err)
					cancel() // one lost shard fails the job; stop the rest
				}
				mu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ordered.SinkErr()
}

// runShard streams one shard's replicas into sink, surviving worker loss:
// each dispatch posts the spec with the window [cursor, hi) to the
// least-loaded live worker, and a dispatch that dies mid-stream marks its
// worker down and re-dispatches the remaining window elsewhere — the
// cluster-level twin of the client's own reconnect logic, built on the same
// progress-resets-the-budget rule. Records below cursor are never
// re-emitted, so the sink sees each replica exactly once.
//
// Every dispatch — re-dispatches included — carries the originating tenant
// and the job deadline's REMAINING budget (the client stamps
// X-Popkit-Deadline-Ms from ctx per attempt), so a shard re-routed after a
// worker died inherits what is left of the original deadline and bills to
// the same tenant lane on its new worker.
func (c *Coordinator) runShard(ctx context.Context, tenant string, spec expt.JobSpec, sh shard, sink fleet.ResultSink) error {
	cursor := sh.lo
	noProgress := 0
	avoid := ""
	var lastErr error
	for cursor < sh.hi {
		if err := ctx.Err(); err != nil {
			return err
		}
		wk := c.workers.pick(avoid)
		if wk == nil {
			// Nobody live: force a probe sweep (a restarted worker revives
			// here) and retry under the dispatch budget.
			if c.workers.probeAll(ctx) == 0 {
				noProgress++
				if noProgress > c.cfg.DispatchRetries {
					if lastErr == nil {
						lastErr = errors.New("no live workers")
					}
					return fmt.Errorf("no live workers after %d attempts: %w", noProgress, lastErr)
				}
				if err := sleepCtx(ctx, dispatchBackoff(noProgress)); err != nil {
					return err
				}
			}
			continue
		}

		shardSpec := spec
		shardSpec.JobID = "" // shards re-dispatch instead of journaling
		shardSpec.Start = cursor
		shardSpec.Replicas = sh.hi
		cl := client.New(client.Options{
			BaseURL:    wk.url,
			HTTPClient: c.cfg.HTTPClient,
			MaxRetries: c.cfg.ClientRetries,
			Tenant:     tenant,
			Logf:       c.cfg.Logf,
		})
		before := cursor
		t0 := time.Now()
		c.metrics.ShardsDispatched.Inc()
		err := cl.Stream(ctx, shardSpec, func(rec expt.ReplicaRecord, line []byte) {
			cursor = rec.Replica + 1
			sink.Emit(fleet.Result{ID: rec.Replica, Seed: rec.Seed, Value: merged{rec, line}})
		})
		c.workers.release(wk, time.Since(t0))
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
		c.workers.markDown(wk, err)
		c.metrics.ShardsRedispatched.Inc()
		c.logf("cluster: worker %s failed shard [%d,%d) at replica %d, re-dispatching: %v",
			wk.url, sh.lo, sh.hi, cursor, err)
		avoid = wk.url
		if cursor > before {
			noProgress = 0
		} else {
			noProgress++
			if noProgress > c.cfg.DispatchRetries {
				return fmt.Errorf("stalled at replica %d after %d dispatch attempts: %w", cursor, noProgress, err)
			}
		}
	}
	return nil
}

// dispatchBackoff spaces the no-live-worker retries: 100ms, 200ms, …, capped
// at 2s. Worker failures themselves re-dispatch immediately — there is a
// healthy worker waiting — so this only paces a fully dark cluster.
func dispatchBackoff(fails int) time.Duration {
	d := time.Duration(fails) * 100 * time.Millisecond
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
