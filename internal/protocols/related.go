// related.go implements the three related-work protocols PAPERS.md points
// at, as flat rulesets runnable on every engine kernel:
//
//   - GS18Leader: leader election in the style of [GS18] (arXiv 1802.06867,
//     the paper's own Prop 5.4 reference) — a junta-driven phase clock
//     synchronizes rounds of coin-flip elimination among the junta of
//     maximum-geometric-rank agents, reusing internal/junta (the Geometric
//     comparator), internal/osc (the rock–paper–scissors oscillator) and
//     internal/clock (the modulo-m phase clock).
//   - CDMajority: exact majority by unsynchronized cancelling–doubling with
//     merges, in the spirit of the time- and space-optimal exact majority of
//     Gąsieniec–Stachowiak–Uznański (arXiv 2011.07392).
//   - PRMajority: exact majority by phase-ratcheted cancelling–doubling, in
//     the spirit of the space-optimal majority of
//     Alistarh–Aspnes–Gelashvili (arXiv 1704.04947).
//
// Substitutions (same discipline as DESIGN.md): the papers' pseudocode is
// not reproduced literally. GS18's O(log log n) state bound is traded for
// the O(log n)-state geometric rank already used by internal/junta, and its
// elimination phases run on this repo's oscillator clock; both majority
// protocols drop the papers' global phase clocks in favour of always-correct
// unsynchronized variants whose exactness rests on a conserved weighted
// opinion sum (see the invariant notes below, enforced by the fuzz suite).
// Headline behaviours — polylogarithmic-time leader election vs. the Θ(n)
// coalescence baseline, and O(log n)-state exact majority at gap 1 vs. the
// Θ(n log n)-round 4-state DV12 baseline — are preserved and measured by
// `popbench -compare`.
package protocols

import (
	"math/bits"

	"popkit/internal/bitmask"
	"popkit/internal/clock"
	"popkit/internal/engine"
	"popkit/internal/junta"
	"popkit/internal/osc"
	"popkit/internal/rules"
)

// relatedLevels returns the level cap for the doubling majority protocols:
// enough headroom that the cap is hit only by the last few tokens
// (⌈log2 n⌉ + 1), floored for tiny populations.
func relatedLevels(n int) int {
	l := bits.Len(uint(n)) + 1
	if l < 4 {
		l = 4
	}
	if l > 40 {
		l = 40
	}
	return l
}

// ---- CDMajority (arXiv 2011.07392 spirit) ----

// CDMajority is exact majority by cancelling–doubling with merges. Each
// agent either holds one signed token of weight 2^(L−Lvl) (Tok set, sign
// OpA, level Lvl) or is blank (Tok clear); every agent carries an output
// bit Out ("A won"). Rules:
//
//	cancel:  (A,l) + (B,l)   → blank + blank
//	split:   (s,l) + blank   → (s,l+1) + (s,l+1)        (l < L)
//	merge:   (s,l) + (s,l)   → (s,l−1) + blank          (l ≥ 1)
//	convert: token + blank   → blank adopts the token's sign as Out
//
// The signed weighted sum W = Σ_tokens ±2^(L−Lvl) is conserved by all three
// token rules, and equals gap·2^L ≥ 2^L at a gap-1 start — so opinion-A
// tokens can never die out, and any configuration still holding a B token
// has an applicable move (no blanks ⟹ the deepest occupied level either
// holds ≥ 2 same-sign tokens (merge) or contributes an odd multiple of its
// weight to W, contradicting 2^L | W). Minority extinction therefore has
// probability 1: the protocol is always correct, with O(log n) token states.
type CDMajority struct {
	Space    *bitmask.Space
	Tok      bitmask.Var   // agent holds a token
	OpA      bitmask.Var   // token sign (A when set)
	Out      bitmask.Var   // output bit: believes A won
	Lvl      bitmask.Field // token level 0..MaxLevel (weight 2^(L−Lvl))
	MaxLevel int

	rs *rules.Ruleset
}

// NewCDMajority builds the protocol sized for populations up to n.
func NewCDMajority(n int) *CDMajority {
	maxL := relatedLevels(n)
	sp := bitmask.NewSpace()
	m := &CDMajority{
		Space:    sp,
		Tok:      sp.Bool("Tk"),
		OpA:      sp.Bool("Op"),
		Out:      sp.Bool("Ot"),
		Lvl:      sp.Field("Lv", uint64(maxL)),
		MaxLevel: maxL,
	}
	tokA := func(l int) bitmask.Formula {
		return bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA), bitmask.FieldIs(m.Lvl, uint64(l)))
	}
	tokB := func(l int) bitmask.Formula {
		return bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA), bitmask.FieldIs(m.Lvl, uint64(l)))
	}
	blank := bitmask.IsNot(m.Tok)
	detok := bitmask.IsNot(m.Tok)

	rs := rules.NewRuleset(sp)
	// Opposite tokens at equal level annihilate (both orientations, so the
	// cancellation rate doesn't depend on which side initiates).
	cancel := make([]rules.Rule, 0, 2*(maxL+1))
	for l := 0; l <= maxL; l++ {
		cancel = append(cancel,
			rules.MustNew(tokA(l), tokB(l), detok, detok),
			rules.MustNew(tokB(l), tokA(l), detok, detok))
	}
	rs.AddGroup("cancel", 1, cancel...)

	// A token below the cap splits onto a blank: two half-weight copies one
	// level deeper, both stamped with the sign's output bit.
	split := make([]rules.Rule, 0, 2*maxL)
	for l := 0; l < maxL; l++ {
		split = append(split,
			rules.MustNew(tokA(l), blank,
				bitmask.FieldIs(m.Lvl, uint64(l+1)),
				bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA), bitmask.FieldIs(m.Lvl, uint64(l+1)), bitmask.Is(m.Out))),
			rules.MustNew(tokB(l), blank,
				bitmask.FieldIs(m.Lvl, uint64(l+1)),
				bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA), bitmask.FieldIs(m.Lvl, uint64(l+1)), bitmask.IsNot(m.Out))))
	}
	rs.AddGroup("split", 1, split...)

	// Two same-sign tokens at the same positive level merge into one token a
	// level up, freeing a blank (the liveness escape from split-starved
	// configurations).
	merge := make([]rules.Rule, 0, 2*maxL)
	for l := 1; l <= maxL; l++ {
		merge = append(merge,
			rules.MustNew(tokA(l), tokA(l),
				bitmask.FieldIs(m.Lvl, uint64(l-1)),
				bitmask.And(bitmask.IsNot(m.Tok), bitmask.Is(m.Out))),
			rules.MustNew(tokB(l), tokB(l),
				bitmask.FieldIs(m.Lvl, uint64(l-1)),
				bitmask.And(bitmask.IsNot(m.Tok), bitmask.IsNot(m.Out))))
	}
	rs.AddGroup("merge", 1, merge...)

	// Surviving tokens broadcast their sign into blanks' output bits.
	rs.AddGroup("convert", 1,
		rules.MustNew(
			bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)),
			bitmask.And(blank, bitmask.IsNot(m.Out)),
			bitmask.True(), bitmask.Is(m.Out)),
		rules.MustNew(
			bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)),
			bitmask.And(blank, bitmask.Is(m.Out)),
			bitmask.True(), bitmask.IsNot(m.Out)))
	m.rs = rs
	return m
}

// Rules returns the protocol ruleset (all groups unordered: every engine
// kernel is admissible).
func (m *CDMajority) Rules() *rules.Ruleset { return m.rs }

// InitCounts returns the gap-split initial population: nA level-0 A tokens
// (Out set) and nB level-0 B tokens.
func (m *CDMajority) InitCounts(nA, nB int64) map[bitmask.State]int64 {
	a := m.Out.Set(m.OpA.Set(m.Tok.Set(bitmask.State{}, true), true), true)
	b := m.Tok.Set(bitmask.State{}, true)
	return map[bitmask.State]int64{a: nA, b: nB}
}

// States returns the number of reachable agent states: signed tokens on
// L+1 levels (a token's Out bit is pinned to its sign) plus blanks with a
// free output bit.
func (m *CDMajority) States() int64 { return int64(2*(m.MaxLevel+1) + 2) }

// ---- PRMajority (arXiv 1704.04947 spirit) ----

// PRMajority is exact majority by phase-ratcheted cancelling–doubling.
// Tokens live in phases 0..P and only interact downward-compatibly:
//
//	cancel:    (A,p) + (B,p)   → blank + blank           (phases kept)
//	adjacent:  (A,p) + (B,p+1) → (A,p+1) + blank          (weight remainder)
//	split:     (s,p) + blank@q → (s,p+1) + (s,p+1)        (p < P, q ≥ p)
//	merge:     (s,p) + (s,p)   → (s,p−1) + blank          (p ≥ 1)
//	ratchet:   blank@q meeting any agent at phase r > q adopts phase r
//	convert:   token + blank   → blank adopts the token's sign as Out
//
// Unlike CDMajority, blanks carry a phase and a token can only double onto
// a blank whose phase has caught up (the ratchet) — the synchronized-phase
// structure of [AAG 1704.04947] without its separate clock — and opposite
// tokens one phase apart cancel into the exact remainder
// 2^(L−p) − 2^(L−p−1) = 2^(L−p−1). The same conserved weighted sum makes
// the protocol always correct.
type PRMajority struct {
	Space    *bitmask.Space
	Tok      bitmask.Var
	OpA      bitmask.Var
	Out      bitmask.Var
	Ph       bitmask.Field // token phase, or a blank's ratchet value
	MaxPhase int

	rs *rules.Ruleset
}

// NewPRMajority builds the protocol sized for populations up to n.
func NewPRMajority(n int) *PRMajority {
	maxP := relatedLevels(n)
	sp := bitmask.NewSpace()
	m := &PRMajority{
		Space:    sp,
		Tok:      sp.Bool("Tk"),
		OpA:      sp.Bool("Op"),
		Out:      sp.Bool("Ot"),
		Ph:       sp.Field("Ph", uint64(maxP)),
		MaxPhase: maxP,
	}
	tokA := func(p int) bitmask.Formula {
		return bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA), bitmask.FieldIs(m.Ph, uint64(p)))
	}
	tokB := func(p int) bitmask.Formula {
		return bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA), bitmask.FieldIs(m.Ph, uint64(p)))
	}
	blankAt := func(q int) bitmask.Formula {
		return bitmask.And(bitmask.IsNot(m.Tok), bitmask.FieldIs(m.Ph, uint64(q)))
	}
	detok := bitmask.IsNot(m.Tok)
	at := func(p int) bitmask.Formula { return bitmask.FieldIs(m.Ph, uint64(p)) }

	rs := rules.NewRuleset(sp)
	cancel := make([]rules.Rule, 0, 2*(maxP+1))
	for p := 0; p <= maxP; p++ {
		cancel = append(cancel,
			rules.MustNew(tokA(p), tokB(p), detok, detok),
			rules.MustNew(tokB(p), tokA(p), detok, detok))
	}
	rs.AddGroup("cancel", 1, cancel...)

	// Adjacent-phase annihilation: the heavier token survives one phase
	// deeper (its exact weight remainder); the lighter side is blanked and
	// stamped with the survivor's sign. All four orientations.
	adj := make([]rules.Rule, 0, 4*maxP)
	blankA := bitmask.And(detok, bitmask.Is(m.Out))
	blankB := bitmask.And(detok, bitmask.IsNot(m.Out))
	for p := 0; p < maxP; p++ {
		adj = append(adj,
			rules.MustNew(tokA(p), tokB(p+1), at(p+1), blankA),
			rules.MustNew(tokB(p+1), tokA(p), blankA, at(p+1)),
			rules.MustNew(tokB(p), tokA(p+1), at(p+1), blankB),
			rules.MustNew(tokA(p+1), tokB(p), blankB, at(p+1)))
	}
	rs.AddGroup("canceladj", 1, adj...)

	// Ratchet-gated doubling: a token splits only onto a blank whose phase
	// has caught up to its own.
	split := make([]rules.Rule, 0, maxP*(maxP+1))
	for p := 0; p < maxP; p++ {
		mkA := bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA), at(p+1), bitmask.Is(m.Out))
		mkB := bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA), at(p+1), bitmask.IsNot(m.Out))
		for q := p; q <= maxP; q++ {
			split = append(split,
				rules.MustNew(tokA(p), blankAt(q), at(p+1), mkA),
				rules.MustNew(tokB(p), blankAt(q), at(p+1), mkB))
		}
	}
	rs.AddGroup("split", 1, split...)

	merge := make([]rules.Rule, 0, 2*maxP)
	for p := 1; p <= maxP; p++ {
		merge = append(merge,
			rules.MustNew(tokA(p), tokA(p), at(p-1), blankA),
			rules.MustNew(tokB(p), tokB(p), at(p-1), blankB))
	}
	rs.AddGroup("merge", 1, merge...)

	// Blanks ratchet up to the highest phase seen on anyone.
	ratchet := make([]rules.Rule, 0, maxP*(maxP+1)/2)
	for q := 0; q < maxP; q++ {
		for r := q + 1; r <= maxP; r++ {
			ratchet = append(ratchet, rules.MustNew(blankAt(q), at(r), at(r), bitmask.True()))
		}
	}
	rs.AddGroup("ratchet", 1, ratchet...)

	rs.AddGroup("convert", 1,
		rules.MustNew(
			bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)),
			bitmask.And(detok, bitmask.IsNot(m.Out)),
			bitmask.True(), bitmask.Is(m.Out)),
		rules.MustNew(
			bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)),
			bitmask.And(detok, bitmask.Is(m.Out)),
			bitmask.True(), bitmask.IsNot(m.Out)))
	m.rs = rs
	return m
}

// Rules returns the protocol ruleset (all groups unordered).
func (m *PRMajority) Rules() *rules.Ruleset { return m.rs }

// InitCounts returns the gap-split initial population at phase 0.
func (m *PRMajority) InitCounts(nA, nB int64) map[bitmask.State]int64 {
	a := m.Out.Set(m.OpA.Set(m.Tok.Set(bitmask.State{}, true), true), true)
	b := m.Tok.Set(bitmask.State{}, true)
	return map[bitmask.State]int64{a: nA, b: nB}
}

// States returns the number of reachable agent states: signed tokens plus
// blanks with a free output bit, each over P+1 phases.
func (m *PRMajority) States() int64 { return int64(4 * (m.MaxPhase + 1)) }

// ---- GS18Leader (arXiv 1802.06867 spirit) ----

// GS18 clock geometry: the modulo-12 counter is cut into three windows.
// Each elimination cycle (one full counter revolution, Θ(log n) rounds per
// tick) runs reset → flip → kill.
const (
	gs18M        = 12 // counter modulus (must be a multiple of 4)
	gs18ResetEnd = 4  // [0,4): re-arm candidates, clear the epidemics
	gs18FlipEnd  = 8  // [4,8): armed candidates flip one fair coin
	gs18KillFrom = 8  // [8,12): informed tails candidates resign
	gs18RepairAt = 10 // [10,12): agents that heard of no candidate restart
)

// Scheduler weights of the elimination groups, relative to the oscillator
// (total weight 13) and clock (total weight 39) they share the schedule
// with. The two epidemics must cover the population within half a cycle, so
// they take the lion's share; the junta comparator is boosted so the initial
// rank-pruning resolves within the clock's spin-up.
const (
	gs18JuntaBoost   = 6
	gs18ClockBoost   = 8
	gs18SpreadWeight = 15
	gs18FlipWeight   = 3
	gs18KillWeight   = 3
	gs18ArmWeight    = 2
	gs18ClearWeight  = 6
	gs18DemoteWeight = 6
)

// GS18Leader elects a unique leader in polylogarithmic time, in the style
// of [GS18]: every agent draws a geometric rank (junta.Geometric), agents
// below the running maximum drop out of candidacy once, and the surviving
// candidates — the junta of maximum-rank holders, never empty — are whittled
// to one by clock-synchronized coin-flip rounds. Per cycle of the modulo-12
// phase clock (internal/clock over internal/osc, driven by the junta as its
// X control set): candidates re-arm and the HeadsSeen/Alive epidemics clear
// (reset window), each armed candidate flips one fair coin, heads seeding
// the HeadsSeen epidemic and every flip seeding Alive (flip window), then a
// tails candidate that has heard of a heads candidate resigns (kill
// window) — so each cycle halves the candidates in expectation and can
// never eliminate the last one: resigning requires a same-cycle heads
// candidate, which survives its own cycle. An agent that has heard of no
// candidate by the cycle's tail re-candidates (repair), making the rare
// clock-skew race that kills every candidate self-healing rather than
// fatal. States are Θ(log n) fields wide — the counted kernels' species
// compression buys nothing here (≈ one species per agent), which is exactly
// what expt.RunnerHints.StateRich exists to express.
type GS18Leader struct {
	Space *bitmask.Space
	Junta *junta.Geometric
	Osc   *osc.Oscillator
	Clock *clock.Base

	X         bitmask.Var // junta membership: the oscillator's source set
	L         bitmask.Var // leader candidate
	Demoted   bitmask.Var // rank-pruning consumed (one-shot)
	Coin      bitmask.Var // this cycle's flip (heads when set)
	Armed     bitmask.Var // may flip this cycle
	HeadsSeen bitmask.Var // epidemic: some candidate flipped heads
	Alive     bitmask.Var // epidemic: some candidate exists

	rs *rules.Ruleset
}

// NewGS18Leader builds the protocol sized for populations up to n.
func NewGS18Leader(n int) *GS18Leader {
	maxLevel := bits.Len(uint(n)) + 4
	if maxLevel < 8 {
		maxLevel = 8
	}
	sp := bitmask.NewSpace()
	g := &GS18Leader{Space: sp}
	g.X = sp.Bool("X")
	g.Junta = junta.NewGeometric(sp, "J", g.X, maxLevel)
	g.Osc = osc.New(sp, "O", g.X, osc.DefaultParams())
	// The oscillator+clock pair is boosted as a unit (preserving its
	// calibrated 13:39 weight ratio) so the elimination groups' dilution
	// doesn't stretch tick spacing — a full coin cycle is m ticks, and tick
	// spacing scales with the subsystem's share of the schedule.
	g.Clock = clock.NewBase(sp, "C", g.Osc, gs18M, clock.DefaultK, g.Osc.Ruleset().TotalWeight()*gs18ClockBoost)
	g.L = sp.Bool("L")
	g.Demoted = sp.Bool("D")
	g.Coin = sp.Bool("Cn")
	g.Armed = sp.Bool("Ar")
	g.HeadsSeen = sp.Bool("Hs")
	g.Alive = sp.Bool("Av")

	// The junta comparator's groups are boosted so rank pruning keeps pace
	// with the diluted schedule (Geometric builds them at weight 1).
	jrs := g.Junta.Rules().Clone()
	for i := range jrs.Groups {
		jrs.Groups[i].Weight *= gs18JuntaBoost
	}
	ors := g.Osc.Ruleset().Clone()
	for i := range ors.Groups {
		ors.Groups[i].Weight *= gs18ClockBoost
	}

	elim := rules.NewRuleset(sp)
	ctr := func(c int) bitmask.Formula { return bitmask.FieldIs(g.Clock.Counter, uint64(c)) }

	// Reset window: candidates re-arm; both epidemics clear agent by agent.
	arm := make([]rules.Rule, 0, gs18ResetEnd)
	clearHS := make([]rules.Rule, 0, gs18ResetEnd)
	clearAlive := make([]rules.Rule, 0, gs18ResetEnd)
	for c := 0; c < gs18ResetEnd; c++ {
		arm = append(arm, rules.MustNew(
			bitmask.And(bitmask.Is(g.L), bitmask.IsNot(g.Armed), ctr(c)),
			bitmask.True(), bitmask.Is(g.Armed), bitmask.True()))
		clearHS = append(clearHS, rules.MustNew(
			bitmask.And(bitmask.Is(g.HeadsSeen), ctr(c)),
			bitmask.True(), bitmask.IsNot(g.HeadsSeen), bitmask.True()))
		clearAlive = append(clearAlive, rules.MustNew(
			bitmask.And(bitmask.Is(g.Alive), ctr(c)),
			bitmask.True(), bitmask.IsNot(g.Alive), bitmask.True()))
	}
	elim.AddGroup("learm", gs18ArmWeight, arm...)
	// Stale epidemic bits re-seed themselves through the spread groups, so
	// clearing must be near-certain per agent per reset window: at weight 6
	// an agent expects ≳15 clear opportunities per window.
	elim.AddGroup("leclearh", gs18ClearWeight, clearHS...)
	elim.AddGroup("lecleara", gs18ClearWeight, clearAlive...)

	// Flip window: two equal-weight groups with identical guards realize the
	// fair coin; each flip disarms, seeds Alive, and heads seeds HeadsSeen.
	heads := make([]rules.Rule, 0, gs18FlipEnd-gs18ResetEnd)
	tails := make([]rules.Rule, 0, gs18FlipEnd-gs18ResetEnd)
	for c := gs18ResetEnd; c < gs18FlipEnd; c++ {
		flip := bitmask.And(bitmask.Is(g.L), bitmask.Is(g.Armed), ctr(c))
		heads = append(heads, rules.MustNew(flip, bitmask.True(),
			bitmask.And(bitmask.IsNot(g.Armed), bitmask.Is(g.Coin), bitmask.Is(g.HeadsSeen), bitmask.Is(g.Alive)),
			bitmask.True()))
		tails = append(tails, rules.MustNew(flip, bitmask.True(),
			bitmask.And(bitmask.IsNot(g.Armed), bitmask.IsNot(g.Coin), bitmask.Is(g.Alive)),
			bitmask.True()))
	}
	elim.AddGroup("leheads", gs18FlipWeight, heads...)
	elim.AddGroup("letails", gs18FlipWeight, tails...)

	// Epidemic spread across the flip and kill windows (the reset window is
	// excluded on both sides, so cleared agents are not re-infected with the
	// previous cycle's verdicts).
	spreadHS := make([]rules.Rule, 0, (gs18M-gs18ResetEnd)*(gs18M-gs18ResetEnd))
	spreadAlive := make([]rules.Rule, 0, (gs18M-gs18ResetEnd)*(gs18M-gs18ResetEnd))
	for c1 := gs18ResetEnd; c1 < gs18M; c1++ {
		for c2 := gs18ResetEnd; c2 < gs18M; c2++ {
			spreadHS = append(spreadHS, rules.MustNew(
				bitmask.And(bitmask.Is(g.HeadsSeen), ctr(c1)),
				bitmask.And(bitmask.IsNot(g.HeadsSeen), ctr(c2)),
				bitmask.True(), bitmask.Is(g.HeadsSeen)))
			spreadAlive = append(spreadAlive, rules.MustNew(
				bitmask.And(bitmask.Is(g.Alive), ctr(c1)),
				bitmask.And(bitmask.IsNot(g.Alive), ctr(c2)),
				bitmask.True(), bitmask.Is(g.Alive)))
		}
	}
	elim.AddGroup("lespreadh", gs18SpreadWeight, spreadHS...)
	elim.AddGroup("lespreada", gs18SpreadWeight, spreadAlive...)

	// Kill window: an informed tails candidate resigns. Its informant — a
	// same-cycle heads candidate — keeps Coin set all cycle, so the guard
	// can never empty the candidate set within a cycle.
	kill := make([]rules.Rule, 0, gs18M-gs18KillFrom)
	for c := gs18KillFrom; c < gs18M; c++ {
		kill = append(kill, rules.MustNew(
			bitmask.And(bitmask.Is(g.L), bitmask.IsNot(g.Armed), bitmask.IsNot(g.Coin), bitmask.Is(g.HeadsSeen), ctr(c)),
			bitmask.True(), bitmask.IsNot(g.L), bitmask.True()))
	}
	elim.AddGroup("lekill", gs18KillWeight, kill...)

	// Repair: an agent that reached the cycle's tail without hearing of any
	// candidate re-candidates (Demoted set: repaired candidates are exempt
	// from rank pruning, whose maximum they generally won't hold).
	repair := make([]rules.Rule, 0, gs18M-gs18RepairAt)
	for c := gs18RepairAt; c < gs18M; c++ {
		repair = append(repair, rules.MustNew(
			bitmask.And(bitmask.IsNot(g.Alive), ctr(c)),
			bitmask.True(),
			bitmask.And(bitmask.Is(g.L), bitmask.Is(g.Demoted), bitmask.Is(g.Alive)),
			bitmask.True()))
	}
	elim.AddGroup("lerepair", 1, repair...)

	// One-shot rank pruning: a candidate whose FINAL geometric rank trails
	// the running maximum drops out of candidacy (mirroring the junta's
	// leave rules, including their ¬Flipping gate — pruning a still-flipping
	// agent can eliminate the eventual max-rank holder and empty the
	// candidate set; Demoted makes it one-shot so repair can stick).
	demote := make([]rules.Rule, 0, maxLevel*(maxLevel+1)/2)
	for own := 0; own < maxLevel; own++ {
		for seen := own + 1; seen <= maxLevel; seen++ {
			demote = append(demote, rules.MustNew(
				bitmask.And(bitmask.Is(g.L), bitmask.IsNot(g.Demoted), bitmask.IsNot(g.Junta.Flipping),
					bitmask.FieldIs(g.Junta.Rank, uint64(own)), bitmask.FieldIs(g.Junta.Max, uint64(seen))),
				bitmask.True(),
				bitmask.And(bitmask.IsNot(g.L), bitmask.Is(g.Demoted)),
				bitmask.True()))
		}
	}
	elim.AddGroup("ledemote", gs18DemoteWeight, demote...)

	g.rs = rules.Concat(jrs, ors, g.Clock.Rules(), elim)
	return g
}

// Rules returns the composed ruleset (junta + oscillator + clock +
// elimination; all groups unordered).
func (g *GS18Leader) Rules() *rules.Ruleset { return g.rs }

// InitCounts builds the initial population: every agent is a flipping junta
// candidate and a leader candidate, Alive, with a randomly drawn weak
// oscillator species; clock fields start at zero. The rng draws must come
// from the same replica stream that will drive the run.
func (g *GS18Leader) InitCounts(n int, rng *engine.RNG) map[bitmask.State]int64 {
	counts := make(map[bitmask.State]int64, 3)
	for i := 0; i < n; i++ {
		s := g.Junta.InitAgent(bitmask.State{})
		s = g.L.Set(s, true)
		s = g.Alive.Set(s, true)
		s = g.Osc.InitState(s, osc.RandSpecies(rng), false)
		counts[s]++
	}
	return counts
}

// States returns the allocated per-agent state-space size. Unlike the
// majority protocols there is no tight reachable-state count: the composed
// clock/junta/oscillator fields genuinely occupy Θ(2^bits) combinations,
// which is why the protocol is pinned to the dense runner.
func (g *GS18Leader) States() int64 { return int64(g.Space.NumStates()) }
