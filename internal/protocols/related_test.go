// Package protocols_test exercises the related-work protocols through the
// real expt.Driver (an external test package: internal/expt imports
// internal/protocols, so these tests cannot live inside package protocols).
package protocols_test

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/expt"
	. "popkit/internal/protocols"
)

// driveCD runs one CDMajority replica and reports (converged, aWon, rounds).
func driveCD(t *testing.T, n int, nA, nB int64, seed uint64) (bool, bool, float64) {
	t.Helper()
	m := NewCDMajority(n)
	if err := m.Rules().Validate(); err != nil {
		t.Fatalf("CDMajority ruleset invalid: %v", err)
	}
	drv := expt.NewDriver(m.Rules(), engine.CompileProtocol(m.Rules()), m.InitCounts(nA, nB), engine.NewRNG(seed))
	tokA := drv.Track("TokA", bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)))
	tokB := drv.Track("TokB", bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)))
	out := drv.Track("Out", bitmask.Is(m.Out))
	rounds, ok := drv.RunUntil(func() bool {
		if tokB.Count() == 0 && out.Count() == int64(n) {
			return true // A verdict
		}
		return tokA.Count() == 0 && out.Count() == 0 // B verdict
	}, 2e6)
	return ok, tokB.Count() == 0 && out.Count() == int64(n), rounds
}

// drivePR is driveCD for PRMajority.
func drivePR(t *testing.T, n int, nA, nB int64, seed uint64) (bool, bool, float64) {
	t.Helper()
	m := NewPRMajority(n)
	if err := m.Rules().Validate(); err != nil {
		t.Fatalf("PRMajority ruleset invalid: %v", err)
	}
	drv := expt.NewDriver(m.Rules(), engine.CompileProtocol(m.Rules()), m.InitCounts(nA, nB), engine.NewRNG(seed))
	tokA := drv.Track("TokA", bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)))
	tokB := drv.Track("TokB", bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)))
	out := drv.Track("Out", bitmask.Is(m.Out))
	rounds, ok := drv.RunUntil(func() bool {
		if tokB.Count() == 0 && out.Count() == int64(n) {
			return true
		}
		return tokA.Count() == 0 && out.Count() == 0
	}, 2e6)
	return ok, tokB.Count() == 0 && out.Count() == int64(n), rounds
}

func TestCDMajorityExactAtGapOne(t *testing.T) {
	// |A−B| = 1 is the adversarial margin: any protocol that is merely
	// approximately correct fails here with constant probability. The
	// conserved weighted sum makes CDMajority exact — every seed must
	// produce the true majority, in both orientations.
	n := 601
	for seed := uint64(1); seed <= 12; seed++ {
		ok, aWon, _ := driveCD(t, n, 301, 300, seed)
		if !ok {
			t.Fatalf("seed %d: A-majority run did not converge", seed)
		}
		if !aWon {
			t.Fatalf("seed %d: A had majority 301:300 but B won", seed)
		}
		ok, aWon, _ = driveCD(t, n, 300, 301, seed)
		if !ok {
			t.Fatalf("seed %d: B-majority run did not converge", seed)
		}
		if aWon {
			t.Fatalf("seed %d: B had majority 301:300 but A won", seed)
		}
	}
}

func TestPRMajorityExactAtGapOne(t *testing.T) {
	n := 601
	for seed := uint64(1); seed <= 12; seed++ {
		ok, aWon, _ := drivePR(t, n, 301, 300, seed)
		if !ok {
			t.Fatalf("seed %d: A-majority run did not converge", seed)
		}
		if !aWon {
			t.Fatalf("seed %d: A had majority 301:300 but B won", seed)
		}
		ok, aWon, _ = drivePR(t, n, 300, 301, seed)
		if !ok {
			t.Fatalf("seed %d: B-majority run did not converge", seed)
		}
		if aWon {
			t.Fatalf("seed %d: B had majority 301:300 but A won", seed)
		}
	}
}

func TestMajorityCountedKernels(t *testing.T) {
	// Both majority protocols are flat rulesets with O(log n) species, so
	// above the dense crossover they must run (and converge correctly) on
	// the batch kernel too.
	n := 3001
	ok, aWon, _ := driveCD(t, n, 1501, 1500, 42)
	if !ok || !aWon {
		t.Fatalf("CDMajority on batch kernel: converged=%v aWon=%v", ok, aWon)
	}
	ok, aWon, _ = drivePR(t, n, 1500, 1501, 42)
	if !ok || aWon {
		t.Fatalf("PRMajority on batch kernel: converged=%v aWon=%v", ok, aWon)
	}
}

func TestGS18LeaderElectsUniqueLeader(t *testing.T) {
	n := 512
	for seed := uint64(1); seed <= 3; seed++ {
		g := NewGS18Leader(n)
		if err := g.Rules().Validate(); err != nil {
			t.Fatalf("GS18Leader ruleset invalid: %v", err)
		}
		rng := engine.NewRNG(seed)
		counts := g.InitCounts(n, rng)
		var total int64
		for _, c := range counts {
			total += c
		}
		if total != int64(n) {
			t.Fatalf("InitCounts placed %d agents, want %d", total, n)
		}
		drv := expt.NewDriverWithHints(g.Rules(), engine.CompileProtocol(g.Rules()), counts, rng, expt.RunnerHints{StateRich: true})
		if drv.Kind != expt.RunnerDense {
			t.Fatalf("GS18Leader must pin the dense runner, got %v", drv.Kind)
		}
		tl := drv.Track("L", bitmask.Is(g.L))
		rounds, ok := drv.RunUntil(func() bool { return tl.Count() == 1 }, 5e4)
		if !ok {
			t.Fatalf("seed %d: no unique leader after %.0f rounds (candidates=%d)", seed, rounds, tl.Count())
		}
		t.Logf("seed %d: unique leader at %.0f rounds (%.1f per log2n cycle)", seed, rounds, rounds/9)
	}
}

func TestGS18LeaderSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence-scaling check skipped in -short")
	}
	// The headline claim: convergence in polylog rounds, flat in n (a
	// 20-seed sweep measured means 2.7k/2.8k/3.8k at n=512/2048/8192). A
	// 10^4-round budget at n=2048 covers the tie-at-max-rank tail (worst
	// observed 9.3k) while staying far under linear-time scaling.
	n := 2048
	g := NewGS18Leader(n)
	rng := engine.NewRNG(7)
	drv := expt.NewDriverWithHints(g.Rules(), engine.CompileProtocol(g.Rules()), g.InitCounts(n, rng), rng, expt.RunnerHints{StateRich: true})
	tl := drv.Track("L", bitmask.Is(g.L))
	rounds, ok := drv.RunUntil(func() bool { return tl.Count() == 1 }, 1e4)
	if !ok {
		t.Fatalf("no unique leader within 1e4 rounds (candidates=%d)", tl.Count())
	}
	t.Logf("n=%d: unique leader at %.0f rounds (2n baseline: %d)", n, rounds, 2*n)
}

func TestGS18LeaderStable(t *testing.T) {
	// Electing a unique leader transiently is not enough: the kill rule must
	// never fire on the survivor (its own heads flips protect it) and repair
	// must not spuriously re-candidate agents while a leader exists and the
	// Alive epidemic is healthy. Sample the candidate count for 5000 rounds
	// past convergence. This is the regression test for two real bugs: junta
	// rank pruning firing on still-flipping agents (which could empty the
	// candidate set AND the junta, stalling the oscillator), and stale
	// epidemic bits framing a tails-flipping lone leader.
	n := 512
	for seed := uint64(1); seed <= 5; seed++ {
		g := NewGS18Leader(n)
		rng := engine.NewRNG(seed)
		drv := expt.NewDriverWithHints(g.Rules(), engine.CompileProtocol(g.Rules()), g.InitCounts(n, rng), rng, expt.RunnerHints{StateRich: true})
		tl := drv.Track("L", bitmask.Is(g.L))
		if _, ok := drv.RunUntil(func() bool { return tl.Count() == 1 }, 5e4); !ok {
			t.Fatalf("seed %d: no convergence", seed)
		}
		for i := 0; i < 50; i++ {
			drv.RunUntil(func() bool { return false }, 100)
			if c := tl.Count(); c != 1 {
				t.Fatalf("seed %d: candidate count %d after +%d rounds", seed, c, (i+1)*100)
			}
		}
	}
}

func TestRelatedStates(t *testing.T) {
	cd := NewCDMajority(1024)
	// L = len(1024)+1 = 12 → 2(L+1)+2 = 28 token/blank states.
	if got := cd.States(); got != 28 {
		t.Fatalf("CDMajority(1024).States() = %d, want 28", got)
	}
	pr := NewPRMajority(1024)
	if got := pr.States(); got != 52 {
		t.Fatalf("PRMajority(1024).States() = %d, want 52", got)
	}
	g := NewGS18Leader(1024)
	if g.States() < 1<<20 {
		t.Fatalf("GS18Leader(1024).States() = %d, expected a state-rich space", g.States())
	}
	// The state-space floor: protocols must stay buildable at tiny n.
	for _, n := range []int{1, 2, 16} {
		if err := NewCDMajority(n).Rules().Validate(); err != nil {
			t.Fatalf("CDMajority(%d) invalid: %v", n, err)
		}
		if err := NewPRMajority(n).Rules().Validate(); err != nil {
			t.Fatalf("PRMajority(%d) invalid: %v", n, err)
		}
	}
}

func TestRunnerHintsPinDense(t *testing.T) {
	m := NewCDMajority(4096)
	counts := m.InitCounts(2049, 2047)
	kind, _ := expt.SelectRunnerReasonHints(m.Rules(), 4096, expt.RunnerHints{})
	if kind != expt.RunnerBatch {
		t.Fatalf("flat ruleset at n=4096 should select batch, got %v", kind)
	}
	kind, reason := expt.SelectRunnerReasonHints(m.Rules(), 4096, expt.RunnerHints{StateRich: true})
	if kind != expt.RunnerDense {
		t.Fatalf("StateRich hint must pin dense, got %v (%s)", kind, reason)
	}
	drv := expt.NewDriverWithHints(m.Rules(), engine.CompileProtocol(m.Rules()), counts, engine.NewRNG(1), expt.RunnerHints{StateRich: true})
	if drv.Kind != expt.RunnerDense {
		t.Fatalf("NewDriverWithHints ignored the hint: got %v", drv.Kind)
	}
}
