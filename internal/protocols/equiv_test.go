package protocols_test

// Statistical equivalence suite for the related-work protocols, mirroring
// the engine's batch_equiv suite: the counted kernels (count, batch,
// aggregate) skip RNG draws whose outcome is forced, so their streams
// differ from the dense Runner's — the contract is equality in
// distribution. Hitting times are compared with the two-sample KS statistic
// and categorical outcomes with a chi-square homogeneity statistic, at
// fixed seed banks so the tests are deterministic. Alongside, the suite
// enforces the exactness contract: at the adversarial margin |A−B| = 1 the
// majority protocols must decide for the true majority on EVERY seed and
// kernel — their conserved weighted opinion sum admits no failure
// probability for correctness, only randomness in when and through which
// token configurations they converge.

import (
	"sort"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	. "popkit/internal/protocols"
	"popkit/internal/rules"
	"popkit/internal/stats"
)

const (
	equivSeeds = 100
	// Two-sample KS critical value at α = 0.001 for 100-vs-100 samples:
	// 1.95·√(2/100) ≈ 0.276.
	ksCrit = 0.28
	// χ² critical value at α = 0.001 for 2 degrees of freedom (2 kernels ×
	// 3 outcome buckets).
	chiCrit = 13.82
)

// majoritySpec is one majority protocol prepared for the kernel matrix:
// a ruleset, an |A−B| = 1 initial population, and the three tracked
// formulas the stop condition reads.
type majoritySpec struct {
	rs     *rules.Ruleset
	counts map[bitmask.State]int64
	tokA   bitmask.Formula // surviving A tokens
	tokB   bitmask.Formula // surviving B tokens
	out    bitmask.Formula // agents outputting "A won"
}

func cdSpec(n int) majoritySpec {
	m := NewCDMajority(n)
	return majoritySpec{
		rs:     m.Rules(),
		counts: m.InitCounts(int64(n/2+1), int64(n/2)),
		tokA:   bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)),
		tokB:   bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)),
		out:    bitmask.Is(m.Out),
	}
}

func prSpec(n int) majoritySpec {
	m := NewPRMajority(n)
	return majoritySpec{
		rs:     m.Rules(),
		counts: m.InitCounts(int64(n/2+1), int64(n/2)),
		tokA:   bitmask.And(bitmask.Is(m.Tok), bitmask.Is(m.OpA)),
		tokB:   bitmask.And(bitmask.Is(m.Tok), bitmask.IsNot(m.OpA)),
		out:    bitmask.Is(m.Out),
	}
}

// layoutDense places counts into dense agent slots in sorted state order —
// the same (Hi, Lo) order expt.NewDriver uses.
func layoutDense(pop *engine.Dense, counts map[bitmask.State]int64) {
	states := make([]bitmask.State, 0, len(counts))
	for s := range counts {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool {
		a, b := states[i], states[j]
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
	i := 0
	for _, s := range states {
		for j := int64(0); j < counts[s]; j++ {
			pop.SetAgent(i, s)
			i++
		}
	}
}

// majorityTimes runs one majority spec across the seed bank on the given
// kernel. Returns hitting times, surviving majority-token counts at the
// decision instant (the categorical outcome for the chi-square test), and
// how many seeds decided for the true majority (A).
func majorityTimes(t *testing.T, build func() majoritySpec, kind string, seedRoot uint64) (times []float64, survivors []int64, correct int) {
	t.Helper()
	for seed := uint64(0); seed < equivSeeds; seed++ {
		spec := build()
		var n int64
		for _, k := range spec.counts {
			n += k
		}
		proto := engine.CompileProtocol(spec.rs)
		rng := engine.NewRNG(engine.SplitSeed(seedRoot, seed))
		var rounds float64
		var ok bool
		var a, b, o func() int64
		done := func() bool {
			return (b() == 0 && o() == n) || (a() == 0 && o() == 0)
		}
		switch kind {
		case "dense":
			pop := engine.NewDense(int(n))
			layoutDense(pop, spec.counts)
			run := engine.NewRunner(proto, pop, rng)
			ta, tb, to := run.Track("a", spec.tokA), run.Track("b", spec.tokB), run.Track("o", spec.out)
			a = func() int64 { return int64(ta.Count()) }
			b = func() int64 { return int64(tb.Count()) }
			o = func() int64 { return int64(to.Count()) }
			maxSteps := uint64(2e6) * uint64(n)
			for step := uint64(0); step < maxSteps; step++ {
				if done() {
					ok = true
					break
				}
				run.Step()
			}
			rounds = run.Rounds()
		case "batch":
			pop := engine.NewCounted(spec.counts)
			run := engine.NewBatchRunner(proto, pop, rng)
			ta, tb, to := run.Track("a", spec.tokA), run.Track("b", spec.tokB), run.Track("o", spec.out)
			a = func() int64 { return ta.Count() }
			b = func() int64 { return tb.Count() }
			o = func() int64 { return to.Count() }
			rounds, ok = run.RunUntil(func(*engine.BatchRunner) bool { return done() }, 2e6)
		case "aggregate":
			pop := engine.NewCounted(spec.counts)
			run := engine.NewAggregateRunner(proto, pop, rng)
			// Force the run-decomposition path at these small n (the leap
			// fallback would make it identical to BatchRunner).
			run.MinRunFirings = 0
			ta, tb, to := run.Track("a", spec.tokA), run.Track("b", spec.tokB), run.Track("o", spec.out)
			a = func() int64 { return ta.Count() }
			b = func() int64 { return tb.Count() }
			o = func() int64 { return to.Count() }
			rounds, ok = run.RunUntil(func(*engine.AggregateRunner) bool { return done() }, 2e6)
		default:
			pop := engine.NewCounted(spec.counts)
			run := engine.NewCountRunner(proto, pop, rng)
			ta, tb, to := run.Track("a", spec.tokA), run.Track("b", spec.tokB), run.Track("o", spec.out)
			a = func() int64 { return ta.Count() }
			b = func() int64 { return tb.Count() }
			o = func() int64 { return to.Count() }
			rounds, ok = run.RunUntil(func(*engine.CountRunner) bool { return done() }, 2e6)
		}
		if !ok {
			t.Fatalf("%s: seed %d did not converge", kind, seed)
		}
		times = append(times, rounds)
		if b() == 0 && o() == n {
			correct++
			survivors = append(survivors, a())
		} else {
			survivors = append(survivors, b())
		}
	}
	return times, survivors, correct
}

func requireKS(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if d := stats.KS(a, b); d > ksCrit {
		t.Errorf("%s: KS statistic %.3f exceeds %.3f", label, d, ksCrit)
	}
}

// bucketSurvivors folds surviving-token counts into {1, 2, ≥3} categories.
func bucketSurvivors(survivors []int64) []int64 {
	row := make([]int64, 3)
	for _, s := range survivors {
		switch {
		case s <= 1:
			row[0]++
		case s == 2:
			row[1]++
		default:
			row[2]++
		}
	}
	return row
}

func requireChiSquare(t *testing.T, label string, rows ...[]int64) {
	t.Helper()
	if chi := stats.ChiSquareHomogeneity(rows); chi > chiCrit {
		t.Errorf("%s: chi-square %.2f exceeds %.2f (rows %v)", label, chi, chiCrit, rows)
	}
}

// runMajorityEquiv drives one majority protocol through the full kernel
// matrix and applies the KS, chi-square, and correctness gates.
func runMajorityEquiv(t *testing.T, name string, build func() majoritySpec, seedRoot uint64) {
	dense, sDense, cDense := majorityTimes(t, build, "dense", seedRoot)
	count, sCount, cCount := majorityTimes(t, build, "count", seedRoot)
	batch, sBatch, cBatch := majorityTimes(t, build, "batch", seedRoot)
	agg, sAgg, cAgg := majorityTimes(t, build, "aggregate", seedRoot)

	requireKS(t, name+" dense-vs-count", dense, count)
	requireKS(t, name+" dense-vs-batch", dense, batch)
	requireKS(t, name+" count-vs-batch", count, batch)
	requireKS(t, name+" count-vs-aggregate", count, agg)
	requireKS(t, name+" dense-vs-aggregate", dense, agg)

	// The surviving-token distribution at the decision instant is a second,
	// time-independent fingerprint of the dynamics: kernels must agree on it
	// too, not just on when they finish.
	requireChiSquare(t, name+" survivors dense-vs-batch", bucketSurvivors(sDense), bucketSurvivors(sBatch))
	requireChiSquare(t, name+" survivors count-vs-aggregate", bucketSurvivors(sCount), bucketSurvivors(sAgg))

	// Correctness-probability lower bound at the adversarial |A−B| = 1
	// margin: the conserved weighted sum makes these protocols exact, so
	// the bound is 1 — a single wrong decision on any kernel is a bug.
	for _, c := range []struct {
		kernel  string
		correct int
	}{{"dense", cDense}, {"count", cCount}, {"batch", cBatch}, {"aggregate", cAgg}} {
		if c.correct != equivSeeds {
			t.Errorf("%s on %s: %d/%d seeds decided for the true majority; exact majority admits no errors",
				name, c.kernel, c.correct, equivSeeds)
		}
	}
}

func TestCDMajorityKernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	runMajorityEquiv(t, "cdmajority", func() majoritySpec { return cdSpec(401) }, 90210)
}

func TestPRMajorityKernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	runMajorityEquiv(t, "prmajority", func() majoritySpec { return prSpec(401) }, 60601)
}

// TestGS18KernelEquivalence compares the junta-clocked leader election on
// the dense and batch kernels over a fixed 250-round horizon. GS18 is
// state-rich (species grow toward n as agents' rank/clock/oscillator
// fields diverge), so production runs pin the dense runner via
// expt.RunnerHints — but the ruleset is flat, so the batch kernel is still
// *admissible*, and distributional equivalence on it is exactly the test
// that the StateRich hint is a performance choice, not a correctness one.
// The horizon is fixed rather than run-to-convergence because the batch
// kernel's per-firing cost grows with the live species count: full
// convergence on batch is exactly the pathology StateRich exists to avoid
// (measured minutes per seed, vs milliseconds for this horizon). Within
// the horizon the composed dynamics are in full swing — junta coin flips,
// max-rank propagation, one-shot demotion, the epidemics — and the
// surviving-candidate and still-flipping counts fingerprint them: both
// must be distributed identically across kernels (KS), as must the
// candidate count's pooled-median split (chi-square).
func TestGS18KernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	const (
		n        = 256
		horizon  = 250
		gsSeeds  = 60
		seedRoot = 1802
		// 1.95·√(2/60) ≈ 0.356 at α = 0.001 for 60-vs-60.
		gsKSCrit = 0.36
	)
	run := func(kind string) (leaders, flipping []float64) {
		for seed := uint64(0); seed < gsSeeds; seed++ {
			g := NewGS18Leader(n)
			rng := engine.NewRNG(engine.SplitSeed(seedRoot, seed))
			counts := g.InitCounts(n, rng)
			proto := engine.CompileProtocol(g.Rules())
			isL, isF := bitmask.Is(g.L), bitmask.Is(g.Junta.Flipping)
			if kind == "dense" {
				pop := engine.NewDense(n)
				layoutDense(pop, counts)
				r := engine.NewRunner(proto, pop, rng)
				tl, tf := r.Track("l", isL), r.Track("f", isF)
				for step := 0; step < horizon*n; step++ {
					r.Step()
				}
				leaders = append(leaders, float64(tl.Count()))
				flipping = append(flipping, float64(tf.Count()))
			} else {
				pop := engine.NewCounted(counts)
				r := engine.NewBatchRunner(proto, pop, rng)
				tl, tf := r.Track("l", isL), r.Track("f", isF)
				r.RunUntil(func(*engine.BatchRunner) bool { return false }, horizon)
				leaders = append(leaders, float64(tl.Count()))
				flipping = append(flipping, float64(tf.Count()))
			}
		}
		return leaders, flipping
	}
	denseL, denseF := run("dense")
	batchL, batchF := run("batch")
	if d := stats.KS(denseL, batchL); d > gsKSCrit {
		t.Errorf("gs18leader candidates dense-vs-batch: KS statistic %.3f exceeds %.3f", d, gsKSCrit)
	}
	if d := stats.KS(denseF, batchF); d > gsKSCrit {
		t.Errorf("gs18leader flipping dense-vs-batch: KS statistic %.3f exceeds %.3f", d, gsKSCrit)
	}
	// Pooled-median split of the candidate count: both kernels must land
	// above/below it at the same rate (χ² at 1 df, α = 0.001 ⟹ 10.83).
	pooled := append(append([]float64(nil), denseL...), batchL...)
	sort.Float64s(pooled)
	median := pooled[len(pooled)/2]
	split := func(xs []float64) []int64 {
		row := make([]int64, 2)
		for _, x := range xs {
			if x < median {
				row[0]++
			} else {
				row[1]++
			}
		}
		return row
	}
	if chi := stats.ChiSquareHomogeneity([][]int64{split(denseL), split(batchL)}); chi > 10.83 {
		t.Errorf("gs18leader median-split dense-vs-batch: chi-square %.2f exceeds 10.83", chi)
	}
}
