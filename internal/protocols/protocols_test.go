package protocols

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/frame"
	"popkit/internal/lang"
)

func TestProgramsCheck(t *testing.T) {
	progs := map[string]*lang.Program{
		"LeaderElection":      LeaderElection(),
		"Majority":            Majority(2),
		"LeaderElectionExact": LeaderElectionExact(),
		"MajorityExact":       MajorityExact(2),
		"Plurality3":          Plurality(3, 2),
		"Plurality5":          Plurality(5, 2),
	}
	for name, p := range progs {
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLeaderElectionExactConverges(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		e, err := frame.New(LeaderElectionExact(), 512, seed)
		if err != nil {
			t.Fatal(err)
		}
		iters, ok := e.RunUntil(func(e *frame.Executor) bool {
			return e.CountVar("L") == 1 && e.CountVar("R") == 1
		}, 400)
		if !ok {
			t.Fatalf("seed %d: L=%d R=%d after %d iterations",
				seed, e.CountVar("L"), e.CountVar("R"), iters)
		}
		// Exactness: once R is the singleton and the coin is quiet, L must
		// never change again, under faults or not.
		e.Faults = frame.Faults{PartialAssignProb: 0.2}
		e.RunIterations(20)
		if got := e.CountVar("L"); got != 1 {
			t.Errorf("seed %d: leader count drifted to %d under faults", seed, got)
		}
	}
}

// TestLeaderElectionExactCoinDies checks the FilteredCoin mechanism: the S
// voter-consensus eventually silences the coin (F ≡ off forever), the
// precondition for Theorem 6.1's deterministic tail.
func TestLeaderElectionExactCoinDies(t *testing.T) {
	e, err := frame.New(LeaderElectionExact(), 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Voter-model consensus takes Θ(n) rounds; iterations charge Θ(log n)
	// background rounds each, so allow plenty.
	_, ok := e.RunUntil(func(e *frame.Executor) bool {
		s := e.CountVar("S")
		return (s == 0 || s == e.Pop.N()) && e.CountVar("F") == 0
	}, 3000)
	if !ok {
		t.Fatalf("coin never died: S=%d F=%d", e.CountVar("S"), e.CountVar("F"))
	}
	// Once dead it stays dead.
	e.RunIterations(10)
	if got := e.CountVar("F"); got != 0 {
		t.Errorf("dead coin came back: F=%d", got)
	}
}

func TestMajorityExactAlwaysCorrect(t *testing.T) {
	const n = 512
	for _, tc := range []struct {
		nA, nB int
		wantYA bool
	}{
		{257, 255, true},
		{255, 257, false},
		{100, 300, false},
	} {
		e, err := frame.New(MajorityExact(2), n, 11)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := e.Space.LookupVar("A")
		b, _ := e.Space.LookupVar("B")
		at, _ := e.Space.LookupVar("At")
		bt, _ := e.Space.LookupVar("Bt")
		e.SetInput(func(i int, s bitmask.State) bitmask.State {
			switch {
			case i < tc.nA:
				s = a.Set(s, true)
				s = at.Set(s, true)
			case i < tc.nA+tc.nB:
				s = b.Set(s, true)
				s = bt.Set(s, true)
			}
			return s
		})
		// Run until the minority token pool is exhausted (the
		// probability-1 event Theorem 6.3 relies on) plus a few
		// iterations for the output to settle.
		minorityTokens := func(e *frame.Executor) int {
			if tc.wantYA {
				return e.CountVar("Bt")
			}
			return e.CountVar("At")
		}
		_, ok := e.RunUntil(func(e *frame.Executor) bool { return minorityTokens(e) == 0 }, 2000)
		if !ok {
			t.Fatalf("nA=%d nB=%d: minority tokens never exhausted (%d left)", tc.nA, tc.nB, minorityTokens(e))
		}
		e.RunIterations(3)
		want := 0
		if tc.wantYA {
			want = n
		}
		if got := e.CountVar("YA"); got != want {
			t.Fatalf("nA=%d nB=%d: YA=%d, want %d", tc.nA, tc.nB, got, want)
		}
		// Permanence under faulty iterations: the minority token set is
		// empty forever, so YA can never flip back.
		e.Faults = frame.Faults{PartialAssignProb: 0.25}
		e.RunIterations(15)
		if got := e.CountVar("YA"); got != want {
			t.Errorf("nA=%d nB=%d: YA drifted to %d under faults", tc.nA, tc.nB, got)
		}
	}
}

func TestPluralityThreeColours(t *testing.T) {
	const n = 600
	prog := Plurality(3, 2)
	e, err := frame.New(prog, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Colour 2 is the plurality with a narrow margin: 210 vs 205 vs 185.
	sizes := []int{205, 210, 185}
	vars := make([]bitmask.Var, 3)
	for i := range vars {
		vars[i], _ = e.Space.LookupVar("C" + string(rune('1'+i)))
	}
	e.SetInput(func(i int, s bitmask.State) bitmask.State {
		switch {
		case i < sizes[0]:
			return vars[0].Set(s, true)
		case i < sizes[0]+sizes[1]:
			return vars[1].Set(s, true)
		default:
			return vars[2].Set(s, true)
		}
	})
	e.RunIterations(3)
	if got := e.CountVar("W2"); got != n {
		t.Errorf("W2 = %d, want %d (plurality winner)", got, n)
	}
	for _, loser := range []string{"W1", "W3"} {
		if got := e.CountVar(loser); got != 0 {
			t.Errorf("%s = %d, want 0", loser, got)
		}
	}
}

func TestPluralityStateCount(t *testing.T) {
	// The §1.1 claim: plurality uses O(l²) states — here l(l−1) token vars
	// plus l(l−1) duplication flags plus l inputs and l outputs.
	for _, l := range []int{3, 5} {
		prog := Plurality(l, 2)
		sp, err := prog.BuildSpace()
		if err != nil {
			t.Fatal(err)
		}
		bits := sp.NumBitsUsed()
		want := 2*l + 2*l*(l-1)
		if bits != want {
			t.Errorf("l=%d: %d bits used, want %d", l, bits, want)
		}
	}
}

// TestLeaderElectionIterationScaling measures Theorem 3.1's O(log n)
// iteration count directly across a size sweep.
func TestLeaderElectionIterationScaling(t *testing.T) {
	prog := LeaderElection()
	for _, n := range []int{64, 1024, 16384} {
		var total int
		const seeds = 5
		for seed := uint64(0); seed < seeds; seed++ {
			e, err := frame.New(prog, n, seed)
			if err != nil {
				t.Fatal(err)
			}
			iters, ok := e.RunUntil(func(e *frame.Executor) bool { return e.CountVar("L") == 1 }, 1000)
			if !ok {
				t.Fatalf("n=%d seed=%d did not converge", n, seed)
			}
			total += iters
		}
		mean := float64(total) / seeds
		logn := math.Log2(float64(n))
		if mean < 0.4*logn || mean > 4*logn {
			t.Errorf("n=%d: mean iterations %.1f outside [0.4 log2 n, 4 log2 n] = [%.1f, %.1f]",
				n, mean, 0.4*logn, 4*logn)
		}
	}
}

// TestThresholdExactSignTest: the generalized token program decides
// 2·#A − #B ≥ 1 exactly, including near ties.
func TestThresholdExactSignTest(t *testing.T) {
	const n = 400
	prog := ThresholdExact(2, 1, 2)
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		nA, nB int
		want   bool
	}{
		{50, 99, true},   // 100 − 99 = 1 ≥ 1
		{50, 100, false}, // 100 − 100 = 0 < 1
		{50, 101, false},
		{80, 60, true},
	} {
		e, err := frame.New(prog, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := e.Space.LookupVar("A")
		b, _ := e.Space.LookupVar("B")
		toks := map[string]bitmask.Var{}
		for _, name := range []string{"Pa", "Pb", "Na", "Nb"} {
			v, _ := e.Space.LookupVar(name)
			toks[name] = v
		}
		e.SetInput(func(i int, s bitmask.State) bitmask.State {
			colour := -1
			switch {
			case i < tc.nA:
				colour = 0
				s = a.Set(s, true)
			case i < tc.nA+tc.nB:
				colour = 1
				s = b.Set(s, true)
			}
			pa, pb, na, nb := InitThresholdTokens(colour, 2, 1)
			s = toks["Pa"].Set(s, pa)
			s = toks["Pb"].Set(s, pb)
			s = toks["Na"].Set(s, na)
			s = toks["Nb"].Set(s, nb)
			return s
		})
		// Run until the minority-sign tokens are exhausted, then settle.
		minority := func(e *frame.Executor) int {
			if tc.want {
				return e.Count("Na | Nb")
			}
			return e.Count("Pa | Pb")
		}
		if _, ok := e.RunUntil(func(e *frame.Executor) bool { return minority(e) == 0 }, 3000); !ok {
			t.Fatalf("nA=%d nB=%d: tokens never exhausted (%d left)", tc.nA, tc.nB, minority(e))
		}
		e.RunIterations(3)
		want := 0
		if tc.want {
			want = n
		}
		if got := e.CountVar("Y"); got != want {
			t.Errorf("nA=%d nB=%d: Y=%d, want %d", tc.nA, tc.nB, got, want)
		}
	}
}

func TestThresholdExactRejectsBigCoefficients(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("coefficient 3 accepted")
		}
	}()
	ThresholdExact(3, 1, 2)
}
