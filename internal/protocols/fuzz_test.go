package protocols_test

// Fuzz invariants for the related-work protocols: whatever population
// split, seed, and firing budget the fuzzer picks, the transition functions
// must conserve the agent count, keep every field within its declared
// range, and preserve each protocol's load-bearing algebraic invariant —
// the signed weighted opinion sum for the cancelling–doubling majorities
// (the exactness proof IS this conservation law), the token/output-bit
// binding behind their reachable-state counts, and the never-empty junta
// (X ≥ 1) behind GS18's oscillator. Rulesets must also survive Validate at
// every fuzzed size: within-group guard disjointness is what guarantees no
// rule can fire on a non-matching pair under the unordered-group scheduler.

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	. "popkit/internal/protocols"
)

// weightedSum folds the signed token weights Σ ±2^(L−lvl) over a counted
// population. Levels are capped at L ≤ 40 and fuzz populations at < 2^12
// agents, so the sum fits int64 with room to spare.
func weightedSum(pop *engine.Counted, tok, opA bitmask.Var, lvl bitmask.Field, maxLevel int) int64 {
	var w int64
	pop.ForEach(func(s bitmask.State, k int64) {
		if !tok.Get(s) {
			return
		}
		weight := int64(1) << uint(maxLevel-int(lvl.Get(s)))
		if opA.Get(s) {
			w += weight * k
		} else {
			w -= weight * k
		}
	})
	return w
}

// checkMajorityInvariants verifies conservation, range, and the
// token/output binding for a CD- or PR-shaped population.
func checkMajorityInvariants(t *testing.T, label string, pop *engine.Counted, tok, opA, out bitmask.Var, lvl bitmask.Field, maxLevel, wantN int64, wantW int64) {
	t.Helper()
	var n int64
	pop.ForEach(func(s bitmask.State, k int64) {
		if k < 0 {
			t.Fatalf("%s: species %v has negative count %d", label, s, k)
		}
		n += k
		if v := lvl.Get(s); v > uint64(maxLevel) {
			t.Fatalf("%s: level/phase %d out of range [0,%d]", label, v, maxLevel)
		}
		if tok.Get(s) && out.Get(s) != opA.Get(s) {
			t.Fatalf("%s: token with Out %v but sign OpA %v — the binding behind States() broke", label, out.Get(s), opA.Get(s))
		}
	})
	if n != wantN {
		t.Fatalf("%s: population not conserved: %d, want %d", label, n, wantN)
	}
	if w := weightedSum(pop, tok, opA, lvl, int(maxLevel)); w != wantW {
		t.Fatalf("%s: weighted opinion sum %d, want %d — exactness is lost", label, w, wantW)
	}
}

func FuzzRelatedInvariants(f *testing.F) {
	f.Add(uint8(0), uint16(5), uint16(4), uint64(1), uint16(200))
	f.Add(uint8(1), uint16(301), uint16(300), uint64(42), uint16(400))
	f.Add(uint8(2), uint16(64), uint16(0), uint64(7), uint16(300))
	f.Add(uint8(0), uint16(2), uint16(2), uint64(99), uint16(50))
	f.Add(uint8(1), uint16(1), uint16(1000), uint64(314), uint16(389))
	f.Add(uint8(2), uint16(250), uint16(9), uint64(1802), uint16(128))
	f.Fuzz(func(t *testing.T, pick uint8, ka, kb uint16, seed uint64, steps uint16) {
		budget := uint64(steps % 512)
		switch pick % 3 {
		case 0, 1:
			nA, nB := int64(ka%2048), int64(kb%2048)
			n := nA + nB
			if n < 2 {
				t.Skip("population too small")
			}
			var tok, opA, out bitmask.Var
			var lvl bitmask.Field
			var maxLevel int
			var pop *engine.Counted
			var br *engine.BatchRunner
			if pick%3 == 0 {
				m := NewCDMajority(int(n))
				if err := m.Rules().Validate(); err != nil {
					t.Fatalf("CDMajority(%d) ruleset invalid: %v", n, err)
				}
				tok, opA, out, lvl, maxLevel = m.Tok, m.OpA, m.Out, m.Lvl, m.MaxLevel
				pop = engine.NewCounted(m.InitCounts(nA, nB))
				br = engine.NewBatchRunner(engine.CompileProtocol(m.Rules()), pop, engine.NewRNG(seed))
			} else {
				m := NewPRMajority(int(n))
				if err := m.Rules().Validate(); err != nil {
					t.Fatalf("PRMajority(%d) ruleset invalid: %v", n, err)
				}
				tok, opA, out, lvl, maxLevel = m.Tok, m.OpA, m.Out, m.Ph, m.MaxPhase
				pop = engine.NewCounted(m.InitCounts(nA, nB))
				br = engine.NewBatchRunner(engine.CompileProtocol(m.Rules()), pop, engine.NewRNG(seed))
			}
			wantW := (nA - nB) * (int64(1) << uint(maxLevel))
			checkMajorityInvariants(t, "init", pop, tok, opA, out, lvl, int64(maxLevel), n, wantW)
			br.RunBatch(budget, 0)
			checkMajorityInvariants(t, "after batch", pop, tok, opA, out, lvl, int64(maxLevel), n, wantW)
		default:
			n := int(ka%300) + 4
			g := NewGS18Leader(n)
			if err := g.Rules().Validate(); err != nil {
				t.Fatalf("GS18Leader(%d) ruleset invalid: %v", n, err)
			}
			rng := engine.NewRNG(seed)
			pop := engine.NewCounted(g.InitCounts(n, rng))
			br := engine.NewBatchRunner(engine.CompileProtocol(g.Rules()), pop, rng)
			// Keep the budget small: the batch kernel's cost grows with the
			// species count, which grows with firings on this state-rich
			// protocol.
			br.RunBatch(budget%256, 0)
			var total, inJunta int64
			pop.ForEach(func(s bitmask.State, k int64) {
				if k < 0 {
					t.Fatalf("gs18: species %v has negative count %d", s, k)
				}
				total += k
				if g.X.Get(s) {
					inJunta += k
				}
				if r := g.Junta.Rank.Get(s); r > uint64(g.Junta.MaxLevel) {
					t.Fatalf("gs18: rank %d out of range [0,%d]", r, g.Junta.MaxLevel)
				}
				if m := g.Junta.Max.Get(s); m > uint64(g.Junta.MaxLevel) {
					t.Fatalf("gs18: max-rank %d out of range [0,%d]", m, g.Junta.MaxLevel)
				}
				if c := g.Clock.Counter.Get(s); c >= 12 {
					t.Fatalf("gs18: clock counter %d out of range [0,12)", c)
				}
			})
			if total != int64(n) {
				t.Fatalf("gs18: population not conserved: %d, want %d", total, n)
			}
			if inJunta < 1 {
				t.Fatalf("gs18: junta emptied (X = 0) — the oscillator has no control set")
			}
		}
	})
}
