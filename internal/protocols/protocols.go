// Package protocols contains the paper's example programs, expressed in the
// lang package's syntax: LeaderElection (§3.1), Majority (§3.2), their
// always-correct variants LeaderElectionExact (§6.1) and MajorityExact
// (§6.2), and the plurality-consensus generalization (§1.1, O(l²) states).
//
// Two places where the paper's pseudocode is under-determined are resolved
// here the way its theorems require (see DESIGN.md):
//
//   - In LeaderElection, the final "else: L := on" branch belongs to
//     "if exists (L)" (repairing an empty leader set), not to
//     "if exists (D)": attaching it to the inner branch would restart the
//     whole population whenever all coins fail — at |L| = 1 that happens
//     with probability ½ per iteration, contradicting Theorem 3.1 and its
//     recursion E[ℓ'] = ℓ/2 + 2^(−ℓ)·ℓ, which treats the no-survivor case
//     as "keep ℓ". In LeaderElectionExact the flat attachment is correct
//     (the fallback L := R is exactly how Theorem 6.1 converges).
//   - In MajorityExact, the stars must be refreshed from one-shot *tokens*
//     (cancelled at most once, difference exactly invariant) rather than
//     from the raw inputs; this is what makes "eventually the minority set
//     is empty and never changes again" in the Theorem 6.3 proof true with
//     certainty.
package protocols

import (
	"fmt"
	"strings"

	"popkit/internal/lang"
)

// LeaderElection returns the §3.1 w.h.p. program. Output variable: L.
func LeaderElection() *lang.Program {
	return lang.MustParse(`
protocol LeaderElection
var L = on output

thread Main uses L
  var D = off
  var F = on
  repeat:
    if exists (L):
      F := rand
      D := L & F
      if exists (D):
        L := D
    else:
      L := on
`)
}

// Majority returns the §3.2 w.h.p. program with loop constant c.
// Inputs: A, B. Output: YA (on iff |A| > |B|).
func Majority(c int) *lang.Program {
	return lang.MustParse(fmt.Sprintf(`
protocol Majority
var YA = off output
var A = off input, B = off input

thread Main uses YA reads A, B
  var As = off
  var Bs = off
  var K = off
  repeat:
    As := A
    Bs := B
    repeat >= %[1]d ln n times:
      execute for >= %[1]d ln n rounds ruleset:
        (As) + (Bs) -> (!As) + (!Bs)
      K := off
      execute for >= %[1]d ln n rounds ruleset:
        (As & !K) + (!As & !Bs) -> (As & K) + (As & K)
        (Bs & !K) + (!As & !Bs) -> (Bs & K) + (Bs & K)
    if exists (As):
      YA := on
    if exists (Bs):
      YA := off
`, c))
}

// LeaderElectionExact returns the §6.1 always-correct program: the Main
// thread's fast halving is driven by the FilteredCoin synthetic coin
// (which eventually dies, silencing the randomized path), while the
// ReduceSets thread deterministically coalesces R down to a single agent
// that the fallback "L := R" then installs forever. Output variable: L.
func LeaderElectionExact() *lang.Program {
	return lang.MustParse(`
protocol LeaderElectionExact
var L = on output
var R = on
var F = on

thread Main uses L reads R, F
  var D = off
  repeat:
    if exists (L):
      D := L & F
    if exists (D):
      L := L & D
    else:
      L := R

thread FilteredCoin uses F
  var I = on
  var S = on
  execute ruleset:
    (I) + (I) -> (!I & S) + (!I & !S)
    (I) + (!I) -> (!I) + (!I)
    (S) + (!S) -> (S & F) + (S & F)
    (!S) + (S) -> (!S & F) + (!S & F)
    (F) + (.) -> (!F) + (.)

thread ReduceSets uses R reads L
  execute ruleset:
    (R) + (R & !L) -> (R) + (!R & !L)
    (R & L) + (R & L) -> (R & L) + (!R & !L)
`)
}

// MajorityExact returns the §6.2 always-correct program with loop constant
// c. Inputs: A, B (also copied into the one-shot tokens At, Bt by
// InitMajorityExactInputs). Output: YA.
//
// The background Cancel thread consumes tokens pairwise, exactly
// preserving #At − #Bt, so with probability 1 the true minority's tokens
// reach zero and stay there; from then on the star refresh leaves the
// minority stars permanently empty, the corresponding "if exists" branch
// is never entered again, and YA is correct forever (Theorem 6.3).
func MajorityExact(c int) *lang.Program {
	return lang.MustParse(fmt.Sprintf(`
protocol MajorityExact
var YA = off output
var A = off input, B = off input
var At = off, Bt = off

thread Main uses YA reads At, Bt
  var As = off
  var Bs = off
  var K = off
  repeat:
    As := At
    Bs := Bt
    repeat >= %[1]d ln n times:
      execute for >= %[1]d ln n rounds ruleset:
        (As) + (Bs) -> (!As) + (!Bs)
      K := off
      execute for >= %[1]d ln n rounds ruleset:
        (As & !K) + (!As & !Bs) -> (As & K) + (As & K)
        (Bs & !K) + (!As & !Bs) -> (Bs & K) + (Bs & K)
    if exists (As):
      YA := on
    if exists (Bs):
      YA := off

thread Cancel uses At, Bt
  execute ruleset:
    (At) + (Bt) -> (!At) + (!Bt)
`, c))
}

// Plurality returns the l-colour plurality-consensus program (l ≥ 2) with
// loop constant c. Inputs: C1 … Cl; outputs: W1 … Wl, where Wi converges
// on for exactly the plurality colour. Following the paper's O(l²)-state
// hint, every unordered colour pair runs its own §3.2-style contest: token
// T<i>v<j> is colour i's token in the contest against colour j; colour i
// wins iff its tokens survive every contest.
func Plurality(l, c int) *lang.Program {
	if l < 2 {
		panic("protocols: plurality needs at least 2 colours")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "protocol Plurality%d\n", l)
	for i := 1; i <= l; i++ {
		fmt.Fprintf(&b, "var C%d = off input\n", i)
		fmt.Fprintf(&b, "var W%d = off output\n", i)
	}
	b.WriteString("\nthread Main\n")
	for i := 1; i <= l; i++ {
		for j := 1; j <= l; j++ {
			if i != j {
				fmt.Fprintf(&b, "  var T%dv%d = off\n", i, j)
				fmt.Fprintf(&b, "  var K%dv%d = off\n", i, j)
			}
		}
	}
	b.WriteString("  repeat:\n")
	for i := 1; i <= l; i++ {
		for j := 1; j <= l; j++ {
			if i != j {
				fmt.Fprintf(&b, "    T%dv%d := C%d\n", i, j, i)
			}
		}
	}
	fmt.Fprintf(&b, "    repeat >= %d ln n times:\n", c)
	// Cancellation: one leaf with every pair's cancellation rule.
	fmt.Fprintf(&b, "      execute for >= %d ln n rounds ruleset:\n", c)
	for i := 1; i <= l; i++ {
		for j := i + 1; j <= l; j++ {
			fmt.Fprintf(&b, "        (T%[1]dv%[2]d) + (T%[2]dv%[1]d) -> (!T%[1]dv%[2]d) + (!T%[2]dv%[1]d)\n", i, j)
		}
	}
	// Reset duplication flags.
	for i := 1; i <= l; i++ {
		for j := 1; j <= l; j++ {
			if i != j {
				fmt.Fprintf(&b, "      K%dv%d := off\n", i, j)
			}
		}
	}
	// Duplication: per contest, blanks are agents holding neither token.
	fmt.Fprintf(&b, "      execute for >= %d ln n rounds ruleset:\n", c)
	for i := 1; i <= l; i++ {
		for j := 1; j <= l; j++ {
			if i != j {
				fmt.Fprintf(&b, "        (T%[1]dv%[2]d & !K%[1]dv%[2]d) + (!T%[1]dv%[2]d & !T%[2]dv%[1]d) -> (T%[1]dv%[2]d & K%[1]dv%[2]d) + (T%[1]dv%[2]d & K%[1]dv%[2]d)\n", i, j)
			}
		}
	}
	// Winner flags: colour i wins iff its tokens survive every contest
	// (a conjunction of population-level exists-checks, i.e. nested ifs)
	// and loses as soon as any opponent's token against it survives.
	for i := 1; i <= l; i++ {
		indent := "    "
		for j := 1; j <= l; j++ {
			if i != j {
				fmt.Fprintf(&b, "%sif exists (T%dv%d):\n", indent, i, j)
				indent += "  "
			}
		}
		fmt.Fprintf(&b, "%sW%d := on\n", indent, i)
		for j := 1; j <= l; j++ {
			if i != j {
				fmt.Fprintf(&b, "    if exists (T%[2]dv%[1]d):\n      W%[1]d := off\n", i, j)
			}
		}
	}
	return lang.MustParse(b.String())
}

// ThresholdExact returns an always-correct program for the predicate
// a1·x1 − a2·x2 ≥ 1 with unit-or-double coefficients a1, a2 ∈ {1, 2},
// entirely in the paper's language — the §6.2 token pattern generalized:
// an agent of colour i carries a_i one-shot tokens (encoded as separate
// boolean variables T<i>a, T<i>b), the background thread cancels opposite
// tokens pairwise (preserving a1·x1 − a2·x2 exactly), and the fast
// §3.2-style loop computes the surviving sign w.h.p. each iteration.
// Inputs: A, B; output: Y (on iff a1·#A − a2·#B ≥ 1).
func ThresholdExact(a1, a2, c int) *lang.Program {
	if a1 < 1 || a1 > 2 || a2 < 1 || a2 > 2 {
		panic("protocols: ThresholdExact supports coefficients 1 and 2")
	}
	var b strings.Builder
	b.WriteString("protocol ThresholdExact\n")
	b.WriteString("var Y = off output\nvar A = off input, B = off input\n")
	// Token variables: up to two per side.
	b.WriteString("var Pa = off, Pb = off, Na = off, Nb = off\n")
	b.WriteString("\nthread Main uses Y reads Pa, Pb, Na, Nb\n")
	b.WriteString("  var Ps = off\n  var Ns = off\n  var K = off\n")
	b.WriteString("  repeat:\n")
	// Refresh stars from any surviving token of each sign.
	b.WriteString("    Ps := Pa | Pb\n")
	b.WriteString("    Ns := Na | Nb\n")
	fmt.Fprintf(&b, "    repeat >= %d ln n times:\n", c)
	fmt.Fprintf(&b, "      execute for >= %d ln n rounds ruleset:\n", c)
	b.WriteString("        (Ps) + (Ns) -> (!Ps) + (!Ns)\n")
	b.WriteString("      K := off\n")
	fmt.Fprintf(&b, "      execute for >= %d ln n rounds ruleset:\n", c)
	b.WriteString("        (Ps & !K) + (!Ps & !Ns) -> (Ps & K) + (Ps & K)\n")
	b.WriteString("        (Ns & !K) + (!Ps & !Ns) -> (Ns & K) + (Ns & K)\n")
	b.WriteString("    if exists (Ps):\n      Y := on\n")
	b.WriteString("    else:\n      Y := off\n") // covers the tie: no tokens left on either side
	b.WriteString("    if exists (Ns):\n      Y := off\n")
	// Background cancellation between any positive and any negative token:
	// one token of each sign per meeting, exactly preserving the signed sum.
	b.WriteString("\nthread Cancel uses Pa, Pb, Na, Nb\n")
	b.WriteString("  execute ruleset:\n")
	for _, p := range []string{"Pa", "Pb"} {
		for _, n := range []string{"Na", "Nb"} {
			fmt.Fprintf(&b, "    (%s) + (%s) -> (!%s) + (!%s)\n", p, n, p, n)
		}
	}
	return lang.MustParse(b.String())
}

// InitThresholdTokens returns, for an agent of the given colour (0 = A,
// 1 = B, −1 = uncoloured), which token variables to set for ThresholdExact
// with coefficients a1, a2.
func InitThresholdTokens(colour, a1, a2 int) (pa, pb, na, nb bool) {
	switch colour {
	case 0:
		return true, a1 == 2, false, false
	case 1:
		return false, false, true, a2 == 2
	}
	return false, false, false, false
}
