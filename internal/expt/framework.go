package expt

import (
	"fmt"
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/frame"
	"popkit/internal/protocols"
	"popkit/internal/semilinear"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Claim: "LeaderElection converges in O(log n) good iterations ≈ O(log² n) rounds, w.h.p. correct (Thm 3.1)",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Claim: "Majority converges in O(log³ n) rounds, correct w.h.p. independent of the gap (Thm 3.2)",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E8",
		Claim: "Exact protocols are always correct; LeaderElectionExact stays at one leader forever (Thms 6.1–6.3)",
		Run:   runE8,
	})
	register(Experiment{
		ID:    "E9",
		Claim: "Semi-linear predicates: fast w.h.p. for thresholds, exact via the slow blackbox (Thm 6.4)",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Claim: "Plurality consensus with l colours matches majority's shape using O(l²) states (§1.1)",
		Run:   runE10,
	})
}

func sizesE1(cfg Config) []int {
	if cfg.Quick {
		return []int{256, 1024}
	}
	return []int{256, 1024, 4096, 16384, 65536}
}

func runE1(cfg Config) Result {
	prog := protocols.LeaderElection()
	tb := stats.NewTable("E1 — LeaderElection (framework semantics)",
		"n", "iterations mean±sd", "rounds mean", "rounds/log²n", "unique leader", "stable after +5 iters")
	var ns, rounds []float64
	for _, n := range sizesE1(cfg) {
		n := n
		type rep struct {
			Iters, Rounds   float64
			Correct, Stable bool
		}
		reps := replicate(cfg, fmt.Sprintf("E1/n=%d", n), cfg.Seeds,
			func(s int) uint64 { return cfg.BaseSeed + uint64(1000*n+s) },
			func(s int, seed uint64) rep {
				e, err := frame.New(prog, n, seed)
				if err != nil {
					panic(err)
				}
				it, ok := e.RunUntil(func(e *frame.Executor) bool { return e.CountVar("L") == 1 }, 40*int(math.Log2(float64(n)))+40)
				atConv := e.Rounds // charge convergence time, not the stability probe
				e.RunIterations(5)
				return rep{Iters: float64(it), Rounds: atConv, Correct: ok, Stable: e.CountVar("L") == 1}
			})
		var iters, rnds []float64
		correct, stable := 0, 0
		for _, rp := range reps {
			iters = append(iters, rp.Iters)
			rnds = append(rnds, rp.Rounds)
			if rp.Correct {
				correct++
			}
			if rp.Stable {
				stable++
			}
		}
		si, sr := stats.Summarize(iters), stats.Summarize(rnds)
		logn := math.Log(float64(n))
		tb.AddRow(n, fmt.Sprintf("%.1f ± %.1f", si.Mean, si.Std), sr.Mean,
			sr.Mean/(logn*logn),
			fmt.Sprintf("%d/%d", correct, cfg.Seeds),
			fmt.Sprintf("%d/%d", stable, cfg.Seeds))
		ns = append(ns, float64(n))
		rounds = append(rounds, sr.Mean)
	}
	d, r2 := stats.PolylogExponent(ns, rounds)
	fit := stats.NewTable("E1 fit", "model", "exponent", "R²")
	fit.AddRow("rounds ~ (ln n)^d", d, r2)
	return Result{Tables: []*stats.Table{tb, fit}}
}

func runE2(cfg Config) Result {
	prog := protocols.Majority(2)
	sizes := []int{256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{256, 1024}
	}
	tb := stats.NewTable("E2 — Majority correctness and time vs gap (framework semantics)",
		"n", "gap", "uncoloured", "correct", "rounds mean")
	for _, n := range sizes {
		gaps := []int{1, int(math.Sqrt(float64(n))), n / 3}
		for gi, gap := range gaps {
			uncol := 0
			if gi == 0 {
				uncol = n / 10 // also exercise the paper's uncoloured-agent generality
			}
			n, gap, uncol := n, gap, uncol
			type rep struct {
				Rounds  float64
				Correct bool
			}
			reps := replicate(cfg, fmt.Sprintf("E2/n=%d/gap=%d", n, gap), cfg.Seeds,
				func(s int) uint64 { return cfg.BaseSeed + uint64(n*31+gap*7+s) },
				func(s int, seed uint64) rep {
					nB := (n - uncol - gap) / 2
					nA := nB + gap
					e, err := frame.New(prog, n, seed)
					if err != nil {
						panic(err)
					}
					a, _ := e.Space.LookupVar("A")
					b, _ := e.Space.LookupVar("B")
					e.SetInput(func(i int, st bitmask.State) bitmask.State {
						switch {
						case i < nA:
							return a.Set(st, true)
						case i < nA+nB:
							return b.Set(st, true)
						}
						return st
					})
					e.RunIterations(3)
					return rep{Rounds: e.Rounds, Correct: e.CountVar("YA") == n}
				})
			correct := 0
			var rnds []float64
			for _, rp := range reps {
				if rp.Correct {
					correct++
				}
				rnds = append(rnds, rp.Rounds)
			}
			sr := stats.Summarize(rnds)
			tb.AddRow(n, gap, uncol, fmt.Sprintf("%d/%d", correct, cfg.Seeds), sr.Mean)
		}
	}
	return Result{Tables: []*stats.Table{tb}}
}

func runE8(cfg Config) Result {
	tb := stats.NewTable("E8 — Always-correct protocols (framework semantics)",
		"protocol", "n", "converged", "stable under faults", "iterations mean")
	sizes := []int{256, 1024}
	if cfg.Quick {
		sizes = []int{256}
	}
	type e8Rep struct {
		Iters        float64
		Conv, Stable bool
	}
	for _, n := range sizes {
		n := n
		reps := replicate(cfg, fmt.Sprintf("E8/leaderexact/n=%d", n), cfg.Seeds,
			func(s int) uint64 { return cfg.BaseSeed + uint64(n+s) },
			func(s int, seed uint64) e8Rep {
				e, err := frame.New(protocols.LeaderElectionExact(), n, seed)
				if err != nil {
					panic(err)
				}
				it, ok := e.RunUntil(func(e *frame.Executor) bool {
					return e.CountVar("L") == 1 && e.CountVar("R") == 1
				}, 600)
				e.Faults = frame.Faults{PartialAssignProb: 0.2}
				e.RunIterations(10)
				return e8Rep{Iters: float64(it), Conv: ok, Stable: e.CountVar("L") == 1}
			})
		var iters []float64
		conv, stable := 0, 0
		for _, rp := range reps {
			iters = append(iters, rp.Iters)
			if rp.Conv {
				conv++
			}
			if rp.Stable {
				stable++
			}
		}
		tb.AddRow("LeaderElectionExact", n,
			fmt.Sprintf("%d/%d", conv, cfg.Seeds),
			fmt.Sprintf("%d/%d", stable, cfg.Seeds),
			stats.Summarize(iters).Mean)
	}
	for _, n := range sizes {
		n := n
		reps := replicate(cfg, fmt.Sprintf("E8/majorityexact/n=%d", n), cfg.Seeds,
			func(s int) uint64 { return cfg.BaseSeed + uint64(n*3+s) },
			func(s int, seed uint64) e8Rep {
				gap := 1 + s%3
				nB := (n - gap) / 2
				nA := nB + gap
				e, err := frame.New(protocols.MajorityExact(2), n, seed)
				if err != nil {
					panic(err)
				}
				a, _ := e.Space.LookupVar("A")
				b, _ := e.Space.LookupVar("B")
				at, _ := e.Space.LookupVar("At")
				bt, _ := e.Space.LookupVar("Bt")
				e.SetInput(func(i int, st bitmask.State) bitmask.State {
					switch {
					case i < nA:
						st = a.Set(st, true)
						return at.Set(st, true)
					case i < nA+nB:
						st = b.Set(st, true)
						return bt.Set(st, true)
					}
					return st
				})
				it, ok := e.RunUntil(func(e *frame.Executor) bool {
					return e.CountVar("Bt") == 0 && e.CountVar("YA") == n
				}, 3000)
				e.Faults = frame.Faults{PartialAssignProb: 0.25}
				e.RunIterations(10)
				return e8Rep{Iters: float64(it), Conv: ok, Stable: e.CountVar("YA") == n}
			})
		conv, stable := 0, 0
		var iters []float64
		for _, rp := range reps {
			iters = append(iters, rp.Iters)
			if rp.Conv {
				conv++
			}
			if rp.Stable {
				stable++
			}
		}
		tb.AddRow("MajorityExact", n,
			fmt.Sprintf("%d/%d", conv, cfg.Seeds),
			fmt.Sprintf("%d/%d", stable, cfg.Seeds),
			stats.Summarize(iters).Mean)
	}
	return Result{Tables: []*stats.Table{tb}}
}

func runE9(cfg Config) Result {
	tb := stats.NewTable("E9 — SemilinearPredicateExact (Thm 6.4)",
		"predicate", "instance", "n", "stable", "iterations", "output correct")
	seeds := cfg.Seeds
	if seeds > 5 {
		seeds = 5
	}
	n := 400
	if cfg.Quick {
		n = 200
	}

	thr := semilinear.Threshold{Coef: []int{2, -1}, C: 3} // 2x1 − x2 ≥ 3
	for _, inst := range [][2]int{{60, 117}, {60, 118}, {30, 56}} {
		nA, nB := inst[0], inst[1]
		colour := func(i int) int {
			switch {
			case i < nA:
				return 0
			case i < nA+nB:
				return 1
			}
			return -1
		}
		counts := []int64{int64(nA), int64(nB)}
		ok, iters, correct := 0, 0.0, 0
		for s := 0; s < seeds; s++ {
			e := semilinear.NewExact(thr, n, colour, cfg.BaseSeed+uint64(nA*100+s))
			it, stable := e.RunUntilStable(colour, counts, 1500)
			if stable {
				ok++
			}
			iters += float64(it)
			want := thr.Eval(counts)
			if (e.Output() == n) == want && (want || e.Output() == 0) {
				correct++
			}
		}
		tb.AddRow(thr.Name(), fmt.Sprintf("x=(%d,%d)", nA, nB), n,
			fmt.Sprintf("%d/%d", ok, seeds), iters/float64(seeds),
			fmt.Sprintf("%d/%d", correct, seeds))
	}

	mod := semilinear.Mod{Coef: []int{1}, M: 3, R: 1}
	nMod := 200
	for _, x := range []int{30, 31} {
		colour := func(i int) int {
			if i < x {
				return 0
			}
			return -1
		}
		counts := []int64{int64(x)}
		ok, iters, correct := 0, 0.0, 0
		for s := 0; s < seeds; s++ {
			e := semilinear.NewExact(mod, nMod, colour, cfg.BaseSeed+uint64(x*10+s))
			it, stable := e.RunUntilStable(colour, counts, 6000)
			if stable {
				ok++
			}
			iters += float64(it)
			want := mod.Eval(counts)
			if (e.Output() == nMod) == want && (want || e.Output() == 0) {
				correct++
			}
		}
		tb.AddRow(mod.Name(), fmt.Sprintf("x=%d", x), nMod,
			fmt.Sprintf("%d/%d", ok, seeds), iters/float64(seeds),
			fmt.Sprintf("%d/%d", correct, seeds))
	}
	return Result{Tables: []*stats.Table{tb}}
}

func runE10(cfg Config) Result {
	tb := stats.NewTable("E10 — Plurality consensus (§1.1 corollary)",
		"l", "n", "state bits (O(l²))", "correct winner", "iterations")
	ls := []int{3, 5}
	if cfg.Quick {
		ls = []int{3}
	}
	for _, l := range ls {
		prog := protocols.Plurality(l, 2)
		sp, err := prog.BuildSpace()
		if err != nil {
			panic(err)
		}
		n := 600
		correct := 0
		var iters []float64
		for s := 0; s < cfg.Seeds; s++ {
			e, err := frame.New(prog, n, cfg.BaseSeed+uint64(l*1000+s))
			if err != nil {
				panic(err)
			}
			// Near-tie: winner colour 1 (index 0) by a narrow margin.
			sizes := make([]int, l)
			base := n / (l + 1)
			rem := n
			for i := range sizes {
				sizes[i] = base - i // strictly decreasing
				rem -= sizes[i]
			}
			sizes[0] += rem // colour 1 takes the slack (clear winner)
			vars := make([]bitmask.Var, l)
			for i := range vars {
				vars[i], _ = e.Space.LookupVar(fmt.Sprintf("C%d", i+1))
			}
			e.SetInput(func(i int, st bitmask.State) bitmask.State {
				acc := 0
				for c := 0; c < l; c++ {
					acc += sizes[c]
					if i < acc {
						return vars[c].Set(st, true)
					}
				}
				return st
			})
			it, _ := e.RunUntil(func(e *frame.Executor) bool {
				if e.CountVar("W1") != n {
					return false
				}
				for c := 2; c <= l; c++ {
					if e.CountVar(fmt.Sprintf("W%d", c)) != 0 {
						return false
					}
				}
				return true
			}, 20)
			iters = append(iters, float64(it))
			okAll := e.CountVar("W1") == n
			for c := 2; c <= l; c++ {
				if e.CountVar(fmt.Sprintf("W%d", c)) != 0 {
					okAll = false
				}
			}
			if okAll {
				correct++
			}
		}
		tb.AddRow(l, n, sp.NumBitsUsed(),
			fmt.Sprintf("%d/%d", correct, cfg.Seeds),
			stats.Summarize(iters).Mean)
	}
	return Result{Tables: []*stats.Table{tb}}
}
