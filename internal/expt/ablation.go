package expt

import (
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/clock"
	"popkit/internal/engine"
	"popkit/internal/osc"
	"popkit/internal/rules"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "A1",
		Claim: "Ablation: the modulo-m clock needs its consensus repair — without it the population phase-splits and the clock stops ratcheting",
		Run:   runA1,
	})
	register(Experiment{
		ID:    "A2",
		Claim: "Ablation: the oscillator needs 1 ≤ #X ≤ n^(1−ε) — #X = 0 lets a species die, #X = Θ(n) suppresses dominance (Thm 5.1's hypothesis is tight)",
		Run:   runA2,
	})
	register(Experiment{
		ID:    "A3",
		Claim: "Ablation: the consensus confirmation gate — threshold 1 lets spurious early-crossers drag the counter",
		Run:   runA3,
	})
}

// ablationClockRun measures tick health for a clock variant.
func ablationClockRun(n int, opts clock.BaseOptions, seed uint64) (ticks, skips int, minPeak float64) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	b := clock.NewBaseWithOptions(sp, "C", o, 12, 6, o.Ruleset().TotalWeight(), opts)
	proto := engine.CompileProtocol(rules.Concat(o.Ruleset(), b.Rules()))
	rng := engine.NewRNG(seed)
	nx := int(math.Sqrt(float64(n)) / 2)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return o.InitState(s, osc.RandSpecies(rng), false)
	})
	r := engine.NewRunner(proto, pop, rng)
	slow := float64(proto.NumSlots()) / float64(o.Ruleset().TotalWeight())
	r.RunRounds(900 * slow)
	lastPhase := -1
	peak := map[int]float64{}
	horizon := 3000 * slow
	for elapsed := 0.0; elapsed < horizon; elapsed++ {
		r.RunRounds(1)
		counts := b.PhaseCounts(pop)
		bestJ, bestC := 0, 0
		for j, c := range counts {
			if c > bestC {
				bestJ, bestC = j, c
			}
		}
		frac := float64(bestC) / float64(n)
		if frac > peak[bestJ] {
			peak[bestJ] = frac
		}
		if frac > 0.6 && bestJ != lastPhase {
			if lastPhase >= 0 && bestJ != (lastPhase+1)%12 {
				skips++
			}
			ticks++
			lastPhase = bestJ
		}
	}
	minPeak = 1
	for _, p := range peak {
		if p < minPeak {
			minPeak = p
		}
	}
	if len(peak) == 0 {
		minPeak = 0
	}
	return ticks, skips, minPeak
}

func runA1(cfg Config) Result {
	n := 2000
	tb := stats.NewTable("A1 — Clock consensus ablation",
		"variant", "n", "ticks", "skips", "min peak agreement")
	for _, v := range []struct {
		name string
		opts clock.BaseOptions
	}{
		{"with consensus (calibrated)", clock.BaseOptions{}},
		{"consensus disabled", clock.BaseOptions{DisableConsensus: true}},
	} {
		ticks, skips, minPeak := ablationClockRun(n, v.opts, cfg.BaseSeed+11)
		tb.AddRow(v.name, n, ticks, skips, minPeak)
	}
	return Result{Tables: []*stats.Table{tb}}
}

func runA2(cfg Config) Result {
	n := 5000
	if cfg.Quick {
		n = 2000
	}
	tb := stats.NewTable("A2 — Oscillator #X regimes (Thm 5.1 hypothesis)",
		"#X", "dominance events", "cyclic", "a_min hit 0", "verdict")
	for _, nx := range []int{0, 1, int(math.Sqrt(float64(n)) / 2), n / 2} {
		sp := bitmask.NewSpace()
		x := sp.Bool("X")
		o := osc.New(sp, "O", x, osc.DefaultParams())
		proto := engine.CompileProtocol(o.Ruleset())
		rng := engine.NewRNG(cfg.BaseSeed + uint64(nx) + 3)
		pop := engine.NewDenseInit(n, func(i int) bitmask.State {
			var s bitmask.State
			if i < nx {
				s = x.Set(s, true)
			}
			return o.InitState(s, uint64(rng.Intn(3)), false)
		})
		r := engine.NewRunner(proto, pop, rng)
		probe := osc.NewProbe(o)
		extinct := false
		horizon := 200 * math.Log(float64(n))
		for r.Rounds() < horizon {
			r.RunRounds(1)
			probe.Observe(r)
			if o.MinSpecies(pop) == 0 {
				extinct = true
			}
		}
		verdict := "oscillates"
		switch {
		case len(probe.Events()) < 3 && nx >= n/2:
			verdict = "suppressed (X too large)"
		case extinct && nx == 0:
			verdict = "species extinct (no source)"
		case len(probe.Events()) < 3:
			verdict = "no sustained oscillation"
		}
		tb.AddRow(nx, len(probe.Events()), probe.CyclicOK(), extinct, verdict)
	}
	return Result{Tables: []*stats.Table{tb}}
}

func runA3(cfg Config) Result {
	n := 2000
	tb := stats.NewTable("A3 — Consensus confirmation-gate ablation",
		"confirm threshold", "n", "ticks", "skips", "min peak agreement")
	for _, th := range []int{1, 2, 3} {
		ticks, skips, minPeak := ablationClockRun(n, clock.BaseOptions{ConfirmThreshold: th}, cfg.BaseSeed+uint64(th))
		tb.AddRow(th, n, ticks, skips, minPeak)
	}
	return Result{Tables: []*stats.Table{tb}}
}
