package expt

import (
	"context"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// render produces the full deterministic output of the experiments: every
// table as Markdown plus every figure CSV (name-sorted).
func render(cfg Config, ids []string, t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		res := e.Run(cfg)
		for _, tb := range res.Tables {
			b.WriteString(tb.Markdown())
		}
		var names []string
		for name := range res.Figures {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b.WriteString(name + "\n" + res.Figures[name])
		}
	}
	return b.String()
}

// TestFleetWorkerCrossCheck is the popbench-path reproducibility gate: the
// experiments must render byte-identical output whether their replica
// fleets run on 1 worker or 8, because every replica's trajectory is a
// function of its seed alone.
func TestFleetWorkerCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check runs full experiments")
	}
	ids := []string{"E1", "E3", "E6", "E12", "E13"}
	base := Config{Seeds: 3, Quick: true, BaseSeed: 9}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	want := render(seq, ids, t)
	got := render(par, ids, t)
	if want != got {
		line := 1
		for i := 0; i < len(want) && i < len(got); i++ {
			if want[i] != got[i] {
				t.Fatalf("workers=8 output diverges from workers=1 at byte %d (line %d):\nseq: %.120q\npar: %.120q",
					i, line, tail(want, i), tail(got, i))
			}
			if want[i] == '\n' {
				line++
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", len(want), len(got))
	}
}

func tail(s string, i int) string {
	if i > len(s) {
		i = len(s)
	}
	return s[i:]
}

// TestConfigCtxCancelMidReplica: cancelling Config.Ctx while a replica is
// in flight must abort the sweep — not-yet-started replicas are skipped and
// replicate reports the cancellation (as its documented panic) instead of
// hanging or returning a silently truncated result set.
func TestConfigCtxCancelMidReplica(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Ctx: ctx, Workers: 1}

	var bodies atomic.Int64
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("replicate returned despite cancellation")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, context.Canceled.Error()) {
			t.Fatalf("panic does not carry the cancellation: %v", v)
		}
		// Replica 0 raced the cancel; with one worker nothing else may
		// have started.
		if got := bodies.Load(); got != 1 {
			t.Fatalf("%d replica bodies ran after cancellation, want 1", got)
		}
	}()
	replicate(cfg, "cancel", 16,
		func(s int) uint64 { return uint64(s) },
		func(s int, seed uint64) int {
			bodies.Add(1)
			if s == 0 {
				cancel() // cancelled mid-replica: the body is already running
			}
			return s
		})
}

// TestConfigCtxNilAndDone: a nil Ctx means Background (sweeps run), and a
// pre-cancelled Ctx skips every replica body.
func TestConfigCtxNilAndDone(t *testing.T) {
	got := replicate(Config{Workers: 2}, "nilctx", 4,
		func(s int) uint64 { return uint64(s) },
		func(s int, seed uint64) int { return s * 2 })
	for s, v := range got {
		if v != s*2 {
			t.Fatalf("slot %d = %d", s, v)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("pre-cancelled sweep did not abort")
		}
		if msg, ok := v.(string); !ok || !strings.Contains(msg, context.Canceled.Error()) {
			t.Fatalf("panic does not carry the cancellation: %v", v)
		}
	}()
	replicate(Config{Ctx: ctx, Workers: 2}, "donectx", 4,
		func(s int) uint64 { return uint64(s) },
		func(s int, seed uint64) int {
			t.Error("replica body ran under a pre-cancelled context")
			return 0
		})
}

// TestReplicateOrder checks replicate returns values in seed order and
// feeds each body its formula seed, independent of worker count.
func TestReplicateOrder(t *testing.T) {
	for _, workers := range []int{1, 5} {
		cfg := Config{Workers: workers}
		got := replicate(cfg, "order", 17,
			func(s int) uint64 { return 100 + uint64(s)*3 },
			func(s int, seed uint64) [2]uint64 { return [2]uint64{uint64(s), seed} })
		for s, v := range got {
			if v[0] != uint64(s) || v[1] != 100+uint64(s)*3 {
				t.Fatalf("workers=%d: slot %d holds replica %d seed %d", workers, s, v[0], v[1])
			}
		}
	}
}
