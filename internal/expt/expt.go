// Package expt defines the reproduction experiments E1–E12 and the figure
// series F1–F3 indexed in DESIGN.md. Each experiment regenerates one
// quantitative claim of the paper as a table (and optionally CSV series);
// both cmd/popbench and the repository's benchmarks drive this package, so
// the numbers in EXPERIMENTS.md are reproducible from either entry point.
package expt

import (
	"context"
	"fmt"
	"io"
	"sort"

	"popkit/internal/fleet"
	"popkit/internal/stats"
)

// Config scales the experiments.
type Config struct {
	// Ctx, when non-nil, cancels the replica fleets of multi-seed sweeps:
	// on cancellation not-yet-started replicas are skipped and the sweep
	// aborts with context.Canceled attached (popbench turns SIGINT into
	// this). Nil means context.Background().
	Ctx context.Context
	// Seeds is the number of independent runs per configuration point.
	Seeds int
	// Quick restricts every experiment to its smallest configuration —
	// used by `go test` so the full suite stays fast; popbench unsets it.
	Quick bool
	// BaseSeed offsets all RNG seeds for independent replications.
	BaseSeed uint64
	// Workers sizes the replica fleet that multi-seed experiments fan out
	// onto; values < 1 mean one worker per CPU. Results are identical for
	// any worker count: every replica derives all randomness from its own
	// seed (see replicate).
	Workers int
	// Progress, when non-nil, receives fleet progress reports (replicas
	// done / in-flight / ETA) during long sweeps.
	Progress io.Writer
	// ReplicaSink, when non-nil, receives every replica result as it
	// completes (e.g. a fleet.JSONLSink for machine-readable run logs).
	ReplicaSink fleet.ResultSink
}

// DefaultConfig is the popbench default.
func DefaultConfig() Config { return Config{Seeds: 10} }

// Result is one experiment's output: tables for EXPERIMENTS.md plus
// optional named CSV figure series.
type Result struct {
	Tables  []*stats.Table
	Figures map[string]string // name → CSV
	// Interactions counts the scheduler activations simulated across the
	// experiment's runs, including activations leapt over by the counted
	// kernels. popbench divides wall time by it to report ns/interaction
	// in BENCH_results.json.
	Interactions uint64
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Claim string
	Run   func(cfg Config) Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E1 < E2 < … < E12 < F1 < ….
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitID(id string) (string, int) {
	for i := 0; i < len(id); i++ {
		if id[i] >= '0' && id[i] <= '9' {
			var n int
			fmt.Sscanf(id[i:], "%d", &n)
			return id[:i], n
		}
	}
	return id, 0
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
