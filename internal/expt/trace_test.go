package expt

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/junta"
	"popkit/internal/obs"
)

// traceTwoMeet runs the two-meet X reduction on the auto-selected kernel,
// optionally traced, returning (final #X, rounds, trace).
func traceTwoMeet(n int64, seed uint64, tr *obs.Trace) (int64, float64, *obs.RuleStats) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	tm := junta.NewTwoMeet(sp, x)
	rs := tm.Rules()
	p := engine.CompileProtocol(rs)
	sX := tm.InitAgent(bitmask.State{})
	drv := NewDriver(rs, p, map[bitmask.State]int64{sX: n}, engine.NewRNG(seed))
	tx := drv.Track("X", bitmask.Is(x))
	var stats *obs.RuleStats
	if tr != nil {
		drv.SetTrace(tr, 3)
		stats = obs.NewRuleStats(p.NumRules())
		drv.SetStats(stats)
	}
	rounds, _ := drv.RunUntil(func() bool { return tx.Count() <= 4 }, 1e9)
	return tx.Count(), rounds, stats
}

// TestDriverTraceTimeline checks that a traced counted-kernel run emits
// "count" events carrying the tracked #X values, rate-limited to at most
// one per parallel round, with monotone round stamps.
func TestDriverTraceTimeline(t *testing.T) {
	tr := obs.NewTrace(1 << 16)
	finalX, rounds, stats := traceTwoMeet(5000, 77, tr)
	if finalX > 4 {
		t.Fatalf("two-meet did not converge: #X=%d", finalX)
	}
	evs := tr.Events()
	if len(evs) < 2 {
		t.Fatalf("traced run emitted %d events", len(evs))
	}
	// The timeline opens with the kernel-selection announcement: which
	// runner simulates the replica, and why selection picked it.
	if evs[0].Kind != "runner" || evs[0].Replica != 3 {
		t.Fatalf("first event is not the runner announcement: %+v", evs[0])
	}
	if evs[0].Name == "" || evs[0].Reason == "" {
		t.Fatalf("runner announcement missing kind or reason: %+v", evs[0])
	}
	evs = evs[1:]
	prev := -1.0
	for _, e := range evs {
		if e.Kind != "count" || e.Replica != 3 {
			t.Fatalf("unexpected event: %+v", e)
		}
		if e.Rounds < prev {
			t.Fatalf("rounds not monotone: %v after %v", e.Rounds, prev)
		}
		prev = e.Rounds
		if _, ok := e.Counts["X"]; !ok {
			t.Fatalf("event missing tracked count: %+v", e)
		}
	}
	// Rate limit: at most one event per started round.
	if float64(len(evs)) > rounds+2 {
		t.Fatalf("%d events for %.1f rounds — rate limit broken", len(evs), rounds)
	}
	// The timeline must actually show the #X decay.
	first, last := evs[0].Counts["X"], evs[len(evs)-1].Counts["X"]
	if first <= last {
		t.Fatalf("#X did not decay on the timeline: %d → %d", first, last)
	}
	if stats.Total() == 0 {
		t.Fatal("per-rule stats recorded no firings")
	}
}

// TestDriverTraceDeterminism is the core acceptance property at the driver
// level: attaching a trace must not change the trajectory.
func TestDriverTraceDeterminism(t *testing.T) {
	xPlain, rPlain, _ := traceTwoMeet(3000, 1234, nil)
	xTraced, rTraced, _ := traceTwoMeet(3000, 1234, obs.NewTrace(1<<16))
	if xPlain != xTraced || rPlain != rTraced {
		t.Fatalf("traced run diverged: (#X=%d, r=%v) vs (#X=%d, r=%v)",
			xPlain, rPlain, xTraced, rTraced)
	}
}
