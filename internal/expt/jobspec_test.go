package expt

import (
	"bytes"
	"encoding/json"
	"testing"

	"popkit/internal/engine"
)

func TestNormalizeCommon(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"valid", JobSpec{Protocol: "leader", N: 100}, true},
		{"defaults replicas", JobSpec{Protocol: "leader", N: 100, Replicas: 0}, true},
		{"missing protocol", JobSpec{N: 100}, false},
		{"n too small", JobSpec{Protocol: "leader", N: 1}, false},
		{"n too big", JobSpec{Protocol: "leader", N: 1 << 30}, false},
		{"too many replicas", JobSpec{Protocol: "leader", N: 100, Replicas: 9999}, false},
		{"negative gap", JobSpec{Protocol: "majority", N: 100, Gap: -1}, false},
		{"gap beyond n", JobSpec{Protocol: "majority", N: 100, Gap: 101}, false},
		{"negative rounds", JobSpec{Protocol: "leader", N: 100, MaxRounds: -1}, false},
		{"shard window", JobSpec{Protocol: "leader", N: 100, Replicas: 8, Start: 3}, true},
		{"negative start", JobSpec{Protocol: "leader", N: 100, Replicas: 8, Start: -1}, false},
		{"start at replicas", JobSpec{Protocol: "leader", N: 100, Replicas: 8, Start: 8}, false},
		{"start with job_id", JobSpec{Protocol: "leader", N: 100, Replicas: 8, Start: 3, JobID: "j"}, false},
	}
	for _, c := range cases {
		err := c.spec.NormalizeCommon(1_000_000, 256)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
		if c.ok && c.spec.Replicas < 1 {
			t.Errorf("%s: replicas not defaulted: %d", c.name, c.spec.Replicas)
		}
	}
}

func TestReplicaSeedMatchesEngine(t *testing.T) {
	for i := 0; i < 16; i++ {
		if ReplicaSeed(99, i) != engine.SplitSeed(99, uint64(i)) {
			t.Fatalf("ReplicaSeed diverges from engine.SplitSeed at replica %d", i)
		}
	}
}

// TestMarshalLineDeterministic: the line encoding must be byte-stable,
// newline-terminated, and sort its count keys (that is what makes CLI and
// HTTP output comparable with bytes.Equal).
func TestMarshalLineDeterministic(t *testing.T) {
	rec := ReplicaRecord{
		Replica: 3, Protocol: "leader", N: 128, Seed: 7,
		Iterations: 9, Rounds: 123.25, Converged: true,
		Counts: map[string]int64{"Z": 1, "A": 2, "M": 3},
	}
	a, err := rec.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := rec.MarshalLine()
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not stable:\n%s\n%s", a, b)
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("line not newline-terminated")
	}
	var round ReplicaRecord
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatalf("line does not round-trip: %v", err)
	}
	if round.Counts["A"] != 2 || round.Rounds != 123.25 {
		t.Fatalf("round-trip mismatch: %+v", round)
	}
	if i := bytes.Index(a, []byte(`"A"`)); i < 0 || i > bytes.Index(a, []byte(`"Z"`)) {
		t.Fatalf("count keys not sorted: %s", a)
	}
}
