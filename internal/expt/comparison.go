package expt

import (
	"fmt"
	"math"

	"popkit/internal/baseline"
	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/frame"
	"popkit/internal/protocols"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Claim: "Comparison vs prior work (§1.2): approx-majority fails on small gaps, 4-state exact majority pays Θ(n log n), coalescence LE pays Θ(n); the framework protocols stay polylog and correct",
		Run:   runE11,
	})
}

func runE11(cfg Config) Result {
	seeds := cfg.Seeds
	if seeds > 10 {
		seeds = 10
	}
	var interactions uint64

	// Table 1: majority correctness at gap 1 vs gap √(n log n).
	t1 := stats.NewTable("E11a — Majority correctness by gap",
		"protocol", "n", "gap", "correct runs", "mean rounds")
	nMaj := 10000
	if cfg.Quick {
		nMaj = 4000
	}
	bigGap := int(math.Sqrt(float64(nMaj) * math.Log(float64(nMaj))))
	for _, gap := range []int{1, bigGap} {
		// 3-state approximate majority, on the fastest admissible counted
		// runner; the stop condition reads incremental trackers so the
		// kernel skips its re-evaluation while no opinion count moves.
		am := baseline.NewApproxMajority()
		proto := engine.CompileProtocol(am.Rules())
		sA := am.A.Set(bitmask.State{}, true)
		sB := am.B.Set(bitmask.State{}, true)
		correct := 0
		var rounds []float64
		for s := 0; s < seeds; s++ {
			counts := map[bitmask.State]int64{sA: int64(nMaj/2 + gap), sB: int64(nMaj / 2)}
			drv := NewDriver(am.Rules(), proto, counts, engine.NewRNG(cfg.BaseSeed+uint64(gap+s)))
			ta := drv.Track("A", bitmask.Is(am.A))
			tb := drv.Track("B", bitmask.Is(am.B))
			r, ok := drv.RunUntil(func() bool {
				return ta.Count() == 0 || tb.Count() == 0
			}, 1e6)
			if ok && ta.Count() > 0 && tb.Count() == 0 {
				correct++
			}
			rounds = append(rounds, r)
			interactions += drv.Interactions()
		}
		t1.AddRow("3-state approx [AAE08a]", nMaj, gap,
			fmt.Sprintf("%d/%d", correct, seeds), stats.Summarize(rounds).Mean)

		// Our framework majority (framework semantics).
		prog := protocols.Majority(2)
		correct = 0
		rounds = rounds[:0]
		for s := 0; s < seeds; s++ {
			e, err := frame.New(prog, nMaj, cfg.BaseSeed+uint64(97*gap+s))
			if err != nil {
				panic(err)
			}
			a, _ := e.Space.LookupVar("A")
			b, _ := e.Space.LookupVar("B")
			nA := nMaj/2 + gap
			e.SetInput(func(i int, st bitmask.State) bitmask.State {
				if i < nA {
					return a.Set(st, true)
				}
				return b.Set(st, true)
			})
			e.RunIterations(3)
			if e.CountVar("YA") == nMaj {
				correct++
			}
			rounds = append(rounds, e.Rounds)
		}
		t1.AddRow("framework Majority (§3.2)", nMaj, gap,
			fmt.Sprintf("%d/%d", correct, seeds), stats.Summarize(rounds).Mean)
	}

	// Table 2: exact-majority time scaling at gap 1.
	t2 := stats.NewTable("E11b — Exact majority time at gap 1",
		"protocol", "n", "mean rounds", "rounds/(n ln n)", "rounds/ln³n")
	sizes := []int64{1000, 4000, 16000}
	if cfg.Quick {
		sizes = []int64{1000, 4000}
	}
	em := baseline.NewExactMajority4()
	emProto := engine.CompileProtocol(em.Rules())
	emA := em.Strong.Set(em.IsA.Set(bitmask.State{}, true), true)
	emB := em.Strong.Set(bitmask.State{}, true)
	for _, n := range sizes {
		var rounds []float64
		for s := 0; s < seeds && s < 5; s++ {
			counts := map[bitmask.State]int64{emA: n/2 + 1, emB: n / 2}
			drv := NewDriver(em.Rules(), emProto, counts, engine.NewRNG(cfg.BaseSeed+uint64(n)+uint64(s)))
			// The annihilation rule preserves the opinion split, so the
			// tracked count sits still through the whole Θ(n log n)
			// annihilation phase and the condition is skipped with it.
			ta := drv.Track("A", bitmask.Is(em.IsA))
			r, _ := drv.RunUntil(func() bool {
				a := ta.Count()
				return a == 0 || a == n
			}, 1e9)
			rounds = append(rounds, r)
			interactions += drv.Interactions()
		}
		m := stats.Summarize(rounds).Mean
		logn := math.Log(float64(n))
		t2.AddRow("4-state exact [DV12]", n, m, m/(float64(n)*logn), m/math.Pow(logn, 3))
	}
	for _, n := range sizes {
		prog := protocols.MajorityExact(2)
		var rounds []float64
		for s := 0; s < seeds && s < 3; s++ {
			e, err := frame.New(prog, int(n), cfg.BaseSeed+uint64(3*n)+uint64(s))
			if err != nil {
				panic(err)
			}
			a, _ := e.Space.LookupVar("A")
			b, _ := e.Space.LookupVar("B")
			at, _ := e.Space.LookupVar("At")
			bt, _ := e.Space.LookupVar("Bt")
			nA := int(n)/2 + 1
			e.SetInput(func(i int, st bitmask.State) bitmask.State {
				if i < nA {
					st = a.Set(st, true)
					return at.Set(st, true)
				}
				st = b.Set(st, true)
				return bt.Set(st, true)
			})
			// Measure w.h.p. convergence of the output (the fast path),
			// not token exhaustion (the slow certainty tail).
			e.RunIterations(3)
			rounds = append(rounds, e.Rounds)
		}
		m := stats.Summarize(rounds).Mean
		logn := math.Log(float64(n))
		t2.AddRow("framework MajorityExact (§6.2, w.h.p. path)", n, m, m/(float64(n)*logn), m/math.Pow(logn, 3))
	}

	// Table 3: leader election time scaling.
	t3 := stats.NewTable("E11c — Leader election time",
		"protocol", "n", "mean rounds", "rounds/n", "rounds/ln²n")
	cl := baseline.NewCoalescenceLeader()
	clProto := engine.CompileProtocol(cl.Rules())
	clL := cl.L.Set(bitmask.State{}, true)
	for _, n := range sizes {
		var rounds []float64
		for s := 0; s < seeds && s < 5; s++ {
			counts := map[bitmask.State]int64{clL: n}
			drv := NewDriver(cl.Rules(), clProto, counts, engine.NewRNG(cfg.BaseSeed+uint64(7*n)+uint64(s)))
			tl := drv.Track("L", bitmask.Is(cl.L))
			r, _ := drv.RunUntil(func() bool { return tl.Count() == 1 }, 1e9)
			rounds = append(rounds, r)
			interactions += drv.Interactions()
		}
		m := stats.Summarize(rounds).Mean
		logn := math.Log(float64(n))
		t3.AddRow("coalescence (folklore)", n, m, m/float64(n), m/(logn*logn))
	}
	prog := protocols.LeaderElection()
	for _, n := range sizes {
		var rounds []float64
		for s := 0; s < seeds && s < 5; s++ {
			e, err := frame.New(prog, int(n), cfg.BaseSeed+uint64(11*n)+uint64(s))
			if err != nil {
				panic(err)
			}
			e.RunUntil(func(e *frame.Executor) bool { return e.CountVar("L") == 1 }, 1000)
			rounds = append(rounds, e.Rounds)
		}
		m := stats.Summarize(rounds).Mean
		logn := math.Log(float64(n))
		t3.AddRow("framework LeaderElection (§3.1)", n, m, m/float64(n), m/(logn*logn))
	}

	return Result{Tables: []*stats.Table{t1, t2, t3}, Interactions: interactions}
}
