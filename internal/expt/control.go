package expt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/junta"
	"popkit/internal/rules"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Claim: "Two-meet reduction: #X ≤ n^(1−ε) within O(n^ε) rounds, #X ≥ 1 always (Prop 5.3)",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Claim: "k-level cascade: #X ≤ n^(1−ε) within polylog rounds; #X survives a while after (Prop 5.5)",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E12",
		Claim: "Always-correct trade-off: init time scales as n^ε as ε varies (Thm 2.4(ii)(b))",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "F2",
		Claim: "Figure: #X decay curves, two-meet vs cascade",
		Run:   runF2,
	})
}

// twoMeetTime measures rounds until #X < n^(1−eps) under the two-meet rule
// on the fastest admissible counted kernel. The stop condition reads an
// incremental tracker, so it is only re-evaluated when #X actually moves.
func twoMeetTime(n int64, eps float64, seed uint64) (rounds float64, finalX int64, interactions uint64) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	tm := junta.NewTwoMeet(sp, x)
	rs := tm.Rules()
	p := engine.CompileProtocol(rs)
	sX := tm.InitAgent(bitmask.State{})
	drv := NewDriver(rs, p, map[bitmask.State]int64{sX: n}, engine.NewRNG(seed))
	tx := drv.Track("X", bitmask.Is(x))
	target := math.Pow(float64(n), 1-eps)
	r, _ := drv.RunUntil(func() bool {
		return float64(tx.Count()) < target
	}, 1e12)
	return r, tx.Count(), drv.Interactions()
}

func runE6(cfg Config) Result {
	sizes := []int64{1e4, 1e6, 1e7}
	if cfg.Quick {
		sizes = []int64{1e4, 1e6}
	}
	seeds := cfg.Seeds
	if seeds > 5 {
		seeds = 5
	}
	tb := stats.NewTable("E6 — Two-meet X reduction (Prop 5.3)",
		"n", "ε", "rounds to #X<n^(1−ε)", "rounds / n^ε", "#X stays ≥ 1")
	var ns, times []float64
	var interactions uint64
	for _, n := range sizes {
		for _, eps := range []float64{0.25, 0.5} {
			n, eps := n, eps
			type rep struct {
				Rounds float64
				FinalX int64
				Inter  uint64
			}
			reps := replicate(cfg, fmt.Sprintf("E6/n=%d/eps=%v", n, eps), seeds,
				func(s int) uint64 { return cfg.BaseSeed + uint64(n) + uint64(s) },
				func(s int, seed uint64) rep {
					r, fx, in := twoMeetTime(n, eps, seed)
					return rep{Rounds: r, FinalX: fx, Inter: in}
				})
			var rs []float64
			alive := true
			for _, rp := range reps {
				rs = append(rs, rp.Rounds)
				interactions += rp.Inter
				if rp.FinalX < 1 {
					alive = false
				}
			}
			sm := stats.Summarize(rs)
			tb.AddRow(n, eps, sm.Mean, sm.Mean/math.Pow(float64(n), eps), alive)
			if eps == 0.5 {
				ns = append(ns, float64(n))
				times = append(times, sm.Mean)
			}
		}
	}
	e, r2 := stats.PolyExponent(ns, times)
	fit := stats.NewTable("E6 fit (ε=0.5)", "model", "exponent", "R²", "paper target")
	fit.AddRow("rounds ~ n^e", e, r2, "e ≈ 0.5")
	return Result{Tables: []*stats.Table{tb, fit}, Interactions: interactions}
}

// cascadeTime measures the cascade's threshold time and survival margin.
func cascadeTime(n int64, k int, eps float64, seed uint64) (rounds float64, surviveRounds float64, interactions uint64) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	c := junta.NewCascade(sp, "J", x, k)
	rs := c.Rules()
	p := engine.CompileProtocol(rs)
	sInit := c.InitAgent(bitmask.State{})
	drv := NewDriver(rs, p, map[bitmask.State]int64{sInit: n}, engine.NewRNG(seed))
	tx := drv.Track("X", bitmask.Is(x))
	target := math.Pow(float64(n), 1-eps)
	r, ok := drv.RunUntil(func() bool {
		return float64(tx.Count()) < target
	}, 1e9)
	if !ok {
		return math.NaN(), 0, drv.Interactions()
	}
	// Measure how long #X stays positive afterwards.
	r2, died := drv.RunUntil(func() bool { return tx.Count() == 0 }, 1e9)
	if !died {
		r2 = math.Inf(1)
	}
	return r, r2, drv.Interactions()
}

func runE7(cfg Config) Result {
	// The cascade's reset rule matches almost every interaction, so the
	// counted engine cannot leap here; sizes are kept modest.
	sizes := []int64{1e4, 3e4, 1e5}
	if cfg.Quick {
		sizes = []int64{1e4, 3e4}
	}
	seeds := cfg.Seeds
	if seeds > 5 {
		seeds = 5
	}
	tb := stats.NewTable("E7 — Cascade X reduction (Prop 5.5)",
		"n", "k", "rounds to #X<√n", "rounds / log^k n", "survival after (rounds)")
	var interactions uint64
	for _, n := range sizes {
		for _, k := range []int{1, 2} {
			n, k := n, k
			type rep struct {
				Rounds, Survive float64
				Inter           uint64
			}
			reps := replicate(cfg, fmt.Sprintf("E7/n=%d/k=%d", n, k), seeds,
				func(s int) uint64 { return cfg.BaseSeed + uint64(n) + uint64(k*100+s) },
				func(s int, seed uint64) rep {
					r, sr, in := cascadeTime(n, k, 0.5, seed)
					return rep{Rounds: r, Survive: sr, Inter: in}
				})
			var rs, surv []float64
			for _, rp := range reps {
				interactions += rp.Inter
				if !math.IsNaN(rp.Rounds) {
					rs = append(rs, rp.Rounds)
					surv = append(surv, rp.Survive)
				}
			}
			sm, ss := stats.Summarize(rs), stats.Summarize(surv)
			logk := math.Pow(math.Log(float64(n)), float64(k))
			tb.AddRow(n, k, sm.Mean, sm.Mean/logk, ss.Mean)
		}
	}
	return Result{Tables: []*stats.Table{tb}, Interactions: interactions}
}

func runE12(cfg Config) Result {
	n := int64(1e6)
	if cfg.Quick {
		n = 1e5
	}
	seeds := cfg.Seeds
	if seeds > 5 {
		seeds = 5
	}
	tb := stats.NewTable("E12 — Always-correct time/state trade-off (Thm 2.4(ii)(b))",
		"mechanism", "ε", "states (per-agent bits added)", "init rounds mean", "rounds/n^ε")
	var interactions uint64
	for _, eps := range []float64{0.25, 0.33, 0.5} {
		eps := eps
		type rep struct {
			Rounds float64
			Inter  uint64
		}
		reps := replicate(cfg, fmt.Sprintf("E12/eps=%v", eps), seeds,
			func(s int) uint64 { return cfg.BaseSeed + uint64(17*s) + uint64(eps*100) },
			func(s int, seed uint64) rep {
				r, _, in := twoMeetTime(n, eps, seed)
				return rep{Rounds: r, Inter: in}
			})
		var rs []float64
		for _, rp := range reps {
			rs = append(rs, rp.Rounds)
			interactions += rp.Inter
		}
		sm := stats.Summarize(rs)
		tb.AddRow("two-meet (O(1) states)", eps, 1, sm.Mean, sm.Mean/math.Pow(float64(n), eps))
	}
	// The fast alternative: the geometric junta election reaches
	// #X ≤ n^(1−ε) in O(log n) rounds with O(log n) states. The ruleset is
	// compiled once and shared read-only across the replica fleet.
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	g := junta.NewGeometric(sp, "G", x, 24)
	p := engine.CompileProtocol(g.Rules())
	nd := 100000
	rs := replicate(cfg, "E12/geometric", seeds,
		func(s int) uint64 { return cfg.BaseSeed + uint64(900+s) },
		func(s int, seed uint64) float64 {
			pop := engine.NewDenseInit(nd, func(int) bitmask.State {
				return g.InitAgent(bitmask.State{})
			})
			r := engine.NewRunner(p, pop, engine.NewRNG(seed))
			tr := r.Track("X", bitmask.Is(x))
			target := math.Pow(float64(nd), 0.75)
			rounds, _ := r.RunUntil(func(*engine.Runner) bool {
				return float64(tr.Count()) < target
			}, 1, 400*math.Log(float64(nd)))
			return rounds
		})
	sm := stats.Summarize(rs)
	// The dense runner pays one activation per step, so its interaction
	// count is exactly rounds × n.
	for _, r := range rs {
		interactions += uint64(r * float64(nd))
	}
	tb.AddRow("geometric junta (O(log n) states, Prop 5.4)", 0.25,
		sp.NumBitsUsed(), sm.Mean, sm.Mean/math.Log(float64(nd)))
	return Result{Tables: []*stats.Table{tb}, Interactions: interactions}
}

func runF2(cfg Config) Result {
	n := int64(1e5)
	if cfg.Quick {
		n = 3e4
	}
	// The figure contrasts the early decay shapes; cap the horizon well
	// past both mechanisms' n^(1-ε) crossings but before the cascade's
	// long residual-event tail.
	horizon := 4000.0
	var interactions uint64
	var b strings.Builder
	b.WriteString("rounds,twomeet_X,twomeet_species,cascade2_X,cascade2_species\n")
	// One sampled decay curve per mechanism. The stop condition is
	// tracker-gated, so each sample lands at the first #X change past its
	// round threshold — at which point #X still holds the threshold value,
	// since it was constant in between. The species column counts occupied
	// states via the counted population's histogram (satellite: HistogramInto
	// reuses one map across all samples).
	type point struct {
		X       int64
		Species int
	}
	curve := func(mk func(sp *bitmask.Space, x bitmask.Var) (*rules.Ruleset, bitmask.State)) map[float64]point {
		sp := bitmask.NewSpace()
		x := sp.Bool("X")
		rs, init := mk(sp, x)
		proto := engine.CompileProtocol(rs)
		drv := NewDriver(rs, proto, map[bitmask.State]int64{init: n}, engine.NewRNG(cfg.BaseSeed+5))
		tx := drv.Track("X", bitmask.Is(x))
		hist := make(map[bitmask.State]int64, 16)
		out := map[float64]point{}
		next := 1.0
		drv.RunUntil(func() bool {
			if drv.Rounds() < next {
				return false
			}
			xc := tx.Count()
			drv.HistogramInto(hist)
			out[next] = point{X: xc, Species: len(hist)}
			next *= 1.3
			return xc <= 16
		}, horizon)
		interactions += drv.Interactions()
		return out
	}
	tmCurve := curve(func(sp *bitmask.Space, x bitmask.Var) (*rules.Ruleset, bitmask.State) {
		tm := junta.NewTwoMeet(sp, x)
		return tm.Rules(), tm.InitAgent(bitmask.State{})
	})
	caCurve := curve(func(sp *bitmask.Space, x bitmask.Var) (*rules.Ruleset, bitmask.State) {
		ca := junta.NewCascade(sp, "J", x, 2)
		return ca.Rules(), ca.InitAgent(bitmask.State{})
	})
	var ts []float64
	for t := range tmCurve {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	for _, t := range ts {
		tm := tmCurve[t]
		ca, ok := caCurve[t]
		caX, caS := "", ""
		if ok {
			caX = fmt.Sprintf("%d", ca.X)
			caS = fmt.Sprintf("%d", ca.Species)
		}
		fmt.Fprintf(&b, "%.0f,%d,%d,%s,%s\n", t, tm.X, tm.Species, caX, caS)
	}
	tb := stats.NewTable("F2 — #X decay", "series", "points")
	tb.AddRow("decay CSV", len(ts))
	return Result{
		Tables:       []*stats.Table{tb},
		Figures:      map[string]string{"F2_x_decay.csv": b.String()},
		Interactions: interactions,
	}
}
