package expt

import (
	"context"
	"fmt"
	"time"

	"popkit/internal/engine"
	"popkit/internal/fleet"
)

// replicate runs body for every seed index in [0, seeds) across a replica
// fleet of cfg.Workers workers and returns the per-seed values in seed
// order. seedOf maps a seed index to the replica's RNG seed — experiments
// keep their historical formulas here, so fleet sweeps reproduce the exact
// trajectories of the sequential loops they replaced, for any worker count.
//
// body must derive all randomness from its seed argument and must not write
// shared state; aggregation happens on the ordered return values. A replica
// that fails (panic included — the fleet captures it) aborts the experiment
// with the replica's identity attached, matching the old loops' panic-on-
// error behavior.
func replicate[T any](cfg Config, tag string, seeds int, seedOf func(s int) uint64, body func(s int, seed uint64) T) []T {
	jobs := make([]fleet.Job, seeds)
	for s := 0; s < seeds; s++ {
		s := s
		seed := seedOf(s)
		jobs[s] = fleet.Job{
			ID:   s,
			Tag:  tag,
			Seed: seed,
			Run: func(context.Context, *engine.RNG) (any, error) {
				return body(s, seed), nil
			},
		}
	}
	opts := fleet.Options{Workers: cfg.Workers, Sink: cfg.ReplicaSink}
	if cfg.Progress != nil {
		opts.Progress = &fleet.Progress{W: cfg.Progress, Interval: 10 * time.Second, Label: tag}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := fleet.Run(ctx, jobs, opts)
	out := make([]T, seeds)
	for i, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("expt: replica %s[%d] (seed %d) failed: %v", tag, r.ID, r.Seed, r.Err))
		}
		out[i] = r.Value.(T)
	}
	return out
}
