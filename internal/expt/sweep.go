package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// SweepSpec is the body of POST /v1/sweep: a base JobSpec plus a grid of
// per-field value lists. The server expands the cartesian product of the
// grid axes over the base — each grid point is the base spec with the axis
// values substituted — normalizes every point, and resolves it through the
// content-addressed store with single-flight dedupe, so an overlapping grid
// only computes its miss set.
type SweepSpec struct {
	// Base supplies every field the grid doesn't vary. It must not carry a
	// job_id or start: sweep points are identified by content hash, not by
	// checkpoint identity.
	Base JobSpec `json:"base"`
	// Grid lists the varied fields. Empty axes leave the base value alone;
	// at least one axis (or none — a single-point sweep of the base) is fine.
	Grid SweepGrid `json:"grid"`
}

// SweepGrid is one axis per sweepable JobSpec field. Integer axes accept
// either an explicit list ([100, 1000, 10000]) or an inclusive range object
// ({"from": 0, "to": 9, "step": 1}).
type SweepGrid struct {
	Protocol  []string  `json:"protocol,omitempty"`
	N         *Axis     `json:"n,omitempty"`
	Seed      *Axis     `json:"seed,omitempty"`
	Replicas  *Axis     `json:"replicas,omitempty"`
	Gap       *Axis     `json:"gap,omitempty"`
	Colours   *Axis     `json:"colours,omitempty"`
	MaxIters  *Axis     `json:"max_iters,omitempty"`
	MaxRounds []float64 `json:"max_rounds,omitempty"`
}

// maxAxisValues bounds one axis's expansion independently of the whole-grid
// point cap, so a pathological range ({"from":0,"to":1e18}) fails at decode
// time instead of materializing memory.
const maxAxisValues = 65536

// Axis is a list of integer values for one grid dimension, decoded from
// either a JSON array or an inclusive {"from","to","step"} range.
type Axis struct {
	vals []int64
}

// AxisOf builds an axis from explicit values (client-side construction).
func AxisOf(vals ...int64) *Axis { return &Axis{vals: append([]int64(nil), vals...)} }

// Values returns the axis's expanded value list.
func (a *Axis) Values() []int64 {
	if a == nil {
		return nil
	}
	return a.vals
}

// UnmarshalJSON accepts [v, v, ...] or {"from": lo, "to": hi, "step": s}
// (step defaults to 1; the range is inclusive of "to" when the step lands
// on it).
func (a *Axis) UnmarshalJSON(data []byte) error {
	var list []int64
	if err := json.Unmarshal(data, &list); err == nil {
		if len(list) == 0 {
			return fmt.Errorf("axis list is empty")
		}
		if len(list) > maxAxisValues {
			return fmt.Errorf("axis lists %d values (max %d)", len(list), maxAxisValues)
		}
		a.vals = list
		return nil
	}
	var r struct {
		From *int64 `json:"from"`
		To   *int64 `json:"to"`
		Step int64  `json:"step"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("axis must be a value list or {from,to,step}: %v", err)
	}
	if r.From == nil || r.To == nil {
		return fmt.Errorf("axis range needs both \"from\" and \"to\"")
	}
	if r.Step == 0 {
		r.Step = 1
	}
	if r.Step < 0 {
		return fmt.Errorf("axis step must be > 0 (got %d)", r.Step)
	}
	if *r.To < *r.From {
		return fmt.Errorf("axis range has to < from (%d < %d)", *r.To, *r.From)
	}
	// The span is computed in uint64: to-from overflows int64 for wide
	// ranges (e.g. from=MinInt64, to=MaxInt64, where the naive count wraps
	// to 0 and slips past the cap). Given to >= from, the two's-complement
	// difference uint64(to)-uint64(from) is the exact unsigned span.
	span := uint64(*r.To) - uint64(*r.From)
	if span/uint64(r.Step) >= maxAxisValues {
		return fmt.Errorf("axis range expands to more than %d values (max %d)", maxAxisValues, maxAxisValues)
	}
	count := int(span/uint64(r.Step)) + 1
	a.vals = make([]int64, 0, count)
	// Bound the loop by count, not v <= to: for to near MaxInt64 the final
	// v += step wraps negative and a value-bounded loop never terminates.
	// (The wrapped v after the last append is unused.)
	v := *r.From
	for i := 0; i < count; i++ {
		a.vals = append(a.vals, v)
		v += r.Step
	}
	return nil
}

// MarshalJSON renders the expanded list form, so a decoded-and-re-encoded
// grid round-trips to the same points.
func (a *Axis) MarshalJSON() ([]byte, error) {
	if a == nil || a.vals == nil {
		return []byte("null"), nil
	}
	return json.Marshal(a.vals)
}

// Expand materializes the grid: the cartesian product over the non-empty
// axes in fixed order (protocol, n, seed, replicas, gap, colours,
// max_iters, max_rounds — the last axis varies fastest), each point being
// Base with the axis values substituted. Point order is deterministic, so
// the manifest a sweep streams is reproducible. max caps the total count.
//
// The returned specs are NOT yet normalized — the caller validates each
// point through its registry, so one bad point fails that point, not the
// whole sweep.
func (s SweepSpec) Expand(max int) ([]JobSpec, error) {
	if s.Base.JobID != "" {
		return nil, fmt.Errorf("sweep base must not set job_id (points are cache-identified, not journaled)")
	}
	if s.Base.Start != 0 {
		return nil, fmt.Errorf("sweep base must not set start")
	}
	out := []JobSpec{s.Base}
	var tooBig error

	// apply multiplies the current point set by one axis. The cap is
	// enforced before the product is allocated — len(out) > max/n is the
	// overflow-safe form of len(out)*n > max — so a tiny request body whose
	// axes multiply to billions of points fails fast instead of
	// materializing the grid (or overflowing len(out)*n with 4+ axes).
	apply := func(n int, set func(*JobSpec, int)) {
		if n == 0 || tooBig != nil {
			return
		}
		if max > 0 && len(out) > max/n {
			tooBig = fmt.Errorf("grid expands to more than %d points (%d so far × %d-value axis)", max, len(out), n)
			return
		}
		if len(out) > math.MaxInt/n {
			tooBig = fmt.Errorf("grid expansion overflows (%d points so far × %d-value axis)", len(out), n)
			return
		}
		next := make([]JobSpec, 0, len(out)*n)
		for _, base := range out {
			for i := 0; i < n; i++ {
				sp := base
				set(&sp, i)
				next = append(next, sp)
			}
		}
		out = next
	}

	g := s.Grid
	apply(len(g.Protocol), func(sp *JobSpec, i int) { sp.Protocol = g.Protocol[i] })
	apply(len(g.N.Values()), func(sp *JobSpec, i int) { sp.N = int(g.N.Values()[i]) })
	apply(len(g.Seed.Values()), func(sp *JobSpec, i int) { sp.Seed = uint64(g.Seed.Values()[i]) })
	apply(len(g.Replicas.Values()), func(sp *JobSpec, i int) { sp.Replicas = int(g.Replicas.Values()[i]) })
	apply(len(g.Gap.Values()), func(sp *JobSpec, i int) { sp.Gap = int(g.Gap.Values()[i]) })
	apply(len(g.Colours.Values()), func(sp *JobSpec, i int) { sp.Colours = int(g.Colours.Values()[i]) })
	apply(len(g.MaxIters.Values()), func(sp *JobSpec, i int) { sp.MaxIters = int(g.MaxIters.Values()[i]) })
	apply(len(g.MaxRounds), func(sp *JobSpec, i int) { sp.MaxRounds = g.MaxRounds[i] })

	if tooBig != nil {
		return nil, tooBig
	}
	return out, nil
}

// SweepResult is one manifest line of a sweep stream: the grid point's
// normalized spec, its content hash, and how the point was resolved —
// "hit" (served from the store), "miss" (computed by this request),
// "inflight" (coalesced onto a concurrent identical computation), or ""
// with Err set when the point was invalid or failed.
type SweepResult struct {
	Point   int     `json:"point"`
	Spec    JobSpec `json:"spec"`
	Hash    string  `json:"hash,omitempty"`
	Cache   string  `json:"cache,omitempty"`
	Records int     `json:"records"`
	Bytes   int64   `json:"bytes,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// SweepSummary is the trailing line of a sweep stream, wrapped on the wire
// as {"sweep": {...}} so it cannot be confused with a manifest line.
type SweepSummary struct {
	Points   int `json:"points"`
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Inflight int `json:"inflight"`
	Errors   int `json:"errors"`
}

// sweepSummaryDoc is the wire envelope of the summary line.
type sweepSummaryDoc struct {
	Sweep SweepSummary `json:"sweep"`
}

// MarshalSummaryLine renders the summary as its newline-terminated wire
// line; ParseSummaryLine is its client-side inverse (ok=false for manifest
// lines).
func MarshalSummaryLine(s SweepSummary) ([]byte, error) {
	b, err := json.Marshal(sweepSummaryDoc{Sweep: s})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseSummaryLine probes one sweep-stream line for the summary envelope.
func ParseSummaryLine(line []byte) (SweepSummary, bool) {
	var probe struct {
		Sweep *SweepSummary `json:"sweep"`
	}
	if err := json.Unmarshal(line, &probe); err != nil || probe.Sweep == nil {
		return SweepSummary{}, false
	}
	return *probe.Sweep, true
}
