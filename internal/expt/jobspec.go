package expt

import (
	"encoding/json"
	"fmt"

	"popkit/internal/engine"
)

// JobSpec describes one simulation job — a named protocol run for Replicas
// independent replicas — in the form shared by every entry point: the
// popserved HTTP service decodes it from request bodies, popsim builds it
// from flags, and both hand it to the same registry, which is what makes an
// HTTP run byte-identical to a CLI run with the same spec.
//
// All randomness of replica i derives from ReplicaSeed(Seed, i), so the
// result set is a pure function of the spec, independent of worker counts,
// scheduling, or which process executed it.
type JobSpec struct {
	// Protocol is the registry name (e.g. "leader", "exactmajority").
	Protocol string `json:"protocol"`
	// N is the population size.
	N int `json:"n"`
	// Seed is the root RNG seed; replica i runs with ReplicaSeed(Seed, i).
	Seed uint64 `json:"seed"`
	// Replicas is the number of independent runs; 0 means 1.
	Replicas int `json:"replicas,omitempty"`
	// Gap is the initial |A| − |B| margin (majority-family protocols).
	Gap int `json:"gap,omitempty"`
	// Colours is the colour count (plurality).
	Colours int `json:"colours,omitempty"`
	// MaxIters bounds framework protocols' outer iterations; 0 = default.
	MaxIters int `json:"max_iters,omitempty"`
	// MaxRounds bounds counted protocols' parallel time; 0 = default.
	MaxRounds float64 `json:"max_rounds,omitempty"`
}

// ReplicaSeed derives replica i's seed from the spec's root seed. It is
// engine.SplitSeed, re-exported so spec consumers need not import engine.
func ReplicaSeed(root uint64, replica int) uint64 {
	return engine.SplitSeed(root, uint64(replica))
}

// NormalizeCommon applies spec-level defaults and validates the fields every
// protocol shares. Protocol-specific validation (name lookup, per-protocol
// parameter ranges) lives in the serving registry.
func (s *JobSpec) NormalizeCommon(maxN, maxReplicas int) error {
	if s.Protocol == "" {
		return fmt.Errorf("protocol is required")
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 1 || s.Replicas > maxReplicas {
		return fmt.Errorf("replicas must be in [1, %d] (got %d)", maxReplicas, s.Replicas)
	}
	if s.N < 2 {
		return fmt.Errorf("n must be ≥ 2 (got %d)", s.N)
	}
	if s.N > maxN {
		return fmt.Errorf("n must be ≤ %d (got %d)", maxN, s.N)
	}
	if s.Gap < 0 || s.Gap > s.N {
		return fmt.Errorf("gap must be in [0, n] (got %d with n=%d)", s.Gap, s.N)
	}
	if s.MaxIters < 0 {
		return fmt.Errorf("max_iters must be ≥ 0 (got %d)", s.MaxIters)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("max_rounds must be ≥ 0 (got %g)", s.MaxRounds)
	}
	return nil
}

// ReplicaRecord is the result of one replica, the unit of the NDJSON wire
// format streamed by popserved and printed by popsim -ndjson. It carries no
// wall-clock fields on purpose: every field is a deterministic function of
// (protocol, n, seed, parameters), so two records from the same spec are
// byte-identical wherever they were computed.
type ReplicaRecord struct {
	Replica  int    `json:"replica"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	// Seed is the replica's derived seed (ReplicaSeed(root, Replica)).
	Seed uint64 `json:"seed"`
	// Iterations is the framework outer-iteration count (framework
	// protocols only).
	Iterations int `json:"iterations,omitempty"`
	// Rounds is the parallel time consumed.
	Rounds float64 `json:"rounds"`
	// Interactions counts simulated scheduler activations, including leapt
	// quiescent ones (counted protocols only).
	Interactions uint64 `json:"interactions,omitempty"`
	Converged    bool   `json:"converged"`
	// Counts holds the protocol's headline variable counts. encoding/json
	// sorts map keys, so the encoding is deterministic.
	Counts map[string]int64 `json:"counts,omitempty"`
	// Err reports a failed replica (panic, timeout, cancellation).
	Err string `json:"err,omitempty"`
}

// MarshalLine renders the record as one newline-terminated NDJSON line —
// the canonical encoding both the CLI and the HTTP service emit.
func (r ReplicaRecord) MarshalLine() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
