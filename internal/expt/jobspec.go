package expt

import (
	"encoding/json"
	"fmt"

	"popkit/internal/engine"
)

// JobSpec describes one simulation job — a named protocol run for Replicas
// independent replicas — in the form shared by every entry point: the
// popserved HTTP service decodes it from request bodies, popsim builds it
// from flags, and both hand it to the same registry, which is what makes an
// HTTP run byte-identical to a CLI run with the same spec.
//
// All randomness of replica i derives from ReplicaSeed(Seed, i), so the
// result set is a pure function of the spec, independent of worker counts,
// scheduling, or which process executed it.
type JobSpec struct {
	// Protocol is the registry name (e.g. "leader", "exactmajority").
	Protocol string `json:"protocol"`
	// N is the population size.
	N int `json:"n"`
	// Seed is the root RNG seed; replica i runs with ReplicaSeed(Seed, i).
	Seed uint64 `json:"seed"`
	// Replicas is the number of independent runs; 0 means 1.
	Replicas int `json:"replicas,omitempty"`
	// Start, when non-zero, restricts the job to replicas [Start, Replicas)
	// — the shard case: a cluster coordinator slices one logical job's
	// replica range across workers by dispatching the same spec with
	// different [Start, Replicas) windows. Replica i's record is unchanged
	// by the slicing (its whole RNG stream derives from ReplicaSeed(Seed,
	// i)), so concatenating shard streams in replica order is byte-identical
	// to the unsharded run. Incompatible with JobID: shards are re-dispatched
	// on failure, not journaled.
	Start int `json:"start,omitempty"`
	// Gap is the initial |A| − |B| margin (majority-family protocols).
	Gap int `json:"gap,omitempty"`
	// Colours is the colour count (plurality).
	Colours int `json:"colours,omitempty"`
	// MaxIters bounds framework protocols' outer iterations; 0 = default.
	MaxIters int `json:"max_iters,omitempty"`
	// MaxRounds bounds counted protocols' parallel time; 0 = default.
	MaxRounds float64 `json:"max_rounds,omitempty"`
	// JobID, when non-empty, names the job for checkpoint/resume: a
	// journal-enabled popserved appends each completed replica record to a
	// per-ID journal, and a later POST with the same ID (and an identical
	// spec) re-streams the journaled prefix and computes only the rest. It
	// never appears in replica records, so output stays byte-identical
	// with or without it. Client-chosen; charset [A-Za-z0-9._-], ≤ 64
	// bytes, and not "." or ".." (the ID becomes a file name).
	JobID string `json:"job_id,omitempty"`
}

// ReplicaSeed derives replica i's seed from the spec's root seed. It is
// engine.SplitSeed, re-exported so spec consumers need not import engine.
func ReplicaSeed(root uint64, replica int) uint64 {
	return engine.SplitSeed(root, uint64(replica))
}

// NormalizeCommon applies spec-level defaults and validates the fields every
// protocol shares. Protocol-specific validation (name lookup, per-protocol
// parameter ranges) lives in the serving registry.
func (s *JobSpec) NormalizeCommon(maxN, maxReplicas int) error {
	if s.Protocol == "" {
		return fmt.Errorf("protocol is required")
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 1 || s.Replicas > maxReplicas {
		return fmt.Errorf("replicas must be in [1, %d] (got %d)", maxReplicas, s.Replicas)
	}
	if s.Start < 0 || s.Start >= s.Replicas {
		return fmt.Errorf("start must be in [0, replicas) (got %d with replicas=%d)", s.Start, s.Replicas)
	}
	if s.Start != 0 && s.JobID != "" {
		return fmt.Errorf("start cannot be combined with job_id (shards are re-dispatched, not journaled)")
	}
	if s.N < 2 {
		return fmt.Errorf("n must be ≥ 2 (got %d)", s.N)
	}
	if s.N > maxN {
		return fmt.Errorf("n must be ≤ %d (got %d)", maxN, s.N)
	}
	if s.Gap < 0 || s.Gap > s.N {
		return fmt.Errorf("gap must be in [0, n] (got %d with n=%d)", s.Gap, s.N)
	}
	if s.MaxIters < 0 {
		return fmt.Errorf("max_iters must be ≥ 0 (got %d)", s.MaxIters)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("max_rounds must be ≥ 0 (got %g)", s.MaxRounds)
	}
	if err := validJobID(s.JobID); err != nil {
		return err
	}
	return nil
}

// validJobID enforces the JobID contract ("" is valid: no checkpointing).
// The ID is used as a journal file name, so the charset excludes anything
// with path or shell meaning.
func validJobID(id string) error {
	if id == "" {
		return nil
	}
	if len(id) > 64 {
		return fmt.Errorf("job_id longer than 64 bytes")
	}
	if id == "." || id == ".." {
		return fmt.Errorf("job_id must not be %q", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("job_id contains %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	return nil
}

// ReplicaRecord is the result of one replica, the unit of the NDJSON wire
// format streamed by popserved and printed by popsim -ndjson. It carries no
// wall-clock fields on purpose: every field is a deterministic function of
// (protocol, n, seed, parameters), so two records from the same spec are
// byte-identical wherever they were computed.
type ReplicaRecord struct {
	Replica  int    `json:"replica"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	// Seed is the replica's derived seed (ReplicaSeed(root, Replica)).
	Seed uint64 `json:"seed"`
	// Iterations is the framework outer-iteration count (framework
	// protocols only).
	Iterations int `json:"iterations,omitempty"`
	// Rounds is the parallel time consumed.
	Rounds float64 `json:"rounds"`
	// Interactions counts simulated scheduler activations, including leapt
	// quiescent ones (counted protocols only).
	Interactions uint64 `json:"interactions,omitempty"`
	Converged    bool   `json:"converged"`
	// Runner names the engine kernel that simulated the replica, and
	// RunnerReason why selection picked it (capability or crossover) —
	// both deterministic functions of (protocol, n), recorded so results
	// are auditable for which code path produced them.
	Runner       string `json:"runner,omitempty"`
	RunnerReason string `json:"runner_reason,omitempty"`
	// Counts holds the protocol's headline variable counts. encoding/json
	// sorts map keys, so the encoding is deterministic.
	Counts map[string]int64 `json:"counts,omitempty"`
	// Err reports a failed replica (panic, timeout, cancellation).
	Err string `json:"err,omitempty"`
	// ErrKind classifies Err: "panic", "timeout", "cancelled", or "error".
	ErrKind string `json:"err_kind,omitempty"`
	// Stack is the captured goroutine stack of a panicked replica, so a
	// crash inside a job's replica fan-out is debuggable from the record
	// alone. Stacks
	// contain addresses and goroutine IDs, so two records of the same
	// panic need not be byte-identical — but error records only exist on
	// failures, which the retry/resume layers exist to eliminate.
	Stack string `json:"stack,omitempty"`
}

// MarshalLine renders the record as one newline-terminated NDJSON line —
// the canonical encoding both the CLI and the HTTP service emit.
func (r ReplicaRecord) MarshalLine() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
