package expt

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "A3", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "F1", "F2", "F3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("position %d: %s, want %s", i, all[i].ID, id)
		}
		if all[i].Claim == "" {
			t.Errorf("%s has no claim", id)
		}
	}
	if _, ok := Lookup("E7"); !ok {
		t.Error("Lookup(E7) failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) found a ghost")
	}
}

// TestQuickExperiments smoke-runs the cheap experiments end to end in
// Quick mode with few seeds, checking each produces populated tables.
func TestQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are long")
	}
	cfg := Config{Seeds: 2, Quick: true}
	for _, id := range []string{"E1", "E2", "E6", "E8", "E10", "E12", "F2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Lookup(id)
			if !ok {
				t.Fatal("missing experiment")
			}
			res := e.Run(cfg)
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range res.Tables {
				if tb.NumRows() == 0 {
					t.Errorf("table %q empty", tb.Title)
				}
				if !strings.Contains(tb.Markdown(), "|") {
					t.Errorf("table %q renders nothing", tb.Title)
				}
			}
			for name, csv := range res.Figures {
				if len(csv) < 10 {
					t.Errorf("figure %s nearly empty", name)
				}
			}
		})
	}
}
