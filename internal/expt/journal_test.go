package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalSpec() JobSpec {
	return JobSpec{Protocol: "exactmajority", N: 2000, Seed: 42, Replicas: 4, Gap: 1, JobID: "j1"}
}

func journalRec(i int) ReplicaRecord {
	return ReplicaRecord{
		Replica: i, Protocol: "exactmajority", N: 2000,
		Seed: ReplicaSeed(42, i), Rounds: float64(100 + i), Converged: true,
		Counts: map[string]int64{"A": int64(2000 - i)},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j1.ndjson")
	spec := journalSpec()

	j, replay, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 || j.Next() != 0 {
		t.Fatalf("fresh journal: replay=%d next=%d", len(replay), j.Next())
	}
	var want bytes.Buffer
	for i := 0; i < 3; i++ {
		rec := journalRec(i)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		line, _ := rec.MarshalLine()
		want.Write(line)
	}
	j.Close()

	j2, replay, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Next() != 3 {
		t.Fatalf("reloaded next = %d, want 3", j2.Next())
	}
	if got := bytes.Join(replay, nil); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("replay bytes differ:\ngot %s\nwant %s", got, want.Bytes())
	}
}

func TestJournalSkipsFailedAndOutOfOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j1.ndjson")
	j, _, err := LoadJournal(path, journalSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(journalRec(0))

	bad := journalRec(1)
	bad.Err = "replica panicked: boom"
	j.Append(bad)           // failed: ignored
	j.Append(journalRec(2)) // out of order: ignored
	j.Append(journalRec(1)) // the real next
	if j.Next() != 2 {
		t.Fatalf("next = %d, want 2", j.Next())
	}

	_, replay, err := LoadJournal(path+"x", journalSpec()) // unrelated fresh file
	if err != nil || len(replay) != 0 {
		t.Fatalf("fresh: %v %d", err, len(replay))
	}
}

func TestJournalSpecMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j1.ndjson")
	j, _, err := LoadJournal(path, journalSpec())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := journalSpec()
	other.Seed = 43
	if _, _, err := LoadJournal(path, other); err == nil || !strings.Contains(err.Error(), "different job spec") {
		t.Fatalf("spec mismatch not detected: %v", err)
	}
}

// TestJournalTornTailTruncated simulates a kill -9 mid-append: the torn
// final line must be discarded and the journal resume from the last intact
// record.
func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j1.ndjson")
	spec := journalSpec()
	j, _, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRec(0))
	j.Append(journalRec(1))
	j.Close()

	// Tear the tail: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"replica":2,"protocol":"exactmaj`)
	f.Close()

	j2, replay, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Next() != 2 || len(replay) != 2 {
		t.Fatalf("after torn tail: next=%d replay=%d, want 2/2", j2.Next(), len(replay))
	}
	// The journal must have been truncated so new appends stay parseable.
	if err := j2.Append(journalRec(2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, replay, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Next() != 3 || len(replay) != 3 {
		t.Fatalf("after repair: next=%d replay=%d, want 3/3", j3.Next(), len(replay))
	}
}

// TestJournalCorruptMidFileStopsPrefix: garbage in the middle ends the
// durable prefix there, even if later lines parse.
func TestJournalCorruptMidFileStopsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j1.ndjson")
	spec := journalSpec()
	j, _, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRec(0))
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("not json\n")
	line, _ := journalRec(2).MarshalLine()
	f.Write(line)
	f.Close()

	j2, replay, err := LoadJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Next() != 1 || len(replay) != 1 {
		t.Fatalf("next=%d replay=%d, want 1/1", j2.Next(), len(replay))
	}
}

func TestJobIDValidation(t *testing.T) {
	ok := []string{"", "job-1", "a.b_c-D9", strings.Repeat("x", 64)}
	for _, id := range ok {
		spec := JobSpec{Protocol: "leader", N: 100, JobID: id}
		if err := spec.NormalizeCommon(1000, 10); err != nil {
			t.Errorf("job_id %q rejected: %v", id, err)
		}
	}
	bad := []string{"a/b", "..", ".", "a b", strings.Repeat("x", 65), "j\x00b"}
	for _, id := range bad {
		spec := JobSpec{Protocol: "leader", N: 100, JobID: id}
		if err := spec.NormalizeCommon(1000, 10); err == nil {
			t.Errorf("job_id %q accepted", id)
		}
	}
}
