package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Journal is the durable completed-replica log behind job checkpoint and
// resume: one file per job ID holding the job's normalized spec on the
// first line followed by the contiguous prefix of successful replica
// records, each stored as the exact NDJSON line the stream emitted. Because
// every record is a pure function of (spec, replica index), re-streaming
// the stored bytes and recomputing the remainder reproduces the fault-free
// stream byte for byte — a popserved crash, kill -9 included, costs only
// the replicas past the journaled prefix.
//
// Only the contiguous successful prefix is durable: failed records and
// out-of-order arrivals are ignored by Append, so a resumed job recomputes
// everything from the first gap. Each accepted record is fsynced before
// Append returns; a torn trailing write from a crash is detected and
// truncated away on load.
type Journal struct {
	f    *os.File
	next int
}

// LoadJournal opens (creating if absent) the journal at path for spec. For
// an existing journal it verifies the stored spec matches, discards any
// torn tail, and returns the journaled record lines for re-streaming; the
// caller resumes computation at replica len(replay).
//
// The spec must already be normalized: spec identity is byte equality of
// the canonical JSON encodings, so defaults must have been applied
// identically on both writes and loads.
func LoadJournal(path string, spec JobSpec) (j *Journal, replay [][]byte, err error) {
	header, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		if _, err := f.Write(append(header, '\n')); err != nil {
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, nil, err
		}
		return &Journal{f: f}, nil, nil
	}

	stored, rest, ok := cutLine(data)
	if !ok {
		// Even the header is torn — the job never journaled a record, so
		// restart the file from scratch.
		if err := rewrite(f, append(header, '\n')); err != nil {
			return nil, nil, err
		}
		return &Journal{f: f}, nil, nil
	}
	if !bytes.Equal(stored, header) {
		return nil, nil, fmt.Errorf("journal %s holds a different job spec (stored %s)", path, stored)
	}

	valid := len(stored) + 1
	for len(rest) > 0 {
		line, tail, ok := cutLine(rest)
		if !ok {
			break // torn trailing write
		}
		var rec ReplicaRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Replica != len(replay) || rec.Err != "" {
			break // corrupt or out-of-order: the prefix ends here
		}
		replay = append(replay, append(line, '\n'))
		valid += len(line) + 1
		rest = tail
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		return nil, nil, err
	}
	return &Journal{f: f, next: len(replay)}, replay, nil
}

// cutLine splits data at the first newline; ok is false when no complete
// line remains (a torn write).
func cutLine(data []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return data[:i], data[i+1:], true
}

// rewrite truncates the file and replaces its contents.
func rewrite(f *os.File, content []byte) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		return err
	}
	return f.Sync()
}

// Next returns the index of the first replica not yet journaled.
func (j *Journal) Next() int { return j.next }

// Append journals one record. Records that are failed (Err set) or not the
// next expected replica are ignored without error — the journal only ever
// grows by the contiguous successful prefix. The record is durable (synced)
// when Append returns nil.
func (j *Journal) Append(rec ReplicaRecord) error {
	line, err := rec.MarshalLine()
	if err != nil {
		return err
	}
	return j.AppendLine(rec, line)
}

// AppendLine journals rec with its exact wire bytes (newline-terminated) —
// the consumer case, where the line was received from a stream and must be
// re-streamed verbatim on resume rather than re-marshalled. The same skip
// rules as Append apply.
func (j *Journal) AppendLine(rec ReplicaRecord, line []byte) error {
	if rec.Err != "" || rec.Replica != j.next {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.next++
	return nil
}

// Close releases the journal file. The journal is left on disk: a completed
// job's journal answers replays of the same job ID, and a partial one seeds
// the next resume.
func (j *Journal) Close() error { return j.f.Close() }
