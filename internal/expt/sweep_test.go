package expt

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestAxisDecodesListAndRange(t *testing.T) {
	var a Axis
	if err := json.Unmarshal([]byte(`[100, 1000, 10000]`), &a); err != nil {
		t.Fatal(err)
	}
	if want := []int64{100, 1000, 10000}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("list axis = %v, want %v", a.Values(), want)
	}
	if err := json.Unmarshal([]byte(`{"from":0,"to":9,"step":3}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := []int64{0, 3, 6, 9}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("range axis = %v, want %v", a.Values(), want)
	}
	// step defaults to 1; the range is inclusive.
	if err := json.Unmarshal([]byte(`{"from":5,"to":7}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := []int64{5, 6, 7}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("default-step axis = %v, want %v", a.Values(), want)
	}
}

func TestAxisRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		`[]`,                          // empty list
		`{"from":3,"to":1}`,           // to < from
		`{"from":0,"to":5,"step":-1}`, // negative step
		`{"to":5}`,                    // missing from
		`{"from":0,"to":99999999999}`, // over maxAxisValues
		`{"from":0,"to":5,"bogus":1}`, // unknown field
		`"nope"`,                      // wrong type entirely
		// to-from overflows int64: the naive count wraps to 0 and would
		// slip past the cap into a ~2^64-value expansion.
		`{"from":-9223372036854775808,"to":9223372036854775807}`,
		`{"from":-9223372036854775808,"to":9223372036854775807,"step":3}`,
		`{"from":-1,"to":9223372036854775807}`,
	} {
		var a Axis
		if err := json.Unmarshal([]byte(bad), &a); err == nil {
			t.Errorf("axis %s decoded without error (%d values)", bad, len(a.Values()))
		}
	}
}

func TestAxisRangeAtInt64Edges(t *testing.T) {
	// to at MaxInt64: a value-bounded loop (v <= to) never terminates
	// because the final v += step wraps negative; the count-bounded loop
	// must yield exactly the two values.
	var a Axis
	if err := json.Unmarshal([]byte(`{"from":9223372036854775806,"to":9223372036854775807}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := []int64{9223372036854775806, 9223372036854775807}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("edge axis = %v, want %v", a.Values(), want)
	}
	// Same edge with a step that overshoots to.
	if err := json.Unmarshal([]byte(`{"from":9223372036854775805,"to":9223372036854775807,"step":2}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := []int64{9223372036854775805, 9223372036854775807}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("edge step axis = %v, want %v", a.Values(), want)
	}
	// from at MinInt64 is fine as long as the span is small.
	if err := json.Unmarshal([]byte(`{"from":-9223372036854775808,"to":-9223372036854775807}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := []int64{-9223372036854775808, -9223372036854775807}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("min-edge axis = %v, want %v", a.Values(), want)
	}
}

func TestAxisRoundTripsAsList(t *testing.T) {
	var a Axis
	if err := json.Unmarshal([]byte(`{"from":1,"to":3}`), &a); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `[1,2,3]` {
		t.Fatalf("axis re-encodes as %s, want [1,2,3]", out)
	}
}

func TestExpandCartesianOrder(t *testing.T) {
	sw := SweepSpec{
		Base: JobSpec{Protocol: "leader", Replicas: 2},
		Grid: SweepGrid{
			N:    AxisOf(100, 200),
			Seed: AxisOf(1, 2, 3),
		},
	}
	specs, err := sw.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded %d points, want 6", len(specs))
	}
	// Fixed axis order with the last axis varying fastest.
	want := []struct {
		n    int
		seed uint64
	}{{100, 1}, {100, 2}, {100, 3}, {200, 1}, {200, 2}, {200, 3}}
	for i, w := range want {
		if specs[i].N != w.n || specs[i].Seed != w.seed {
			t.Fatalf("point %d = (n=%d seed=%d), want (n=%d seed=%d)",
				i, specs[i].N, specs[i].Seed, w.n, w.seed)
		}
		if specs[i].Protocol != "leader" || specs[i].Replicas != 2 {
			t.Fatalf("point %d lost base fields: %+v", i, specs[i])
		}
	}
}

func TestExpandEmptyGridIsSinglePoint(t *testing.T) {
	sw := SweepSpec{Base: JobSpec{Protocol: "leader", N: 100}}
	specs, err := sw.Expand(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Protocol != "leader" || specs[0].N != 100 {
		t.Fatalf("empty grid expanded to %+v, want just the base", specs)
	}
}

func TestExpandEnforcesPointCap(t *testing.T) {
	sw := SweepSpec{
		Base: JobSpec{Protocol: "leader"},
		Grid: SweepGrid{N: AxisOf(1, 2, 3), Seed: AxisOf(1, 2, 3)},
	}
	if _, err := sw.Expand(8); err == nil {
		t.Fatal("9-point grid passed an 8-point cap")
	}
	if _, err := sw.Expand(9); err != nil {
		t.Fatalf("9-point grid failed a 9-point cap: %v", err)
	}
}

func TestExpandFailsFastWithoutMaterializing(t *testing.T) {
	// Two full-width axes multiply to 65536² ≈ 4.3e9 points. The cap must
	// trip before the product is allocated — if Expand materializes first,
	// this test OOMs (hundreds of GB) instead of failing cleanly.
	wide := make([]int64, maxAxisValues)
	for i := range wide {
		wide[i] = int64(i)
	}
	sw := SweepSpec{
		Base: JobSpec{Protocol: "leader"},
		Grid: SweepGrid{N: AxisOf(wide...), Seed: AxisOf(wide...)},
	}
	if _, err := sw.Expand(1024); err == nil {
		t.Fatal("4.3e9-point grid passed a 1024-point cap")
	}
}

func TestExpandRejectsJobIDAndStart(t *testing.T) {
	if _, err := (SweepSpec{Base: JobSpec{Protocol: "leader", JobID: "x"}}).Expand(0); err == nil {
		t.Fatal("base with job_id accepted")
	}
	if _, err := (SweepSpec{Base: JobSpec{Protocol: "leader", Start: 1}}).Expand(0); err == nil {
		t.Fatal("base with start accepted")
	}
}

func TestSummaryLineRoundTrip(t *testing.T) {
	sum := SweepSummary{Points: 6, Hits: 2, Misses: 3, Inflight: 1}
	line, err := MarshalSummaryLine(sum)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ParseSummaryLine(line)
	if !ok || got != sum {
		t.Fatalf("summary round-trip = (%+v, %v), want (%+v, true)", got, ok, sum)
	}
	// A manifest line must not parse as a summary.
	manifest, _ := json.Marshal(SweepResult{Point: 0, Cache: "hit"})
	if _, ok := ParseSummaryLine(manifest); ok {
		t.Fatal("manifest line parsed as a summary")
	}
}
