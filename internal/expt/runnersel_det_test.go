package expt

import (
	"testing"

	"popkit/internal/baseline"
	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

// TestDriverDenseLayoutDeterministic guards the dense runner's initial
// layout: the agent array must be a pure function of the counts map, not of
// Go's randomized map iteration order. (n below denseCrossover forces the
// dense runner; two same-seed drivers must walk identical trajectories.)
func TestDriverDenseLayoutDeterministic(t *testing.T) {
	em := baseline.NewExactMajority4()
	emA := em.Strong.Set(em.IsA.Set(bitmask.State{}, true), true)
	emB := em.Strong.Set(bitmask.State{}, true)
	proto := engine.CompileProtocol(em.Rules())

	run := func() (float64, uint64) {
		drv := NewDriver(em.Rules(), proto,
			map[bitmask.State]int64{emA: 151, emB: 149}, engine.NewRNG(42))
		if drv.Kind != RunnerDense {
			t.Fatalf("expected the dense runner at n=300, got %v", drv.Kind)
		}
		ta := drv.Track("A", bitmask.Is(em.IsA))
		rounds, ok := drv.RunUntil(func() bool {
			a := ta.Count()
			return a == 0 || a == 300
		}, 1e6)
		if !ok {
			t.Fatal("run did not converge")
		}
		return rounds, drv.Interactions()
	}

	r0, i0 := run()
	for trial := 0; trial < 8; trial++ {
		if r, i := run(); r != r0 || i != i0 {
			t.Fatalf("same-seed trajectory diverged: (%v, %d) vs (%v, %d)", r, i, r0, i0)
		}
	}
}
