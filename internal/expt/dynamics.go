package expt

import (
	"fmt"
	"math"
	"strings"

	"popkit/internal/bitmask"
	"popkit/internal/clock"
	"popkit/internal/engine"
	"popkit/internal/osc"
	"popkit/internal/rules"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Claim: "Oscillator escapes the centre in O(log n) rounds and oscillates with window Θ(log n) in cyclic order (Thm 5.1)",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Claim: "Base modulo-m phase clock ticks cyclically with ≥90% peak agreement and Θ(log n) spacing (Thm 5.2)",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Claim: "Clock hierarchy: level j+1 runs Θ(log n) times slower than level j (§5.3)",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "F1",
		Claim: "Figure: oscillator species trajectories",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F3",
		Claim: "Figure: two-level hierarchy phase traces",
		Run:   runF3,
	})
}

// buildOscRun assembles an oscillator population with nx sources.
func buildOscRun(n, nx int, seed uint64) (*osc.Oscillator, *engine.Runner) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	proto := engine.CompileProtocol(o.Ruleset())
	rng := engine.NewRNG(seed)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return o.InitState(s, uint64(rng.Intn(3)), false)
	})
	return o, engine.NewRunner(proto, pop, rng)
}

func runE3(cfg Config) Result {
	sizes := []int{2000, 20000, 200000}
	if cfg.Quick {
		sizes = []int{2000, 20000}
	}
	seeds := cfg.Seeds
	if seeds > 5 {
		seeds = 5
	}
	tb := stats.NewTable("E3 — Oscillator dynamics (Thm 5.1)",
		"n", "#X", "escape rounds (/ln n)", "window rounds (/ln n)", "cyclic order", "a_min range during osc.")
	type e3Rep struct {
		Escape     float64
		HasEscape  bool
		Windows    []float64
		Cyclic     bool
		MinA, MaxA int
	}
	for _, n := range sizes {
		n := n
		nx := int(math.Sqrt(float64(n)) / 2)
		if nx < 1 {
			nx = 1
		}
		reps := replicate(cfg, fmt.Sprintf("E3/n=%d", n), seeds,
			func(s int) uint64 { return cfg.BaseSeed + uint64(n+s) },
			func(s int, seed uint64) e3Rep {
				o, r := buildOscRun(n, nx, seed)
				probe := osc.NewProbe(o)
				rep := e3Rep{MinA: n, MaxA: 0}
				budget := 120 * math.Log(float64(n))
				for r.Rounds() < budget && len(probe.Events()) < 8 {
					r.RunRounds(1)
					probe.Observe(r)
					if len(probe.Events()) >= 2 {
						am := o.MinSpecies(r.Pop)
						if am < rep.MinA {
							rep.MinA = am
						}
						if am > rep.MaxA {
							rep.MaxA = am
						}
					}
				}
				rep.Escape, rep.HasEscape = probe.EscapeTime()
				rep.Windows = probe.Windows()
				rep.Cyclic = probe.CyclicOK()
				return rep
			})
		var escapes, windows []float64
		cyclic := true
		minA, maxA := n, 0
		for _, rp := range reps {
			if rp.HasEscape {
				escapes = append(escapes, rp.Escape)
			}
			windows = append(windows, rp.Windows...)
			if !rp.Cyclic {
				cyclic = false
			}
			if rp.MinA < minA {
				minA = rp.MinA
			}
			if rp.MaxA > maxA {
				maxA = rp.MaxA
			}
		}
		se, sw := stats.Summarize(escapes), stats.Summarize(windows)
		logn := math.Log(float64(n))
		tb.AddRow(n, nx,
			fmt.Sprintf("%.0f (%.1f)", se.Mean, se.Mean/logn),
			fmt.Sprintf("%.0f (%.1f)", sw.Mean, sw.Mean/logn),
			cyclic,
			fmt.Sprintf("[%d, %d]", minA, maxA))
	}
	return Result{Tables: []*stats.Table{tb}}
}

// clockQuality runs a composed oscillator+clock and measures tick metrics.
func clockQuality(n, m, k int, seed uint64, cycles int) (ticks, skips int, spacing, minPeak float64) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	b := clock.NewBase(sp, "C", o, m, k, o.Ruleset().TotalWeight())
	proto := engine.CompileProtocol(rules.Concat(o.Ruleset(), b.Rules()))
	rng := engine.NewRNG(seed)
	nx := int(math.Sqrt(float64(n)) / 2)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return o.InitState(s, osc.RandSpecies(rng), false)
	})
	r := engine.NewRunner(proto, pop, rng)
	slow := float64(proto.NumSlots()) / float64(o.Ruleset().TotalWeight())
	r.RunRounds(900 * slow)
	lastPhase := -1
	var tickTimes []float64
	peak := map[int]float64{}
	horizon := float64(cycles*m) * 12 * math.Log(float64(n)) * slow / 6
	for elapsed := 0.0; elapsed < horizon; elapsed++ {
		r.RunRounds(1)
		counts := b.PhaseCounts(pop)
		bestJ, bestC := 0, 0
		for j, c := range counts {
			if c > bestC {
				bestJ, bestC = j, c
			}
		}
		frac := float64(bestC) / float64(n)
		if frac > peak[bestJ] {
			peak[bestJ] = frac
		}
		if frac > 0.6 && bestJ != lastPhase {
			if lastPhase >= 0 && bestJ != (lastPhase+1)%m {
				skips++
			}
			ticks++
			lastPhase = bestJ
			tickTimes = append(tickTimes, r.Rounds())
		}
	}
	var mean float64
	for i := 1; i < len(tickTimes); i++ {
		mean += tickTimes[i] - tickTimes[i-1]
	}
	if len(tickTimes) > 1 {
		mean /= float64(len(tickTimes) - 1)
	}
	minPeak = 1
	for _, p := range peak {
		if p < minPeak {
			minPeak = p
		}
	}
	if len(peak) == 0 {
		minPeak = 0
	}
	return ticks, skips, mean / slow, minPeak
}

func runE4(cfg Config) Result {
	sizes := []int{2000, 20000}
	if cfg.Quick {
		sizes = []int{2000}
	}
	tb := stats.NewTable("E4 — Base modulo-12 phase clock (Thm 5.2)",
		"n", "K", "ticks", "skips", "tick spacing (/ln n, osc-rate)", "min peak agreement")
	for _, n := range sizes {
		for _, k := range []int{6, clock.DefaultK} {
			ticks, skips, spacing, minPeak := clockQuality(n, 12, k, cfg.BaseSeed+uint64(n+k), 2)
			tb.AddRow(n, k, ticks, skips,
				fmt.Sprintf("%.1f", spacing/math.Log(float64(n))), minPeak)
		}
	}
	return Result{Tables: []*stats.Table{tb}}
}

// hierarchyRun builds a 2-level hierarchy and measures per-level tick
// spacing over the horizon (in rounds).
func hierarchyRun(n int, seed uint64, horizon float64, trace *strings.Builder) (spacing [2]float64, ticks [2]int) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	h := clock.NewHierarchy(sp, x, 2, 12, 6, osc.DefaultParams())
	proto := engine.CompileProtocol(h.Rules())
	rng := engine.NewRNG(seed)
	nx := int(math.Sqrt(float64(n)) / 2)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return h.InitAgent(s, rng)
	})
	r := engine.NewRunner(proto, pop, rng)
	last := [2]int{-1, -1}
	var first, lastT [2]float64
	step := 25.0
	if trace != nil {
		trace.WriteString("rounds,level1_phase,level2_phase\n")
	}
	for r.Rounds() < horizon {
		r.RunRounds(step)
		for lvl := 1; lvl <= 2; lvl++ {
			counts := h.PhaseCounts(lvl, pop)
			bestJ, bestC := 0, 0
			for j, c := range counts {
				if c > bestC {
					bestJ, bestC = j, c
				}
			}
			if float64(bestC) > 0.6*float64(n) && bestJ != last[lvl-1] {
				ticks[lvl-1]++
				if first[lvl-1] == 0 {
					first[lvl-1] = r.Rounds()
				}
				lastT[lvl-1] = r.Rounds()
				last[lvl-1] = bestJ
			}
		}
		if trace != nil && int(r.Rounds())%500 < int(step) {
			fmt.Fprintf(trace, "%.0f,%d,%d\n", r.Rounds(), last[0], last[1])
		}
	}
	for lvl := 0; lvl < 2; lvl++ {
		if ticks[lvl] > 1 {
			spacing[lvl] = (lastT[lvl] - first[lvl]) / float64(ticks[lvl]-1)
		}
	}
	return spacing, ticks
}

func runE5(cfg Config) Result {
	tb := stats.NewTable("E5 — Two-level clock hierarchy (§5.3)",
		"n", "L1 ticks", "L2 ticks", "L1 spacing", "L2 spacing", "rate ratio r(2)/r(1)", "implied α = ratio/ln n")
	// The hierarchy is the most expensive experiment: one L2 tick costs
	// ≈ 4·(slot share)·(α′ ln n) L1 ticks. The horizons below yield ≥ 4
	// L2 ticks. (The reference run in EXPERIMENTS.md used n = 1000 over
	// 2·10⁶ rounds: 7 L2 ticks, ratio ≈ 1027 ≈ 149·ln n.)
	sizes := []int{600}
	horizons := []float64{1.3e6}
	if cfg.Quick {
		horizons = []float64{4e5}
	}
	for i, n := range sizes {
		spacing, ticks := hierarchyRun(n, cfg.BaseSeed+uint64(n), horizons[i], nil)
		ratio := math.NaN()
		if spacing[0] > 0 && spacing[1] > 0 {
			ratio = spacing[1] / spacing[0]
		}
		tb.AddRow(n, ticks[0], ticks[1], spacing[0], spacing[1], ratio, ratio/math.Log(float64(n)))
	}
	return Result{Tables: []*stats.Table{tb}}
}

func runF1(cfg Config) Result {
	n := 20000
	if cfg.Quick {
		n = 5000
	}
	o, r := buildOscRun(n, int(math.Sqrt(float64(n))/2), cfg.BaseSeed+42)
	var b strings.Builder
	b.WriteString("rounds,A0,A1,A2\n")
	horizon := 130 * math.Log(float64(n))
	// Sampling reuses one histogram map: HistogramInto + SpeciesCountsFrom
	// cost O(#occupied species) per sample instead of an O(n) agent scan.
	hist := make(map[bitmask.State]int64, 16)
	for r.Rounds() < horizon {
		r.RunRounds(2)
		r.Pop.HistogramInto(hist)
		c := o.SpeciesCountsFrom(hist)
		fmt.Fprintf(&b, "%.0f,%d,%d,%d\n", r.Rounds(), c[0], c[1], c[2])
	}
	tb := stats.NewTable("F1 — Oscillator trajectory", "series", "points")
	tb.AddRow("species counts CSV", strings.Count(b.String(), "\n")-1)
	return Result{
		Tables:       []*stats.Table{tb},
		Figures:      map[string]string{"F1_oscillator_trajectory.csv": b.String()},
		Interactions: uint64(r.Rounds() * float64(n)),
	}
}

func runF3(cfg Config) Result {
	n := 600
	horizon := 4e5
	if cfg.Quick {
		horizon = 1.5e5
	}
	var trace strings.Builder
	spacing, ticks := hierarchyRun(n, cfg.BaseSeed+7, horizon, &trace)
	tb := stats.NewTable("F3 — Hierarchy phase trace", "level", "ticks", "spacing")
	tb.AddRow(1, ticks[0], spacing[0])
	tb.AddRow(2, ticks[1], spacing[1])
	return Result{
		Tables:  []*stats.Table{tb},
		Figures: map[string]string{"F3_hierarchy_trace.csv": trace.String()},
	}
}
