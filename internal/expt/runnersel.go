package expt

import (
	"fmt"
	"math"
	"sort"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/obs"
	"popkit/internal/rules"
)

// Runner selection: the engine offers three exact schedulers with different
// capability/cost envelopes, and each experiment should get the fastest one
// that is admissible for its (protocol, n) point. The matrix below is the
// authoritative capability table (mirrored in EXPERIMENTS.md); the measured
// per-interaction costs come from the committed kernel benchmark
// results/BENCH_kernel.json (E11 exact-majority workload, see
// BenchmarkCountStep/BenchmarkBatchStep).

// RunnerKind names one of the engine's schedulers.
type RunnerKind int

const (
	// RunnerDense is engine.Runner: one explicit state per agent, one
	// scheduler activation per Step. The only runner that supports ordered
	// (first-match) rule groups, and the fastest at toy sizes where most
	// interactions fire.
	RunnerDense RunnerKind = iota
	// RunnerCounted is engine.CountRunner: species-vector population with
	// geometric leaps. Byte-identical RNG streams with the historical
	// scanning kernel, so archived seeds replay exactly.
	RunnerCounted
	// RunnerBatch is engine.BatchRunner: the counted chain with forced
	// picks skipping their RNG draws and per-rule firing counts. Exact in
	// distribution but not stream-compatible.
	RunnerBatch
	// RunnerAggregate is engine.AggregateRunner: the counted chain advanced
	// one collision-free run at a time, resolving the firings of each run
	// through hypergeometric composition and binomial chains instead of one
	// pick per firing. Exact in distribution but not stream-compatible; the
	// fastest kernel once runs are long enough (ℓ ≈ 0.63·√n) to amortize
	// the decomposition.
	RunnerAggregate
)

func (k RunnerKind) String() string {
	switch k {
	case RunnerDense:
		return "dense"
	case RunnerCounted:
		return "counted"
	case RunnerBatch:
		return "batch"
	case RunnerAggregate:
		return "aggregate"
	}
	return "unknown"
}

// RunnerCaps is one row of the capability matrix.
type RunnerCaps struct {
	Kind            RunnerKind
	OrderedGroups   bool // supports first-match rule groups
	LeapsQuiescence bool // O(1) geometric skips over non-firing stretches
	HugePopulations bool // counts-only state: n up to ~1e9
	StreamCompat    bool // reproduces the historical per-interaction RNG stream
	// AggregatesFirings marks kernels that resolve whole collision-free
	// runs of firings per step (multinomial run-length leaping) instead of
	// one firing at a time.
	AggregatesFirings bool
	// NsPerFiring is the measured cost of one rule firing on the E11
	// exact-majority workload at n = 10^6 (dense: cost per interaction —
	// it cannot leap, so quiescent activations cost the same).
	NsPerFiring float64
}

// CapabilityMatrix returns the runner capability table.
func CapabilityMatrix() []RunnerCaps {
	return []RunnerCaps{
		{Kind: RunnerDense, OrderedGroups: true, NsPerFiring: 72},
		{Kind: RunnerCounted, LeapsQuiescence: true, HugePopulations: true, StreamCompat: true, NsPerFiring: 115},
		{Kind: RunnerBatch, LeapsQuiescence: true, HugePopulations: true, NsPerFiring: 107},
		{Kind: RunnerAggregate, LeapsQuiescence: true, HugePopulations: true, AggregatesFirings: true, NsPerFiring: 111},
	}
}

// denseCrossover is the population size below which per-interaction dense
// stepping beats the counted kernels: the counted per-firing cost (~110 ns)
// only pays off once leaps skip enough quiescent activations, which needs
// room that toy populations don't have.
const denseCrossover = 1024

// aggregateCrossover is the population size above which the aggregate
// kernel's run decomposition beats per-firing batch stepping. The committed
// kernel table (results/BENCH_kernel.json) has batch at ~6 ns/interaction
// at n = 10^6 degrading to ~10 at 10^8, while aggregate holds under 1 from
// 10^8 up; runs of ℓ ≈ 0.63·√n carry enough firings to amortize the
// decomposition from about 10^7 on.
const aggregateCrossover = 10_000_000

// SelectRunner picks the fastest admissible runner for simulating rs on a
// population of n agents.
func SelectRunner(rs *rules.Ruleset, n int64) RunnerKind {
	k, _ := SelectRunnerReason(rs, n)
	return k
}

// SelectRunnerReason is SelectRunner surfacing *why*: the returned string
// names the capability or crossover that decided the pick, and experiment
// records carry it so a replica's kernel choice can be audited from the
// results file alone. Ordered (first-match) groups rule out the counted
// kernels entirely; otherwise crossover sizes decide between dense
// stepping, per-firing batching, and aggregate run decomposition.
func SelectRunnerReason(rs *rules.Ruleset, n int64) (RunnerKind, string) {
	if rs.HasOrderedGroups() {
		return RunnerDense, "ordered rule groups require per-agent matching"
	}
	if n < denseCrossover {
		return RunnerDense, fmt.Sprintf("n=%d below counted crossover %d", n, denseCrossover)
	}
	if n >= aggregateCrossover {
		return RunnerAggregate, fmt.Sprintf("n=%d at or above aggregate crossover %d", n, aggregateCrossover)
	}
	return RunnerBatch, fmt.Sprintf("n=%d between counted crossover %d and aggregate crossover %d", n, denseCrossover, aggregateCrossover)
}

// RunnerHints carries protocol-level facts the ruleset alone cannot express
// and that change which runner is profitable. StateRich marks protocols
// whose reachable species count grows with n (e.g. composed clock/junta
// state, randomized per-agent initialization): the counted kernels' whole
// advantage is species ≪ agents, so such protocols stay on the dense runner
// at every population size.
type RunnerHints struct {
	StateRich bool
}

// SelectRunnerReasonHints is SelectRunnerReason with protocol hints applied
// before the size crossovers.
func SelectRunnerReasonHints(rs *rules.Ruleset, n int64, h RunnerHints) (RunnerKind, string) {
	if h.StateRich {
		return RunnerDense, "state-rich protocol: species grow with n, counted kernels gain nothing"
	}
	return SelectRunnerReason(rs, n)
}

// SelectRunnerForSize is the size-only projection of SelectRunnerReason for
// flat (unordered) rule sets: the runner tier a counted protocol over n
// agents will execute on. Admission-time cost prediction (internal/qos)
// prices a job from this tier without compiling the ruleset; keeping the
// projection next to the crossover constants means the cost model can never
// drift from the real selector.
func SelectRunnerForSize(n int64) RunnerKind {
	if n < denseCrossover {
		return RunnerDense
	}
	if n >= aggregateCrossover {
		return RunnerAggregate
	}
	return RunnerBatch
}

// Counter is the common face of the engines' incremental trackers.
type Counter interface{ Count() int64 }

type denseCounter struct{ t *engine.Tracker }

func (c denseCounter) Count() int64 { return int64(c.t.Count()) }

// Driver runs one (protocol, population) pair on whichever runner
// SelectRunner picked, behind a single tracker-based API. Stop conditions
// must read trackers obtained from Track — that is what lets the counted
// kernels skip re-evaluating the condition while no tracked count moves.
type Driver struct {
	Kind RunnerKind

	// Reason records why SelectRunnerReason picked Kind; experiment records
	// and traces surface it so kernel choices are auditable after the run.
	Reason string

	counted *engine.Counted
	dense   *engine.Dense
	cr      *engine.CountRunner
	br      *engine.BatchRunner
	ar      *engine.AggregateRunner
	dr      *engine.Runner

	denseSteps uint64

	trace        *obs.Trace
	traceReplica int
	traceNext    float64
	tracked      []trackEntry
}

// trackEntry remembers a registered tracker so the trace can report every
// tracked count on one timeline event.
type trackEntry struct {
	name string
	c    Counter
}

// NewDriver builds the driver for rs/proto over the given initial counts.
func NewDriver(rs *rules.Ruleset, proto *engine.Protocol, counts map[bitmask.State]int64, rng *engine.RNG) *Driver {
	return NewDriverWithHints(rs, proto, counts, rng, RunnerHints{})
}

// NewDriverWithHints is NewDriver with protocol hints folded into runner
// selection (see RunnerHints).
func NewDriverWithHints(rs *rules.Ruleset, proto *engine.Protocol, counts map[bitmask.State]int64, rng *engine.RNG, h RunnerHints) *Driver {
	var n int64
	for _, k := range counts {
		n += k
	}
	kind, reason := SelectRunnerReasonHints(rs, n, h)
	d := &Driver{Kind: kind, Reason: reason}
	switch d.Kind {
	case RunnerDense:
		d.dense = engine.NewDense(int(n))
		// Lay agents out in sorted state order (the same (Hi, Lo) order
		// engine.NewCounted uses): map iteration order is randomized, and
		// which agent indices start in which state changes the dense
		// scheduler's trajectory — the layout must be a pure function of
		// counts or the same seed stops reproducing the same record.
		states := make([]bitmask.State, 0, len(counts))
		for s := range counts {
			states = append(states, s)
		}
		sort.Slice(states, func(i, j int) bool {
			a, b := states[i], states[j]
			if a.Hi != b.Hi {
				return a.Hi < b.Hi
			}
			return a.Lo < b.Lo
		})
		i := 0
		for _, s := range states {
			for j := int64(0); j < counts[s]; j++ {
				d.dense.SetAgent(i, s)
				i++
			}
		}
		d.dr = engine.NewRunner(proto, d.dense, rng)
	case RunnerCounted:
		d.counted = engine.NewCounted(counts)
		d.cr = engine.NewCountRunner(proto, d.counted, rng)
	case RunnerAggregate:
		d.counted = engine.NewCounted(counts)
		d.ar = engine.NewAggregateRunner(proto, d.counted, rng)
	default:
		d.counted = engine.NewCounted(counts)
		d.br = engine.NewBatchRunner(proto, d.counted, rng)
	}
	return d
}

// Track registers an incremental count of agents matching f.
func (d *Driver) Track(name string, f bitmask.Formula) Counter {
	var c Counter
	switch d.Kind {
	case RunnerDense:
		c = denseCounter{d.dr.Track(name, f)}
	case RunnerCounted:
		c = d.cr.Track(name, f)
	case RunnerAggregate:
		c = d.ar.Track(name, f)
	default:
		c = d.br.Track(name, f)
	}
	d.tracked = append(d.tracked, trackEntry{name: name, c: c})
	return c
}

// SetTrace attaches an obs timeline: RunUntil then emits a "count" event —
// every tracked counter's value, labelled with the runner kind — at most
// once per parallel round, and the underlying runner tallies per-rule
// firings into an obs.RuleStats. Tracing reads state the run already
// maintains and draws nothing from the RNG, so trajectories are
// byte-identical with and without it.
func (d *Driver) SetTrace(tr *obs.Trace, replica int) {
	d.trace = tr
	d.traceReplica = replica
	// Announce the selected kernel once per replica so timelines record
	// which runner produced the counts that follow, and why it was chosen.
	tr.Emit(obs.Event{
		Kind: "runner", Replica: replica,
		Name: d.Kind.String(), Reason: d.Reason,
	})
}

// SetStats attaches a per-rule firing tally to whichever runner the driver
// selected (nil detaches).
func (d *Driver) SetStats(s *obs.RuleStats) {
	switch d.Kind {
	case RunnerDense:
		d.dr.Stats = s
	case RunnerCounted:
		d.cr.Stats = s
	case RunnerAggregate:
		d.ar.Stats = s
	default:
		d.br.Stats = s
	}
}

// maybeTrace emits one "count" timeline event, rate-limited to one per
// parallel round so long quiescent leaps don't flood the buffer.
func (d *Driver) maybeTrace() {
	if d.trace == nil {
		return
	}
	r := d.Rounds()
	if r < d.traceNext {
		return
	}
	d.traceNext = math.Floor(r) + 1
	var counts map[string]int64
	if len(d.tracked) > 0 {
		counts = make(map[string]int64, len(d.tracked))
		for _, te := range d.tracked {
			counts[te.name] = te.c.Count()
		}
	}
	d.trace.Emit(obs.Event{
		Kind: "count", Replica: d.traceReplica, Rounds: r,
		Name: d.Kind.String(), Value: int64(d.Interactions()), Counts: counts,
	})
}

// RunUntil advances until cond holds or maxRounds elapses, returning the
// parallel time consumed and whether cond was met.
func (d *Driver) RunUntil(cond func() bool, maxRounds float64) (rounds float64, ok bool) {
	probe := cond
	if d.trace != nil {
		probe = func() bool {
			d.maybeTrace()
			return cond()
		}
	}
	switch d.Kind {
	case RunnerDense:
		start := d.dr.Rounds()
		steps := uint64(math.Ceil(maxRounds * float64(d.dense.N())))
		for i := uint64(0); i < steps; i++ {
			if probe() {
				return d.dr.Rounds() - start, true
			}
			d.dr.Step()
			d.denseSteps++
		}
		return d.dr.Rounds() - start, probe()
	case RunnerCounted:
		return d.cr.RunUntil(func(*engine.CountRunner) bool { return probe() }, maxRounds)
	case RunnerAggregate:
		return d.ar.RunUntil(func(*engine.AggregateRunner) bool { return probe() }, maxRounds)
	default:
		return d.br.RunUntil(func(*engine.BatchRunner) bool { return probe() }, maxRounds)
	}
}

// Rounds returns total elapsed parallel time.
func (d *Driver) Rounds() float64 {
	switch d.Kind {
	case RunnerDense:
		return d.dr.Rounds()
	case RunnerCounted:
		return d.cr.Rounds()
	case RunnerAggregate:
		return d.ar.Rounds()
	default:
		return d.br.Rounds()
	}
}

// Interactions returns the number of scheduler activations simulated,
// including leapt quiescent ones.
func (d *Driver) Interactions() uint64 {
	switch d.Kind {
	case RunnerDense:
		return d.denseSteps
	case RunnerCounted:
		return d.cr.Interactions
	case RunnerAggregate:
		return d.ar.Interactions
	default:
		return d.br.Interactions
	}
}

// HistogramInto snapshots the population into dst (cleared first).
func (d *Driver) HistogramInto(dst map[bitmask.State]int64) {
	if d.Kind == RunnerDense {
		d.dense.HistogramInto(dst)
		return
	}
	d.counted.HistogramInto(dst)
}
