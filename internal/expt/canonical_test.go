package expt

import (
	"reflect"
	"strings"
	"testing"
)

func TestCanonicalSpecStableEncoding(t *testing.T) {
	s := JobSpec{Protocol: "leader", N: 4096, Seed: 7, Replicas: 8}
	got := string(CanonicalSpec(s))
	want := `{"v":1,"protocol":"leader","n":4096,"seed":7,"replicas":8,"gap":0,"colours":0,"max_iters":0,"max_rounds":0}`
	if got != want {
		t.Fatalf("canonical encoding drifted:\n got %s\nwant %s", got, want)
	}
}

// The golden hash pins the store key format: a change here invalidates every
// existing store directory, which is exactly when StoreSchemaVersion must be
// bumped (turning the invalidation into a clean re-keying).
func TestSpecHashGolden(t *testing.T) {
	s := JobSpec{Protocol: "leader", N: 4096, Seed: 7, Replicas: 8}
	const want = "85735ec7f0ca303da97ffbcec213cbd1b677016a9f3cb1ebf1d00884a234d5e2"
	got := SpecHash(s)
	if len(got) != 64 || strings.Trim(got, "0123456789abcdef") != "" {
		t.Fatalf("SpecHash %q is not lowercase hex sha256", got)
	}
	if got != want {
		t.Fatalf("SpecHash drifted:\n got %s\nwant %s", got, want)
	}
}

func TestSpecHashExcludesJobIDAndStart(t *testing.T) {
	base := JobSpec{Protocol: "leader", N: 1024, Seed: 3, Replicas: 4}
	withID := base
	withID.JobID = "job-1"
	if SpecHash(base) != SpecHash(withID) {
		t.Fatal("job_id changed the content hash; journaled and plain runs must share cache entries")
	}
	// Start is excluded from the encoding, but a windowed spec must never be
	// committed or looked up — HashableSpec is the gate.
	shard := base
	shard.Start = 2
	if shard.Cacheable() {
		t.Fatal("windowed spec reported cacheable")
	}
	if err := HashableSpec(shard); err == nil {
		t.Fatal("HashableSpec accepted a windowed spec")
	}
	if err := HashableSpec(withID); err == nil {
		t.Fatal("HashableSpec accepted a job_id spec")
	}
	if err := HashableSpec(base); err != nil {
		t.Fatalf("HashableSpec rejected a plain spec: %v", err)
	}
}

func TestSpecHashSensitiveToEveryCanonicalField(t *testing.T) {
	base := JobSpec{Protocol: "leader", N: 1024, Seed: 3, Replicas: 4}
	h := SpecHash(base)
	variants := map[string]JobSpec{}
	v := base
	v.Protocol = "majority"
	variants["protocol"] = v
	v = base
	v.N = 1025
	variants["n"] = v
	v = base
	v.Seed = 4
	variants["seed"] = v
	v = base
	v.Replicas = 5
	variants["replicas"] = v
	v = base
	v.Gap = 1
	variants["gap"] = v
	v = base
	v.Colours = 3
	variants["colours"] = v
	v = base
	v.MaxIters = 100
	variants["max_iters"] = v
	v = base
	v.MaxRounds = 2.5
	variants["max_rounds"] = v
	for field, spec := range variants {
		if SpecHash(spec) == h {
			t.Errorf("changing %s did not change the hash", field)
		}
	}
}

// Reflection guard: every JobSpec field must be either canonically encoded
// or deliberately excluded. Adding a field without deciding which — and
// bumping StoreSchemaVersion if it changes result meaning — fails here.
func TestCanonicalSpecCoversEveryJobSpecField(t *testing.T) {
	encoded := map[string]bool{
		"Protocol": true, "N": true, "Seed": true, "Replicas": true,
		"Gap": true, "Colours": true, "MaxIters": true, "MaxRounds": true,
	}
	excluded := map[string]bool{
		"JobID": true, // journal identity, never in replica records
		"Start": true, // shard window; the store holds whole jobs only
	}
	typ := reflect.TypeOf(JobSpec{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !encoded[name] && !excluded[name] {
			t.Errorf("JobSpec field %s is neither canonically encoded nor in the exclusion list; "+
				"decide its store semantics in CanonicalSpec and update this guard "+
				"(bump StoreSchemaVersion if it changes result bytes)", name)
		}
	}
	if typ.NumField() != len(encoded)+len(excluded) {
		t.Errorf("JobSpec has %d fields but the guard lists %d; remove stale entries",
			typ.NumField(), len(encoded)+len(excluded))
	}
}
