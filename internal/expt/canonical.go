package expt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// StoreSchemaVersion is folded into every canonical spec encoding (and
// therefore every content hash). Bump it whenever the meaning of a stored
// result changes — a JobSpec field is added or reinterpreted, the
// ReplicaRecord wire format moves, or a kernel fix changes output bytes —
// so stale store entries become unreachable instead of wrong.
const StoreSchemaVersion = 1

// CanonicalSpec renders a normalized JobSpec in the stable field order that
// keys the content-addressed result store. Two specs that produce the same
// output bytes must encode identically, so:
//
//   - the spec must already have passed NormalizeCommon (defaults applied:
//     Replicas=0 and Replicas=1 are the same job, and must hash the same);
//   - JobID is excluded — it names a checkpoint journal, never appears in
//     replica records, and must not split the cache;
//   - Start is excluded — it windows a shard of the job; the store only
//     holds whole jobs (callers must not commit or look up windowed specs);
//   - every remaining field is emitted even at its zero value, in fixed
//     order, so the encoding cannot drift with Go's struct-tag omitempty.
//
// canonical_test.go holds a reflection guard: adding a JobSpec field
// without deciding whether it belongs here fails the build's tests.
func CanonicalSpec(s JobSpec) []byte {
	buf := make([]byte, 0, 160)
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, StoreSchemaVersion, 10)
	buf = append(buf, `,"protocol":`...)
	buf = strconv.AppendQuote(buf, s.Protocol)
	buf = append(buf, `,"n":`...)
	buf = strconv.AppendInt(buf, int64(s.N), 10)
	buf = append(buf, `,"seed":`...)
	buf = strconv.AppendUint(buf, s.Seed, 10)
	buf = append(buf, `,"replicas":`...)
	buf = strconv.AppendInt(buf, int64(s.Replicas), 10)
	buf = append(buf, `,"gap":`...)
	buf = strconv.AppendInt(buf, int64(s.Gap), 10)
	buf = append(buf, `,"colours":`...)
	buf = strconv.AppendInt(buf, int64(s.Colours), 10)
	buf = append(buf, `,"max_iters":`...)
	buf = strconv.AppendInt(buf, int64(s.MaxIters), 10)
	buf = append(buf, `,"max_rounds":`...)
	buf = strconv.AppendFloat(buf, s.MaxRounds, 'g', -1, 64)
	buf = append(buf, '}')
	return buf
}

// SpecHash is the content address of a normalized spec: hex SHA-256 of
// CanonicalSpec. Deterministic across processes and releases (within one
// StoreSchemaVersion), so any node of a cluster resolves the same spec to
// the same object.
func SpecHash(s JobSpec) string {
	sum := sha256.Sum256(CanonicalSpec(s))
	return hex.EncodeToString(sum[:])
}

// Cacheable reports whether a normalized spec is eligible for the result
// store: whole jobs only (no shard window) and no checkpoint identity (a
// job_id request is served by its journal, which may hold a partial run).
func (s JobSpec) Cacheable() bool { return s.Start == 0 && s.JobID == "" }

// HashableSpec validates the store-key contract at commit/lookup time.
func HashableSpec(s JobSpec) error {
	if !s.Cacheable() {
		return fmt.Errorf("spec with start=%d job_id=%q is not cacheable", s.Start, s.JobID)
	}
	return nil
}
