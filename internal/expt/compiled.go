package expt

import (
	"fmt"
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/compile"
	"popkit/internal/engine"
	"popkit/internal/protocols"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Claim: "End-to-end compilation (§4 + §5.4): the compiled flat LeaderElection protocol elects a unique leader under the plain uniform-random scheduler",
		Run:   runE13,
	})
}

// runE13 compiles the §3.1 program and runs the resulting flat rule set —
// clock, X set, gated program rules — under the raw scheduler. This
// validates the compilation stack as a whole; the frame-based E1 measures
// the same program's convergence-time shape at larger n.
func runE13(cfg Config) Result {
	tb := stats.NewTable("E13 — Compiled LeaderElection end to end",
		"n", "m (module)", "rules", "state bits", "converged", "rounds", "rounds/cycle est.")
	sizes := []int{400}
	if !cfg.Quick {
		sizes = []int{400, 800}
	}
	seeds := cfg.Seeds
	if seeds > 3 {
		seeds = 3
	}
	for _, n := range sizes {
		n := n
		// Compile once; the Compiled artifact and its looked-up vars are
		// read-only and shared by every replica of the fleet.
		c, err := compile.Compile(protocols.LeaderElection(), compile.Options{Control: compile.XPreReduced})
		if err != nil {
			panic(err)
		}
		lv, _ := c.Space.LookupVar("L")
		type rep struct {
			Rounds float64
			OK     bool
		}
		reps := replicate(cfg, fmt.Sprintf("E13/n=%d", n), seeds,
			func(s int) uint64 { return cfg.BaseSeed + uint64(n*13+s) },
			func(s int, seed uint64) rep {
				rng := engine.NewRNG(seed)
				pop := c.NewPopulation(n, rng)
				r := engine.NewRunner(engine.CompileProtocol(c.Rules), pop, rng)
				tr := r.Track("L", bitmask.Is(lv))
				budget := 60.0 * float64(c.M) * 60 * math.Log(float64(n))
				rounds, ok := r.RunUntil(func(*engine.Runner) bool { return tr.Count() == 1 }, 25, budget)
				return rep{Rounds: rounds, OK: ok}
			})
		conv := 0
		var rs []float64
		for _, rp := range reps {
			if rp.OK {
				conv++
				rs = append(rs, rp.Rounds)
			}
		}
		sm := stats.Summarize(rs)
		cycle := float64(c.M) * 40 * math.Log(float64(n)) // rough window estimate
		tb.AddRow(n, c.M, c.Rules.Len(), c.Space.NumBitsUsed(),
			fmt.Sprintf("%d/%d", conv, seeds), sm.Mean, sm.Mean/cycle)
	}
	return Result{Tables: []*stats.Table{tb}}
}
