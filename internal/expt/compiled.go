package expt

import (
	"fmt"
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/compile"
	"popkit/internal/engine"
	"popkit/internal/protocols"
	"popkit/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Claim: "End-to-end compilation (§4 + §5.4): the compiled flat LeaderElection protocol elects a unique leader under the plain uniform-random scheduler",
		Run:   runE13,
	})
}

// runE13 compiles the §3.1 program and runs the resulting flat rule set —
// clock, X set, gated program rules — under the raw scheduler. This
// validates the compilation stack as a whole; the frame-based E1 measures
// the same program's convergence-time shape at larger n.
func runE13(cfg Config) Result {
	tb := stats.NewTable("E13 — Compiled LeaderElection end to end",
		"n", "m (module)", "rules", "state bits", "converged", "rounds", "rounds/cycle est.")
	sizes := []int{400}
	if !cfg.Quick {
		sizes = []int{400, 800}
	}
	seeds := cfg.Seeds
	if seeds > 3 {
		seeds = 3
	}
	for _, n := range sizes {
		c, err := compile.Compile(protocols.LeaderElection(), compile.Options{Control: compile.XPreReduced})
		if err != nil {
			panic(err)
		}
		conv := 0
		var rs []float64
		for s := 0; s < seeds; s++ {
			rng := engine.NewRNG(cfg.BaseSeed + uint64(n*13+s))
			pop := c.NewPopulation(n, rng)
			r := engine.NewRunner(engine.CompileProtocol(c.Rules), pop, rng)
			lv, _ := c.Space.LookupVar("L")
			tr := r.Track("L", bitmask.Is(lv))
			budget := 60.0 * float64(c.M) * 60 * math.Log(float64(n))
			rounds, ok := r.RunUntil(func(*engine.Runner) bool { return tr.Count() == 1 }, 25, budget)
			if ok {
				conv++
				rs = append(rs, rounds)
			}
		}
		sm := stats.Summarize(rs)
		cycle := float64(c.M) * 40 * math.Log(float64(n)) // rough window estimate
		tb.AddRow(n, c.M, c.Rules.Len(), c.Space.NumBitsUsed(),
			fmt.Sprintf("%d/%d", conv, seeds), sm.Mean, sm.Mean/cycle)
	}
	return Result{Tables: []*stats.Table{tb}}
}
