package osc

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

// buildRun assembles an oscillator population with nx source agents.
func buildRun(t *testing.T, p Params, n int, nx int, seed uint64) (*Oscillator, *engine.Runner) {
	t.Helper()
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := New(sp, "O", x, p)
	proto := engine.CompileProtocol(o.Ruleset())
	rng := engine.NewRNG(seed)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return o.InitState(s, uint64(rng.Intn(3)), false)
	})
	return o, engine.NewRunner(proto, pop, rng)
}

// TestOscillatorContract is the calibration test fixing DefaultParams: from
// a uniform start with a sub-polynomial source set, the system must reach
// sustained oscillation (several dominance events in the predation order)
// within a O(log n) budget, with window length Θ(log n).
func TestOscillatorContract(t *testing.T) {
	if testing.Short() {
		t.Skip("oscillator contract test is long")
	}
	for _, n := range []int{2000, 20000} {
		n := n
		nx := int(math.Sqrt(float64(n)) / 2)
		o, r := buildRun(t, DefaultParams(), n, nx, 7)
		probe := NewProbe(o)
		budget := 80 * math.Log(float64(n)) // generous c·ln n
		for r.Rounds() < budget && len(probe.Events()) < 8 {
			r.RunRounds(1)
			probe.Observe(r)
		}
		if len(probe.Events()) < 6 {
			t.Fatalf("n=%d: only %d dominance events within %.0f rounds", n, len(probe.Events()), budget)
		}
		if !probe.CyclicOK() {
			t.Errorf("n=%d: dominance order %v violates A_i→A_{i+1}", n, probe.Order())
		}
		// Windows are Θ(log n): between 0.5·ln n and 20·ln n each, after
		// the oscillation has settled (skip the first window).
		logn := math.Log(float64(n))
		for i, w := range probe.Windows()[1:] {
			if w < 0.5*logn || w > 20*logn {
				t.Errorf("n=%d: window %d = %.0f rounds, outside [%.0f, %.0f]", n, i, w, 0.5*logn, 20*logn)
			}
		}
	}
}

// TestOscillatorNeedsSource verifies the #X ≥ 1 requirement: with no source
// agents the oscillator's minority species eventually dies and dominance
// stops rotating (the clock would halt). This is the failure mode the
// control-state processes of §5.2 exist to prevent.
func TestOscillatorNeedsSource(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	const n = 2000
	o, r := buildRun(t, DefaultParams(), n, 0, 3)
	probe := NewProbe(o)
	for r.Rounds() < 4000 {
		r.RunRounds(1)
		probe.Observe(r)
		if o.MinSpecies(r.Pop) == 0 {
			// A species went extinct; without X it can never recover.
			r.RunRounds(50)
			if o.MinSpecies(r.Pop) != 0 {
				t.Fatal("extinct species recovered without any source agent")
			}
			return
		}
	}
	t.Log("no extinction within 4000 rounds (possible but unlikely); order:", probe.Order())
}

// TestOscillatorSourceKeepsSpeciesAlive: with #X ≥ 1 the population never
// reaches an absorbing single-species state — X keeps reseeding.
func TestOscillatorSourceKeepsSpeciesAlive(t *testing.T) {
	const n = 1000
	o, r := buildRun(t, DefaultParams(), n, 5, 11)
	// Start from a fully absorbed configuration: everyone species 0 strong.
	for i := 5; i < n; i++ {
		r.Pop.SetAgent(i, o.InitState(r.Pop.Agent(i), 0, true))
	}
	r.RunRounds(200)
	counts := o.SpeciesCounts(r.Pop)
	if counts[1] == 0 && counts[2] == 0 {
		t.Errorf("source agents failed to reseed: %v", counts)
	}
}

// TestLargeSourceSuppressesOscillation: with #X = Θ(n) the reseeding noise
// dominates and no species reaches dominance — the regime where the clock
// must not be trusted (the complement of Theorem 5.1's hypothesis).
func TestLargeSourceSuppressesOscillation(t *testing.T) {
	const n = 2000
	o, r := buildRun(t, DefaultParams(), n, n/2, 5)
	probe := NewProbe(o)
	for r.Rounds() < 500 {
		r.RunRounds(1)
		probe.Observe(r)
	}
	if len(probe.Events()) != 0 {
		t.Errorf("dominance events with #X = n/2: %v", probe.Events())
	}
}

func TestMeanFieldInteriorUnstable(t *testing.T) {
	// A small perturbation of the symmetric fixed point must grow — the
	// delay-induced instability that gives O(log n) escape.
	m := NewMeanField(DefaultParams(), 0.001, 0.005)
	initial := m.Amplitude()
	for i := 0; i < 20000; i++ {
		m.Step(0.01)
	}
	if m.Amplitude() < 20*initial {
		t.Errorf("amplitude grew only from %.4f to %.4f; interior looks stable", initial, m.Amplitude())
	}
}

func TestMeanFieldConservesMass(t *testing.T) {
	m := NewMeanField(DefaultParams(), 0.01, 0.01)
	for i := 0; i < 5000; i++ {
		m.Step(0.01)
	}
	total := m.Chi
	for i := 0; i < 3; i++ {
		total += m.U[i] + m.S[i]
	}
	if math.Abs(total-1) > 0.02 {
		t.Errorf("mass drifted to %.4f", total)
	}
}

func TestSpeciesCountsExcludeSources(t *testing.T) {
	o, r := buildRun(t, DefaultParams(), 100, 10, 1)
	c := o.SpeciesCounts(r.Pop)
	if c[0]+c[1]+c[2] != 90 {
		t.Errorf("species counts %v should total 90 (sources excluded)", c)
	}
}

func TestParamsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params did not panic")
		}
	}()
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	New(sp, "O", x, Params{StrongPrey: 0, Mature: 1, Source: 1})
}

func TestProbeCyclicDetection(t *testing.T) {
	p := &Probe{order: []int{0, 1, 2, 0, 1}}
	if !p.CyclicOK() {
		t.Error("valid cycle rejected")
	}
	p = &Probe{order: []int{0, 2}}
	if p.CyclicOK() {
		t.Error("skipping a species accepted")
	}
}

// TestMeanFieldTracksStochastic validates the paper's methodology claim
// that the finite-state protocol is well approximated by its continuum
// limit (§1.1 "mean-field approximation"): starting both from the same
// skewed configuration, the ODE and a large stochastic run stay close for
// a while (before stochastic phase drift decorrelates the oscillations).
func TestMeanFieldTracksStochastic(t *testing.T) {
	const n = 200000
	p := DefaultParams()

	// Skewed start: 50% / 30% / 20%, all weak, no sources.
	m := NewMeanField(p, 0, 0)
	m.U = [3]float64{0.5, 0.3, 0.2}
	m.S = [3]float64{0, 0, 0}

	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := New(sp, "O", x, p)
	proto := engine.CompileProtocol(o.Ruleset())
	rng := engine.NewRNG(5)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		var species uint64
		switch {
		case i < n/2:
			species = 0
		case i < n/2+n*3/10:
			species = 1
		default:
			species = 2
		}
		return o.InitState(s, species, false)
	})
	r := engine.NewRunner(proto, pop, rng)

	// Time mapping: one parallel round = n interactions, each firing one
	// slot among W with per-capita pair probabilities matching the ODE's
	// raw coefficients, so the ODE advances by dt = 1/W per round.
	w := float64(o.Ruleset().TotalWeight())
	const horizonRounds = 40
	const stepsPerRound = 20
	worst := 0.0
	for round := 0; round < horizonRounds; round++ {
		r.RunRounds(1)
		for i := 0; i < stepsPerRound; i++ {
			m.Step(1 / w / stepsPerRound)
		}
		c := o.SpeciesCounts(r.Pop)
		for i := 0; i < 3; i++ {
			diff := math.Abs(float64(c[i])/float64(n) - m.Species(i))
			if diff > worst {
				worst = diff
			}
		}
	}
	if worst > 0.08 {
		t.Errorf("mean-field diverged from stochastic run by %.3f within %d rounds",
			worst, horizonRounds)
	}
}
