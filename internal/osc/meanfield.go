package osc

import "math"

// MeanField integrates the deterministic continuum limit (n → ∞) of the
// oscillator dynamics, the same approximation the paper's analysis leans on
// ("mean-field approximation", §1.1). It is used by the calibration tests
// to verify that the central fixed point is unstable — the property that
// gives the O(log n) escape of Theorem 5.1(i) — and by the design docs to
// justify the parameter choice.
type MeanField struct {
	P Params
	// Chi is the fraction of agents in the control state X, held constant
	// during integration (the X-control processes evolve on a slower or
	// faster timescale and are analyzed separately).
	Chi float64
	// U and S are the weak and strong fractions per species.
	U, S [3]float64
}

// NewMeanField returns a mean-field state at the symmetric fixed point,
// displaced by the given perturbation eps on species 0's totals.
func NewMeanField(p Params, chi, eps float64) *MeanField {
	m := &MeanField{P: p, Chi: chi}
	free := (1 - chi) / 3
	for i := 0; i < 3; i++ {
		m.U[i] = free / 2
		m.S[i] = free / 2
	}
	m.U[0] += eps
	m.U[1] -= eps
	return m
}

// deriv computes the time derivatives of (U, S) per parallel round, up to a
// common positive constant (the total slot weight) that only rescales time.
func (m *MeanField) deriv(u, s [3]float64) (du, ds [3]float64) {
	p := m.P
	pS, pW := float64(p.StrongPrey), float64(p.WeakPrey)
	pM, pSrc := float64(p.Mature), float64(p.Source)
	chi := m.Chi
	for i := 0; i < 3; i++ {
		prev := (i + 2) % 3
		next := (i + 1) % 3
		xPrev := u[prev] + s[prev]
		predIn := (pS*s[i] + pW*u[i]) * xPrev        // conversions into weak i
		predOutU := (pS*s[next] + pW*u[next]) * u[i] // weak i eaten by next
		predOutS := (pS*s[next] + pW*u[next]) * s[i] // strong i eaten by next
		srcIn := pSrc * chi * (1 - chi)              // X reseeds weak i
		srcOutU := 3 * pSrc * chi * u[i]             // X converts weak i away
		srcOutS := 3 * pSrc * chi * s[i]             // X converts strong i away
		du[i] = predIn + srcIn - pM*u[i] - predOutU - srcOutU
		ds[i] = pM*u[i] - predOutS - srcOutS
	}
	return du, ds
}

// Step advances the dynamics by dt (classical RK4).
func (m *MeanField) Step(dt float64) {
	add := func(a [3]float64, b [3]float64, w float64) [3]float64 {
		for i := range a {
			a[i] += w * b[i]
		}
		return a
	}
	k1u, k1s := m.deriv(m.U, m.S)
	k2u, k2s := m.deriv(add(m.U, k1u, dt/2), add(m.S, k1s, dt/2))
	k3u, k3s := m.deriv(add(m.U, k2u, dt/2), add(m.S, k2s, dt/2))
	k4u, k4s := m.deriv(add(m.U, k3u, dt), add(m.S, k3s, dt))
	for i := 0; i < 3; i++ {
		m.U[i] += dt / 6 * (k1u[i] + 2*k2u[i] + 2*k3u[i] + k4u[i])
		m.S[i] += dt / 6 * (k1s[i] + 2*k2s[i] + 2*k3s[i] + k4s[i])
		if m.U[i] < 0 {
			m.U[i] = 0
		}
		if m.S[i] < 0 {
			m.S[i] = 0
		}
	}
}

// Species returns the total fraction of species i.
func (m *MeanField) Species(i int) float64 { return m.U[i] + m.S[i] }

// Amplitude measures the departure from the symmetric point: the maximum
// over species of |x_i − x̄|.
func (m *MeanField) Amplitude() float64 {
	mean := (m.Species(0) + m.Species(1) + m.Species(2)) / 3
	a := 0.0
	for i := 0; i < 3; i++ {
		a = math.Max(a, math.Abs(m.Species(i)-mean))
	}
	return a
}
