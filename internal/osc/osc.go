// Package osc implements the self-organizing rock–paper–scissors oscillator
// underlying the paper's phase clocks (§5.2, building on the 7-state
// oscillator protocol P_o of [DK18]).
//
// Each non-source agent holds one of three species A_0, A_1, A_2 together
// with a strength flag (weak "+" / strong "++"); agents with the control
// flag X act as sources that reseed random species. Species A_i preys on
// A_{i−1}: a strong predator always converts its prey, a weak one converts
// with reduced probability, and converted agents re-enter the cycle weak.
// The weak→strong maturation delay destabilizes the central fixed point of
// the classic rock–paper–scissors dynamics, so from any configuration the
// system spirals out to a global limit cycle in O(log n) rounds and then
// oscillates with period Θ(log n), exactly the Theorem 5.1 contract. The
// exact rule table of [DK18] is not reprinted in the paper; this package
// realizes the same state count and contract with parameters fixed by the
// calibration tests in this package (see DESIGN.md, "Substitutions").
package osc

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/rules"
)

// Params are the oscillator rule weights. The defaults are the calibrated
// values validated by TestOscillatorContract.
type Params struct {
	// StrongPrey is the weight of the strong-predator conversion rule.
	StrongPrey int
	// WeakPrey is the weight of the weak-predator conversion rule.
	WeakPrey int
	// Mature is the weight of the weak→strong maturation rule.
	Mature int
	// Source is the per-species weight of the X-reseeding rule.
	Source int
}

// DefaultParams returns the calibrated oscillator parameters: strong
// predation at three times the maturation rate, no weak predation, and
// sources reseeding at the maturation rate. With these weights the
// population escapes the central region in O(log n) rounds and oscillates
// with period ≈ 6·ln n for n between 10³ and 10⁶ (see the calibration tests
// and EXPERIMENTS.md E3).
func DefaultParams() Params {
	return Params{StrongPrey: 3, WeakPrey: 0, Mature: 1, Source: 1}
}

func (p Params) validate() error {
	if p.StrongPrey < 1 {
		return fmt.Errorf("osc: StrongPrey must be ≥ 1")
	}
	if p.WeakPrey < 0 || p.Mature < 1 || p.Source < 1 {
		return fmt.Errorf("osc: negative or zero weight")
	}
	return nil
}

// Oscillator bundles the oscillator's variables and ruleset over a shared
// space. The X variable is supplied by the caller (it is owned by the
// control-state process of §5.2's "Controlling |X|" paragraphs and shared by
// every clock in a hierarchy).
type Oscillator struct {
	Species bitmask.Field // values 0, 1, 2
	Strong  bitmask.Var
	X       bitmask.Var
	Params  Params

	rs *rules.Ruleset
}

// New allocates the oscillator's variables (prefixed for uniqueness) in the
// space and builds its ruleset. x is the shared control variable.
func New(sp *bitmask.Space, prefix string, x bitmask.Var, p Params) *Oscillator {
	if err := p.validate(); err != nil {
		panic(err.Error())
	}
	o := &Oscillator{
		Species: sp.Field(prefix+"Sp", 2),
		Strong:  sp.Bool(prefix + "St"),
		X:       x,
		Params:  p,
	}
	o.rs = rules.NewRuleset(sp)
	notX := bitmask.IsNot(x)
	for i := uint64(0); i < 3; i++ {
		prev := (i + 2) % 3
		spI := bitmask.FieldIs(o.Species, i)
		spPrev := bitmask.FieldIs(o.Species, prev)
		becomeWeakI := bitmask.And(spI, bitmask.IsNot(o.Strong))

		// Strong predation: A_i^{++} converts A_{i-1} to A_i^{+}.
		o.rs.AddWeighted(p.StrongPrey,
			bitmask.And(notX, spI, bitmask.Is(o.Strong)),
			bitmask.And(notX, spPrev),
			bitmask.True(),
			becomeWeakI)
		// Weak predation (optional): A_i^{+} converts A_{i-1} to A_i^{+}.
		if p.WeakPrey > 0 {
			o.rs.AddWeighted(p.WeakPrey,
				bitmask.And(notX, spI, bitmask.IsNot(o.Strong)),
				bitmask.And(notX, spPrev),
				bitmask.True(),
				becomeWeakI)
		}
		// Source: X converts any non-source agent to a uniformly random
		// species (weak). One rule per species realizes the uniform choice.
		o.rs.AddWeighted(p.Source,
			bitmask.Is(x),
			notX,
			bitmask.True(),
			becomeWeakI)
	}
	// Maturation: a weak agent hardens after a meeting (as initiator).
	o.rs.AddWeighted(p.Mature,
		bitmask.And(notX, bitmask.IsNot(o.Strong)),
		bitmask.True(),
		bitmask.Is(o.Strong),
		bitmask.True())
	return o
}

// Ruleset returns the oscillator's rules (shared; callers must not mutate).
func (o *Oscillator) Ruleset() *rules.Ruleset { return o.rs }

// InitState returns the state bits for a non-source agent of the given
// species and strength, merged into base.
func (o *Oscillator) InitState(base bitmask.State, species uint64, strong bool) bitmask.State {
	base = o.Species.Set(base, species)
	return o.Strong.Set(base, strong)
}

// InitUniform initializes every agent of the population with a uniformly
// random weak species, leaving X and all other bits untouched.
func (o *Oscillator) InitUniform(pop *engine.Dense, rng *engine.RNG) {
	for i := 0; i < pop.N(); i++ {
		s := pop.Agent(i)
		s = o.Species.Set(s, uint64(rng.Intn(3)))
		s = o.Strong.Set(s, false)
		pop.SetAgent(i, s)
	}
}

// RandSpecies returns a species drawn from the skewed distribution
// (60%, 30%, 10%) used to initialize oscillators off-centre, as Theorem
// 5.2 permits ("initialized so that a_min < n/10"): the system starts near
// the limit cycle instead of spending Θ(log n) slow rounds escaping the
// symmetric fixed point — which matters most for the slowed copies in a
// clock hierarchy.
func RandSpecies(rng *engine.RNG) uint64 {
	switch r := rng.Intn(10); {
	case r < 6:
		return 0
	case r < 9:
		return 1
	default:
		return 2
	}
}

// SpeciesCounts tallies the species of non-source agents.
func (o *Oscillator) SpeciesCounts(pop *engine.Dense) [3]int {
	var out [3]int
	gX := bitmask.Compile(bitmask.Is(o.X))
	for i := 0; i < pop.N(); i++ {
		s := pop.Agent(i)
		if gX.Match(s) {
			continue
		}
		out[o.Species.Get(s)]++
	}
	return out
}

// SpeciesCountsFrom tallies the species of non-source agents from a
// population histogram (as produced by HistogramInto). The oscillator only
// occupies a handful of states, so this costs O(#species) per sample instead
// of the O(n) per-agent scan of SpeciesCounts — the difference dominates
// trajectory collection, which samples every couple of rounds.
func (o *Oscillator) SpeciesCountsFrom(h map[bitmask.State]int64) [3]int {
	var out [3]int
	gX := bitmask.Compile(bitmask.Is(o.X))
	for s, k := range h {
		if gX.Match(s) {
			continue
		}
		out[o.Species.Get(s)] += int(k)
	}
	return out
}

// MinSpecies returns a_min = min_i |A_i| for the population.
func (o *Oscillator) MinSpecies(pop *engine.Dense) int {
	c := o.SpeciesCounts(pop)
	m := c[0]
	for _, v := range c[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Dominant returns the species held by the most agents and its count.
func (o *Oscillator) Dominant(pop *engine.Dense) (species int, count int) {
	c := o.SpeciesCounts(pop)
	best := 0
	for i, v := range c {
		if v > c[best] {
			best = i
		}
	}
	return best, c[best]
}
