package osc

import "popkit/internal/engine"

// Probe observes an oscillator run and records dominance events: the times
// (in parallel rounds) at which a new species first exceeds the threshold
// fraction of the population. The event sequence directly measures the
// Theorem 5.1 quantities — escape time (first event), oscillation period
// (event spacing / 3), and cyclic order.
type Probe struct {
	Osc *Oscillator
	// Threshold is the dominance fraction; 0 means the default 0.8.
	Threshold float64

	lastDom int
	times   []float64
	order   []int
}

// NewProbe returns a probe for the oscillator.
func NewProbe(o *Oscillator) *Probe {
	return &Probe{Osc: o, Threshold: 0.8, lastDom: -1}
}

// Observe samples the population; call it once per round (or at any fixed
// cadence). It records an event when the dominant species changes while
// above the threshold.
func (p *Probe) Observe(r *engine.Runner) {
	dom, cnt := p.Osc.Dominant(r.Pop)
	th := p.Threshold
	if th == 0 {
		th = 0.8
	}
	if float64(cnt) > th*float64(r.Pop.N()) && dom != p.lastDom {
		p.times = append(p.times, r.Rounds())
		p.order = append(p.order, dom)
		p.lastDom = dom
	}
}

// Events returns the recorded event times in rounds.
func (p *Probe) Events() []float64 { return p.times }

// Order returns the species sequence of the events.
func (p *Probe) Order() []int { return p.order }

// EscapeTime returns the time of the first dominance event and whether one
// occurred — the empirical Theorem 5.1(i) escape time.
func (p *Probe) EscapeTime() (float64, bool) {
	if len(p.times) == 0 {
		return 0, false
	}
	return p.times[0], true
}

// Windows returns the durations between successive dominance events (one
// third of the full oscillation period each).
func (p *Probe) Windows() []float64 {
	if len(p.times) < 2 {
		return nil
	}
	out := make([]float64, len(p.times)-1)
	for i := range out {
		out[i] = p.times[i+1] - p.times[i]
	}
	return out
}

// CyclicOK reports whether every recorded dominance transition follows the
// predation order A_i → A_{i+1} (Theorem 5.1(ii)).
func (p *Probe) CyclicOK() bool {
	for i := 1; i < len(p.order); i++ {
		if p.order[i] != (p.order[i-1]+1)%3 {
			return false
		}
	}
	return true
}
