// Package baseline implements the prior-work comparator protocols that the
// paper positions itself against (§1.2): the 3-state approximate-majority
// protocol of [AAE08a] (O(log n) time but needs a Ω(√(n log n)) gap), the
// 4-state exact-majority protocol of [DV12, MNRS14] (always correct but
// Θ(n log n) time on small gaps), and the folklore pairwise-coalescence
// leader election (always correct, Θ(n) time). All three use tiny state
// spaces, so the counted engine simulates them at populations up to 10^9.
package baseline

import (
	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/rules"
)

// ApproxMajority is the 3-state approximate-majority protocol [AAE08a]:
// states A, B and blank. An opinionated initiator erases an opposing
// responder to blank, and converts a blank responder to its own opinion.
// Converges in O(log n) rounds, but with an initial gap below
// Ω(√(n log n)) the outcome may be the minority opinion.
type ApproxMajority struct {
	A, B bitmask.Var
	rs   *rules.Ruleset
}

// NewApproxMajority builds the protocol on a fresh space.
func NewApproxMajority() *ApproxMajority {
	sp := bitmask.NewSpace()
	p := &ApproxMajority{A: sp.Bool("A"), B: sp.Bool("B")}
	p.rs = rules.NewRuleset(sp)
	a, b := bitmask.Is(p.A), bitmask.Is(p.B)
	blank := bitmask.And(bitmask.IsNot(p.A), bitmask.IsNot(p.B))
	p.rs.Add(a, b, bitmask.True(), bitmask.And(bitmask.IsNot(p.A), bitmask.IsNot(p.B)))
	p.rs.Add(b, a, bitmask.True(), bitmask.And(bitmask.IsNot(p.A), bitmask.IsNot(p.B)))
	p.rs.Add(a, blank, bitmask.True(), bitmask.And(bitmask.Is(p.A), bitmask.IsNot(p.B)))
	p.rs.Add(b, blank, bitmask.True(), bitmask.And(bitmask.Is(p.B), bitmask.IsNot(p.A)))
	return p
}

// Rules returns the ruleset.
func (p *ApproxMajority) Rules() *rules.Ruleset { return p.rs }

// Population builds a counted population with the given opinion counts.
func (p *ApproxMajority) Population(nA, nB, blank int64) *engine.Counted {
	sA := p.A.Set(bitmask.State{}, true)
	sB := p.B.Set(bitmask.State{}, true)
	return engine.NewCounted(map[bitmask.State]int64{
		sA: nA, sB: nB, {}: blank,
	})
}

// Winner inspects a population: +1 if only A-opinions remain, −1 if only
// B, 0 if undecided.
func (p *ApproxMajority) Winner(pop *engine.Counted) int {
	a := pop.CountFormula(bitmask.Is(p.A))
	b := pop.CountFormula(bitmask.Is(p.B))
	switch {
	case a > 0 && b == 0:
		return +1
	case b > 0 && a == 0:
		return -1
	}
	return 0
}

// ExactMajority4 is the 4-state exact-majority protocol [DV12, MNRS14]:
// strong opinions A, B and weak opinions a, b. Strong pairs annihilate to
// weak (preserving #A − #B exactly); strong agents convert opposing weak
// agents. Always correct; Θ(n log n) rounds when the gap is constant.
type ExactMajority4 struct {
	IsA    bitmask.Var // opinion bit: on=A-side, off=B-side
	Strong bitmask.Var
	rs     *rules.Ruleset
}

// NewExactMajority4 builds the protocol on a fresh space.
func NewExactMajority4() *ExactMajority4 {
	sp := bitmask.NewSpace()
	p := &ExactMajority4{IsA: sp.Bool("OpA"), Strong: sp.Bool("St")}
	p.rs = rules.NewRuleset(sp)
	sA := bitmask.And(bitmask.Is(p.IsA), bitmask.Is(p.Strong))
	sB := bitmask.And(bitmask.IsNot(p.IsA), bitmask.Is(p.Strong))
	wA := bitmask.And(bitmask.Is(p.IsA), bitmask.IsNot(p.Strong))
	wB := bitmask.And(bitmask.IsNot(p.IsA), bitmask.IsNot(p.Strong))
	// Strong annihilation: A + B → a + b.
	p.rs.Add(sA, sB, bitmask.IsNot(p.Strong), bitmask.IsNot(p.Strong))
	// Strong converts opposing weak: A + b → A + a, B + a → B + b.
	p.rs.Add(sA, wB, bitmask.True(), bitmask.Is(p.IsA))
	p.rs.Add(sB, wA, bitmask.True(), bitmask.IsNot(p.IsA))
	return p
}

// Rules returns the ruleset.
func (p *ExactMajority4) Rules() *rules.Ruleset { return p.rs }

// Population builds a counted population: nA strong-A and nB strong-B
// agents (the 4-state protocol has no uncoloured inputs).
func (p *ExactMajority4) Population(nA, nB int64) *engine.Counted {
	a := p.Strong.Set(p.IsA.Set(bitmask.State{}, true), true)
	b := p.Strong.Set(bitmask.State{}, true)
	return engine.NewCounted(map[bitmask.State]int64{a: nA, b: nB})
}

// Decided reports whether all agents agree on an opinion, and which
// (+1 for A, −1 for B).
func (p *ExactMajority4) Decided(pop *engine.Counted) (bool, int) {
	a := pop.CountFormula(bitmask.Is(p.IsA))
	switch {
	case a == pop.N64():
		return true, +1
	case a == 0:
		return true, -1
	}
	return false, 0
}

// CoalescenceLeader is the folklore always-correct leader election
// ▷ (L) + (L) → (L) + (¬L): the leader count halves by pairwise collision
// and converges to exactly one in Θ(n) rounds.
type CoalescenceLeader struct {
	L  bitmask.Var
	rs *rules.Ruleset
}

// NewCoalescenceLeader builds the protocol on a fresh space.
func NewCoalescenceLeader() *CoalescenceLeader {
	sp := bitmask.NewSpace()
	p := &CoalescenceLeader{L: sp.Bool("L")}
	p.rs = rules.NewRuleset(sp)
	p.rs.Add(bitmask.Is(p.L), bitmask.Is(p.L), bitmask.Is(p.L), bitmask.IsNot(p.L))
	return p
}

// Rules returns the ruleset.
func (p *CoalescenceLeader) Rules() *rules.Ruleset { return p.rs }

// Population builds a counted population with every agent a leader.
func (p *CoalescenceLeader) Population(n int64) *engine.Counted {
	l := p.L.Set(bitmask.State{}, true)
	return engine.NewCounted(map[bitmask.State]int64{l: n})
}

// Leaders counts the remaining leaders.
func (p *CoalescenceLeader) Leaders(pop *engine.Counted) int64 {
	return pop.CountFormula(bitmask.Is(p.L))
}
