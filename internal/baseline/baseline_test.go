package baseline

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

func TestApproxMajorityLargeGap(t *testing.T) {
	p := NewApproxMajority()
	proto := engine.CompileProtocol(p.Rules())
	const n = 100000
	// Gap well above √(n log n) ≈ 1073: reliable.
	wins := 0
	const seeds = 10
	for seed := uint64(0); seed < seeds; seed++ {
		pop := p.Population(n/2+3000, n/2-3000, 0)
		cr := engine.NewCountRunner(proto, pop, engine.NewRNG(seed))
		_, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
			return p.Winner(c.Pop) != 0
		}, 10000)
		if !ok {
			t.Fatalf("seed %d: no consensus", seed)
		}
		if p.Winner(pop) == +1 {
			wins++
		}
	}
	if wins != seeds {
		t.Errorf("A won only %d/%d with a large gap", wins, seeds)
	}
}

func TestApproxMajorityConvergesInLogTime(t *testing.T) {
	p := NewApproxMajority()
	proto := engine.CompileProtocol(p.Rules())
	const n = 1 << 20
	pop := p.Population(n/2+20000, n/2-20000, 0)
	cr := engine.NewCountRunner(proto, pop, engine.NewRNG(1))
	rounds, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
		return p.Winner(c.Pop) != 0
	}, 10000)
	if !ok {
		t.Fatal("no consensus")
	}
	if rounds > 50*math.Log(n) {
		t.Errorf("converged in %.0f rounds, want O(log n) ≈ %.0f", rounds, math.Log(n))
	}
}

// TestApproxMajorityTinyGapUnreliable demonstrates the known failure mode:
// with gap 1 the minority wins a non-negligible fraction of runs.
func TestApproxMajorityTinyGapUnreliable(t *testing.T) {
	p := NewApproxMajority()
	proto := engine.CompileProtocol(p.Rules())
	const n = 10000
	minorityWins := 0
	const seeds = 40
	for seed := uint64(0); seed < seeds; seed++ {
		pop := p.Population(n/2+1, n/2-1, 0)
		cr := engine.NewCountRunner(proto, pop, engine.NewRNG(seed))
		if _, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
			return p.Winner(c.Pop) != 0
		}, 1e6); !ok {
			t.Fatalf("seed %d: no consensus", seed)
		}
		if p.Winner(pop) == -1 {
			minorityWins++
		}
	}
	if minorityWins == 0 {
		t.Error("minority never won at gap 1 — approximate majority looks implausibly exact")
	}
	t.Logf("minority won %d/%d runs at gap 1", minorityWins, seeds)
}

func TestExactMajority4AlwaysCorrect(t *testing.T) {
	p := NewExactMajority4()
	proto := engine.CompileProtocol(p.Rules())
	const n = 2000
	for seed := uint64(0); seed < 10; seed++ {
		pop := p.Population(n/2+1, n/2-1)
		cr := engine.NewCountRunner(proto, pop, engine.NewRNG(seed))
		if _, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
			d, _ := p.Decided(c.Pop)
			return d
		}, 1e8); !ok {
			t.Fatalf("seed %d: never decided", seed)
		}
		if _, w := p.Decided(pop); w != +1 {
			t.Errorf("seed %d: minority won despite exactness", seed)
		}
	}
}

// TestExactMajority4TimeShape: gap-1 instances need Ω(n) rounds — the
// polynomial wall the paper's protocols avoid.
func TestExactMajority4TimeShape(t *testing.T) {
	p := NewExactMajority4()
	proto := engine.CompileProtocol(p.Rules())
	var prev float64
	for _, n := range []int64{1000, 4000} {
		var total float64
		const seeds = 5
		for seed := uint64(0); seed < seeds; seed++ {
			pop := p.Population(n/2+1, n/2-1)
			cr := engine.NewCountRunner(proto, pop, engine.NewRNG(seed))
			rounds, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
				d, _ := p.Decided(c.Pop)
				return d
			}, 1e9)
			if !ok {
				t.Fatal("never decided")
			}
			total += rounds
		}
		mean := total / seeds
		if mean < float64(n)/4 {
			t.Errorf("n=%d: gap-1 exact majority finished in %.0f rounds — superlinear expectation violated?", n, mean)
		}
		if prev > 0 && mean < 2*prev {
			t.Errorf("scaling too flat: %.0f -> %.0f for 4x n", prev, mean)
		}
		prev = mean
	}
}

func TestCoalescenceLeader(t *testing.T) {
	p := NewCoalescenceLeader()
	proto := engine.CompileProtocol(p.Rules())
	var prev float64
	for _, n := range []int64{1000, 8000} {
		pop := p.Population(n)
		cr := engine.NewCountRunner(proto, pop, engine.NewRNG(3))
		rounds, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
			return p.Leaders(c.Pop) == 1
		}, 1e9)
		if !ok {
			t.Fatal("never converged")
		}
		// Coalescence takes ≈ n rounds (expected Σ n(n−1)/k(k−1) ≈ n interactions... Θ(n) rounds).
		if rounds < float64(n)/8 || rounds > 16*float64(n) {
			t.Errorf("n=%d: coalescence took %.0f rounds, want Θ(n)", n, rounds)
		}
		if prev > 0 && rounds < 2*prev {
			t.Errorf("coalescence scaling too flat: %.0f -> %.0f", prev, rounds)
		}
		prev = rounds
	}
}

func TestBaselineStateCounts(t *testing.T) {
	// The comparison table reports exact automaton sizes: 3 states for
	// approximate majority, 4 for exact majority, 2 for coalescence.
	am := NewApproxMajority()
	p1 := engine.CompileProtocol(am.Rules())
	pop := am.Population(5, 5, 0)
	var initial []bitmask.State
	pop.ForEach(func(st bitmask.State, _ int64) { initial = append(initial, st) })
	if states, ok := p1.ReachableStates(initial, 100); !ok || len(states) != 3 {
		t.Errorf("approx majority reachable states = %d, want 3", len(states))
	}

	em := NewExactMajority4()
	p2 := engine.CompileProtocol(em.Rules())
	pop2 := em.Population(5, 5)
	initial = initial[:0]
	pop2.ForEach(func(st bitmask.State, _ int64) { initial = append(initial, st) })
	if states, ok := p2.ReachableStates(initial, 100); !ok || len(states) != 4 {
		t.Errorf("exact majority reachable states = %d, want 4", len(states))
	}

	cl := NewCoalescenceLeader()
	p3 := engine.CompileProtocol(cl.Rules())
	leader := cl.L.Set(bitmask.State{}, true)
	if states, ok := p3.ReachableStates([]bitmask.State{leader}, 100); !ok || len(states) != 2 {
		t.Errorf("coalescence reachable states = %d, want 2", len(states))
	}
}
