// Package rules models population-protocol transition rules in the paper's
// bit-mask notation ▷ (Σ1) + (Σ2) → (Σ3) + (Σ4), including the scheduler
// convention of §1.3 (exactly one rule is picked uniformly at random per
// interaction and executed if it matches) and the thread-composition
// mechanism (rulesets padded to a common slot count and merged).
//
// A Ruleset is organized into groups. A group is one logical transition
// function expanded into mask rules with pairwise-disjoint guards (e.g. one
// rule per clock position): the scheduler picks a group uniformly by weight
// and fires the unique matching rule inside it, which realizes the paper's
// remark that rule selection "can be translated into frameworks in which
// all matching rules are executed systematically". A plain rule is simply a
// singleton group.
package rules

import (
	"fmt"
	"math"
	"strings"

	"popkit/internal/bitmask"
)

// A Rule is one transition ▷ (Σ1) + (Σ2) → (Σ3) + (Σ4) between an ordered
// pair of agents: the first ("initiator") must satisfy Σ1, the second
// ("responder") Σ2; on execution the minimal updates for Σ3 and Σ4 are
// applied respectively.
type Rule struct {
	Name   string
	G1, G2 bitmask.Guard
	U1, U2 bitmask.Update

	// Copy1 and Copy2 are intra-agent bit copies applied (simultaneously)
	// to the initiator and responder states before U1/U2. See BitCopy.
	Copy1, Copy2 []BitCopy

	// Src* retain the source formulas for printing and validation.
	Src1, Src2, Src3, Src4 bitmask.Formula
}

// Matches reports whether the rule applies to the ordered pair (a, b).
func (r Rule) Matches(a, b bitmask.State) bool {
	return r.G1.Match(a) && r.G2.Match(b)
}

// Apply returns the post-interaction states. It does not check Matches.
// Bit copies run first (reading the pre-interaction state), then the mask
// updates.
func (r Rule) Apply(a, b bitmask.State) (bitmask.State, bitmask.State) {
	return r.U1.Apply(applyCopies(a, r.Copy1)), r.U2.Apply(applyCopies(b, r.Copy2))
}

// String renders the rule in the paper's notation.
func (r Rule) String() string {
	s := fmt.Sprintf("(%s) + (%s) -> (%s) + (%s)",
		r.Src1.String(), r.Src2.String(), r.Src3.String(), r.Src4.String())
	if len(r.Copy1) > 0 || len(r.Copy2) > 0 {
		s += fmt.Sprintf(" [copies %d|%d]", len(r.Copy1), len(r.Copy2))
	}
	if r.Name != "" {
		s = r.Name + ": " + s
	}
	return s
}

// New builds a rule from the four formulas, compiling guards and minimal
// updates. It returns an error if Σ3 or Σ4 is not a conjunction of literals.
func New(s1, s2, s3, s4 bitmask.Formula) (Rule, error) {
	u1, err := bitmask.CompileUpdate(s3)
	if err != nil {
		return Rule{}, fmt.Errorf("left target: %w", err)
	}
	u2, err := bitmask.CompileUpdate(s4)
	if err != nil {
		return Rule{}, fmt.Errorf("right target: %w", err)
	}
	return Rule{
		G1: bitmask.Compile(s1), G2: bitmask.Compile(s2),
		U1: u1, U2: u2,
		Src1: s1, Src2: s2, Src3: s3, Src4: s4,
	}, nil
}

// MustNew is New for statically-known rules; it panics on error.
func MustNew(s1, s2, s3, s4 bitmask.Formula) Rule {
	r, err := New(s1, s2, s3, s4)
	if err != nil {
		panic("rules: " + err.Error())
	}
	return r
}

// A Group is one scheduler unit: a contiguous range of rules with
// pairwise-disjoint guards, picked as a whole with the given weight.
type Group struct {
	Name   string
	Weight int
	// Start and End delimit the group's rules within Ruleset.Rules.
	Start, End int
	// Ordered marks a group with first-match-wins semantics: rules may
	// overlap and the earliest matching rule fires (the paper's systematic
	// "top-down" execution). Ordered groups are not supported by the
	// counted engine, whose event-rate computation needs disjointness.
	Ordered bool
}

// A Ruleset is an ordered collection of rule groups sharing one variable
// space.
type Ruleset struct {
	Space  *bitmask.Space
	Rules  []Rule
	Groups []Group
}

// NewRuleset returns an empty ruleset over the given space.
func NewRuleset(sp *bitmask.Space) *Ruleset {
	return &Ruleset{Space: sp}
}

// Add appends a singleton group built from the four formulas, panicking on
// malformed right-hand sides (these are static protocol definitions).
func (rs *Ruleset) Add(s1, s2, s3, s4 bitmask.Formula) *Ruleset {
	return rs.AddGroup("", 1, MustNew(s1, s2, s3, s4))
}

// AddWeighted appends a singleton group with the given scheduler weight.
func (rs *Ruleset) AddWeighted(weight int, s1, s2, s3, s4 bitmask.Formula) *Ruleset {
	return rs.AddGroup("", weight, MustNew(s1, s2, s3, s4))
}

// AddRule appends a prebuilt rule as a singleton group of weight 1.
func (rs *Ruleset) AddRule(r Rule) *Ruleset {
	return rs.AddGroup(r.Name, 1, r)
}

// AddGroup appends a group of rules sharing one scheduler slot set. The
// rules' guards must be pairwise disjoint (checked by Validate).
func (rs *Ruleset) AddGroup(name string, weight int, group ...Rule) *Ruleset {
	if weight < 1 {
		panic("rules: group weight must be ≥ 1")
	}
	if len(group) == 0 {
		panic("rules: empty group")
	}
	start := len(rs.Rules)
	rs.Rules = append(rs.Rules, group...)
	rs.Groups = append(rs.Groups, Group{Name: name, Weight: weight, Start: start, End: len(rs.Rules)})
	return rs
}

// AddOrderedGroup appends a group with first-match-wins semantics: rules
// may overlap, and the earliest matching rule fires. Used for transformed
// rulesets whose catch-all rules overlap the specific ones.
func (rs *Ruleset) AddOrderedGroup(name string, weight int, group ...Rule) *Ruleset {
	rs.AddGroup(name, weight, group...)
	rs.Groups[len(rs.Groups)-1].Ordered = true
	return rs
}

// HasOrderedGroups reports whether any group uses first-match semantics.
func (rs *Ruleset) HasOrderedGroups() bool {
	for _, g := range rs.Groups {
		if g.Ordered {
			return true
		}
	}
	return false
}

// Len returns the number of rules.
func (rs *Ruleset) Len() int { return len(rs.Rules) }

// NumGroups returns the number of scheduler groups.
func (rs *Ruleset) NumGroups() int { return len(rs.Groups) }

// TotalWeight returns the sum of group weights (the number of scheduler
// slots).
func (rs *Ruleset) TotalWeight() int {
	w := 0
	for _, g := range rs.Groups {
		w += g.Weight
	}
	return w
}

// GroupRules returns the rule slice of group i (aliasing the ruleset).
func (rs *Ruleset) GroupRules(i int) []Rule {
	g := rs.Groups[i]
	return rs.Rules[g.Start:g.End]
}

// Clone returns a copy whose rule and group slices are independent.
func (rs *Ruleset) Clone() *Ruleset {
	out := &Ruleset{
		Space:  rs.Space,
		Rules:  make([]Rule, len(rs.Rules)),
		Groups: make([]Group, len(rs.Groups)),
	}
	copy(out.Rules, rs.Rules)
	copy(out.Groups, rs.Groups)
	return out
}

// Guarded returns a copy of the ruleset with the extra formula conjoined to
// both left-hand guards of every rule, as in the compilation steps that add
// Z(#) branch flags and Π_τ time-path filters (§4, §5.4). Right-hand sides
// are unchanged.
func (rs *Ruleset) Guarded(extra bitmask.Formula) *Ruleset {
	out := rs.Clone()
	for i := range out.Rules {
		r := &out.Rules[i]
		r.Src1 = bitmask.And(extra, r.Src1)
		r.Src2 = bitmask.And(extra, r.Src2)
		r.G1 = bitmask.Compile(r.Src1)
		r.G2 = bitmask.Compile(r.Src2)
	}
	return out
}

// String renders all rules, one per line, with group separators.
func (rs *Ruleset) String() string {
	var b strings.Builder
	for gi, g := range rs.Groups {
		if gi > 0 {
			b.WriteByte('\n')
		}
		label := g.Name
		if label == "" {
			label = fmt.Sprintf("group%d", gi)
		}
		fmt.Fprintf(&b, "group %s (weight %d):", label, g.Weight)
		for _, r := range rs.Rules[g.Start:g.End] {
			b.WriteString("\n  ")
			b.WriteString(r.String())
		}
	}
	return b.String()
}

// Validate checks structural sanity: positive group weights, satisfiable
// guards, and pairwise-disjoint guards within each multi-rule group (the
// property that makes "fire the unique matching rule" well defined).
func (rs *Ruleset) Validate() error {
	for gi, g := range rs.Groups {
		if g.Weight < 1 {
			return fmt.Errorf("group %d (%s): weight %d < 1", gi, g.Name, g.Weight)
		}
		for i := g.Start; i < g.End; i++ {
			r := &rs.Rules[i]
			if r.G1.IsFalse() || r.G2.IsFalse() {
				return fmt.Errorf("group %d (%s) rule %d (%s): unsatisfiable guard",
					gi, g.Name, i-g.Start, r.Name)
			}
			if g.Ordered {
				continue
			}
			for j := g.Start; j < i; j++ {
				o := &rs.Rules[j]
				if guardsIntersect(r.G1, o.G1) && guardsIntersect(r.G2, o.G2) {
					return fmt.Errorf("group %d (%s): rules %d and %d overlap",
						gi, g.Name, j-g.Start, i-g.Start)
				}
			}
		}
	}
	return nil
}

// guardsIntersect reports whether some state matches both guards.
func guardsIntersect(a, b bitmask.Guard) bool {
	for _, ca := range a.Cubes {
		for _, cb := range b.Cubes {
			if _, ok := cubeAnd(ca, cb); ok {
				return true
			}
		}
	}
	return false
}

func cubeAnd(a, b bitmask.Cube) (bitmask.Cube, bool) {
	if conflict := (a.CareLo & b.CareLo) & (a.WantLo ^ b.WantLo); conflict != 0 {
		return bitmask.Cube{}, false
	}
	if conflict := (a.CareHi & b.CareHi) & (a.WantHi ^ b.WantHi); conflict != 0 {
		return bitmask.Cube{}, false
	}
	return bitmask.Cube{
		CareLo: a.CareLo | b.CareLo, WantLo: a.WantLo | b.WantLo,
		CareHi: a.CareHi | b.CareHi, WantHi: a.WantHi | b.WantHi,
	}, true
}

// gcd/lcm for thread padding.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// ComposeThreads merges the rulesets of several threads into one flat
// ruleset following §1.3: each thread's groups are weighted up so every
// thread occupies the same number of scheduler slots (the least common
// multiple of the per-thread totals), which makes the scheduler pick each
// thread with equal probability. All rulesets must share one Space.
func ComposeThreads(threads ...*Ruleset) *Ruleset {
	if len(threads) == 0 {
		panic("rules: no threads to compose")
	}
	sp := threads[0].Space
	l := 1
	for _, t := range threads {
		if t.Space != sp {
			panic("rules: threads use different variable spaces")
		}
		if t.TotalWeight() == 0 {
			panic("rules: empty thread")
		}
		l = lcm(l, t.TotalWeight())
		if l > math.MaxInt32 {
			panic("rules: thread weight overflow")
		}
	}
	out := NewRuleset(sp)
	for _, t := range threads {
		factor := l / t.TotalWeight()
		base := len(out.Rules)
		out.Rules = append(out.Rules, t.Rules...)
		for _, g := range t.Groups {
			ng := g
			ng.Weight = g.Weight * factor
			ng.Start += base
			ng.End += base
			out.Groups = append(out.Groups, ng)
		}
	}
	return out
}

// Concat appends the groups of each ruleset in order without reweighting.
// Use ComposeThreads for fair thread composition.
func Concat(sets ...*Ruleset) *Ruleset {
	if len(sets) == 0 {
		panic("rules: nothing to concatenate")
	}
	out := NewRuleset(sets[0].Space)
	for _, s := range sets {
		if s.Space != out.Space {
			panic("rules: rulesets use different variable spaces")
		}
		base := len(out.Rules)
		out.Rules = append(out.Rules, s.Rules...)
		for _, g := range s.Groups {
			ng := g
			ng.Start += base
			ng.End += base
			out.Groups = append(out.Groups, ng)
		}
	}
	return out
}
