package rules

import (
	"strings"
	"testing"

	"popkit/internal/bitmask"
)

func TestAddGroupAndAccessors(t *testing.T) {
	sp := bitmask.NewSpace()
	f := sp.Field("P", 3)
	var grp []Rule
	for v := uint64(0); v < 4; v++ {
		grp = append(grp, MustNew(
			bitmask.FieldIs(f, v), bitmask.True(),
			bitmask.FieldIs(f, (v+1)%4), bitmask.True()))
	}
	rs := NewRuleset(sp)
	rs.AddGroup("advance", 5, grp...)
	if rs.NumGroups() != 1 || rs.Len() != 4 {
		t.Fatalf("groups=%d rules=%d", rs.NumGroups(), rs.Len())
	}
	if rs.TotalWeight() != 5 {
		t.Errorf("TotalWeight = %d, want 5 (group weight counted once)", rs.TotalWeight())
	}
	if got := len(rs.GroupRules(0)); got != 4 {
		t.Errorf("GroupRules len = %d", got)
	}
	if err := rs.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !strings.Contains(rs.String(), "advance") {
		t.Error("String() missing group name")
	}
}

func TestValidateCatchesOverlappingGroupRules(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	rs := NewRuleset(sp)
	// Both rules match an initiator with A∧B set: overlap.
	rs.AddGroup("bad", 1,
		MustNew(bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True()),
		MustNew(bitmask.Is(b), bitmask.True(), bitmask.IsNot(b), bitmask.True()),
	)
	if err := rs.Validate(); err == nil {
		t.Error("overlapping group rules not caught")
	} else if !strings.Contains(err.Error(), "overlap") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDisjointResponderGuardsAllowed(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	rs := NewRuleset(sp)
	// Same initiator guard but disjoint responder guards: fine.
	rs.AddGroup("ok", 1,
		MustNew(bitmask.Is(a), bitmask.Is(b), bitmask.IsNot(a), bitmask.True()),
		MustNew(bitmask.Is(a), bitmask.IsNot(b), bitmask.Is(b), bitmask.True()),
	)
	if err := rs.Validate(); err != nil {
		t.Errorf("disjoint responder guards rejected: %v", err)
	}
}

func TestComposeThreadsPreservesGroups(t *testing.T) {
	sp := bitmask.NewSpace()
	f := sp.Field("P", 3)
	a := sp.Bool("A")

	t1 := NewRuleset(sp)
	var grp []Rule
	for v := uint64(0); v < 4; v++ {
		grp = append(grp, MustNew(
			bitmask.FieldIs(f, v), bitmask.True(),
			bitmask.FieldIs(f, (v+1)%4), bitmask.True()))
	}
	t1.AddGroup("adv", 1, grp...) // 1 slot

	t2 := NewRuleset(sp)
	t2.Add(bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True())
	t2.Add(bitmask.IsNot(a), bitmask.True(), bitmask.Is(a), bitmask.True()) // 2 slots

	m := ComposeThreads(t1, t2)
	if m.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", m.NumGroups())
	}
	// lcm(1,2) = 2: t1's group doubles to 2, t2's stay at 1 each.
	if m.Groups[0].Weight != 2 || m.Groups[1].Weight != 1 || m.Groups[2].Weight != 1 {
		t.Errorf("weights = %d,%d,%d", m.Groups[0].Weight, m.Groups[1].Weight, m.Groups[2].Weight)
	}
	// Group rule ranges survive the merge.
	if len(m.GroupRules(0)) != 4 || len(m.GroupRules(1)) != 1 {
		t.Errorf("group sizes wrong after compose")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate after compose: %v", err)
	}
}

func TestConcatPreservesGroups(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	r1 := NewRuleset(sp)
	r1.AddWeighted(3, bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True())
	r2 := NewRuleset(sp)
	r2.Add(bitmask.IsNot(a), bitmask.True(), bitmask.Is(a), bitmask.True())
	c := Concat(r1, r2)
	if c.NumGroups() != 2 || c.TotalWeight() != 4 {
		t.Errorf("groups=%d weight=%d", c.NumGroups(), c.TotalWeight())
	}
}

func TestGuardedPreservesGroups(t *testing.T) {
	sp := bitmask.NewSpace()
	f := sp.Field("P", 3)
	z := sp.Bool("Z")
	rs := NewRuleset(sp)
	var grp []Rule
	for v := uint64(0); v < 4; v++ {
		grp = append(grp, MustNew(
			bitmask.FieldIs(f, v), bitmask.True(),
			bitmask.FieldIs(f, (v+1)%4), bitmask.True()))
	}
	rs.AddGroup("adv", 2, grp...)
	g := rs.Guarded(bitmask.Is(z))
	if g.NumGroups() != 1 || g.Groups[0].Weight != 2 {
		t.Fatalf("Guarded lost group structure")
	}
	s := f.Set(bitmask.State{}, 1)
	if g.Rules[1].Matches(s, s) {
		t.Error("guarded rule matched without Z")
	}
	if !g.Rules[1].Matches(z.Set(s, true), z.Set(s, true)) {
		t.Error("guarded rule rejected with Z")
	}
}
