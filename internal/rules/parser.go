package rules

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"popkit/internal/bitmask"
)

// Parse reads a textual ruleset, one rule per line, in the paper's notation:
//
//	(A & !K) + (!A & !B) -> (A & K) + (A & K)
//	2* (X) + (X) -> (!X) + (X)        # weighted rule
//	(C==3) + (.) -> (C==4) + (.)      # field literals
//
// '#' starts a comment; blank lines are ignored; a leading "N*" sets the
// scheduler weight. Identifiers are resolved against the given space;
// "IDENT==N" refers to an integer field.
func Parse(sp *bitmask.Space, src string) (*Ruleset, error) {
	rs := NewRuleset(sp)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		r, weight, err := parseRule(sp, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		rs.AddGroup("", weight, r)
	}
	return rs, nil
}

// MustParse is Parse for statically-known rule text; it panics on error.
func MustParse(sp *bitmask.Space, src string) *Ruleset {
	rs, err := Parse(sp, src)
	if err != nil {
		panic("rules: " + err.Error())
	}
	return rs
}

type parser struct {
	sp  *bitmask.Space
	in  string
	pos int
}

func parseRule(sp *bitmask.Space, line string) (Rule, int, error) {
	p := &parser{sp: sp, in: line}
	weight := 1
	p.skipSpace()
	if w, ok := p.tryWeight(); ok {
		weight = w
	}
	s1, err := p.parenExpr()
	if err != nil {
		return Rule{}, 0, err
	}
	if err := p.expect("+"); err != nil {
		return Rule{}, 0, err
	}
	s2, err := p.parenExpr()
	if err != nil {
		return Rule{}, 0, err
	}
	if err := p.expect("->"); err != nil {
		return Rule{}, 0, err
	}
	s3, err := p.parenExpr()
	if err != nil {
		return Rule{}, 0, err
	}
	if err := p.expect("+"); err != nil {
		return Rule{}, 0, err
	}
	s4, err := p.parenExpr()
	if err != nil {
		return Rule{}, 0, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return Rule{}, 0, fmt.Errorf("trailing input at column %d: %q", p.pos+1, p.in[p.pos:])
	}
	r, err := New(s1, s2, s3, s4)
	if err != nil {
		return Rule{}, 0, err
	}
	return r, weight, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

// tryWeight parses an optional "N*" prefix.
func (p *parser) tryWeight() (int, bool) {
	save := p.pos
	start := p.pos
	for p.pos < len(p.in) && unicode.IsDigit(rune(p.in[p.pos])) {
		p.pos++
	}
	if p.pos == start || p.pos >= len(p.in) || p.in[p.pos] != '*' {
		p.pos = save
		return 0, false
	}
	w, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil || w < 1 {
		p.pos = save
		return 0, false
	}
	p.pos++ // consume '*'
	p.skipSpace()
	return w, true
}

func (p *parser) expect(tok string) error {
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], tok) {
		p.pos += len(tok)
		return nil
	}
	return fmt.Errorf("expected %q at column %d", tok, p.pos+1)
}

// parenExpr parses "(" expr ")" where expr may be ".".
func (p *parser) parenExpr() (bitmask.Formula, error) {
	if err := p.expect("("); err != nil {
		return bitmask.Formula{}, err
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '.' {
		p.pos++
		if err := p.expect(")"); err != nil {
			return bitmask.Formula{}, err
		}
		return bitmask.True(), nil
	}
	f, err := p.orExpr()
	if err != nil {
		return bitmask.Formula{}, err
	}
	if err := p.expect(")"); err != nil {
		return bitmask.Formula{}, err
	}
	return f, nil
}

func (p *parser) orExpr() (bitmask.Formula, error) {
	f, err := p.andExpr()
	if err != nil {
		return f, err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == '|' {
			p.pos++
			g, err := p.andExpr()
			if err != nil {
				return f, err
			}
			f = bitmask.Or(f, g)
			continue
		}
		return f, nil
	}
}

func (p *parser) andExpr() (bitmask.Formula, error) {
	f, err := p.unary()
	if err != nil {
		return f, err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == '&' {
			p.pos++
			g, err := p.unary()
			if err != nil {
				return f, err
			}
			f = bitmask.And(f, g)
			continue
		}
		return f, nil
	}
}

func (p *parser) unary() (bitmask.Formula, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return bitmask.Formula{}, fmt.Errorf("unexpected end of input")
	}
	switch p.in[p.pos] {
	case '!':
		p.pos++
		f, err := p.unary()
		if err != nil {
			return f, err
		}
		return bitmask.Not(f), nil
	case '(':
		p.pos++
		f, err := p.orExpr()
		if err != nil {
			return f, err
		}
		if err := p.expect(")"); err != nil {
			return f, err
		}
		return f, nil
	}
	return p.atom()
}

func (p *parser) atom() (bitmask.Formula, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && isIdentChar(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return bitmask.Formula{}, fmt.Errorf("expected identifier at column %d", p.pos+1)
	}
	name := p.in[start:p.pos]
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], "==") {
		p.pos += 2
		p.skipSpace()
		numStart := p.pos
		for p.pos < len(p.in) && unicode.IsDigit(rune(p.in[p.pos])) {
			p.pos++
		}
		if p.pos == numStart {
			return bitmask.Formula{}, fmt.Errorf("expected number after %q==", name)
		}
		val, err := strconv.ParseUint(p.in[numStart:p.pos], 10, 64)
		if err != nil {
			return bitmask.Formula{}, err
		}
		f, ok := p.sp.LookupField(name)
		if !ok {
			return bitmask.Formula{}, fmt.Errorf("unknown field %q", name)
		}
		if val > f.Max() {
			return bitmask.Formula{}, fmt.Errorf("value %d out of range for field %q (max %d)", val, name, f.Max())
		}
		return bitmask.FieldIs(f, val), nil
	}
	v, ok := p.sp.LookupVar(name)
	if !ok {
		return bitmask.Formula{}, fmt.Errorf("unknown variable %q", name)
	}
	return bitmask.Is(v), nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ParseFormula parses a standalone boolean expression (the rule-guard
// sublanguage: identifiers, field==N, !, &, |, parentheses, ".") against
// the space.
func ParseFormula(sp *bitmask.Space, src string) (bitmask.Formula, error) {
	p := &parser{sp: sp, in: src}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '.' && p.pos+1 == len(p.in) {
		return bitmask.True(), nil
	}
	f, err := p.orExpr()
	if err != nil {
		return bitmask.Formula{}, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return bitmask.Formula{}, fmt.Errorf("trailing input at column %d: %q", p.pos+1, p.in[p.pos:])
	}
	return f, nil
}
