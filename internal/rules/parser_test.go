package rules

import (
	"strings"
	"testing"

	"popkit/internal/bitmask"
)

func parserSpace() *bitmask.Space {
	sp := bitmask.NewSpace()
	sp.Bools("A", "B", "K", "X")
	sp.Field("C", 7)
	return sp
}

func TestParsePaperMajorityRules(t *testing.T) {
	// The cancellation and duplication rules from protocol Majority (§3.2).
	sp := bitmask.NewSpace()
	sp.Bools("As", "Bs", "K")
	src := `
		# cancellation
		(As) + (Bs) -> (!As) + (!Bs)
		# duplication
		(As & !K) + (!As & !Bs) -> (As & K) + (As & K)
		(Bs & !K) + (!As & !Bs) -> (Bs & K) + (Bs & K)
	`
	rs, err := Parse(sp, src)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 {
		t.Fatalf("rule count = %d, want 3", rs.Len())
	}
	as, _ := sp.LookupVar("As")
	bs, _ := sp.LookupVar("Bs")
	k, _ := sp.LookupVar("K")

	sA := as.Set(bitmask.State{}, true)
	sB := bs.Set(bitmask.State{}, true)
	if !rs.Rules[0].Matches(sA, sB) {
		t.Error("cancellation rule does not match (A*, B*)")
	}
	na, nb := rs.Rules[0].Apply(sA, sB)
	if as.Get(na) || bs.Get(nb) {
		t.Error("cancellation did not clear both stars")
	}

	blank := bitmask.State{}
	if !rs.Rules[1].Matches(sA, blank) {
		t.Error("duplication rule does not match (A*, blank)")
	}
	na, nb = rs.Rules[1].Apply(sA, blank)
	if !as.Get(na) || !k.Get(na) || !as.Get(nb) || !k.Get(nb) {
		t.Error("duplication did not produce two marked A* agents")
	}
}

func TestParseWeights(t *testing.T) {
	sp := parserSpace()
	rs, err := Parse(sp, "3* (X) + (X) -> (!X) + (X)")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Groups[0].Weight != 3 {
		t.Errorf("weight = %d, want 3", rs.Groups[0].Weight)
	}
}

func TestParseFieldLiterals(t *testing.T) {
	sp := parserSpace()
	rs, err := Parse(sp, "(C==3) + (.) -> (C==4) + (.)")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sp.LookupField("C")
	s := f.Set(bitmask.State{}, 3)
	if !rs.Rules[0].Matches(s, bitmask.State{}) {
		t.Error("field guard did not match C==3")
	}
	na, _ := rs.Rules[0].Apply(s, bitmask.State{})
	if f.Get(na) != 4 {
		t.Errorf("after rule C = %d, want 4", f.Get(na))
	}
}

func TestParseWildcard(t *testing.T) {
	sp := parserSpace()
	rs, err := Parse(sp, "(.) + (.) -> (.) + (.)")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Rules[0].Matches(bitmask.State{}, bitmask.State{Lo: ^uint64(0)}) {
		t.Error("wildcard rule does not match arbitrary states")
	}
	if !rs.Rules[0].U1.IsNoop() || !rs.Rules[0].U2.IsNoop() {
		t.Error("wildcard targets are not no-ops")
	}
}

func TestParseParensAndOr(t *testing.T) {
	sp := parserSpace()
	rs, err := Parse(sp, "((A | B) & !K) + (.) -> (K) + (.)")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sp.LookupVar("A")
	b, _ := sp.LookupVar("B")
	k, _ := sp.LookupVar("K")
	for _, s := range []bitmask.State{
		a.Set(bitmask.State{}, true),
		b.Set(bitmask.State{}, true),
	} {
		if !rs.Rules[0].Matches(s, bitmask.State{}) {
			t.Errorf("guard did not match %s", sp.Format(s))
		}
	}
	if rs.Rules[0].Matches(k.Set(a.Set(bitmask.State{}, true), true), bitmask.State{}) {
		t.Error("guard matched with K set")
	}
	if rs.Rules[0].Matches(bitmask.State{}, bitmask.State{}) {
		t.Error("guard matched blank state")
	}
}

func TestParseErrors(t *testing.T) {
	sp := parserSpace()
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown var", "(Zz) + (.) -> (.) + (.)", "unknown variable"},
		{"unknown field", "(Zz==1) + (.) -> (.) + (.)", "unknown field"},
		{"field overflow", "(C==99) + (.) -> (.) + (.)", "out of range"},
		{"missing arrow", "(A) + (B) (A) + (B)", "expected"},
		{"trailing garbage", "(A) + (B) -> (A) + (B) junk", "trailing"},
		{"or target", "(A) + (.) -> (A | B) + (.)", "not a conjunction"},
		{"missing paren", "(A + (.) -> (A) + (.)", "expected"},
		{"empty parens", "() + (.) -> (.) + (.)", "expected identifier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(sp, tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	sp := parserSpace()
	src := "(A & !B) + (X) -> (B & !A) + (X & K)"
	rs := MustParse(sp, src)
	reparsed, err := Parse(sp, rs.Rules[0].String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	// Check behavioral equivalence on a few states.
	a, _ := sp.LookupVar("A")
	x, _ := sp.LookupVar("X")
	states := []bitmask.State{
		{},
		a.Set(bitmask.State{}, true),
		x.Set(bitmask.State{}, true),
		x.Set(a.Set(bitmask.State{}, true), true),
	}
	for _, s1 := range states {
		for _, s2 := range states {
			m1 := rs.Rules[0].Matches(s1, s2)
			m2 := reparsed.Rules[0].Matches(s1, s2)
			if m1 != m2 {
				t.Errorf("match disagreement on (%s, %s)", sp.Format(s1), sp.Format(s2))
			}
			if m1 {
				a1, b1 := rs.Rules[0].Apply(s1, s2)
				a2, b2 := reparsed.Rules[0].Apply(s1, s2)
				if a1 != a2 || b1 != b2 {
					t.Errorf("apply disagreement on (%s, %s)", sp.Format(s1), sp.Format(s2))
				}
			}
		}
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	sp := parserSpace()
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse(sp, "(Nope) + (.) -> (.) + (.)")
}
