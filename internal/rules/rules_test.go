package rules

import (
	"strings"
	"testing"

	"popkit/internal/bitmask"
)

func twoVarSpace(t *testing.T) (*bitmask.Space, bitmask.Var, bitmask.Var) {
	t.Helper()
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	return sp, a, b
}

func TestRuleMatchAndApply(t *testing.T) {
	sp, a, b := twoVarSpace(t)
	// (A) + (!A) -> (A) + (A & B): one-way epidemic that also tags B.
	r := MustNew(bitmask.Is(a), bitmask.IsNot(a), bitmask.Is(a), bitmask.And(bitmask.Is(a), bitmask.Is(b)))

	src := a.Set(bitmask.State{}, true)
	dst := bitmask.State{}
	if !r.Matches(src, dst) {
		t.Fatal("rule should match (A, !A)")
	}
	if r.Matches(dst, src) {
		t.Fatal("rule should not match (¬A, A)")
	}
	na, nb := r.Apply(src, dst)
	if !a.Get(na) {
		t.Error("initiator lost A")
	}
	if !a.Get(nb) || !b.Get(nb) {
		t.Errorf("responder state wrong: %s", sp.Format(nb))
	}
}

func TestNewRejectsDisjunctionTarget(t *testing.T) {
	_, a, b := twoVarSpace(t)
	_, err := New(bitmask.True(), bitmask.True(), bitmask.Or(bitmask.Is(a), bitmask.Is(b)), bitmask.True())
	if err == nil {
		t.Fatal("disjunctive right-hand side accepted")
	}
}

func TestRulesetAddAndValidate(t *testing.T) {
	sp, a, _ := twoVarSpace(t)
	rs := NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True())
	rs.AddWeighted(3, bitmask.True(), bitmask.True(), bitmask.Is(a), bitmask.True())
	if rs.Len() != 2 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if rs.TotalWeight() != 4 {
		t.Errorf("TotalWeight = %d, want 4", rs.TotalWeight())
	}
	if err := rs.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesUnsatisfiableGuard(t *testing.T) {
	sp, a, _ := twoVarSpace(t)
	rs := NewRuleset(sp)
	rs.Add(bitmask.And(bitmask.Is(a), bitmask.IsNot(a)), bitmask.True(), bitmask.True(), bitmask.True())
	if err := rs.Validate(); err == nil {
		t.Error("unsatisfiable guard not caught")
	}
}

func TestGuarded(t *testing.T) {
	sp, a, b := twoVarSpace(t)
	rs := NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True())
	g := rs.Guarded(bitmask.Is(b))

	withA := a.Set(bitmask.State{}, true)
	withAB := b.Set(withA, true)
	if g.Rules[0].Matches(withA, withA) {
		t.Error("guarded rule matched without the extra flag")
	}
	if !g.Rules[0].Matches(withAB, withAB) {
		t.Error("guarded rule failed to match with the extra flag")
	}
	// The original ruleset is untouched.
	if !rs.Rules[0].Matches(withA, withA) {
		t.Error("Guarded mutated the source ruleset")
	}
}

func TestComposeThreadsEqualSlots(t *testing.T) {
	sp, a, b := twoVarSpace(t)
	t1 := NewRuleset(sp)
	t1.Add(bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True())
	t1.Add(bitmask.IsNot(a), bitmask.True(), bitmask.Is(a), bitmask.True())
	t1.Add(bitmask.Is(b), bitmask.True(), bitmask.IsNot(b), bitmask.True()) // 3 slots

	t2 := NewRuleset(sp)
	t2.Add(bitmask.Is(b), bitmask.True(), bitmask.IsNot(b), bitmask.True())
	t2.Add(bitmask.IsNot(b), bitmask.True(), bitmask.Is(b), bitmask.True()) // 2 slots

	merged := ComposeThreads(t1, t2)
	if merged.Len() != 5 {
		t.Fatalf("merged rule count = %d, want 5", merged.Len())
	}
	// lcm(3,2)=6: thread 1 groups get weight 2 each, thread 2 groups 3 each.
	w1 := merged.Groups[0].Weight + merged.Groups[1].Weight + merged.Groups[2].Weight
	w2 := merged.Groups[3].Weight + merged.Groups[4].Weight
	if w1 != w2 {
		t.Errorf("thread slot totals differ: %d vs %d", w1, w2)
	}
	if merged.TotalWeight() != 12 {
		t.Errorf("TotalWeight = %d, want 12", merged.TotalWeight())
	}
}

func TestComposeThreadsDifferentSpacesPanics(t *testing.T) {
	sp1 := bitmask.NewSpace()
	sp1.Bool("A")
	sp2 := bitmask.NewSpace()
	sp2.Bool("A")
	r1 := MustParse(sp1, "(A)+(.) -> (!A)+(.)")
	r2 := MustParse(sp2, "(A)+(.) -> (!A)+(.)")
	defer func() {
		if recover() == nil {
			t.Error("composing across spaces did not panic")
		}
	}()
	ComposeThreads(r1, r2)
}

func TestCloneIsIndependent(t *testing.T) {
	sp, a, _ := twoVarSpace(t)
	rs := NewRuleset(sp)
	rs.Add(bitmask.Is(a), bitmask.True(), bitmask.IsNot(a), bitmask.True())
	c := rs.Clone()
	c.Add(bitmask.True(), bitmask.True(), bitmask.Is(a), bitmask.True())
	if rs.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: %d, %d", rs.Len(), c.Len())
	}
}

func TestRuleString(t *testing.T) {
	sp, _, _ := twoVarSpace(t)
	rs := MustParse(sp, "2* (A & !B) + (.) -> (B) + (!A)")
	if rs.Groups[0].Weight != 2 {
		t.Errorf("group weight = %d, want 2", rs.Groups[0].Weight)
	}
	s := rs.Rules[0].String()
	for _, want := range []string{"A & !B", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
