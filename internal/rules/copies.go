package rules

import (
	"fmt"

	"popkit/internal/bitmask"
)

// A BitCopy moves one bit of an agent's own state to another position of
// the same state during a rule execution. Copies realize transitions whose
// outcome depends on the agent's current state — e.g. the "current := new"
// double-buffer swap of the clock-hierarchy slowdown construction (§5.3) —
// while keeping the rule a finite function of the interacting states.
// Copies are applied before the rule's mask update, so explicit literals in
// the rule's right-hand side win over copied bits.
type BitCopy struct {
	Src, Dst int // bit positions within the 128-bit state
}

// applyCopies applies the copies to a state, reading all sources from the
// pre-copy state (simultaneous assignment).
func applyCopies(s bitmask.State, copies []BitCopy) bitmask.State {
	if len(copies) == 0 {
		return s
	}
	out := s
	for _, c := range copies {
		out = out.SetBit(c.Dst, s.Bit(c.Src))
	}
	return out
}

// CopyVar returns the bit copy moving boolean variable src to dst.
func CopyVar(src, dst bitmask.Var) BitCopy {
	return BitCopy{Src: src.Pos(), Dst: dst.Pos()}
}

// CopyField returns the bit copies moving field src to dst. The fields must
// have equal widths.
func CopyField(src, dst bitmask.Field) []BitCopy {
	if src.Width() != dst.Width() {
		panic(fmt.Sprintf("rules: field width mismatch %s(%d) -> %s(%d)",
			src.Name(), src.Width(), dst.Name(), dst.Width()))
	}
	out := make([]BitCopy, src.Width())
	for i := range out {
		out[i] = BitCopy{Src: src.BitPos() + i, Dst: dst.BitPos() + i}
	}
	return out
}
