package rules

import (
	"strings"
	"testing"

	"popkit/internal/bitmask"
)

// FuzzParseRule exercises the rule parser with arbitrary inputs: it must
// never panic, and on success the parsed rule must render and reparse.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"(A) + (B) -> (!A) + (!B)",
		"2* (A & !K) + (.) -> (K) + (.)",
		"(C==3) + (.) -> (C==4) + (.)",
		"((A | B) & !K) + (X) -> (A) + (B & K)",
		"(.) + (.) -> (.) + (.)",
		"(A",
		") -> (",
		"(A) + (B) -> (A | B) + (.)",
		"99999999999999999999* (A)+(A)->(A)+(A)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sp := bitmask.NewSpace()
		sp.Bools("A", "B", "K", "X")
		sp.Field("C", 7)
		rs, err := Parse(sp, src)
		if err != nil {
			return
		}
		// Whatever parsed must render to something that parses again with
		// equivalent match behaviour on a few probe states.
		if rs.Len() == 0 {
			return
		}
		rendered := rs.Rules[0].String()
		back, err := Parse(sp, rendered)
		if err != nil {
			t.Fatalf("rendered rule %q does not reparse: %v", rendered, err)
		}
		a, _ := sp.LookupVar("A")
		probes := []bitmask.State{{}, a.Set(bitmask.State{}, true), {Lo: ^uint64(0) >> 40}}
		for _, s1 := range probes {
			for _, s2 := range probes {
				if rs.Rules[0].Matches(s1, s2) != back.Rules[0].Matches(s1, s2) {
					t.Fatalf("round-trip changed semantics of %q", rendered)
				}
			}
		}
		_ = strings.TrimSpace(src)
	})
}
