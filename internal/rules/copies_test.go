package rules

import (
	"testing"

	"popkit/internal/bitmask"
)

func TestBitCopySwapBuffer(t *testing.T) {
	sp := bitmask.NewSpace()
	cur := sp.Bool("Cur")
	next := sp.Bool("New")
	s := sp.Bool("S")

	// The §5.3 double-buffer commit: cur := new, set S.
	commit := MustNew(bitmask.True(), bitmask.True(), bitmask.Is(s), bitmask.Is(s))
	commit.Copy1 = []BitCopy{CopyVar(next, cur)}
	commit.Copy2 = []BitCopy{CopyVar(next, cur)}

	a := next.Set(bitmask.State{}, true) // new on, cur off
	b := cur.Set(bitmask.State{}, true)  // new off, cur on
	na, nb := commit.Apply(a, b)
	if !cur.Get(na) || !s.Get(na) {
		t.Errorf("initiator after commit: %s", sp.Format(na))
	}
	if cur.Get(nb) || !s.Get(nb) {
		t.Errorf("responder after commit: %s", sp.Format(nb))
	}
}

func TestBitCopySimultaneousSwap(t *testing.T) {
	sp := bitmask.NewSpace()
	a := sp.Bool("A")
	b := sp.Bool("B")
	r := MustNew(bitmask.True(), bitmask.True(), bitmask.True(), bitmask.True())
	// Swap A and B: copies read the pre-copy state, so this must not lose
	// a bit.
	r.Copy1 = []BitCopy{CopyVar(a, b), CopyVar(b, a)}
	s := a.Set(bitmask.State{}, true) // A on, B off
	na, _ := r.Apply(s, bitmask.State{})
	if a.Get(na) || !b.Get(na) {
		t.Errorf("swap failed: %s", sp.Format(na))
	}
}

func TestMaskUpdateWinsOverCopy(t *testing.T) {
	sp := bitmask.NewSpace()
	src := sp.Bool("Src")
	dst := sp.Bool("Dst")
	// Copy src→dst but the rule explicitly clears dst: the literal wins.
	r := MustNew(bitmask.True(), bitmask.True(), bitmask.IsNot(dst), bitmask.True())
	r.Copy1 = []BitCopy{CopyVar(src, dst)}
	s := src.Set(bitmask.State{}, true)
	na, _ := r.Apply(s, bitmask.State{})
	if dst.Get(na) {
		t.Error("explicit right-hand-side literal lost to a copy")
	}
}

func TestCopyField(t *testing.T) {
	sp := bitmask.NewSpace()
	f := sp.Field("F", 15)
	g := sp.Field("G", 15)
	r := MustNew(bitmask.True(), bitmask.True(), bitmask.True(), bitmask.True())
	r.Copy1 = CopyField(f, g)
	s := f.Set(bitmask.State{}, 11)
	na, _ := r.Apply(s, bitmask.State{})
	if g.Get(na) != 11 || f.Get(na) != 11 {
		t.Errorf("field copy: F=%d G=%d, want 11 11", f.Get(na), g.Get(na))
	}
}

func TestCopyFieldWidthMismatchPanics(t *testing.T) {
	sp := bitmask.NewSpace()
	f := sp.Field("F", 15)
	g := sp.Field("G", 7)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	CopyField(f, g)
}
